// Command honeyexp runs only the Section 3 honey-app experiment:
// publishing the instrumented voice-memos app, purchasing 500 no-activity
// installs from Fyber, ayeT-Studios, and RankApp, and analyzing delivery,
// engagement, automation signals, and workers' installed apps.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 0, "override the world seed")
	flag.Parse()

	cfg := sim.DefaultConfig()
	// The honey experiment needs the platforms and worker pools but not
	// the 922-app campaign ecosystem; shrink the rest of the world.
	cfg.BackgroundApps = 50
	cfg.BaselineApps = 20
	cfg.TotalAdvertised = 10
	cfg.OffersTarget = 12
	for name := range cfg.AppsPerIIP {
		cfg.AppsPerIIP[name] = 1
	}
	cfg.AppsPerIIP["Fyber"] = 4
	if *seed != 0 {
		cfg.Seed = *seed
	}

	study, err := core.RunHoneyOnly(cfg)
	if err != nil {
		log.Fatalf("honeyexp: %v", err)
	}
	report.WriteSection3(os.Stdout, study.Results.Section3)
}
