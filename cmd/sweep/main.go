// Command sweep runs a scenario×seed grid of full simulations and
// reports lockstep-detector precision/recall/F1 per adversary scenario
// against each world's recorded ground truth — the executable form of
// the paper's Section 5.2 open question.
//
// Usage:
//
//	sweep [-base tiny|default|scale] [-scenarios a,b,c] [-seeds N] [-seed-base S]
//	      [-workers N] [-json FILE] [-list] [-quiet]
//	      [-log-level L] [-log-format text|json]
//	sweep -serve ADDR [-addr-file FILE] [-journal FILE] [-lease D] [-max-attempts N]
//	      [-pprof] [grid flags]
//
// A serving coordinator exposes its observability surface on the same
// address workers dial: GET /metrics (Prometheus text), /debug/vars
// (JSON snapshot), /v1/status (queue progress), and — with -pprof —
// /debug/pprof/.
//
// In the default mode every cell builds an isolated world (Workers=1)
// and taps its event-sourced run log online into the incremental
// detector; cells run concurrently up to -workers in this process.
//
// With -serve the process becomes the coordinator of a distributed
// sweep: it listens on ADDR, hands grid cells to sweepworker processes
// under time-bounded leases (reissuing cells whose worker crashes or
// hangs), cross-checks duplicate completions by result digest, and exits
// once the grid drains — producing stdout and -json output
// byte-identical to the in-process mode, because every cell is
// deterministic in (scenario, seed) and assembly is a pure function of
// the cell results.
//
// With -journal the coordinator's queue is write-ahead journaled to the
// named file: if the file already holds a journal for the same grid, the
// coordinator replays it on startup — re-adopting completed cells by
// digest and honoring still-live leases — and continues the sweep where
// its predecessor died. SIGINT/SIGTERM trigger a graceful drain: no new
// leases go out, in-flight workers finish or release their cells, the
// drain is journaled, and the process exits 0 (a successor resumes from
// the journal).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	base := flag.String("base", "tiny", "base world per cell: tiny, default, or scale")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (default: all registered)")
	seeds := flag.Int("seeds", 2, "seeds per scenario")
	seedBase := flag.Uint64("seed-base", 20190301, "first seed; cell i uses seed-base+i")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write the machine-readable grid result to this file")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	serve := flag.String("serve", "", "coordinate a distributed sweep on this address (e.g. 127.0.0.1:0) instead of running in-process")
	addrFile := flag.String("addr-file", "", "with -serve: write the bound address to this file once listening")
	journal := flag.String("journal", "", "with -serve: write-ahead journal the work queue to this file (restart resumes the sweep)")
	lease := flag.Duration("lease", 30*time.Second, "with -serve: worker lease duration")
	maxAttempts := flag.Int("max-attempts", 5, "with -serve: lease grants per cell before the grid fails")
	pprofOn := flag.Bool("pprof", false, "with -serve: also mount net/http/pprof under /debug/pprof/")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		log.Fatalf("sweep: %v", lerr)
	}
	if *quiet {
		logger = obs.Discard()
	}

	if *list {
		for _, name := range scenario.Names() {
			sp, _ := scenario.Lookup(name)
			fmt.Printf("%-16s %s\n", name, sp.Description)
		}
		return
	}

	opts := sweep.Options{Base: *base, Workers: *workers}
	if *scenarios != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Scenarios = append(opts.Scenarios, name)
			}
		}
	}
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, *seedBase+uint64(i))
	}
	opts.Log = logger

	// SIGINT/SIGTERM cancel the run context: the in-process grid stops
	// every cell at its next day barrier; the coordinator drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var res *sweep.Result
	var err error
	if *serve != "" {
		res, err = coordinate(ctx, opts, *serve, *addrFile, *journal, *lease, *maxAttempts, logger, *pprofOn)
		if errors.Is(err, sweep.ErrDrained) {
			// A drained coordinator is a clean stop, not a failure: state is
			// journaled, a successor resumes the sweep. Exit 0 so service
			// managers treat the SIGTERM as honored.
			logger.Info("drained", "error", err)
			return
		}
	} else {
		res, err = sweep.RunCtx(ctx, opts)
	}
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	logger.Info("grid complete", "elapsed", time.Since(start).Round(time.Millisecond).String())
	emit(res, *jsonOut, logger)
}

// coordinate runs the grid as a distributed-sweep coordinator: listen,
// publish the bound address, serve the work queue until the grid
// finishes — or, when ctx is cancelled (SIGTERM), until the in-flight
// leases settle and the drain is journaled (ErrDrained). The control
// endpoints share the listener with the observability surface:
// /metrics, /debug/vars, /debug/trace (and /debug/pprof/ with -pprof)
// ride the same address workers dial.
func coordinate(ctx context.Context, opts sweep.Options, addr, addrFile, journal string, lease time.Duration, maxAttempts int, logger *slog.Logger, pprofOn bool) (*sweep.Result, error) {
	co, err := sweep.NewCoordinator(opts, sweep.QueueConfig{Lease: lease, MaxAttempts: maxAttempts})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	co.RegisterMetrics(reg)
	if journal != "" {
		adopted, err := co.OpenJournal(journal, nil)
		if err != nil {
			return nil, err
		}
		defer co.Close()
		if adopted > 0 {
			logger.Info("journal replay adopted completed cells", "journal", journal, "adopted", adopted)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	bound := ln.Addr().String()
	p0 := co.Progress()
	logger.Info("coordinating distributed sweep", "addr", bound,
		"total", p0.Total, "done", p0.Done, "pending", p0.Pending)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	obs.Mount(mux, reg, nil, pprofOn)
	mux.Handle("/", co.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	res, err := co.Run(ctx)
	// In-flight worker requests (final heartbeats, completions racing the
	// drain) finish before the listener closes; the short bound only caps
	// how long a stuck connection can hold up exit.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	if err != nil {
		return nil, err
	}
	p := co.Progress()
	logger.Info("grid drained", "cells", p.Done, "lease_grants", p.Attempts,
		"expiries", p.Expiries, "duplicates", p.Duplicates, "salvaged", p.Salvaged,
		"adopted", p.Adopted, "fenced", p.Fenced)
	return res, nil
}

// emit writes the human table, the degradation line, and the optional
// JSON file — identically for the in-process and distributed paths.
func emit(res *sweep.Result, jsonOut string, logger *slog.Logger) {
	report.WriteSweep(os.Stdout, res)

	if baseline, ok := res.Baseline(); ok {
		worstName, worst := "", 0.0
		for _, s := range res.Scenarios {
			if s.Name == baseline.Name {
				continue
			}
			if d := baseline.Recall - s.Recall; d > worst {
				worst, worstName = d, s.Name
			}
		}
		if worstName != "" {
			fmt.Printf("largest recall degradation vs paper-baseline: %s (-%.3f)\n", worstName, worst)
		}
	}

	if jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("sweep: %v", err)
		}
		logger.Info("grid result written", "path", jsonOut)
	}
}
