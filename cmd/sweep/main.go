// Command sweep runs a scenario×seed grid of full simulations in
// parallel and reports lockstep-detector precision/recall/F1 per
// adversary scenario against each world's recorded ground truth — the
// executable form of the paper's Section 5.2 open question.
//
// Usage:
//
//	sweep [-base tiny|default|scale] [-scenarios a,b,c] [-seeds N] [-seed-base S]
//	      [-workers N] [-json FILE] [-list] [-quiet]
//
// Every cell builds an isolated world (Workers=1) and taps its
// event-sourced run log online into the incremental detector; cells run
// concurrently up to -workers. Output is a text table on stdout plus,
// with -json, the full machine-readable grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	base := flag.String("base", "tiny", "base world per cell: tiny, default, or scale")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (default: all registered)")
	seeds := flag.Int("seeds", 2, "seeds per scenario")
	seedBase := flag.Uint64("seed-base", 20190301, "first seed; cell i uses seed-base+i")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write the machine-readable grid result to this file")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	flag.Parse()

	if *list {
		for _, name := range scenario.Names() {
			sp, _ := scenario.Lookup(name)
			fmt.Printf("%-16s %s\n", name, sp.Description)
		}
		return
	}

	opts := sweep.Options{Base: *base, Workers: *workers}
	if *scenarios != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Scenarios = append(opts.Scenarios, name)
			}
		}
	}
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, *seedBase+uint64(i))
	}
	if !*quiet {
		opts.Logf = log.Printf
	}

	start := time.Now()
	res, err := sweep.Run(opts)
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	if !*quiet {
		log.Printf("grid complete in %s", time.Since(start).Round(time.Millisecond))
	}
	report.WriteSweep(os.Stdout, res)

	if baseline, ok := res.Baseline(); ok {
		worstName, worst := "", 0.0
		for _, s := range res.Scenarios {
			if s.Name == baseline.Name {
				continue
			}
			if d := baseline.Recall - s.Recall; d > worst {
				worst, worstName = d, s.Name
			}
		}
		if worstName != "" {
			fmt.Printf("largest recall degradation vs paper-baseline: %s (-%.3f)\n", worstName, worst)
		}
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if !*quiet {
			log.Printf("grid result written to %s", *jsonOut)
		}
	}
}
