// Command sweep runs a scenario×seed grid of full simulations and
// reports lockstep-detector precision/recall/F1 per adversary scenario
// against each world's recorded ground truth — the executable form of
// the paper's Section 5.2 open question.
//
// Usage:
//
//	sweep [-base tiny|default|scale] [-scenarios a,b,c] [-seeds N] [-seed-base S]
//	      [-workers N] [-json FILE] [-list] [-quiet]
//	sweep -serve ADDR [-addr-file FILE] [-journal FILE] [-lease D] [-max-attempts N] [grid flags]
//
// In the default mode every cell builds an isolated world (Workers=1)
// and taps its event-sourced run log online into the incremental
// detector; cells run concurrently up to -workers in this process.
//
// With -serve the process becomes the coordinator of a distributed
// sweep: it listens on ADDR, hands grid cells to sweepworker processes
// under time-bounded leases (reissuing cells whose worker crashes or
// hangs), cross-checks duplicate completions by result digest, and exits
// once the grid drains — producing stdout and -json output
// byte-identical to the in-process mode, because every cell is
// deterministic in (scenario, seed) and assembly is a pure function of
// the cell results.
//
// With -journal the coordinator's queue is write-ahead journaled to the
// named file: if the file already holds a journal for the same grid, the
// coordinator replays it on startup — re-adopting completed cells by
// digest and honoring still-live leases — and continues the sweep where
// its predecessor died. SIGINT/SIGTERM trigger a graceful drain: no new
// leases go out, in-flight workers finish or release their cells, the
// drain is journaled, and the process exits 0 (a successor resumes from
// the journal).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	base := flag.String("base", "tiny", "base world per cell: tiny, default, or scale")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (default: all registered)")
	seeds := flag.Int("seeds", 2, "seeds per scenario")
	seedBase := flag.Uint64("seed-base", 20190301, "first seed; cell i uses seed-base+i")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write the machine-readable grid result to this file")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	serve := flag.String("serve", "", "coordinate a distributed sweep on this address (e.g. 127.0.0.1:0) instead of running in-process")
	addrFile := flag.String("addr-file", "", "with -serve: write the bound address to this file once listening")
	journal := flag.String("journal", "", "with -serve: write-ahead journal the work queue to this file (restart resumes the sweep)")
	lease := flag.Duration("lease", 30*time.Second, "with -serve: worker lease duration")
	maxAttempts := flag.Int("max-attempts", 5, "with -serve: lease grants per cell before the grid fails")
	flag.Parse()

	if *list {
		for _, name := range scenario.Names() {
			sp, _ := scenario.Lookup(name)
			fmt.Printf("%-16s %s\n", name, sp.Description)
		}
		return
	}

	opts := sweep.Options{Base: *base, Workers: *workers}
	if *scenarios != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Scenarios = append(opts.Scenarios, name)
			}
		}
	}
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, *seedBase+uint64(i))
	}
	if !*quiet {
		opts.Logf = log.Printf
	}

	// SIGINT/SIGTERM cancel the run context: the in-process grid stops
	// every cell at its next day barrier; the coordinator drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var res *sweep.Result
	var err error
	if *serve != "" {
		res, err = coordinate(ctx, opts, *serve, *addrFile, *journal, *lease, *maxAttempts)
		if errors.Is(err, sweep.ErrDrained) {
			// A drained coordinator is a clean stop, not a failure: state is
			// journaled, a successor resumes the sweep. Exit 0 so service
			// managers treat the SIGTERM as honored.
			log.Printf("%v", err)
			return
		}
	} else {
		res, err = sweep.RunCtx(ctx, opts)
	}
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	if !*quiet {
		log.Printf("grid complete in %s", time.Since(start).Round(time.Millisecond))
	}
	emit(res, *jsonOut, *quiet)
}

// coordinate runs the grid as a distributed-sweep coordinator: listen,
// publish the bound address, serve the work queue until the grid
// finishes — or, when ctx is cancelled (SIGTERM), until the in-flight
// leases settle and the drain is journaled (ErrDrained).
func coordinate(ctx context.Context, opts sweep.Options, addr, addrFile, journal string, lease time.Duration, maxAttempts int) (*sweep.Result, error) {
	co, err := sweep.NewCoordinator(opts, sweep.QueueConfig{Lease: lease, MaxAttempts: maxAttempts})
	if err != nil {
		return nil, err
	}
	if journal != "" {
		adopted, err := co.OpenJournal(journal, nil)
		if err != nil {
			return nil, err
		}
		defer co.Close()
		if adopted > 0 {
			log.Printf("journal %s: adopted %d completed cell(s) from previous incarnation", journal, adopted)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	bound := ln.Addr().String()
	log.Printf("coordinating distributed sweep on %s (%+v)", bound, co.Progress())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	res, err := co.Run(ctx)
	// In-flight worker requests (final heartbeats, completions racing the
	// drain) finish before the listener closes; the short bound only caps
	// how long a stuck connection can hold up exit.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	if err != nil {
		return nil, err
	}
	p := co.Progress()
	log.Printf("grid drained: %d cells, %d lease grants, %d expiries, %d duplicates (%d salvaged, %d adopted, %d fenced)",
		p.Done, p.Attempts, p.Expiries, p.Duplicates, p.Salvaged, p.Adopted, p.Fenced)
	return res, nil
}

// emit writes the human table, the degradation line, and the optional
// JSON file — identically for the in-process and distributed paths.
func emit(res *sweep.Result, jsonOut string, quiet bool) {
	report.WriteSweep(os.Stdout, res)

	if baseline, ok := res.Baseline(); ok {
		worstName, worst := "", 0.0
		for _, s := range res.Scenarios {
			if s.Name == baseline.Name {
				continue
			}
			if d := baseline.Recall - s.Recall; d > worst {
				worst, worstName = d, s.Name
			}
		}
		if worstName != "" {
			fmt.Printf("largest recall degradation vs paper-baseline: %s (-%.3f)\n", worstName, worst)
		}
	}

	if jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if !quiet {
			log.Printf("grid result written to %s", jsonOut)
		}
	}
}
