// Command runlog inspects event-sourced run logs written by the simulator
// (incentstudy -events, sim.RunOptions.Log; format in DESIGN.md E6/E8).
//
// Usage:
//
//	runlog cat [-v] [-kind K] run.log       print events (one line each)
//	runlog stats run.log                    per-kind byte histogram, run totals
//	runlog verify run.log                   full replay with verification
//	runlog seek -day D run.log              rebuild state at day D (O(segment))
//	runlog compact [-o OUT] [-segment-bytes N] run.log
//	                                        rewrite as batched+segmented v3
//	runlog recover [-dry-run] run.log       salvage a torn/corrupt log by
//	                                        truncating to the last valid day
//
// verify rebuilds the entire world state from the log alone — every store
// metric, chart, enforcement action, and ledger balance — and fails if
// any logged chart snapshot, enforcement action, or day-end stat line
// disagrees with the recomputation, or if any frame CRC is wrong.
//
// seek does the same rebuild for one day, but restores from the nearest
// segment checkpoint and replays only that segment's events — the fast
// path month-scale logs exist for. -day accepts a date (as printed by
// cat/stats) or "last".
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/dates"
	"repro/internal/lockstep"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("runlog: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "cat":
		cat(args)
	case "stats":
		stats(args)
	case "verify":
		verify(args)
	case "seek":
		seek(args)
	case "compact":
		compact(args)
	case "recover":
		recoverLog(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: runlog {cat [-v] [-kind K] | stats | verify | seek -day D | compact [-o OUT] [-segment-bytes N] | recover [-dry-run]} run.log`)
	os.Exit(2)
}

func open(path string) (*os.File, *stream.Reader) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	r, err := stream.NewReader(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return f, r
}

func cat(args []string) {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print chart entries and batch device lists in full")
	kind := fs.String("kind", "", "only print events of this kind (e.g. install, settle, day-end)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, r := open(fs.Arg(0))
	defer f.Close()

	h := r.Header()
	fmt.Printf("# run log v%d seed=%d window=%s..%s mediator=%s fee=$%.2f\n",
		h.Version, h.Seed, h.WindowStart, h.WindowEnd, h.MediatorName, h.FeePerUser)

	var ev stream.Event
	for {
		err := r.Next(&ev)
		if err == io.EOF {
			return
		}
		if err == io.ErrUnexpectedEOF {
			log.Fatal("log ends mid-frame (killed run); resume it or verify the prefix")
		}
		if err != nil {
			log.Fatal(err)
		}
		if *kind != "" && ev.Kind.String() != *kind {
			continue
		}
		printEvent(&ev, *verbose)
	}
}

func printEvent(ev *stream.Event, verbose bool) {
	switch ev.Kind {
	case stream.KindDayStart:
		fmt.Printf("== %s ==\n", ev.Day)
	case stream.KindOrganic:
		fmt.Printf("organic       %-28s installs=%d dau=%d sec=%d usd=%.2f\n", ev.Pkg, ev.N, ev.DAU, ev.Seconds, ev.USD)
	case stream.KindClick:
		fmt.Printf("click         %-28s worker=%s\n", ev.Offer, ev.Worker)
	case stream.KindInstall:
		fmt.Printf("install       %-28s device=%s fraud=%.2f\n", ev.Pkg, ev.Device, ev.Fraud)
	case stream.KindInstallBatch:
		if verbose {
			fmt.Printf("install-batch %-28s n=%d fraud=%.2f devices=%v\n", ev.Pkg, ev.N, ev.Fraud, ev.Devices)
		} else {
			fmt.Printf("install-batch %-28s n=%d fraud=%.2f\n", ev.Pkg, ev.N, ev.Fraud)
		}
	case stream.KindPostback:
		fmt.Printf("postback      %-28s event=%d certified=%v\n", ev.Offer, ev.PostEvent, ev.Certified)
	case stream.KindCertifyBatch:
		fmt.Printf("certify-batch %-28s n=%d\n", ev.Offer, ev.N)
	case stream.KindSession:
		fmt.Printf("session       %-28s n=%d sec=%d\n", ev.Pkg, ev.N, ev.Seconds)
	case stream.KindPurchase:
		fmt.Printf("purchase      %-28s usd=%.2f\n", ev.Pkg, ev.USD)
	case stream.KindSettle:
		fmt.Printf("settle        %-28s n=%d batch=%v gross=%.4f aff=%.4f user=%.4f via %s\n",
			ev.Offer, ev.N, ev.Batch, ev.Gross, ev.AffCut, ev.UserPayout, ev.AffAcct)
	case stream.KindEnforce:
		fmt.Printf("enforce       %-28s removed=%d\n", ev.Pkg, ev.N)
	case stream.KindChart:
		fmt.Printf("chart         %-28s entries=%d\n", ev.Chart, len(ev.Entries))
		if verbose {
			for _, e := range ev.Entries {
				fmt.Printf("                #%-3d %-36s %.4f\n", e.Rank, e.Package, e.Score)
			}
		}
	case stream.KindDayEnd:
		fmt.Printf("day-end       %-28s organic=%d incent=%d certified=%d revenue=%.2f\n",
			ev.Day, ev.CumOrganic, ev.CumIncent, ev.CumCertified, ev.CumRevenue)
	}
}

func stats(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, r := open(args[0])
	defer f.Close()

	// The same walk that counts days feeds a default-config lockstep
	// detector, so the log's detection-side accounting (installs ingested,
	// buckets retracted at the population cap, pairs pruned) prints
	// without a second pass.
	det := lockstep.NewDetector(lockstep.DefaultConfig())
	var curDay dates.Date
	var installs int64

	var ev stream.Event
	var days int
	var last stream.Event
	truncated := false
	for {
		err := r.Next(&ev)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			truncated = true
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		switch ev.Kind {
		case stream.KindDayStart:
			curDay = ev.Day
		case stream.KindInstall:
			installs++
			det.Ingest(ev.Device, ev.Pkg, curDay)
		case stream.KindInstallBatch:
			for _, dev := range ev.Devices {
				installs++
				det.Ingest(dev, ev.Pkg, curDay)
			}
		case stream.KindDayEnd:
			days++
			last = ev
			last.Entries, last.Devices = nil, nil
		}
	}

	h := r.Header()
	fi, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run log %s: %d bytes, v%d, seed=%d, window %s..%s\n", args[0], fi.Size(), h.Version, h.Seed, h.WindowStart, h.WindowEnd)
	base := r.Base()
	fmt.Printf("base snapshot: store=%d ledger=%d mediator=%d bytes\n", len(base.Store), len(base.Ledger), len(base.Mediator))
	fmt.Printf("interned tables: %d devices, %d strings (packages/offers/accounts)\n", len(base.Devices), len(base.Strings))

	rows, scanned, err := stream.Histogram(f)
	if err != nil {
		log.Fatalf("histogram: %v", err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "  kind\tframes\trecords\tpayload\tframing\tcrc\ttotal\t")
	var tot stream.KindStats
	for _, s := range rows {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			s.Kind, s.Frames, s.Records, s.PayloadBytes, s.FramingBytes, s.CRCBytes,
			s.PayloadBytes+s.FramingBytes+s.CRCBytes)
		tot.Frames += s.Frames
		tot.Records += s.Records
		tot.PayloadBytes += s.PayloadBytes
		tot.FramingBytes += s.FramingBytes
		tot.CRCBytes += s.CRCBytes
	}
	fmt.Fprintf(tw, "  total\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
		tot.Frames, tot.Records, tot.PayloadBytes, tot.FramingBytes, tot.CRCBytes,
		tot.PayloadBytes+tot.FramingBytes+tot.CRCBytes)
	tw.Flush()
	fmt.Printf("%d bytes in complete frames (framing+crc = %.2f%% of scanned)\n",
		scanned, 100*float64(tot.FramingBytes+tot.CRCBytes)/float64(scanned))

	if idx, err := stream.ScanIndex(f); err == nil {
		fmt.Printf("%d segment(s), %d day-start offsets indexed\n", len(idx.Segments), len(idx.Days))
	}
	fmt.Printf("%d complete days\n", days)
	if days > 0 {
		fmt.Printf("through %s: organic=%d incentivized=%d certified=%d revenue=$%.2f\n",
			last.Day, last.CumOrganic, last.CumIncent, last.CumCertified, last.CumRevenue)
	}
	ds := det.Stats()
	fmt.Printf("lockstep (default config): %d installs ingested, %d buckets retracted at cap, %d pairs pruned\n",
		installs, ds.BucketsRetracted, ds.PairsPruned)
	if truncated {
		fmt.Println("NOTE: log ends mid-frame (killed run) — resume from its checkpoint to finish it")
	}
}

func verify(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	res, err := stream.Replay(f)
	if err != nil {
		if res != nil {
			fmt.Printf("replayed %d complete days before the failure\n", res.Stats.Days)
		}
		// Locate the first undecodable frame so a chaos-test failure is
		// diagnosable from the output alone.
		if fi, serr := f.Stat(); serr == nil {
			if info, serr := stream.ScanValid(f, fi.Size()); serr == nil {
				switch {
				case info.Corruption != nil:
					fmt.Printf("first corrupt frame: kind=%s at byte %d (%v); valid prefix ends at byte %d (%d days)\n",
						info.Corruption.Kind, info.Corruption.Offset, info.Corruption.Err, info.ValidEnd, info.Days)
				case info.ValidEnd < info.Size:
					fmt.Printf("log ends mid-frame at byte %d of %d (torn tail, not corruption); valid prefix ends at byte %d (%d days)\n",
						info.ScannedEnd, info.Size, info.ValidEnd, info.Days)
				}
				fmt.Println(`salvage with "runlog recover"`)
			}
		}
		log.Fatalf("FAIL: %v", err)
	}
	fmt.Printf("OK: %d days verified (every frame CRC, %d chart snapshots, enforcement actions, day-end stats)\n",
		res.Stats.Days, res.Stats.Days*3)
	printState(res)
}

func printState(res *stream.ReplayResult) {
	fmt.Printf("replayed state: organic=%d incentivized=%d certified=%d revenue=$%.2f installs=%d apps=%d ledger-sum=%.6f\n",
		res.Stats.OrganicInstalls, res.Stats.IncentivizedInstalls, res.Stats.CertifiedCompletions,
		res.Stats.RevenueUSD, len(res.Installs), res.Store.NumApps(), res.Ledger.Sum())
}

func seek(args []string) {
	fs := flag.NewFlagSet("seek", flag.ExitOnError)
	dayArg := fs.String("day", "last", `day to rebuild state at: a date as printed by cat, or "last"`)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	idx, err := stream.ScanIndex(f)
	if err != nil {
		log.Fatal(err)
	}
	var day dates.Date
	if *dayArg == "last" {
		last, ok := idx.LastDay()
		if !ok {
			log.Fatal("log has no days")
		}
		day = last
	} else {
		t, err := time.Parse("2006-01-02", *dayArg)
		if err != nil {
			log.Fatalf("-day: want YYYY-MM-DD or \"last\": %v", err)
		}
		day = dates.FromTime(t)
	}
	seg := idx.Segments[idx.Segment(day)]
	res, err := stream.ReplayDay(f, day)
	if err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	fmt.Printf("OK: state at end of %s (day %d of the run), restored from segment %d at %s, %d day(s) of events replayed\n",
		day, res.Stats.Days, seg.Ordinal, seg.FirstDay, day.DaysSince(seg.FirstDay)+1)
	fmt.Printf("segment directory: %d segment(s), %d days indexed, log ends at byte %d (torn=%v)\n",
		len(idx.Segments), len(idx.Days), idx.End, idx.Torn)
	printState(res)
}

func compact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: INPUT.compact)")
	segBytes := fs.Int64("segment-bytes", 0, "segment rotation threshold in bytes (0 = default 64MiB)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	in := fs.Arg(0)
	outPath := *out
	if outPath == "" {
		outPath = in + ".compact"
	}
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	o, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := stream.Compact(f, o, *segBytes)
	if err != nil {
		o.Close()
		os.Remove(outPath)
		log.Fatalf("FAIL: %v", err)
	}
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d days -> %s: %d bytes (was %d, %.2f%%), %d segment frame(s)\n",
		in, st.Days, outPath, st.OutBytes, fi.Size(), 100*float64(st.OutBytes)/float64(fi.Size()), st.Segments)
}

func recoverLog(args []string) {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dry := fs.Bool("dry-run", false, "report the salvage point without truncating the file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	var info stream.RecoverInfo
	if *dry {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		info, err = stream.ScanValid(f, fi.Size())
		if err != nil {
			log.Fatalf("FAIL: %v", err)
		}
	} else {
		var err error
		info, err = stream.Recover(path)
		if err != nil {
			log.Fatalf("FAIL: %v", err)
		}
	}
	if info.Corruption != nil {
		fmt.Printf("first corrupt frame: kind=%s at byte %d (%v)\n",
			info.Corruption.Kind, info.Corruption.Offset, info.Corruption.Err)
	}
	verb := "salvaged"
	if *dry {
		verb = "would salvage"
	}
	if info.Dropped() == 0 {
		fmt.Printf("%s: intact, %d complete days in %d bytes, nothing to drop\n", path, info.Days, info.Size)
		return
	}
	fmt.Printf("%s: %s %d complete days (through %s), truncating %d -> %d bytes (drops %d)\n",
		path, verb, info.Days, info.LastDay, info.Size, info.ValidEnd, info.Dropped())
}
