// Command storectl serves a populated synthetic Play Store over HTTP and
// issues example queries against it — profile pages, top charts, catalog —
// demonstrating the exact crawl surface the study's crawler consumes.
//
// With -serve the server stays up for interactive use (curl).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/playapi"
	"repro/internal/playstore"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 0, "override the world seed")
	serve := flag.Bool("serve", false, "keep serving until interrupted")
	flag.Parse()

	cfg := sim.TinyConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	world, err := sim.NewWorld(cfg)
	if err != nil {
		log.Fatalf("storectl: %v", err)
	}
	if _, err := world.Run(); err != nil {
		log.Fatalf("storectl: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("storectl: %v", err)
	}
	srv := &http.Server{
		Handler:           playapi.New(world.Store, world.APKs).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("store API listening on %s\n\n", base)

	show := func(path string) {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatalf("storectl: GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var v any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatalf("storectl: decode %s: %v", path, err)
		}
		out, _ := json.MarshalIndent(v, "", "  ")
		fmt.Printf("GET %s\n%s\n\n", path, truncate(string(out), 1200))
	}

	pkg := world.Advertised[0].Package
	show("/apps/" + pkg)
	show(fmt.Sprintf("/charts/%s", playstore.ChartTopFree))
	show("/catalog")

	if *serve {
		fmt.Println("serving; press Ctrl-C to stop")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n  ... (truncated)"
}
