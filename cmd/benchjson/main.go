// Command benchjson runs a set of Go benchmarks and records the parsed
// results (ns/op, B/op, allocs/op) into a JSON file, keyed by a label such
// as "before" or "after". scripts/bench.sh drives it to maintain the
// per-PR performance trajectory files (BENCH_PR2.json, ...).
//
// Each positional argument is a suite spec
// "dir:benchRegexp:benchtime[:countN]", e.g.
// "./internal/playstore:BenchmarkStepDayScale|BenchmarkAppWindow:200x".
// Every suite runs with -run=NONE -benchmem and the configured -count
// (the optional ":countN" suffix overrides -count for that one suite —
// used when a derived metric needs more samples than the heavy suites
// can afford), and all parsed result lines are appended under the label.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark output line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Run is every sample collected under one label. The environment block
// (go version, GOMAXPROCS, CPU model) is what makes the committed
// BENCH_*.json trajectory interpretable across PRs: a regression that is
// really a machine change shows up here instead of being mistaken for a
// code change.
type Run struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	CPUModel   string   `json:"cpu_model,omitempty"`
	Count      int      `json:"count"`
	Results    []Result `json:"results"`
	// Derived metrics computed from the samples above when the run
	// recorded the benchmarks they need (medians across -count samples):
	//   events_on_off_overhead_pct  (SimRunEvents on vs off, the E6/E8
	//                                <5% events-on target)
	//   seek_vs_full_replay_speedup (RunLogSeek full-replay / seek)
	//   metrics_on_off_overhead_pct (SimRunMetrics on vs off, the E11
	//                                <1% observability target)
	Derived map[string]float64 `json:"derived,omitempty"`
}

// medianNs returns the median ns/op of the results whose name starts
// with prefix (the go test -N GOMAXPROCS suffix varies by machine), or 0
// when none match.
func medianNs(results []Result, prefix string) float64 {
	var xs []float64
	for _, r := range results {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			xs = append(xs, r.NsPerOp)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

// minNs returns the minimum ns/op of the results whose name starts with
// prefix, or 0 when none match. On a shared/virtualized host the
// per-sample noise (CPU steal, frequency drift) is strictly additive —
// it can only slow a sample down, never speed it up — so the minimum is
// the lowest-noise estimator of a benchmark's true cost, which matters
// when the effect being measured (the <1% E11 overhead target) is far
// smaller than this host's ±20% sample spread.
func minNs(results []Result, prefix string) float64 {
	best := 0.0
	for _, r := range results {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			if best == 0 || r.NsPerOp < best {
				best = r.NsPerOp
			}
		}
	}
	return best
}

// derive recomputes a run's derived metrics from its samples.
func derive(run *Run) {
	d := map[string]float64{}
	off := medianNs(run.Results, "BenchmarkSimRunEvents/events=off")
	on := medianNs(run.Results, "BenchmarkSimRunEvents/events=on")
	if off > 0 && on > 0 {
		d["events_on_off_overhead_pct"] = 100 * (on - off) / off
	}
	// Min-based, not median: the E11 target (<1%) sits far below this
	// host's sample noise, and the additive-noise argument on minNs makes
	// the minimum the right estimator for it. The pre-existing median
	// metrics above keep their definition for cross-PR comparability.
	mOff := minNs(run.Results, "BenchmarkSimRunMetrics/metrics=off")
	mOn := minNs(run.Results, "BenchmarkSimRunMetrics/metrics=on")
	if mOff > 0 && mOn > 0 {
		d["metrics_on_off_overhead_pct"] = 100 * (mOn - mOff) / mOff
	}
	full := medianNs(run.Results, "BenchmarkRunLogSeek/mode=full-replay")
	seek := medianNs(run.Results, "BenchmarkRunLogSeek/mode=seek-last-day")
	if full > 0 && seek > 0 {
		d["seek_vs_full_replay_speedup"] = full / seek
	}
	if len(d) > 0 {
		run.Derived = d
	}
}

// cpuModel best-effort identifies the CPU this run executed on: the
// first "model name" line of /proc/cpuinfo on Linux, empty elsewhere
// (the field is omitted rather than guessed).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// File is the on-disk shape: one run per label.
type File struct {
	Description string          `json:"description"`
	Runs        map[string]*Run `json:"runs"`
}

// benchLine matches standard testing benchmark output, with or without
// -benchmem columns and with or without the -N GOMAXPROCS suffix.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label to record results under (e.g. before, after)")
	out := flag.String("out", "BENCH.json", "JSON file to create or merge into")
	count := flag.Int("count", 3, "benchmark -count")
	flag.Parse()
	if *label == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -label NAME [-out FILE] [-count N] dir:benchRegexp:benchtime ...")
		os.Exit(2)
	}

	run := &Run{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Count:      *count,
	}
	for _, spec := range flag.Args() {
		parts := strings.SplitN(spec, ":", 4)
		if len(parts) < 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad suite spec %q (want dir:benchRegexp:benchtime[:countN])\n", spec)
			os.Exit(2)
		}
		dir, pattern, benchtime := parts[0], parts[1], parts[2]
		suiteCount := *count
		if len(parts) == 4 {
			n, err := strconv.Atoi(strings.TrimPrefix(parts[3], "count"))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchjson: bad suite spec %q (count suffix must be countN)\n", spec)
				os.Exit(2)
			}
			suiteCount = n
		}
		results, err := runSuite(dir, pattern, benchtime, suiteCount)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: suite %q: %v\n", spec, err)
			os.Exit(1)
		}
		run.Results = append(run.Results, results...)
	}

	file := &File{Runs: map[string]*Run{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse existing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if file.Description == "" {
		file.Description = "go test benchmark samples recorded by scripts/bench.sh (cmd/benchjson)"
	}
	if file.Runs == nil {
		file.Runs = map[string]*Run{}
	}
	file.Runs[*label] = run
	for _, r := range file.Runs {
		derive(r)
	}

	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d results under %q in %s\n", len(run.Results), *label, *out)
}

// runSuite executes one go test -bench invocation and parses its output.
func runSuite(dir, pattern, benchtime string, count int) ([]Result, error) {
	args := []string{
		"test", "-run=NONE", "-benchmem",
		"-bench=" + pattern,
		"-benchtime=" + benchtime,
		"-count=" + strconv.Itoa(count),
		dir,
	}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outRaw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, outRaw)
	}
	var results []Result
	for _, line := range strings.Split(string(outRaw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched pattern %q in %s", pattern, dir)
	}
	return results, nil
}
