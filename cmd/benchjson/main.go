// Command benchjson runs a set of Go benchmarks and records the parsed
// results (ns/op, B/op, allocs/op) into a JSON file, keyed by a label such
// as "before" or "after". scripts/bench.sh drives it to maintain the
// per-PR performance trajectory files (BENCH_PR2.json, ...).
//
// Each positional argument is a suite spec
// "dir:benchRegexp:benchtime[:countN][:-flag...]", e.g.
// "./internal/playstore:BenchmarkStepDayScale|BenchmarkAppWindow:200x".
// Every suite runs with -run=NONE -benchmem and the configured -count
// (the optional ":countN" suffix overrides -count for that one suite —
// used when a derived metric needs more samples than the heavy suites
// can afford; any ":-flag" parts are passed to the test binary, e.g.
// ":-massive" for the full-scale E12 worlds), and all parsed result
// lines are appended under the label.
//
// Beyond the standard ns/op, B/op, and allocs/op columns, any custom
// b.ReportMetric columns (peakRSS-MB, devices, ns/device-day, ...) are
// recorded per result under "metrics".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark output line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric columns by unit
	// (e.g. "peakRSS-MB", "devices", "ns/device-day").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is every sample collected under one label. The environment block
// (go version, GOMAXPROCS, CPU model) is what makes the committed
// BENCH_*.json trajectory interpretable across PRs: a regression that is
// really a machine change shows up here instead of being mistaken for a
// code change.
type Run struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	CPUModel   string   `json:"cpu_model,omitempty"`
	Count      int      `json:"count"`
	Results    []Result `json:"results"`
	// Derived metrics computed from the samples above when the run
	// recorded the benchmarks they need (medians across -count samples):
	//   events_on_off_overhead_pct  (SimRunEvents on vs off, the E6/E8
	//                                <5% events-on target)
	//   seek_vs_full_replay_speedup (RunLogSeek full-replay / seek)
	//   metrics_on_off_overhead_pct (SimRunMetrics on vs off, the E11
	//                                <1% observability target)
	Derived map[string]float64 `json:"derived,omitempty"`
}

// medianNs returns the median ns/op of the results whose name starts
// with prefix (the go test -N GOMAXPROCS suffix varies by machine), or 0
// when none match.
func medianNs(results []Result, prefix string) float64 {
	var xs []float64
	for _, r := range results {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			xs = append(xs, r.NsPerOp)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

// minNs returns the minimum ns/op of the results whose name starts with
// prefix, or 0 when none match. On a shared/virtualized host the
// per-sample noise (CPU steal, frequency drift) is strictly additive —
// it can only slow a sample down, never speed it up — so the minimum is
// the lowest-noise estimator of a benchmark's true cost, which matters
// when the effect being measured (the <1% E11 overhead target) is far
// smaller than this host's ±20% sample spread.
func minNs(results []Result, prefix string) float64 {
	best := 0.0
	for _, r := range results {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			if best == 0 || r.NsPerOp < best {
				best = r.NsPerOp
			}
		}
	}
	return best
}

// medianMetric returns the median of a custom metric column (by unit)
// across the results whose name starts with prefix, or 0 when none
// carry it.
func medianMetric(results []Result, prefix, unit string) float64 {
	var xs []float64
	for _, r := range results {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			if v, ok := r.Metrics[unit]; ok {
				xs = append(xs, v)
			}
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	}
	return (xs[len(xs)/2-1] + xs[len(xs)/2]) / 2
}

// rssBudgetMB is the fixed memory budget the max-world derivations
// extrapolate against (DESIGN.md E12): how many devices fit 2 GiB,
// scaling the measured peak linearly with the population.
const rssBudgetMB = 2048

// derive recomputes a run's derived metrics from its samples.
func derive(run *Run) {
	d := map[string]float64{}
	off := medianNs(run.Results, "BenchmarkSimRunEvents/events=off")
	on := medianNs(run.Results, "BenchmarkSimRunEvents/events=on")
	if off > 0 && on > 0 {
		d["events_on_off_overhead_pct"] = 100 * (on - off) / off
	}
	// Min-based, not median: the E11 target (<1%) sits far below this
	// host's sample noise, and the additive-noise argument on minNs makes
	// the minimum the right estimator for it. The pre-existing median
	// metrics above keep their definition for cross-PR comparability.
	mOff := minNs(run.Results, "BenchmarkSimRunMetrics/metrics=off")
	mOn := minNs(run.Results, "BenchmarkSimRunMetrics/metrics=on")
	if mOff > 0 && mOn > 0 {
		d["metrics_on_off_overhead_pct"] = 100 * (mOn - mOff) / mOff
	}
	full := medianNs(run.Results, "BenchmarkRunLogSeek/mode=full-replay")
	seek := medianNs(run.Results, "BenchmarkRunLogSeek/mode=seek-last-day")
	if full > 0 && seek > 0 {
		d["seek_vs_full_replay_speedup"] = full / seek
	}
	// E12 massive-world metrics: sustainable world size at the fixed RSS
	// budget per install-log variant (spill=on bounds the log's resident
	// tail; spill=off keeps the whole run's installs in RAM), and the
	// per-device-day cost ratio against the ScaleConfig engine baseline.
	for variant, key := range map[string]string{
		"spill=on":  "max_world_devices_at_budget",
		"spill=off": "max_world_devices_at_budget_unspilled",
	} {
		prefix := "BenchmarkMassiveWorld/" + variant
		devs := medianMetric(run.Results, prefix, "devices")
		rss := medianMetric(run.Results, prefix, "peakRSS-MB")
		if devs > 0 && rss > 0 {
			d[key] = devs * rssBudgetMB / rss
		}
	}
	if on, off := d["max_world_devices_at_budget"], d["max_world_devices_at_budget_unspilled"]; on > 0 && off > 0 {
		d["spill_world_scale_ratio"] = on / off
	}
	// The largest world the tree could express before E12 was ScaleConfig:
	// 400 workers across 7 IIPs = 2800 devices, with no population knobs
	// beyond it. The order-of-magnitude claim is judged against that prior
	// ceiling — the budget-sustainable spilled world over 2800 — not just
	// the spill on/off ratio, which only measures the install log's share.
	const priorMaxWorldDevices = 2800
	if on := d["max_world_devices_at_budget"]; on > 0 {
		d["world_scale_vs_prior_max"] = on / priorMaxWorldDevices
	}
	massiveNs := medianMetric(run.Results, "BenchmarkMassiveWorld/spill=on", "ns/device-day")
	scaleNs := medianMetric(run.Results, "BenchmarkSimRunScale/workers=max", "ns/device-day")
	if scaleNs == 0 {
		scaleNs = medianMetric(run.Results, "BenchmarkSimRunScale/workers=1", "ns/device-day")
	}
	if massiveNs > 0 && scaleNs > 0 {
		d["massive_vs_scale_ns_per_device_day_ratio"] = massiveNs / scaleNs
	}
	if len(d) > 0 {
		run.Derived = d
	}
}

// cpuModel best-effort identifies the CPU this run executed on: the
// first "model name" line of /proc/cpuinfo on Linux, empty elsewhere
// (the field is omitted rather than guessed).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// File is the on-disk shape: one run per label.
type File struct {
	Description string          `json:"description"`
	Runs        map[string]*Run `json:"runs"`
}

// benchLine matches the mandatory prefix of standard testing benchmark
// output (with or without the -N GOMAXPROCS suffix); the remaining
// "value unit" column pairs — -benchmem's B/op and allocs/op plus any
// custom b.ReportMetric columns — are parsed by parseLine.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// parseLine parses one benchmark output line, nil if it is not one.
func parseLine(line string) *Result {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return nil
	}
	r := &Result{Name: m[1]}
	r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
	r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r
}

func main() {
	label := flag.String("label", "", "label to record results under (e.g. before, after)")
	out := flag.String("out", "BENCH.json", "JSON file to create or merge into")
	count := flag.Int("count", 3, "benchmark -count")
	flag.Parse()
	if *label == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -label NAME [-out FILE] [-count N] dir:benchRegexp:benchtime ...")
		os.Exit(2)
	}

	run := &Run{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Count:      *count,
	}
	for _, spec := range flag.Args() {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad suite spec %q (want dir:benchRegexp:benchtime[:countN][:-flag...])\n", spec)
			os.Exit(2)
		}
		dir, pattern, benchtime := parts[0], parts[1], parts[2]
		suiteCount := *count
		var extra []string
		for _, part := range parts[3:] {
			if strings.HasPrefix(part, "-") {
				extra = append(extra, part)
				continue
			}
			n, err := strconv.Atoi(strings.TrimPrefix(part, "count"))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchjson: bad suite spec %q (trailing parts must be countN or -flag)\n", spec)
				os.Exit(2)
			}
			suiteCount = n
		}
		results, err := runSuite(dir, pattern, benchtime, suiteCount, extra)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: suite %q: %v\n", spec, err)
			os.Exit(1)
		}
		run.Results = append(run.Results, results...)
	}

	file := &File{Runs: map[string]*Run{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse existing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if file.Description == "" {
		file.Description = "go test benchmark samples recorded by scripts/bench.sh (cmd/benchjson)"
	}
	if file.Runs == nil {
		file.Runs = map[string]*Run{}
	}
	file.Runs[*label] = run
	for _, r := range file.Runs {
		derive(r)
	}

	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d results under %q in %s\n", len(run.Results), *label, *out)
}

// runSuite executes one go test -bench invocation and parses its output.
// extra flags go after the package path, so the go tool forwards them to
// the test binary (e.g. -massive).
func runSuite(dir, pattern, benchtime string, count int, extra []string) ([]Result, error) {
	args := []string{
		"test", "-run=NONE", "-benchmem",
		"-bench=" + pattern,
		"-benchtime=" + benchtime,
		"-count=" + strconv.Itoa(count),
		dir,
	}
	args = append(args, extra...)
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outRaw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, outRaw)
	}
	var results []Result
	for _, line := range strings.Split(string(outRaw), "\n") {
		if r := parseLine(line); r != nil {
			results = append(results, *r)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched pattern %q in %s", pattern, dir)
	}
	return results, nil
}
