// Command milker stands up the live monitoring infrastructure against a
// synthetic world — the per-IIP offer-wall HTTP servers, the instrumented
// affiliate apps, the UI fuzzer, and the recording proxy — milks every
// wall from the eight vantage countries for a number of simulated days,
// and dumps the resulting deduplicated offer dataset as CSV-ish rows.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/monitor"
	"repro/internal/offers"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 0, "override the world seed")
	daysN := flag.Int("days", 12, "simulated days to run the world before/while milking")
	every := flag.Int("every", 4, "milk every N days")
	flag.Parse()

	cfg := sim.TinyConfig()
	cfg.Window.End = cfg.Window.Start.AddDays(*daysN - 1)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	world, err := sim.NewWorld(cfg)
	if err != nil {
		log.Fatalf("milker: %v", err)
	}

	// Offer-wall servers, one per IIP.
	rates := map[string]float64{}
	for _, a := range world.Affiliates {
		rates[a.Package] = a.PointsPerUSD
	}
	endpoints := map[string]string{}
	var servers []*http.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	for _, p := range world.PlatformsSorted() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("milker: %v", err)
		}
		srv := &http.Server{Handler: iip.NewServer(p, rates).Handler(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
		servers = append(servers, srv)
		endpoints[p.Name] = "http://" + ln.Addr().String()
		log.Printf("offer wall %-13s %s", p.Name, endpoints[p.Name])
	}

	milk, err := monitor.NewMilker(world.Affiliates, endpoints)
	if err != nil {
		log.Fatalf("milker: %v", err)
	}
	defer milk.Close()

	start := world.Cfg.Window.Start
	if _, err := world.RunWithHook(func(day dates.Date) error {
		if day.DaysSince(start)%*every != 0 {
			return nil
		}
		return milk.MilkDay(day)
	}); err != nil {
		log.Fatalf("milker: %v", err)
	}

	cls := offers.RuleClassifier{}
	dataset := milk.Offers()
	fmt.Printf("# %d offers milked over %d runs\n", len(dataset), len(milk.MilkDays()))
	fmt.Println("offer_id,iip,app,type,arbitrage,payout_usd,first_seen,last_seen,description")
	for _, o := range dataset {
		fmt.Printf("%s,%s,%s,%v,%v,%.2f,%s,%s,%q\n",
			o.ID, o.IIP, o.AppPackage, cls.Classify(o.Description),
			offers.IsArbitrage(o.Description), o.PayoutUSD,
			o.FirstSeen, o.LastSeen, o.Description)
	}
}
