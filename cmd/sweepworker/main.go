// Command sweepworker is one worker process of a distributed sweep: it
// leases grid cells from a sweep -serve coordinator, runs each cell's
// full simulation with the run log and day-boundary checkpoints spooled
// to disk, heartbeats at every day barrier, and reports completions.
//
// Usage:
//
//	sweepworker -coordinator URL [-name N] [-spool DIR] [-checkpoint-every D]
//	            [-crash point=N,...] [-fault-write P[:SEED]] [-quiet]
//	            [-log-level L] [-log-format text|json] [-metrics-addr ADDR] [-pprof]
//
// A killed worker loses nothing durable: its lease expires, the
// coordinator reissues the cell, and the successor worker (pointed at
// the same -spool) salvages the torn run log, restores the last
// checkpoint, and resumes the cell instead of restarting it.
//
// SIGINT/SIGTERM stop the worker gracefully: a cell in flight finishes
// its current day, checkpoints its spool, and releases its lease with a
// transient failure so the coordinator reissues it immediately — the
// successor RESUMES from the checkpoint rather than waiting out the
// lease and restarting. Exit code 0 means the grid drained or the
// worker was gracefully stopped; fault.CrashExitCode (3) means a
// planned -crash point fired (chaos harnesses loop on it); anything
// else is a real failure.
//
// -crash arms deterministic process kills at named execution points
// ("worker-lease", "cell-day", "cell-complete" — e.g. -crash
// cell-day=29 dies at the 29th day boundary this process executes); the
// FAULT_CRASH environment variable is an alternative spelling.
// -fault-write injects seeded write failures with torn prefixes into the
// spooled run log, exercising stream.Recover on the next incarnation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/fault"
	"repro/internal/lockstep"
	"repro/internal/obs"
	"repro/internal/sweep"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL (e.g. http://127.0.0.1:7077) or ADDR[:PORT]")
	name := flag.String("name", fmt.Sprintf("pid%d", os.Getpid()), "worker name for log lines")
	spool := flag.String("spool", "", "directory for per-cell run logs and checkpoints (default: a temp dir, losing crash-resume across restarts)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "days between spooled checkpoints (<=1 = every day)")
	crash := flag.String("crash", "", "comma-separated crash plan point=N (points: worker-lease, cell-day, cell-complete)")
	faultWrite := flag.String("fault-write", "", "inject write faults into spooled logs: probability[:seed]")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/trace on this address (e.g. 127.0.0.1:0)")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof/")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sweepworker: ")

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if *quiet {
		logger = obs.Discard()
	}
	logger = logger.With("worker", *name)

	if *coordinator == "" {
		log.Fatal("-coordinator is required")
	}
	base := *coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	if *crash != "" {
		plan, err := fault.ParseCrashPlan(*crash)
		if err != nil {
			log.Fatal(err)
		}
		fault.Crash = plan
	} else if err := fault.ArmCrashFromEnv(); err != nil {
		log.Fatal(err)
	}

	var injector *fault.Injector
	if *faultWrite != "" {
		prob, seed, err := parseFaultWrite(*faultWrite)
		if err != nil {
			log.Fatal(err)
		}
		injector = fault.New(fault.Config{Seed: seed, WriteErrorProb: prob, TornWrites: true})
	}

	spoolDir := *spool
	if spoolDir == "" {
		dir, err := os.MkdirTemp("", "sweepworker-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		spoolDir = dir
	} else if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	wm := sweep.NewWorkerMetrics(reg)
	wk := &sweep.Worker{
		Client: &sweep.Client{BaseURL: base, RetryCounter: wm.Retries},
		Name:   *name,
		Runner: sweep.CellRunner{
			SpoolDir:        spoolDir,
			CheckpointEvery: *checkpointEvery,
			Fault:           injector,
			Detector:        lockstep.NewMetrics(reg),
		},
		Log:     logger,
		Metrics: wm,
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, reg, nil, *pprofOn)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown(context.Background())
		logger.Info("metrics listening", "addr", bound)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := wk.Run(ctx); err != nil {
		switch {
		case sweep.IsInjected(err):
			// An injected fault is this process's planned death: exit with
			// the crash code so harness restart loops treat it like a kill.
			logger.Warn("injected fault", "error", err)
			os.Exit(fault.CrashExitCode)
		case errors.Is(err, context.Canceled):
			// Graceful stop: the in-flight cell checkpointed at its day
			// barrier and its lease was released for a successor to resume.
			logger.Info("stopped gracefully", "error", err)
			return
		}
		log.Fatal(err)
	}
}

// parseFaultWrite parses "probability[:seed]".
func parseFaultWrite(s string) (prob float64, seed uint64, err error) {
	probStr, seedStr, hasSeed := strings.Cut(s, ":")
	prob, err = strconv.ParseFloat(probStr, 64)
	if err != nil || prob < 0 || prob > 1 {
		return 0, 0, fmt.Errorf("-fault-write %q: want probability in [0,1]", s)
	}
	if hasSeed {
		seed, err = strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("-fault-write %q: bad seed", s)
		}
	}
	return prob, seed, nil
}
