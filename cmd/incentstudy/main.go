// Command incentstudy runs the full reproduction of "Understanding
// Incentivized Mobile App Installs on Google Play Store" (IMC '20) against
// the synthetic ecosystem and prints every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	incentstudy [-seed N] [-tiny] [-scale] [-massive] [-apps N] [-devices N] [-days N]
//	            [-workers N] [-install-log-window N] [-milk-every D] [-skip-honey] [-quiet]
//	            [-events run.log] [-checkpoint run.ckpt] [-checkpoint-every N] [-resume run.ckpt]
//	            [-fault-write P[:SEED]] [-log-level L] [-log-format text|json]
//	            [-metrics-addr ADDR] [-pprof] [-trace-out FILE]
//
// With -metrics-addr the run serves GET /metrics (Prometheus text),
// /debug/vars (JSON snapshot), and /debug/trace (run-phase spans) while
// it executes; -pprof additionally mounts net/http/pprof. -trace-out
// writes the final run-phase trace (one line per recorded span) to a
// file at exit. Observation is provably off the deterministic path:
// results, the run log, and checkpoints are bit-identical with these
// flags on or off (see DESIGN.md E11).
//
// With -events the run streams its event-sourced log (installs, clicks,
// postbacks, settlements, enforcement, chart snapshots) to a file that
// cmd/runlog can cat/stats/verify and that stream.Replay rebuilds the
// world from. With -checkpoint the run leaves a resumable day-boundary
// checkpoint; after a crash, rerun with the same size/seed flags plus
// -resume (and the same -events path, which is truncated to the
// checkpoint and appended byte-identically).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/offers"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 0, "override the world seed (0 = calibrated default)")
	tiny := flag.Bool("tiny", false, "run the small smoke-test world instead of the full study")
	scale := flag.Bool("scale", false, "run the ~20x throughput-test world (see sim.ScaleConfig)")
	massive := flag.Bool("massive", false, "run the ~100k-app / ~1M-device world (see sim.MassiveConfig; spills the install log to disk)")
	apps := flag.Int("apps", 0, "total catalog size: background apps absorb the difference over the calibrated baseline+advertised populations (0 = base config)")
	devices := flag.Int("devices", 0, "total crowd-worker devices across the seven IIP pools (0 = base config)")
	days := flag.Int("days", 0, "monitored window length in days (0 = base config)")
	workers := flag.Int("workers", 0, "day-engine worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	installLogWindow := flag.Int("install-log-window", -1, "bound the resident install log to this many records, spilling the rest to disk (0 = fully in RAM; -1 = config default; results are identical for any value)")
	milkEvery := flag.Int("milk-every", 4, "days between offer-wall milking runs")
	skipHoney := flag.Bool("skip-honey", false, "skip the Section 3 honey-app experiment")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	dumpOffers := flag.String("dump-offers", "", "write the milked offer dataset to this CSV file (the paper's shared-data analogue)")
	events := flag.String("events", "", "stream the event-sourced run log to this file (inspect with cmd/runlog)")
	segmentBytes := flag.Int64("segment-bytes", 0, "event-log segment rotation threshold in bytes (0 = 64MiB default; ignored on resume)")
	checkpoint := flag.String("checkpoint", "", "write a resumable day-boundary checkpoint to this file")
	checkpointEvery := flag.Int("checkpoint-every", 7, "days between checkpoints (each checkpoint re-encodes full run state; see DESIGN.md E6)")
	resume := flag.String("resume", "", "resume a killed run from this checkpoint (same seed/size flags required)")
	faultWrite := flag.String("fault-write", "", "inject torn writes into the event log (chaos testing): probability[:seed]; the run dies with exit code 3 when one fires")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/trace on this address while the run executes (e.g. 127.0.0.1:0)")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof/")
	traceOut := flag.String("trace-out", "", "write the final run-phase trace to this file at exit")
	logFlags := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		log.Fatalf("incentstudy: %v", lerr)
	}
	if *quiet {
		logger = obs.Discard()
	}

	nBase := 0
	for _, on := range []bool{*tiny, *scale, *massive} {
		if on {
			nBase++
		}
	}
	if nBase > 1 {
		log.Fatal("incentstudy: -tiny, -scale, and -massive are mutually exclusive")
	}
	cfg := sim.DefaultConfig()
	if *tiny {
		cfg = sim.TinyConfig()
	}
	if *scale {
		cfg = sim.ScaleConfig()
	}
	if *massive {
		cfg = sim.MassiveConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *apps > 0 || *devices > 0 || *days > 0 {
		if err := cfg.Resize(*apps, *devices, *days); err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
	}
	cfg.Workers = *workers
	if *installLogWindow >= 0 {
		cfg.InstallLogWindow = *installLogWindow
	}

	opts := core.Options{
		MilkEveryDays:   *milkEvery,
		SkipHoney:       *skipHoney,
		EventLogPath:    *events,
		SegmentBytes:    *segmentBytes,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		ResumePath:      *resume,
	}
	// The study's progress callback stays printf-style (core predates
	// structured logging) but lands in the leveled logger, so -log-format
	// json yields machine-readable progress records.
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.DefaultTraceCap)
	opts.Obs, opts.Trace = reg, tr
	if *faultWrite != "" {
		prob, fseed, err := parseFaultWrite(*faultWrite)
		if err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
		inj := fault.New(fault.Config{Seed: fseed, WriteErrorProb: prob, TornWrites: true})
		opts.WrapEventLog = inj.Writer
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, reg, tr, *pprofOn)
		if err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
		defer shutdown(context.Background())
		logger.Info("metrics listening", "addr", bound)
	}

	// SIGINT/SIGTERM stop the run at its next day barrier with the event
	// log flushed and (when -checkpoint is set) a final checkpoint
	// written: the interrupted run resumes with -resume like a crashed
	// one, minus the torn-tail salvage.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	study, err := core.RunCtx(ctx, cfg, opts)
	if err != nil {
		if errors.Is(err, fault.ErrInjected) {
			// The injected fault is this run's simulated crash: exit with
			// the crash code so chaos restart loops recognize it, leaving
			// the torn log + checkpoint for the -resume successor.
			log.Printf("incentstudy: injected fault: %v", err)
			os.Exit(fault.CrashExitCode)
		}
		if errors.Is(err, context.Canceled) {
			log.Printf("incentstudy: interrupted: %v", err)
			if *checkpoint != "" {
				log.Printf("incentstudy: resume with -resume %s (same seed/size flags)", *checkpoint)
			}
			return
		}
		log.Fatalf("incentstudy: %v", err)
	}
	defer study.Close()
	logger.Info("study complete",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"organic_installs", study.Results.RunStats.OrganicInstalls,
		"incentivized_installs", study.Results.RunStats.IncentivizedInstalls)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
		if err := tr.Dump(f); err != nil {
			log.Fatalf("incentstudy: writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("incentstudy: writing trace: %v", err)
		}
		logger.Info("run-phase trace written", "path", *traceOut, "spans", len(tr.Spans()), "recorded", tr.Total())
	}
	report.WriteAll(os.Stdout, &study.Results)
	fmt.Printf("ledger conservation: sum = %.6f (0 means no money created or destroyed)\n",
		study.World.Ledger.Sum())

	if *dumpOffers != "" {
		f, err := os.Create(*dumpOffers)
		if err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
		defer f.Close()
		if err := offers.WriteCSV(f, study.Milker.Offers()); err != nil {
			log.Fatalf("incentstudy: dumping offers: %v", err)
		}
		logger.Info("offer dataset written", "path", *dumpOffers)
	}
}

// parseFaultWrite parses "probability[:seed]".
func parseFaultWrite(s string) (prob float64, seed uint64, err error) {
	probStr, seedStr, hasSeed := strings.Cut(s, ":")
	prob, err = strconv.ParseFloat(probStr, 64)
	if err != nil || prob < 0 || prob > 1 {
		return 0, 0, fmt.Errorf("-fault-write %q: want probability in [0,1]", s)
	}
	if hasSeed {
		seed, err = strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("-fault-write %q: bad seed", s)
		}
	}
	return prob, seed, nil
}
