// Command incentstudy runs the full reproduction of "Understanding
// Incentivized Mobile App Installs on Google Play Store" (IMC '20) against
// the synthetic ecosystem and prints every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	incentstudy [-seed N] [-tiny] [-scale] [-workers N] [-milk-every D] [-skip-honey] [-quiet]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/offers"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 0, "override the world seed (0 = calibrated default)")
	tiny := flag.Bool("tiny", false, "run the small smoke-test world instead of the full study")
	scale := flag.Bool("scale", false, "run the ~20x throughput-test world (see sim.ScaleConfig)")
	workers := flag.Int("workers", 0, "day-engine worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	milkEvery := flag.Int("milk-every", 4, "days between offer-wall milking runs")
	skipHoney := flag.Bool("skip-honey", false, "skip the Section 3 honey-app experiment")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	dumpOffers := flag.String("dump-offers", "", "write the milked offer dataset to this CSV file (the paper's shared-data analogue)")
	flag.Parse()

	if *tiny && *scale {
		log.Fatal("incentstudy: -tiny and -scale are mutually exclusive")
	}
	cfg := sim.DefaultConfig()
	if *tiny {
		cfg = sim.TinyConfig()
	}
	if *scale {
		cfg = sim.ScaleConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	opts := core.Options{MilkEveryDays: *milkEvery, SkipHoney: *skipHoney}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}

	start := time.Now()
	study, err := core.Run(cfg, opts)
	if err != nil {
		log.Fatalf("incentstudy: %v", err)
	}
	defer study.Close()
	if !*quiet {
		log.Printf("study complete in %s (%d organic installs, %d incentivized installs)",
			time.Since(start).Round(time.Millisecond),
			study.Results.RunStats.OrganicInstalls,
			study.Results.RunStats.IncentivizedInstalls)
	}
	report.WriteAll(os.Stdout, &study.Results)
	fmt.Printf("ledger conservation: sum = %.6f (0 means no money created or destroyed)\n",
		study.World.Ledger.Sum())

	if *dumpOffers != "" {
		f, err := os.Create(*dumpOffers)
		if err != nil {
			log.Fatalf("incentstudy: %v", err)
		}
		defer f.Close()
		if err := offers.WriteCSV(f, study.Milker.Offers()); err != nil {
			log.Fatalf("incentstudy: dumping offers: %v", err)
		}
		if !*quiet {
			log.Printf("offer dataset written to %s", *dumpOffers)
		}
	}
}
