// Package repro is a from-scratch Go reproduction of "Understanding
// Incentivized Mobile App Installs on Google Play Store" (Farooqi et al.,
// IMC 2020): a synthetic incentivized-install ecosystem (Play Store, IIP
// offer walls, affiliate apps, crowd workers, attribution mediator, money
// ledger, Crunchbase snapshot) plus the paper's full measurement pipeline
// (honey-app experiment, UI-fuzzer + MITM-proxy monitoring, longitudinal
// store crawler, classifiers, chi-squared impact analyses) regenerating
// every table and figure of the evaluation.
//
// The root package holds the per-table/per-figure benchmark harness; the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/.
package repro
