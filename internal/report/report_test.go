package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/stats"
)

func TestTableAlignmentAndContent(t *testing.T) {
	tbl := NewTable("A", "Long header", "C")
	tbl.Row("x", 1, 2.5)
	tbl.Row("longer-cell", "y", "z")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, sep, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Long header") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "2.5") || !strings.Contains(lines[3], "longer-cell") {
		t.Errorf("rows wrong: %q %q", lines[2], lines[3])
	}
	// Columns align: "Long header" starts at same offset in all lines.
	idx := strings.Index(lines[0], "Long header")
	if strings.Index(lines[3], "y") != idx {
		t.Errorf("column misaligned: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := pct(0.44); got != "44.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := usd(2.975); got != "$2.98" {
		t.Errorf("usd = %q", got)
	}
	if vet(true) != "Vetted" || vet(false) != "Unvetted" {
		t.Error("vet labels wrong")
	}
}

// sampleResults builds a minimal populated Results for render tests.
func sampleResults() *core.Results {
	return &core.Results{
		Dataset: core.DatasetSummary{Offers: 10, UniqueApps: 5, UniqueDescriptions: 7, MilkDays: 3, CrawlDays: 6},
		Table1: []core.Table1Row{
			{Name: iip.Fyber, HomeURL: "fyber.com", Vetted: true, MinDepositUSD: 2000},
			{Name: iip.RankApp, HomeURL: "rankapp.org", Vetted: false, MinDepositUSD: 20},
		},
		Table2: []core.Table2Row{
			{Package: "com.cash.app", InstallsBin: 1_000_000, Integrations: map[string]bool{iip.Fyber: true}},
		},
		Table3: []core.Table3Row{
			{Type: offers.NoActivity, Share: 0.47, AveragePayout: 0.06},
			{Type: offers.Purchase, Share: 0.05, AveragePayout: 2.98},
		},
		Table4: []core.Table4Row{
			{IIP: iip.RankApp, MedianPayout: 0.02, NoActivityShare: 1, NumApps: 152, NumDevelopers: 114, NumCountries: 39, NumGenres: 20, MedianInstallBin: 100, MedianAgeDays: 33},
		},
		Table5: core.GroupOutcome{
			Name:     "install increases",
			Baseline: core.GroupCell{N: 300, Positive: 6},
			Vetted:   core.GroupCell{N: 492, Positive: 61},
			Unvetted: core.GroupCell{N: 538, Positive: 88},
		},
		Table8:  core.Table8{NumFunded: 30, NoActivityShare: 0.67, ActivityShare: 0.63, NoActivityAvgPayout: 0.12, ActivityAvgPayout: 0.92},
		Figure2: []core.Figure2Row{{IIP: iip.RankApp, AdvertisesRankBoost: true}},
		Figure4: []stats.HistogramBin{{Label: "0-1k", Count: 8}},
		Figure5: []core.CaseStudy{},
		Figure6: core.Figure6{AtLeast5: map[string]float64{"activity": 0.6, "noactivity": 0.25, "baseline": 0.35, "vetted": 0.55, "unvetted": 0.2}},
		Section3: &core.HoneyResults{
			TotalInstalls:    1679,
			PublicInstallBin: 1000,
			Campaigns: []core.HoneyCampaign{
				{IIP: iip.Fyber, ConsoleInstalls: 626, TelemetryInstalls: 626, Engaged: 275, CompletionHours: 2, TopAffiliate: "proxima.makemoney.android"},
			},
		},
	}
}

func TestWriteAllRendersEverySection(t *testing.T) {
	var b strings.Builder
	WriteAll(&b, sampleResults())
	out := b.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Figure 2", "Figure 4",
		"Figure 5", "Figure 6", "Section 3", "Section 5.2", "arbitrage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Spot values.
	for _, want := range []string{
		"1,000,000+", "RankApp", "$2.98", "1679", "no qualifying case study",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing value %q", want)
		}
	}
}

func TestWriteOutcomeChiSquared(t *testing.T) {
	var b strings.Builder
	o := core.GroupOutcome{
		Baseline: core.GroupCell{N: 300, Positive: 6},
		Vetted:   core.GroupCell{N: 492, Positive: 61},
		Unvetted: core.GroupCell{N: 538, Positive: 88},
	}
	res, err := stats.ChiSquareIndependence(stats.Table2x2{A0: 294, A1: 6, B0: 431, B1: 61})
	if err != nil {
		t.Fatal(err)
	}
	o.VettedTest = res
	WriteOutcome(&b, "test outcome", o)
	out := b.String()
	if !strings.Contains(out, "2.0%") || !strings.Contains(out, "12.4%") {
		t.Errorf("fractions missing: %s", out)
	}
	if !strings.Contains(out, "reject@0.05=true") {
		t.Errorf("chi-squared line missing: %s", out)
	}
}

func TestWriteFigure5WithPoints(t *testing.T) {
	var b strings.Builder
	WriteFigure5(&b, []core.CaseStudy{{
		Package: "com.case.study", Chart: "top-games",
		Points: []core.CasePoint{
			{Day: 59, Rank: 0},
			{Day: 61, Rank: 12, Percentile: 94.5},
		},
	}})
	out := b.String()
	if !strings.Contains(out, "com.case.study") || !strings.Contains(out, "rank 12") {
		t.Errorf("case study rendering wrong: %s", out)
	}
}
