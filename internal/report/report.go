// Package report renders the study's results as the text tables and
// series that mirror the paper's tables and figures, suitable for terminal
// output and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/iip"
	"repro/internal/playstore"
	"repro/internal/stats"
)

// Table is a simple text-table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
func usd(f float64) string { return fmt.Sprintf("$%.2f", f) }
func vet(v bool) string {
	if v {
		return "Vetted"
	}
	return "Unvetted"
}

// WriteAll renders every reproduced artifact to w.
func WriteAll(w io.Writer, r *core.Results) {
	fmt.Fprintf(w, "=== Dataset ===\n")
	fmt.Fprintf(w, "offers=%d unique-apps=%d unique-descriptions=%d milk-days=%d crawl-days=%d\n\n",
		r.Dataset.Offers, r.Dataset.UniqueApps, r.Dataset.UniqueDescriptions,
		r.Dataset.MilkDays, r.Dataset.CrawlDays)

	WriteTable1(w, r.Table1)
	WriteTable2(w, r.Table2)
	WriteTable3(w, r.Table3)
	WriteTable4(w, r.Table4)
	WriteOutcome(w, "Table 5: install-count increases", r.Table5)
	WriteOutcome(w, "Table 6: top-chart appearances", r.Table6)
	WriteOutcome(w, "Table 7: funding raised after campaigns", r.Table7)
	WriteTable8(w, r.Table8)
	WriteFigure2(w, r.Figure2)
	WriteFigure4(w, r.Figure4)
	WriteFigure5(w, r.Figure5)
	WriteFigure6(w, r.Figure6)
	if r.Section3 != nil {
		WriteSection3(w, r.Section3)
	}
	WriteEnforcement(w, r.Enforcement)
	WriteArbitrage(w, r.Arbitrage)
	WriteLockstep(w, r.Lockstep)
	WriteDisclosure(w, r.Disclosure)
}

// WriteTable1 renders the IIP characterization.
func WriteTable1(w io.Writer, rows []core.Table1Row) {
	fmt.Fprintln(w, "=== Table 1: IIP characterization (registration probe) ===")
	t := NewTable("IIP", "Type", "Home URL", "Min deposit")
	for _, r := range rows {
		t.Row(r.Name, vet(r.Vetted), r.HomeURL, usd(r.MinDepositUSD))
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteTable2 renders the affiliate-app integration matrix.
func WriteTable2(w io.Writer, rows []core.Table2Row) {
	fmt.Fprintln(w, "=== Table 2: instrumented affiliate apps x IIP offer walls ===")
	header := append([]string{"App", "Installs"}, iip.StandardNames...)
	t := NewTable(header...)
	for _, r := range rows {
		cells := []any{r.Package, playstore.BinLabel(r.InstallsBin)}
		for _, name := range iip.StandardNames {
			mark := " "
			if r.Integrations[name] {
				mark = "x"
			}
			cells = append(cells, mark)
		}
		t.Row(cells...)
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteTable3 renders offer-type prevalence and payouts.
func WriteTable3(w io.Writer, rows []core.Table3Row) {
	fmt.Fprintln(w, "=== Table 3: offer types and payouts ===")
	t := NewTable("Offer type", "% of offers", "Average payout")
	for _, r := range rows {
		t.Row(r.Type, pct(r.Share), usd(r.AveragePayout))
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteTable4 renders the per-IIP summary.
func WriteTable4(w io.Writer, rows []core.Table4Row) {
	fmt.Fprintln(w, "=== Table 4: per-IIP offers and advertised apps ===")
	t := NewTable("IIP", "Type", "Med payout", "% no-act", "% act",
		"Apps", "Devs", "Countries", "Genres", "Med installs", "Med age (d)")
	for _, r := range rows {
		t.Row(r.IIP, vet(r.Vetted), usd(r.MedianPayout), pct(r.NoActivityShare),
			pct(r.ActivityShare), r.NumApps, r.NumDevelopers, r.NumCountries,
			r.NumGenres, fmt.Sprintf("%.0f", r.MedianInstallBin),
			fmt.Sprintf("%.0f", r.MedianAgeDays))
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteOutcome renders a baseline/vetted/unvetted comparison with its
// chi-squared tests (Tables 5-7).
func WriteOutcome(w io.Writer, title string, o core.GroupOutcome) {
	fmt.Fprintf(w, "=== %s ===\n", title)
	t := NewTable("App set", "N", "Positive", "Fraction")
	t.Row("Baseline", o.Baseline.N, o.Baseline.Positive, pct(o.Baseline.Frac()))
	t.Row("Vetted", o.Vetted.N, o.Vetted.Positive, pct(o.Vetted.Frac()))
	t.Row("Unvetted", o.Unvetted.N, o.Unvetted.Positive, pct(o.Unvetted.Frac()))
	t.WriteTo(w)
	fmt.Fprintf(w, "vetted   vs baseline: %s\n", o.VettedTest)
	fmt.Fprintf(w, "unvetted vs baseline: %s\n\n", o.UnvettedTest)
}

// WriteTable8 renders the funded-app offer breakdown.
func WriteTable8(w io.Writer, t8 core.Table8) {
	fmt.Fprintln(w, "=== Table 8: offers of vetted apps that raised funding ===")
	t := NewTable("Offer type", "% of funded apps", "Average payout")
	t.Row("No activity", pct(t8.NoActivityShare), usd(t8.NoActivityAvgPayout))
	t.Row("Activity", pct(t8.ActivityShare), usd(t8.ActivityAvgPayout))
	t.WriteTo(w)
	fmt.Fprintf(w, "funded vetted apps: %d\n\n", t8.NumFunded)
}

// WriteFigure2 renders the manipulation-claim probe.
func WriteFigure2(w io.Writer, rows []core.Figure2Row) {
	fmt.Fprintln(w, "=== Figure 2: IIPs publicly advertising rank manipulation ===")
	t := NewTable("IIP", "Type", "Advertises rank boost")
	for _, r := range rows {
		t.Row(r.IIP, vet(r.Vetted), r.AdvertisesRankBoost)
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteFigure4 renders the baseline install-count histogram.
func WriteFigure4(w io.Writer, bins []stats.HistogramBin) {
	fmt.Fprintln(w, "=== Figure 4: baseline app install counts ===")
	t := NewTable("Bin", "Apps", "")
	for _, b := range bins {
		t.Row(b.Label, b.Count, strings.Repeat("#", b.Count/2))
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteFigure5 renders the chart-rank case studies.
func WriteFigure5(w io.Writer, cases []core.CaseStudy) {
	fmt.Fprintln(w, "=== Figure 5: case studies (chart percentile over time) ===")
	if len(cases) == 0 {
		fmt.Fprintln(w, "(no qualifying case study in this run)")
	}
	for _, cs := range cases {
		fmt.Fprintf(w, "%s in %s, campaign %s, offers %v\n", cs.Package, cs.Chart, cs.Campaign, cs.OfferKinds)
		for _, p := range cs.Points {
			marker := "."
			if cs.Campaign.Contains(p.Day) {
				marker = "|"
			}
			bar := ""
			if p.Rank > 0 {
				bar = strings.Repeat("=", int(p.Percentile/4)) + fmt.Sprintf(" rank %d", p.Rank)
			}
			fmt.Fprintf(w, "  %s %s %s\n", p.Day, marker, bar)
		}
	}
	fmt.Fprintln(w)
}

// WriteFigure6 renders the ad-library CDF summaries.
func WriteFigure6(w io.Writer, f core.Figure6) {
	fmt.Fprintln(w, "=== Figure 6: unique ad libraries per app ===")
	t := NewTable("App set", "N", ">=5 ad libraries")
	t.Row("Baseline", len(f.Baseline), pct(f.AtLeast5["baseline"]))
	t.Row("Activity offers", len(f.Activity), pct(f.AtLeast5["activity"]))
	t.Row("No-activity offers", len(f.NoActivity), pct(f.AtLeast5["noactivity"]))
	t.Row("Vetted", len(f.Vetted), pct(f.AtLeast5["vetted"]))
	t.Row("Unvetted", len(f.Unvetted), pct(f.AtLeast5["unvetted"]))
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteSection3 renders the honey-app experiment.
func WriteSection3(w io.Writer, h *core.HoneyResults) {
	fmt.Fprintln(w, "=== Section 3: honey-app experiment ===")
	fmt.Fprintf(w, "total installs: %d; public install count: %s; organic during campaigns: %d; unique apps on devices: %d\n",
		h.TotalInstalls, playstore.BinLabel(h.PublicInstallBin), h.OrganicDuringCampaigns, h.UniqueInstalledApps)
	t := NewTable("IIP", "Console", "Telemetry", "Engaged", "Day-after",
		"Hours", "Emulators", "Cloud", "Farm", "Farm rooted", "Money apps", "Top affiliate")
	for _, c := range h.Campaigns {
		t.Row(c.IIP, c.ConsoleInstalls, c.TelemetryInstalls, c.Engaged,
			c.DayAfterEngaged, fmt.Sprintf("%.1f", c.CompletionHours),
			c.EmulatorInstalls, c.CloudASNInstalls, c.FarmInstalls,
			c.FarmRootedSameSSID, pct(c.MoneyKeywordShare),
			fmt.Sprintf("%s (%s)", c.TopAffiliate, pct(c.TopAffiliateShare)))
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

// WriteEnforcement renders the Section 5.2 enforcement scan.
func WriteEnforcement(w io.Writer, e core.EnforcementResult) {
	fmt.Fprintln(w, "=== Section 5.2: enforcement (install-count decreases) ===")
	t := NewTable("App set", "N", "Decreased", "Fraction")
	t.Row("Baseline", e.BaselineDecreased.N, e.BaselineDecreased.Positive, pct(e.BaselineDecreased.Frac()))
	t.Row("Vetted", e.VettedDecreased.N, e.VettedDecreased.Positive, pct(e.VettedDecreased.Frac()))
	t.Row("Unvetted", e.UnvettedDecreased.N, e.UnvettedDecreased.Positive, pct(e.UnvettedDecreased.Frac()))
	t.WriteTo(w)
	fmt.Fprintf(w, "honey-app installs filtered: %d\n\n", e.HoneyInstallsFiltered)
}

// WriteLockstep renders the Section 5.2 proposed-defense evaluation.
func WriteLockstep(w io.Writer, l core.LockstepResult) {
	fmt.Fprintln(w, "=== Section 5.2 extension: lockstep detector over the install stream ===")
	fmt.Fprintf(w, "groups=%d flagged-devices=%d %s\n\n", l.Groups, l.FlaggedDevices, l.Eval)
}

// WriteDisclosure renders the Section 5.1 responsible-disclosure list.
func WriteDisclosure(w io.Writer, rows []core.DisclosureRow) {
	fmt.Fprintf(w, "=== Section 5.1: responsible disclosure (advertised apps with 5M+ installs) ===\n")
	fmt.Fprintf(w, "apps to contact: %d\n", len(rows))
	max := len(rows)
	if max > 5 {
		max = 5
	}
	t := NewTable("App", "Installs", "Developer", "Contact")
	for _, r := range rows[:max] {
		t.Row(r.Package, playstore.BinLabel(r.InstallBin), r.Developer, r.ContactMail)
	}
	t.WriteTo(w)
	if len(rows) > max {
		fmt.Fprintf(w, "... and %d more\n", len(rows)-max)
	}
	fmt.Fprintln(w)
}

// WriteArbitrage renders the arbitrage-offer shares.
func WriteArbitrage(w io.Writer, a core.ArbitrageResult) {
	fmt.Fprintln(w, "=== Section 4.3.2: arbitrage offers ===")
	t := NewTable("App set", "N", "Arbitrage", "Fraction")
	t.Row("All advertised", a.Total.N, a.Total.Positive, pct(a.Total.Frac()))
	t.Row("Vetted", a.Vetted.N, a.Vetted.Positive, pct(a.Vetted.Frac()))
	t.Row("Unvetted", a.Unvetted.N, a.Unvetted.Positive, pct(a.Unvetted.Frac()))
	t.WriteTo(w)
	fmt.Fprintln(w)
}
