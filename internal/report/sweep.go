package report

import (
	"fmt"
	"io"

	"repro/internal/sweep"
)

// WriteSweep renders a scenario×seed sweep as a text table: one row per
// scenario with mean detector performance across seeds, plus the recall
// delta against paper-baseline when the grid includes it — the number
// that answers "which adversary degrades the proposed defense".
func WriteSweep(w io.Writer, r *sweep.Result) {
	fmt.Fprintln(w, "=== Scenario sweep: lockstep detector vs adaptive adversaries (Section 5.2) ===")
	base := "tiny"
	if r.Base != "" {
		base = r.Base
	}
	fmt.Fprintf(w, "base world=%s seeds=%v cells=%d\n", base, r.Seeds, countCells(r))

	baseline, hasBaseline := r.Baseline()
	t := NewTable("Scenario", "Incent installs", "Truth devs", "Groups", "Flagged",
		"Buckets retr", "Pairs pruned",
		"Precision", "Recall", "F1", "ΔRecall vs baseline")
	for _, s := range r.Scenarios {
		var incent, retracted, pruned int64
		var truth, groups, flagged int
		for _, c := range s.Cells {
			incent += c.Stats.IncentivizedInstalls
			truth += c.Truth
			groups += c.Groups
			flagged += c.Flagged
			retracted += c.Detector.BucketsRetracted
			pruned += c.Detector.PairsPruned
		}
		n := int64(len(s.Cells))
		delta := "-"
		if hasBaseline && s.Name != baseline.Name {
			delta = fmt.Sprintf("%+.3f", s.Recall-baseline.Recall)
		}
		t.Row(s.Name, incent/n, truth/int(n), groups/int(n), flagged/int(n),
			retracted/n, pruned/n,
			fmt.Sprintf("%.3f", s.Precision),
			fmt.Sprintf("%.3f", s.Recall),
			fmt.Sprintf("%.3f", s.F1),
			delta)
	}
	t.WriteTo(w)
	fmt.Fprintln(w)
}

func countCells(r *sweep.Result) int {
	n := 0
	for _, s := range r.Scenarios {
		n += len(s.Cells)
	}
	return n
}
