package dates

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochRoundTrip(t *testing.T) {
	if got := FromTime(Epoch); got != 0 {
		t.Errorf("FromTime(Epoch) = %d, want 0", got)
	}
	if got := Date(0).Time(); !got.Equal(Epoch) {
		t.Errorf("Date(0).Time() = %v, want %v", got, Epoch)
	}
}

func TestKnownDates(t *testing.T) {
	if got := StudyStart.String(); got != "2019-03-01" {
		t.Errorf("StudyStart = %s, want 2019-03-01", got)
	}
	if got := StudyEnd.String(); got != "2019-06-30" {
		t.Errorf("StudyEnd = %s, want 2019-06-30", got)
	}
	if StudyEnd.DaysSince(StudyStart) != 121 {
		t.Errorf("study window = %d days, want 121", StudyEnd.DaysSince(StudyStart))
	}
}

func TestAddDaysAndComparisons(t *testing.T) {
	d := StudyStart
	e := d.AddDays(10)
	if e.DaysSince(d) != 10 {
		t.Errorf("DaysSince = %d, want 10", e.DaysSince(d))
	}
	if !d.Before(e) || !e.After(d) {
		t.Error("Before/After inconsistent")
	}
	if d.Before(d) || d.After(d) {
		t.Error("a date should not be before/after itself")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Start: 10, End: 20}
	for _, c := range []struct {
		d    Date
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := r.Contains(c.d); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.d, got, c.want)
		}
	}
	if r.Days() != 11 {
		t.Errorf("Days = %d, want 11", r.Days())
	}
	if (Range{Start: 5, End: 4}).Days() != 0 {
		t.Error("inverted range should have 0 days")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Start: 10, End: 20}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{0, 9}, false},
		{Range{0, 10}, true},
		{Range{15, 16}, true},
		{Range{20, 30}, true},
		{Range{21, 30}, false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

// Property: FromTime inverts Time for any day offset in a broad window.
func TestRoundTripProperty(t *testing.T) {
	f := func(n int16) bool {
		d := Date(n)
		return FromTime(d.Time()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromTimeTruncates(t *testing.T) {
	noon := time.Date(2019, time.March, 1, 12, 30, 0, 0, time.UTC)
	if FromTime(noon) != StudyStart {
		t.Error("FromTime should truncate to day")
	}
}
