// Package dates provides the study's simulated calendar. The measurement
// campaign in the paper runs March-June 2019 with day granularity (the
// crawler visits the store every other day), so the whole repository uses
// a compact Date type: days since 2019-01-01.
package dates

import (
	"fmt"
	"time"
)

// Date counts whole days since the study epoch, 2019-01-01. The zero value
// is the epoch itself.
type Date int

// Epoch is the calendar date corresponding to Date(0).
var Epoch = time.Date(2019, time.January, 1, 0, 0, 0, 0, time.UTC)

// Well-known dates in the study window.
var (
	// StudyStart is the first day of the in-the-wild monitoring
	// (the paper's data collection starts in March 2019).
	StudyStart = FromTime(time.Date(2019, time.March, 1, 0, 0, 0, 0, time.UTC))
	// StudyEnd is the last monitored day (end of June 2019).
	StudyEnd = FromTime(time.Date(2019, time.June, 30, 0, 0, 0, 0, time.UTC))
	// CrunchbaseSnapshot is when the paper downloaded the Crunchbase
	// database (October 2019).
	CrunchbaseSnapshot = FromTime(time.Date(2019, time.October, 15, 0, 0, 0, 0, time.UTC))
)

// FromTime converts a wall-clock time to a Date, truncating to UTC days.
func FromTime(t time.Time) Date {
	return Date(t.UTC().Sub(Epoch).Hours() / 24)
}

// Time returns the midnight UTC time.Time for d.
func (d Date) Time() time.Time {
	return Epoch.AddDate(0, 0, int(d))
}

// AddDays returns d shifted by n days.
func (d Date) AddDays(n int) Date { return d + Date(n) }

// DaysSince returns the number of days from other to d (d - other).
func (d Date) DaysSince(other Date) int { return int(d - other) }

// Before and After provide readable comparisons.
func (d Date) Before(other Date) bool { return d < other }

// After reports whether d is strictly after other.
func (d Date) After(other Date) bool { return d > other }

// String formats the date as YYYY-MM-DD.
func (d Date) String() string {
	return d.Time().Format("2006-01-02")
}

// Range is an inclusive date interval.
type Range struct {
	Start, End Date
}

// Contains reports whether x falls within the range (inclusive).
func (r Range) Contains(x Date) bool { return x >= r.Start && x <= r.End }

// Days returns the number of days in the range, inclusive; a range whose
// End precedes its Start has zero days.
func (r Range) Days() int {
	if r.End < r.Start {
		return 0
	}
	return int(r.End-r.Start) + 1
}

// Overlaps reports whether two inclusive ranges share any day.
func (r Range) Overlaps(o Range) bool {
	return r.Start <= o.End && o.Start <= r.End
}

func (r Range) String() string {
	return fmt.Sprintf("%s..%s", r.Start, r.End)
}
