package lockstep

import (
	"fmt"
	"testing"

	"repro/internal/dates"
	"repro/internal/obs"
)

// TestMetricsMirrorStats drives a detector over the bucket-population cap
// with counters attached and checks the obs view agrees with Stats — and
// that an attached registry never changes the detection result.
func TestMetricsMirrorStats(t *testing.T) {
	cfg := Config{DayBucket: 1, MinCommonApps: 2, MinGroupSize: 2, MaxBucketPopulation: 3}
	run := func(m *Metrics) *Detector {
		d := NewDetector(cfg)
		d.SetMetrics(m)
		// A viral app: 6 devices pile into one cell (cap 3), so the cell
		// dies mid-stream and later arrivals hit the dead-cell path.
		for i := 0; i < 6; i++ {
			d.Ingest(fmt.Sprintf("dev%d", i), "viral", dates.Date(0))
		}
		// A genuine lockstep pair on two quiet apps.
		d.Ingest("dev0", "a", dates.Date(0))
		d.Ingest("dev1", "a", dates.Date(0))
		d.Ingest("dev0", "b", dates.Date(0))
		d.Ingest("dev1", "b", dates.Date(0))
		return d
	}

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d := run(m)
	st := d.Stats()
	if st.BucketsRetracted == 0 || st.PairsPruned == 0 {
		t.Fatalf("test did not exercise the cap: %+v", st)
	}
	if got := m.BucketsRetracted.Value(); got != st.BucketsRetracted {
		t.Errorf("lockstep_buckets_retracted_total = %d, want %d", got, st.BucketsRetracted)
	}
	if got := m.PairsPruned.Value(); got != st.PairsPruned {
		t.Errorf("lockstep_pairs_pruned_total = %d, want %d", got, st.PairsPruned)
	}

	plain := run(nil) // nil metrics: the off switch must be a no-op
	if got, want := len(d.Groups()), len(plain.Groups()); got != want {
		t.Errorf("metrics changed detection: %d groups vs %d", got, want)
	}
}

// TestMetricsSketchFunnel checks the banding-funnel counters accumulate
// per Groups extraction under a sketch-tier config.
func TestMetricsSketchFunnel(t *testing.T) {
	cfg := Config{
		DayBucket: 1, MinCommonApps: 2, MinGroupSize: 2,
		SketchHashes: 32, SketchRows: 4, SketchSeed: 7,
	}
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d := NewDetector(cfg)
	d.SetMetrics(m)
	for _, app := range []string{"a", "b", "c"} {
		d.Ingest("dev0", app, dates.Date(0))
		d.Ingest("dev1", app, dates.Date(0))
	}
	d.Groups()
	st := d.Stats()
	if st.CandidatePairs == 0 || st.VerifiedPairs == 0 {
		t.Fatalf("sketch funnel empty: %+v", st)
	}
	if got := m.CandidatePairs.Value(); got != st.CandidatePairs {
		t.Errorf("lockstep_candidate_pairs_total = %d, want %d", got, st.CandidatePairs)
	}
	if got := m.VerifiedPairs.Value(); got != st.VerifiedPairs {
		t.Errorf("lockstep_verified_pairs_total = %d, want %d", got, st.VerifiedPairs)
	}
}
