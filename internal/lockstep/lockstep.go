// Package lockstep implements the detection direction the paper proposes
// in Section 5.2: its measurements "can provide a ground truth of apps to
// help train machine learning models in detecting the lockstep behavior
// of users who perform similar in-app activities to complete the offer"
// (citing CopyCatch and CatchSync). The detector finds groups of devices
// that install the same advertised apps within tight time windows — the
// signature crowd workers and bot farms leave on the store's install
// stream — using co-occurrence counting over (app, day-bucket) incidence
// and union-find grouping.
package lockstep

import (
	"fmt"

	"repro/internal/dates"
)

// Event is one observed install: a device acquiring an app on a day.
type Event struct {
	Device string
	App    string
	Day    dates.Date
}

// Config tunes the detector.
type Config struct {
	// DayBucket is the temporal granularity: installs of the same app
	// within the same bucket count as synchronized (CopyCatch's 2Δt).
	DayBucket int
	// MinCommonApps is how many synchronized apps two devices must share
	// to be considered in lockstep.
	MinCommonApps int
	// MinGroupSize is the smallest reported device group.
	MinGroupSize int
	// MaxBucketPopulation skips (app, bucket) cells with more devices
	// than this — hugely popular organic apps would otherwise link
	// everyone (a standard CopyCatch-style guard).
	MaxBucketPopulation int

	// SketchHashes enables the MinHash/LSH sketch tier when positive: the
	// detector keeps a SketchHashes-long MinHash signature per device over
	// its live (app, bucket) cell set instead of the exact pairwise
	// shared-app counts, and Groups generates candidate pairs by LSH
	// banding before verifying each candidate exactly against the cell
	// index. Precision is unchanged (every reported pair passes the exact
	// MinCommonApps test); recall can only be lost at the banding step,
	// where a qualifying pair's signatures never collide in any band.
	// Zero keeps the exact quadratic tier.
	SketchHashes int
	// SketchRows is how many signature rows form one LSH band
	// (SketchHashes/SketchRows bands; a candidate pair must agree on
	// every row of at least one band). Higher rows sharpen the similarity
	// threshold; 1 maximizes candidate recall. Defaults to 1.
	SketchRows int
	// SketchSeed keys the MinHash functions (derived through
	// randx.Derive, so the same seed always builds the same functions and
	// the sketch tier stays bit-deterministic across runs and worker
	// counts).
	SketchSeed uint64
}

// Sketching reports whether the sketch tier is enabled.
func (c Config) Sketching() bool { return c.SketchHashes > 0 }

// Stats is the detector's internal accounting, surfaced so signal loss at
// the bucket-population cap — previously silent — and the sketch tier's
// pruning pressure are attributable in reports.
type Stats struct {
	// BucketsRetracted counts (app, bucket) cells that crossed
	// MaxBucketPopulation and had their pair contributions discarded.
	BucketsRetracted int64 `json:"buckets_retracted"`
	// PairsPruned counts device pairs whose co-occurrence signal was
	// discarded by retraction (links undone at cell death plus links a
	// dead cell never formed).
	PairsPruned int64 `json:"pairs_pruned"`
	// CandidatePairs is how many pairs the last Groups call's LSH banding
	// emitted for exact verification (sketch tier only).
	CandidatePairs int64 `json:"candidate_pairs,omitempty"`
	// VerifiedPairs is how many of those candidates passed the exact
	// MinCommonApps verification (sketch tier only).
	VerifiedPairs int64 `json:"verified_pairs,omitempty"`
}

// DefaultConfig returns a conservative configuration: three shared
// synchronized installs within 2-day buckets, groups of three or more.
func DefaultConfig() Config {
	return Config{
		DayBucket:           2,
		MinCommonApps:       3,
		MinGroupSize:        3,
		MaxBucketPopulation: 400,
	}
}

// Group is one detected lockstep cluster.
type Group struct {
	Devices []string
	// Apps are the synchronized apps that link the group.
	Apps []string
}

// Detect finds lockstep groups in the event stream. It is deterministic:
// groups and their members come out sorted. Detect is the batch facade
// over the incremental Detector — one Ingest per event, one Groups call —
// so the post-hoc and online paths cannot drift.
func Detect(events []Event, cfg Config) []Group {
	d := NewDetector(cfg)
	d.Grow(len(events))
	for _, ev := range events {
		d.Ingest(ev.Device, ev.App, ev.Day)
	}
	return d.Groups()
}

// Evaluation scores detected groups against ground-truth labels.
type Evaluation struct {
	TruePositives  int     `json:"tp"` // flagged devices that are incentivized workers
	FalsePositives int     `json:"fp"` // flagged organic devices
	FalseNegatives int     `json:"fn"` // unflagged workers
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	F1             float64 `json:"f1"`
}

func (e Evaluation) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f f1=%.3f (tp=%d fp=%d fn=%d)",
		e.Precision, e.Recall, e.F1, e.TruePositives, e.FalsePositives, e.FalseNegatives)
}

// Evaluate compares flagged devices with a ground-truth worker set.
func Evaluate(groups []Group, workers map[string]bool) Evaluation {
	flagged := map[string]bool{}
	for _, g := range groups {
		for _, d := range g.Devices {
			flagged[d] = true
		}
	}
	var e Evaluation
	for d := range flagged {
		if workers[d] {
			e.TruePositives++
		} else {
			e.FalsePositives++
		}
	}
	for d := range workers {
		if !flagged[d] {
			e.FalseNegatives++
		}
	}
	if e.TruePositives+e.FalsePositives > 0 {
		e.Precision = float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
	}
	if e.TruePositives+e.FalseNegatives > 0 {
		e.Recall = float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
	}
	if e.Precision+e.Recall > 0 {
		e.F1 = 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
	}
	return e
}
