// Package lockstep implements the detection direction the paper proposes
// in Section 5.2: its measurements "can provide a ground truth of apps to
// help train machine learning models in detecting the lockstep behavior
// of users who perform similar in-app activities to complete the offer"
// (citing CopyCatch and CatchSync). The detector finds groups of devices
// that install the same advertised apps within tight time windows — the
// signature crowd workers and bot farms leave on the store's install
// stream — using co-occurrence counting over (app, day-bucket) incidence
// and union-find grouping.
package lockstep

import (
	"fmt"
	"sort"

	"repro/internal/dates"
)

// Event is one observed install: a device acquiring an app on a day.
type Event struct {
	Device string
	App    string
	Day    dates.Date
}

// Config tunes the detector.
type Config struct {
	// DayBucket is the temporal granularity: installs of the same app
	// within the same bucket count as synchronized (CopyCatch's 2Δt).
	DayBucket int
	// MinCommonApps is how many synchronized apps two devices must share
	// to be considered in lockstep.
	MinCommonApps int
	// MinGroupSize is the smallest reported device group.
	MinGroupSize int
	// MaxBucketPopulation skips (app, bucket) cells with more devices
	// than this — hugely popular organic apps would otherwise link
	// everyone (a standard CopyCatch-style guard).
	MaxBucketPopulation int
}

// DefaultConfig returns a conservative configuration: three shared
// synchronized installs within 2-day buckets, groups of three or more.
func DefaultConfig() Config {
	return Config{
		DayBucket:           2,
		MinCommonApps:       3,
		MinGroupSize:        3,
		MaxBucketPopulation: 400,
	}
}

// Group is one detected lockstep cluster.
type Group struct {
	Devices []string
	// Apps are the synchronized apps that link the group.
	Apps []string
}

// Detect finds lockstep groups in the event stream. It is deterministic:
// groups and their members come out sorted.
func Detect(events []Event, cfg Config) []Group {
	if cfg.DayBucket < 1 {
		cfg.DayBucket = 1
	}
	if cfg.MinCommonApps < 1 {
		cfg.MinCommonApps = 1
	}
	if cfg.MinGroupSize < 2 {
		cfg.MinGroupSize = 2
	}

	// Incidence: (app, bucket) -> devices.
	type cell struct {
		app    string
		bucket int
	}
	incidence := map[cell][]string{}
	seen := map[string]map[string]bool{} // device -> app dedup
	for _, ev := range events {
		apps := seen[ev.Device]
		if apps == nil {
			apps = map[string]bool{}
			seen[ev.Device] = apps
		}
		if apps[ev.App] {
			continue // one install per (device, app)
		}
		apps[ev.App] = true
		c := cell{app: ev.App, bucket: int(ev.Day) / cfg.DayBucket}
		incidence[c] = append(incidence[c], ev.Device)
	}

	// Pairwise co-occurrence counts, with the shared apps retained.
	type pair struct{ a, b string }
	coApps := map[pair]map[string]bool{}
	cells := make([]cell, 0, len(incidence))
	for c := range incidence {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].app != cells[j].app {
			return cells[i].app < cells[j].app
		}
		return cells[i].bucket < cells[j].bucket
	})
	for _, c := range cells {
		devs := incidence[c]
		if cfg.MaxBucketPopulation > 0 && len(devs) > cfg.MaxBucketPopulation {
			continue
		}
		sort.Strings(devs)
		for i := 0; i < len(devs); i++ {
			for j := i + 1; j < len(devs); j++ {
				p := pair{devs[i], devs[j]}
				m := coApps[p]
				if m == nil {
					m = map[string]bool{}
					coApps[p] = m
				}
				m[c.app] = true
			}
		}
	}

	// Union-find over devices linked by >= MinCommonApps shared apps.
	uf := newUnionFind()
	linkApps := map[string]map[string]bool{} // root apps accumulate on merge
	for p, apps := range coApps {
		if len(apps) < cfg.MinCommonApps {
			continue
		}
		ra, rb := uf.find(p.a), uf.find(p.b)
		merged := map[string]bool{}
		for app := range apps {
			merged[app] = true
		}
		for app := range linkApps[ra] {
			merged[app] = true
		}
		for app := range linkApps[rb] {
			merged[app] = true
		}
		root := uf.union(p.a, p.b)
		delete(linkApps, ra)
		delete(linkApps, rb)
		linkApps[root] = merged
	}

	// Collect groups.
	members := map[string][]string{}
	for dev := range seen {
		if !uf.has(dev) {
			continue
		}
		root := uf.find(dev)
		members[root] = append(members[root], dev)
	}
	var out []Group
	for root, devs := range members {
		if len(devs) < cfg.MinGroupSize {
			continue
		}
		sort.Strings(devs)
		var apps []string
		for app := range linkApps[uf.find(root)] {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		out = append(out, Group{Devices: devs, Apps: apps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Devices[0] < out[j].Devices[0] })
	return out
}

// Evaluation scores detected groups against ground-truth labels.
type Evaluation struct {
	TruePositives  int // flagged devices that are incentivized workers
	FalsePositives int // flagged organic devices
	FalseNegatives int // unflagged workers
	Precision      float64
	Recall         float64
}

func (e Evaluation) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f (tp=%d fp=%d fn=%d)",
		e.Precision, e.Recall, e.TruePositives, e.FalsePositives, e.FalseNegatives)
}

// Evaluate compares flagged devices with a ground-truth worker set.
func Evaluate(groups []Group, workers map[string]bool) Evaluation {
	flagged := map[string]bool{}
	for _, g := range groups {
		for _, d := range g.Devices {
			flagged[d] = true
		}
	}
	var e Evaluation
	for d := range flagged {
		if workers[d] {
			e.TruePositives++
		} else {
			e.FalsePositives++
		}
	}
	for d := range workers {
		if !flagged[d] {
			e.FalseNegatives++
		}
	}
	if e.TruePositives+e.FalsePositives > 0 {
		e.Precision = float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
	}
	if e.TruePositives+e.FalseNegatives > 0 {
		e.Recall = float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
	}
	return e
}

// unionFind is a standard path-compressing disjoint-set forest over
// strings, created lazily.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}}
}

func (u *unionFind) has(x string) bool {
	_, ok := u.parent[x]
	return ok
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) string {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	// Deterministic: smaller string becomes the root.
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return ra
}
