package lockstep

import (
	"fmt"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// synth builds a labeled event stream: a crowd of workers completing the
// same advertised campaigns in lockstep, plus organic users installing
// random apps.
func synth(r *randx.Rand, workers, organics, advertisedApps, catalogApps int) ([]Event, map[string]bool) {
	var events []Event
	truth := map[string]bool{}

	// Workers: each completes most advertised campaigns near its launch
	// day.
	for w := 0; w < workers; w++ {
		dev := fmt.Sprintf("worker-%03d", w)
		truth[dev] = true
		for a := 0; a < advertisedApps; a++ {
			if !r.Bool(0.8) {
				continue
			}
			launch := dates.Date(a * 7)
			events = append(events, Event{
				Device: dev,
				App:    fmt.Sprintf("adv.app.%03d", a),
				Day:    launch.AddDays(r.IntN(2)),
			})
		}
	}
	// Organic users: random catalog apps on random days.
	for o := 0; o < organics; o++ {
		dev := fmt.Sprintf("organic-%03d", o)
		n := r.IntBetween(3, 10)
		for i := 0; i < n; i++ {
			events = append(events, Event{
				Device: dev,
				App:    fmt.Sprintf("cat.app.%03d", r.IntN(catalogApps)),
				Day:    dates.Date(r.IntN(120)),
			})
		}
	}
	return events, truth
}

func TestDetectFindsWorkerRing(t *testing.T) {
	r := randx.New(42)
	events, truth := synth(r, 30, 200, 12, 500)
	groups := Detect(events, DefaultConfig())
	if len(groups) == 0 {
		t.Fatal("no lockstep groups found")
	}
	eval := Evaluate(groups, truth)
	if eval.Precision < 0.95 {
		t.Errorf("precision = %.3f, want >= 0.95 (%s)", eval.Precision, eval)
	}
	if eval.Recall < 0.9 {
		t.Errorf("recall = %.3f, want >= 0.9 (%s)", eval.Recall, eval)
	}
}

func TestDetectNoFalsePositivesOnOrganicOnly(t *testing.T) {
	r := randx.New(7)
	events, _ := synth(r, 0, 300, 0, 800)
	groups := Detect(events, DefaultConfig())
	flagged := 0
	for _, g := range groups {
		flagged += len(g.Devices)
	}
	if flagged > 6 { // tolerate a couple of coincidental collisions
		t.Errorf("flagged %d organic devices", flagged)
	}
}

func TestDetectDeduplicatesReinstalls(t *testing.T) {
	events := []Event{
		{Device: "a", App: "x", Day: 1},
		{Device: "a", App: "x", Day: 1}, // duplicate
		{Device: "b", App: "x", Day: 1},
		{Device: "c", App: "x", Day: 1},
	}
	cfg := Config{DayBucket: 2, MinCommonApps: 1, MinGroupSize: 3}
	groups := Detect(events, cfg)
	if len(groups) != 1 || len(groups[0].Devices) != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	if len(groups[0].Apps) != 1 || groups[0].Apps[0] != "x" {
		t.Errorf("linking apps = %v", groups[0].Apps)
	}
}

func TestDetectRespectsMinCommonApps(t *testing.T) {
	// Devices share only 2 synchronized apps; threshold 3 keeps them
	// apart.
	var events []Event
	for _, dev := range []string{"a", "b", "c"} {
		events = append(events,
			Event{Device: dev, App: "x", Day: 0},
			Event{Device: dev, App: "y", Day: 0},
		)
	}
	cfg := Config{DayBucket: 2, MinCommonApps: 3, MinGroupSize: 2}
	if groups := Detect(events, cfg); len(groups) != 0 {
		t.Errorf("expected no groups, got %+v", groups)
	}
	cfg.MinCommonApps = 2
	if groups := Detect(events, cfg); len(groups) != 1 {
		t.Errorf("expected one group at threshold 2, got %+v", groups)
	}
}

func TestDetectTemporalSeparation(t *testing.T) {
	// Same apps installed months apart are not lockstep.
	var events []Event
	for i, dev := range []string{"a", "b", "c"} {
		for _, app := range []string{"x", "y", "z"} {
			events = append(events, Event{Device: dev, App: app, Day: dates.Date(i * 40)})
		}
	}
	cfg := Config{DayBucket: 2, MinCommonApps: 3, MinGroupSize: 2}
	if groups := Detect(events, cfg); len(groups) != 0 {
		t.Errorf("temporally separated installs grouped: %+v", groups)
	}
}

func TestDetectPopularAppGuard(t *testing.T) {
	// A viral organic app installed by everyone on launch day must not
	// link the whole population.
	var events []Event
	for i := 0; i < 100; i++ {
		dev := fmt.Sprintf("dev-%03d", i)
		for _, app := range []string{"viral.one", "viral.two", "viral.three"} {
			events = append(events, Event{Device: dev, App: app, Day: 0})
		}
	}
	cfg := Config{DayBucket: 2, MinCommonApps: 3, MinGroupSize: 3, MaxBucketPopulation: 50}
	if groups := Detect(events, cfg); len(groups) != 0 {
		t.Errorf("viral apps linked the population: %d groups", len(groups))
	}
}

func TestDetectDeterministic(t *testing.T) {
	r1 := randx.New(3)
	e1, _ := synth(r1, 10, 50, 5, 100)
	r2 := randx.New(3)
	e2, _ := synth(r2, 10, 50, 5, 100)
	g1 := Detect(e1, DefaultConfig())
	g2 := Detect(e2, DefaultConfig())
	if len(g1) != len(g2) {
		t.Fatal("nondeterministic group count")
	}
	for i := range g1 {
		if len(g1[i].Devices) != len(g2[i].Devices) {
			t.Fatal("nondeterministic group sizes")
		}
		for j := range g1[i].Devices {
			if g1[i].Devices[j] != g2[i].Devices[j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	e := Evaluate(nil, map[string]bool{"w": true})
	if e.Recall != 0 || e.Precision != 0 || e.FalseNegatives != 1 {
		t.Errorf("empty detection eval wrong: %+v", e)
	}
	e = Evaluate([]Group{{Devices: []string{"w"}}}, map[string]bool{"w": true})
	if e.Precision != 1 || e.Recall != 1 {
		t.Errorf("perfect detection eval wrong: %+v", e)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(1, 0)
	uf.union(2, 1)
	if uf.find(2) != uf.find(0) {
		t.Error("transitive union failed")
	}
	if uf.find(0) != 0 {
		t.Errorf("root should be the smallest index, got %d", uf.find(0))
	}
	if uf.linked(4) {
		t.Error("linked() on an element that never joined a union")
	}
}

// TestDetectorMatchesBatch feeds the same synthetic stream through the
// incremental detector (several ingest orders, mid-stream Groups calls)
// and the batch facade over the identical order; results must match —
// including the MaxBucketPopulation retraction path. Batch and
// incremental share first-occurrence-wins (device, app) dedup, which is
// order-SENSITIVE when a device reinstalls an app in a different day
// bucket, so each trial compares both detectors over the same shuffle
// rather than against one canonical order.
func TestDetectorMatchesBatch(t *testing.T) {
	r := randx.New(99)
	events, _ := synth(r, 25, 150, 10, 60) // small catalog: some buckets cross the cap
	cfg := DefaultConfig()
	cfg.MaxBucketPopulation = 20
	if len(Detect(events, cfg)) == 0 {
		t.Fatal("batch detector found nothing; fixture too weak")
	}

	for trial := 0; trial < 3; trial++ {
		shuffled := make([]Event, len(events))
		for i, p := range r.Perm(len(events)) {
			shuffled[i] = events[p]
		}
		want := Detect(shuffled, cfg)
		d := NewDetector(cfg)
		for i, ev := range shuffled {
			d.IngestEvent(ev)
			if i == len(shuffled)/2 {
				d.Groups() // mid-stream query must not perturb state
			}
		}
		got := d.Groups()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Devices) != len(want[i].Devices) || len(got[i].Apps) != len(want[i].Apps) {
				t.Fatalf("trial %d: group %d shape differs: %+v vs %+v", trial, i, got[i], want[i])
			}
			for j := range want[i].Devices {
				if got[i].Devices[j] != want[i].Devices[j] {
					t.Fatalf("trial %d: group %d member %d differs", trial, i, j)
				}
			}
			for j := range want[i].Apps {
				if got[i].Apps[j] != want[i].Apps[j] {
					t.Fatalf("trial %d: group %d app %d differs", trial, i, j)
				}
			}
		}
	}
}

// TestDetectorIncrementalGrowth: groups appear as soon as the linking
// evidence arrives, the online property the run-log tail consumer relies
// on.
func TestDetectorIncrementalGrowth(t *testing.T) {
	cfg := Config{DayBucket: 2, MinCommonApps: 2, MinGroupSize: 2}
	d := NewDetector(cfg)
	d.Ingest("a", "x", 0)
	d.Ingest("b", "x", 1)
	if got := d.Groups(); len(got) != 0 {
		t.Fatalf("one shared app must not group yet: %+v", got)
	}
	d.Ingest("a", "y", 4)
	d.Ingest("b", "y", 4)
	got := d.Groups()
	if len(got) != 1 || len(got[0].Devices) != 2 {
		t.Fatalf("second shared app must form the group: %+v", got)
	}
	if d.Events() != 4 {
		t.Errorf("Events() = %d, want 4", d.Events())
	}
}
