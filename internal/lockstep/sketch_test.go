package lockstep

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// sketchConfig is the configuration the sketch tests run: candidate
// recall maximized (single-row bands) at a signature size small enough to
// stay cheap per device.
func sketchConfig() Config {
	cfg := DefaultConfig()
	cfg.SketchHashes = 32
	cfg.SketchRows = 1
	cfg.SketchSeed = 99
	return cfg
}

func ingestAll(d *Detector, events []Event) {
	for _, ev := range events {
		d.IngestEvent(ev)
	}
}

// TestSketchCandidatesSupersetOfExactPairs pins the sketch tier's core
// contract on synthetic worker rings at two scales: every pair the exact
// detector reports must appear among the banding candidates, and because
// verification applies the identical MinCommonApps criterion, the
// verified pair set — and therefore the reported groups — must match the
// exact tier outright.
func TestSketchCandidatesSupersetOfExactPairs(t *testing.T) {
	for _, tc := range []struct {
		name                                string
		workers, organics, advApps, catApps int
	}{
		{"tiny", 30, 200, 12, 500},
		{"scale", 120, 1500, 25, 2000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := randx.New(4242)
			events, truth := synth(r, tc.workers, tc.organics, tc.advApps, tc.catApps)

			exact := NewDetector(DefaultConfig())
			ingestAll(exact, events)
			exactPairs := exact.QualifyingPairs()
			if len(exactPairs) == 0 {
				t.Fatal("exact detector found no qualifying pairs; test world too small")
			}

			sk := NewDetector(sketchConfig())
			ingestAll(sk, events)
			cand := map[[2]string]bool{}
			for _, p := range sk.Candidates() {
				cand[p] = true
			}
			for _, p := range exactPairs {
				if !cand[p] {
					t.Errorf("exact pair %v missing from sketch candidates", p)
				}
			}

			if got := sk.QualifyingPairs(); !reflect.DeepEqual(got, exactPairs) {
				t.Errorf("sketch verified pairs diverge from exact: %d vs %d", len(got), len(exactPairs))
			}
			exactGroups, sketchGroups := exact.Groups(), sk.Groups()
			if !reflect.DeepEqual(exactGroups, sketchGroups) {
				t.Errorf("groups diverge: exact %d, sketch %d", len(exactGroups), len(sketchGroups))
			}

			// Precision is structurally unchanged; double-check through the
			// evaluation the sweep reports.
			ee, se := Evaluate(exactGroups, truth), Evaluate(sketchGroups, truth)
			if se.Precision != ee.Precision || se.Recall != ee.Recall {
				t.Errorf("evaluation diverged: exact %s, sketch %s", ee, se)
			}

			st := sk.Stats()
			if st.CandidatePairs < st.VerifiedPairs || st.VerifiedPairs != int64(len(exactPairs)) {
				t.Errorf("stats inconsistent: %+v, want verified = %d", st, len(exactPairs))
			}
		})
	}
}

// TestSketchBatchMatchesOnline mirrors TestDetectorMatchesBatch for the
// sketch tier: the Detect facade and an incremental detector interrogated
// mid-stream must agree at the end — Groups is a pure function of the
// ingested prefix.
func TestSketchBatchMatchesOnline(t *testing.T) {
	r := randx.New(7)
	events, _ := synth(r, 40, 300, 12, 600)
	cfg := sketchConfig()

	batch := Detect(events, cfg)

	online := NewDetector(cfg)
	for i, ev := range events {
		online.IngestEvent(ev)
		if i%997 == 0 {
			online.Groups() // interleaved extraction must not perturb state
		}
	}
	if got := online.Groups(); !reflect.DeepEqual(got, batch) {
		t.Errorf("online groups diverge from batch: %d vs %d", len(got), len(batch))
	}
}

// TestSketchDeterministic checks the seed contract: identical
// configurations over identical streams give identical groups, pairs,
// and stats.
func TestSketchDeterministic(t *testing.T) {
	r := randx.New(11)
	events, _ := synth(r, 30, 250, 10, 400)
	cfg := sketchConfig()
	a, b := NewDetector(cfg), NewDetector(cfg)
	ingestAll(a, events)
	ingestAll(b, events)
	if !reflect.DeepEqual(a.Groups(), b.Groups()) {
		t.Error("groups differ across identical runs")
	}
	if !reflect.DeepEqual(a.QualifyingPairs(), b.QualifyingPairs()) {
		t.Error("qualifying pairs differ across identical runs")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestRetractionCounters drives one cell over the population cap and
// checks the previously-silent signal loss is priced: one retracted
// bucket, max*(max+1)/2 pairs undone at death, and one more pruned link
// per post-death arrival.
func TestRetractionCounters(t *testing.T) {
	for name, cfg := range map[string]Config{"exact": DefaultConfig(), "sketch": sketchConfig()} {
		t.Run(name, func(t *testing.T) {
			cfg.MaxBucketPopulation = 4
			d := NewDetector(cfg)
			for i := 0; i < 7; i++ {
				d.Ingest(fmt.Sprintf("dev-%d", i), "viral.app", dates.Date(0))
			}
			st := d.Stats()
			if st.BucketsRetracted != 1 {
				t.Errorf("buckets retracted = %d, want 1", st.BucketsRetracted)
			}
			// Death at arrival 5: C(5,2) = 10 links lost; arrivals 6 and 7
			// would have linked to 5 and 6 prior residents.
			if want := int64(10 + 5 + 6); st.PairsPruned != want {
				t.Errorf("pairs pruned = %d, want %d", st.PairsPruned, want)
			}
		})
	}
}
