package lockstep

import (
	"slices"

	"repro/internal/randx"
)

// The sketch tier replaces the detector's quadratic pairwise state with a
// classic MinHash/LSH pipeline over each device's live (app, bucket) cell
// set:
//
//   - Ingest keeps, per device, the minimum of k universal hashes over
//     the cells the device joined while they were alive. Min is
//     commutative and the cell-death decision depends only on arrival
//     counts, so the signature after a stream of events is independent of
//     how the events were batched — the same order-free argument the
//     exact tier makes for its refcounts, which is what preserves the
//     batch≡online contract behind the Detect facade.
//   - Groups buckets signatures band by band (SketchRows rows per band)
//     and emits every same-bucket pair as a candidate.
//   - Every candidate is verified exactly: the pair's sorted cell lists
//     are intersected and only currently-live common cells count, one
//     shared synchronized app each (a device holds at most one cell per
//     app, so common live cells and shared apps are the same count).
//     A pair is reported only if that exact count clears MinCommonApps —
//     identical to the exact tier's criterion, so precision is unchanged
//     and recall can only be lost where banding never collides a
//     qualifying pair.
//
// All hash parameters derive from Config.SketchSeed via randx.Derive, so
// a configuration is a pure function: the same seed yields the same
// signatures, candidates, and groups on every run and worker count.

// initSketch normalizes the sketch knobs and derives the hash family.
func (d *Detector) initSketch() {
	cfg := &d.cfg
	if cfg.SketchRows < 1 {
		cfg.SketchRows = 1
	}
	if cfg.SketchRows > cfg.SketchHashes {
		cfg.SketchRows = cfg.SketchHashes
	}
	// Trailing hashes that don't fill a band would never influence a
	// banding decision; drop them so the signature is exactly bands*rows.
	cfg.SketchHashes -= cfg.SketchHashes % cfg.SketchRows
	d.sketchK = cfg.SketchHashes
	r := randx.Derive(cfg.SketchSeed, "lockstep/minhash")
	d.sketchSalt = r.Uint64()
	d.hashA = make([]uint64, d.sketchK)
	d.hashB = make([]uint64, d.sketchK)
	for i := range d.hashA {
		d.hashA[i] = r.Uint64() | 1 // odd multiplier: a bijection on Z/2^64
		d.hashB[i] = r.Uint64()
	}
}

// emptySig is the k-slot all-max signature a device starts from.
func (d *Detector) emptySig() []uint64 {
	sig := make([]uint64, d.sketchK)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	return sig
}

// mix64 is a 64-bit finalizer (splitmix64's) giving every cell key a
// well-spread base hash the k universal hashes then shear.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sketchAdd records that device di joined cell key while it was alive:
// the key enters the device's membership list (exact verification
// intersects these) and lowers its signature minima.
func (d *Detector) sketchAdd(di int32, key uint64) {
	d.devCells[di] = append(d.devCells[di], key)
	h := mix64(key ^ d.sketchSalt)
	sig := d.sigs[int(di)*d.sketchK : (int(di)+1)*d.sketchK]
	for i, a := range d.hashA {
		if v := a*h + d.hashB[i]; v < sig[i] {
			sig[i] = v
		}
	}
}

// sortCells sorts every device's membership list in place. The lists
// append in stream order and verification wants them sorted; re-sorting
// at each extraction keeps them append-only between calls (each list is
// a set, so sorting is order-insensitive).
func (d *Detector) sortCells() {
	for i := range d.devCells {
		slices.Sort(d.devCells[i])
	}
}

// Candidates returns the sketch tier's current banding candidate pairs by
// device name (nil for the exact tier), name-ordered and sorted — the
// pre-verification set whose coverage of QualifyingPairs is the sketch
// tier's recall argument.
func (d *Detector) Candidates() [][2]string {
	if !d.cfg.Sketching() {
		return nil
	}
	var out [][2]string
	for pk := range d.candidatePairs() {
		out = append(out, d.namePair(int32(pk>>32), int32(uint32(pk))))
	}
	return sortPairs(out)
}

// sketchJoin runs banding + exact verification and feeds qualifying pairs
// into the union-find forest. Candidate generation is O(devices × bands)
// plus the candidate pairs themselves; verification is linear in the two
// cell lists per candidate.
func (d *Detector) sketchJoin(uf *unionFind, linkApps map[int32]map[int32]struct{}) {
	cand := d.candidatePairs()
	d.lastCandidates = int64(len(cand))
	d.lastVerified = 0
	d.sortCells()
	var scratch []int32
	for pk := range cand {
		a, b := int32(pk>>32), int32(uint32(pk))
		scratch = d.appendCommonLiveApps(scratch[:0], a, b)
		if len(scratch) < d.cfg.MinCommonApps {
			continue
		}
		d.lastVerified++
		joinPair(uf, linkApps, a, b, scratch)
	}
	d.metrics.addFunnel(d.lastCandidates, d.lastVerified)
}

// candidatePairs returns the packed device pairs whose signatures agree
// on every row of at least one band.
func (d *Detector) candidatePairs() map[uint64]struct{} {
	k, rows := d.sketchK, d.cfg.SketchRows
	if k == 0 {
		return nil
	}
	cand := map[uint64]struct{}{}
	buckets := map[uint64][]int32{}
	for band := 0; band < k/rows; band++ {
		clear(buckets)
		lo := band * rows
		for di := range d.devCells {
			if len(d.devCells[di]) == 0 {
				continue
			}
			h := uint64(14695981039346656037) // FNV offset basis
			for _, v := range d.sigs[di*k+lo : di*k+lo+rows] {
				h = (h ^ v) * 1099511628211 // FNV prime
			}
			buckets[h] = append(buckets[h], int32(di))
		}
		for _, devs := range buckets {
			for i := 0; i < len(devs); i++ {
				for j := i + 1; j < len(devs); j++ {
					cand[pairKey(devs[i], devs[j])] = struct{}{}
				}
			}
		}
	}
	return cand
}

// appendCommonLiveApps intersects two devices' sorted cell lists and
// appends the app of every common cell that is still alive. Each device
// holds at most one cell per app (the (device, app) dedup), so the result
// has no duplicate apps and its length is the pair's exact shared
// synchronized-app count.
func (d *Detector) appendCommonLiveApps(apps []int32, a, b int32) []int32 {
	ca, cb := d.devCells[a], d.devCells[b]
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i] < cb[j]:
			i++
		case ca[i] > cb[j]:
			j++
		default:
			if c := d.cells[ca[i]]; c != nil && !c.dead {
				apps = append(apps, int32(ca[i]>>32))
			}
			i++
			j++
		}
	}
	return apps
}
