package lockstep

import (
	"testing"

	"repro/internal/randx"
)

// benchEvents builds the standard synthetic workload: 120 workers in
// lockstep over 25 advertised apps against 1,500 organic devices across a
// 2,000-app catalog (~14k events).
func benchEvents(b *testing.B) ([]Event, map[string]bool) {
	b.Helper()
	r := randx.New(1234)
	return synth(r, 120, 1500, 25, 2000)
}

// BenchmarkLockstepIngest measures the full detection pipeline on a
// pre-built event stream: ingest of every event plus group extraction
// (DESIGN.md E6; the online tail consumer pays exactly this cost spread
// across the run).
func BenchmarkLockstepIngest(b *testing.B) {
	events, _ := benchEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := Detect(events, DefaultConfig())
		if len(groups) == 0 {
			b.Fatal("no groups detected")
		}
	}
}
