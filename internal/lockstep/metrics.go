package lockstep

import "repro/internal/obs"

// Metrics is the detector's observability hook: counters for the signal
// the MaxBucketPopulation cap discards and for the sketch tier's banding
// funnel. Like the run-log writer's metrics, it is attached after
// construction and incremented inline at the retraction sites — pure
// observation, never consulted by the detection path, so an attached
// registry cannot perturb the deterministic results.
type Metrics struct {
	// BucketsRetracted counts (app, day-bucket) cells that crossed the
	// population cap and retracted their pair contributions.
	BucketsRetracted *obs.Counter
	// PairsPruned counts the device pairs the cap kept (or undid) —
	// resident pairs retracted at cell death plus the links arrivals to a
	// dead cell never formed.
	PairsPruned *obs.Counter
	// CandidatePairs and VerifiedPairs size the sketch tier's banding
	// funnel per Groups extraction (exact tier never touches them).
	CandidatePairs *obs.Counter
	VerifiedPairs  *obs.Counter
}

// NewMetrics registers the lockstep detector metrics in reg (nil reg
// returns nil, which the detector treats as "off").
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		BucketsRetracted: reg.Counter("lockstep_buckets_retracted_total", "detector cells retracted at the bucket-population cap"),
		PairsPruned:      reg.Counter("lockstep_pairs_pruned_total", "device pairs the bucket-population cap retracted or never formed"),
		CandidatePairs:   reg.Counter("lockstep_candidate_pairs_total", "sketch-tier banding candidate pairs emitted for exact verification"),
		VerifiedPairs:    reg.Counter("lockstep_verified_pairs_total", "sketch-tier candidates that survived exact verification"),
	}
}

// SetMetrics attaches m (nil detaches). Safe to call at any point in the
// stream; counters record increments from attachment onward.
func (d *Detector) SetMetrics(m *Metrics) { d.metrics = m }

func (m *Metrics) addRetraction(pruned int64) {
	if m == nil {
		return
	}
	m.BucketsRetracted.Inc()
	m.PairsPruned.Add(pruned)
}

func (m *Metrics) addPruned(n int64) {
	if m == nil {
		return
	}
	m.PairsPruned.Add(n)
}

func (m *Metrics) addFunnel(candidates, verified int64) {
	if m == nil {
		return
	}
	m.CandidatePairs.Add(candidates)
	m.VerifiedPairs.Add(verified)
}
