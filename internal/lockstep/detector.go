package lockstep

import (
	"sort"

	"repro/internal/dates"
)

// Detector is the incremental form of Detect: events stream in one at a
// time (the run-log tail feeds it day by day) and Groups can be asked for
// at any point, reporting the lockstep clusters formed so far.
//
// Device and app strings are interned to dense int32 ids on first sight,
// so the co-occurrence state — the (app, bucket) incidence cells and the
// pairwise shared-app counts — lives in integer-keyed maps with no string
// hashing or per-pair string storage. Incidence updates are O(cell
// population) per event; cells that outgrow MaxBucketPopulation retract
// their pair contributions exactly once and go dead, so a viral organic
// app degrades to O(1) per event instead of linking the population.
//
// A Detector is not safe for concurrent use.
type Detector struct {
	cfg Config

	devID   map[string]int32
	devName []string
	appID   map[string]int32
	appName []string

	// seen[dev] is the installed-app set for dedup (one install per
	// (device, app) counts, as in the batch detector).
	seen []map[int32]struct{}

	// cells maps (app, bucket) to its device list; dead cells crossed the
	// population cap and contribute no pairs.
	cells map[uint64]*cellState

	// pairs maps a packed device pair to its shared synchronized apps,
	// refcounted by the number of live cells linking the pair through that
	// app (retraction on cell death needs the count; set cardinality is
	// what the threshold reads). Exact tier only — the sketch tier never
	// materializes pairwise state during ingest.
	pairs map[uint64]map[int32]int32

	// Sketch tier (cfg.Sketching()): per-device MinHash signatures over
	// the live cells each device joined, flat at sketchK slots per
	// device, plus the cell-membership lists exact verification
	// intersects. hashA/hashB are the universal-hash parameters, all
	// derived from cfg.SketchSeed.
	sketchK    int
	sketchSalt uint64
	hashA      []uint64
	hashB      []uint64
	sigs       []uint64
	devCells   [][]uint64

	// Accounting surfaced through Stats; metrics, when attached, mirrors
	// the increments into obs counters (observation only).
	bucketsRetracted int64
	pairsPruned      int64
	lastCandidates   int64
	lastVerified     int64
	metrics          *Metrics
}

type cellState struct {
	devs []int32
	// pop counts every non-duplicate arrival, dead or alive — the basis
	// for the population cap and for pricing the signal a dead cell
	// discards.
	pop  int
	dead bool
}

// NewDetector returns an empty incremental detector. Config fields are
// normalized exactly as Detect normalizes them.
func NewDetector(cfg Config) *Detector {
	if cfg.DayBucket < 1 {
		cfg.DayBucket = 1
	}
	if cfg.MinCommonApps < 1 {
		cfg.MinCommonApps = 1
	}
	if cfg.MinGroupSize < 2 {
		cfg.MinGroupSize = 2
	}
	d := &Detector{
		cfg:   cfg,
		devID: map[string]int32{},
		appID: map[string]int32{},
		cells: map[uint64]*cellState{},
		pairs: map[uint64]map[int32]int32{},
	}
	if cfg.Sketching() {
		d.initSketch()
	}
	return d
}

// Stats returns the detector's internal accounting so far.
func (d *Detector) Stats() Stats {
	return Stats{
		BucketsRetracted: d.bucketsRetracted,
		PairsPruned:      d.pairsPruned,
		CandidatePairs:   d.lastCandidates,
		VerifiedPairs:    d.lastVerified,
	}
}

// Grow pre-sizes the intern tables and incidence map for an expected
// event count, saving rehash churn on bulk ingests.
func (d *Detector) Grow(events int) {
	if events <= 0 || len(d.devID) > 0 {
		return
	}
	devs := events/4 + 1
	d.devID = make(map[string]int32, devs)
	d.devName = make([]string, 0, devs)
	d.seen = make([]map[int32]struct{}, 0, devs)
	d.appID = make(map[string]int32, events/16+1)
	d.cells = make(map[uint64]*cellState, events/2+1)
	if d.cfg.Sketching() {
		d.sigs = make([]uint64, 0, devs*d.sketchK)
		d.devCells = make([][]uint64, 0, devs)
	} else {
		d.pairs = make(map[uint64]map[int32]int32, events)
	}
}

// Events returns how many non-duplicate installs have been ingested.
func (d *Detector) Events() int {
	n := 0
	for _, apps := range d.seen {
		n += len(apps)
	}
	return n
}

func (d *Detector) internDev(name string) int32 {
	if id, ok := d.devID[name]; ok {
		return id
	}
	id := int32(len(d.devName))
	d.devID[name] = id
	d.devName = append(d.devName, name)
	d.seen = append(d.seen, nil)
	if d.cfg.Sketching() {
		d.sigs = append(d.sigs, d.emptySig()...)
		d.devCells = append(d.devCells, nil)
	}
	return id
}

func (d *Detector) internApp(name string) int32 {
	if id, ok := d.appID[name]; ok {
		return id
	}
	id := int32(len(d.appName))
	d.appID[name] = id
	d.appName = append(d.appName, name)
	return id
}

func cellKey(app int32, bucket int) uint64 {
	return uint64(uint32(app))<<32 | uint64(uint32(bucket))
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (d *Detector) link(a, b, app int32) {
	pk := pairKey(a, b)
	m := d.pairs[pk]
	if m == nil {
		m = make(map[int32]int32, 4)
		d.pairs[pk] = m
	}
	m[app]++
}

func (d *Detector) unlink(a, b, app int32) {
	pk := pairKey(a, b)
	m := d.pairs[pk]
	if m == nil {
		return
	}
	if m[app]--; m[app] <= 0 {
		delete(m, app)
		if len(m) == 0 {
			delete(d.pairs, pk)
		}
	}
}

// Ingest feeds one install observation. Duplicate (device, app) pairs are
// ignored regardless of day, matching the batch detector.
func (d *Detector) Ingest(device, app string, day dates.Date) {
	di := d.internDev(device)
	ai := d.internApp(app)
	apps := d.seen[di]
	if apps == nil {
		apps = make(map[int32]struct{}, 8)
		d.seen[di] = apps
	}
	if _, dup := apps[ai]; dup {
		return
	}
	apps[ai] = struct{}{}

	key := cellKey(ai, int(day)/d.cfg.DayBucket)
	c := d.cells[key]
	if c == nil {
		c = &cellState{}
		d.cells[key] = c
	}
	c.pop++
	if c.dead {
		// Every prior arrival is a device this one silently fails to
		// link with — priced so the cap's signal loss is attributable.
		d.pairsPruned += int64(c.pop - 1)
		d.metrics.addPruned(int64(c.pop - 1))
		return
	}
	if max := d.cfg.MaxBucketPopulation; max > 0 && c.pop > max {
		// The cell just outgrew the cap: a hugely popular bucket must not
		// link devices (the CopyCatch-style guard), so retract every pair
		// this cell contributed and stop tracking it.
		for i := 0; i < len(c.devs); i++ {
			for j := i + 1; j < len(c.devs); j++ {
				d.unlink(c.devs[i], c.devs[j], ai)
			}
		}
		c.dead = true
		c.devs = nil
		d.bucketsRetracted++
		// The max resident pairs undone plus the max links the arrival
		// that crossed the cap never formed: pop*(pop-1)/2 with pop=max+1.
		pruned := int64(c.pop) * int64(c.pop-1) / 2
		d.pairsPruned += pruned
		d.metrics.addRetraction(pruned)
		return
	}
	if d.cfg.Sketching() {
		// The sketch tier keeps no pairwise state: membership and the
		// signature minima replace the quadratic link pass, and Groups
		// verifies banding candidates against the cell index instead.
		d.sketchAdd(di, key)
		return
	}
	for _, other := range c.devs {
		d.link(di, other, ai)
	}
	c.devs = append(c.devs, di)
}

// IngestEvent feeds one Event.
func (d *Detector) IngestEvent(ev Event) { d.Ingest(ev.Device, ev.App, ev.Day) }

// namePair returns the pair's device names in name order.
func (d *Detector) namePair(a, b int32) [2]string {
	na, nb := d.devName[a], d.devName[b]
	if na > nb {
		na, nb = nb, na
	}
	return [2]string{na, nb}
}

func sortPairs(out [][2]string) [][2]string {
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// QualifyingPairs returns the device pairs currently meeting the exact
// MinCommonApps criterion, each name-ordered, the list sorted. The exact
// tier reads its pairwise counts; the sketch tier verifies its banding
// candidates — so the sketch tier's list can only miss pairs whose
// signatures never collided in a band (measured recall loss), never
// contain a pair the exact criterion rejects.
func (d *Detector) QualifyingPairs() [][2]string {
	var out [][2]string
	if d.cfg.Sketching() {
		d.sortCells()
		var scratch []int32
		for pk := range d.candidatePairs() {
			a, b := int32(pk>>32), int32(uint32(pk))
			scratch = d.appendCommonLiveApps(scratch[:0], a, b)
			if len(scratch) >= d.cfg.MinCommonApps {
				out = append(out, d.namePair(a, b))
			}
		}
	} else {
		for pk, apps := range d.pairs {
			if len(apps) >= d.cfg.MinCommonApps {
				out = append(out, d.namePair(int32(pk>>32), int32(uint32(pk))))
			}
		}
	}
	return sortPairs(out)
}

// joinPair merges one qualifying device pair into the union-find forest,
// folding the pair's linking apps into the set tracked at the merged
// root. Set union is commutative, so the final forest and app sets are
// independent of the order pairs arrive in — which is what lets both the
// exact pairs map and the sketch tier's candidate set feed it from
// map-iteration order.
func joinPair(uf *unionFind, linkApps map[int32]map[int32]struct{}, a, b int32, apps []int32) {
	ra, rb := uf.find(a), uf.find(b)
	merged := linkApps[ra]
	if merged == nil {
		merged = make(map[int32]struct{}, len(apps))
	}
	for _, app := range apps {
		merged[app] = struct{}{}
	}
	if rb != ra {
		for app := range linkApps[rb] {
			merged[app] = struct{}{}
		}
	}
	root := uf.union(a, b)
	delete(linkApps, ra)
	delete(linkApps, rb)
	linkApps[root] = merged
}

// Groups extracts the current lockstep clusters: union-find over device
// pairs sharing at least MinCommonApps synchronized apps, groups of at
// least MinGroupSize, everything sorted deterministically. It can be
// called repeatedly as events stream in; each call runs in the size of
// the qualifying pair set (exact tier) or the banding candidate set
// (sketch tier), not the full event history.
func (d *Detector) Groups() []Group {
	uf := newUnionFind(len(d.devName))
	linkApps := map[int32]map[int32]struct{}{}
	if d.cfg.Sketching() {
		d.sketchJoin(uf, linkApps)
	} else {
		var scratch []int32
		for pk, apps := range d.pairs {
			if len(apps) < d.cfg.MinCommonApps {
				continue
			}
			scratch = scratch[:0]
			for app := range apps {
				scratch = append(scratch, app)
			}
			joinPair(uf, linkApps, int32(pk>>32), int32(uint32(pk)), scratch)
		}
	}

	members := map[int32][]int32{}
	for di := range d.devName {
		if !uf.linked(int32(di)) {
			continue
		}
		root := uf.find(int32(di))
		members[root] = append(members[root], int32(di))
	}
	out := make([]Group, 0, len(members))
	for root, devs := range members {
		if len(devs) < d.cfg.MinGroupSize {
			continue
		}
		names := make([]string, len(devs))
		for i, di := range devs {
			names[i] = d.devName[di]
		}
		sort.Strings(names)
		apps := make([]string, 0, len(linkApps[root]))
		for app := range linkApps[root] {
			apps = append(apps, d.appName[app])
		}
		sort.Strings(apps)
		out = append(out, Group{Devices: names, Apps: apps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Devices[0] < out[j].Devices[0] })
	return out
}

// unionFind is a dense-index disjoint-set forest with path halving,
// tracking which elements ever participated in a union (only those belong
// to groups).
type unionFind struct {
	parent []int32
	was    []bool
}

func newUnionFind(n int) *unionFind {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	return &unionFind{parent: parent, was: make([]bool, n)}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union links a and b (marking both as participants) and returns the root.
func (u *unionFind) union(a, b int32) int32 {
	u.was[a], u.was[b] = true, true
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	// Deterministic: the smaller index becomes the root. (Group output is
	// re-sorted by name anyway; this just keeps intermediate state stable.)
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return ra
}

// linked reports whether x ever participated in a union.
func (u *unionFind) linked(x int32) bool { return u.was[x] }
