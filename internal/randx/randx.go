// Package randx wraps math/rand/v2 with the small set of deterministic
// sampling helpers the world builder needs: weighted choices, Bernoulli
// draws, log-normal and Zipf-flavoured quantities, and stable sub-stream
// derivation so that independent subsystems (store, users, campaigns)
// draw from decoupled sequences for a single study seed.
package randx

import (
	"errors"
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random source. It embeds *rand.Rand so all the
// standard methods (IntN, Float64, Perm, ...) are available directly, and
// retains its PCG source so stream positions can be checkpointed and
// restored (rand.Rand itself keeps no state beyond the source).
type Rand struct {
	*rand.Rand
	pcg *rand.PCG
}

func fromPCG(p *rand.PCG) *Rand {
	return &Rand{Rand: rand.New(p), pcg: p}
}

// New returns a Rand seeded with the given study seed.
func New(seed uint64) *Rand {
	return fromPCG(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Derive returns an independent sub-stream identified by label. Two
// different labels on the same parent produce decoupled deterministic
// sequences; the same label always produces the same sequence. This keeps
// e.g. the user-population generator stable when the campaign generator
// changes how many draws it makes, and lets concurrent work units own
// decoupled streams whose output is independent of scheduling order.
func Derive(seed uint64, label string) *Rand {
	h := Hash64(label)
	return fromPCG(rand.NewPCG(seed^h, (seed*0x100000001b3)^(h<<1|1)))
}

// ErrNoState rejects state operations on a Rand that was not built by New
// or Derive and therefore does not carry its PCG source.
var ErrNoState = errors.New("randx: Rand has no captured source state")

// MarshalState returns the stream's current position as an opaque byte
// string. Restoring it with UnmarshalState resumes the sequence exactly
// where it left off — the checkpoint/resume machinery serializes every
// engine work-unit stream this way.
func (r *Rand) MarshalState() ([]byte, error) {
	if r.pcg == nil {
		return nil, ErrNoState
	}
	return r.pcg.MarshalBinary()
}

// UnmarshalState restores a stream position captured by MarshalState.
func (r *Rand) UnmarshalState(state []byte) error {
	if r.pcg == nil {
		return ErrNoState
	}
	return r.pcg.UnmarshalBinary(state)
}

// Hash64 returns the FNV-1a hash of s. It is the stable string hash used
// for stream derivation and for shard selection in concurrent stores, so
// both sides of the system agree on a single cheap hash.
func Hash64(s string) uint64 {
	const offset = 0xcbf29ce484222325
	const prime = 0x100000001b3
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Unit01 returns a deterministic uniform draw in [0, 1) keyed by (seed,
// label). Unlike consuming a shared *Rand, the result depends only on the
// key, never on how many draws other call sites made first — which makes
// it safe for decisions taken concurrently in arbitrary order.
func Unit01(seed uint64, label string) float64 {
	h := Hash64(label)
	// One round of splitmix64 over the combined key decorrelates nearby
	// seeds and labels.
	x := seed ^ h
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// WeightedIndex picks an index proportionally to weights. Negative weights
// are treated as zero. If all weights are zero it returns 0.
func (r *Rand) WeightedIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Choice returns a uniformly random element of items; it panics on an
// empty slice (a programming error in the caller).
func Choice[T any](r *Rand, items []T) T {
	return items[r.IntN(len(items))]
}

// Sample returns k distinct elements drawn uniformly without replacement.
// If k >= len(items) a shuffled copy of all items is returned.
func Sample[T any](r *Rand, items []T, k int) []T {
	idx := r.Perm(len(items))
	if k > len(items) {
		k = len(items)
	}
	out := make([]T, k)
	for i := 0; i < k; i++ {
		out[i] = items[idx[i]]
	}
	return out
}

// LogNormal draws from a log-normal distribution with the given location
// (mu) and scale (sigma) of the underlying normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogUniform draws log-uniformly from [lo, hi]; both bounds must be > 0.
func (r *Rand) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := r.Float64()
	return math.Exp(math.Log(lo) + u*(math.Log(hi)-math.Log(lo)))
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.IntN(hi-lo+1)
}

// Poisson draws from a Poisson distribution with mean lambda using
// Knuth's method for small lambda and a normal approximation above 30.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success for a
// Bernoulli(p) process (support {0, 1, 2, ...}).
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	u := r.Float64()
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}
