package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same sequence")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds should diverge (first draw)")
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, "users")
	a2 := Derive(42, "users")
	b := Derive(42, "campaigns")
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == a2.Uint64() {
			same++
		}
		if Derive(42, "users").Uint64() == b.Uint64() {
			diff++
		}
	}
	if same != 64 {
		t.Errorf("same-label streams matched only %d/64 draws", same)
	}
	if diff > 2 {
		t.Errorf("different-label streams collided %d/64 times", diff)
	}
}

func TestBool(t *testing.T) {
	r := New(7)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	frac := float64(n) / trials
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %g", frac)
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(9)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency = %g, want ~%g", i, got, want)
		}
	}
}

func TestWeightedIndexEdgeCases(t *testing.T) {
	r := New(1)
	if got := r.WeightedIndex([]float64{0, 0, 0}); got != 0 {
		t.Errorf("all-zero weights: got %d, want 0", got)
	}
	if got := r.WeightedIndex([]float64{-1, 0, 5}); got != 2 {
		t.Errorf("negative weights ignored: got %d, want 2", got)
	}
	if got := r.WeightedIndex([]float64{3}); got != 0 {
		t.Errorf("single weight: got %d", got)
	}
}

func TestSample(t *testing.T) {
	r := New(3)
	items := []int{1, 2, 3, 4, 5}
	s := Sample(r, items, 3)
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Error("sample repeated an element")
		}
		seen[v] = true
	}
	all := Sample(r, items, 10)
	if len(all) != 5 {
		t.Errorf("oversized k should return all items, got %d", len(all))
	}
}

func TestIntBetween(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
	}
	if r.IntBetween(4, 4) != 4 {
		t.Error("degenerate range")
	}
	if r.IntBetween(9, 3) != 9 {
		t.Error("inverted range should return lo")
	}
}

func TestLogUniform(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.LogUniform(10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("LogUniform out of range: %g", v)
		}
	}
	if r.LogUniform(0, 5) != 0 {
		t.Error("invalid lo should return lo")
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, lambda := range []float64{0.5, 3, 50} {
		sum := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestGeometric(t *testing.T) {
	r := New(23)
	if r.Geometric(1) != 0 {
		t.Error("p=1 should give 0 failures")
	}
	sum := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / trials
	want := (1 - 0.25) / 0.25 // 3
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("Geometric(0.25) mean = %g, want ~%g", mean, want)
	}
}

func TestChoice(t *testing.T) {
	r := New(29)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Choice(r, items)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice never produced some items: %v", seen)
	}
}

func TestMarshalStateResumesSequence(t *testing.T) {
	r := Derive(99, "state-test")
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	state, err := r.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 8)
	for i := range want {
		want[i] = r.Uint64()
	}
	// A fresh stream fast-forwarded via UnmarshalState must continue with
	// exactly the same draws.
	r2 := Derive(99, "state-test")
	if err := r2.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, w)
		}
	}
	var bare Rand
	if _, err := bare.MarshalState(); err == nil {
		t.Error("MarshalState on a source-less Rand must fail")
	}
}
