package stats

import (
	"math"
	"sort"
)

// Median returns the median of vs. It returns NaN for an empty slice and
// does not modify its argument.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MedianInt returns the median of integer samples as a float64.
func MedianInt(vs []int64) float64 {
	fs := make([]float64, len(vs))
	for i, v := range vs {
		fs[i] = float64(v)
	}
	return Median(fs)
}

// Mean returns the arithmetic mean of vs, or NaN when empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is unusable; build one with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// HistogramBin is one bin of a histogram with inclusive Lo and exclusive
// Hi bounds (the final bin's Hi may be +Inf).
type HistogramBin struct {
	Lo, Hi float64
	Count  int
	Label  string
}

// Histogram counts samples into the provided bin edges. edges must be
// strictly increasing; samples below edges[0] are dropped and samples at
// or above edges[len-1] fall into a final open-ended bin.
func Histogram(samples []float64, edges []float64, labels []string) []HistogramBin {
	bins := make([]HistogramBin, len(edges))
	for i := range edges {
		bins[i].Lo = edges[i]
		if i+1 < len(edges) {
			bins[i].Hi = edges[i+1]
		} else {
			bins[i].Hi = math.Inf(1)
		}
		if i < len(labels) {
			bins[i].Label = labels[i]
		}
	}
	for _, v := range samples {
		for i := len(bins) - 1; i >= 0; i-- {
			if v >= bins[i].Lo {
				bins[i].Count++
				break
			}
		}
	}
	return bins
}

// FractionAtLeast returns the fraction of samples >= threshold.
func FractionAtLeast(samples []float64, threshold float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range samples {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}
