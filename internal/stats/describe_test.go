package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 0, 5}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMedianInt(t *testing.T) {
	if got := MedianInt([]int64{100, 1000, 10}); got != 100 {
		t.Errorf("MedianInt = %g, want 100", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF.At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %g, want 30", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %g, want 10", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %g, want 50", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty ECDF should yield NaN")
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		if len(samples) == 0 {
			return true
		}
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		e := NewECDF(samples)
		sort.Float64s(probes)
		prev := -1.0
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := e.At(p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 10, 100}
	labels := []string{"0-10", "10-100", "100+"}
	bins := Histogram([]float64{1, 5, 10, 50, 99, 100, 1e6, -3}, edges, labels)
	if len(bins) != 3 {
		t.Fatalf("len(bins) = %d, want 3", len(bins))
	}
	if bins[0].Count != 2 { // 1, 5 (-3 dropped)
		t.Errorf("bin0 = %d, want 2", bins[0].Count)
	}
	if bins[1].Count != 3 { // 10, 50, 99
		t.Errorf("bin1 = %d, want 3", bins[1].Count)
	}
	if bins[2].Count != 2 { // 100, 1e6
		t.Errorf("bin2 = %d, want 2", bins[2].Count)
	}
	if bins[0].Label != "0-10" || bins[2].Label != "100+" {
		t.Errorf("labels wrong: %+v", bins)
	}
	if !math.IsInf(bins[2].Hi, 1) {
		t.Error("last bin should be open-ended")
	}
}

// Property: every in-range sample lands in exactly one bin.
func TestHistogramConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		samples := make([]float64, len(raw))
		for i, r := range raw {
			samples[i] = float64(r)
		}
		edges := []float64{0, 100, 1000, 10000}
		bins := Histogram(samples, edges, nil)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFractionAtLeast(t *testing.T) {
	if got := FractionAtLeast([]float64{1, 5, 5, 10}, 5); got != 0.75 {
		t.Errorf("FractionAtLeast = %g, want 0.75", got)
	}
	if !math.IsNaN(FractionAtLeast(nil, 1)) {
		t.Error("empty should be NaN")
	}
}
