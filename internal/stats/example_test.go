package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleChiSquareIndependence() {
	// The paper's Table 5, vetted vs. baseline: did the proportion of
	// apps with install-count increases differ between groups?
	res, err := stats.ChiSquareIndependence(stats.Table2x2{
		A0: 294, A1: 6, // baseline: 294 no increase, 6 increase
		B0: 431, B1: 61, // vetted: 431 no increase, 61 increase
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("chi2=%.1f reject@0.05=%v\n", res.Chi2, res.RejectAt05)
	// Output:
	// chi2=26.0 reject@0.05=true
}

func ExampleMedian() {
	fmt.Println(stats.Median([]float64{100, 1000, 500000}))
	// Output:
	// 1000
}

func ExampleNewECDF() {
	e := stats.NewECDF([]float64{1, 3, 3, 7})
	fmt.Println(e.At(3))
	// Output:
	// 0.75
}
