package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// approx checks relative closeness.
func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v want %v", name, got, want)
	}
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s: got %g want %g (tol %g)", name, got, want, tol)
	}
}

func TestChiSquarePaperTable5Vetted(t *testing.T) {
	// Paper Table 5, vetted vs baseline: baseline 294/6, vetted 431/61.
	// Paper reports chi2 = 26.0, p = 3.378e-7.
	res, err := ChiSquareIndependence(Table2x2{A0: 294, A1: 6, B0: 431, B1: 61})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2", res.Chi2, 26.0, 0.02)
	approx(t, "p", res.P, 3.378e-7, 0.05)
	if !res.RejectAt05 {
		t.Error("expected rejection at 0.05")
	}
}

func TestChiSquarePaperTable5Unvetted(t *testing.T) {
	// Paper Table 5, unvetted vs baseline: baseline 294/6, unvetted 450/88.
	// Paper reports chi2 = 39.9, p ~ 0.
	res, err := ChiSquareIndependence(Table2x2{A0: 294, A1: 6, B0: 450, B1: 88})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2", res.Chi2, 39.9, 0.02)
	if res.P > 1e-8 {
		t.Errorf("p = %g, want ~0", res.P)
	}
}

func TestChiSquarePaperTable6(t *testing.T) {
	// Vetted vs baseline: 253/8 vs 296/24 -> chi2=5.43, p=0.02.
	res, err := ChiSquareIndependence(Table2x2{A0: 253, A1: 8, B0: 296, B1: 24})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2 vetted", res.Chi2, 5.43, 0.03)
	approx(t, "p vetted", res.P, 0.02, 0.05)
	if !res.RejectAt05 {
		t.Error("vetted vs baseline should reject at 0.05")
	}

	// Unvetted vs baseline: 253/8 vs 472/12 -> chi2=0.22, p=0.64.
	res, err = ChiSquareIndependence(Table2x2{A0: 253, A1: 8, B0: 472, B1: 12})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2 unvetted", res.Chi2, 0.22, 0.1)
	approx(t, "p unvetted", res.P, 0.64, 0.03)
	if res.RejectAt05 {
		t.Error("unvetted vs baseline should NOT reject at 0.05")
	}
}

func TestChiSquarePaperTable7(t *testing.T) {
	// Vetted vs baseline: 77/5 vs 162/30 -> chi2=4.7, p=0.03.
	res, err := ChiSquareIndependence(Table2x2{A0: 77, A1: 5, B0: 162, B1: 30})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2 vetted", res.Chi2, 4.7, 0.05)
	approx(t, "p vetted", res.P, 0.03, 0.1)
	if !res.RejectAt05 {
		t.Error("vetted vs baseline funding should reject")
	}

	// Unvetted vs baseline: 77/5 vs 68/11 -> chi2=2.8, p=0.10.
	res, err = ChiSquareIndependence(Table2x2{A0: 77, A1: 5, B0: 68, B1: 11})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chi2 unvetted", res.Chi2, 2.8, 0.06)
	approx(t, "p unvetted", res.P, 0.10, 0.1)
	if res.RejectAt05 {
		t.Error("unvetted vs baseline funding should NOT reject")
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	cases := []Table2x2{
		{},                           // all zero
		{A0: 0, A1: 0, B0: 5, B1: 5}, // empty row A
		{A0: 5, A1: 5, B0: 0, B1: 0}, // empty row B
		{A0: 0, A1: 5, B0: 0, B1: 5}, // empty col 0
		{A0: 5, A1: 0, B0: 5, B1: 0}, // empty col 1
	}
	for i, c := range cases {
		if _, err := ChiSquareIndependence(c); err == nil {
			t.Errorf("case %d: expected ErrDegenerateTable", i)
		}
	}
}

func TestChiSquareIndependentTable(t *testing.T) {
	// A perfectly proportional table has chi2 = 0, p = 1.
	res, err := ChiSquareIndependence(Table2x2{A0: 40, A1: 10, B0: 80, B1: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi2 > 1e-12 {
		t.Errorf("chi2 = %g, want 0", res.Chi2)
	}
	approx(t, "p", res.P, 1, 1e-9)
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values for df=1: P(X >= 3.841) ~ 0.05, P(X >= 6.635) ~ 0.01.
	approx(t, "crit 0.05", ChiSquareSurvival(3.841459, 1), 0.05, 1e-4)
	approx(t, "crit 0.01", ChiSquareSurvival(6.634897, 1), 0.01, 1e-4)
	// df=2: survival is exp(-x/2).
	approx(t, "df2", ChiSquareSurvival(4, 2), math.Exp(-2), 1e-10)
	// df=4 at x=4: Q(2,2) = e^-2 * (1 + 2) = 3e^-2.
	approx(t, "df4", ChiSquareSurvival(4, 4), 3*math.Exp(-2), 1e-10)
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if got := ChiSquareSurvival(0, 1); got != 1 {
		t.Errorf("survival at 0 = %g, want 1", got)
	}
	if got := ChiSquareSurvival(-1, 1); got != 1 {
		t.Errorf("survival at -1 = %g, want 1", got)
	}
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("df=0 should give NaN")
	}
}

func TestChiSquareCDFComplement(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 30} {
		for _, df := range []int{1, 2, 3, 5, 10} {
			sum := ChiSquareCDF(x, df) + ChiSquareSurvival(x, df)
			approx(t, "cdf+sf", sum, 1, 1e-9)
		}
	}
}

func TestChiSquareSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x <= 50; x += 0.25 {
		s := ChiSquareSurvival(x, 1)
		if s > prev+1e-12 {
			t.Fatalf("survival not monotone at x=%g: %g > %g", x, s, prev)
		}
		prev = s
	}
}

// Property: chi-squared statistic is invariant under swapping rows or
// columns of the table, and the p-value is always in [0, 1].
func TestChiSquareProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 uint16) bool {
		tab := Table2x2{A0: uint64(a0) + 1, A1: uint64(a1) + 1, B0: uint64(b0) + 1, B1: uint64(b1) + 1}
		r1, err1 := ChiSquareIndependence(tab)
		r2, err2 := ChiSquareIndependence(Table2x2{A0: tab.B0, A1: tab.B1, B0: tab.A0, B1: tab.A1})
		r3, err3 := ChiSquareIndependence(Table2x2{A0: tab.A1, A1: tab.A0, B0: tab.B1, B1: tab.B0})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if math.Abs(r1.Chi2-r2.Chi2) > 1e-9*(1+r1.Chi2) {
			return false
		}
		if math.Abs(r1.Chi2-r3.Chi2) > 1e-9*(1+r1.Chi2) {
			return false
		}
		return r1.P >= 0 && r1.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scaling every cell by a constant k >= 1 scales chi2 by ~k.
func TestChiSquareScaling(t *testing.T) {
	tab := Table2x2{A0: 30, A1: 10, B0: 20, B1: 25}
	r1, err := ChiSquareIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := ChiSquareIndependence(Table2x2{A0: 300, A1: 100, B0: 200, B1: 250})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "scaled chi2", r10.Chi2, 10*r1.Chi2, 1e-9)
}
