// Package stats provides the statistical machinery used by the study:
// the chi-squared test of independence for 2x2 contingency tables (the
// paper's significance test for Tables 5-7), the chi-squared CDF via the
// regularized incomplete gamma function, and small descriptive-statistics
// helpers (median, ECDF, log-scale histogram bins).
//
// Everything is implemented from scratch on top of the math package so the
// module stays dependency-free.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Table2x2 is a 2x2 contingency table:
//
//	          outcome=no   outcome=yes
//	group A   A0           A1
//	group B   B0           B1
//
// In the paper, group A is the baseline app set and group B the treatment
// (apps advertised on vetted or unvetted IIPs); the outcome is "install
// count increased", "appeared in top charts", or "raised funding".
type Table2x2 struct {
	A0, A1 uint64
	B0, B1 uint64
}

// Totals returns the row sums, column sums, and grand total.
func (t Table2x2) Totals() (rowA, rowB, col0, col1, n uint64) {
	rowA = t.A0 + t.A1
	rowB = t.B0 + t.B1
	col0 = t.A0 + t.B0
	col1 = t.A1 + t.B1
	n = rowA + rowB
	return
}

// ChiSquareResult is the outcome of a chi-squared test of independence.
type ChiSquareResult struct {
	Chi2     float64 // test statistic
	P        float64 // p-value for 1 degree of freedom
	DF       int     // degrees of freedom (always 1 for a 2x2 table)
	N        uint64  // grand total
	Expected [2][2]float64
	// RejectAt05 is true when the null hypothesis of independence is
	// rejected at the 0.05 significance level, matching the paper's
	// decision rule.
	RejectAt05 bool
}

func (r ChiSquareResult) String() string {
	return fmt.Sprintf("chi2=%.4g p=%.4g df=%d n=%d reject@0.05=%v",
		r.Chi2, r.P, r.DF, r.N, r.RejectAt05)
}

// ErrDegenerateTable is returned when a contingency table has an empty row
// or column, making the test undefined.
var ErrDegenerateTable = errors.New("stats: degenerate contingency table (empty row or column)")

// ChiSquareIndependence runs Pearson's chi-squared test of independence on
// a 2x2 table without Yates' continuity correction, matching the standard
// formulation cited by the paper (McHugh 2013). Degrees of freedom are
// (2-1)*(2-1) = 1.
func ChiSquareIndependence(t Table2x2) (ChiSquareResult, error) {
	rowA, rowB, col0, col1, n := t.Totals()
	if rowA == 0 || rowB == 0 || col0 == 0 || col1 == 0 {
		return ChiSquareResult{}, ErrDegenerateTable
	}
	fn := float64(n)
	exp := [2][2]float64{
		{float64(rowA) * float64(col0) / fn, float64(rowA) * float64(col1) / fn},
		{float64(rowB) * float64(col0) / fn, float64(rowB) * float64(col1) / fn},
	}
	obs := [2][2]float64{
		{float64(t.A0), float64(t.A1)},
		{float64(t.B0), float64(t.B1)},
	}
	chi2 := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d := obs[i][j] - exp[i][j]
			chi2 += d * d / exp[i][j]
		}
	}
	p := ChiSquareSurvival(chi2, 1)
	return ChiSquareResult{
		Chi2:       chi2,
		P:          p,
		DF:         1,
		N:          n,
		Expected:   exp,
		RejectAt05: p < 0.05,
	}, nil
}

// ChiSquareSurvival returns P(X >= x) for a chi-squared random variable X
// with df degrees of freedom; i.e. the p-value of a chi-squared statistic.
// It is computed as Q(df/2, x/2), the regularized upper incomplete gamma
// function.
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	if df <= 0 {
		return math.NaN()
	}
	return regIncGammaQ(float64(df)/2, x/2)
}

// ChiSquareCDF returns P(X <= x) for a chi-squared random variable X with
// df degrees of freedom.
func ChiSquareCDF(x float64, df int) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - ChiSquareSurvival(x, df)
}

// regIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Gamma(a, x)/Gamma(a) using the series expansion for x < a+1
// and the continued-fraction expansion otherwise (Numerical Recipes
// gammp/gammq construction).
func regIncGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - regIncGammaPSeries(a, x)
	default:
		return regIncGammaQContinued(a, x)
	}
}

// regIncGammaPSeries evaluates P(a, x) by its power series.
func regIncGammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// regIncGammaQContinued evaluates Q(a, x) by a modified Lentz continued
// fraction.
func regIncGammaQContinued(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
