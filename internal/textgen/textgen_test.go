package textgen

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/randx"
)

func TestDeterminism(t *testing.T) {
	a := New(randx.New(5))
	b := New(randx.New(5))
	for i := 0; i < 50; i++ {
		ta, tb := a.AppTitle(), b.AppTitle()
		if ta != tb {
			t.Fatalf("titles diverged: %q vs %q", ta, tb)
		}
		if a.PackageName(ta) != b.PackageName(tb) {
			t.Fatal("package names diverged")
		}
	}
}

func TestPackageNameUniqueAndValid(t *testing.T) {
	g := New(randx.New(1))
	valid := regexp.MustCompile(`^[a-z0-9.]+$`)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		pkg := g.PackageName(g.AppTitle())
		if seen[pkg] {
			t.Fatalf("duplicate package name: %s", pkg)
		}
		seen[pkg] = true
		if !valid.MatchString(pkg) {
			t.Fatalf("invalid package name: %q", pkg)
		}
		if strings.HasPrefix(pkg, ".") || strings.HasSuffix(pkg, ".") {
			t.Fatalf("package name has leading/trailing dot: %q", pkg)
		}
		if strings.Count(pkg, ".") < 2 {
			t.Fatalf("package name too shallow: %q", pkg)
		}
	}
}

func TestCompanyNameUnique(t *testing.T) {
	g := New(randx.New(2))
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := g.CompanyName()
		if seen[c] {
			t.Fatalf("duplicate company: %s", c)
		}
		seen[c] = true
	}
}

func TestRewardAppTitleHasKeyword(t *testing.T) {
	g := New(randx.New(3))
	for i := 0; i < 100; i++ {
		title := g.RewardAppTitle()
		if !HasMoneyKeyword(title) {
			t.Fatalf("reward title lacks money keyword: %q", title)
		}
	}
}

func TestHasMoneyKeyword(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"CashPirate", true},
		{"Make Money Easy", true},
		{"eu.gcashapp", true},
		{"Super Puzzle 3D", false},
		{"REWARD hub", true},
		{"photo editor", false},
	}
	for _, c := range cases {
		if got := HasMoneyKeyword(c.in); got != c.want {
			t.Errorf("HasMoneyKeyword(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCountryDistributionHeadHeavy(t *testing.T) {
	g := New(randx.New(4))
	counts := map[string]int{}
	const trials = 5000
	for i := 0; i < trials; i++ {
		counts[g.Country()]++
	}
	if counts["USA"] < counts[Countries[len(Countries)-1]] {
		t.Error("country distribution should be head-heavy (USA first)")
	}
	if len(counts) < 20 {
		t.Errorf("expected broad country coverage, got %d", len(counts))
	}
}

func TestDeviceBuildEmulatorMarkers(t *testing.T) {
	g := New(randx.New(6))
	for i := 0; i < 50; i++ {
		b := g.DeviceBuild(true)
		if !strings.Contains(b, "generic") && !strings.Contains(b, "genymotion") {
			t.Fatalf("emulator build lacks marker: %q", b)
		}
		if nb := g.DeviceBuild(false); strings.Contains(nb, "generic") || strings.Contains(nb, "genymotion") {
			t.Fatalf("real-device build carries emulator marker: %q", nb)
		}
	}
}

func TestWebsiteAndEmail(t *testing.T) {
	g := New(randx.New(7))
	c := g.CompanyName()
	w := g.Website(c)
	if !strings.HasPrefix(w, "https://") || strings.Contains(w, " ") {
		t.Errorf("bad website: %q", w)
	}
	e := g.Email(c)
	if !strings.Contains(e, "@") || strings.Contains(e, " ") {
		t.Errorf("bad email: %q", e)
	}
}

func TestGenreInList(t *testing.T) {
	g := New(randx.New(8))
	set := map[string]bool{}
	for _, genre := range Genres {
		set[genre] = true
	}
	for i := 0; i < 200; i++ {
		if !set[g.Genre()] {
			t.Fatal("Genre returned value outside Genres")
		}
	}
}

func TestMilkerCountriesMatchPaper(t *testing.T) {
	if len(MilkerCountries) != 8 {
		t.Fatalf("paper uses 8 VPN exit countries, got %d", len(MilkerCountries))
	}
}

func TestSSIDShape(t *testing.T) {
	g := New(randx.New(9))
	re := regexp.MustCompile(`^[A-Za-z-]+-\d{4}$`)
	for i := 0; i < 20; i++ {
		if s := g.SSID(); !re.MatchString(s) {
			t.Errorf("unexpected SSID shape: %q", s)
		}
	}
}
