// Package textgen deterministically generates the naming surface of the
// synthetic ecosystem: app titles, Android package names, developer/company
// names, mailing-address countries, genres, and network identifiers (WiFi
// SSIDs, device build fingerprints). The generators are plain template
// grammars over word lists, so identical RNG streams give identical worlds.
package textgen

import (
	"fmt"
	"strings"

	"repro/internal/randx"
)

// Genres mirrors the breadth of Google Play categories seen in the paper's
// Table 4 (up to 51 distinct genres on ayeT-Studios).
var Genres = []string{
	"Action", "Adventure", "Arcade", "Art & Design", "Auto & Vehicles",
	"Beauty", "Board", "Books & Reference", "Business", "Card",
	"Casino", "Casual", "Comics", "Communication", "Dating",
	"Education", "Educational", "Entertainment", "Events", "Finance",
	"Food & Drink", "Health & Fitness", "House & Home", "Libraries & Demo",
	"Lifestyle", "Maps & Navigation", "Medical", "Music", "Music & Audio",
	"News & Magazines", "Parenting", "Personalization", "Photography",
	"Productivity", "Puzzle", "Racing", "Role Playing", "Shopping",
	"Simulation", "Social", "Sports", "Strategy", "Tools",
	"Travel & Local", "Trivia", "Video Players & Editors", "Weather",
	"Word", "Wellness", "Kids", "Utilities",
}

// Countries is the developer-country universe (the paper reports apps from
// up to 44 countries on a single IIP).
var Countries = []string{
	"USA", "UK", "Spain", "Israel", "Canada", "Germany", "India", "Russia",
	"France", "Brazil", "China", "Japan", "South Korea", "Turkey",
	"Indonesia", "Vietnam", "Philippines", "Mexico", "Argentina",
	"Netherlands", "Sweden", "Poland", "Ukraine", "Italy", "Portugal",
	"Egypt", "Nigeria", "South Africa", "Australia", "New Zealand",
	"Singapore", "Malaysia", "Thailand", "Pakistan", "Bangladesh",
	"Saudi Arabia", "UAE", "Ireland", "Belgium", "Switzerland",
	"Austria", "Denmark", "Norway", "Finland", "Czechia", "Romania",
	"Hungary", "Greece", "Chile", "Colombia",
}

// MilkerCountries are the eight VPN exit countries the paper's monitoring
// infrastructure uses.
var MilkerCountries = []string{
	"USA", "UK", "Spain", "Israel", "Canada", "Germany", "India", "Russia",
}

var nameAdjectives = []string{
	"Super", "Mega", "Happy", "Epic", "Tiny", "Golden", "Magic", "Swift",
	"Lucky", "Brave", "Cosmic", "Pixel", "Turbo", "Royal", "Crystal",
	"Shadow", "Neon", "Solar", "Mighty", "Clever", "Daily", "Smart",
	"Instant", "Secure", "Prime", "Ultra", "Fresh", "Wild", "Frozen",
	"Hidden",
}

var nameNouns = []string{
	"Quest", "Saga", "Runner", "Farm", "Kitchen", "Garden", "Empire",
	"Legends", "Puzzle", "Words", "Racing", "Soccer", "Poker", "Slots",
	"Diary", "Notes", "Scanner", "Wallet", "Camera", "Editor", "Fitness",
	"Recipes", "Weather", "Radio", "Music", "Chat", "Browser", "Keyboard",
	"Launcher", "Cleaner", "Translator", "Planner", "Market", "Deals",
	"Stories", "Trivia", "Blocks", "Bubbles", "Castle", "Dragons",
}

var nameSuffixes = []string{
	"", "", "", " Pro", " 2", " 3D", " Plus", " Deluxe", " HD", " Go",
	" Lite", " Premium", " Master", " Mania", " World", " Land",
}

// moneyWords are keywords that the paper observed in affiliate-app names
// ("money", "reward", "cash"); used for reward-app naming and for the
// keyword analysis in Section 3.
var moneyWords = []string{"money", "reward", "cash", "earn", "gift", "pay"}

var companyStems = []string{
	"Nova", "Apex", "Blue", "Bright", "Clear", "Core", "Delta", "Echo",
	"Flux", "Giga", "Halo", "Iris", "Jade", "Kite", "Luna", "Mono",
	"North", "Orbit", "Pulse", "Quartz", "Rapid", "Stellar", "Terra",
	"Umbra", "Vertex", "Wave", "Xeno", "Yonder", "Zephyr", "Forge",
}

var companySuffixes = []string{
	"Labs", "Studios", "Games", "Soft", "Works", "Interactive", "Media",
	"Apps", "Mobile", "Digital", "Tech", "Entertainment",
}

var tlds = []string{"com", "io", "app", "net", "co", "dev", "games"}

// Gen is a deterministic name generator with collision-free package and
// developer identifiers.
type Gen struct {
	r           *randx.Rand
	usedPkg     map[string]bool
	usedCompany map[string]bool
	companySeq  int
}

// New returns a generator bound to the given RNG.
func New(r *randx.Rand) *Gen {
	return &Gen{r: r, usedPkg: map[string]bool{}, usedCompany: map[string]bool{}}
}

// AppTitle generates a plausible store listing title.
func (g *Gen) AppTitle() string {
	adj := randx.Choice(g.r, nameAdjectives)
	noun := randx.Choice(g.r, nameNouns)
	suf := randx.Choice(g.r, nameSuffixes)
	return adj + " " + noun + suf
}

// RewardAppTitle generates a money/reward-keyword affiliate-app title like
// the "CashPirate" / "make money" family the paper identifies.
func (g *Gen) RewardAppTitle() string {
	w := randx.Choice(g.r, moneyWords)
	noun := randx.Choice(g.r, []string{"Pirate", "Tree", "App", "Box", "Time", "Rain", "Hub", "Farm"})
	return strings.Title(w) + " " + noun + " - Earn Rewards" //nolint:staticcheck // ASCII-only words
}

// PackageName derives a unique Android package name from a title.
func (g *Gen) PackageName(title string) string {
	base := strings.ToLower(strings.Join(strings.Fields(title), "."))
	base = sanitizePkg(base)
	tld := randx.Choice(g.r, tlds)
	stem := strings.ToLower(randx.Choice(g.r, companyStems))
	pkg := fmt.Sprintf("%s.%s.%s", tld, stem, base)
	for g.usedPkg[pkg] {
		pkg = fmt.Sprintf("%s.%s.%s%d", tld, stem, base, g.r.IntN(10000))
	}
	g.usedPkg[pkg] = true
	return pkg
}

func sanitizePkg(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.':
			b.WriteRune(c)
		}
	}
	out := strings.Trim(b.String(), ".")
	if out == "" {
		out = "app"
	}
	return out
}

// CompanyName generates a unique developer/company name. The grammar's
// name space is ~10.8k two-stem combinations; once a large world
// approaches that, rejection sampling stalls (and past it, livelocks),
// so after a bounded number of collisions the name gets a sequence
// number instead. Stems and suffixes contain no digits, so numbered
// names can never collide with drawn ones — and at small-world load
// factors the fallback fires with vanishing probability, keeping the
// RNG draw sequence (and thus existing worlds) unchanged.
func (g *Gen) CompanyName() string {
	name := randx.Choice(g.r, companyStems) + " " + randx.Choice(g.r, companySuffixes)
	for tries := 0; g.usedCompany[name]; tries++ {
		if tries >= 20 {
			g.companySeq++
			name = fmt.Sprintf("%s %d", name, g.companySeq)
			break
		}
		name = randx.Choice(g.r, companyStems) + randx.Choice(g.r, companyStems) + " " + randx.Choice(g.r, companySuffixes)
	}
	g.usedCompany[name] = true
	return name
}

// Website derives a company website URL from its name.
func (g *Gen) Website(company string) string {
	host := strings.ToLower(strings.Join(strings.Fields(company), ""))
	return "https://" + host + "." + randx.Choice(g.r, tlds)
}

// Email derives a contact address from a company name.
func (g *Gen) Email(company string) string {
	host := strings.ToLower(strings.Join(strings.Fields(company), ""))
	return "contact@" + host + ".com"
}

// Country draws a developer country, biased toward the head of the list so
// a few countries dominate as in real marketplaces.
func (g *Gen) Country() string {
	// Zipf-ish: index drawn geometrically over the country list.
	i := g.r.Geometric(0.08)
	if i >= len(Countries) {
		i = g.r.IntN(len(Countries))
	}
	return Countries[i]
}

// Genre draws a store genre uniformly.
func (g *Gen) Genre() string {
	return randx.Choice(g.r, Genres)
}

// SSID generates a home-router-looking WiFi network name.
func (g *Gen) SSID() string {
	vendors := []string{"NETGEAR", "Linksys", "TP-Link", "dlink", "ASUS", "xfinity", "MyWifi"}
	return fmt.Sprintf("%s-%04d", randx.Choice(g.r, vendors), g.r.IntN(10000))
}

// DeviceBuild generates an Android build fingerprint; emulator builds carry
// the telltale strings the honey app scans for ("generic", "genymotion").
func (g *Gen) DeviceBuild(emulator bool) string {
	if emulator {
		kind := randx.Choice(g.r, []string{"generic", "genymotion", "generic_x86"})
		return fmt.Sprintf("%s/sdk_gphone/8.1.0/%07d", kind, g.r.IntN(1e7))
	}
	brands := []string{"samsung", "xiaomi", "huawei", "oppo", "vivo", "motorola", "oneplus", "lge"}
	models := []string{"SM-G960F", "Redmi-6A", "P20-lite", "A5s", "Y91", "moto-g6", "A6003", "K10"}
	return fmt.Sprintf("%s/%s/9/%07d", randx.Choice(g.r, brands), randx.Choice(g.r, models), g.r.IntN(1e7))
}

// HasMoneyKeyword reports whether an app title or package name contains one
// of the money/reward keywords from the paper's Section 3 analysis.
func HasMoneyKeyword(name string) bool {
	l := strings.ToLower(name)
	for _, w := range moneyWords {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}
