package affiliate

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/textgen"
)

func TestStandardAffiliatesMatchTable2(t *testing.T) {
	apps := StandardAffiliates()
	if len(apps) != 8 {
		t.Fatalf("expected 8 affiliate apps, got %d", len(apps))
	}
	// Every app integrates at least one vetted IIP (paper: "all of the 8
	// affiliate apps integrate at least one offer wall from vetted IIPs").
	vetted := map[string]bool{
		iip.Fyber: true, iip.OfferToro: true, iip.AdscendMedia: true,
		iip.HangMyAds: true, iip.AdGem: true,
	}
	unvettedCount := 0
	for _, a := range apps {
		hasVetted := false
		for _, n := range a.IIPs {
			if vetted[n] {
				hasVetted = true
			}
		}
		if !hasVetted {
			t.Errorf("%s integrates no vetted IIP", a.Package)
		}
		if a.IntegratesIIP(iip.AyetStudios) || a.IntegratesIIP(iip.RankApp) {
			unvettedCount++
		}
	}
	// "most (5 out of 8) of them also integrate at least one offer wall
	// from unvetted IIPs".
	if unvettedCount != 5 {
		t.Errorf("apps with unvetted walls = %d, want 5", unvettedCount)
	}
	// The most popular app (10M+) integrates 4 walls.
	if apps[0].InstallsBin != 10_000_000 || len(apps[0].IIPs) != 4 {
		t.Errorf("most popular app should have 10M+ installs and 4 walls: %+v", apps[0])
	}
	// All affiliate-app titles carry money/reward keywords.
	for _, a := range apps {
		if !textgen.HasMoneyKeyword(a.Title) && !textgen.HasMoneyKeyword(a.Package) {
			t.Errorf("%s lacks money keyword", a.Package)
		}
	}
}

func TestIntegratesIIP(t *testing.T) {
	a := StandardAffiliates()[0]
	if !a.IntegratesIIP(iip.Fyber) {
		t.Error("CashForApps should integrate Fyber")
	}
	if a.IntegratesIIP(iip.RankApp) {
		t.Error("CashForApps should not integrate RankApp")
	}
}

func TestPointsToUSD(t *testing.T) {
	a := &App{PointsPerUSD: 500}
	if got := a.PointsToUSD(340); math.Abs(got-0.68) > 1e-12 {
		t.Errorf("PointsToUSD = %g, want 0.68", got)
	}
	bad := &App{}
	if bad.PointsToUSD(100) != 0 {
		t.Error("zero rate should yield 0")
	}
}

// newPlatformWithOffers builds a funded Fyber with n live campaigns and an
// offer-wall HTTP server that knows the given affiliates.
func newPlatformWithOffers(t *testing.T, n int, affiliates []*App) (*iip.Platform, *httptest.Server) {
	t.Helper()
	p := iip.StandardPlatforms()[iip.Fyber]
	if err := p.RegisterDeveloper("dev", iip.Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Deposit("dev", 1e6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := p.LaunchCampaign(iip.CampaignSpec{
			Developer:     "dev",
			AppPackage:    fmt.Sprintf("com.adv.app%03d", i),
			Description:   "Install and Launch",
			Type:          offers.NoActivity,
			UserPayoutUSD: 0.06,
			Target:        100,
			Window:        dates.Range{Start: dates.StudyStart, End: dates.StudyEnd},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rates := map[string]float64{}
	for _, a := range affiliates {
		rates[a.Package] = a.PointsPerUSD
	}
	srv := httptest.NewServer(iip.NewServer(p, rates).Handler())
	t.Cleanup(srv.Close)
	return p, srv
}

func TestTabLoadScrollsAllPages(t *testing.T) {
	apps := StandardAffiliates()
	cashpirate := apps[4]
	// 27 offers -> 3 pages (10+10+7).
	_, srv := newPlatformWithOffers(t, 27, apps)
	tabs := cashpirate.Tabs()
	var fyberTab *Tab
	for i := range tabs {
		if tabs[i].IIP == iip.Fyber {
			fyberTab = &tabs[i]
		}
	}
	if fyberTab == nil {
		t.Fatal("cashpirate must have a Fyber tab")
	}
	got, err := fyberTab.Load(FetchOptions{
		BaseURL: srv.URL,
		Country: "USA",
		Day:     dates.StudyStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 27 {
		t.Fatalf("loaded %d offers, want 27", len(got))
	}
	// No duplicates across pages.
	seen := map[string]bool{}
	for _, o := range got {
		if seen[o.OfferID] {
			t.Fatalf("duplicate offer %s across pages", o.OfferID)
		}
		seen[o.OfferID] = true
	}
	// Points reflect cashpirate's point system: 0.06 * 950 = 57.
	if got[0].Points != 57 {
		t.Errorf("points = %d, want 57", got[0].Points)
	}
}

func TestTabLoadMaxPages(t *testing.T) {
	apps := StandardAffiliates()
	cashpirate := apps[4]
	_, srv := newPlatformWithOffers(t, 27, apps)
	tab := cashpirate.Tabs()[0] // Fyber tab
	got, err := tab.Load(FetchOptions{
		BaseURL:  srv.URL,
		Country:  "USA",
		Day:      dates.StudyStart,
		MaxPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("MaxPages=1 loaded %d offers, want 10", len(got))
	}
}

func TestTabLoadUnknownAffiliate(t *testing.T) {
	apps := StandardAffiliates()
	_, srv := newPlatformWithOffers(t, 3, apps)
	stranger := &App{Package: "not.signed.up", PointsPerUSD: 100, IIPs: []string{iip.Fyber}}
	_, err := stranger.Tabs()[0].Load(FetchOptions{BaseURL: srv.URL, Country: "USA", Day: dates.StudyStart})
	if err == nil {
		t.Error("unregistered affiliate should be rejected by the wall")
	}
}

func TestTabLoadConnectionError(t *testing.T) {
	a := StandardAffiliates()[0]
	_, err := a.Tabs()[0].Load(FetchOptions{BaseURL: "http://127.0.0.1:1", Country: "USA"})
	if err == nil {
		t.Error("unreachable wall should error")
	}
}

func TestTabsOrder(t *testing.T) {
	a := StandardAffiliates()[0]
	tabs := a.Tabs()
	if len(tabs) != len(a.IIPs) {
		t.Fatalf("tabs = %d, want %d", len(tabs), len(a.IIPs))
	}
	for i, tab := range tabs {
		if tab.IIP != a.IIPs[i] {
			t.Errorf("tab %d = %s, want %s", i, tab.IIP, a.IIPs[i])
		}
	}
}
