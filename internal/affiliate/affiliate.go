// Package affiliate models the affiliate apps that distribute IIP offers
// to end users: the eight instrumented apps of the paper's Table 2, their
// reward-point systems, their offer-wall SDK integrations, and the tabbed
// UI surface that the monitoring pipeline's UI fuzzer drives.
package affiliate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/dates"
	"repro/internal/iip"
)

// App is an affiliate app. Users browse its offer-wall tabs, complete
// offers, and redeem accumulated points for gift cards; the redemption
// rate (PointsPerUSD) differs across apps, which is why the study has to
// normalize payouts.
type App struct {
	Package      string
	Title        string
	InstallsBin  int64 // public Play Store popularity, e.g. 10_000_000
	PointsPerUSD float64
	// IIPs lists the offer-wall networks integrated by this app, one UI
	// tab each (Table 2's checkmark matrix).
	IIPs []string
}

// IntegratesIIP reports whether the app carries the named network's wall.
func (a *App) IntegratesIIP(name string) bool {
	for _, n := range a.IIPs {
		if n == name {
			return true
		}
	}
	return false
}

// StandardAffiliates returns the eight affiliate apps the paper
// instruments (Table 2), with their offer-wall integration matrix.
func StandardAffiliates() []*App {
	return []*App{
		{
			Package: "com.mobvantage.cashforapps", Title: "Cash For Apps",
			InstallsBin: 10_000_000, PointsPerUSD: 1000,
			IIPs: []string{iip.Fyber, iip.AdGem, iip.HangMyAds, iip.AyetStudios},
		},
		{
			Package: "proxima.makemoney.android", Title: "Make Money - Free Cash",
			InstallsBin: 5_000_000, PointsPerUSD: 500,
			IIPs: []string{iip.Fyber, iip.AdscendMedia},
		},
		{
			Package: "proxima.moneyapp.android", Title: "Money App - Cash Rewards",
			InstallsBin: 1_000_000, PointsPerUSD: 2000,
			IIPs: []string{iip.Fyber},
		},
		{
			Package: "com.bigcash.app", Title: "BigCash - Earn Money",
			InstallsBin: 1_000_000, PointsPerUSD: 100,
			IIPs: []string{iip.AdscendMedia, iip.OfferToro},
		},
		{
			Package: "com.ayet.cashpirate", Title: "CashPirate - Earn Money",
			InstallsBin: 1_000_000, PointsPerUSD: 950,
			IIPs: []string{iip.Fyber, iip.AyetStudios},
		},
		{
			Package: "eu.makemoney", Title: "Make Money & Earn Cash",
			InstallsBin: 1_000_000, PointsPerUSD: 250,
			IIPs: []string{iip.AdscendMedia, iip.RankApp},
		},
		{
			Package: "com.growrich.makemoney", Title: "GrowRich Make Money",
			InstallsBin: 1_000_000, PointsPerUSD: 800,
			IIPs: []string{iip.AdscendMedia, iip.RankApp},
		},
		{
			Package: "make.money.easy", Title: "Make Money Easy Rewards",
			InstallsBin: 100_000, PointsPerUSD: 400,
			IIPs: []string{iip.Fyber, iip.AdscendMedia, iip.AyetStudios},
		},
	}
}

// GCashApp is the RankApp-ecosystem affiliate app observed on workers'
// devices in Section 3 (not instrumented, but present in the device
// population).
const GCashApp = "eu.gcashapp"

// Tab is one offer-wall tab in the affiliate app's UI.
type Tab struct {
	IIP string
	app *App
}

// Tabs enumerates the app's offer-wall tabs in integration order.
func (a *App) Tabs() []Tab {
	out := make([]Tab, len(a.IIPs))
	for i, name := range a.IIPs {
		out[i] = Tab{IIP: name, app: a}
	}
	return out
}

// wallPageSize is how many offers the UI renders per scroll position.
const wallPageSize = 10

// FetchOptions parameterize a wall load.
type FetchOptions struct {
	// BaseURL of the tab's IIP offer-wall server.
	BaseURL string
	// Country the device appears to be in (VPN exit).
	Country string
	// Day is the simulated date stamped on the request.
	Day dates.Date
	// Client issues the requests; the monitor injects a proxy-configured
	// client here. A nil Client uses http.DefaultClient.
	Client *http.Client
	// MaxPages bounds scrolling; 0 means scroll until the wall is
	// exhausted.
	MaxPages int
}

// Load opens the tab and scrolls through the wall, fetching pages until no
// more offers arrive — exactly the stimulus the paper's Appium fuzzer
// generates ("it scrolls through the offer wall to make sure that all the
// offers are loaded"). It returns the offers in wall order.
func (t Tab) Load(opts FetchOptions) ([]iip.WireOffer, error) {
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	var all []iip.WireOffer
	for page := 0; ; page++ {
		if opts.MaxPages > 0 && page >= opts.MaxPages {
			break
		}
		u := fmt.Sprintf("%s/offerwall?affiliate=%s&country=%s&day=%d&offset=%d&limit=%d",
			opts.BaseURL,
			url.QueryEscape(t.app.Package),
			url.QueryEscape(opts.Country),
			int(opts.Day),
			page*wallPageSize,
			wallPageSize,
		)
		resp, err := client.Get(u)
		if err != nil {
			return all, fmt.Errorf("affiliate: wall fetch %s/%s: %w", t.app.Package, t.IIP, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return all, fmt.Errorf("affiliate: wall fetch %s/%s: status %d", t.app.Package, t.IIP, resp.StatusCode)
		}
		var wall iip.WallResponse
		err = json.NewDecoder(resp.Body).Decode(&wall)
		resp.Body.Close()
		if err != nil {
			return all, fmt.Errorf("affiliate: wall decode %s/%s: %w", t.app.Package, t.IIP, err)
		}
		all = append(all, wall.Offers...)
		if len(wall.Offers) < wallPageSize {
			break
		}
	}
	return all, nil
}

// PointsToUSD converts this app's reward points to dollars.
func (a *App) PointsToUSD(points int64) float64 {
	if a.PointsPerUSD <= 0 {
		return 0
	}
	return float64(points) / a.PointsPerUSD
}
