package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CrashExitCode is the status a process dies with when a crash point
// fires, distinguishing planned chaos kills from real failures in the
// restart loops that drive them.
const CrashExitCode = 3

// CrashPlan schedules process kills at named execution points: the plan
// "cell-day=29" makes the 29th Hit("cell-day") call terminate the
// process. Worker binaries plant Hit calls at their interesting points
// (lease acquired, day boundary inside a cell, completion about to be
// reported) and a chaos harness restarts them until the work drains.
type CrashPlan struct {
	mu     sync.Mutex
	counts map[string]int
	exit   func(point string)
}

// ParseCrashPlan builds a plan from a comma-separated "point=N" spec.
// N is the 1-based hit that fires; N <= 0 is rejected.
func ParseCrashPlan(spec string) (*CrashPlan, error) {
	p := &CrashPlan{counts: map[string]int{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, countStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: crash plan %q: want point=N", part)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("fault: crash plan %q: bad hit count", part)
		}
		p.counts[point] = n
	}
	return p, nil
}

// String renders the remaining plan (for logging).
func (p *CrashPlan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, 0, len(p.counts))
	for point, n := range p.counts {
		parts = append(parts, fmt.Sprintf("%s=%d", point, n))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// SetExit overrides the process-terminating hook (tests substitute a
// panic or a flag). The default is os.Exit(CrashExitCode).
func (p *CrashPlan) SetExit(fn func(point string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exit = fn
}

// Hit records one pass through the named point, terminating the process
// when the planned hit count is reached. A nil plan is a no-op, so
// instrumented code needs no guards.
func (p *CrashPlan) Hit(point string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	n, ok := p.counts[point]
	if !ok {
		p.mu.Unlock()
		return
	}
	n--
	p.counts[point] = n
	fire := n <= 0
	if fire {
		delete(p.counts, point) // one kill per planned point
	}
	exit := p.exit
	p.mu.Unlock()
	if !fire {
		return
	}
	if exit != nil {
		exit(point)
		return
	}
	fmt.Fprintf(os.Stderr, "fault: crash point %s fired\n", point)
	os.Exit(CrashExitCode)
}

// Crash is the process-wide plan worker binaries arm from their -crash
// flag (or the FAULT_CRASH environment variable). Nil until armed;
// Hit on the nil plan is free.
var Crash *CrashPlan

// ArmCrashFromEnv arms the process-wide plan from FAULT_CRASH when the
// variable is set and no plan is armed yet.
func ArmCrashFromEnv() error {
	if Crash != nil {
		return nil
	}
	spec := os.Getenv("FAULT_CRASH")
	if spec == "" {
		return nil
	}
	p, err := ParseCrashPlan(spec)
	if err != nil {
		return err
	}
	Crash = p
	return nil
}
