package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriterTornWrites: injected write failures must persist a strict
// prefix (the torn tail a crash leaves) and surface ErrInjected; the
// same seed must tear at the same operations with the same lengths.
func TestWriterTornWrites(t *testing.T) {
	run := func(seed uint64) (faults int, outs []int) {
		in := New(Config{Seed: seed, WriteErrorProb: 0.3, TornWrites: true})
		var buf bytes.Buffer
		w := in.Writer(&buf)
		for i := 0; i < 200; i++ {
			before := buf.Len()
			n, err := w.Write([]byte("0123456789abcdef"))
			wrote := buf.Len() - before
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("write %d: unexpected error %v", i, err)
				}
				if n != wrote || n >= 16 {
					t.Fatalf("write %d: torn write persisted %d reported %d", i, wrote, n)
				}
				faults++
			} else if n != 16 || wrote != 16 {
				t.Fatalf("write %d: clean write persisted %d reported %d", i, wrote, n)
			}
			outs = append(outs, wrote)
		}
		if got := int(in.Injected()); got != faults {
			t.Fatalf("Injected()=%d, observed %d", got, faults)
		}
		return faults, outs
	}
	f1, o1 := run(7)
	f2, o2 := run(7)
	if f1 == 0 {
		t.Fatal("no faults fired at p=0.3 over 200 writes")
	}
	if f1 != f2 {
		t.Fatalf("same seed, different fault counts: %d vs %d", f1, f2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different tear at write %d: %d vs %d", i, o1[i], o2[i])
		}
	}
}

// TestWriterDiskBudget: the ENOSPC injector persists exactly the prefix
// that fit the budget, fails that write and every later one with
// ErrDiskFull — and the error must NOT read as an injected crash
// (ErrInjected), because a full disk is an environment failure the
// caller retries elsewhere, not a planned process death.
func TestWriterDiskBudget(t *testing.T) {
	in := New(Config{DiskBudget: 25})
	var buf bytes.Buffer
	w := in.Writer(&buf)

	if n, err := w.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// 5 bytes remain: the 10-byte write persists a 5-byte prefix and fails.
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over budget: n=%d err=%v, want 5-byte prefix + ErrDiskFull", n, err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatal("ErrDiskFull must not wrap ErrInjected: ENOSPC is not a simulated crash")
	}
	if buf.Len() != 25 {
		t.Fatalf("persisted %d bytes, want the full 25-byte budget", buf.Len())
	}
	// The disk stays full: later writes persist nothing.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("post-ENOSPC write: n=%d err=%v", n, err)
	}
	if buf.Len() != 25 {
		t.Fatalf("post-ENOSPC write leaked %d byte(s) past the budget", buf.Len()-25)
	}
	// One budget is shared across all of the injector's writers, like
	// spool files sharing one filesystem.
	var other bytes.Buffer
	if n, err := in.Writer(&other).Write([]byte("y")); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("sibling writer after ENOSPC: n=%d err=%v", n, err)
	}
	if in.Injected() == 0 {
		t.Fatal("budget exhaustion not counted by Injected()")
	}
}

// TestNilInjectorPassThrough: a nil injector must wrap nothing.
func TestNilInjectorPassThrough(t *testing.T) {
	var in *Injector
	var buf bytes.Buffer
	if w := in.Writer(&buf); w != io.Writer(&buf) {
		t.Fatal("nil injector wrapped the writer")
	}
	r := strings.NewReader("x")
	if got := in.Reader(r); got != io.Reader(r) {
		t.Fatal("nil injector wrapped the reader")
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector reports injections")
	}
}

// TestReaderInjection: read faults fire and pass-through reads work.
func TestReaderInjection(t *testing.T) {
	in := New(Config{Seed: 3, ReadErrorProb: 0.5})
	var okReads, faults int
	for i := 0; i < 100; i++ {
		r := in.Reader(strings.NewReader("hello"))
		buf := make([]byte, 5)
		_, err := r.Read(buf)
		switch {
		case err == nil:
			okReads++
		case errors.Is(err, ErrInjected):
			faults++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if okReads == 0 || faults == 0 {
		t.Fatalf("want a mix of clean and injected reads, got ok=%d faults=%d", okReads, faults)
	}
}

// TestRoundTripperInjection: dropped requests surface ErrInjected; the
// rest reach the server.
func TestRoundTripperInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	in := New(Config{Seed: 11, RequestErrorProb: 0.5})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	var okReqs, faults int
	for i := 0; i < 60; i++ {
		resp, err := client.Get(srv.URL)
		switch {
		case err == nil:
			resp.Body.Close()
			okReqs++
		case errors.Is(err, ErrInjected):
			faults++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if okReqs == 0 || faults == 0 {
		t.Fatalf("want a mix, got ok=%d faults=%d", okReqs, faults)
	}
}

// TestCrashPlan: the Nth hit fires exactly once, other points never do.
func TestCrashPlan(t *testing.T) {
	p, err := ParseCrashPlan("cell-day=3, worker-lease=1")
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	p.SetExit(func(point string) { fired = append(fired, point) })
	p.Hit("unplanned")
	p.Hit("cell-day")
	p.Hit("cell-day")
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	p.Hit("cell-day")
	p.Hit("cell-day") // consumed: fires once
	p.Hit("worker-lease")
	if len(fired) != 2 || fired[0] != "cell-day" || fired[1] != "worker-lease" {
		t.Fatalf("fired = %v", fired)
	}
	if _, err := ParseCrashPlan("bad"); err == nil {
		t.Fatal("plan without = accepted")
	}
	if _, err := ParseCrashPlan("p=0"); err == nil {
		t.Fatal("zero hit count accepted")
	}
	var nilPlan *CrashPlan
	nilPlan.Hit("anything") // must not panic
}
