// Package fault is the injectable failure layer the chaos tests drive:
// deterministic, seed-reproducible wrappers that make an io.Writer tear
// mid-buffer, an io.Reader error, or an http.RoundTripper drop and delay
// requests — plus process-level crash points a worker binary plants on
// its own execution path. The repo's determinism contract makes failure
// cheap to test: every work item is idempotent and content-verifiable, so
// the only interesting question is whether the recovery machinery
// (lease reissue, checkpoint resume, torn-tail salvage) restores the
// exact bytes a fault-free run would have produced. This package supplies
// the faults; internal/sweep and internal/stream supply the recovery.
package fault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/randx"
)

// ErrInjected marks every failure this package manufactures, so callers
// can tell chaos from genuine I/O errors (errors.Is). A worker treating
// ErrInjected as a simulated crash abandons its lease instead of
// reporting a failure — exactly what a killed process would do.
var ErrInjected = errors.New("fault: injected failure")

// ErrDiskFull is the injected ENOSPC: the disk budget ran out mid-write.
// It deliberately does NOT wrap ErrInjected — a full disk is an
// environment failure the caller should surface as a transient cell
// failure (retry on another host), not a simulated process death.
var ErrDiskFull = errors.New("fault: injected disk full (ENOSPC)")

// Config selects which faults an Injector produces and how often. All
// probabilities are per-operation; zero values inject nothing, so an
// empty Config is a transparent pass-through.
type Config struct {
	// Seed drives the injector's own randx stream: the same seed over the
	// same operation sequence reproduces the same faults.
	Seed uint64

	// WriteErrorProb is the per-Write probability of failing the call.
	// With TornWrites, a random prefix of the buffer reaches the
	// underlying writer first — the partial frame a crash mid-write
	// leaves on disk.
	WriteErrorProb float64
	TornWrites     bool

	// ReadErrorProb is the per-Read probability of failing the call.
	ReadErrorProb float64

	// RequestErrorProb is the per-request probability that the wrapped
	// RoundTripper fails (connection reset / partition).
	RequestErrorProb float64

	// LatencyProb delays an operation by up to MaxLatency before it runs
	// (slow disk, slow network). Applies to writes and requests.
	LatencyProb float64
	MaxLatency  time.Duration

	// DiskBudget caps the total bytes all of this injector's wrapped
	// writers may write before every further Write fails with ErrDiskFull
	// (0 = unlimited). Like a real ENOSPC, the write that crosses the
	// budget persists a prefix — whatever fit — and fails, so recovery
	// code faces a half-written tail, not a clean boundary.
	DiskBudget int64
}

// Injector manufactures faults deterministically from its seed. It is
// safe for concurrent use; concurrency makes the draw order (and thus
// which operation a fault lands on) scheduling-dependent, but every
// single-goroutine pipeline — e.g. one cell's run-log writes — sees a
// reproducible fault sequence.
type Injector struct {
	mu  sync.Mutex
	r   *randx.Rand
	cfg Config

	injected int64 // faults fired so far
	written  int64 // bytes written against DiskBudget
}

// New returns an injector for cfg. A nil *Injector is valid everywhere
// and injects nothing.
func New(cfg Config) *Injector {
	return &Injector{r: randx.New(cfg.Seed), cfg: cfg}
}

// Injected reports how many faults have fired, letting tests assert the
// chaos actually happened.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// draw runs one fault decision under the lock: whether prob fires, and a
// latency to sleep (0 = none). The latency is returned rather than slept
// under the lock so concurrent users do not serialize on a slow fault.
func (in *Injector) draw(prob float64) (fire bool, delay time.Duration, frac float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.LatencyProb > 0 && in.r.Bool(in.cfg.LatencyProb) {
		delay = time.Duration(in.r.Float64() * float64(in.cfg.MaxLatency))
	}
	if prob > 0 && in.r.Bool(prob) {
		fire = true
		frac = in.r.Float64()
		in.injected++
	}
	return fire, delay, frac
}

// Writer wraps w with write-fault injection. When the injector is nil or
// injects no write faults, w is returned unwrapped.
func (in *Injector) Writer(w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, w: w}
}

type faultWriter struct {
	in *Injector
	w  io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	fire, delay, frac := fw.in.draw(fw.in.cfg.WriteErrorProb)
	if delay > 0 {
		time.Sleep(delay)
	}
	if allow, short := fw.in.budget(len(p)); short {
		// ENOSPC: persist the prefix that fit, then fail — and keep
		// failing on every later write, like a genuinely full disk.
		n := 0
		if allow > 0 {
			n, _ = fw.w.Write(p[:allow])
		}
		return n, fmt.Errorf("write of %d bytes stopped at %d: %w", len(p), n, ErrDiskFull)
	}
	if !fire {
		return fw.w.Write(p)
	}
	n := 0
	if fw.in.cfg.TornWrites && len(p) > 0 {
		// A crash mid-write persists a prefix of the buffer: the torn
		// tail stream.Recover exists to salvage.
		n, _ = fw.w.Write(p[:int(frac*float64(len(p)))])
	}
	return n, fmt.Errorf("write of %d bytes torn at %d: %w", len(p), n, ErrInjected)
}

// budget charges n bytes against the disk budget: allow is how many of
// them may still be written, short reports that the budget ran out (the
// ENOSPC fires). With no budget configured every write is allowed.
func (in *Injector) budget(n int) (allow int, short bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DiskBudget <= 0 {
		return n, false
	}
	remaining := in.cfg.DiskBudget - in.written
	if remaining >= int64(n) {
		in.written += int64(n)
		return n, false
	}
	if remaining < 0 {
		remaining = 0
	}
	in.written = in.cfg.DiskBudget
	in.injected++
	return int(remaining), true
}

// Reader wraps r with read-fault injection.
func (in *Injector) Reader(r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	return &faultReader{in: in, r: r}
}

type faultReader struct {
	in *Injector
	r  io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	fire, delay, _ := fr.in.draw(fr.in.cfg.ReadErrorProb)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fire {
		return 0, fmt.Errorf("read of %d bytes: %w", len(p), ErrInjected)
	}
	return fr.r.Read(p)
}

// RoundTripper wraps rt with request-fault injection: dropped requests
// (the injected error surfaces as a transport failure the sweep client
// retries with backoff) and added latency. A nil rt wraps
// http.DefaultTransport.
func (in *Injector) RoundTripper(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	if in == nil {
		return rt
	}
	return &faultTransport{in: in, rt: rt}
}

type faultTransport struct {
	in *Injector
	rt http.RoundTripper
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	fire, delay, _ := ft.in.draw(ft.in.cfg.RequestErrorProb)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fire {
		return nil, fmt.Errorf("%s %s dropped: %w", req.Method, req.URL.Path, ErrInjected)
	}
	return ft.rt.RoundTrip(req)
}
