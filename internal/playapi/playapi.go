// Package playapi is the HTTP facade over the simulated Play Store: the
// crawl surface the paper's measurement infrastructure scrapes. It serves
// app profile pages, top charts, the catalog index, and APK downloads for
// static analysis, all as JSON/binary over real sockets.
package playapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/apk"
	"repro/internal/dates"
	"repro/internal/playstore"
)

// ProfileDoc is the JSON document of an app's store listing.
type ProfileDoc struct {
	Package       string `json:"package"`
	Title         string `json:"title"`
	Genre         string `json:"genre"`
	ReleasedDay   int    `json:"released_day"`
	InstallBin    int64  `json:"install_bin"`
	InstallLabel  string `json:"install_label"`
	DeveloperID   string `json:"developer_id"`
	DeveloperName string `json:"developer_name"`
	Country       string `json:"country"`
	Website       string `json:"website"`
	Email         string `json:"email"`
}

// ChartDoc is the JSON document of one chart on one day.
type ChartDoc struct {
	Chart   string       `json:"chart"`
	Day     int          `json:"day"`
	Entries []ChartEntry `json:"entries"`
}

// ChartEntry mirrors playstore.ChartEntry on the wire.
type ChartEntry struct {
	Rank    int    `json:"rank"`
	Package string `json:"package"`
}

// CatalogDoc lists package names.
type CatalogDoc struct {
	Total    int      `json:"total"`
	Packages []string `json:"packages"`
}

// Server exposes the store over HTTP.
type Server struct {
	store *playstore.Store
	apks  map[string]apk.APK
}

// New wraps a store; apks may be nil when APK downloads are not needed.
func New(store *playstore.Store, apks map[string]apk.APK) *Server {
	return &Server{store: store, apks: apks}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps/{pkg}", s.handleProfile)
	mux.HandleFunc("GET /charts/{name}", s.handleChart)
	mux.HandleFunc("GET /catalog", s.handleCatalog)
	mux.HandleFunc("GET /apks/{pkg}", s.handleAPK)
	return mux
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p, err := s.store.Profile(r.PathValue("pkg"))
	if err != nil {
		if errors.Is(err, playstore.ErrUnknownApp) {
			http.Error(w, "unknown app", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, ProfileDoc{
		Package:       p.Package,
		Title:         p.Title,
		Genre:         p.Genre,
		ReleasedDay:   int(p.Released),
		InstallBin:    p.InstallBin,
		InstallLabel:  p.InstallLabel,
		DeveloperID:   string(p.DeveloperID),
		DeveloperName: p.DeveloperName,
		Country:       p.Country,
		Website:       p.Website,
		Email:         p.Email,
	})
}

func (s *Server) handleChart(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	known := false
	for _, n := range playstore.ChartNames {
		if n == name {
			known = true
		}
	}
	if !known {
		http.Error(w, "unknown chart", http.StatusNotFound)
		return
	}
	var entries []playstore.ChartEntry
	dayParam := r.URL.Query().Get("day")
	day := int(s.store.Today())
	if dayParam == "" {
		entries = s.store.Chart(name)
	} else {
		n, err := strconv.Atoi(dayParam)
		if err != nil {
			http.Error(w, "bad day", http.StatusBadRequest)
			return
		}
		day = n
		entries = s.store.ChartOn(name, dates.Date(n))
	}
	doc := ChartDoc{Chart: name, Day: day, Entries: make([]ChartEntry, 0, len(entries))}
	for _, e := range entries {
		doc.Entries = append(doc.Entries, ChartEntry{Rank: e.Rank, Package: e.Package})
	}
	writeJSON(w, doc)
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	pkgs := s.store.Packages()
	writeJSON(w, CatalogDoc{Total: len(pkgs), Packages: pkgs})
}

func (s *Server) handleAPK(w http.ResponseWriter, r *http.Request) {
	a, ok := s.apks[r.PathValue("pkg")]
	if !ok {
		http.Error(w, "no apk", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(apk.Encode(a))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
