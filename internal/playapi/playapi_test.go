package playapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/apk"
	"repro/internal/dates"
	"repro/internal/playstore"
	"repro/internal/randx"
)

func newServer(t *testing.T) (*playstore.Store, *httptest.Server) {
	t.Helper()
	store := playstore.New(dates.StudyStart)
	store.AddDeveloper(playstore.Developer{ID: "d1", Name: "Acme", Country: "USA", Website: "https://acme.com"})
	if err := store.Publish(playstore.Listing{
		Package: "com.acme.memo", Title: "Voice Memos", Genre: "Tools",
		Developer: "d1", Released: dates.StudyStart.AddDays(-30),
	}); err != nil {
		t.Fatal(err)
	}
	store.SeedInstalls("com.acme.memo", 1234)
	store.RecordInstall("com.acme.memo", playstore.Install{Day: dates.StudyStart})
	store.StepDay(dates.StudyStart)

	a, err := apk.Build(randx.New(1), "com.acme.memo", []string{"Google AdMob"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(store, map[string]apk.APK{"com.acme.memo": a}).Handler())
	t.Cleanup(srv.Close)
	return store, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestProfileEndpoint(t *testing.T) {
	_, srv := newServer(t)
	var doc ProfileDoc
	if code := getJSON(t, srv.URL+"/apps/com.acme.memo", &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Package != "com.acme.memo" || doc.DeveloperName != "Acme" {
		t.Errorf("profile = %+v", doc)
	}
	// 1234+1 installs -> "1,000+" bin.
	if doc.InstallBin != 1000 || doc.InstallLabel != "1,000+" {
		t.Errorf("bin = %d label = %q", doc.InstallBin, doc.InstallLabel)
	}
	if doc.ReleasedDay != int(dates.StudyStart.AddDays(-30)) {
		t.Errorf("released = %d", doc.ReleasedDay)
	}
}

func TestProfileNotFound(t *testing.T) {
	_, srv := newServer(t)
	var doc ProfileDoc
	if code := getJSON(t, srv.URL+"/apps/no.such.app", &doc); code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", code)
	}
}

func TestChartEndpoint(t *testing.T) {
	_, srv := newServer(t)
	var doc ChartDoc
	if code := getJSON(t, srv.URL+"/charts/top-free", &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(doc.Entries) != 1 || doc.Entries[0].Package != "com.acme.memo" {
		t.Errorf("chart = %+v", doc)
	}
	// Historical day query.
	var hist ChartDoc
	url := srv.URL + "/charts/top-free?day=" + strconv.Itoa(int(dates.StudyStart))
	if code := getJSON(t, url, &hist); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(hist.Entries) != 1 {
		t.Errorf("historical chart = %+v", hist)
	}
	// A day with no computed chart is empty, not an error.
	var empty ChartDoc
	if code := getJSON(t, srv.URL+"/charts/top-free?day=99999", &empty); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(empty.Entries) != 0 {
		t.Error("expected empty entries for uncomputed day")
	}
}

func TestChartErrors(t *testing.T) {
	_, srv := newServer(t)
	var doc ChartDoc
	if code := getJSON(t, srv.URL+"/charts/top-secret", &doc); code != http.StatusNotFound {
		t.Errorf("unknown chart status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/charts/top-free?day=abc", &doc); code != http.StatusBadRequest {
		t.Errorf("bad day status = %d", code)
	}
}

func TestCatalogEndpoint(t *testing.T) {
	_, srv := newServer(t)
	var doc CatalogDoc
	if code := getJSON(t, srv.URL+"/catalog", &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Total != 1 || len(doc.Packages) != 1 {
		t.Errorf("catalog = %+v", doc)
	}
}

func TestAPKDownload(t *testing.T) {
	_, srv := newServer(t)
	resp, err := http.Get(srv.URL + "/apks/com.acme.memo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	a, err := apk.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if a.Package != "com.acme.memo" {
		t.Errorf("apk package = %s", a.Package)
	}
	if apk.CountAdLibraries(a) != 1 {
		t.Errorf("ad libs = %d, want 1", apk.CountAdLibraries(a))
	}
	// Missing APK.
	resp2, err := http.Get(srv.URL + "/apks/none")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing apk status = %d", resp2.StatusCode)
	}
}
