package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/scenario"
	"repro/internal/stream"
)

// engine executes the day loop over a bounded worker pool while keeping
// the run bit-for-bit deterministic in the world's seed.
//
// The determinism model has three rules:
//
//  1. Randomness is owned, never shared. Every organic app and every
//     campaign carries its own randx.Derive stream keyed by a stable name
//     ("engine/<pkg>", "engine/campaign/<offerID>"), so the values a unit
//     draws do not depend on which worker runs it or when.
//
//  2. Writes are partitioned. Organic work units are single apps;
//     campaign work units are whole developer groups. A developer owns
//     all of their apps' store rows and their platform balance, so every
//     mutable float is only ever touched from one goroutine per phase —
//     no cross-unit accumulation whose order could vary.
//
//  3. Cross-cutting effects are buffered and flushed in canonical order.
//     Ledger postings, install-log records, and stat deltas land in
//     per-unit sinks merged sequentially after each phase barrier, so
//     the transaction log and floating-point totals are identical for
//     any worker count.
//
// On top of those rules, every string key the day loop would otherwise
// resolve per event is resolved exactly once here, at construction: app
// rows become playstore.AppHandle values, campaigns become iip
// settlement handles plus mediator click sessions, organic rate maps
// become slices, and ledger account names arrive pre-interned from the
// world build. The inner loops then run on pointers and integers — no
// string hashing, no map growth, and (thanks to the write partition) one
// shard-lock acquisition per (app, day) batch instead of one per event.
type engine struct {
	w       *World
	workers int

	// organic are the phase-1 work units, parallel to the catalog
	// snapshot, each with its stream, store handle, and activity rates
	// pre-resolved.
	organic []organicUnit

	// groups are the campaign work units: all campaigns of one developer,
	// in first-appearance order of w.Campaigns (the canonical flush
	// order), each fully resolved to handles.
	groups [][]*campUnit

	// sinks and deltas are the per-day scratch buffers, allocated once
	// and reset at each day barrier instead of reallocated per day.
	sinks  []unitSink
	deltas []organicDelta

	// logBound caps InstallLog growth estimates: the log can never exceed
	// its length at construction plus every campaign's then-remaining
	// target (each delivery appends exactly one record on either path).
	logBound int

	// log, when non-nil, receives the event-sourced run log. Each organic
	// unit and each campaign group buffers its events in its own encoder
	// during the parallel phases; the barrier concatenates the buffers in
	// canonical unit order, so the log bytes are bit-identical for any
	// worker count (the same argument as the ledger flush).
	log       *stream.Writer
	orgEnc    []stream.Encoder
	sinkEnc   []stream.Encoder
	batchBufs [][]byte // barrier scratch: non-empty unit buffers for EventBatch

	// obs, when non-nil, times the day phases and counts emitted events.
	// It is written only at phase barriers (a handful of clock reads per
	// day) and never read by simulation logic, so attaching it cannot
	// perturb RNG draws, log bytes, or stats.
	obs *Metrics
}

// organicUnit is one phase-1 work unit: an app with its random stream,
// store handle, and organic activity rates resolved at construction.
type organicUnit struct {
	pkg     string
	r       *randx.Rand
	app     playstore.AppHandle
	install float64 // expected organic installs per day
	dau     float64 // expected daily active users
	revenue float64 // expected purchase revenue per day (0 = none)
	pkgRef  uint32  // run-log interned package reference (0 when log off)
}

// campUnit is one campaign with every per-event lookup hoisted to
// construction time: the campaign's random stream, the store handle of the
// advertised app, the platform settlement handle, the mediator click
// session, the worker pool with pre-interned user account names, the
// interned affiliate account names, and the platform's daily pace cap.
type campUnit struct {
	c         *PlannedCampaign
	r         *randx.Rand
	app       playstore.AppHandle
	offer     *iip.CampaignHandle
	session   *mediator.OfferSession
	pool      []*device.Worker
	poolAccts []string // "user:<worker.ID>", parallel to pool
	affAccts  []string // "affiliate:<pkg>" per instrumented affiliate
	noAffAcct string   // fallback when the IIP has no instrumented affiliates
	paceCap   int

	// strat is the unit's adversary strategy (scenario layer): it decides
	// the day's quota within paceCap, which pool workers fulfil it, the
	// device identity each presents to the store, and any faked retention
	// sessions. The baseline strategy consumes u.r exactly as the
	// pre-scenario engine did.
	strat scenario.Strategy

	// Ledger account names interned once per campaign; the delivery hot
	// path posts four transfers per completion and never rebuilds them.
	devAcct  string // "dev:<developer>"
	iipAcct  string // "iip:<platform>"
	poolAcct string // "user:pool-<platform>", the batch payout account

	// devRefs are the run log's pre-resolved device references, parallel
	// to pool (nil when event logging is disabled). Resolving once at
	// enableLog keeps the delivery hot path free of per-event map lookups.
	devRefs []uint32

	// Run-log interned string references, resolved once at enableLog (all
	// zero when event logging is disabled): the advertised package, the
	// offer ID, the four settlement accounts, and the per-worker payout
	// accounts / per-affiliate accounts parallel to poolAccts / affAccts.
	pkgRef      uint32
	offerRef    uint32
	devAcctRef  uint32
	iipAcctRef  uint32
	poolAcctRef uint32
	noAffRef    uint32
	affRefs     []uint32
	userRefs    []uint32
}

// pickAffiliateAccount selects the interned ledger account of the
// affiliate app credited with a completion, plus its run-log string
// reference. IIPs without instrumented affiliates settle through their
// (unobserved) own-network account and consume no randomness, exactly
// like the string-building path it replaces.
func (u *campUnit) pickAffiliateAccount(r *randx.Rand) (string, uint32) {
	if len(u.affAccts) == 0 {
		return u.noAffAcct, u.noAffRef
	}
	i := r.IntN(len(u.affAccts))
	var ref uint32
	if u.affRefs != nil {
		ref = u.affRefs[i]
	}
	return u.affAccts[i], ref
}

// userRef returns the run-log string reference of the i-th pool worker's
// payout account (0 when event logging is disabled).
func (u *campUnit) userRef(i int) uint32 {
	if u.userRefs == nil {
		return 0
	}
	return u.userRefs[i]
}

// unitSink collects one campaign unit's side effects for deterministic
// merging at the day barrier.
type unitSink struct {
	txs       mediator.TxBuffer
	log       []InstallRecord
	delivered int64
	certified int64
	// enc buffers the group's run-log events (nil when event logging is
	// disabled — the delivery hot path then skips all encoding); refs is
	// the batch path's device-reference scratch, reused per batch.
	enc  *stream.Encoder
	refs []uint32
}

// organicDelta is one organic unit's stat contribution for a day.
type organicDelta struct {
	installs int64
	revenue  float64
}

// organicMeanFraud is the store-visible fraud score of organic installs:
// real users occasionally trip device-reputation heuristics too. One
// constant shared by the store write and the run-log event keeps live and
// replayed fraudSum accumulation identical by construction.
const organicMeanFraud = 0.05

// newEngine prepares the per-unit streams, handles, and work partition
// for a run. The catalog is snapshotted here: apps published mid-run have
// no organic rates and thus generated no activity under the sequential
// engine either, so the snapshot changes nothing observable while keeping
// the organic fan-out race-free.
func newEngine(w *World) (*engine, error) {
	workers := w.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Wire the same resolved bound into the store's StepDay fan-out, so
	// one knob governs every pool and a Workers=1 run is genuinely
	// serial end to end, even if Cfg.Workers was mutated after NewWorld.
	w.Store.SetStepWorkers(workers)
	w.medAcct = mediator.MediatorAccount(w.Mediator.Name)
	e := &engine{w: w, workers: workers}

	pkgs := w.Store.Packages()
	e.organic = make([]organicUnit, len(pkgs))
	for i, pkg := range pkgs {
		h, err := w.Store.AppHandle(pkg)
		if err != nil {
			return nil, fmt.Errorf("sim: resolving organic app %s: %w", pkg, err)
		}
		e.organic[i] = organicUnit{
			pkg:     pkg,
			r:       randx.Derive(w.Cfg.Seed, "engine/"+pkg),
			app:     h,
			install: w.organicInstall[pkg],
			dau:     w.organicDAU[pkg],
			revenue: w.organicRevenue[pkg],
		}
	}

	// User ledger accounts are interned once per pool (pools are shared
	// by every campaign on the same IIP).
	poolAccts := make(map[string][]string, len(w.Pools))
	for name, pool := range w.Pools {
		accts := make([]string, len(pool))
		for i, wk := range pool {
			accts[i] = mediator.UserAccount(wk.ID)
		}
		poolAccts[name] = accts
	}

	groupOf := map[string]int{}
	for _, c := range w.Campaigns {
		g, ok := groupOf[c.Spec.Developer]
		if !ok {
			g = len(e.groups)
			groupOf[c.Spec.Developer] = g
			e.groups = append(e.groups, nil)
		}
		u, err := e.resolveUnit(c, poolAccts)
		if err != nil {
			return nil, err
		}
		e.groups[g] = append(e.groups[g], u)
		if rem := u.offer.Remaining(); rem > 0 {
			e.logBound += rem
		}
	}
	e.logBound += w.InstallLog.Len()
	e.sinks = make([]unitSink, len(e.groups))
	e.deltas = make([]organicDelta, len(e.organic))
	return e, nil
}

// enableLog attaches the event-sourced run log, allocating the per-unit
// encoders the parallel phases buffer into. With no log attached the hot
// paths skip event encoding entirely.
func (e *engine) enableLog(w *stream.Writer) {
	e.log = w
	e.orgEnc = make([]stream.Encoder, len(e.organic))
	for i := range e.organic {
		e.orgEnc[i].SetStringTable(w.StringTable())
		e.orgEnc[i].SetRecordMode(true)
		e.orgEnc[i].Grow(48) // one organic record per day
		e.organic[i].pkgRef = e.orgEnc[i].StringRef(e.organic[i].pkg)
	}
	e.sinkEnc = make([]stream.Encoder, len(e.sinks))
	for g := range e.sinks {
		e.sinkEnc[g].SetDeviceTable(w.DeviceTable())
		e.sinkEnc[g].SetStringTable(w.StringTable())
		e.sinkEnc[g].SetRecordMode(true)
		e.sinkEnc[g].Grow(4 << 10)
		e.sinks[g].enc = &e.sinkEnc[g]
	}
	e.batchBufs = make([][]byte, 0, len(e.orgEnc)+len(e.sinkEnc))
	// Pre-resolve every pool member's device reference and payout-account
	// string reference once per pool (pools are shared per IIP, so cache
	// by IIP via the first campaign that carries them), plus each unit's
	// package, offer, and settlement-account references — the delivery hot
	// path then performs no map lookups at all.
	enc := &e.sinkEnc[0]
	devsByIIP := map[string][]uint32{}
	usersByIIP := map[string][]uint32{}
	for _, g := range e.groups {
		for _, u := range g {
			devs, ok := devsByIIP[u.c.IIP]
			if !ok {
				devs = make([]uint32, len(u.pool))
				users := make([]uint32, len(u.pool))
				for i, wk := range u.pool {
					devs[i] = enc.DeviceRef(wk.ID)
					users[i] = enc.StringRef(u.poolAccts[i])
				}
				devsByIIP[u.c.IIP] = devs
				usersByIIP[u.c.IIP] = users
			}
			u.devRefs = devs
			u.userRefs = usersByIIP[u.c.IIP]
			u.pkgRef = enc.StringRef(u.c.App)
			u.offerRef = enc.StringRef(u.c.OfferID)
			u.devAcctRef = enc.StringRef(u.devAcct)
			u.iipAcctRef = enc.StringRef(u.iipAcct)
			u.poolAcctRef = enc.StringRef(u.poolAcct)
			u.noAffRef = enc.StringRef(u.noAffAcct)
			u.affRefs = make([]uint32, len(u.affAccts))
			for i, acct := range u.affAccts {
				u.affRefs[i] = enc.StringRef(acct)
			}
		}
	}
}

// resolveUnit turns one planned campaign into a fully resolved work unit.
func (e *engine) resolveUnit(c *PlannedCampaign, poolAccts map[string][]string) (*campUnit, error) {
	w := e.w
	platform := w.Platforms[c.IIP]
	if platform == nil {
		return nil, fmt.Errorf("sim: campaign %s on unknown platform %s", c.OfferID, c.IIP)
	}
	offer, err := platform.CampaignHandle(c.OfferID)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	session, err := w.Mediator.Session(c.OfferID)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	app, err := w.Store.AppHandle(c.App)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	// Affiliate accounts come from the world's per-IIP cache when present
	// (the standard platforms); any other platform name is resolved here,
	// so hand-assembled worlds never post to empty account names.
	affAccts, ok := w.affAcctByIIP[c.IIP]
	if !ok {
		for _, a := range w.AffiliatesForIIP(c.IIP) {
			affAccts = append(affAccts, mediator.AffiliateAccount(a.Package))
		}
	}
	noAffAcct := w.noAffAcctByIIP[c.IIP]
	if noAffAcct == "" {
		noAffAcct = mediator.AffiliateAccount("uninstrumented." + c.IIP)
	}
	strat, err := scenario.NewStrategy(w.Cfg.Adversary, w.Cfg.Seed, c.OfferID)
	if err != nil {
		return nil, fmt.Errorf("sim: campaign %s: %w", c.OfferID, err)
	}
	return &campUnit{
		c:         c,
		r:         randx.Derive(w.Cfg.Seed, "engine/campaign/"+c.OfferID),
		app:       app,
		offer:     offer,
		session:   session,
		pool:      w.Pools[c.IIP],
		poolAccts: poolAccts[c.IIP],
		affAccts:  affAccts,
		noAffAcct: noAffAcct,
		paceCap:   platform.DailyPace(),
		strat:     strat,
		devAcct:   mediator.DeveloperAccount(c.Spec.Developer),
		iipAcct:   mediator.IIPAccount(c.IIP),
		poolAcct:  mediator.UserAccount("pool-" + c.IIP),
	}, nil
}

// checkpoint captures everything a resumed run needs to continue
// byte-identically after the just-completed day: the cumulative stats,
// the log offset, snapshots of the store, ledger, mediator (with session
// click numbering folded in), and every platform, the exact RNG position
// of every work-unit stream, and the install log so far.
func (e *engine) checkpoint(day dates.Date, stats RunStats, logOffset int64) (*stream.Checkpoint, error) {
	w := e.w
	for _, g := range e.groups {
		for _, u := range g {
			u.session.SyncTo(w.Mediator)
		}
	}
	cp := &stream.Checkpoint{
		Day:                  day,
		Days:                 int64(stats.Days),
		OrganicInstalls:      stats.OrganicInstalls,
		IncentivizedInstalls: stats.IncentivizedInstalls,
		CertifiedCompletions: stats.CertifiedCompletions,
		RevenueUSD:           stats.RevenueUSD,
		LogOffset:            logOffset,
		Store:                w.Store.EncodeSnapshot(),
		Ledger:               w.Ledger.EncodeSnapshot(),
		Mediator:             w.Mediator.EncodeSnapshot(),
	}
	names := make([]string, 0, len(w.Platforms))
	for name := range w.Platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cp.Platforms = append(cp.Platforms, stream.NamedBlob{Name: name, Data: w.Platforms[name].EncodeSnapshot()})
	}
	add := func(label string, r *randx.Rand) error {
		state, err := r.MarshalState()
		if err != nil {
			return fmt.Errorf("sim: checkpointing stream %s: %w", label, err)
		}
		cp.Streams = append(cp.Streams, stream.NamedBlob{Name: label, Data: state})
		return nil
	}
	for i := range e.organic {
		if err := add("engine/"+e.organic[i].pkg, e.organic[i].r); err != nil {
			return nil, err
		}
	}
	for _, g := range e.groups {
		for _, u := range g {
			if err := add("engine/campaign/"+u.c.OfferID, u.r); err != nil {
				return nil, err
			}
			// Stateful adversary strategies (jitter's pending ring, burst's
			// latent demand, mimic's retained cohort) checkpoint their
			// schedule alongside the unit's RNG position; stateless ones
			// contribute nothing.
			if state := u.strat.MarshalState(); state != nil {
				cp.Streams = append(cp.Streams, stream.NamedBlob{
					Name: "strategy/" + u.c.OfferID, Data: state})
			}
		}
	}
	// A spilled log streams back from disk here: checkpoints carry the
	// complete install list, so checkpointing a massive spilled run is a
	// deliberate O(run) materialization (disable checkpoints or the spill
	// window when that matters).
	cp.Installs = make([]stream.Install, 0, w.InstallLog.Len())
	for rec := range w.InstallLog.All() {
		cp.Installs = append(cp.Installs, stream.Install{Device: rec.Device, App: rec.App, Day: rec.Day})
	}
	if err := w.InstallLog.Err(); err != nil {
		return nil, err
	}
	return cp, nil
}

// restoreStreams fast-forwards every work-unit RNG stream to the position
// a checkpoint recorded. Every stream must be present: a missing label
// means the checkpoint belongs to a different world or config.
func (e *engine) restoreStreams(cp *stream.Checkpoint) error {
	byName := make(map[string][]byte, len(cp.Streams))
	for _, b := range cp.Streams {
		byName[b.Name] = b.Data
	}
	restore := func(label string, r *randx.Rand) error {
		state, ok := byName[label]
		if !ok {
			return fmt.Errorf("sim: checkpoint has no stream state for %s (wrong config or seed?)", label)
		}
		if err := r.UnmarshalState(state); err != nil {
			return fmt.Errorf("sim: restoring stream %s: %w", label, err)
		}
		return nil
	}
	for i := range e.organic {
		if err := restore("engine/"+e.organic[i].pkg, e.organic[i].r); err != nil {
			return err
		}
	}
	for _, g := range e.groups {
		for _, u := range g {
			if err := restore("engine/campaign/"+u.c.OfferID, u.r); err != nil {
				return err
			}
			state, ok := byName["strategy/"+u.c.OfferID]
			if !ok {
				if u.strat.MarshalState() != nil {
					return fmt.Errorf("sim: checkpoint has no strategy state for %s (different adversary?)", u.c.OfferID)
				}
				continue
			}
			if err := u.strat.UnmarshalState(state); err != nil {
				return fmt.Errorf("sim: restoring strategy state for %s: %w", u.c.OfferID, err)
			}
		}
	}
	return nil
}

// parallelFor runs fn(0..n-1) across the worker pool and blocks until all
// complete. All indices run even after a failure — so world state after a
// failed day is identical for any pool width — and the error belonging to
// the lowest index is returned, making failure reporting deterministic.
func (e *engine) parallelFor(n int, fn func(i int) error) error {
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	conc.ForN(e.workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// stepDay executes one simulated day: the organic phase fanned out over
// apps, a barrier, the campaign phase fanned out over developer groups,
// and the ordered sink flush.
func (e *engine) stepDay(day dates.Date, stats *RunStats) error {
	w := e.w
	var t time.Time
	if e.obs != nil {
		t = time.Now()
	}

	// Phase 1: organic activity, one unit per app. Yesterday's top-free
	// rank index is fetched once and shared read-only across the fan-out,
	// so the per-app chart-presence check is a single map read with no
	// store locking. All randomness is drawn before the handle's shard
	// lock is taken, so the lock covers exactly the (app, day) write
	// batch — one acquisition per unit instead of one per record call.
	prevRanks := w.Store.ChartRanks(playstore.ChartTopFree, day.AddDays(-1))
	deltas := e.deltas
	err := e.parallelFor(len(e.organic), func(i int) error {
		u := &e.organic[i]
		r := u.r
		// Chart presence yesterday boosts organic acquisition
		// ("visibility"), the reason developers want top-chart slots.
		boost := 1.0
		if prevRanks[u.pkg] > 0 {
			boost = 1.5
		}
		n := int64(r.Poisson(u.install * boost))

		// Day-to-day engagement fluctuates multiplicatively (weekday
		// effects, feature placements), which keeps chart boundaries
		// churning the way real "trending" charts do.
		dau := int64(r.Poisson(u.dau * r.LogNormal(0, 0.10)))
		var secPer int64
		if dau > 0 {
			secPer = int64(60 + r.IntN(240))
		}
		var usd float64
		if u.revenue > 0 {
			usd = u.revenue * r.LogNormal(0, 0.3)
		}

		u.app.Lock()
		u.app.RecordInstallBatchLocked(day, n, playstore.SourceOrganic, organicMeanFraud)
		if dau > 0 {
			u.app.RecordSessionBatchLocked(day, dau, secPer)
		}
		if u.revenue > 0 {
			u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: usd})
		}
		u.app.Unlock()
		if e.log != nil && (n > 0 || dau > 0 || usd > 0) {
			e.orgEnc[i].OrganicRef(u.pkgRef, u.pkg, n, organicMeanFraud, dau, secPer, usd)
		}
		deltas[i] = organicDelta{installs: n, revenue: usd}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sim: organic step %s: %w", day, err)
	}
	for i := range deltas {
		stats.OrganicInstalls += deltas[i].installs
		stats.RevenueUSD += deltas[i].revenue
	}
	if e.obs != nil {
		t = e.obs.phase("organic", day, e.obs.PhaseOrganic, t)
	}

	// Phase 2: campaign deliveries, one unit per developer group.
	err = e.parallelFor(len(e.groups), func(g int) error {
		for _, u := range e.groups[g] {
			if err := w.campaignDay(u, day, &e.sinks[g]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		err = fmt.Errorf("sim: campaign step %s: %w", day, err)
	}
	// Flush every sink even when a campaign unit failed: parallelFor ran
	// all units regardless and their store writes are already visible, so
	// flushing keeps the install log and ledger consistent with the store
	// when a failed day is inspected post mortem. The earliest error —
	// campaign before flush, lower sink first — is the one reported.
	//
	// The install log grows by one allocation sized for the remaining
	// window at the current daily delivery rate — capped by the total
	// deliveries still possible, so a burst day never reserves more than
	// the campaigns can ever append — instead of repeated append
	// doublings across the run. (A spilling log instead clamps the
	// reservation at its resident window.)
	need := 0
	for g := range e.sinks {
		need += len(e.sinks[g].log)
	}
	if need > 0 {
		daysLeft := int(w.Cfg.Window.End-day) + 1
		est := w.InstallLog.Len() + need*daysLeft
		if est > e.logBound {
			est = e.logBound
		}
		w.InstallLog.Reserve(need, est)
	}
	var certified int64
	for g := range e.sinks {
		s := &e.sinks[g]
		if ferr := s.txs.FlushTo(w.Ledger); ferr != nil && err == nil {
			err = fmt.Errorf("sim: ledger flush %s: %w", day, ferr)
		}
		w.InstallLog.Append(s.log...)
		stats.IncentivizedInstalls += s.delivered
		certified += s.certified
		s.log = s.log[:0]
		s.delivered, s.certified = 0, 0
	}
	if serr := w.InstallLog.Err(); serr != nil && err == nil {
		err = fmt.Errorf("sim: install-log spill %s: %w", day, serr)
	}
	// Session certifications reach the mediator's global count only here,
	// at the barrier; the count is a plain sum, so merge order is free.
	w.Mediator.AddCertified(int(certified))
	if e.obs != nil {
		t = e.obs.phase("campaign", day, e.obs.PhaseCampaign, t)
	}
	if err != nil {
		return err
	}
	stats.CertifiedCompletions = int64(w.Mediator.Certified())

	// Event-log flush: the per-unit buffers concatenate in canonical order
	// (day marker, organic units in catalog order, campaign groups in
	// group order), which makes the log bytes independent of the worker
	// count and of phase scheduling.
	if e.log != nil {
		if err := e.log.DayStart(day); err != nil {
			return err
		}
		bufs := e.batchBufs[:0]
		for i := range e.orgEnc {
			if e.orgEnc[i].Len() > 0 {
				bufs = append(bufs, e.orgEnc[i].Bytes())
			}
		}
		for g := range e.sinkEnc {
			if e.sinkEnc[g].Len() > 0 {
				bufs = append(bufs, e.sinkEnc[g].Bytes())
			}
		}
		e.batchBufs = bufs
		if err := e.log.EventBatch(bufs...); err != nil {
			return err
		}
		if e.obs != nil {
			// Events emitted this day: each per-unit encoder's record count,
			// read before the Resets clear it. The count also feeds the
			// writer's batch-record metric (the writer never parses its
			// payloads, so the engine reports it).
			var nrec int64
			for i := range e.orgEnc {
				nrec += int64(e.orgEnc[i].Records())
			}
			for g := range e.sinkEnc {
				nrec += int64(e.sinkEnc[g].Records())
			}
			e.obs.Events.Add(nrec)
			e.log.AddBatchRecords(nrec)
		}
		for i := range e.orgEnc {
			e.orgEnc[i].Reset()
		}
		for g := range e.sinkEnc {
			e.sinkEnc[g].Reset()
		}
		if e.obs != nil {
			e.obs.phase("log-emit", day, e.obs.PhaseLogEmit, t)
		}
	}
	return nil
}
