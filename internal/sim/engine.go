package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conc"
	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// engine executes the day loop over a bounded worker pool while keeping
// the run bit-for-bit deterministic in the world's seed.
//
// The determinism model has three rules:
//
//  1. Randomness is owned, never shared. Every organic app and every
//     campaign carries its own randx.Derive stream keyed by a stable name
//     ("engine/<pkg>", "engine/campaign/<offerID>"), so the values a unit
//     draws do not depend on which worker runs it or when.
//
//  2. Writes are partitioned. Organic work units are single apps;
//     campaign work units are whole developer groups. A developer owns
//     all of their apps' store rows and their platform balance, so every
//     mutable float is only ever touched from one goroutine per phase —
//     no cross-unit accumulation whose order could vary.
//
//  3. Cross-cutting effects are buffered and flushed in canonical order.
//     Ledger postings, install-log records, and stat deltas land in
//     per-unit sinks merged sequentially after each phase barrier, so
//     the transaction log and floating-point totals are identical for
//     any worker count.
//
// On top of those rules, every string key the day loop would otherwise
// resolve per event is resolved exactly once here, at construction: app
// rows become playstore.AppHandle values, campaigns become iip
// settlement handles plus mediator click sessions, organic rate maps
// become slices, and ledger account names arrive pre-interned from the
// world build. The inner loops then run on pointers and integers — no
// string hashing, no map growth, and (thanks to the write partition) one
// shard-lock acquisition per (app, day) batch instead of one per event.
type engine struct {
	w       *World
	workers int

	// organic are the phase-1 work units, parallel to the catalog
	// snapshot, each with its stream, store handle, and activity rates
	// pre-resolved.
	organic []organicUnit

	// groups are the campaign work units: all campaigns of one developer,
	// in first-appearance order of w.Campaigns (the canonical flush
	// order), each fully resolved to handles.
	groups [][]*campUnit

	// sinks and deltas are the per-day scratch buffers, allocated once
	// and reset at each day barrier instead of reallocated per day.
	sinks  []unitSink
	deltas []organicDelta

	// logBound caps InstallLog growth estimates: the log can never exceed
	// its length at construction plus every campaign's then-remaining
	// target (each delivery appends exactly one record on either path).
	logBound int
}

// organicUnit is one phase-1 work unit: an app with its random stream,
// store handle, and organic activity rates resolved at construction.
type organicUnit struct {
	pkg     string
	r       *randx.Rand
	app     playstore.AppHandle
	install float64 // expected organic installs per day
	dau     float64 // expected daily active users
	revenue float64 // expected purchase revenue per day (0 = none)
}

// campUnit is one campaign with every per-event lookup hoisted to
// construction time: the campaign's random stream, the store handle of the
// advertised app, the platform settlement handle, the mediator click
// session, the worker pool with pre-interned user account names, the
// interned affiliate account names, and the platform's daily pace cap.
type campUnit struct {
	c         *PlannedCampaign
	r         *randx.Rand
	app       playstore.AppHandle
	offer     *iip.CampaignHandle
	session   *mediator.OfferSession
	pool      []*device.Worker
	poolAccts []string // "user:<worker.ID>", parallel to pool
	affAccts  []string // "affiliate:<pkg>" per instrumented affiliate
	noAffAcct string   // fallback when the IIP has no instrumented affiliates
	paceCap   int

	// Ledger account names interned once per campaign; the delivery hot
	// path posts four transfers per completion and never rebuilds them.
	devAcct  string // "dev:<developer>"
	iipAcct  string // "iip:<platform>"
	poolAcct string // "user:pool-<platform>", the batch payout account
}

// pickAffiliateAccount selects the interned ledger account of the
// affiliate app credited with a completion. IIPs without instrumented
// affiliates settle through their (unobserved) own-network account and
// consume no randomness, exactly like the string-building path it
// replaces.
func (u *campUnit) pickAffiliateAccount(r *randx.Rand) string {
	if len(u.affAccts) == 0 {
		return u.noAffAcct
	}
	return u.affAccts[r.IntN(len(u.affAccts))]
}

// unitSink collects one campaign unit's side effects for deterministic
// merging at the day barrier.
type unitSink struct {
	txs       mediator.TxBuffer
	log       []InstallRecord
	delivered int64
	certified int64
}

// organicDelta is one organic unit's stat contribution for a day.
type organicDelta struct {
	installs int64
	revenue  float64
}

// newEngine prepares the per-unit streams, handles, and work partition
// for a run. The catalog is snapshotted here: apps published mid-run have
// no organic rates and thus generated no activity under the sequential
// engine either, so the snapshot changes nothing observable while keeping
// the organic fan-out race-free.
func newEngine(w *World) (*engine, error) {
	workers := w.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Wire the same resolved bound into the store's StepDay fan-out, so
	// one knob governs every pool and a Workers=1 run is genuinely
	// serial end to end, even if Cfg.Workers was mutated after NewWorld.
	w.Store.SetStepWorkers(workers)
	w.medAcct = mediator.MediatorAccount(w.Mediator.Name)
	e := &engine{w: w, workers: workers}

	pkgs := w.Store.Packages()
	e.organic = make([]organicUnit, len(pkgs))
	for i, pkg := range pkgs {
		h, err := w.Store.AppHandle(pkg)
		if err != nil {
			return nil, fmt.Errorf("sim: resolving organic app %s: %w", pkg, err)
		}
		e.organic[i] = organicUnit{
			pkg:     pkg,
			r:       randx.Derive(w.Cfg.Seed, "engine/"+pkg),
			app:     h,
			install: w.organicInstall[pkg],
			dau:     w.organicDAU[pkg],
			revenue: w.organicRevenue[pkg],
		}
	}

	// User ledger accounts are interned once per pool (pools are shared
	// by every campaign on the same IIP).
	poolAccts := make(map[string][]string, len(w.Pools))
	for name, pool := range w.Pools {
		accts := make([]string, len(pool))
		for i, wk := range pool {
			accts[i] = mediator.UserAccount(wk.ID)
		}
		poolAccts[name] = accts
	}

	groupOf := map[string]int{}
	for _, c := range w.Campaigns {
		g, ok := groupOf[c.Spec.Developer]
		if !ok {
			g = len(e.groups)
			groupOf[c.Spec.Developer] = g
			e.groups = append(e.groups, nil)
		}
		u, err := e.resolveUnit(c, poolAccts)
		if err != nil {
			return nil, err
		}
		e.groups[g] = append(e.groups[g], u)
		if rem := u.offer.Remaining(); rem > 0 {
			e.logBound += rem
		}
	}
	e.logBound += len(w.InstallLog)
	e.sinks = make([]unitSink, len(e.groups))
	e.deltas = make([]organicDelta, len(e.organic))
	return e, nil
}

// resolveUnit turns one planned campaign into a fully resolved work unit.
func (e *engine) resolveUnit(c *PlannedCampaign, poolAccts map[string][]string) (*campUnit, error) {
	w := e.w
	platform := w.Platforms[c.IIP]
	if platform == nil {
		return nil, fmt.Errorf("sim: campaign %s on unknown platform %s", c.OfferID, c.IIP)
	}
	offer, err := platform.CampaignHandle(c.OfferID)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	session, err := w.Mediator.Session(c.OfferID)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	app, err := w.Store.AppHandle(c.App)
	if err != nil {
		return nil, fmt.Errorf("sim: resolving campaign %s: %w", c.OfferID, err)
	}
	// Affiliate accounts come from the world's per-IIP cache when present
	// (the standard platforms); any other platform name is resolved here,
	// so hand-assembled worlds never post to empty account names.
	affAccts, ok := w.affAcctByIIP[c.IIP]
	if !ok {
		for _, a := range w.AffiliatesForIIP(c.IIP) {
			affAccts = append(affAccts, mediator.AffiliateAccount(a.Package))
		}
	}
	noAffAcct := w.noAffAcctByIIP[c.IIP]
	if noAffAcct == "" {
		noAffAcct = mediator.AffiliateAccount("uninstrumented." + c.IIP)
	}
	return &campUnit{
		c:         c,
		r:         randx.Derive(w.Cfg.Seed, "engine/campaign/"+c.OfferID),
		app:       app,
		offer:     offer,
		session:   session,
		pool:      w.Pools[c.IIP],
		poolAccts: poolAccts[c.IIP],
		affAccts:  affAccts,
		noAffAcct: noAffAcct,
		paceCap:   int(platform.PacePerHour * 24),
		devAcct:   mediator.DeveloperAccount(c.Spec.Developer),
		iipAcct:   mediator.IIPAccount(c.IIP),
		poolAcct:  mediator.UserAccount("pool-" + c.IIP),
	}, nil
}

// parallelFor runs fn(0..n-1) across the worker pool and blocks until all
// complete. All indices run even after a failure — so world state after a
// failed day is identical for any pool width — and the error belonging to
// the lowest index is returned, making failure reporting deterministic.
func (e *engine) parallelFor(n int, fn func(i int) error) error {
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	conc.ForN(e.workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// stepDay executes one simulated day: the organic phase fanned out over
// apps, a barrier, the campaign phase fanned out over developer groups,
// and the ordered sink flush.
func (e *engine) stepDay(day dates.Date, stats *RunStats) error {
	w := e.w

	// Phase 1: organic activity, one unit per app. Yesterday's top-free
	// rank index is fetched once and shared read-only across the fan-out,
	// so the per-app chart-presence check is a single map read with no
	// store locking. All randomness is drawn before the handle's shard
	// lock is taken, so the lock covers exactly the (app, day) write
	// batch — one acquisition per unit instead of one per record call.
	prevRanks := w.Store.ChartRanks(playstore.ChartTopFree, day.AddDays(-1))
	deltas := e.deltas
	err := e.parallelFor(len(e.organic), func(i int) error {
		u := &e.organic[i]
		r := u.r
		// Chart presence yesterday boosts organic acquisition
		// ("visibility"), the reason developers want top-chart slots.
		boost := 1.0
		if prevRanks[u.pkg] > 0 {
			boost = 1.5
		}
		n := int64(r.Poisson(u.install * boost))

		// Day-to-day engagement fluctuates multiplicatively (weekday
		// effects, feature placements), which keeps chart boundaries
		// churning the way real "trending" charts do.
		dau := int64(r.Poisson(u.dau * r.LogNormal(0, 0.10)))
		var secPer int64
		if dau > 0 {
			secPer = int64(60 + r.IntN(240))
		}
		var usd float64
		if u.revenue > 0 {
			usd = u.revenue * r.LogNormal(0, 0.3)
		}

		u.app.Lock()
		u.app.RecordInstallBatchLocked(day, n, playstore.SourceOrganic, 0.05)
		if dau > 0 {
			u.app.RecordSessionBatchLocked(day, dau, secPer)
		}
		if u.revenue > 0 {
			u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: usd})
		}
		u.app.Unlock()
		deltas[i] = organicDelta{installs: n, revenue: usd}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sim: organic step %s: %w", day, err)
	}
	for i := range deltas {
		stats.OrganicInstalls += deltas[i].installs
		stats.RevenueUSD += deltas[i].revenue
	}

	// Phase 2: campaign deliveries, one unit per developer group.
	err = e.parallelFor(len(e.groups), func(g int) error {
		for _, u := range e.groups[g] {
			if err := w.campaignDay(u, day, &e.sinks[g]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		err = fmt.Errorf("sim: campaign step %s: %w", day, err)
	}
	// Flush every sink even when a campaign unit failed: parallelFor ran
	// all units regardless and their store writes are already visible, so
	// flushing keeps the install log and ledger consistent with the store
	// when a failed day is inspected post mortem. The earliest error —
	// campaign before flush, lower sink first — is the one reported.
	//
	// The install log grows by one allocation sized for the remaining
	// window at the current daily delivery rate — capped by the total
	// deliveries still possible, so a burst day never reserves more than
	// the campaigns can ever append — instead of repeated append
	// doublings across the run.
	need := 0
	for g := range e.sinks {
		need += len(e.sinks[g].log)
	}
	if need > 0 && cap(w.InstallLog)-len(w.InstallLog) < need {
		daysLeft := int(w.Cfg.Window.End-day) + 1
		est := len(w.InstallLog) + need*daysLeft
		if est > e.logBound {
			est = e.logBound
		}
		if min := len(w.InstallLog) + need; est < min {
			est = min
		}
		grown := make([]InstallRecord, len(w.InstallLog), est)
		copy(grown, w.InstallLog)
		w.InstallLog = grown
	}
	var certified int64
	for g := range e.sinks {
		s := &e.sinks[g]
		if ferr := s.txs.FlushTo(w.Ledger); ferr != nil && err == nil {
			err = fmt.Errorf("sim: ledger flush %s: %w", day, ferr)
		}
		w.InstallLog = append(w.InstallLog, s.log...)
		stats.IncentivizedInstalls += s.delivered
		certified += s.certified
		s.log = s.log[:0]
		s.delivered, s.certified = 0, 0
	}
	// Session certifications reach the mediator's global count only here,
	// at the barrier; the count is a plain sum, so merge order is free.
	w.Mediator.AddCertified(int(certified))
	if err != nil {
		return err
	}
	stats.CertifiedCompletions = int64(w.Mediator.Certified())
	return nil
}
