package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conc"
	"repro/internal/dates"
	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// engine executes the day loop over a bounded worker pool while keeping
// the run bit-for-bit deterministic in the world's seed.
//
// The determinism model has three rules:
//
//  1. Randomness is owned, never shared. Every organic app and every
//     campaign carries its own randx.Derive stream keyed by a stable name
//     ("engine/<pkg>", "engine/campaign/<offerID>"), so the values a unit
//     draws do not depend on which worker runs it or when.
//
//  2. Writes are partitioned. Organic work units are single apps;
//     campaign work units are whole developer groups. A developer owns
//     all of their apps' store rows and their platform balance, so every
//     mutable float is only ever touched from one goroutine per phase —
//     no cross-unit accumulation whose order could vary.
//
//  3. Cross-cutting effects are buffered and flushed in canonical order.
//     Ledger postings, install-log records, and stat deltas land in
//     per-unit sinks merged sequentially after each phase barrier, so
//     the transaction log and floating-point totals are identical for
//     any worker count.
type engine struct {
	w       *World
	workers int

	pkgs        []string
	organicRand []*randx.Rand // parallel to pkgs

	// groups are the campaign work units: all campaigns of one developer,
	// in first-appearance order of w.Campaigns (the canonical flush order).
	groups   [][]*PlannedCampaign
	campRand map[string]*randx.Rand // offerID -> stream
}

// unitSink collects one campaign unit's side effects for deterministic
// merging at the day barrier.
type unitSink struct {
	txs       mediator.TxBuffer
	log       []InstallRecord
	delivered int64
}

// newEngine prepares the per-unit streams and work partition for a run.
// The catalog is snapshotted here: apps published mid-run have no organic
// rates and thus generated no activity under the sequential engine either,
// so the snapshot changes nothing observable while keeping the organic
// fan-out race-free.
func newEngine(w *World) *engine {
	workers := w.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Wire the same resolved bound into the store's StepDay fan-out, so
	// one knob governs every pool and a Workers=1 run is genuinely
	// serial end to end, even if Cfg.Workers was mutated after NewWorld.
	w.Store.SetStepWorkers(workers)
	e := &engine{
		w:        w,
		workers:  workers,
		pkgs:     w.Store.Packages(),
		campRand: make(map[string]*randx.Rand, len(w.Campaigns)),
	}
	e.organicRand = make([]*randx.Rand, len(e.pkgs))
	for i, pkg := range e.pkgs {
		e.organicRand[i] = randx.Derive(w.Cfg.Seed, "engine/"+pkg)
	}
	groupOf := map[string]int{}
	for _, c := range w.Campaigns {
		g, ok := groupOf[c.Spec.Developer]
		if !ok {
			g = len(e.groups)
			groupOf[c.Spec.Developer] = g
			e.groups = append(e.groups, nil)
		}
		e.groups[g] = append(e.groups[g], c)
		e.campRand[c.OfferID] = randx.Derive(w.Cfg.Seed, "engine/campaign/"+c.OfferID)
	}
	return e
}

// parallelFor runs fn(0..n-1) across the worker pool and blocks until all
// complete. All indices run even after a failure — so world state after a
// failed day is identical for any pool width — and the error belonging to
// the lowest index is returned, making failure reporting deterministic.
func (e *engine) parallelFor(n int, fn func(i int) error) error {
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	conc.ForN(e.workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// stepDay executes one simulated day: the organic phase fanned out over
// apps, a barrier, the campaign phase fanned out over developer groups,
// and the ordered sink flush.
func (e *engine) stepDay(day dates.Date, stats *RunStats) error {
	w := e.w

	// Phase 1: organic activity, one unit per app. Yesterday's top-free
	// rank index is fetched once and shared read-only across the fan-out,
	// so the per-app chart-presence check is a single map read with no
	// store locking.
	prevRanks := w.Store.ChartRanks(playstore.ChartTopFree, day.AddDays(-1))
	type organicDelta struct {
		installs int64
		revenue  float64
	}
	deltas := make([]organicDelta, len(e.pkgs))
	err := e.parallelFor(len(e.pkgs), func(i int) error {
		pkg, r := e.pkgs[i], e.organicRand[i]
		// Chart presence yesterday boosts organic acquisition
		// ("visibility"), the reason developers want top-chart slots.
		boost := 1.0
		if prevRanks[pkg] > 0 {
			boost = 1.5
		}
		n := int64(r.Poisson(w.organicInstall[pkg] * boost))
		if err := w.Store.RecordInstallBatch(pkg, day, n, playstore.SourceOrganic, 0.05); err != nil {
			return err
		}
		deltas[i].installs = n

		// Day-to-day engagement fluctuates multiplicatively (weekday
		// effects, feature placements), which keeps chart boundaries
		// churning the way real "trending" charts do.
		dau := int64(r.Poisson(w.organicDAU[pkg] * r.LogNormal(0, 0.10)))
		if dau > 0 {
			secPer := int64(60 + r.IntN(240))
			if err := w.Store.RecordSessionBatch(pkg, day, dau, secPer); err != nil {
				return err
			}
		}
		if rate := w.organicRevenue[pkg]; rate > 0 {
			usd := rate * r.LogNormal(0, 0.3)
			if err := w.Store.RecordPurchase(pkg, playstore.Purchase{Day: day, USD: usd}); err != nil {
				return err
			}
			deltas[i].revenue = usd
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sim: organic step %s: %w", day, err)
	}
	for i := range deltas {
		stats.OrganicInstalls += deltas[i].installs
		stats.RevenueUSD += deltas[i].revenue
	}

	// Phase 2: campaign deliveries, one unit per developer group.
	sinks := make([]unitSink, len(e.groups))
	err = e.parallelFor(len(e.groups), func(g int) error {
		for _, c := range e.groups[g] {
			if err := w.campaignDay(e.campRand[c.OfferID], c, day, &sinks[g]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		err = fmt.Errorf("sim: campaign step %s: %w", day, err)
	}
	// Flush every sink even when a campaign unit failed: parallelFor ran
	// all units regardless and their store writes are already visible, so
	// flushing keeps the install log and ledger consistent with the store
	// when a failed day is inspected post mortem. The earliest error —
	// campaign before flush, lower sink first — is the one reported.
	for g := range sinks {
		if ferr := sinks[g].txs.FlushTo(w.Ledger); ferr != nil && err == nil {
			err = fmt.Errorf("sim: ledger flush %s: %w", day, ferr)
		}
		w.InstallLog = append(w.InstallLog, sinks[g].log...)
		stats.IncentivizedInstalls += sinks[g].delivered
	}
	if err != nil {
		return err
	}
	stats.CertifiedCompletions = int64(w.Mediator.Certified())
	return nil
}
