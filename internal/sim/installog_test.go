package sim

import (
	"fmt"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// collect drains All into a slice, failing the test on a spill I/O error.
func collect(t *testing.T, l *InstallLog) []InstallRecord {
	t.Helper()
	out := make([]InstallRecord, 0, l.Len())
	for rec := range l.All() {
		out = append(out, rec)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestInstallLogSpillRoundTrip drives a spilling log and an unbounded
// reference with the same random append pattern (single records, bursts
// larger than the window, day changes, mid-stream reads, a Reset) and
// checks the logical streams never diverge.
func TestInstallLogSpillRoundTrip(t *testing.T) {
	r := randx.New(321)
	var ref []InstallRecord
	var l InstallLog
	if err := l.EnableSpill(t.TempDir(), 16); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	day := dates.Date(1000)
	next := func() InstallRecord {
		if r.Bool(0.25) {
			day += dates.Date(r.IntN(3)) // days move forward, sometimes by 0
		}
		return InstallRecord{
			Device: fmt.Sprintf("dev-%03d", r.IntN(400)),
			App:    fmt.Sprintf("app.%d", r.IntN(40)),
			Day:    day,
		}
	}
	check := func() {
		t.Helper()
		if l.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(ref))
		}
		got := collect(t, &l)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], ref[i])
			}
		}
	}

	for round := 0; round < 30; round++ {
		if r.Bool(0.3) {
			// Burst append crossing the window, possibly several times over.
			n := r.IntBetween(10, 70)
			batch := make([]InstallRecord, n)
			for i := range batch {
				batch[i] = next()
			}
			l.Append(batch...)
			ref = append(ref, batch...)
		} else {
			for i, n := 0, r.IntBetween(1, 9); i < n; i++ {
				rec := next()
				l.Append(rec)
				ref = append(ref, rec)
			}
		}
		// Interleaved reads must see the full prefix and not perturb the
		// writer (the engine reads at day barriers mid-run).
		if r.Bool(0.4) {
			check()
		}
	}
	check()
	if l.Len() <= 16 {
		t.Fatalf("test never spilled: %d records", l.Len())
	}

	// Reset and refill, as Restore does: prior spill state must vanish.
	keep := append([]InstallRecord(nil), ref[:20]...)
	l.Reset(len(keep))
	l.Append(keep...)
	ref = keep
	check()
}

// TestInstallLogSpillWorldEquivalence is the end-to-end contract: a world
// run with a tiny spill window produces bit-identical run stats and an
// identical install stream — and therefore identical detector input and
// golden hashes — to the unbounded in-RAM log.
func TestInstallLogSpillWorldEquivalence(t *testing.T) {
	run := func(window int) (RunStats, []InstallRecord, *World) {
		cfg := TinyConfig()
		cfg.Workers = 2
		cfg.InstallLogWindow = window
		cfg.InstallLogDir = t.TempDir()
		// The bounded-memory ledger rides the same contract: identical
		// balances with or without the retained transaction history.
		cfg.LedgerBalancesOnly = window > 0
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats, collect(t, &w.InstallLog), w
	}

	statsRAM, logRAM, wRAM := run(0)
	defer wRAM.Close()
	statsSpill, logSpill, wSpill := run(512)
	defer wSpill.Close()

	if statsRAM != statsSpill {
		t.Errorf("run stats diverge: in-RAM %+v, spill %+v", statsRAM, statsSpill)
	}
	if len(logRAM) != len(logSpill) {
		t.Fatalf("install log length diverges: %d vs %d", len(logRAM), len(logSpill))
	}
	if wSpill.InstallLog.Len() <= 512 {
		t.Fatalf("world too small to exercise spilling: %d records", wSpill.InstallLog.Len())
	}
	for i := range logRAM {
		if logRAM[i] != logSpill[i] {
			t.Fatalf("install log diverges at %d: %+v vs %+v", i, logRAM[i], logSpill[i])
		}
	}

	// Ground-truth labels flow through All too; they must agree.
	truthRAM, truthSpill := wRAM.TruthLabels(), wSpill.TruthLabels()
	if len(truthRAM) != len(truthSpill) {
		t.Fatalf("truth labels diverge: %d vs %d", len(truthRAM), len(truthSpill))
	}
	for dev := range truthRAM {
		if !truthSpill[dev] {
			t.Fatalf("device %s missing from spill-mode truth labels", dev)
		}
	}

	// Balances must be bit-identical despite the spill world dropping the
	// ledger's transaction history.
	balRAM, balSpill := wRAM.Ledger.Balances(), wSpill.Ledger.Balances()
	if len(balRAM) != len(balSpill) {
		t.Fatalf("ledger accounts diverge: %d vs %d", len(balRAM), len(balSpill))
	}
	for acct, want := range balRAM {
		if got := balSpill[acct]; got != want {
			t.Errorf("balance %s = %g, want %g", acct, got, want)
		}
	}
	if n := wSpill.Ledger.NumTransactions(); n != 0 {
		t.Errorf("balances-only world retained %d ledger transactions", n)
	}
}
