// Package sim assembles and runs the synthetic incentivized-install world:
// a populated Play Store, the seven IIPs with their offer walls, the eight
// instrumented affiliate apps, per-IIP crowd-worker pools, the mediator and
// money ledger, a Crunchbase snapshot, and per-app APKs. The day engine
// executes organic activity and incentivized campaigns over the paper's
// March-June 2019 study window; every measured quantity downstream
// (crawls, offer datasets, chi-squared tables) derives from this world
// through the same pipeline the paper used.
package sim

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/scenario"
)

// Config parameterizes world generation. The defaults are calibrated to
// the marginal statistics the paper reports (Tables 3-8, Figures 4-6).
type Config struct {
	// Seed drives every random stream; identical seeds give identical
	// worlds and identical measurement results.
	Seed uint64

	// Window is the monitored period (paper: March-June 2019).
	Window dates.Range

	// BaselineApps is the size of the Lumen-derived baseline set (300).
	BaselineApps int
	// BackgroundApps are additional organic catalog apps that compete
	// for chart slots but are neither advertised nor in the baseline.
	BackgroundApps int

	// AppsPerIIP is the number of advertised apps observed per IIP
	// (Table 4's "Number of Apps" column). Apps may appear on several
	// IIPs; TotalAdvertised bounds the unique count (922 in the paper).
	AppsPerIIP      map[string]int
	TotalAdvertised int

	// OffersTarget is the total number of offers across all IIPs (2,126).
	OffersTarget int

	// NoActivityShare is each IIP's fraction of no-activity offers
	// (Table 4's "Offer Type" columns).
	NoActivityShare map[string]float64

	// PayoutScale multiplies the per-type base payout for each IIP,
	// reproducing the payout spread of Table 4.
	PayoutScale map[string]float64

	// MedianInstalls / MedianAgeDays calibrate advertised-app popularity
	// and age per IIP (Table 4).
	MedianInstalls map[string]int64
	MedianAgeDays  map[string]int

	// ArbitrageShareVetted / ArbitrageShareUnvetted are the fractions of
	// apps using arbitrage offers (7% vetted, 2% unvetted; Section 4.3.2).
	ArbitrageShareVetted   float64
	ArbitrageShareUnvetted float64

	// CrunchbaseMatch are the per-group probabilities that a developer is
	// present in the Crunchbase snapshot (39% vetted / 15% unvetted / 27%
	// baseline).
	CrunchbaseMatchVetted   float64
	CrunchbaseMatchUnvetted float64
	CrunchbaseMatchBaseline float64
	// FundedAfter are the per-group probabilities that a matched
	// developer raises a round after the campaign (Table 7).
	FundedAfterVetted   float64
	FundedAfterUnvetted float64
	FundedAfterBaseline float64

	// CampaignTargetMin/Max bound the per-offer purchased completions.
	CampaignTargetMinUnvetted, CampaignTargetMaxUnvetted int
	CampaignTargetMinVetted, CampaignTargetMaxVetted     int

	// MeanCampaignDays is the average campaign duration (paper: 25).
	MeanCampaignDays int

	// AdvertisedGrowthBoost is the organic-growth multiplier for
	// advertised apps: developers buying incentivized installs are in
	// active user-acquisition mode and typically run non-incentivized
	// marketing concurrently — the confounder the paper flags when noting
	// its correlations need not be causal.
	AdvertisedGrowthBoost float64

	// EnforcementSensitivity configures the store's install filter; the
	// default reproduces the weak enforcement of Section 5.2.
	EnforcementSensitivity float64

	// WorkerPoolSize is the number of crowd workers generated per IIP.
	WorkerPoolSize int

	// ChartSize is how many entries each top chart carries (Play shows a
	// few hundred; small test worlds shrink this so charts stay
	// competitive).
	ChartSize int

	// Obfuscation is the APK obfuscation probability for static analysis.
	Obfuscation float64

	// Workers bounds the day engine's worker pool. 0 (the default) uses
	// GOMAXPROCS. Results are identical for every setting — the engine's
	// random streams are owned per work unit, not per worker — so this is
	// purely a throughput knob.
	Workers int

	// Adversary selects the worker-pool behaviour of every campaign unit
	// (see internal/scenario). The zero value is the baseline strategy,
	// whose random-draw sequence is bit-identical to the pre-scenario
	// engine — DefaultConfig/TinyConfig/ScaleConfig worlds reproduce the
	// PR-1/PR-2 goldens unchanged.
	Adversary scenario.AdversarySpec

	// InstallLogWindow, when positive, bounds the install log's resident
	// tail at that many records: older records spill to a temp file in the
	// v3 run-log format, holding peak memory at O(window) instead of
	// O(run) on massive worlds. The logical record stream — lengths,
	// hashes, checkpoint contents, detector input — is identical either
	// way. 0 (the default) keeps the whole log in RAM.
	InstallLogWindow int
	// InstallLogDir is where the spill file is created ("" = the system
	// temp directory). The file is unlinked at creation, so interrupted
	// runs leak nothing.
	InstallLogDir string
	// LedgerBalancesOnly drops the ledger's per-transfer history (the
	// other O(run) memory term beside the install log), keeping only
	// account balances. Every balance, the conservation invariant, and
	// the determinism contract are unchanged; only the retained Tx log —
	// which no analysis reads — is gone. MassiveConfig switches it on.
	LedgerBalancesOnly bool
}

// BasePayout is the per-type average user payout (Table 3).
var BasePayout = map[string]float64{
	"noactivity":   0.06,
	"usage":        0.50,
	"registration": 0.34,
	"purchase":     2.98,
}

// DefaultConfig returns the calibrated configuration reproducing the
// paper's dataset shape.
func DefaultConfig() Config {
	return Config{
		Seed:   20190301,
		Window: dates.Range{Start: dates.StudyStart, End: dates.StudyEnd},

		BaselineApps:   300,
		BackgroundApps: 600,

		AppsPerIIP: map[string]int{
			iip.RankApp:      152,
			iip.AyetStudios:  392,
			iip.Fyber:        378,
			iip.AdscendMedia: 104,
			iip.AdGem:        28,
			iip.HangMyAds:    27,
			iip.OfferToro:    140,
		},
		TotalAdvertised: 922,
		OffersTarget:    2126,

		NoActivityShare: map[string]float64{
			iip.RankApp:      1.00,
			iip.AyetStudios:  0.71,
			iip.Fyber:        0.24,
			iip.AdscendMedia: 0.09,
			iip.AdGem:        0.16,
			iip.HangMyAds:    0.23,
			iip.OfferToro:    0.52,
		},
		PayoutScale: map[string]float64{
			iip.RankApp:      0.33,
			iip.AyetStudios:  0.85,
			iip.Fyber:        0.55,
			iip.AdscendMedia: 0.40,
			iip.AdGem:        3.00,
			iip.HangMyAds:    1.10,
			iip.OfferToro:    0.30,
		},
		MedianInstalls: map[string]int64{
			iip.RankApp:      100,
			iip.AyetStudios:  1_000,
			iip.Fyber:        1_000_000,
			iip.AdscendMedia: 500_000,
			iip.AdGem:        500_000,
			iip.HangMyAds:    1_000_000,
			iip.OfferToro:    500_000,
		},
		MedianAgeDays: map[string]int{
			iip.RankApp:      33,
			iip.AyetStudios:  70,
			iip.Fyber:        777,
			iip.AdscendMedia: 722,
			iip.AdGem:        854,
			iip.HangMyAds:    699,
			iip.OfferToro:    557,
		},

		ArbitrageShareVetted:   0.07,
		ArbitrageShareUnvetted: 0.02,

		CrunchbaseMatchVetted:   0.39,
		CrunchbaseMatchUnvetted: 0.11,
		CrunchbaseMatchBaseline: 0.36,
		FundedAfterVetted:       0.19,
		FundedAfterUnvetted:     0.065,
		FundedAfterBaseline:     0.055,

		CampaignTargetMinUnvetted: 80,
		CampaignTargetMaxUnvetted: 600,
		CampaignTargetMinVetted:   150,
		CampaignTargetMaxVetted:   1200,

		MeanCampaignDays: 25,

		AdvertisedGrowthBoost: 1.45,

		EnforcementSensitivity: 0.4,

		WorkerPoolSize: 600,

		ChartSize: 200,

		Obfuscation: 0.1,
	}
}

// TinyConfig returns a shrunken world preserving the full structure:
// useful for fast tests and quickstart examples. The reproduction harness
// uses DefaultConfig.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.BaselineApps = 40
	cfg.BackgroundApps = 60
	cfg.AppsPerIIP = map[string]int{
		iip.RankApp:      15,
		iip.AyetStudios:  30,
		iip.Fyber:        30,
		iip.AdscendMedia: 10,
		iip.AdGem:        4,
		iip.HangMyAds:    4,
		iip.OfferToro:    12,
	}
	cfg.TotalAdvertised = 80
	cfg.OffersTarget = 180
	cfg.WorkerPoolSize = 120
	cfg.ChartSize = 18
	cfg.Window.End = cfg.Window.Start.AddDays(40)
	return cfg
}

// ScaleConfig returns a world roughly 20x TinyConfig: a catalog in the
// thousands with the full advertised population and offer census of the
// paper. It exists to exercise the parallel day engine at a size where
// single-core replay is visibly the bottleneck; BenchmarkSimRunScale runs
// it at 1 worker and at GOMAXPROCS to measure the speedup.
func ScaleConfig() Config {
	cfg := DefaultConfig()
	cfg.BaselineApps = 600
	cfg.BackgroundApps = 2200
	cfg.ChartSize = 200
	cfg.WorkerPoolSize = 400
	cfg.Window.End = cfg.Window.Start.AddDays(60)
	return cfg
}

// MassiveConfig returns an order-of-magnitude scale-up: a catalog around
// one hundred thousand apps and worker pools totalling about a million
// devices across the seven IIPs. It exists to exercise the SoA store
// columns, the sketch-tier lockstep detector, and the spill-to-disk
// install log at the sizes they were built for; the -massive-gated
// benchmarks run it. The structural knobs (shares, payouts, medians) stay
// at the paper's calibration — only the population scales.
func MassiveConfig() Config {
	cfg := DefaultConfig()
	cfg.BaselineApps = 6_000
	cfg.BackgroundApps = 90_000
	cfg.AppsPerIIP = map[string]int{
		iip.RankApp:      600,
		iip.AyetStudios:  1_550,
		iip.Fyber:        1_500,
		iip.AdscendMedia: 420,
		iip.AdGem:        110,
		iip.HangMyAds:    110,
		iip.OfferToro:    560,
	}
	cfg.TotalAdvertised = 3_700
	cfg.OffersTarget = 8_500
	cfg.WorkerPoolSize = 143_000 // ×7 IIPs ≈ 1.0M devices
	cfg.ChartSize = 200
	// The window stays the paper's full March-June monitoring period
	// (121 days, inherited from DefaultConfig): at this scale the run's
	// O(run) terms are exactly what the bounded-memory model below
	// exists for, so truncating the window would hide the point.
	//
	// Bound the resident install log: the full run's stream is far larger
	// than RAM should hold, so spill everything past the last ~1M records.
	cfg.InstallLogWindow = 1 << 20
	// And the ledger history with it — at this scale the retained Tx log
	// would dwarf the device population.
	cfg.LedgerBalancesOnly = true
	return cfg
}

// Resize applies the free world-size parameters (0 = keep the base
// value): apps is the total catalog size (background + baseline +
// advertised — the baseline and advertised populations keep their
// calibrated counts and the background catalog absorbs the difference),
// devices is the total crowd-worker device count across the seven IIP
// pools, and days is the monitored window length. It validates that the
// requested sizes are realizable before mutating anything.
func (c *Config) Resize(apps, devices, days int) error {
	background := c.BackgroundApps
	if apps > 0 {
		reserved := c.BaselineApps + c.TotalAdvertised
		background = apps - reserved
		if background < 1 {
			return fmt.Errorf("sim: -apps %d leaves no background catalog (baseline %d + advertised %d apps are reserved)",
				apps, c.BaselineApps, c.TotalAdvertised)
		}
	}
	pool := c.WorkerPoolSize
	if devices > 0 {
		nIIPs := len(iip.StandardNames)
		if devices < nIIPs {
			return fmt.Errorf("sim: -devices %d is fewer than the %d IIP pools", devices, nIIPs)
		}
		pool = (devices + nIIPs - 1) / nIIPs
	}
	if days < 0 || (days == 0 && c.Window.Days() < 1) {
		return fmt.Errorf("sim: window must be at least one day")
	}
	c.BackgroundApps = background
	c.WorkerPoolSize = pool
	if days > 0 {
		c.Window.End = c.Window.Start.AddDays(days - 1)
	}
	return nil
}

// VettedIIPs and UnvettedIIPs partition the studied platforms.
var (
	VettedIIPs   = []string{iip.Fyber, iip.OfferToro, iip.AdscendMedia, iip.HangMyAds, iip.AdGem}
	UnvettedIIPs = []string{iip.AyetStudios, iip.RankApp}
)

// IsVetted reports whether the named IIP is a vetted platform.
func IsVetted(name string) bool {
	for _, v := range VettedIIPs {
		if v == name {
			return true
		}
	}
	return false
}
