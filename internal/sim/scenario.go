package sim

import (
	"fmt"

	"repro/internal/scenario"
)

// ConfigForSpec materializes a scenario spec into a runnable Config: the
// named base config, the world-shape overrides, and the adversary
// strategy every campaign unit will consult. The detector knobs ride the
// spec itself (scenario.DetectorSpec.Config); they configure evaluation,
// not the world.
func ConfigForSpec(sp scenario.Spec) (Config, error) {
	if err := sp.Validate(); err != nil {
		return Config{}, err
	}
	var cfg Config
	switch sp.World.Base {
	case "", scenario.BaseTiny:
		cfg = TinyConfig()
	case scenario.BaseDefault:
		cfg = DefaultConfig()
	case scenario.BaseScale:
		cfg = ScaleConfig()
	case scenario.BaseMassive:
		cfg = MassiveConfig()
	default:
		return Config{}, fmt.Errorf("sim: unknown scenario base world %q", sp.World.Base)
	}
	if sp.World.Seed != 0 {
		cfg.Seed = sp.World.Seed
	}
	if sp.World.WindowDays > 0 {
		cfg.Window.End = cfg.Window.Start.AddDays(sp.World.WindowDays - 1)
	}
	if sp.World.BaselineApps > 0 {
		cfg.BaselineApps = sp.World.BaselineApps
	}
	if sp.World.BackgroundApps > 0 {
		cfg.BackgroundApps = sp.World.BackgroundApps
	}
	if sp.World.WorkerPoolSize > 0 {
		cfg.WorkerPoolSize = sp.World.WorkerPoolSize
	}
	if sp.World.ChartSize > 0 {
		cfg.ChartSize = sp.World.ChartSize
	}
	// The free size parameters apply last, over the per-field overrides,
	// and validate that the requested world is realizable.
	if sp.World.Apps > 0 || sp.World.Devices > 0 {
		if err := cfg.Resize(sp.World.Apps, sp.World.Devices, 0); err != nil {
			return Config{}, fmt.Errorf("sim: scenario %s: %w", sp.Name, err)
		}
	}
	cfg.Adversary = sp.Adversary
	return cfg, nil
}
