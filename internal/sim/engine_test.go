package sim

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/playstore"
)

// runFingerprint captures everything the determinism contract covers: the
// run stats, the device-resolved install log, every ledger balance and the
// full transaction sequence, the final charts, and per-app exact installs.
type runFingerprint struct {
	stats    RunStats
	installs []InstallRecord
	balances map[string]float64
	numTxs   int
	txDigest uint64
	charts   map[string][]playstore.ChartEntry
	exact    map[string]int64
}

func fingerprintRun(t *testing.T, workers, maxProcs int) runFingerprint {
	t.Helper()
	if maxProcs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxProcs))
	}
	cfg := TinyConfig()
	cfg.Workers = workers
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	fp := runFingerprint{
		stats:    stats,
		installs: w.InstallLog.Slice(),
		balances: w.Ledger.Balances(),
		numTxs:   w.Ledger.NumTransactions(),
		charts:   map[string][]playstore.ChartEntry{},
		exact:    map[string]int64{},
	}
	// Order-sensitive digest of the transaction log: the ordered flush
	// must make even the posting sequence identical across worker counts.
	// Shares the fnvMix accumulator with the equivalence goldens so both
	// tests hash transactions identically.
	h := newFnv()
	for _, tx := range w.Ledger.Transactions() {
		h.str(tx.From)
		h.str(tx.To)
		h.str(tx.Memo)
		h.u64(math.Float64bits(tx.Amount))
	}
	fp.txDigest = uint64(h)
	for _, name := range playstore.ChartNames {
		fp.charts[name] = w.Store.Chart(name)
	}
	for _, pkg := range w.Store.Packages() {
		n, err := w.Store.ExactInstalls(pkg)
		if err != nil {
			t.Fatal(err)
		}
		fp.exact[pkg] = n
	}
	return fp
}

func diffFingerprints(t *testing.T, label string, a, b runFingerprint) {
	t.Helper()
	if a.stats != b.stats {
		t.Errorf("%s: run stats differ: %+v vs %+v", label, a.stats, b.stats)
	}
	if len(a.installs) != len(b.installs) {
		t.Fatalf("%s: install log length %d vs %d", label, len(a.installs), len(b.installs))
	}
	for i := range a.installs {
		if a.installs[i] != b.installs[i] {
			t.Fatalf("%s: install log diverges at %d: %+v vs %+v", label, i, a.installs[i], b.installs[i])
		}
	}
	if a.numTxs != b.numTxs {
		t.Errorf("%s: transaction counts differ: %d vs %d", label, a.numTxs, b.numTxs)
	}
	if a.txDigest != b.txDigest {
		t.Errorf("%s: transaction logs differ (order or amounts)", label)
	}
	if len(a.balances) != len(b.balances) {
		t.Errorf("%s: balance account counts differ: %d vs %d", label, len(a.balances), len(b.balances))
	}
	for acct, bal := range a.balances {
		if other, ok := b.balances[acct]; !ok || other != bal {
			t.Fatalf("%s: balance %q differs: %v vs %v (bit-exact required)", label, acct, bal, other)
		}
	}
	for name, entries := range a.charts {
		other := b.charts[name]
		if len(entries) != len(other) {
			t.Fatalf("%s: chart %s size %d vs %d", label, name, len(entries), len(other))
		}
		for i := range entries {
			if entries[i] != other[i] {
				t.Fatalf("%s: chart %s diverges at rank %d: %+v vs %+v", label, name, i+1, entries[i], other[i])
			}
		}
	}
	for pkg, n := range a.exact {
		if other, ok := b.exact[pkg]; !ok || other != n {
			t.Fatalf("%s: exact installs for %s differ: %d vs %d", label, pkg, n, other)
		}
	}
}

// TestEngineDeterministicAcrossWorkerCounts is the core contract of the
// parallel engine: the sequential path (Workers=1) and parallel paths of
// any width produce identical RunStats, install logs, ledger state, and
// charts — independent of GOMAXPROCS.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	baseline := fingerprintRun(t, 1, 0)
	if baseline.stats.IncentivizedInstalls == 0 || baseline.stats.OrganicInstalls == 0 {
		t.Fatal("baseline run delivered nothing; fingerprint would be vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		fp := fingerprintRun(t, workers, 0)
		diffFingerprints(t, "workers=1 vs workers="+string(rune('0'+workers)), baseline, fp)
	}
	// Same worker count, repeated: run-to-run stability.
	again := fingerprintRun(t, 4, 0)
	diffFingerprints(t, "workers=4 repeat", fingerprintRun(t, 4, 0), again)
	// GOMAXPROCS must not leak into results.
	restricted := fingerprintRun(t, 4, 2)
	diffFingerprints(t, "GOMAXPROCS=2", baseline, restricted)
}

// TestEngineWorkersConfig checks the pool-width plumbing: explicit widths,
// the GOMAXPROCS default, and widths exceeding the unit count all run.
func TestEngineWorkersConfig(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		cfg := TinyConfig()
		cfg.Workers = workers
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := w.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Days != cfg.Window.Days() {
			t.Errorf("workers=%d: days = %d, want %d", workers, stats.Days, cfg.Window.Days())
		}
	}
}

// TestEngineGroupsPartitionCampaigns verifies the write-partition
// invariant the determinism model relies on: every campaign appears in
// exactly one developer group, no developer spans two groups, and every
// unit is fully resolved to handles at construction.
func TestEngineGroupsPartitionCampaigns(t *testing.T) {
	w := buildTiny(t)
	eng, err := newEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	seenOffer := map[string]bool{}
	devGroup := map[string]int{}
	total := 0
	for g, group := range eng.groups {
		for _, u := range group {
			c := u.c
			total++
			if seenOffer[c.OfferID] {
				t.Fatalf("offer %s appears in two groups", c.OfferID)
			}
			seenOffer[c.OfferID] = true
			if prev, ok := devGroup[c.Spec.Developer]; ok && prev != g {
				t.Fatalf("developer %s split across groups %d and %d", c.Spec.Developer, prev, g)
			}
			devGroup[c.Spec.Developer] = g
			if u.r == nil || u.session == nil || u.offer == nil || !u.app.Valid() {
				t.Fatalf("unit %s not fully resolved: %+v", c.OfferID, u)
			}
			if u.session.OfferID() != c.OfferID || u.offer.OfferID() != c.OfferID {
				t.Fatalf("unit %s wired to wrong handles (%s / %s)",
					c.OfferID, u.session.OfferID(), u.offer.OfferID())
			}
			if len(u.poolAccts) != len(u.pool) {
				t.Fatalf("unit %s: %d pool accounts for %d workers", c.OfferID, len(u.poolAccts), len(u.pool))
			}
			if u.devAcct == "" || u.iipAcct == "" || u.poolAcct == "" || u.noAffAcct == "" {
				t.Fatalf("unit %s missing interned ledger accounts", c.OfferID)
			}
		}
	}
	if total != len(w.Campaigns) {
		t.Errorf("groups cover %d campaigns, want %d", total, len(w.Campaigns))
	}
}
