package sim

import (
	"strings"
	"testing"

	"repro/internal/iip"
	"repro/internal/scenario"
)

func TestResize(t *testing.T) {
	cfg := TinyConfig()
	total := cfg.BaselineApps + cfg.TotalAdvertised + 500
	if err := cfg.Resize(total, 7000, 10); err != nil {
		t.Fatal(err)
	}
	if cfg.BackgroundApps != 500 {
		t.Errorf("BackgroundApps = %d, want 500", cfg.BackgroundApps)
	}
	if want := 1000; cfg.WorkerPoolSize != want {
		t.Errorf("WorkerPoolSize = %d, want %d", cfg.WorkerPoolSize, want)
	}
	if got := cfg.Window.Days(); got != 10 {
		t.Errorf("window = %d days, want 10", got)
	}

	// Zero keeps the base values.
	before := cfg
	if err := cfg.Resize(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if cfg.BackgroundApps != before.BackgroundApps || cfg.WorkerPoolSize != before.WorkerPoolSize {
		t.Error("Resize(0,0,0) mutated the config")
	}

	// An apps target below the reserved populations must refuse.
	if err := cfg.Resize(cfg.BaselineApps, 0, 0); err == nil {
		t.Error("Resize accepted an apps target below baseline+advertised")
	}
	if err := cfg.Resize(0, len(iip.StandardNames)-1, 0); err == nil {
		t.Error("Resize accepted fewer devices than IIP pools")
	}
	if err := cfg.Resize(0, 0, -1); err == nil {
		t.Error("Resize accepted a negative window")
	}
}

func TestConfigForSpecSizing(t *testing.T) {
	sp := scenario.Spec{
		Name:  "sizing",
		World: scenario.WorldSpec{Base: scenario.BaseMassive},
	}
	cfg, err := ConfigForSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := MassiveConfig()
	if cfg.BackgroundApps != want.BackgroundApps || cfg.WorkerPoolSize != want.WorkerPoolSize {
		t.Errorf("massive base not applied: %d apps / %d pool", cfg.BackgroundApps, cfg.WorkerPoolSize)
	}
	if cfg.InstallLogWindow == 0 {
		t.Error("massive base should bound the install log")
	}

	sp = scenario.Spec{
		Name:  "sizing",
		World: scenario.WorldSpec{Base: scenario.BaseTiny, Apps: 400, Devices: 1400},
	}
	if cfg, err = ConfigForSpec(sp); err != nil {
		t.Fatal(err)
	}
	tiny := TinyConfig()
	if want := 400 - tiny.BaselineApps - tiny.TotalAdvertised; cfg.BackgroundApps != want {
		t.Errorf("BackgroundApps = %d, want %d", cfg.BackgroundApps, want)
	}
	if want := 200; cfg.WorkerPoolSize != want {
		t.Errorf("WorkerPoolSize = %d, want %d", cfg.WorkerPoolSize, want)
	}

	// Unrealizable sizes surface as spec errors, naming the scenario.
	sp.World.Apps = 10
	if _, err := ConfigForSpec(sp); err == nil || !strings.Contains(err.Error(), "sizing") {
		t.Errorf("unrealizable apps target: err = %v", err)
	}
}
