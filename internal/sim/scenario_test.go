package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/scenario"
)

// TestPaperBaselineScenarioMatchesGoldens pins the scenario layer's
// central promise: materializing the `paper-baseline` spec produces a
// world bit-identical to TinyConfig — the same RunStats the PR-1/PR-2
// equivalence goldens lock, without regeneration. Any strategy hook that
// consumes one extra random draw on the baseline path shows up here.
func TestPaperBaselineScenarioMatchesGoldens(t *testing.T) {
	sp, ok := scenario.Lookup("paper-baseline")
	if !ok {
		t.Fatal("paper-baseline not registered")
	}
	cfg, err := ConfigForSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	check := func(what string, got, want uint64) {
		if got != want {
			t.Errorf("%s = %d, want %d (paper-baseline diverged from the goldens)", what, got, want)
		}
	}
	check("days", uint64(stats.Days), goldenDays)
	check("organic installs", uint64(stats.OrganicInstalls), goldenOrganic)
	check("incentivized installs", uint64(stats.IncentivizedInstalls), goldenIncentivized)
	check("certified completions", uint64(stats.CertifiedCompletions), goldenCertified)
	if bits := math.Float64bits(stats.RevenueUSD); bits != goldenRevenueBits {
		t.Errorf("revenue bits = %#x, want %#x", bits, goldenRevenueBits)
	}
	check("install log length", uint64(w.InstallLog.Len()), goldenInstallLogLen)
	installHash := newFnv()
	for rec := range w.InstallLog.All() {
		installHash.str(rec.Device)
		installHash.str(rec.App)
		installHash.u64(uint64(rec.Day))
	}
	check("install log hash", uint64(installHash), goldenInstallLogHash)
}

// scenarioFingerprint is the cross-worker-count digest for adversarial
// scenarios: run stats, the device-resolved install log, and the ordered
// transaction log — everything the determinism contract covers that an
// adversary strategy can influence.
type scenarioFingerprint struct {
	stats       RunStats
	installHash uint64
	txHash      uint64
	balHash     uint64
}

func fingerprintScenario(t *testing.T, name string, workers int) scenarioFingerprint {
	t.Helper()
	sp, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %s not registered", name)
	}
	// Shrink the window so the whole registry stays fast; the strategies'
	// epoch logic (weekly rotations, 8-day bursts) still cycles twice.
	sp.World.WindowDays = 24
	cfg, err := ConfigForSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	fp := scenarioFingerprint{stats: stats}
	h := newFnv()
	for rec := range w.InstallLog.All() {
		h.str(rec.Device)
		h.str(rec.App)
		h.u64(uint64(rec.Day))
	}
	fp.installHash = uint64(h)
	h = newFnv()
	for _, tx := range w.Ledger.Transactions() {
		h.str(tx.From)
		h.str(tx.To)
		h.str(tx.Memo)
		h.u64(math.Float64bits(tx.Amount))
	}
	fp.txHash = uint64(h)
	balances := w.Ledger.Balances()
	accounts := make([]string, 0, len(balances))
	for acct := range balances {
		accounts = append(accounts, acct)
	}
	sort.Strings(accounts)
	h = newFnv()
	for _, acct := range accounts {
		h.str(acct)
		h.u64(math.Float64bits(balances[acct]))
	}
	fp.balHash = uint64(h)
	return fp
}

// TestScenariosDeterministicAcrossWorkerCounts extends the engine's core
// contract to every registered scenario: each adversary strategy must
// produce identical results at any worker-pool width, because its draws
// come only from streams its own unit owns. A strategy that read shared
// state or a worker-local stream would diverge here.
func TestScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			serial := fingerprintScenario(t, name, 1)
			if serial.stats.IncentivizedInstalls == 0 {
				t.Fatalf("%s delivered nothing; fingerprint would be vacuous", name)
			}
			pooled := fingerprintScenario(t, name, 4)
			if serial != pooled {
				t.Fatalf("%s diverges across worker counts:\n  workers=1: %+v\n  workers=4: %+v",
					name, serial, pooled)
			}
		})
	}
}

// TestScenarioRunLogIdenticalAcrossWorkerCounts asserts the run-log tap
// stays byte-stable for an adversarial scenario too (device-churn writes
// inline device strings through the fallback path, the one place the
// encoder layout differs from baseline).
func TestScenarioRunLogIdenticalAcrossWorkerCounts(t *testing.T) {
	logBytes := func(workers int) []byte {
		sp, _ := scenario.Lookup("device-churn")
		sp.World.WindowDays = 16
		cfg, err := ConfigForSpec(sp)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = workers
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf writableBuffer
		runLog, err := w.NewRunLog(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.RunOpts(RunOptions{Log: runLog}); err != nil {
			t.Fatal(err)
		}
		return buf.b
	}
	a, b := logBytes(1), logBytes(4)
	if len(a) == 0 {
		t.Fatal("empty run log")
	}
	if string(a) != string(b) {
		t.Fatalf("device-churn run log differs across worker counts (%d vs %d bytes)", len(a), len(b))
	}
}

type writableBuffer struct{ b []byte }

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
