package sim

import (
	"reflect"
	"testing"

	"repro/internal/lockstep"
)

// sketchWorldEvents runs a world at the given worker count and returns
// its labeled detection stream.
func sketchWorldEvents(t *testing.T, cfg Config, workers int) ([]lockstep.Event, map[string]bool) {
	t.Helper()
	cfg.Workers = workers
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	events, truth := w.DetectionEvents()
	return events, truth
}

// TestSketchTierOnWorlds runs the sketch tier over real simulated worlds:
// the banding candidates must cover every pair the exact detector
// reports (so verification reproduces the exact pair set), precision
// must be unchanged, and the whole pipeline must be bit-deterministic
// across engine worker counts — the sketch tier consumes the same
// worker-count-invariant install stream the exact tier does.
func TestSketchTierOnWorlds(t *testing.T) {
	cfg := TinyConfig()
	events, truth := sketchWorldEvents(t, cfg, 1)

	base := lockstep.DefaultConfig()
	// Single-row bands at 128 hashes: a qualifying pair with Jaccard s
	// escapes all bands with probability (1-s)^128, vanishing even for
	// the low-overlap tail of real worker pairs.
	sketchCfg := base
	sketchCfg.SketchHashes = 128
	sketchCfg.SketchRows = 1
	sketchCfg.SketchSeed = cfg.Seed

	exact := lockstep.NewDetector(base)
	sk := lockstep.NewDetector(sketchCfg)
	for _, ev := range events {
		exact.IngestEvent(ev)
		sk.IngestEvent(ev)
	}

	exactPairs := exact.QualifyingPairs()
	if len(exactPairs) == 0 {
		t.Fatal("exact detector reported no pairs on the tiny world")
	}
	cand := map[[2]string]bool{}
	for _, p := range sk.Candidates() {
		cand[p] = true
	}
	for _, p := range exactPairs {
		if !cand[p] {
			t.Errorf("exact pair %v missing from sketch candidates", p)
		}
	}

	exactGroups, sketchGroups := exact.Groups(), sk.Groups()
	exactEval := lockstep.Evaluate(exactGroups, truth)
	sketchEval := lockstep.Evaluate(sketchGroups, truth)
	if sketchEval.Precision < exactEval.Precision {
		t.Errorf("sketch precision %.3f below exact %.3f", sketchEval.Precision, exactEval.Precision)
	}
	// Recall loss is measured, not assumed: with every exact pair among
	// the candidates it must be zero here.
	if sketchEval.Recall != exactEval.Recall {
		t.Errorf("sketch recall %.3f, exact %.3f", sketchEval.Recall, exactEval.Recall)
	}

	// Worker-count invariance end to end: a 4-worker engine must feed the
	// detector a stream that sketches to identical groups and stats.
	events4, _ := sketchWorldEvents(t, cfg, 4)
	sk4 := lockstep.NewDetector(sketchCfg)
	for _, ev := range events4 {
		sk4.IngestEvent(ev)
	}
	if got := sk4.Groups(); !reflect.DeepEqual(got, sketchGroups) {
		t.Errorf("sketch groups diverge across worker counts: %d vs %d", len(got), len(sketchGroups))
	}
	if sk4.Stats() != sk.Stats() {
		t.Errorf("sketch stats diverge across worker counts: %+v vs %+v", sk4.Stats(), sk.Stats())
	}
}
