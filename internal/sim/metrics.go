package sim

import (
	"time"

	"repro/internal/dates"
	"repro/internal/obs"
)

// Metrics instruments a run at day-barrier granularity: per-day phase
// timings (organic fan-out, campaign fan-out, store StepDay, log
// emission, barrier flush), day totals, events emitted, and checkpoint
// write latency. Everything here is provably off the deterministic
// path: no field is read by simulation logic, no RNG is drawn, no log
// byte depends on it — the hooks only read clocks and counters the
// engine already maintains, a handful of times per simulated day.
type Metrics struct {
	// Days counts completed simulated days; DaySeconds is the wall time
	// per day, barrier to barrier (hooks and checkpoints included).
	Days       *obs.Counter
	DaySeconds *obs.Histogram

	// Per-phase wall time within a day.
	PhaseOrganic  *obs.Histogram // organic fan-out + delta fold
	PhaseCampaign *obs.Histogram // campaign fan-out + ordered sink merge
	PhaseLogEmit  *obs.Histogram // day marker + event-batch emission
	PhaseStepDay  *obs.Histogram // store chart/enforcement step
	PhaseBarrier  *obs.Histogram // barrier frames (enforce/chart/day-end) + flush

	// Events counts run-log event records emitted (0 when the log is
	// off; summed from the per-unit encoder counters at the barrier).
	Events *obs.Counter

	// CheckpointSeconds times the checkpoint path end to end: state
	// encode, log flush, and the caller's write.
	CheckpointSeconds *obs.Histogram
	Checkpoints       *obs.Counter

	// Trace, when non-nil, records every phase as a span labeled with
	// the simulated day.
	Trace *obs.Tracer
}

// NewMetrics registers the engine metrics in reg and attaches tr. Both
// may be nil; a fully-nil pair returns nil, which RunOptions treats as
// "instrumentation off".
func NewMetrics(reg *obs.Registry, tr *obs.Tracer) *Metrics {
	if reg == nil && tr == nil {
		return nil
	}
	return &Metrics{
		Days:              reg.Counter("sim_days_total", "completed simulated days"),
		DaySeconds:        reg.Histogram("sim_day_seconds", "wall time per simulated day, barrier to barrier", nil),
		PhaseOrganic:      reg.Histogram("sim_phase_organic_seconds", "organic fan-out wall time per day", nil),
		PhaseCampaign:     reg.Histogram("sim_phase_campaign_seconds", "campaign fan-out + sink merge wall time per day", nil),
		PhaseLogEmit:      reg.Histogram("sim_phase_log_emit_seconds", "run-log event emission wall time per day", nil),
		PhaseStepDay:      reg.Histogram("sim_phase_step_day_seconds", "store chart/enforcement step wall time per day", nil),
		PhaseBarrier:      reg.Histogram("sim_phase_barrier_seconds", "barrier frame + flush wall time per day", nil),
		Events:            reg.Counter("sim_events_emitted_total", "run-log event records emitted"),
		CheckpointSeconds: reg.Histogram("sim_checkpoint_seconds", "checkpoint encode+write latency", nil),
		Checkpoints:       reg.Counter("sim_checkpoints_total", "checkpoints written"),
		Trace:             tr,
	}
}

// phase records one completed phase and returns the end time, which the
// caller threads into the next phase — one clock read per boundary.
func (m *Metrics) phase(name string, day dates.Date, h *obs.Histogram, start time.Time) time.Time {
	end := time.Now()
	h.Observe(end.Sub(start).Seconds())
	m.Trace.Record(name, day.String(), start, end.Sub(start))
	return end
}
