package sim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/stream"
)

// NewRunLog opens an event-sourced run log on out for this world: the
// header (run parameters) and the base snapshot (store, ledger, mediator
// exactly as they stand now) are written immediately, and the returned
// writer is ready to be attached via RunOptions.Log. Call it right before
// the run so any pre-run activity (e.g. the honey-app experiment) is part
// of the base snapshot.
func (w *World) NewRunLog(out io.Writer) (*stream.Writer, error) {
	h := stream.Header{
		Version:      stream.Version,
		Seed:         w.Cfg.Seed,
		WindowStart:  w.Cfg.Window.Start,
		WindowEnd:    w.Cfg.Window.End,
		MediatorName: w.Mediator.Name,
		FeePerUser:   w.Mediator.FeePerUser,
	}
	base := stream.Base{
		Store:    w.Store.EncodeSnapshot(),
		Ledger:   w.Ledger.EncodeSnapshot(),
		Mediator: w.Mediator.EncodeSnapshot(),
		Devices:  w.RunLogDevices(),
		Strings:  w.RunLogStrings(),
	}
	return stream.NewWriter(out, h, base)
}

// RunLogDevices returns the run log's interned device table: every
// crowd-worker device ID, in deterministic (pool name, pool order). The
// world build is deterministic, so a resumed run reconstructs the exact
// table the original log's base frame carries — which is what lets
// stream.ResumeWriter keep device references byte-identical.
func (w *World) RunLogDevices() []string {
	names := make([]string, 0, len(w.Pools))
	for name := range w.Pools {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	seen := map[string]bool{}
	for _, name := range names {
		for _, wk := range w.Pools[name] {
			if !seen[wk.ID] {
				seen[wk.ID] = true
				out = append(out, wk.ID)
			}
		}
	}
	return out
}

// RunLogStrings returns the run log's interned string table: every
// catalog package (the store's canonical order), every offer ID and
// developer account (campaign launch order), and the per-IIP and
// per-worker ledger account names — all the strings event frames repeat
// millions of times. Like the device table, it is reconstructed
// deterministically from the world build, so a resumed run resolves the
// exact references the original log's base frame carries.
func (w *World) RunLogStrings() []string {
	var out []string
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, pkg := range w.Store.Packages() {
		add(pkg)
	}
	for _, c := range w.Campaigns {
		add(c.OfferID)
		add(mediator.DeveloperAccount(c.Spec.Developer))
	}
	names := make([]string, 0, len(w.Pools))
	for name := range w.Pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add(mediator.IIPAccount(name))
		for _, acct := range w.affAcctByIIP[name] {
			add(acct)
		}
		if acct := w.noAffAcctByIIP[name]; acct != "" {
			add(acct)
		}
		add(mediator.UserAccount("pool-" + name))
		for _, wk := range w.Pools[name] {
			add(mediator.UserAccount(wk.ID))
		}
	}
	return out
}

// ResumeRunLog continues the event log of a checkpointed run: out must be
// the original log file truncated to cp.LogOffset and positioned at its
// end. The checkpointed segmentation state is reinstated so segment
// rotations re-trigger at the original offsets, keeping the appended
// frames byte-identical to what the uninterrupted run would have written.
func (w *World) ResumeRunLog(out io.Writer, cp *stream.Checkpoint) *stream.Writer {
	lw := stream.ResumeWriter(out, cp.LogOffset, w.RunLogDevices(), w.RunLogStrings())
	lw.RestoreSegmentState(cp)
	return lw
}

// ValidateResume checks that a restored checkpoint is consistent with
// this world — every engine work unit resolves and has its RNG stream
// state — without running anything. Callers with destructive follow-up
// work (truncating the original event log) run it first, so a checkpoint
// from a different seed or config fails before any file is touched.
func (w *World) ValidateResume(cp *stream.Checkpoint) error {
	eng, err := newEngine(w)
	if err != nil {
		return fmt.Errorf("sim: checkpoint does not match this world: %w", err)
	}
	if err := eng.restoreStreams(cp); err != nil {
		return fmt.Errorf("sim: checkpoint does not match this world: %w", err)
	}
	return nil
}

// Restore overlays a day-boundary checkpoint onto a freshly built world:
// the store is replaced with the snapshot (enforcer state included), the
// ledger, mediator, and every platform get their mutable state back
// bit-exact, and the install log is rebuilt. The world must come from the
// same Config as the checkpointed run — the deterministic build supplies
// everything the checkpoint deliberately omits (catalog plans, campaign
// specs, worker pools, organic rates). RunOpts calls this automatically
// when RunOptions.Resume is set.
func (w *World) Restore(cp *stream.Checkpoint) error {
	store, err := playstore.DecodeSnapshot(cp.Store)
	if err != nil {
		return fmt.Errorf("sim: restoring store: %w", err)
	}
	if err := w.Ledger.RestoreSnapshot(cp.Ledger); err != nil {
		return fmt.Errorf("sim: restoring ledger: %w", err)
	}
	if err := w.Mediator.RestoreSnapshot(cp.Mediator); err != nil {
		return fmt.Errorf("sim: restoring mediator: %w", err)
	}
	for _, blob := range cp.Platforms {
		p := w.Platforms[blob.Name]
		if p == nil {
			return fmt.Errorf("sim: checkpoint references unknown platform %s", blob.Name)
		}
		if err := p.RestoreSnapshot(blob.Data); err != nil {
			return fmt.Errorf("sim: restoring platform %s: %w", blob.Name, err)
		}
	}
	w.Store = store
	w.Store.SetHorizon(w.Cfg.Window.End)
	if enf := store.Enforcer(); enf != nil {
		w.Enforcer = enf
	}
	w.InstallLog.Reset(len(cp.Installs))
	for _, in := range cp.Installs {
		w.InstallLog.Append(InstallRecord{Device: in.Device, App: in.App, Day: in.Day})
	}
	w.restored = cp
	return nil
}
