package sim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stream"
)

// seekSegmentBytes forces several segment rotations inside the micro
// world's ~12-day log, so the seek tests cover segment boundaries without
// needing a scale-sized run.
const seekSegmentBytes = 8 << 10

// loggedRunSeg is loggedRun with a segment-rotation threshold applied to
// the writer before the run starts.
func loggedRunSeg(t *testing.T, cfg Config, o RunOptions, segBytes int64) ([]byte, RunStats, *World) {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log, err := w.NewRunLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.SetSegmentBytes(segBytes)
	o.Log = log
	stats, err := w.RunOpts(o)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats, w
}

// TestSegmentedRunLogIdenticalAcrossWorkerCounts extends the byte-identity
// contract to segmented logs: rotation decisions depend only on
// deterministic offsets, so segment frames (embedded checkpoints
// included) must land identically for any worker count.
func TestSegmentedRunLogIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := microConfig()
	cfg.Workers = 1
	serial, serialStats, _ := loggedRunSeg(t, cfg, RunOptions{}, seekSegmentBytes)
	cfg.Workers = 5
	parallel, parallelStats, _ := loggedRunSeg(t, cfg, RunOptions{}, seekSegmentBytes)
	if serialStats != parallelStats {
		t.Errorf("stats differ across worker counts: %+v vs %+v", serialStats, parallelStats)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("segmented log bytes differ across worker counts (%d vs %d bytes)", len(serial), len(parallel))
	}
	idx, err := stream.ScanIndex(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Segments) < 2 {
		t.Fatalf("only %d segment(s) at a %d-byte threshold; test world too small to exercise rotation", len(idx.Segments), seekSegmentBytes)
	}
}

// TestReplayDayMatchesCheckpoints is the seek-correctness golden: for
// every day of a segmented run, ReplayDay must rebuild the exact
// store/ledger snapshots and cumulative stats the live run checkpointed
// at that day's barrier — while only applying one segment's events.
func TestReplayDayMatchesCheckpoints(t *testing.T) {
	cfg := microConfig()
	var cps []*stream.Checkpoint
	logBytes, stats, _ := loggedRunSeg(t, cfg, RunOptions{
		CheckpointEvery: 1,
		Checkpoint: func(cp *stream.Checkpoint) error {
			decoded, err := stream.DecodeCheckpoint(cp.Encode())
			if err != nil {
				return err
			}
			cps = append(cps, decoded)
			return nil
		},
	}, seekSegmentBytes)
	if len(cps) != stats.Days {
		t.Fatalf("captured %d checkpoints, want %d", len(cps), stats.Days)
	}

	// Full replay still works with segment and batch frames present.
	full, err := stream.Replay(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Days != stats.Days {
		t.Fatalf("full replay of segmented log: %d days, want %d", full.Stats.Days, stats.Days)
	}

	r := bytes.NewReader(logBytes)
	for _, cp := range cps {
		res, err := stream.ReplayDay(r, cp.Day)
		if err != nil {
			t.Fatalf("ReplayDay(%s): %v", cp.Day, err)
		}
		if int64(res.Stats.Days) != cp.Days ||
			res.Stats.OrganicInstalls != cp.OrganicInstalls ||
			res.Stats.IncentivizedInstalls != cp.IncentivizedInstalls ||
			res.Stats.CertifiedCompletions != cp.CertifiedCompletions ||
			math.Float64bits(res.Stats.RevenueUSD) != math.Float64bits(cp.RevenueUSD) {
			t.Errorf("ReplayDay(%s) stats %+v, checkpoint says days=%d organic=%d incent=%d certified=%d",
				cp.Day, res.Stats, cp.Days, cp.OrganicInstalls, cp.IncentivizedInstalls, cp.CertifiedCompletions)
		}
		if !bytes.Equal(res.Store.EncodeSnapshot(), cp.Store) {
			t.Errorf("ReplayDay(%s): store snapshot differs from checkpoint", cp.Day)
		}
		if !bytes.Equal(res.Ledger.EncodeSnapshot(), cp.Ledger) {
			t.Errorf("ReplayDay(%s): ledger snapshot differs from checkpoint", cp.Day)
		}
	}

	// Seeking to a day before the log's window fails loudly.
	if _, err := stream.ReplayDay(r, cps[len(cps)-1].Day.AddDays(5)); err == nil {
		t.Error("ReplayDay beyond the log succeeded, want error")
	}
}

// TestTailSeekToDayOnRealLog seeks a tail into the middle of a segmented
// run log and checks the delivered events pick up exactly at the
// requested day (crossing a segment boundary on the way).
func TestTailSeekToDayOnRealLog(t *testing.T) {
	cfg := microConfig()
	logBytes, stats, _ := loggedRunSeg(t, cfg, RunOptions{}, seekSegmentBytes)

	day := cfg.Window.Start.AddDays(stats.Days / 2)
	tail := stream.NewTail(bytes.NewReader(logBytes))
	ok, err := tail.SeekToDay(day)
	if err != nil || !ok {
		t.Fatalf("SeekToDay(%s) = %v, %v", day, ok, err)
	}
	var ev stream.Event
	days := 0
	for {
		ok, err := tail.Next(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if ev.Kind == stream.KindDayStart {
			want := day.AddDays(days)
			if ev.Day != want {
				t.Fatalf("day-start %s after seek, want %s", ev.Day, want)
			}
			days++
		}
	}
	if wantDays := stats.Days - stats.Days/2; days != wantDays {
		t.Fatalf("tail saw %d days after seeking to %s, want %d", days, day, wantDays)
	}
}

// TestResumeBitIdenticalSegmented reruns the kill/resume contract with
// segment rotation active: the checkpointed segmentation state must make
// a resumed writer place segment frames (and their embedded checkpoints)
// at the exact offsets of the uninterrupted run.
func TestResumeBitIdenticalSegmented(t *testing.T) {
	cfg := microConfig()
	var cps []*stream.Checkpoint
	liveLog, liveStats, liveWorld := loggedRunSeg(t, cfg, RunOptions{
		CheckpointEvery: 1,
		Checkpoint: func(cp *stream.Checkpoint) error {
			decoded, err := stream.DecodeCheckpoint(cp.Encode())
			if err != nil {
				return err
			}
			cps = append(cps, decoded)
			return nil
		},
	}, seekSegmentBytes)
	liveStore := liveWorld.Store.EncodeSnapshot()
	liveLedger := liveWorld.Ledger.EncodeSnapshot()

	for _, cp := range cps {
		w2, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rest bytes.Buffer
		stats2, err := w2.RunOpts(RunOptions{
			Resume: cp,
			Log:    w2.ResumeRunLog(&rest, cp),
		})
		if err != nil {
			t.Fatalf("resume from %s: %v", cp.Day, err)
		}
		if stats2 != liveStats {
			t.Errorf("resume from %s: stats %+v, want %+v", cp.Day, stats2, liveStats)
		}
		if !bytes.Equal(rest.Bytes(), liveLog[cp.LogOffset:]) {
			t.Errorf("resume from %s: remaining segmented log bytes differ (%d vs %d bytes)",
				cp.Day, rest.Len(), int64(len(liveLog))-cp.LogOffset)
		}
		if !bytes.Equal(w2.Store.EncodeSnapshot(), liveStore) {
			t.Errorf("resume from %s: final store differs", cp.Day)
		}
		if !bytes.Equal(w2.Ledger.EncodeSnapshot(), liveLedger) {
			t.Errorf("resume from %s: final ledger differs", cp.Day)
		}
	}
}

// TestSeekVsFullReplayAgreeOnLastDay pins the equivalence the seek
// benchmark relies on: state at the last day via ReplayDay equals the
// full replay's final state bit-for-bit.
func TestSeekVsFullReplayAgreeOnLastDay(t *testing.T) {
	cfg := microConfig()
	logBytes, _, _ := loggedRunSeg(t, cfg, RunOptions{}, seekSegmentBytes)

	full, err := stream.Replay(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := stream.ScanIndex(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	last, ok := idx.LastDay()
	if !ok {
		t.Fatal("no days in log")
	}
	seek, err := stream.ReplayDay(bytes.NewReader(logBytes), last)
	if err != nil {
		t.Fatal(err)
	}
	if seek.Stats != full.Stats {
		t.Errorf("seek stats %+v, full replay %+v", seek.Stats, full.Stats)
	}
	if !bytes.Equal(seek.Store.EncodeSnapshot(), full.Store.EncodeSnapshot()) {
		t.Error("seek store snapshot differs from full replay")
	}
	if !bytes.Equal(seek.Ledger.EncodeSnapshot(), full.Ledger.EncodeSnapshot()) {
		t.Error("seek ledger snapshot differs from full replay")
	}
}

// TestCompactMatchesLiveSegmentation pins the compactor's fidelity: taking
// an unsegmented live log and compacting it with threshold N produces the
// exact bytes a live run with SetSegmentBytes(N) writes — same batches,
// same rotation points, same embedded checkpoints.
func TestCompactMatchesLiveSegmentation(t *testing.T) {
	cfg := microConfig()
	plain, _, _ := loggedRun(t, cfg, RunOptions{})
	live, _, _ := loggedRunSeg(t, cfg, RunOptions{}, seekSegmentBytes)

	var out bytes.Buffer
	st, err := stream.Compact(bytes.NewReader(plain), &out, seekSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 {
		t.Fatal("compaction produced no segment frames at a threshold the live run rotates at")
	}
	if !bytes.Equal(out.Bytes(), live) {
		t.Fatalf("compacted log (%d bytes) differs from live segmented log (%d bytes)", out.Len(), len(live))
	}
}
