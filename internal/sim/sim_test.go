package sim

import (
	"math"
	"testing"

	"repro/internal/iip"
	"repro/internal/offers"
)

func buildTiny(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldStructure(t *testing.T) {
	w := buildTiny(t)
	cfg := w.Cfg
	if len(w.Advertised) != cfg.TotalAdvertised {
		t.Errorf("advertised = %d, want %d", len(w.Advertised), cfg.TotalAdvertised)
	}
	if len(w.Campaigns) != cfg.OffersTarget {
		t.Errorf("campaigns = %d, want %d", len(w.Campaigns), cfg.OffersTarget)
	}
	if len(w.Baseline) != cfg.BaselineApps {
		t.Errorf("baseline = %d", len(w.Baseline))
	}
	wantApps := cfg.BaselineApps + cfg.BackgroundApps + cfg.TotalAdvertised
	if got := w.Store.NumApps(); got != wantApps {
		t.Errorf("store apps = %d, want %d", got, wantApps)
	}
	// Per-IIP slot counts are honored.
	perIIP := map[string]int{}
	for _, a := range w.Advertised {
		for _, n := range a.IIPs {
			perIIP[n]++
		}
	}
	for name, want := range cfg.AppsPerIIP {
		if perIIP[name] != want {
			t.Errorf("%s apps = %d, want %d", name, perIIP[name], want)
		}
	}
	// Every advertised app has an APK; baseline too.
	for _, a := range w.Advertised {
		if _, ok := w.APKs[a.Package]; !ok {
			t.Errorf("missing APK for %s", a.Package)
		}
	}
	for _, pkg := range w.Baseline {
		if _, ok := w.APKs[pkg]; !ok {
			t.Errorf("missing baseline APK for %s", pkg)
		}
	}
	// Worker pools exist for all 7 IIPs.
	if len(w.Pools) != 7 {
		t.Errorf("pools = %d, want 7", len(w.Pools))
	}
}

func TestWorldDeterminism(t *testing.T) {
	w1 := buildTiny(t)
	w2 := buildTiny(t)
	if len(w1.Campaigns) != len(w2.Campaigns) {
		t.Fatal("campaign counts differ")
	}
	for i := range w1.Campaigns {
		a, b := w1.Campaigns[i], w2.Campaigns[i]
		if a.OfferID != b.OfferID || a.App != b.App || a.Spec.Description != b.Spec.Description ||
			a.Spec.UserPayoutUSD != b.Spec.UserPayoutUSD || a.DailyUptake != b.DailyUptake {
			t.Fatalf("campaign %d differs: %+v vs %+v", i, a, b)
		}
	}
	s1, err := w1.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("run stats differ: %+v vs %+v", s1, s2)
	}
}

func TestRunDeliversAndConserves(t *testing.T) {
	w := buildTiny(t)
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IncentivizedInstalls == 0 {
		t.Error("no incentivized installs delivered")
	}
	if stats.OrganicInstalls == 0 {
		t.Error("no organic installs")
	}
	if stats.CertifiedCompletions == 0 {
		t.Error("no certified completions")
	}
	// Certifications track deliveries one-to-one.
	if stats.CertifiedCompletions != stats.IncentivizedInstalls {
		t.Errorf("certified %d != delivered %d", stats.CertifiedCompletions, stats.IncentivizedInstalls)
	}
	// Money is conserved across the entire economy.
	if got := w.Ledger.Sum(); math.Abs(got) > 1e-6 {
		t.Errorf("ledger sum = %g, want 0", got)
	}
	// Users actually earned money.
	earned := 0.0
	for _, pool := range w.Pools {
		for _, worker := range pool {
			earned += w.Ledger.Balance("user:" + worker.ID)
		}
	}
	if earned <= 0 {
		t.Error("workers earned nothing")
	}
}

func TestOfferTypeMixMatchesTable3(t *testing.T) {
	w, err := NewWorld(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[offers.Type]int{}
	for _, c := range w.Campaigns {
		counts[c.Spec.Type]++
	}
	total := float64(len(w.Campaigns))
	noAct := float64(counts[offers.NoActivity]) / total
	if math.Abs(noAct-0.47) > 0.06 {
		t.Errorf("no-activity share = %.3f, want ~0.47", noAct)
	}
	usage := float64(counts[offers.Usage]) / total
	if math.Abs(usage-0.37) > 0.06 {
		t.Errorf("usage share = %.3f, want ~0.37", usage)
	}
	purchase := float64(counts[offers.Purchase]) / total
	if math.Abs(purchase-0.05) > 0.03 {
		t.Errorf("purchase share = %.3f, want ~0.05", purchase)
	}
	// RankApp is 100% no-activity (Table 4).
	for _, c := range w.Campaigns {
		if c.IIP == iip.RankApp && c.Spec.Type != offers.NoActivity {
			t.Fatalf("RankApp carried an activity offer: %+v", c.Spec)
		}
	}
}

func TestCampaignWindowsInsideStudy(t *testing.T) {
	w := buildTiny(t)
	for _, c := range w.Campaigns {
		if c.Spec.Window.Start < w.Cfg.Window.Start || c.Spec.Window.End > w.Cfg.Window.End {
			t.Fatalf("campaign window %v outside study %v", c.Spec.Window, w.Cfg.Window)
		}
		if c.Spec.Window.Days() < 1 {
			t.Fatalf("empty campaign window: %v", c.Spec.Window)
		}
	}
}

func TestDescriptionsMatchGroundTruth(t *testing.T) {
	w := buildTiny(t)
	cls := offers.RuleClassifier{}
	for _, c := range w.Campaigns {
		if got := cls.Classify(c.Spec.Description); got != c.Spec.Type {
			t.Fatalf("description %q classifies as %v, truth %v", c.Spec.Description, got, c.Spec.Type)
		}
		if c.Spec.Arbitrage != offers.IsArbitrage(c.Spec.Description) {
			t.Fatalf("arbitrage flag mismatch for %q", c.Spec.Description)
		}
	}
}

func TestVettedUnvettedPartition(t *testing.T) {
	if !IsVetted(iip.Fyber) || IsVetted(iip.RankApp) {
		t.Error("IsVetted misclassifies")
	}
	w := buildTiny(t)
	for _, a := range w.Advertised {
		if !a.OnVetted() && !a.OnUnvetted() {
			t.Errorf("app %s on no platform class", a.Package)
		}
	}
}

func TestAdvertisedLookupAndAffiliates(t *testing.T) {
	w := buildTiny(t)
	a := w.Advertised[0]
	got, ok := w.AdvertisedByPackage(a.Package)
	if !ok || got != a {
		t.Error("AdvertisedByPackage failed")
	}
	if _, ok := w.AdvertisedByPackage("no.such.app"); ok {
		t.Error("unknown package should miss")
	}
	// Fyber is integrated by 5 of the 8 instrumented affiliates.
	if got := len(w.AffiliatesForIIP(iip.Fyber)); got != 5 {
		t.Errorf("Fyber affiliates = %d, want 5", got)
	}
	if got := len(w.AffiliatesForIIP("NoSuchIIP")); got != 0 {
		t.Errorf("unknown IIP affiliates = %d", got)
	}
}

func TestPlatformsSortedOrder(t *testing.T) {
	w := buildTiny(t)
	ps := w.PlatformsSorted()
	if len(ps) != 7 {
		t.Fatalf("platforms = %d", len(ps))
	}
	for i, name := range iip.StandardNames {
		if ps[i].Name != name {
			t.Errorf("platform %d = %s, want %s", i, ps[i].Name, name)
		}
	}
}
