package sim

import (
	"bufio"
	"fmt"
	"io"
	"iter"
	"os"

	"repro/internal/dates"
	"repro/internal/stream"
)

// InstallLog is the store-side device-resolved install stream. By default
// every record stays in RAM, exactly like the plain slice it replaces. For
// massive worlds EnableSpill bounds the resident tail: once the in-RAM
// window fills, it is flushed to an anonymous temp file in the v3 run-log
// format (CRC-framed day markers plus record-mode install batches, the
// same frames the event log uses), so peak memory is O(window) while the
// logical stream — Len, All, the checkpoint contents, the golden hashes —
// is byte-for-byte what the unbounded log would hold.
//
// The type is not safe for concurrent use; the engine appends only at day
// barriers, on one goroutine, and readers run between days or post-run.
type InstallLog struct {
	mem     []InstallRecord // resident tail (the whole log when not spilling)
	spilled int             // records already flushed to the spill file

	window int    // spill threshold; 0 = unbounded in-RAM log
	dir    string // spill directory ("" = os.TempDir())

	w       *stream.Writer
	bw      *bufio.Writer
	f       *os.File // write handle; the path is unlinked at creation
	rf      *os.File // independent read handle for All iterations
	enc     stream.Encoder
	lastDay dates.Date
	haveDay bool
	err     error // sticky: first spill I/O failure
}

// Len returns the total number of records appended (spilled + resident).
func (l *InstallLog) Len() int { return l.spilled + len(l.mem) }

// Err returns the sticky spill I/O failure, if any. Appends never fail
// individually; the engine checks once per day barrier.
func (l *InstallLog) Err() error { return l.err }

// EnableSpill bounds the resident tail at window records, spilling older
// records to a temp file under dir ("" = the system temp directory). Call
// before the first append; enabling on a log that already spilled is a
// no-op error.
func (l *InstallLog) EnableSpill(dir string, window int) error {
	if window <= 0 {
		return fmt.Errorf("sim: install-log spill window must be positive, got %d", window)
	}
	if l.w != nil {
		return fmt.Errorf("sim: install log is already spilling")
	}
	l.window, l.dir = window, dir
	return nil
}

// Spilling reports whether a spill window is configured.
func (l *InstallLog) Spilling() bool { return l.window > 0 }

// Append adds records in order. In spill mode the resident tail is flushed
// whenever it reaches the window, so one call may spill mid-batch and a
// burst larger than the window never holds more than window records in
// RAM.
func (l *InstallLog) Append(recs ...InstallRecord) {
	if l.window <= 0 {
		l.mem = append(l.mem, recs...)
		return
	}
	for len(recs) > 0 {
		room := l.window - len(l.mem)
		if room > len(recs) {
			room = len(recs)
		}
		l.mem = append(l.mem, recs[:room]...)
		recs = recs[room:]
		if len(l.mem) >= l.window {
			l.flush()
		}
	}
}

// Reserve pre-grows the resident tail for an append of need records when
// its spare capacity is short, sizing the new backing array for est total
// records (the engine's remaining-window estimate). Spill mode caps the
// reservation at the window — the tail never grows past it.
func (l *InstallLog) Reserve(need, est int) {
	if l.window > 0 {
		if cap(l.mem) < l.window {
			grown := make([]InstallRecord, len(l.mem), l.window)
			copy(grown, l.mem)
			l.mem = grown
		}
		return
	}
	if cap(l.mem)-len(l.mem) >= need {
		return
	}
	if est < l.spilled+len(l.mem)+need {
		est = l.spilled + len(l.mem) + need
	}
	grown := make([]InstallRecord, len(l.mem), est-l.spilled)
	copy(grown, l.mem)
	l.mem = grown
}

// All ranges over every record in append order: the spilled prefix
// streamed back from disk, then the resident tail. Check Err after a full
// iteration when spilling — a read failure ends the sequence early.
func (l *InstallLog) All() iter.Seq[InstallRecord] {
	return func(yield func(InstallRecord) bool) {
		if l.spilled > 0 && !l.iterSpill(yield) {
			return
		}
		for _, rec := range l.mem {
			if !yield(rec) {
				return
			}
		}
	}
}

// Slice returns the log as one contiguous slice. When nothing has spilled
// this is the resident tail itself (no copy — callers must not modify);
// a spilled log is materialized, which costs O(run) memory and defeats
// the spill bound, so hot paths should range All instead.
func (l *InstallLog) Slice() []InstallRecord {
	if l.spilled == 0 {
		return l.mem
	}
	out := make([]InstallRecord, 0, l.Len())
	for rec := range l.All() {
		out = append(out, rec)
	}
	return out
}

// Reset discards every record (spilled state included) and reserves
// capacity for n records, clamped to the window when spilling. Restore
// uses it to rebuild the log from a checkpoint.
func (l *InstallLog) Reset(n int) {
	l.mem = l.mem[:0]
	l.spilled = 0
	l.haveDay = false
	if l.w != nil {
		// Rewind the unlinked spill file and start a fresh log on it.
		l.bw.Reset(io.Discard) // drop unflushed frames of the old log
		if err := l.f.Truncate(0); err == nil {
			_, err = l.f.Seek(0, io.SeekStart)
			if err != nil && l.err == nil {
				l.err = fmt.Errorf("sim: resetting install-log spill: %w", err)
			}
		} else if l.err == nil {
			l.err = fmt.Errorf("sim: resetting install-log spill: %w", err)
		}
		l.bw.Reset(l.f)
		l.w = nil // recreated (with a fresh preamble) at the next flush
	}
	if l.window > 0 && n > l.window {
		n = l.window
	}
	if cap(l.mem) < n {
		l.mem = make([]InstallRecord, 0, n)
	}
}

// Close releases the spill file handles. Safe on a log that never spilled.
func (l *InstallLog) Close() error {
	var first error
	if l.f != nil {
		if l.w != nil && l.w.Err() == nil {
			first = l.bw.Flush()
		}
		if err := l.f.Close(); first == nil {
			first = err
		}
		l.f, l.bw, l.w = nil, nil, nil
	}
	if l.rf != nil {
		if err := l.rf.Close(); first == nil {
			first = err
		}
		l.rf = nil
	}
	return first
}

// open creates the spill file (unlinked immediately, so a crashed run
// leaks nothing) and writes the v3 preamble: magic, a minimal header, and
// an empty base frame. No device or string tables — install frames inline
// their strings, which keeps the spill self-contained.
func (l *InstallLog) open() error {
	dir := l.dir
	if dir == "" {
		dir = os.TempDir()
	}
	if l.f == nil {
		f, err := os.CreateTemp(dir, "installog-*.spill")
		if err != nil {
			return fmt.Errorf("sim: creating install-log spill: %w", err)
		}
		rf, err := os.Open(f.Name())
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("sim: opening install-log spill: %w", err)
		}
		os.Remove(f.Name())
		l.f, l.rf = f, rf
		l.bw = bufio.NewWriterSize(f, 1<<16)
		l.enc.SetRecordMode(true)
	}
	w, err := stream.NewWriter(l.bw, stream.Header{Version: stream.Version}, stream.Base{})
	if err != nil {
		return fmt.Errorf("sim: starting install-log spill: %w", err)
	}
	l.w = w
	return nil
}

// spillChunkBytes caps one event-batch frame of spilled installs; flushes
// larger than this split into multiple frames.
const spillChunkBytes = 1 << 20

// flush appends the resident tail to the spill file and empties it. Day
// markers are emitted exactly at day changes, so the reader recovers each
// record's day from the enclosing frame just like the run log proper.
func (l *InstallLog) flush() {
	if l.err != nil {
		l.mem = l.mem[:0] // failed spill: keep memory bounded anyway
		return
	}
	if l.w == nil {
		if err := l.open(); err != nil {
			l.err = err
			l.mem = l.mem[:0]
			return
		}
	}
	for i := 0; i < len(l.mem); {
		day := l.mem[i].Day
		if !l.haveDay || day != l.lastDay {
			l.w.DayStart(day)
			l.lastDay, l.haveDay = day, true
		}
		l.enc.Reset()
		for i < len(l.mem) && l.mem[i].Day == day && l.enc.Len() < spillChunkBytes {
			rec := &l.mem[i]
			l.enc.Install(rec.App, rec.Device, 0)
			i++
		}
		l.w.EventBatch(l.enc.Bytes())
	}
	if err := l.w.Err(); err != nil && l.err == nil {
		l.err = err
	}
	l.spilled += len(l.mem)
	l.mem = l.mem[:0]
}

// iterSpill streams the spilled prefix back from disk. The write buffer is
// flushed first so the read handle sees every frame; the read uses an
// independent section reader, so iterating never perturbs the writer.
func (l *InstallLog) iterSpill(yield func(InstallRecord) bool) bool {
	if l.err != nil {
		return true // records lost to a failed spill; surface via Err
	}
	if err := l.bw.Flush(); err != nil {
		l.err = fmt.Errorf("sim: flushing install-log spill: %w", err)
		return true
	}
	sec := io.NewSectionReader(l.rf, 0, l.w.Offset())
	r, err := stream.NewReader(sec)
	if err != nil {
		l.err = fmt.Errorf("sim: reading install-log spill: %w", err)
		return true
	}
	var ev stream.Event
	var day dates.Date
	for n := 0; n < l.spilled; {
		if err := r.Next(&ev); err != nil {
			l.err = fmt.Errorf("sim: reading install-log spill: %w", err)
			return true
		}
		switch ev.Kind {
		case stream.KindDayStart:
			day = ev.Day
		case stream.KindInstall:
			if !yield(InstallRecord{Device: ev.Device, App: ev.Pkg, Day: day}) {
				return false
			}
			n++
		}
	}
	return true
}
