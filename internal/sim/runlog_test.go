package sim

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"repro/internal/iip"
	"repro/internal/playstore"
	"repro/internal/stream"
)

// microConfig is a further-shrunken world for the resume matrix: the
// kill-at-every-day test replays O(days^2 / 2) simulated days, so the
// window and catalog stay small while every subsystem (all seven IIPs,
// batch and full-fidelity deliveries, enforcement, charts) stays active.
func microConfig() Config {
	cfg := TinyConfig()
	cfg.BaselineApps = 12
	cfg.BackgroundApps = 18
	cfg.AppsPerIIP = map[string]int{
		iip.RankApp:      4,
		iip.AyetStudios:  8,
		iip.Fyber:        8,
		iip.AdscendMedia: 3,
		iip.AdGem:        2,
		iip.HangMyAds:    2,
		iip.OfferToro:    4,
	}
	cfg.TotalAdvertised = 24
	cfg.OffersTarget = 50
	cfg.WorkerPoolSize = 60
	cfg.ChartSize = 10
	cfg.Window.End = cfg.Window.Start.AddDays(11)
	return cfg
}

// loggedRun executes a fresh world with an event log attached, returning
// the log bytes, the stats, and the world for state comparison.
func loggedRun(t *testing.T, cfg Config, o RunOptions) ([]byte, RunStats, *World) {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log, err := w.NewRunLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	o.Log = log
	stats, err := w.RunOpts(o)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats, w
}

// TestRunLogIdenticalAcrossWorkerCounts extends the engine's determinism
// contract to the event log: the bytes on disk are bit-identical no
// matter how many workers produced them.
func TestRunLogIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := microConfig()
	cfg.Workers = 1
	serial, serialStats, _ := loggedRun(t, cfg, RunOptions{})
	cfg.Workers = 5
	parallel, parallelStats, _ := loggedRun(t, cfg, RunOptions{})
	if serialStats != parallelStats {
		t.Errorf("stats differ across worker counts: %+v vs %+v", serialStats, parallelStats)
	}
	if !bytes.Equal(serial, parallel) {
		for i := range serial {
			if i >= len(parallel) || serial[i] != parallel[i] {
				t.Fatalf("log bytes diverge at offset %d of %d/%d", i, len(serial), len(parallel))
			}
		}
		t.Fatalf("log lengths differ: %d vs %d", len(serial), len(parallel))
	}
}

// TestReplayMatchesLive is the replay-equivalence golden: a logged
// TinyConfig run is rebuilt from the log alone, and the result must
// reproduce the live run bit-for-bit — including the PR-1/PR-2 golden
// constants (RunStats, install log, transaction sequence, balances,
// charts) and byte-identical store/ledger snapshots.
func TestReplayMatchesLive(t *testing.T) {
	logBytes, stats, w := loggedRun(t, TinyConfig(), RunOptions{})

	res, err := stream.Replay(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Live equality, bit-exact and whole-state.
	if res.Stats.Days != stats.Days ||
		res.Stats.OrganicInstalls != stats.OrganicInstalls ||
		res.Stats.IncentivizedInstalls != stats.IncentivizedInstalls ||
		res.Stats.CertifiedCompletions != stats.CertifiedCompletions ||
		math.Float64bits(res.Stats.RevenueUSD) != math.Float64bits(stats.RevenueUSD) {
		t.Errorf("replayed stats %+v, live %+v", res.Stats, stats)
	}
	if !bytes.Equal(res.Store.EncodeSnapshot(), w.Store.EncodeSnapshot()) {
		t.Error("replayed store snapshot differs from live store")
	}
	if !bytes.Equal(res.Ledger.EncodeSnapshot(), w.Ledger.EncodeSnapshot()) {
		t.Error("replayed ledger snapshot differs from live ledger")
	}
	live := w.InstallLog.Slice()
	if len(res.Installs) != len(live) {
		t.Fatalf("replayed install log has %d records, live %d", len(res.Installs), len(live))
	}
	for i := range res.Installs {
		rec := InstallRecord{Device: res.Installs[i].Device, App: res.Installs[i].App, Day: res.Installs[i].Day}
		if rec != live[i] {
			t.Fatalf("install log diverges at %d: %+v vs %+v", i, rec, live[i])
		}
	}

	// Golden equality: the same constants the storage-refactor equivalence
	// test locks (TinyConfig, default seed), recomputed from the replayed
	// state alone.
	check := func(what string, got, want uint64) {
		if got != want {
			t.Errorf("replayed %s = %#x, want golden %#x", what, got, want)
		}
	}
	check("days", uint64(res.Stats.Days), goldenDays)
	check("organic installs", uint64(res.Stats.OrganicInstalls), goldenOrganic)
	check("incentivized installs", uint64(res.Stats.IncentivizedInstalls), goldenIncentivized)
	check("certified completions", uint64(res.Stats.CertifiedCompletions), goldenCertified)
	check("revenue bits", math.Float64bits(res.Stats.RevenueUSD), goldenRevenueBits)

	installHash := newFnv()
	for _, rec := range res.Installs {
		installHash.str(rec.Device)
		installHash.str(rec.App)
		installHash.u64(uint64(rec.Day))
	}
	check("install log length", uint64(len(res.Installs)), goldenInstallLogLen)
	check("install log hash", uint64(installHash), goldenInstallLogHash)

	txHash := newFnv()
	for _, tx := range res.Ledger.Transactions() {
		txHash.str(tx.From)
		txHash.str(tx.To)
		txHash.str(tx.Memo)
		txHash.u64(math.Float64bits(tx.Amount))
	}
	check("num transactions", uint64(res.Ledger.NumTransactions()), goldenNumTxs)
	check("transaction hash", uint64(txHash), goldenTxHash)

	balances := res.Ledger.Balances()
	accounts := make([]string, 0, len(balances))
	for acct := range balances {
		accounts = append(accounts, acct)
	}
	sort.Strings(accounts)
	balHash := newFnv()
	for _, acct := range accounts {
		balHash.str(acct)
		balHash.u64(math.Float64bits(balances[acct]))
	}
	check("balances hash", uint64(balHash), goldenBalancesHash)

	wantChart := map[string][2]uint64{
		playstore.ChartTopFree:     {goldenTopFreeLen, goldenTopFreeHash},
		playstore.ChartTopGames:    {goldenTopGamesLen, goldenTopGamesHash},
		playstore.ChartTopGrossing: {goldenTopGrossingLen, goldenTopGrossingHash},
	}
	for _, name := range playstore.ChartNames {
		entries := res.Store.Chart(name)
		h := newFnv()
		for _, e := range entries {
			h.u64(uint64(e.Rank))
			h.str(e.Package)
			h.u64(math.Float64bits(e.Score))
		}
		check("chart "+name+" length", uint64(len(entries)), wantChart[name][0])
		check("chart "+name+" hash", uint64(h), wantChart[name][1])
	}
}

// TestResumeBitIdentical kills the run at every day boundary: resuming
// from each day's checkpoint must produce (a) the exact remaining event
// log bytes the uninterrupted run wrote, (b) identical final stats, and
// (c) byte-identical final store/ledger snapshots.
func TestResumeBitIdentical(t *testing.T) {
	cfg := microConfig()
	var cps []*stream.Checkpoint
	liveLog, liveStats, liveWorld := loggedRun(t, cfg, RunOptions{
		CheckpointEvery: 1,
		Checkpoint: func(cp *stream.Checkpoint) error {
			// Round-trip through the codec so the matrix also exercises
			// encode/decode of real checkpoints.
			decoded, err := stream.DecodeCheckpoint(cp.Encode())
			if err != nil {
				return err
			}
			cps = append(cps, decoded)
			return nil
		},
	})
	liveStore := liveWorld.Store.EncodeSnapshot()
	liveLedger := liveWorld.Ledger.EncodeSnapshot()
	if len(cps) != liveStats.Days {
		t.Fatalf("captured %d checkpoints, want %d", len(cps), liveStats.Days)
	}

	for _, cp := range cps {
		w2, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rest bytes.Buffer
		stats2, err := w2.RunOpts(RunOptions{
			Resume: cp,
			Log:    w2.ResumeRunLog(&rest, cp),
		})
		if err != nil {
			t.Fatalf("resume from %s: %v", cp.Day, err)
		}
		if stats2 != liveStats {
			t.Errorf("resume from %s: stats %+v, want %+v", cp.Day, stats2, liveStats)
		}
		if !bytes.Equal(rest.Bytes(), liveLog[cp.LogOffset:]) {
			t.Errorf("resume from %s: remaining log bytes differ (%d vs %d bytes)",
				cp.Day, rest.Len(), int64(len(liveLog))-cp.LogOffset)
		}
		if !bytes.Equal(w2.Store.EncodeSnapshot(), liveStore) {
			t.Errorf("resume from %s: final store differs", cp.Day)
		}
		if !bytes.Equal(w2.Ledger.EncodeSnapshot(), liveLedger) {
			t.Errorf("resume from %s: final ledger differs", cp.Day)
		}
	}

	// The killed-run story end to end: a log truncated at a checkpoint
	// boundary plus the resumed suffix replays cleanly.
	mid := cps[len(cps)/2]
	w3, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rest bytes.Buffer
	if _, err := w3.RunOpts(RunOptions{Resume: mid, Log: w3.ResumeRunLog(&rest, mid)}); err != nil {
		t.Fatal(err)
	}
	stitched := append(append([]byte(nil), liveLog[:mid.LogOffset]...), rest.Bytes()...)
	res, err := stream.Replay(bytes.NewReader(stitched))
	if err != nil {
		t.Fatalf("replaying stitched log: %v", err)
	}
	if int64(res.Stats.OrganicInstalls) != liveStats.OrganicInstalls || res.Stats.Days != liveStats.Days {
		t.Errorf("stitched replay stats %+v, want %+v", res.Stats, liveStats)
	}
}

// TestRunLogDisabledIsNoop guards the zero-overhead path: a run without a
// log writer produces identical results to one with it (the log changes
// nothing observable) and the engine allocates no encoders.
func TestRunLogDisabledIsNoop(t *testing.T) {
	cfg := microConfig()
	_, loggedStats, loggedWorld := loggedRun(t, cfg, RunOptions{})
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats != loggedStats {
		t.Errorf("logging changed run stats: %+v vs %+v", stats, loggedStats)
	}
	if !bytes.Equal(w.Store.EncodeSnapshot(), loggedWorld.Store.EncodeSnapshot()) {
		t.Error("logging changed store state")
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint from a different
// config/seed must fail loudly, not resume silently wrong.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	cfg := microConfig()
	var cps []*stream.Checkpoint
	_, _, _ = loggedRun(t, cfg, RunOptions{
		CheckpointEvery: 1,
		Checkpoint: func(cp *stream.Checkpoint) error {
			if len(cps) == 0 {
				cps = append(cps, cp)
			}
			return nil
		},
	})
	other := microConfig()
	other.Seed = cfg.Seed + 1
	w, err := NewWorld(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunOpts(RunOptions{Resume: cps[0]}); err == nil {
		t.Error("resuming a different world from this checkpoint must fail")
	}
}

// TestResumeTwiceFromSameCheckpoint: a world object reused for a second
// resume from the same checkpoint must restore afresh (not replay days on
// top of the first resume's mutations) — the retry-after-failure path.
func TestResumeTwiceFromSameCheckpoint(t *testing.T) {
	cfg := microConfig()
	var cp *stream.Checkpoint
	_, liveStats, _ := loggedRun(t, cfg, RunOptions{
		CheckpointEvery: 5,
		Checkpoint: func(c *stream.Checkpoint) error {
			cp = c
			return nil
		},
	})
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats1, err := w.RunOpts(RunOptions{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	snap1 := w.Store.EncodeSnapshot()
	stats2, err := w.RunOpts(RunOptions{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if stats1 != liveStats || stats2 != stats1 {
		t.Errorf("stats: live %+v, first resume %+v, second resume %+v", liveStats, stats1, stats2)
	}
	if !bytes.Equal(w.Store.EncodeSnapshot(), snap1) {
		t.Error("second resume from the same checkpoint diverged (stale restore marker?)")
	}
}
