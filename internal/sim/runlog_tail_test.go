package sim

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dates"
	"repro/internal/lockstep"
	"repro/internal/stream"
)

// TestTailFeedsLockstepOnline runs a world with the event log on a real
// file while a tail consumer follows it day by day, feeding the
// incremental lockstep detector exactly as an out-of-process analytics
// job would. The online result must match the post-hoc batch detector
// over the same install stream, and detections must form while the run is
// still executing (the Section 5.2 "during the run" property).
func TestTailFeedsLockstepOnline(t *testing.T) {
	cfg := microConfig()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := w.NewRunLog(f)
	if err != nil {
		t.Fatal(err)
	}

	tail := stream.NewTail(f)
	det := lockstep.NewDetector(lockstep.DefaultConfig())
	var (
		ev             stream.Event
		curDay         dates.Date
		daysDrained    int
		firstDetection dates.Date = -1
	)
	drain := func() error {
		for {
			ok, err := tail.Next(&ev)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			switch ev.Kind {
			case stream.KindDayStart:
				curDay = ev.Day
			case stream.KindInstall:
				det.Ingest(ev.Device, ev.Pkg, curDay)
			case stream.KindInstallBatch:
				for _, dev := range ev.Devices {
					det.Ingest(dev, ev.Pkg, curDay)
				}
			}
		}
	}
	_, err = w.RunOpts(RunOptions{Log: log, Hook: func(day dates.Date) error {
		if err := drain(); err != nil {
			return err
		}
		daysDrained++
		if curDay != day {
			t.Errorf("tail lags: saw day %s inside hook for %s", curDay, day)
		}
		if firstDetection < 0 && len(det.Groups()) > 0 {
			firstDetection = day
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if daysDrained != cfg.Window.Days() {
		t.Errorf("drained %d days, want %d", daysDrained, cfg.Window.Days())
	}
	if firstDetection < 0 {
		t.Fatal("no lockstep groups formed during the run")
	}
	if firstDetection > cfg.Window.End {
		t.Errorf("first detection only after the window: %s", firstDetection)
	}

	// Online == post-hoc: the batch detector over the world's own install
	// log must report exactly the same groups.
	events := make([]lockstep.Event, w.InstallLog.Len())
	for i, rec := range w.InstallLog.Slice() {
		events[i] = lockstep.Event{Device: rec.Device, App: rec.App, Day: rec.Day}
	}
	want := lockstep.Detect(events, lockstep.DefaultConfig())
	got := det.Groups()
	if len(got) != len(want) {
		t.Fatalf("online found %d groups, batch %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Devices) != len(want[i].Devices) {
			t.Fatalf("group %d: %d devices online vs %d batch", i, len(got[i].Devices), len(want[i].Devices))
		}
		for j := range want[i].Devices {
			if got[i].Devices[j] != want[i].Devices[j] {
				t.Fatalf("group %d member %d differs: %s vs %s", i, j, got[i].Devices[j], want[i].Devices[j])
			}
		}
	}
}
