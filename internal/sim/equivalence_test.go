package sim

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/playstore"
)

// The goldens below were captured from the seed engine (map-based per-app
// day storage, full-sort chart ranking) at PR 1, running TinyConfig with
// the default seed. The dense-storage/top-K refactor must reproduce every
// one of them bit-for-bit: same RunStats (RevenueUSD to the bit), same
// charts (ranks, packages, score bits), same install log, and the same
// ledger transaction sequence and balances. Regenerate with:
//
//	go test ./internal/sim/ -run TestStorageRefactorEquivalence -v -print-goldens
const (
	goldenDays            = 41
	goldenOrganic         = 314091172
	goldenIncentivized    = 324114
	goldenCertified       = 324114
	goldenRevenueBits     = 0x41835ab289197188
	goldenInstallLogLen   = 324114
	goldenInstallLogHash  = 0x25c90634a020219b
	goldenNumTxs          = 78024
	goldenTxHash          = 0x8f6bbb453a6b9bc1
	goldenBalancesHash    = 0x40bab5e4f06b0fd9
	goldenTopFreeLen      = 18
	goldenTopFreeHash     = 0x70862ffa8b463ebd
	goldenTopGamesLen     = 18
	goldenTopGamesHash    = 0x0f5fd4fbb9464b70
	goldenTopGrossingLen  = 18
	goldenTopGrossingHash = 0x7567a4241d7f54e7
)

var printGoldens = flag.Bool("print-goldens", false, "print current equivalence goldens")

// fnvMix is a tiny order-sensitive FNV-1a accumulator shared by the
// equivalence digests.
type fnvMix uint64

func newFnv() fnvMix { return 0xcbf29ce484222325 }

func (h *fnvMix) str(s string) {
	const prime = 0x100000001b3
	for i := 0; i < len(s); i++ {
		*h ^= fnvMix(s[i])
		*h *= prime
	}
	*h ^= '|'
	*h *= prime
}

func (h *fnvMix) u64(v uint64) {
	const prime = 0x100000001b3
	*h ^= fnvMix(v)
	*h *= prime
}

// TestStorageRefactorEquivalence locks the simulated world's observable
// output to the seed engine: any storage or chart-selection change that
// alters a single float bit, rank, or transaction shows up here.
func TestStorageRefactorEquivalence(t *testing.T) {
	w, err := NewWorld(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}

	installHash := newFnv()
	for rec := range w.InstallLog.All() {
		installHash.str(rec.Device)
		installHash.str(rec.App)
		installHash.u64(uint64(rec.Day))
	}
	txHash := newFnv()
	for _, tx := range w.Ledger.Transactions() {
		txHash.str(tx.From)
		txHash.str(tx.To)
		txHash.str(tx.Memo)
		txHash.u64(math.Float64bits(tx.Amount))
	}
	balances := w.Ledger.Balances()
	accounts := make([]string, 0, len(balances))
	for acct := range balances {
		accounts = append(accounts, acct)
	}
	sort.Strings(accounts)
	balHash := newFnv()
	for _, acct := range accounts {
		balHash.str(acct)
		balHash.u64(math.Float64bits(balances[acct]))
	}
	chartHash := map[string]fnvMix{}
	chartLen := map[string]int{}
	for _, name := range playstore.ChartNames {
		h := newFnv()
		entries := w.Store.Chart(name)
		for _, e := range entries {
			h.u64(uint64(e.Rank))
			h.str(e.Package)
			h.u64(math.Float64bits(e.Score))
		}
		chartHash[name] = h
		chartLen[name] = len(entries)
	}

	if *printGoldens {
		t.Logf("goldenDays            = %d", stats.Days)
		t.Logf("goldenOrganic         = %d", stats.OrganicInstalls)
		t.Logf("goldenIncentivized    = %d", stats.IncentivizedInstalls)
		t.Logf("goldenCertified       = %d", stats.CertifiedCompletions)
		t.Logf("goldenRevenueBits     = %#x", math.Float64bits(stats.RevenueUSD))
		t.Logf("goldenInstallLogLen   = %d", w.InstallLog.Len())
		t.Logf("goldenInstallLogHash  = %#x", uint64(installHash))
		t.Logf("goldenNumTxs          = %d", w.Ledger.NumTransactions())
		t.Logf("goldenTxHash          = %#x", uint64(txHash))
		t.Logf("goldenBalancesHash    = %#x", uint64(balHash))
		for _, name := range playstore.ChartNames {
			t.Logf("golden %-14s len = %d hash = %#x", name, chartLen[name], uint64(chartHash[name]))
		}
	}

	check := func(what string, got, want uint64) {
		if got != want {
			t.Errorf("%s = %#x, want %#x (storage refactor changed observable output)", what, got, want)
		}
	}
	check("days", uint64(stats.Days), goldenDays)
	check("organic installs", uint64(stats.OrganicInstalls), goldenOrganic)
	check("incentivized installs", uint64(stats.IncentivizedInstalls), goldenIncentivized)
	check("certified completions", uint64(stats.CertifiedCompletions), goldenCertified)
	check("revenue bits", math.Float64bits(stats.RevenueUSD), goldenRevenueBits)
	check("install log length", uint64(w.InstallLog.Len()), goldenInstallLogLen)
	check("install log hash", uint64(installHash), goldenInstallLogHash)
	check("num transactions", uint64(w.Ledger.NumTransactions()), goldenNumTxs)
	check("transaction hash", uint64(txHash), goldenTxHash)
	check("balances hash", uint64(balHash), goldenBalancesHash)
	wantChart := map[string][2]uint64{
		playstore.ChartTopFree:     {goldenTopFreeLen, goldenTopFreeHash},
		playstore.ChartTopGames:    {goldenTopGamesLen, goldenTopGamesHash},
		playstore.ChartTopGrossing: {goldenTopGrossingLen, goldenTopGrossingHash},
	}
	for _, name := range playstore.ChartNames {
		check(fmt.Sprintf("chart %s length", name), uint64(chartLen[name]), wantChart[name][0])
		check(fmt.Sprintf("chart %s hash", name), uint64(chartHash[name]), wantChart[name][1])
	}
}
