package sim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dates"
	"repro/internal/mediator"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/stream"
)

// RunStats summarizes one full simulation run.
type RunStats struct {
	Days                 int
	OrganicInstalls      int64
	IncentivizedInstalls int64
	CertifiedCompletions int64
	RevenueUSD           float64
}

// Run executes the day engine over the configured window: organic store
// activity, campaign deliveries through the mediator and ledger, and daily
// chart/enforcement steps. Run is deterministic for a given world — the
// same seed produces identical results for any Cfg.Workers setting and
// any GOMAXPROCS (see engine.go for the determinism model).
func (w *World) Run() (RunStats, error) {
	return w.RunOpts(RunOptions{})
}

// RunWithHook runs the day engine, invoking hook after each day's
// activity and chart/enforcement step. The measurement pipelines (crawler,
// offer-wall milker) attach here, observing the world exactly as the
// paper's infrastructure observed the live ecosystem.
func (w *World) RunWithHook(hook func(day dates.Date) error) (RunStats, error) {
	return w.RunOpts(RunOptions{Hook: hook})
}

// RunOptions extends a run with the event-sourced run log, day-boundary
// checkpoints, and resume (DESIGN.md E6).
type RunOptions struct {
	// Hook runs after each day's activity, chart/enforcement step, and
	// event-log flush (so a hook tailing the log observes the full day).
	Hook func(day dates.Date) error

	// Log, when non-nil, receives the framed event stream. Open it with
	// World.NewRunLog (fresh run) or stream.ResumeWriter (resumed run).
	Log *stream.Writer

	// Checkpoint, when non-nil, receives a day-boundary checkpoint every
	// CheckpointEvery days (counted from the window start, so a resumed
	// run checkpoints on the same days the original would have).
	Checkpoint      func(cp *stream.Checkpoint) error
	CheckpointEvery int // days between checkpoints; <= 0 means every day

	// Resume continues a killed run from a checkpoint: world state is
	// restored, every engine stream is fast-forwarded, and the day loop
	// starts after the checkpointed day. The world must have been built
	// from the same Config as the checkpointed run. With Log attached via
	// stream.ResumeWriter at the checkpoint's LogOffset, the remaining
	// event log is byte-identical to what the uninterrupted run would
	// have written.
	Resume *stream.Checkpoint

	// Metrics, when non-nil, attaches run instrumentation (NewMetrics):
	// per-day phase timings, event counts, checkpoint latency, and trace
	// spans. Observation only — the engine never reads it, so metrics on
	// vs off produces bit-identical stats, log bytes, and checkpoints.
	Metrics *Metrics

	// Context, when non-nil, makes the run cancellable. Cancellation is
	// observed only at day barriers — after the day's frames are flushed
	// and the hook has run — so a cancelled run never stops mid-write:
	// the log ends at a day boundary, and when Checkpoint is set a final
	// checkpoint for the completed day is written (even off the
	// CheckpointEvery cadence) before the run returns an error wrapping
	// context.Canceled. A successor resumes from that checkpoint and
	// produces the exact bytes the uninterrupted run would have.
	Context context.Context
}

// RunOpts runs the day engine with the given options.
func (w *World) RunOpts(o RunOptions) (RunStats, error) {
	var stats RunStats
	start := w.Cfg.Window.Start
	if o.Resume != nil {
		if w.restored != o.Resume {
			if err := w.Restore(o.Resume); err != nil {
				return stats, err
			}
		}
		// Consume the restore marker: if this run fails mid-window and the
		// caller retries with the same checkpoint, the retry must restore
		// afresh rather than run on top of partially-applied days.
		w.restored = nil
		stats = RunStats{
			Days:                 int(o.Resume.Days),
			OrganicInstalls:      o.Resume.OrganicInstalls,
			IncentivizedInstalls: o.Resume.IncentivizedInstalls,
			CertifiedCompletions: o.Resume.CertifiedCompletions,
			RevenueUSD:           o.Resume.RevenueUSD,
		}
		start = o.Resume.Day.AddDays(1)
	}
	eng, err := newEngine(w)
	if err != nil {
		return stats, err
	}
	if o.Resume != nil {
		if err := eng.restoreStreams(o.Resume); err != nil {
			return stats, err
		}
	}
	if o.Log != nil {
		eng.enableLog(o.Log)
	}
	eng.obs = o.Metrics
	m := o.Metrics
	every := o.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	for day := start; day <= w.Cfg.Window.End; day++ {
		var dayT0, t time.Time
		if m != nil {
			dayT0 = time.Now()
		}
		if err := eng.stepDay(day, &stats); err != nil {
			return stats, err
		}
		if m != nil {
			t = time.Now()
		}
		w.Store.StepDay(day)
		if m != nil {
			t = m.phase("step-day", day, m.PhaseStepDay, t)
		}
		stats.Days++
		if o.Log != nil {
			if err := w.logDayBarrier(o.Log, day, &stats); err != nil {
				return stats, err
			}
			// Segment rotation: once the current segment exceeds the
			// writer's threshold, open the next one with an embedded
			// reduced checkpoint so seeks restore here instead of
			// replaying from the base snapshot. The decision depends only
			// on deterministic byte offsets, so segment frames land at
			// identical offsets for any worker count and across resume.
			if day < w.Cfg.Window.End && o.Log.ShouldRotate() {
				if err := o.Log.StartSegment(day.AddDays(1), w.segmentCheckpoint(day, &stats).Encode()); err != nil {
					return stats, err
				}
				if err := o.Log.Flush(); err != nil {
					return stats, err
				}
			}
			if m != nil {
				m.phase("barrier-flush", day, m.PhaseBarrier, t)
			}
		}
		if o.Hook != nil {
			if err := o.Hook(day); err != nil {
				return stats, fmt.Errorf("sim: hook on %s: %w", day, err)
			}
		}
		canceled := o.Context != nil && o.Context.Err() != nil
		due := o.Checkpoint != nil && (day.DaysSince(w.Cfg.Window.Start)+1)%every == 0
		// A cancelled run checkpoints the day it just completed even off
		// the cadence: the whole point of stopping at the barrier is that
		// a successor can resume from here.
		if due || (canceled && o.Checkpoint != nil && day < w.Cfg.Window.End) {
			var cpT0 time.Time
			if m != nil {
				cpT0 = time.Now()
			}
			var off int64
			if o.Log != nil {
				off = o.Log.Offset()
			}
			cp, err := eng.checkpoint(day, stats, off)
			if err != nil {
				return stats, err
			}
			if o.Log != nil {
				o.Log.RecordSegmentState(cp)
			}
			if err := o.Checkpoint(cp); err != nil {
				return stats, fmt.Errorf("sim: checkpoint on %s: %w", day, err)
			}
			if m != nil {
				m.Checkpoints.Inc()
				m.phase("checkpoint", day, m.CheckpointSeconds, cpT0)
			}
		}
		if m != nil {
			end := time.Now()
			m.Days.Inc()
			m.DaySeconds.Observe(end.Sub(dayT0).Seconds())
			m.Trace.Record("day", day.String(), dayT0, end.Sub(dayT0))
		}
		if canceled && day < w.Cfg.Window.End {
			return stats, fmt.Errorf("sim: run canceled at day barrier %s (%d days done): %w",
				day, stats.Days, o.Context.Err())
		}
	}
	return stats, nil
}

// logDayBarrier writes the barrier-side events of a completed day — the
// enforcement actions and charts StepDay just computed, and the
// cumulative-stats day-end line — then flushes so tail consumers observe
// whole days.
func (w *World) logDayBarrier(log *stream.Writer, day dates.Date, stats *RunStats) error {
	for _, act := range w.Store.LastEnforcementActions() {
		if err := log.Enforce(act.Package, act.Removed); err != nil {
			return err
		}
	}
	for _, name := range playstore.ChartNames {
		if err := log.Chart(name, w.Store.Chart(name)); err != nil {
			return err
		}
	}
	if err := log.DayEnd(day, stats.OrganicInstalls, stats.IncentivizedInstalls,
		stats.CertifiedCompletions, stats.RevenueUSD); err != nil {
		return err
	}
	return log.Flush()
}

// segmentCheckpoint builds the reduced checkpoint embedded in a segment
// index frame: store and ledger snapshots plus cumulative stats at the
// end of day. Unlike a full resume checkpoint it omits the mediator and
// platform blobs, the RNG streams, and the install log — a seeking
// replay needs none of them (the certified count rides as a scalar, and
// charts/enforcement recompute from the store snapshot).
func (w *World) segmentCheckpoint(day dates.Date, stats *RunStats) *stream.Checkpoint {
	return &stream.Checkpoint{
		Day:                  day,
		Days:                 int64(stats.Days),
		OrganicInstalls:      stats.OrganicInstalls,
		IncentivizedInstalls: stats.IncentivizedInstalls,
		CertifiedCompletions: stats.CertifiedCompletions,
		RevenueUSD:           stats.RevenueUSD,
		Store:                w.Store.EncodeSnapshot(),
		Ledger:               w.Ledger.EncodeSnapshot(),
	}
}

// fullFidelityPerDay bounds how many of a campaign's daily completions run
// through the full per-worker flow (click tracking, telemetry-grade
// behaviour, individual ledger postings); the remainder settles through
// the batch paths with identical aggregate effects.
const fullFidelityPerDay = 8

// purchaseAmounts are the in-app purchase price points drawn by offer
// completions, hoisted to package scope so the delivery hot path never
// allocates the literal slice per draw.
var purchaseAmounts = [...]float64{0.99, 1.99, 2.99, 4.99, 9.99}

// campaignDay delivers one campaign's completions for one day. It draws
// only from u.r (the campaign's own stream) and writes money movements and
// install-log records only into sink, so campaigns of different
// developers can run concurrently. The advertised app's shard lock is
// taken once around the whole day's deliveries — the determinism model
// guarantees this unit is the app's only writer during the phase, so the
// lock provides visibility and whole-shard-reader exclusion, not
// per-event ordering.
//
// Delivery behaviour is the unit's adversary strategy: the day's quota
// (demand within the platform's pace), the workers fulfilling it, the
// device identities they present, and any faked retention sessions all
// come from u.strat, which draws only from u.r — the baseline strategy
// reproduces the pre-scenario engine draw for draw.
func (w *World) campaignDay(u *campUnit, day dates.Date, sink *unitSink) error {
	c := u.c
	if !c.Spec.Window.Contains(day) {
		return nil
	}
	// Demand-limited delivery, capped by the platform's pacing (inside
	// the strategy) and by the campaign's remaining purchased completions.
	n := u.strat.Quota(u.r, day, c.DailyUptake, u.paceCap)
	if remaining := u.offer.Remaining(); n > remaining {
		n = remaining
	}
	if n <= 0 {
		return nil
	}
	u.app.Lock()
	defer u.app.Unlock()
	full := n
	if full > fullFidelityPerDay {
		full = fullFidelityPerDay
	}
	delivered := 0
	for i := 0; i < full; i++ {
		done, err := w.deliverOne(u, day, sink)
		if err != nil {
			return err
		}
		if !done {
			full = i
			break
		}
		sink.delivered++
		delivered++
	}
	if bulk := n - full; bulk > 0 && full == fullFidelityPerDay {
		settled, err := w.deliverBatch(u, day, bulk, sink)
		if err != nil {
			return err
		}
		sink.delivered += int64(settled)
		delivered += settled
	}
	// Retention-faking sessions (organic-mimic): recorded on the
	// advertised app under the same shard lock, after the day's
	// deliveries. The baseline strategy reports none and draws nothing.
	if delivered > 0 {
		if rs, rsec := u.strat.Retention(u.r, day, delivered); rs > 0 {
			u.app.RecordSessionBatchLocked(day, rs, rsec)
			if sink.enc != nil {
				sink.enc.SessionRef(u.pkgRef, c.App, rs, rsec)
			}
		}
	}
	return nil
}

// deliverBatch settles n completions through the batch paths: aggregate
// store installs and sessions, one money split, one certification batch.
// The caller holds the advertised app's shard lock.
func (w *World) deliverBatch(u *campUnit, day dates.Date, n int, sink *unitSink) (int, error) {
	c := u.c
	disb, settled, err := u.offer.RecordCompletions(day, n)
	if err != nil || settled == 0 {
		return 0, err
	}
	// Mean fraud score of the pool approximates the batch's devices,
	// sampled through the strategy so sub-pool partitions (sybil-split)
	// are reflected in what the install filter sees.
	meanFraud := 0.0
	for i := 0; i < 16; i++ {
		meanFraud += u.pool[u.strat.PickWorker(u.r, day, len(u.pool))].FraudScore()
	}
	meanFraud = meanFraud/16 + c.Botness
	u.app.RecordInstallBatchLocked(day, int64(settled), playstore.SourceReferral, meanFraud)
	logBase := len(sink.log)
	if sink.enc != nil {
		sink.refs = sink.refs[:0]
	}
	for i := 0; i < settled; i++ {
		wi := u.strat.PickWorker(u.r, day, len(u.pool))
		devID := u.strat.DeviceID(u.pool[wi].ID, day)
		sink.log = append(sink.log, InstallRecord{Device: devID, App: c.App, Day: day})
		if sink.enc != nil {
			ref := uint32(0)
			if devID == u.pool[wi].ID {
				ref = u.devRefs[wi]
			}
			sink.refs = append(sink.refs, ref)
		}
	}
	if sink.enc != nil {
		sink.enc.InstallBatchRef(u.pkgRef, c.App, meanFraud, settled, func(i int) (uint32, string) {
			return sink.refs[i], sink.log[logBase+i].Device
		})
	}
	seconds, purchase := engagementFor(u.r, c.Spec.Type)
	if seconds > 0 {
		u.app.RecordSessionBatchLocked(day, int64(settled), seconds)
		if sink.enc != nil {
			sink.enc.SessionRef(u.pkgRef, c.App, int64(settled), seconds)
		}
	}
	if purchase > 0 {
		usd := purchase * float64(settled)
		u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: usd})
		if sink.enc != nil {
			sink.enc.PurchaseRef(u.pkgRef, c.App, usd)
		}
	}
	// The offer's completion requirement was validated when the unit's
	// click session was resolved; the certified count merges through the
	// sink at the day barrier.
	sink.certified += int64(settled)
	aff, affRef := u.pickAffiliateAccount(u.r)
	fee := w.Mediator.FeePerUser * float64(settled)
	if err := sink.txs.Post(u.devAcct, u.iipAcct, disb.Gross, "offer completions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(u.iipAcct, aff, disb.AffiliateCut+disb.UserPayout, "affiliate share (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(aff, u.poolAcct, disb.UserPayout, "reward redemptions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(u.devAcct, w.medAcct, fee, "attribution fees (batch)"); err != nil {
		return 0, err
	}
	if sink.enc != nil {
		sink.enc.CertifyBatchRef(u.offerRef, c.OfferID, int64(settled))
		sink.enc.SettleRef(stream.SettleRefs{
			Offer: u.offerRef, Dev: u.devAcctRef, IIP: u.iipAcctRef,
			Aff: affRef, User: u.poolAcctRef,
		}, c.OfferID, int64(settled), true,
			disb.Gross, disb.AffiliateCut, disb.UserPayout,
			u.devAcct, u.iipAcct, aff, u.poolAcct)
	}
	return settled, nil
}

// engagementFor returns the mean session seconds and per-user purchase
// amount generated by completing an offer of the given type.
func engagementFor(r *randx.Rand, t offers.Type) (seconds int64, purchaseUSD float64) {
	switch t {
	case offers.Usage:
		return int64(300 + r.IntN(1200)), 0
	case offers.Registration:
		return int64(120 + r.IntN(240)), 0
	case offers.Purchase:
		return int64(180 + r.IntN(600)), purchaseAmounts[r.IntN(len(purchaseAmounts))]
	default:
		return int64(30 + r.IntN(60)), 0
	}
}

// deliverOne runs a single worker through the full Figure 1 flow: click
// tracking, install, in-app events, certification, settlement, and payout.
// It returns false (and no error) when the campaign cannot accept more
// completions. The caller holds the advertised app's shard lock; every
// other structure it touches (click session, settlement handle, sink) is
// owned by this unit's goroutine, so no per-event lock is taken anywhere.
func (w *World) deliverOne(u *campUnit, day dates.Date, sink *unitSink) (bool, error) {
	c := u.c
	wi := u.strat.PickWorker(u.r, day, len(u.pool))
	worker := u.pool[wi]
	// The device identity presented to the mediator and the store is the
	// strategy's (device-churn rotates it); payment still reaches the
	// stable worker's account.
	devID := u.strat.DeviceID(worker.ID, day)
	devRef := uint32(0)
	if sink.enc != nil && devID == worker.ID {
		devRef = u.devRefs[wi]
	}
	click := u.session.TrackClick(devID, day)
	if sink.enc != nil {
		sink.enc.ClickRef(u.offerRef, c.OfferID, devRef, devID)
	}

	// The install lands on the store regardless of engagement quality;
	// bot-farm fulfillment raises the device-reputation penalty.
	fraud := worker.FraudScore() + c.Botness
	u.app.RecordInstallLocked(playstore.Install{
		Day:        day,
		Source:     playstore.SourceReferral,
		FraudScore: fraud,
	})
	sink.log = append(sink.log, InstallRecord{Device: devID, App: c.App, Day: day})
	if sink.enc != nil {
		sink.enc.InstallRef(u.pkgRef, c.App, devRef, devID, fraud)
	}

	// In-app behaviour. For no-activity offers on sloppy platforms the
	// completion may be claimed without a real open (RankApp's missing
	// telemetry), but activity offers force the worker through the task.
	opened := worker.OpenProb >= 1 || u.r.Bool(worker.OpenProb) || c.Spec.Type.IsActivity()
	if opened {
		ok, err := u.session.Postback(click, mediator.EventOpen)
		if err != nil {
			return false, err
		}
		if ok {
			sink.certified++
		}
		if sink.enc != nil {
			sink.enc.PostbackRef(u.offerRef, c.OfferID, uint8(mediator.EventOpen), ok)
		}
		seconds := int64(30 + u.r.IntN(60))
		switch c.Spec.Type {
		case offers.Usage:
			seconds = int64(300 + u.r.IntN(1200))
			ok, err := u.session.Postback(click, mediator.EventUsage)
			if err != nil {
				return false, err
			}
			if ok {
				sink.certified++
			}
			if sink.enc != nil {
				sink.enc.PostbackRef(u.offerRef, c.OfferID, uint8(mediator.EventUsage), ok)
			}
		case offers.Registration:
			seconds = int64(120 + u.r.IntN(240))
			ok, err := u.session.Postback(click, mediator.EventRegister)
			if err != nil {
				return false, err
			}
			if ok {
				sink.certified++
			}
			if sink.enc != nil {
				sink.enc.PostbackRef(u.offerRef, c.OfferID, uint8(mediator.EventRegister), ok)
			}
		case offers.Purchase:
			seconds = int64(180 + u.r.IntN(600))
			amount := purchaseAmounts[u.r.IntN(len(purchaseAmounts))]
			u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: amount})
			if sink.enc != nil {
				sink.enc.PurchaseRef(u.pkgRef, c.App, amount)
			}
			ok, err := u.session.Postback(click, mediator.EventPurchase)
			if err != nil {
				return false, err
			}
			if ok {
				sink.certified++
			}
			if sink.enc != nil {
				sink.enc.PostbackRef(u.offerRef, c.OfferID, uint8(mediator.EventPurchase), ok)
			}
		}
		u.app.RecordSessionLocked(playstore.Session{Day: day, Seconds: seconds})
		if sink.enc != nil {
			sink.enc.SessionRef(u.pkgRef, c.App, 1, seconds)
		}
	}

	// Certification: activity offers certify via their task postback
	// above; no-activity offers certify on open — or, on lax platforms,
	// through a spoofed postback even without an open.
	if c.Spec.Type == offers.NoActivity && !opened {
		ok, err := u.session.Postback(click, mediator.EventOpen)
		if err != nil {
			return false, err
		}
		if ok {
			sink.certified++
		}
		if sink.enc != nil {
			sink.enc.PostbackRef(u.offerRef, c.OfferID, uint8(mediator.EventOpen), ok)
		}
	}

	// Settlement through the platform handle and the ledger.
	disb, err := u.offer.RecordCompletion(day)
	if err != nil {
		// Target reached or balance exhausted: stop delivering.
		return false, nil
	}
	aff, affRef := u.pickAffiliateAccount(u.r)
	if err := sink.txs.Post(u.devAcct, u.iipAcct, disb.Gross, "offer completion"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(u.iipAcct, aff, disb.AffiliateCut+disb.UserPayout, "affiliate share"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(aff, u.poolAccts[wi], disb.UserPayout, "reward redemption"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(u.devAcct, w.medAcct, w.Mediator.FeePerUser, "attribution fee"); err != nil {
		return false, err
	}
	if sink.enc != nil {
		sink.enc.SettleRef(stream.SettleRefs{
			Offer: u.offerRef, Dev: u.devAcctRef, IIP: u.iipAcctRef,
			Aff: affRef, User: u.userRef(wi),
		}, c.OfferID, 1, false,
			disb.Gross, disb.AffiliateCut, disb.UserPayout,
			u.devAcct, u.iipAcct, aff, u.poolAccts[wi])
	}
	return true, nil
}
