package sim

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// RunStats summarizes one full simulation run.
type RunStats struct {
	Days                 int
	OrganicInstalls      int64
	IncentivizedInstalls int64
	CertifiedCompletions int64
	RevenueUSD           float64
}

// Run executes the day engine over the configured window: organic store
// activity, campaign deliveries through the mediator and ledger, and daily
// chart/enforcement steps. Run is deterministic for a given world — the
// same seed produces identical results for any Cfg.Workers setting and
// any GOMAXPROCS (see engine.go for the determinism model).
func (w *World) Run() (RunStats, error) {
	return w.RunWithHook(nil)
}

// RunWithHook runs the day engine, invoking hook after each day's
// activity and chart/enforcement step. The measurement pipelines (crawler,
// offer-wall milker) attach here, observing the world exactly as the
// paper's infrastructure observed the live ecosystem.
func (w *World) RunWithHook(hook func(day dates.Date) error) (RunStats, error) {
	eng := newEngine(w)
	var stats RunStats
	for day := w.Cfg.Window.Start; day <= w.Cfg.Window.End; day++ {
		if err := eng.stepDay(day, &stats); err != nil {
			return stats, err
		}
		w.Store.StepDay(day)
		stats.Days++
		if hook != nil {
			if err := hook(day); err != nil {
				return stats, fmt.Errorf("sim: hook on %s: %w", day, err)
			}
		}
	}
	return stats, nil
}

// fullFidelityPerDay bounds how many of a campaign's daily completions run
// through the full per-worker flow (click tracking, telemetry-grade
// behaviour, individual ledger postings); the remainder settles through
// the batch paths with identical aggregate effects.
const fullFidelityPerDay = 8

// campaignDay delivers one campaign's completions for one day. It draws
// only from r (the campaign's own stream) and writes money movements and
// install-log records only into sink, so campaigns of different
// developers can run concurrently.
func (w *World) campaignDay(r *randx.Rand, c *PlannedCampaign, day dates.Date, sink *unitSink) error {
	if !c.Spec.Window.Contains(day) {
		return nil
	}
	platform := w.Platforms[c.IIP]
	// Demand-limited delivery, capped by the platform's pacing and
	// by the campaign's remaining purchased completions.
	n := r.Poisson(c.DailyUptake)
	if paceCap := int(platform.PacePerHour * 24); n > paceCap {
		n = paceCap
	}
	snap, err := platform.Campaign(c.OfferID)
	if err != nil {
		return err
	}
	if remaining := snap.Spec.Target - snap.Delivered; n > remaining {
		n = remaining
	}
	pool := w.Pools[c.IIP]
	full := n
	if full > fullFidelityPerDay {
		full = fullFidelityPerDay
	}
	for i := 0; i < full; i++ {
		done, err := w.deliverOne(r, platform, c, pool, day, sink)
		if err != nil {
			return err
		}
		if !done {
			full = i
			break
		}
		sink.delivered++
	}
	if bulk := n - full; bulk > 0 && full == fullFidelityPerDay {
		delivered, err := w.deliverBatch(r, platform, c, pool, day, bulk, sink)
		if err != nil {
			return err
		}
		sink.delivered += int64(delivered)
	}
	return nil
}

// deliverBatch settles n completions through the batch paths: aggregate
// store installs and sessions, one money split, one certification batch.
func (w *World) deliverBatch(r *randx.Rand, platform *iip.Platform, c *PlannedCampaign, pool []*device.Worker, day dates.Date, n int, sink *unitSink) (int, error) {
	disb, settled, err := platform.RecordCompletions(c.OfferID, day, n)
	if err != nil || settled == 0 {
		return 0, err
	}
	// Mean fraud score of the pool approximates the batch's devices.
	meanFraud := 0.0
	for i := 0; i < 16; i++ {
		meanFraud += pool[r.IntN(len(pool))].FraudScore()
	}
	meanFraud = meanFraud/16 + c.Botness
	if err := w.Store.RecordInstallBatch(c.App, day, int64(settled), playstore.SourceReferral, meanFraud); err != nil {
		return 0, err
	}
	for i := 0; i < settled; i++ {
		sink.log = append(sink.log, InstallRecord{
			Device: pool[r.IntN(len(pool))].ID, App: c.App, Day: day,
		})
	}
	seconds, purchase := engagementFor(r, c.Spec.Type)
	if seconds > 0 {
		if err := w.Store.RecordSessionBatch(c.App, day, int64(settled), seconds); err != nil {
			return 0, err
		}
	}
	if purchase > 0 {
		if err := w.Store.RecordPurchase(c.App, playstore.Purchase{Day: day, USD: purchase * float64(settled)}); err != nil {
			return 0, err
		}
	}
	if err := w.Mediator.CertifyBatch(c.OfferID, settled); err != nil {
		return 0, err
	}
	dev := mediator.DeveloperAccount(c.Spec.Developer)
	aff := w.pickAffiliate(r, c.IIP)
	fee := w.Mediator.FeePerUser * float64(settled)
	if err := sink.txs.Post(dev, mediator.IIPAccount(c.IIP), disb.Gross, "offer completions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(mediator.IIPAccount(c.IIP), mediator.AffiliateAccount(aff), disb.AffiliateCut+disb.UserPayout, "affiliate share (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(mediator.AffiliateAccount(aff), mediator.UserAccount("pool-"+c.IIP), disb.UserPayout, "reward redemptions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(dev, mediator.MediatorAccount(w.Mediator.Name), fee, "attribution fees (batch)"); err != nil {
		return 0, err
	}
	return settled, nil
}

// engagementFor returns the mean session seconds and per-user purchase
// amount generated by completing an offer of the given type.
func engagementFor(r *randx.Rand, t offers.Type) (seconds int64, purchaseUSD float64) {
	switch t {
	case offers.Usage:
		return int64(300 + r.IntN(1200)), 0
	case offers.Registration:
		return int64(120 + r.IntN(240)), 0
	case offers.Purchase:
		return int64(180 + r.IntN(600)), []float64{0.99, 1.99, 2.99, 4.99, 9.99}[r.IntN(5)]
	default:
		return int64(30 + r.IntN(60)), 0
	}
}

// deliverOne runs a single worker through the full Figure 1 flow: click
// tracking, install, in-app events, certification, settlement, and payout.
// It returns false (and no error) when the campaign cannot accept more
// completions.
func (w *World) deliverOne(r *randx.Rand, platform *iip.Platform, c *PlannedCampaign, pool []*device.Worker, day dates.Date, sink *unitSink) (bool, error) {
	worker := pool[r.IntN(len(pool))]
	click := w.Mediator.TrackClick(c.OfferID, worker.ID, day)

	// The install lands on the store regardless of engagement quality;
	// bot-farm fulfillment raises the device-reputation penalty.
	if err := w.Store.RecordInstall(c.App, playstore.Install{
		Day:        day,
		Source:     playstore.SourceReferral,
		FraudScore: worker.FraudScore() + c.Botness,
	}); err != nil {
		return false, err
	}
	sink.log = append(sink.log, InstallRecord{Device: worker.ID, App: c.App, Day: day})

	// In-app behaviour. For no-activity offers on sloppy platforms the
	// completion may be claimed without a real open (RankApp's missing
	// telemetry), but activity offers force the worker through the task.
	opened := worker.OpenProb >= 1 || r.Bool(worker.OpenProb) || c.Spec.Type.IsActivity()
	if opened {
		if _, err := w.Mediator.Postback(click.ID, mediator.EventOpen, day); err != nil {
			return false, err
		}
		seconds := int64(30 + r.IntN(60))
		switch c.Spec.Type {
		case offers.Usage:
			seconds = int64(300 + r.IntN(1200))
			if _, err := w.Mediator.Postback(click.ID, mediator.EventUsage, day); err != nil {
				return false, err
			}
		case offers.Registration:
			seconds = int64(120 + r.IntN(240))
			if _, err := w.Mediator.Postback(click.ID, mediator.EventRegister, day); err != nil {
				return false, err
			}
		case offers.Purchase:
			seconds = int64(180 + r.IntN(600))
			amount := []float64{0.99, 1.99, 2.99, 4.99, 9.99}[r.IntN(5)]
			if err := w.Store.RecordPurchase(c.App, playstore.Purchase{Day: day, USD: amount}); err != nil {
				return false, err
			}
			if _, err := w.Mediator.Postback(click.ID, mediator.EventPurchase, day); err != nil {
				return false, err
			}
		}
		if err := w.Store.RecordSession(c.App, playstore.Session{Day: day, Seconds: seconds}); err != nil {
			return false, err
		}
	}

	// Certification: activity offers certify via their task postback
	// above; no-activity offers certify on open — or, on lax platforms,
	// through a spoofed postback even without an open.
	if c.Spec.Type == offers.NoActivity && !opened {
		if _, err := w.Mediator.Postback(click.ID, mediator.EventOpen, day); err != nil {
			return false, err
		}
	}

	// Settlement through the platform and the ledger.
	disb, err := platform.RecordCompletion(c.OfferID, day)
	if err != nil {
		// Target reached or balance exhausted: stop delivering.
		return false, nil
	}
	dev := mediator.DeveloperAccount(c.Spec.Developer)
	aff := w.pickAffiliate(r, c.IIP)
	if err := sink.txs.Post(dev, mediator.IIPAccount(c.IIP), disb.Gross, "offer completion"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(mediator.IIPAccount(c.IIP), mediator.AffiliateAccount(aff), disb.AffiliateCut+disb.UserPayout, "affiliate share"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(mediator.AffiliateAccount(aff), mediator.UserAccount(worker.ID), disb.UserPayout, "reward redemption"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(dev, mediator.MediatorAccount(w.Mediator.Name), w.Mediator.FeePerUser, "attribution fee"); err != nil {
		return false, err
	}
	return true, nil
}

// pickAffiliate selects the affiliate app credited with a completion.
func (w *World) pickAffiliate(r *randx.Rand, iipName string) string {
	apps := w.AffiliatesForIIP(iipName)
	if len(apps) == 0 {
		// IIPs without instrumented affiliates still have their own
		// (unobserved) distribution network.
		return "uninstrumented." + iipName
	}
	return apps[r.IntN(len(apps))].Package
}
