package sim

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/mediator"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// RunStats summarizes one full simulation run.
type RunStats struct {
	Days                 int
	OrganicInstalls      int64
	IncentivizedInstalls int64
	CertifiedCompletions int64
	RevenueUSD           float64
}

// Run executes the day engine over the configured window: organic store
// activity, campaign deliveries through the mediator and ledger, and daily
// chart/enforcement steps. Run is deterministic for a given world — the
// same seed produces identical results for any Cfg.Workers setting and
// any GOMAXPROCS (see engine.go for the determinism model).
func (w *World) Run() (RunStats, error) {
	return w.RunWithHook(nil)
}

// RunWithHook runs the day engine, invoking hook after each day's
// activity and chart/enforcement step. The measurement pipelines (crawler,
// offer-wall milker) attach here, observing the world exactly as the
// paper's infrastructure observed the live ecosystem.
func (w *World) RunWithHook(hook func(day dates.Date) error) (RunStats, error) {
	eng, err := newEngine(w)
	if err != nil {
		return RunStats{}, err
	}
	var stats RunStats
	for day := w.Cfg.Window.Start; day <= w.Cfg.Window.End; day++ {
		if err := eng.stepDay(day, &stats); err != nil {
			return stats, err
		}
		w.Store.StepDay(day)
		stats.Days++
		if hook != nil {
			if err := hook(day); err != nil {
				return stats, fmt.Errorf("sim: hook on %s: %w", day, err)
			}
		}
	}
	return stats, nil
}

// fullFidelityPerDay bounds how many of a campaign's daily completions run
// through the full per-worker flow (click tracking, telemetry-grade
// behaviour, individual ledger postings); the remainder settles through
// the batch paths with identical aggregate effects.
const fullFidelityPerDay = 8

// purchaseAmounts are the in-app purchase price points drawn by offer
// completions, hoisted to package scope so the delivery hot path never
// allocates the literal slice per draw.
var purchaseAmounts = [...]float64{0.99, 1.99, 2.99, 4.99, 9.99}

// campaignDay delivers one campaign's completions for one day. It draws
// only from u.r (the campaign's own stream) and writes money movements and
// install-log records only into sink, so campaigns of different
// developers can run concurrently. The advertised app's shard lock is
// taken once around the whole day's deliveries — the determinism model
// guarantees this unit is the app's only writer during the phase, so the
// lock provides visibility and whole-shard-reader exclusion, not
// per-event ordering.
func (w *World) campaignDay(u *campUnit, day dates.Date, sink *unitSink) error {
	c := u.c
	if !c.Spec.Window.Contains(day) {
		return nil
	}
	// Demand-limited delivery, capped by the platform's pacing and
	// by the campaign's remaining purchased completions.
	n := u.r.Poisson(c.DailyUptake)
	if n > u.paceCap {
		n = u.paceCap
	}
	if remaining := u.offer.Remaining(); n > remaining {
		n = remaining
	}
	if n <= 0 {
		return nil
	}
	u.app.Lock()
	defer u.app.Unlock()
	full := n
	if full > fullFidelityPerDay {
		full = fullFidelityPerDay
	}
	for i := 0; i < full; i++ {
		done, err := w.deliverOne(u, day, sink)
		if err != nil {
			return err
		}
		if !done {
			full = i
			break
		}
		sink.delivered++
	}
	if bulk := n - full; bulk > 0 && full == fullFidelityPerDay {
		delivered, err := w.deliverBatch(u, day, bulk, sink)
		if err != nil {
			return err
		}
		sink.delivered += int64(delivered)
	}
	return nil
}

// deliverBatch settles n completions through the batch paths: aggregate
// store installs and sessions, one money split, one certification batch.
// The caller holds the advertised app's shard lock.
func (w *World) deliverBatch(u *campUnit, day dates.Date, n int, sink *unitSink) (int, error) {
	c := u.c
	disb, settled, err := u.offer.RecordCompletions(day, n)
	if err != nil || settled == 0 {
		return 0, err
	}
	// Mean fraud score of the pool approximates the batch's devices.
	meanFraud := 0.0
	for i := 0; i < 16; i++ {
		meanFraud += u.pool[u.r.IntN(len(u.pool))].FraudScore()
	}
	meanFraud = meanFraud/16 + c.Botness
	u.app.RecordInstallBatchLocked(day, int64(settled), playstore.SourceReferral, meanFraud)
	for i := 0; i < settled; i++ {
		sink.log = append(sink.log, InstallRecord{
			Device: u.pool[u.r.IntN(len(u.pool))].ID, App: c.App, Day: day,
		})
	}
	seconds, purchase := engagementFor(u.r, c.Spec.Type)
	if seconds > 0 {
		u.app.RecordSessionBatchLocked(day, int64(settled), seconds)
	}
	if purchase > 0 {
		u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: purchase * float64(settled)})
	}
	// The offer's completion requirement was validated when the unit's
	// click session was resolved; the certified count merges through the
	// sink at the day barrier.
	sink.certified += int64(settled)
	aff := u.pickAffiliateAccount(u.r)
	fee := w.Mediator.FeePerUser * float64(settled)
	if err := sink.txs.Post(u.devAcct, u.iipAcct, disb.Gross, "offer completions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(u.iipAcct, aff, disb.AffiliateCut+disb.UserPayout, "affiliate share (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(aff, u.poolAcct, disb.UserPayout, "reward redemptions (batch)"); err != nil {
		return 0, err
	}
	if err := sink.txs.Post(u.devAcct, w.medAcct, fee, "attribution fees (batch)"); err != nil {
		return 0, err
	}
	return settled, nil
}

// engagementFor returns the mean session seconds and per-user purchase
// amount generated by completing an offer of the given type.
func engagementFor(r *randx.Rand, t offers.Type) (seconds int64, purchaseUSD float64) {
	switch t {
	case offers.Usage:
		return int64(300 + r.IntN(1200)), 0
	case offers.Registration:
		return int64(120 + r.IntN(240)), 0
	case offers.Purchase:
		return int64(180 + r.IntN(600)), purchaseAmounts[r.IntN(len(purchaseAmounts))]
	default:
		return int64(30 + r.IntN(60)), 0
	}
}

// deliverOne runs a single worker through the full Figure 1 flow: click
// tracking, install, in-app events, certification, settlement, and payout.
// It returns false (and no error) when the campaign cannot accept more
// completions. The caller holds the advertised app's shard lock; every
// other structure it touches (click session, settlement handle, sink) is
// owned by this unit's goroutine, so no per-event lock is taken anywhere.
func (w *World) deliverOne(u *campUnit, day dates.Date, sink *unitSink) (bool, error) {
	c := u.c
	wi := u.r.IntN(len(u.pool))
	worker := u.pool[wi]
	click := u.session.TrackClick(worker.ID, day)

	// The install lands on the store regardless of engagement quality;
	// bot-farm fulfillment raises the device-reputation penalty.
	u.app.RecordInstallLocked(playstore.Install{
		Day:        day,
		Source:     playstore.SourceReferral,
		FraudScore: worker.FraudScore() + c.Botness,
	})
	sink.log = append(sink.log, InstallRecord{Device: worker.ID, App: c.App, Day: day})

	// In-app behaviour. For no-activity offers on sloppy platforms the
	// completion may be claimed without a real open (RankApp's missing
	// telemetry), but activity offers force the worker through the task.
	opened := worker.OpenProb >= 1 || u.r.Bool(worker.OpenProb) || c.Spec.Type.IsActivity()
	if opened {
		ok, err := u.session.Postback(click, mediator.EventOpen)
		if err != nil {
			return false, err
		}
		if ok {
			sink.certified++
		}
		seconds := int64(30 + u.r.IntN(60))
		switch c.Spec.Type {
		case offers.Usage:
			seconds = int64(300 + u.r.IntN(1200))
			if ok, err := u.session.Postback(click, mediator.EventUsage); err != nil {
				return false, err
			} else if ok {
				sink.certified++
			}
		case offers.Registration:
			seconds = int64(120 + u.r.IntN(240))
			if ok, err := u.session.Postback(click, mediator.EventRegister); err != nil {
				return false, err
			} else if ok {
				sink.certified++
			}
		case offers.Purchase:
			seconds = int64(180 + u.r.IntN(600))
			amount := purchaseAmounts[u.r.IntN(len(purchaseAmounts))]
			u.app.RecordPurchaseLocked(playstore.Purchase{Day: day, USD: amount})
			if ok, err := u.session.Postback(click, mediator.EventPurchase); err != nil {
				return false, err
			} else if ok {
				sink.certified++
			}
		}
		u.app.RecordSessionLocked(playstore.Session{Day: day, Seconds: seconds})
	}

	// Certification: activity offers certify via their task postback
	// above; no-activity offers certify on open — or, on lax platforms,
	// through a spoofed postback even without an open.
	if c.Spec.Type == offers.NoActivity && !opened {
		ok, err := u.session.Postback(click, mediator.EventOpen)
		if err != nil {
			return false, err
		}
		if ok {
			sink.certified++
		}
	}

	// Settlement through the platform handle and the ledger.
	disb, err := u.offer.RecordCompletion(day)
	if err != nil {
		// Target reached or balance exhausted: stop delivering.
		return false, nil
	}
	aff := u.pickAffiliateAccount(u.r)
	if err := sink.txs.Post(u.devAcct, u.iipAcct, disb.Gross, "offer completion"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(u.iipAcct, aff, disb.AffiliateCut+disb.UserPayout, "affiliate share"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(aff, u.poolAccts[wi], disb.UserPayout, "reward redemption"); err != nil {
		return false, err
	}
	if err := sink.txs.Post(u.devAcct, w.medAcct, w.Mediator.FeePerUser, "attribution fee"); err != nil {
		return false, err
	}
	return true, nil
}
