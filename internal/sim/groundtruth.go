package sim

import (
	"fmt"

	"repro/internal/lockstep"
	"repro/internal/randx"
)

// Ground truth for detector evaluation. The world records exactly which
// (device, install) pairs were incentivized: InstallLog is the store-side
// device-resolved stream of incentivized deliveries, and nothing else
// writes to it — so the device identities appearing there (including
// rotated identities under the device-churn adversary) are the labels a
// Section 5.2 lockstep detector should recover.

// TruthLabels returns every device identity that fulfilled an
// incentivized install during the run, keyed by the identity the store
// observed (device-churn adversaries present rotated identities; each
// rotation is its own label, since that is all the defender can see).
func (w *World) TruthLabels() map[string]bool {
	truth := make(map[string]bool, 1024)
	for rec := range w.InstallLog.All() {
		truth[rec.Device] = true
	}
	return truth
}

// DecoyEvents generates the organic background a store-side detector
// would see alongside the incentivized stream: independent devices
// installing catalog apps on random days, which the detector must not
// flag. Google would have the full organic stream; a deterministic
// sample — one decoy device per pool worker — suffices to measure
// precision. The stream depends only on the world seed and build, never
// on the run, so scenario evaluations are comparable across adversaries.
func (w *World) DecoyEvents() []lockstep.Event {
	r := randx.Derive(w.Cfg.Seed, "lockstep-decoys")
	catalog := append(append([]string(nil), w.Baseline...), w.Background...)
	window := w.Cfg.Window
	nDecoys := 0
	for _, pool := range w.Pools {
		nDecoys += len(pool)
	}
	events := make([]lockstep.Event, 0, nDecoys*7)
	for i := 0; i < nDecoys; i++ {
		dev := fmt.Sprintf("organic-%05d", i)
		n := r.IntBetween(3, 12)
		for j := 0; j < n; j++ {
			events = append(events, lockstep.Event{
				Device: dev,
				App:    catalog[r.IntN(len(catalog))],
				Day:    window.Start.AddDays(r.IntN(window.Days())),
			})
		}
	}
	return events
}

// DetectionEvents returns the labeled event stream for post-hoc detector
// evaluation: the incentivized install log followed by the organic
// decoys, plus the ground-truth labels (true only for devices that
// appear in the incentivized stream).
func (w *World) DetectionEvents() ([]lockstep.Event, map[string]bool) {
	events := make([]lockstep.Event, 0, w.InstallLog.Len())
	for rec := range w.InstallLog.All() {
		events = append(events, lockstep.Event{Device: rec.Device, App: rec.App, Day: rec.Day})
	}
	events = append(events, w.DecoyEvents()...)
	return events, w.TruthLabels()
}
