package sim

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/scenario"
)

// benchDeliveryFixture hand-assembles the smallest world that can run the
// full deliverOne flow (click, install, postbacks, settlement, payout
// postings) with a campaign target and balance big enough to never
// exhaust under any b.N.
func benchDeliveryFixture(b *testing.B, typ offers.Type) (*World, *campUnit, dates.Date) {
	b.Helper()
	day := dates.StudyStart
	const pkg = "bench.delivery.app"

	store := playstore.New(day)
	store.AddDeveloper(playstore.Developer{ID: "bench-dev"})
	if err := store.Publish(playstore.Listing{
		Package: pkg, Title: "B", Genre: "Puzzle", Developer: "bench-dev", Released: day,
	}); err != nil {
		b.Fatal(err)
	}
	appHandle, err := store.AppHandle(pkg)
	if err != nil {
		b.Fatal(err)
	}

	platform := &iip.Platform{
		Name: "benchiip", FeeFraction: 0.30, AffiliateFraction: 0.30,
		PacePerHour: 1e9,
	}
	if err := platform.RegisterDeveloper("bench-dev", iip.Documentation{}); err != nil {
		b.Fatal(err)
	}
	if err := platform.Deposit("bench-dev", 1e12); err != nil {
		b.Fatal(err)
	}
	spec := iip.CampaignSpec{
		Developer: "bench-dev", AppPackage: pkg,
		Description: "Install and Register", Type: typ,
		UserPayoutUSD: 0.06, Target: 1 << 30,
		Window: dates.Range{Start: day, End: day.AddDays(1 << 20)},
	}
	c, err := platform.LaunchCampaign(spec)
	if err != nil {
		b.Fatal(err)
	}
	offerHandle, err := platform.CampaignHandle(c.OfferID)
	if err != nil {
		b.Fatal(err)
	}

	med := mediator.New("bench")
	med.RegisterOffer(c.OfferID, typ)
	session, err := med.Session(c.OfferID)
	if err != nil {
		b.Fatal(err)
	}

	pool := make([]*device.Worker, 64)
	poolAccts := make([]string, len(pool))
	for i := range pool {
		pool[i] = &device.Worker{
			ID: "bench-worker", OpenProb: 1, EngageProb: 0.5, ReturnProb: 0.1,
		}
		poolAccts[i] = mediator.UserAccount(pool[i].ID)
	}

	w := &World{
		Cfg:       TinyConfig(),
		Store:     store,
		Platforms: map[string]*iip.Platform{platform.Name: platform},
		Mediator:  med,
		Ledger:    mediator.NewLedger(),
		Pools:     map[string][]*device.Worker{platform.Name: pool},
	}
	w.medAcct = mediator.MediatorAccount(med.Name)

	strat, err := scenario.NewStrategy(w.Cfg.Adversary, w.Cfg.Seed, c.OfferID)
	if err != nil {
		b.Fatal(err)
	}
	u := &campUnit{
		strat: strat,
		c: &PlannedCampaign{
			IIP: platform.Name, OfferID: c.OfferID, App: pkg, Spec: spec,
			DailyUptake: 5,
		},
		r:         randx.Derive(1, "bench/deliver"),
		app:       appHandle,
		offer:     offerHandle,
		session:   session,
		pool:      pool,
		poolAccts: poolAccts,
		noAffAcct: mediator.AffiliateAccount("uninstrumented." + platform.Name),
		paceCap:   1 << 30,
		devAcct:   mediator.DeveloperAccount(spec.Developer),
		iipAcct:   mediator.IIPAccount(platform.Name),
		poolAcct:  mediator.UserAccount("pool-" + platform.Name),
	}
	return w, u, day
}

// BenchmarkDeliverOne times the full-fidelity delivery flow the campaign
// phase runs per completion (DESIGN.md E5): worker pick, click session,
// store install/session records through the app handle, postback
// certification, lock-free settlement, and four buffered ledger postings.
func BenchmarkDeliverOne(b *testing.B) {
	for _, tc := range []struct {
		name string
		typ  offers.Type
	}{
		{"noactivity", offers.NoActivity},
		{"registration", offers.Registration},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, u, day := benchDeliveryFixture(b, tc.typ)
			sink := &unitSink{}
			u.app.Lock()
			defer u.app.Unlock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done, err := w.deliverOne(u, day, sink)
				if err != nil || !done {
					b.Fatalf("deliverOne = (%v, %v)", done, err)
				}
				// Drain the sink the way the day barrier does, keeping
				// steady-state memory bounded at any b.N.
				if sink.txs.Len() >= 4096 {
					if err := sink.txs.FlushTo(w.Ledger); err != nil {
						b.Fatal(err)
					}
					sink.log = sink.log[:0]
					if w.Ledger.NumTransactions() >= 1<<20 {
						w.Ledger = mediator.NewLedger()
					}
				}
			}
		})
	}
}
