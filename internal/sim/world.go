package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/affiliate"
	"repro/internal/apk"
	"repro/internal/crunchbase"
	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/stream"
	"repro/internal/textgen"
)

// AdvertisedApp is the world's plan entry for one app observed on IIPs.
type AdvertisedApp struct {
	Package   string
	Developer playstore.DeveloperID
	// IIPs this app is advertised on (an app can be on several).
	IIPs []string
	// Arbitrage marks apps whose campaigns include arbitrage offers.
	Arbitrage bool
}

// OnVetted / OnUnvetted report which platform classes carry the app.
func (a *AdvertisedApp) OnVetted() bool {
	for _, n := range a.IIPs {
		if IsVetted(n) {
			return true
		}
	}
	return false
}

// OnUnvetted reports whether the app is advertised on an unvetted IIP.
func (a *AdvertisedApp) OnUnvetted() bool {
	for _, n := range a.IIPs {
		if !IsVetted(n) {
			return true
		}
	}
	return false
}

// InstallRecord is one device-resolved install observation.
type InstallRecord struct {
	Device string
	App    string
	Day    dates.Date
}

// PlannedCampaign couples a launched IIP campaign with its delivery model.
type PlannedCampaign struct {
	IIP     string
	OfferID string
	App     string
	Spec    iip.CampaignSpec
	// DailyUptake is the expected completions per active day (user
	// demand for the offer, the binding constraint on delivery).
	DailyUptake float64
	// Botness raises the fraud profile of the devices fulfilling this
	// campaign (bot-farm fulfillment on lax platforms).
	Botness float64
}

// World is the fully assembled synthetic ecosystem.
type World struct {
	Cfg Config

	Store      *playstore.Store
	Platforms  map[string]*iip.Platform
	Affiliates []*affiliate.App
	Mediator   *mediator.Mediator
	Ledger     *mediator.Ledger
	Crunch     *crunchbase.DB
	Pools      map[string][]*device.Worker
	APKs       map[string]apk.APK
	// Enforcer is the store's install-filtering module (exposed for the
	// enforcement analyses and ablations).
	Enforcer *playstore.Enforcer

	Advertised []*AdvertisedApp
	Baseline   []string
	Background []string
	Campaigns  []*PlannedCampaign

	// InstallLog is the store-side device-resolved install stream for
	// incentivized deliveries: the view Google would feed a lockstep
	// detector (Section 5.2's proposed defense). Batch deliveries log
	// the sampled pool devices that fulfilled them. The log is fully
	// in-RAM by default; Config.InstallLogWindow bounds the resident
	// tail and spills the rest to disk for massive worlds.
	InstallLog InstallLog

	// organic per-app activity rates, fixed at build time.
	organicInstall map[string]float64
	organicDAU     map[string]float64
	organicRevenue map[string]float64

	rand *randx.Rand
	gen  *textgen.Gen
	// developer bookkeeping for crunchbase generation.
	devOfApp map[string]playstore.DeveloperID
	// affByIIP caches AffiliatesForIIP results; the delivery hot path
	// calls it for every completion from many goroutines at once.
	affByIIP map[string][]*affiliate.App
	// affAcctByIIP / noAffAcctByIIP intern each IIP's affiliate ledger
	// account names ("affiliate:<pkg>", plus the uninstrumented-network
	// fallback), so per-completion payouts never concatenate strings.
	affAcctByIIP   map[string][]string
	noAffAcctByIIP map[string]string
	// medAcct is the mediator's interned ledger account name, resolved by
	// newEngine before the day loop starts.
	medAcct string
	// restored remembers the checkpoint last applied via Restore, so
	// RunOpts does not re-apply one the caller already restored (callers
	// that hand out w.Store references — the HTTP facade — must restore
	// before wiring those up).
	restored *stream.Checkpoint
}

// NewWorld builds the world from a config. Building is deterministic in
// cfg.Seed.
func NewWorld(cfg Config) (*World, error) {
	w := &World{
		Cfg:            cfg,
		Store:          playstore.New(cfg.Window.Start),
		Platforms:      iip.StandardPlatforms(),
		Affiliates:     affiliate.StandardAffiliates(),
		Mediator:       mediator.New("appsflyer"),
		Ledger:         mediator.NewLedger(),
		Crunch:         crunchbase.New(dates.CrunchbaseSnapshot),
		Pools:          map[string][]*device.Worker{},
		APKs:           map[string]apk.APK{},
		organicInstall: map[string]float64{},
		organicDAU:     map[string]float64{},
		organicRevenue: map[string]float64{},
		devOfApp:       map[string]playstore.DeveloperID{},
	}
	w.rand = randx.Derive(cfg.Seed, "world")
	w.gen = textgen.New(randx.Derive(cfg.Seed, "names"))

	if cfg.InstallLogWindow > 0 {
		if err := w.InstallLog.EnableSpill(cfg.InstallLogDir, cfg.InstallLogWindow); err != nil {
			return nil, err
		}
	}
	if cfg.LedgerBalancesOnly {
		w.Ledger.DisableTxLog()
	}

	w.Enforcer = playstore.NewEnforcer(randx.Derive(cfg.Seed, "enforce"), cfg.EnforcementSensitivity)
	w.Store.SetEnforcer(w.Enforcer)
	w.Store.SetChartSize(cfg.ChartSize)
	w.Store.SetHorizon(cfg.Window.End)

	if err := w.buildCatalog(); err != nil {
		return nil, fmt.Errorf("sim: building catalog: %w", err)
	}
	if err := w.buildCampaigns(); err != nil {
		return nil, fmt.Errorf("sim: building campaigns: %w", err)
	}
	w.buildCrunchbase()
	if err := w.buildAPKs(); err != nil {
		return nil, fmt.Errorf("sim: building APKs: %w", err)
	}
	w.buildPools()
	w.cacheAffiliates()
	// Construction is the generator's last use. Its uniqueness maps
	// retain every package and company name ever drawn — O(world), with
	// tens of millions of entries at massive scale — so release them
	// rather than carry them through the run.
	w.gen = nil
	return w, nil
}

// Close releases resources the world holds outside the heap — today the
// install log's spill file. Safe (and a no-op) for fully in-RAM worlds.
func (w *World) Close() error {
	return w.InstallLog.Close()
}

// figure4Weights shapes the baseline popularity histogram (Figure 4):
// bins 0-1k, 1k-10k, ..., 1000M+.
var figure4Weights = []float64{30, 25, 45, 60, 75, 45, 15, 5}

var figure4Lo = []float64{1, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// sampleBaselinePopularity draws an install count from the Figure 4 shape.
func (w *World) sampleBaselinePopularity(r *randx.Rand) int64 {
	i := r.WeightedIndex(figure4Weights)
	lo := figure4Lo[i]
	return int64(r.LogUniform(lo, lo*10))
}

// newDeveloper registers a fresh developer with the store.
func (w *World) newDeveloper(r *randx.Rand, idx int, prefix string) playstore.DeveloperID {
	id := playstore.DeveloperID(fmt.Sprintf("%s-dev-%05d", prefix, idx))
	name := w.gen.CompanyName()
	// A minority of developers publish incomplete profiles (no website),
	// which later blocks Crunchbase matching, as the paper observed for
	// unvetted-IIP developers.
	website := ""
	if r.Bool(0.75) {
		website = w.gen.Website(name)
	}
	w.Store.AddDeveloper(playstore.Developer{
		ID:      id,
		Name:    name,
		Country: w.gen.Country(),
		Website: website,
		Email:   w.gen.Email(name),
	})
	return id
}

// publishApp creates a listing plus its organic activity rates.
func (w *World) publishApp(r *randx.Rand, dev playstore.DeveloperID, genre string, released dates.Date, installs int64) (string, error) {
	title := w.gen.AppTitle()
	pkg := w.gen.PackageName(title)
	if err := w.Store.Publish(playstore.Listing{
		Package: pkg, Title: title, Genre: genre,
		Developer: dev, Released: released,
	}); err != nil {
		return "", err
	}
	if err := w.Store.SeedInstalls(pkg, installs); err != nil {
		return "", err
	}
	w.devOfApp[pkg] = dev
	w.setOrganicRates(r, pkg, installs)
	return pkg, nil
}

// setOrganicRates fixes an app's organic daily activity as a function of
// its popularity. Organic installs scale linearly with the existing user
// base (word-of-mouth growth); the coefficient is calibrated so ~2% of
// baseline apps cross a public install bin during a 25-day window, as in
// the paper's Table 5 baseline. The engine records the resulting volumes
// through the store's batch APIs, so arbitrarily popular apps stay cheap
// to simulate.
func (w *World) setOrganicRates(r *randx.Rand, pkg string, installs int64) {
	n := float64(installs)
	w.organicInstall[pkg] = 0.0012 * n * r.LogNormal(0, 0.5)
	w.organicDAU[pkg] = 0.05 * math.Pow(n, 0.72) * r.LogNormal(0, 0.5)
	// Roughly a third of apps monetize through purchases.
	if r.Bool(0.35) {
		w.organicRevenue[pkg] = 0.002 * n * r.LogNormal(0, 0.7)
	}
}

// boostOrganic multiplies an app's organic rates; advertised apps are in
// active user-acquisition mode (running non-incentivized marketing too),
// the confounder the paper explicitly flags when cautioning that its
// correlations are not causal.
func (w *World) boostOrganic(r *randx.Rand, pkg string, factor float64) {
	b := factor * r.LogNormal(0, 0.4)
	w.organicInstall[pkg] *= b
	w.organicDAU[pkg] *= b
	w.organicRevenue[pkg] *= b
}

func log10p1(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log10(1 + x)
}

// buildCatalog publishes background, baseline, and advertised apps.
func (w *World) buildCatalog() error {
	r := randx.Derive(w.Cfg.Seed, "catalog")

	// Background catalog: chart competition.
	for i := 0; i < w.Cfg.BackgroundApps; i++ {
		dev := w.newDeveloper(r, i, "bg")
		installs := int64(r.LogUniform(1e3, 1e9))
		released := w.Cfg.Window.Start.AddDays(-r.IntBetween(60, 2000))
		pkg, err := w.publishApp(r, dev, w.gen.Genre(), released, installs)
		if err != nil {
			return err
		}
		w.Background = append(w.Background, pkg)
	}

	// Baseline apps (Figure 4 shape).
	for i := 0; i < w.Cfg.BaselineApps; i++ {
		dev := w.newDeveloper(r, i, "base")
		installs := w.sampleBaselinePopularity(r)
		released := w.Cfg.Window.Start.AddDays(-r.IntBetween(60, 2000))
		pkg, err := w.publishApp(r, dev, w.gen.Genre(), released, installs)
		if err != nil {
			return err
		}
		w.Baseline = append(w.Baseline, pkg)
	}

	// Advertised apps: per-IIP slots, overlapping apps across IIPs.
	type slot struct{ iipName string }
	var slots []slot
	for _, name := range iip.StandardNames {
		for i := 0; i < w.Cfg.AppsPerIIP[name]; i++ {
			slots = append(slots, slot{name})
		}
	}
	// Shuffle deterministically.
	perm := r.Perm(len(slots))
	shuffled := make([]slot, len(slots))
	for i, p := range perm {
		shuffled[i] = slots[p]
	}

	for _, s := range shuffled {
		if len(w.Advertised) < w.Cfg.TotalAdvertised {
			// New unique app, characterized by its home IIP (Table 4
			// medians). Some developers publish several advertised apps
			// (the paper counts 351 developers behind 392 ayeT apps).
			var dev playstore.DeveloperID
			if len(w.Advertised) > 0 && r.Bool(0.12) {
				dev = w.Advertised[r.IntN(len(w.Advertised))].Developer
			} else {
				dev = w.newDeveloper(r, len(w.Advertised), "adv")
			}
			med := w.Cfg.MedianInstalls[s.iipName]
			installs := int64(r.LogNormal(lnF(float64(med)), 1.6))
			age := w.Cfg.MedianAgeDays[s.iipName]
			released := w.Cfg.Window.Start.AddDays(-maxInt(1, int(r.LogNormal(lnF(float64(age)), 0.7))))
			pkg, err := w.publishApp(r, dev, w.gen.Genre(), released, installs)
			if err != nil {
				return err
			}
			w.boostOrganic(r, pkg, w.Cfg.AdvertisedGrowthBoost)
			w.Advertised = append(w.Advertised, &AdvertisedApp{
				Package:   pkg,
				Developer: dev,
				IIPs:      []string{s.iipName},
			})
			continue
		}
		// Extra slot: attach this IIP to an existing app that does not
		// have it yet, preferring apps already advertised on the same
		// platform class — cross-class dual listings are the minority in
		// the paper (492 vetted + 538 unvetted from 922 unique apps).
		vetted := IsVetted(s.iipName)
		for tries := 0; tries < 80; tries++ {
			a := w.Advertised[r.IntN(len(w.Advertised))]
			if containsStr(a.IIPs, s.iipName) {
				continue
			}
			sameClass := (vetted && a.OnVetted()) || (!vetted && a.OnUnvetted())
			if !sameClass && tries < 40 && !r.Bool(0.15) {
				continue
			}
			a.IIPs = append(a.IIPs, s.iipName)
			break
		}
	}

	// Arbitrage apps: per-group shares.
	for _, a := range w.Advertised {
		switch {
		case a.OnVetted() && r.Bool(w.Cfg.ArbitrageShareVetted):
			a.Arbitrage = true
		case a.OnUnvetted() && !a.OnVetted() && r.Bool(w.Cfg.ArbitrageShareUnvetted):
			a.Arbitrage = true
		}
	}
	return nil
}

// lnF is a zero-guarded natural log used for log-normal medians.
func lnF(x float64) float64 {
	if x < 1 {
		x = 1
	}
	return math.Log(x)
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlatformsSorted returns the platforms in stable Table 1 order.
func (w *World) PlatformsSorted() []*iip.Platform {
	out := make([]*iip.Platform, 0, len(w.Platforms))
	for _, name := range iip.StandardNames {
		out = append(out, w.Platforms[name])
	}
	return out
}

// AdvertisedByPackage returns the plan entry for a package, if any.
func (w *World) AdvertisedByPackage(pkg string) (*AdvertisedApp, bool) {
	for _, a := range w.Advertised {
		if a.Package == pkg {
			return a, true
		}
	}
	return nil, false
}

// AffiliatesForIIP lists instrumented affiliate apps integrating an IIP.
// The standard platform names are pre-resolved at build time (the
// concurrent delivery path hits only those); other names fall through to
// a fresh scan and are not cached, keeping the method read-only and
// race-free.
func (w *World) AffiliatesForIIP(name string) []*affiliate.App {
	if cached, ok := w.affByIIP[name]; ok {
		return cached
	}
	var out []*affiliate.App
	for _, a := range w.Affiliates {
		if a.IntegratesIIP(name) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out
}

// cacheAffiliates pre-resolves the per-IIP affiliate lists — and the
// interned ledger account name of every affiliate — so the concurrent
// delivery path never rebuilds either.
func (w *World) cacheAffiliates() {
	w.affByIIP = map[string][]*affiliate.App{}
	w.affAcctByIIP = map[string][]string{}
	w.noAffAcctByIIP = map[string]string{}
	for _, name := range iip.StandardNames {
		apps := w.AffiliatesForIIP(name)
		w.affByIIP[name] = apps
		accts := make([]string, len(apps))
		for i, a := range apps {
			accts[i] = mediator.AffiliateAccount(a.Package)
		}
		w.affAcctByIIP[name] = accts
		// IIPs without instrumented affiliates still have their own
		// (unobserved) distribution network.
		w.noAffAcctByIIP[name] = mediator.AffiliateAccount("uninstrumented." + name)
	}
}
