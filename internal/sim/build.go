package sim

import (
	"fmt"
	"math"

	"repro/internal/apk"
	"repro/internal/crunchbase"
	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/offers"
	"repro/internal/randx"
	"repro/internal/textgen"
)

// activitySubtypeWeights splits activity offers into usage, registration,
// and purchase in the paper's 37:11:5 overall proportion (Table 3).
var activitySubtypeWeights = []float64{37, 11, 5}

var activitySubtypes = []offers.Type{offers.Usage, offers.Registration, offers.Purchase}

// buildCampaigns launches every planned campaign on its platform: it
// registers developers (passing the vetted review where needed), deposits
// funds through the ledger, generates offer descriptions, and registers
// completion requirements with the mediator.
func (w *World) buildCampaigns() error {
	r := randx.Derive(w.Cfg.Seed, "campaigns")
	grammar := offers.NewGrammar(randx.Derive(w.Cfg.Seed, "grammar"))

	// Count app-IIP pairs, then spread OffersTarget over them: every
	// pair gets one offer, the surplus lands on random pairs.
	type pair struct {
		app *AdvertisedApp
		iip string
	}
	var pairs []pair
	for _, a := range w.Advertised {
		for _, name := range a.IIPs {
			pairs = append(pairs, pair{a, name})
		}
	}
	offersPerPair := make([]int, len(pairs))
	for i := range offersPerPair {
		offersPerPair[i] = 1
	}
	for extra := w.Cfg.OffersTarget - len(pairs); extra > 0; extra-- {
		offersPerPair[r.IntN(len(pairs))]++
	}

	for i, p := range pairs {
		platform := w.Platforms[p.iip]
		devID := string(p.app.Developer)
		if err := w.ensureIIPAccount(platform, devID); err != nil {
			return err
		}
		for k := 0; k < offersPerPair[i]; k++ {
			if err := w.launchOne(r, grammar, platform, p.app, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// ensureIIPAccount registers the developer on the platform once.
func (w *World) ensureIIPAccount(platform *iip.Platform, devID string) error {
	if _, err := platform.Balance(devID); err == nil {
		return nil
	}
	docs := iip.Documentation{}
	if platform.Vetted {
		docs = iip.Documentation{
			TaxID:       "TAX-" + devID,
			BankAccount: "IBAN-" + devID,
		}
	}
	return platform.RegisterDeveloper(devID, docs)
}

// launchOne creates and funds a single campaign for (app, platform).
func (w *World) launchOne(r *randx.Rand, grammar *offers.Grammar, platform *iip.Platform, app *AdvertisedApp, seq int) error {
	name := platform.Name
	// Offer type: per-IIP no-activity share, then the global activity
	// subtype split.
	var typ offers.Type
	if r.Bool(w.Cfg.NoActivityShare[name]) {
		typ = offers.NoActivity
	} else {
		typ = activitySubtypes[r.WeightedIndex(activitySubtypeWeights)]
	}
	// Arbitrage apps convert one usage-ish offer into an arbitrage offer.
	arb := app.Arbitrage && typ == offers.Usage && seq == 0

	payout := basePayoutFor(typ) * w.Cfg.PayoutScale[name] * r.LogNormal(0, 0.35)
	if payout < 0.01 {
		payout = 0.01
	}

	start := w.Cfg.Window.Start.AddDays(r.IntN(maxInt(1, w.Cfg.Window.Days()-12)))
	duration := int(r.LogNormal(lnF(float64(w.Cfg.MeanCampaignDays)), 0.5))
	if duration < 3 {
		duration = 3
	}
	end := start.AddDays(duration)
	if end > w.Cfg.Window.End {
		end = w.Cfg.Window.End
	}

	target := r.IntBetween(w.Cfg.CampaignTargetMinUnvetted, w.Cfg.CampaignTargetMaxUnvetted)
	if platform.Vetted {
		target = r.IntBetween(w.Cfg.CampaignTargetMinVetted, w.Cfg.CampaignTargetMaxVetted)
		// Established apps purchase proportionally larger campaigns.
		target = int(float64(target) * w.campaignSizeFactor(app.Package))
	}

	spec := iip.CampaignSpec{
		Developer:     string(app.Developer),
		AppPackage:    app.Package,
		Description:   grammar.Describe(typ, arb),
		Type:          typ,
		Arbitrage:     arb,
		UserPayoutUSD: round2(payout),
		Target:        target,
		Window:        dates.Range{Start: start, End: end},
	}

	// Fund the account for the full campaign plus mediator fees.
	cost := platform.GrossCostPerInstall(spec.UserPayoutUSD)*float64(target) + w.Mediator.FeePerUser*float64(target)
	deposit := cost * 1.05
	if deposit < platform.MinDepositUSD {
		deposit = platform.MinDepositUSD
	}
	if err := platform.Deposit(spec.Developer, deposit); err != nil {
		return fmt.Errorf("funding %s on %s: %w", spec.Developer, platform.Name, err)
	}
	if err := w.Ledger.Post(mediator.ExternalWorld, mediator.DeveloperAccount(spec.Developer), deposit, "campaign funding"); err != nil {
		return err
	}

	c, err := platform.LaunchCampaign(spec)
	if err != nil {
		return fmt.Errorf("launching for %s on %s: %w", app.Package, platform.Name, err)
	}
	w.Mediator.RegisterOffer(c.OfferID, typ)

	// Daily uptake: user demand for the offer, heavier for higher
	// payouts. Unvetted platforms carry small cheap campaigns; vetted
	// platforms serve established apps whose campaign volumes scale with
	// the existing user base (a 1M-install app buys proportionally more
	// completions than a 100-install one).
	base := 1.0
	sizeFactor := 1.0
	if platform.Vetted {
		base = 2.2
		sizeFactor = w.campaignSizeFactor(app.Package)
	}
	uptake := base * sizeFactor * r.LogNormal(0, 1.1) * (0.5 + math.Min(payout, 3.0))
	// A slice of unvetted campaigns is fulfilled by outright bot farms,
	// whose device reputation is bad enough for Play's install filter to
	// occasionally catch (the ~2% of unvetted apps whose counts dropped
	// in Section 5.2).
	botness := 0.0
	if !platform.Vetted && r.Bool(0.12) {
		botness = 0.3
		// Bot farms deliver in volume: fraudulent fulfillment is fast.
		uptake *= 4
	}
	w.Campaigns = append(w.Campaigns, &PlannedCampaign{
		IIP:         name,
		OfferID:     c.OfferID,
		App:         app.Package,
		Spec:        spec,
		DailyUptake: uptake,
		Botness:     botness,
	})
	return nil
}

// campaignSizeFactor scales vetted campaign volume with the app's user
// base so purchased engagement stays a meaningful fraction of organic
// engagement — a 1M-install app buys campaigns sized for a 1M-install app.
func (w *World) campaignSizeFactor(pkg string) float64 {
	installs, err := w.Store.ExactInstalls(pkg)
	if err != nil {
		return 1
	}
	return math.Min(3000, math.Max(1, math.Pow(float64(installs), 0.72)/450))
}

func basePayoutFor(t offers.Type) float64 {
	switch t {
	case offers.NoActivity:
		return BasePayout["noactivity"]
	case offers.Usage:
		return BasePayout["usage"]
	case offers.Registration:
		return BasePayout["registration"]
	default:
		return BasePayout["purchase"]
	}
}

func round2(x float64) float64 {
	return math.Round(x*100) / 100
}

// buildCrunchbase creates the funding database: matched developers for
// advertised and baseline apps, funding rounds after campaign windows, and
// public-company flags.
func (w *World) buildCrunchbase() {
	r := randx.Derive(w.Cfg.Seed, "crunchbase")
	orgSeq := 0

	roundTypes := []crunchbase.RoundType{
		crunchbase.Seed, crunchbase.Angel, crunchbase.SeriesA,
		crunchbase.SeriesB, crunchbase.SeriesC, crunchbase.SeriesD,
		crunchbase.SeriesF,
	}

	// Advertised apps.
	publicLeft := 28
	for _, a := range w.Advertised {
		dev, err := w.Store.Developer(a.Developer)
		if err != nil {
			continue
		}
		matchP := w.Cfg.CrunchbaseMatchUnvetted
		fundP := w.Cfg.FundedAfterUnvetted
		if a.OnVetted() {
			matchP = w.Cfg.CrunchbaseMatchVetted
			fundP = w.Cfg.FundedAfterVetted
		}
		if !r.Bool(matchP) {
			continue
		}
		if dev.Website == "" {
			// Unmatched: profile too sparse to resolve, mirroring the
			// paper's unmatched unvetted developers.
			continue
		}
		public := publicLeft > 0 && r.Bool(0.035)
		if public {
			publicLeft--
		}
		orgSeq++
		orgID := fmt.Sprintf("org-%05d", orgSeq)
		w.Crunch.AddOrganization(crunchbase.Organization{
			ID: orgID, Name: dev.Name, Website: dev.Website,
			Country: dev.Country, Public: public,
		})
		if r.Bool(fundP) {
			// Round lands a couple of weeks after the app's last
			// campaign, as in the Dashlane/Droom case studies.
			end := w.lastCampaignEnd(a.Package)
			w.Crunch.AddRound(crunchbase.Round{
				OrgID:     orgID,
				Date:      end.AddDays(r.IntBetween(10, 30)),
				Type:      randx.Choice(r, roundTypes),
				AmountUSD: r.LogUniform(1e6, 120e6),
				Investor:  w.gen.CompanyName() + " Ventures",
			})
		}
	}

	// Baseline apps.
	for _, pkg := range w.Baseline {
		dev, err := w.Store.Developer(w.devOfApp[pkg])
		if err != nil || !r.Bool(w.Cfg.CrunchbaseMatchBaseline) || dev.Website == "" {
			continue
		}
		orgSeq++
		orgID := fmt.Sprintf("org-%05d", orgSeq)
		w.Crunch.AddOrganization(crunchbase.Organization{
			ID: orgID, Name: dev.Name, Website: dev.Website, Country: dev.Country,
		})
		if r.Bool(w.Cfg.FundedAfterBaseline) {
			w.Crunch.AddRound(crunchbase.Round{
				OrgID:     orgID,
				Date:      w.Cfg.Window.Start.AddDays(r.IntN(w.Cfg.Window.Days() + 60)),
				Type:      randx.Choice(r, roundTypes),
				AmountUSD: r.LogUniform(1e6, 120e6),
				Investor:  w.gen.CompanyName() + " Ventures",
			})
		}
	}
}

// lastCampaignEnd returns the latest campaign end for an app (or the
// window start when the app has no campaigns yet).
func (w *World) lastCampaignEnd(pkg string) dates.Date {
	end := w.Cfg.Window.Start
	for _, c := range w.Campaigns {
		if c.App == pkg && c.Spec.Window.End > end {
			end = c.Spec.Window.End
		}
	}
	return end
}

// buildAPKs assembles an APK for every advertised and baseline app, with
// ad-library counts conditioned on offer behaviour to match Figure 6.
func (w *World) buildAPKs() error {
	r := randx.Derive(w.Cfg.Seed, "apks")
	adLibs := apk.AdLibraryNames()
	nonAd := []string{"OkHttp", "Gson", "Glide", "Firebase", "AppsFlyer", "EventBus"}

	hasActivity := map[string]bool{}
	for _, c := range w.Campaigns {
		if c.Spec.Type.IsActivity() {
			hasActivity[c.App] = true
		}
	}

	build := func(pkg string, lambda float64) error {
		nAds := r.Poisson(lambda)
		if nAds > len(adLibs) {
			nAds = len(adLibs)
		}
		libs := randx.Sample(r, adLibs, nAds)
		libs = append(libs, randx.Sample(r, nonAd, r.IntBetween(1, 4))...)
		a, err := apk.Build(r, pkg, libs, w.Cfg.Obfuscation)
		if err != nil {
			return err
		}
		w.APKs[pkg] = a
		return nil
	}

	for _, a := range w.Advertised {
		// Activity-offer apps integrate more ad SDKs (60% with >= 5 in
		// Figure 6a); no-activity apps fewer; young unvetted-only apps
		// the fewest (Figure 6b's 20% for unvetted).
		lambda := 4.0 // vetted-class, no-activity
		switch {
		case hasActivity[a.Package] && a.OnVetted():
			lambda = 5.9
		case hasActivity[a.Package]:
			lambda = 4.4 // unvetted-only activity apps stay lean
		case !a.OnVetted():
			lambda = 3.2 // young unvetted-only apps carry few SDKs
		}
		if err := build(a.Package, lambda); err != nil {
			return err
		}
	}
	for _, pkg := range w.Baseline {
		if err := build(pkg, 4.4); err != nil { // baseline: 35% with >= 5
			return err
		}
	}
	return nil
}

// buildPools generates per-IIP crowd-worker pools.
func (w *World) buildPools() {
	defaults := device.DefaultPools()
	for _, name := range iip.StandardNames {
		cfg, ok := defaults[name]
		if !ok {
			cfg = defaults["generic"]
			cfg.IIP = name
		}
		r := randx.Derive(w.Cfg.Seed, "pool-"+name)
		w.Pools[name] = device.GeneratePool(r, textgen.New(r), cfg, w.Cfg.WorkerPoolSize)
	}
}
