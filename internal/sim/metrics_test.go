package sim

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestMetricsObservationOffDeterministicPath is E11's acceptance bar at
// the engine layer: attaching the full metrics surface (registry +
// run-phase tracer) must not perturb the simulation in any observable
// way. An instrumented 5-worker run must produce RunStats and run-log
// bytes bit-identical to a bare single-worker run — metrics draw no
// randomness and never feed back into sim logic — while the registry
// ends up with a self-consistent account of the run it watched.
func TestMetricsObservationOffDeterministicPath(t *testing.T) {
	cfg := microConfig()
	cfg.Workers = 1
	plainBytes, plainStats, _ := loggedRun(t, cfg, RunOptions{})

	reg := obs.NewRegistry()
	tr := obs.NewTracer(16) // tiny ring: the run overflows it, wrapping must stay safe
	cfg.Workers = 5
	instrBytes, instrStats, _ := loggedRun(t, cfg, RunOptions{Metrics: NewMetrics(reg, tr)})

	if plainStats != instrStats {
		t.Errorf("stats diverge with metrics attached: %+v vs %+v", plainStats, instrStats)
	}
	if !bytes.Equal(plainBytes, instrBytes) {
		for i := range plainBytes {
			if i >= len(instrBytes) || plainBytes[i] != instrBytes[i] {
				t.Fatalf("log bytes diverge at offset %d of %d/%d", i, len(plainBytes), len(instrBytes))
			}
		}
		t.Fatalf("log lengths differ: %d vs %d", len(plainBytes), len(instrBytes))
	}

	// The registry must agree with the run it observed.
	snap := reg.Snapshot()
	days := int64(plainStats.Days)
	if got := snap["sim_days_total"].(int64); got != days {
		t.Errorf("sim_days_total = %d, want %d", got, days)
	}
	for _, h := range []string{"sim_day_seconds", "sim_phase_organic_seconds", "sim_phase_campaign_seconds", "sim_phase_log_emit_seconds", "sim_phase_step_day_seconds", "sim_phase_barrier_seconds"} {
		if got := snap[h].(obs.HistogramSnapshot).Count; got != days {
			t.Errorf("%s count = %d, want one observation per day (%d)", h, got, days)
		}
	}
	if got := snap["sim_events_emitted_total"].(int64); got <= 0 {
		t.Errorf("sim_events_emitted_total = %d, want > 0", got)
	}
	// No checkpointing was configured: the checkpoint metrics must say so.
	if got := snap["sim_checkpoints_total"].(int64); got != 0 {
		t.Errorf("sim_checkpoints_total = %d, want 0", got)
	}
	// The tracer saw every span the run recorded (day + 5 phases per day),
	// even though its ring only retains the last 16.
	if got, want := tr.Total(), 6*days; got != want {
		t.Errorf("tracer recorded %d spans, want %d", got, want)
	}
	if got := len(tr.Spans()); got != 16 {
		t.Errorf("tracer retained %d spans, want its capacity 16", got)
	}
}
