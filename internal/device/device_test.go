package device

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
	"repro/internal/textgen"
)

func genPool(t *testing.T, iipName string, n int) []*Worker {
	t.Helper()
	cfg, ok := DefaultPools()[iipName]
	if !ok {
		t.Fatalf("no pool config for %s", iipName)
	}
	r := randx.Derive(42, "pool-"+iipName)
	return GeneratePool(r, textgen.New(r), cfg, n)
}

func TestPoolDeterminism(t *testing.T) {
	a := genPool(t, "Fyber", 100)
	b := genPool(t, "Fyber", 100)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Country != b[i].Country || a[i].SSIDHash != b[i].SSIDHash {
			t.Fatal("pool generation not deterministic")
		}
	}
}

func TestRankAppPoolMatchesPaper(t *testing.T) {
	workers := genPool(t, "RankApp", 500)
	if len(workers) != 500 {
		t.Fatalf("pool size = %d", len(workers))
	}
	moneyApps := 0
	topAff := 0
	farm := 0
	for _, w := range workers {
		if w.HasMoneyApp() {
			moneyApps++
		}
		if w.HasApp("eu.gcashapp") {
			topAff++
		}
		if w.FarmID > 0 {
			farm++
		}
	}
	// Paper: 98% of RankApp users have a money-keyword affiliate app.
	if frac := float64(moneyApps) / 500; math.Abs(frac-0.98) > 0.04 {
		t.Errorf("money-app fraction = %.3f, want ~0.98", frac)
	}
	// Paper: eu.gcashapp on 37% of RankApp devices.
	if frac := float64(topAff) / 500; math.Abs(frac-0.37) > 0.07 {
		t.Errorf("gcashapp fraction = %.3f, want ~0.37", frac)
	}
	// Paper: 20 installs behind one /24, 18 rooted sharing an SSID.
	if farm != 20 {
		t.Errorf("farm size = %d, want 20", farm)
	}
}

func TestFarmSharesNetwork(t *testing.T) {
	workers := genPool(t, "RankApp", 500)
	blocks := map[string]int{}
	ssids := map[string]int{}
	rooted := 0
	for _, w := range workers {
		if w.FarmID == 0 {
			continue
		}
		blocks[w.IPBlock]++
		ssids[w.SSIDHash]++
		if w.Rooted {
			rooted++
		}
	}
	if len(blocks) != 1 {
		t.Errorf("farm spans %d /24 blocks, want 1", len(blocks))
	}
	if len(ssids) != 1 {
		t.Errorf("farm spans %d SSIDs, want 1", len(ssids))
	}
	if rooted < 15 { // paper: 18 of 20 rooted
		t.Errorf("farm rooted = %d, want most of 20", rooted)
	}
}

func TestAutomationSignalsPerPool(t *testing.T) {
	cases := []struct {
		iip       string
		emulators int
		clouds    int
	}{
		{"Fyber", 2, 2},
		{"ayeT-Studios", 0, 4},
		{"RankApp", 2, 1},
	}
	for _, c := range cases {
		workers := genPool(t, c.iip, 500)
		em, cl := 0, 0
		for _, w := range workers {
			if w.Emulator {
				em++
				if !strings.Contains(w.Build, "generic") && !strings.Contains(w.Build, "genymotion") {
					t.Errorf("%s: emulator build lacks marker: %s", c.iip, w.Build)
				}
			}
			if w.ASN == ASNCloud {
				cl++
				if w.ASNName == "carrier" {
					t.Errorf("%s: cloud worker has carrier ASN name", c.iip)
				}
			}
		}
		if em != c.emulators {
			t.Errorf("%s emulators = %d, want %d", c.iip, em, c.emulators)
		}
		if cl != c.clouds {
			t.Errorf("%s cloud devices = %d, want %d", c.iip, cl, c.clouds)
		}
	}
}

func TestFraudScoreOrdering(t *testing.T) {
	clean := &Worker{}
	emu := &Worker{Emulator: true}
	cloud := &Worker{ASN: ASNCloud}
	farm := &Worker{FarmID: 1, Rooted: true}
	if !(clean.FraudScore() < emu.FraudScore()) {
		t.Error("emulator must score higher than clean")
	}
	if !(clean.FraudScore() < cloud.FraudScore()) {
		t.Error("cloud must score higher than clean")
	}
	if !(clean.FraudScore() < farm.FraudScore()) {
		t.Error("farm must score higher than clean")
	}
	everything := &Worker{Emulator: true, ASN: ASNCloud, FarmID: 1, Rooted: true}
	if everything.FraudScore() > 1 {
		t.Error("fraud score must be capped at 1")
	}
	for _, w := range []*Worker{clean, emu, cloud, farm, everything} {
		s := w.FraudScore()
		if s < 0 || s > 1 {
			t.Errorf("score out of range: %g", s)
		}
	}
}

func TestOpenAndEngagementCalibration(t *testing.T) {
	pools := DefaultPools()
	// RankApp: ~45% of installs never send telemetry -> OpenProb ~0.55.
	if p := pools["RankApp"].OpenProb; math.Abs(p-0.55) > 0.01 {
		t.Errorf("RankApp OpenProb = %g", p)
	}
	// Fyber and ayeT: telemetry matches console -> OpenProb 1.
	if pools["Fyber"].OpenProb != 1 || pools["ayeT-Studios"].OpenProb != 1 {
		t.Error("Fyber/ayeT workers should always open")
	}
	// Engagement: 44% vs 6%.
	if pools["Fyber"].EngageProb != 0.44 || pools["RankApp"].EngageProb != 0.06 {
		t.Error("engagement probabilities off")
	}
}

func TestHasAppAndMoneyApp(t *testing.T) {
	w := &Worker{InstalledApps: []string{"com.foo.bar", "eu.gcashapp"}}
	if !w.HasApp("eu.gcashapp") || w.HasApp("missing.app") {
		t.Error("HasApp wrong")
	}
	if !w.HasMoneyApp() {
		t.Error("gcashapp should count as money app")
	}
	w2 := &Worker{InstalledApps: []string{"com.foo.bar"}}
	if w2.HasMoneyApp() {
		t.Error("no money app expected")
	}
}

func TestHashSSIDStableAndOpaque(t *testing.T) {
	h1 := HashSSID("NETGEAR-1234")
	h2 := HashSSID("NETGEAR-1234")
	if h1 != h2 {
		t.Error("hash must be stable")
	}
	if strings.Contains(h1, "NETGEAR") {
		t.Error("hash must not leak the SSID")
	}
	if HashSSID("other") == h1 {
		t.Error("different SSIDs should hash differently")
	}
}

func TestGenericPoolExists(t *testing.T) {
	workers := genPool(t, "generic", 100)
	if len(workers) != 100 {
		t.Fatal("generic pool generation failed")
	}
}
