// Package device models the population of users who complete incentivized
// offers: semi-professional crowd workers with money/reward affiliate apps
// on their phones, bots on emulators, devices connecting from cloud ASNs,
// and device farms sharing a /24 network and a WiFi SSID — the automation
// signals the paper's honey app detects in Section 3.
package device

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/textgen"
)

// ASNType classifies the network a device connects from.
type ASNType int

const (
	// ASNEyeball is a residential/mobile carrier network, expected for
	// real users.
	ASNEyeball ASNType = iota
	// ASNCloud is a datacenter network (e.g. Digital Ocean), a strong
	// automation signal.
	ASNCloud
)

func (a ASNType) String() string {
	if a == ASNCloud {
		return "cloud"
	}
	return "eyeball"
}

// CloudProviders are the datacenter ASNs observed in the paper.
var CloudProviders = []string{"DigitalOcean", "AWS", "OVH", "Hetzner", "Linode"}

// Worker is one participant in the incentivized install economy, with the
// device/network attributes the honey app's telemetry captures.
type Worker struct {
	ID      string
	Country string

	// Network attributes.
	IPBlock  string // /24 prefix, e.g. "203.0.113"
	ASN      ASNType
	ASNName  string
	SSIDHash string // hashed WiFi SSID, as the honey app stores it

	// Device attributes.
	Build    string
	Emulator bool
	Rooted   bool
	FarmID   int // > 0 when the device belongs to a device farm

	// InstalledApps is the package list the honey app uploads; it is how
	// the study identifies affiliate apps on workers' devices.
	InstalledApps []string

	// BaseFraud is the pool's baseline device-reputation penalty; lax
	// platforms attract worker bases that look worse to install
	// filtering even before emulator/farm signals.
	BaseFraud float64

	// Behaviour parameters.
	// OpenProb is the probability the worker actually opens an installed
	// app (RankApp workers often collect the reward via fake postbacks
	// without ever opening it — 45% of the paper's RankApp installs sent
	// no telemetry).
	OpenProb float64
	// EngageProb is the probability of exercising app functionality
	// beyond the offer requirement (clicking the honey app's record
	// button).
	EngageProb float64
	// ReturnProb is the per-day probability of coming back after the
	// offer is complete; engagement "quickly fades over time".
	ReturnProb float64
}

// HasMoneyApp reports whether any installed app carries a money/reward
// keyword (the paper's affiliate-app fingerprint).
func (w *Worker) HasMoneyApp() bool {
	for _, pkg := range w.InstalledApps {
		if textgen.HasMoneyKeyword(pkg) {
			return true
		}
	}
	return false
}

// HasApp reports whether the worker's device carries the named package.
func (w *Worker) HasApp(pkg string) bool {
	for _, p := range w.InstalledApps {
		if p == pkg {
			return true
		}
	}
	return false
}

// FraudScore summarizes how suspicious the device looks to an install
// filtering system, in [0, 1]. It is consumed as playstore.Install's
// FraudScore.
func (w *Worker) FraudScore() float64 {
	score := w.BaseFraud
	if score <= 0 {
		score = 0.30 // baseline: incentivized devices install many promoted apps
	}
	if w.Emulator {
		score += 0.45
	}
	if w.ASN == ASNCloud {
		score += 0.35
	}
	if w.FarmID > 0 {
		score += 0.30
	}
	if w.Rooted {
		score += 0.10
	}
	if score > 1 {
		score = 1
	}
	return score
}

// PoolConfig calibrates a per-IIP worker pool to the behaviour the paper
// measured for that platform's users.
type PoolConfig struct {
	IIP string
	// OpenProb, EngageProb, ReturnProb are the behaviour parameters
	// assigned to every worker in the pool.
	OpenProb, EngageProb, ReturnProb float64
	// MoneyAppProb is the fraction of workers with at least one
	// money-keyword affiliate app installed.
	MoneyAppProb float64
	// TopAffiliate is the pool's most popular affiliate app and the
	// fraction of workers carrying it.
	TopAffiliate     string
	TopAffiliateProb float64
	// EmulatorCount / CloudCount are the expected numbers of automated
	// devices per 500 workers.
	EmulatorCount, CloudCount int
	// FarmSize > 0 plants one device farm of that size in the pool:
	// devices sharing a /24 block and SSID, mostly rooted.
	FarmSize       int
	FarmRootedFrac float64
	// BaseFraud seeds every worker's baseline fraud score.
	BaseFraud float64
}

// DefaultPools returns per-IIP pool configurations calibrated to the
// paper's Section 3 measurements for the three purchased campaigns, plus a
// generic crowd for the remaining IIPs.
func DefaultPools() map[string]PoolConfig {
	return map[string]PoolConfig{
		"Fyber": {
			IIP:      "Fyber",
			OpenProb: 1.0, EngageProb: 0.44, ReturnProb: 0.006,
			BaseFraud:    0.30,
			MoneyAppProb: 0.42,
			TopAffiliate: "proxima.makemoney.android", TopAffiliateProb: 0.09,
			EmulatorCount: 2, CloudCount: 2,
		},
		"ayeT-Studios": {
			IIP:      "ayeT-Studios",
			OpenProb: 1.0, EngageProb: 0.44, ReturnProb: 0.003,
			BaseFraud:    0.42,
			MoneyAppProb: 0.72,
			TopAffiliate: "com.ayet.cashpirate", TopAffiliateProb: 0.20,
			EmulatorCount: 0, CloudCount: 4,
		},
		"RankApp": {
			IIP:      "RankApp",
			OpenProb: 0.55, EngageProb: 0.06, ReturnProb: 0.005,
			BaseFraud:    0.48,
			MoneyAppProb: 0.98,
			TopAffiliate: "eu.gcashapp", TopAffiliateProb: 0.37,
			EmulatorCount: 2, CloudCount: 1,
			FarmSize: 20, FarmRootedFrac: 0.9,
		},
		"generic": {
			IIP:      "generic",
			OpenProb: 0.9, EngageProb: 0.3, ReturnProb: 0.01,
			BaseFraud:    0.32,
			MoneyAppProb: 0.6,
			TopAffiliate: "com.mobvantage.cashforapps", TopAffiliateProb: 0.15,
			EmulatorCount: 1, CloudCount: 1,
		},
	}
}

// otherAffiliates are additional reward apps sprinkled across worker
// devices.
var otherAffiliates = []string{
	"com.mobvantage.cashforapps",
	"proxima.makemoney.android",
	"proxima.moneyapp.android",
	"com.bigcash.app",
	"com.ayet.cashpirate",
	"eu.makemoney",
	"com.growrich.makemoney",
	"make.money.easy",
	"eu.gcashapp",
}

// GeneratePool builds n workers according to cfg. The generator is
// deterministic for a given RNG state.
func GeneratePool(r *randx.Rand, gen *textgen.Gen, cfg PoolConfig, n int) []*Worker {
	workers := make([]*Worker, 0, n)
	// Scale the automation counts to the pool size (configs are per 500);
	// a nonzero configured count always yields at least one device so
	// small test pools keep every signal class.
	scale := float64(n) / 500.0
	emulators := scaleCount(cfg.EmulatorCount, scale)
	clouds := scaleCount(cfg.CloudCount, scale)

	farmBlock := fmt.Sprintf("10.%d.%d", r.IntN(256), r.IntN(256))
	farmSSID := hashSSID(gen.SSID())

	for i := 0; i < n; i++ {
		w := &Worker{
			ID:         fmt.Sprintf("%s-w%05d", cfg.IIP, i),
			BaseFraud:  cfg.BaseFraud,
			Country:    gen.Country(),
			IPBlock:    fmt.Sprintf("%d.%d.%d", 1+r.IntN(223), r.IntN(256), r.IntN(256)),
			ASN:        ASNEyeball,
			ASNName:    "carrier",
			SSIDHash:   hashSSID(gen.SSID()),
			OpenProb:   cfg.OpenProb,
			EngageProb: cfg.EngageProb,
			ReturnProb: cfg.ReturnProb,
		}
		switch {
		case i < emulators:
			w.Emulator = true
			w.Build = gen.DeviceBuild(true)
		case i < emulators+clouds:
			w.ASN = ASNCloud
			w.ASNName = randx.Choice(r, CloudProviders)
			w.Build = gen.DeviceBuild(false)
		case cfg.FarmSize > 0 && i < emulators+clouds+cfg.FarmSize:
			w.FarmID = 1
			w.IPBlock = farmBlock
			w.SSIDHash = farmSSID
			w.Rooted = r.Bool(cfg.FarmRootedFrac)
			w.Build = gen.DeviceBuild(false)
		default:
			w.Build = gen.DeviceBuild(false)
			w.Rooted = r.Bool(0.05)
		}
		w.InstalledApps = installedApps(r, gen, cfg)
		workers = append(workers, w)
	}
	return workers
}

// scaleCount scales a per-500 count to the pool size, keeping nonzero
// configured counts at one or more.
func scaleCount(base int, scale float64) int {
	if base == 0 {
		return 0
	}
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// installedApps samples a worker's package list.
func installedApps(r *randx.Rand, gen *textgen.Gen, cfg PoolConfig) []string {
	n := r.IntBetween(8, 35)
	apps := make([]string, 0, n+2)
	for i := 0; i < n; i++ {
		apps = append(apps, gen.PackageName(gen.AppTitle()))
	}
	// A MoneyAppProb fraction of the pool carries at least one
	// money-keyword affiliate app; within that group, the pool's top
	// affiliate appears with conditional probability so its overall share
	// matches TopAffiliateProb.
	if r.Bool(cfg.MoneyAppProb) {
		topCond := 0.0
		if cfg.MoneyAppProb > 0 {
			topCond = cfg.TopAffiliateProb / cfg.MoneyAppProb
		}
		if r.Bool(topCond) {
			apps = append(apps, cfg.TopAffiliate)
		} else {
			apps = append(apps, randx.Choice(r, otherAffiliates))
		}
	}
	return apps
}

// hashSSID reproduces the honey app's privacy transform: only a hash of
// the WiFi network name is stored.
func hashSSID(ssid string) string {
	const offset = 0xcbf29ce484222325
	const prime = 0x100000001b3
	h := uint64(offset)
	for i := 0; i < len(ssid); i++ {
		h ^= uint64(ssid[i])
		h *= prime
	}
	return fmt.Sprintf("ssid:%016x", h)
}

// HashSSID exposes the telemetry SSID transform for the honey-app client.
func HashSSID(ssid string) string { return hashSSID(ssid) }
