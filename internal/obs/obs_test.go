package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var tr *Tracer
	tr.Record("x", "", time.Now(), time.Second)
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.CounterFunc("x", "", nil)
	r.GaugeFunc("x", "", nil)
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	// Exactly on a bound is le-inclusive: 1 lands in the le="1" bucket.
	h.Observe(1)
	// Below the first bound.
	h.Observe(0.5)
	// Between bounds.
	h.Observe(1.5)
	// Exactly the last bound.
	h.Observe(5)
	// Above every bound: +Inf only.
	h.Observe(100)

	bounds, cum, count, sum := h.snapshot()
	if want := []float64{1, 2, 5}; len(bounds) != len(want) {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: le=1 → {1, 0.5}; le=2 → +{1.5}; le=5 → +{5}; +Inf → +{100}.
	wantCum := []int64{2, 3, 4, 5}
	for i, want := range wantCum {
		if cum[i] != want {
			t.Fatalf("cum[%d] = %d, want %d (cum=%v)", i, cum[i], want, cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := 1 + 0.5 + 1.5 + 5 + 100; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestHistogramDefaultBucketsSorted(t *testing.T) {
	h := newHistogram(nil)
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i-1] >= h.bounds[i] {
			t.Fatalf("DefBuckets not strictly ascending at %d: %v", i, h.bounds)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instance")
	}
	h1 := r.Histogram("lat_seconds", "", nil)
	h2 := r.Histogram("lat_seconds", "", []float64{1})
	if h1 != h2 {
		t.Fatal("re-registering the same histogram must return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs processed")
	c.Add(3)
	r.Counter(`cells_total{state="done"}`, "cells by state").Add(2)
	r.Counter(`cells_total{state="pending"}`, "cells by state").Add(7)
	g := r.Gauge("temp", "temperature")
	g.Set(1.5)
	r.GaugeFunc("up", "always one", func() float64 { return 1 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total jobs processed\n# TYPE jobs_total counter\njobs_total 3\n",
		"# HELP cells_total cells by state\n# TYPE cells_total counter\ncells_total{state=\"done\"} 2\ncells_total{state=\"pending\"} 7\n",
		"temp 1.5\n",
		"up 1\n",
		"# TYPE lat_seconds histogram\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 2.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per family, even with multiple labeled series.
	if n := strings.Count(out, "# TYPE cells_total"); n != 1 {
		t.Fatalf("family header repeated %d times:\n%s", n, out)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Gauge("b", "").Set(2.5)
	h := r.Histogram("c_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if string(got["a_total"]) != "4" {
		t.Fatalf("a_total = %s", got["a_total"])
	}
	if string(got["b"]) != "2.5" {
		t.Fatalf("b = %s", got["b"])
	}
	var hs HistogramSnapshot
	if err := json.Unmarshal(got["c_seconds"], &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Count != 2 || hs.Buckets["1"] != 1 || hs.Buckets["+Inf"] != 2 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

// TestRegistryConcurrency hammers every metric type while exposition
// runs; run under -race this is the registry's data-race proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.WritePrometheus(io.Discard)
				r.Snapshot()
				tr.Spans()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_seconds", "", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 1000)
				tr.Record("phase", "", time.Now(), time.Microsecond)
			}
		}()
	}
	writers.Wait()
	close(stop)
	<-scraperDone

	if got := r.Counter("conc_total", "").Value(); got != 8000 {
		t.Fatalf("conc_total = %d, want 8000", got)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("conc_seconds count = %d, want 8000", got)
	}
	if tr.Total() != 8000 || len(tr.Spans()) != 64 {
		t.Fatalf("tracer total=%d retained=%d", tr.Total(), len(tr.Spans()))
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		tr.Record("p", string(rune('a'+i)), base.Add(time.Duration(i)), time.Duration(i))
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	// Oldest-first: records c, d, e survive.
	for i, want := range []string{"c", "d", "e"} {
		if spans[i].Label != want {
			t.Fatalf("spans[%d].Label = %q, want %q", i, spans[i].Label, want)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	var b bytes.Buffer
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 3 {
		t.Fatalf("dump has %d lines:\n%s", lines, b.String())
	}
}

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	lg, err := lf.Logger(&b)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 7)
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%s)", err, b.String())
	}
	if rec["msg"] != "hello" || rec["k"] != float64(7) || rec["level"] != "DEBUG" {
		t.Fatalf("record = %v", rec)
	}

	lf.Level = "verbose"
	if _, err := lf.Logger(io.Discard); err == nil {
		t.Fatal("bad level must error")
	}
	lf.Level = "warn"
	lf.Format = "xml"
	if _, err := lf.Logger(io.Discard); err == nil {
		t.Fatal("bad format must error")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(9)
	tr := NewTracer(8)
	tr.Record("day", "2019-03-01", time.Now(), time.Millisecond)
	srv := httptest.NewServer(Handler(r, tr, true))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "hits_total 9") {
		t.Fatalf("/metrics:\n%s", body)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["hits_total"] != float64(9) {
		t.Fatalf("/debug/vars = %v", vars)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(get("/debug/trace")), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "day" {
		t.Fatalf("/debug/trace = %v", spans)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}
