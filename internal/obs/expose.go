package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// fmtFloat renders a metric value the way Prometheus text exposition
// expects: shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// spliceLabel inserts an extra label into a series name that may already
// carry a label suffix: name{a="b"} + le="x" → name{a="b",le="x"}.
func spliceLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, grouped by family (one # HELP/# TYPE header per
// family, series in registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	headered := map[string]bool{}
	var b strings.Builder
	for _, m := range metrics {
		if !headered[m.family] {
			headered[m.family] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, promType(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.fn()))
		case kindHistogram:
			bounds, cum, count, sum := m.hist.snapshot()
			for i, le := range bounds {
				fmt.Fprintf(&b, "%s %d\n", spliceLabel(m.name+"_bucket", `le="`+fmtFloat(le)+`"`), cum[i])
			}
			fmt.Fprintf(&b, "%s %d\n", spliceLabel(m.name+"_bucket", `le="+Inf"`), cum[len(cum)-1])
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, fmtFloat(sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramSnapshot is the JSON shape of one histogram in Snapshot.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → cumulative count
}

// Snapshot returns every metric as a JSON-marshalable map (the
// /debug/vars payload): counters and gauges as numbers, histograms as
// HistogramSnapshot values.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := make(map[string]any, len(metrics))
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindCounterFunc, kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			bounds, cum, count, sum := m.hist.snapshot()
			buckets := make(map[string]int64, len(cum))
			for i, le := range bounds {
				buckets[fmtFloat(le)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			out[m.name] = HistogramSnapshot{Count: count, Sum: sum, Buckets: buckets}
		}
	}
	return out
}
