// Package obs is the repo's observability substrate: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms,
// with Prometheus text exposition and a JSON snapshot), structured
// logging helpers over log/slog, and a bounded-ring run-phase tracer.
//
// The package is built for instrumentation that must stay provably off
// the deterministic path of the simulation: nothing here draws
// randomness, every metric type is nil-receiver safe (a nil *Counter or
// *Histogram no-ops, so whole subsystems compile their instrumentation
// out by carrying nil handles), and every hot-path operation is a single
// atomic op. Callers instrument at day-barrier granularity — a handful
// of time.Now calls per simulated day — never per event.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter no-ops, so disabled instrumentation costs one
// predictable branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a programming error but not checked:
// the exposition reports whatever was accumulated).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits in
// one atomic word. The zero value is ready; nil no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered series. name may carry a Prometheus label
// suffix (`foo_total{shard="3"}`); family is the name up to the brace,
// which groups series under one # HELP/# TYPE header.
type metric struct {
	name    string
	family  string
	help    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds named metrics and renders them as Prometheus text or a
// JSON snapshot. Registration is idempotent by full series name: asking
// for an already-registered name of the same kind returns the existing
// metric, so independent subsystems can wire the same counter without
// coordination. A nil *Registry returns nil metrics from every
// constructor — the switch that turns a whole binary's instrumentation
// off.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// family splits an optional label suffix off a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register adds m under its name, or returns the existing entry. A kind
// conflict panics: metric names are compile-time constants, so a clash
// is a programming error worth failing loudly on.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", m.name))
		}
		return prev
	}
	m.family = family(m.name)
	r.metrics = append(r.metrics, m)
	r.byName[m.name] = m
	return m
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// CounterFunc registers a counter whose value is computed at scrape time
// — the zero-hot-path-cost way to expose counts a subsystem already
// maintains (e.g. the sweep queue's Progress counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or returns) the named fixed-bucket histogram.
// buckets are ascending upper bounds (le-inclusive); nil uses
// DefBuckets. Histogram names must not carry label suffixes (the
// exposition splices its own le label).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("obs: histogram %q must not carry labels", name))
	}
	return r.register(&metric{name: name, help: help, kind: kindHistogram, hist: newHistogram(buckets)}).hist
}
