package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount attaches the observability endpoints to an existing mux:
//
//	GET /metrics      Prometheus text exposition
//	GET /debug/vars   JSON metric snapshot
//	GET /debug/trace  JSON span ring (when a tracer is attached)
//
// With pprofOn, net/http/pprof's handlers are mounted explicitly under
// /debug/pprof/ (opt-in: nothing is registered on the default mux).
func Mount(mux *http.ServeMux, reg *Registry, tr *Tracer, pprofOn bool) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.Spans())
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns a standalone mux with the Mount endpoints.
func Handler(reg *Registry, tr *Tracer, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg, tr, pprofOn)
	return mux
}

// Serve listens on addr (e.g. "127.0.0.1:0") and serves Handler in the
// background. It returns the bound address and a shutdown func.
func Serve(addr string, reg *Registry, tr *Tracer, pprofOn bool) (bound string, shutdown func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg, tr, pprofOn), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Shutdown
	return ln.Addr().String(), srv.Shutdown, nil
}
