package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds, spanning 10µs
// to 10s — wide enough for a day-barrier fsync and a full scale-world
// simulated day alike.
var DefBuckets = []float64{
	1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: per-bucket atomic counts plus
// an atomic float64-bits sum. Buckets are le-inclusive (an observation
// equal to a bound lands in that bound's bucket, matching Prometheus);
// observations above the last bound land in the implicit +Inf bucket.
// Observe is one atomic add per bucket plus a CAS for the sum — safe
// for concurrent use, nil-receiver safe.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: le-inclusive bucket selection. Values above every
	// bound index the final (+Inf) slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total observation count (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns bounds plus cumulative bucket counts (the final entry
// is the +Inf bucket, equal to Count modulo racing observers).
func (h *Histogram) snapshot() (bounds []float64, cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return h.bounds, cum, h.count.Load(), h.Sum()
}
