package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one recorded run phase: a named interval with an optional
// label (the engine records the simulated day here).
type Span struct {
	Name  string        `json:"name"`
	Label string        `json:"label,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Tracer records spans into a bounded ring: the last capacity spans are
// kept, older ones overwritten. Recording is one short mutex hold (the
// engine records ~7 spans per simulated day, so contention is nil); a
// nil Tracer no-ops. Dump the ring on exit or serve it live via
// /debug/trace.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total int64
}

// DefaultTraceCap bounds the ring when callers have no opinion: enough
// for ~500 simulated days of per-day phase spans.
const DefaultTraceCap = 4096

// NewTracer returns a tracer keeping the last capacity spans
// (capacity <= 0 uses DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// Record appends one span.
func (t *Tracer) Record(name, label string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{Name: name, Label: label, Start: start, Dur: d}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the retained spans as text, oldest first — the exit-time
// trace report.
func (t *Tracer) Dump(w io.Writer) error {
	for _, sp := range t.Spans() {
		label := sp.Label
		if label != "" {
			label = " " + label
		}
		if _, err := fmt.Fprintf(w, "%s %s%s %s\n",
			sp.Start.Format(time.RFC3339Nano), sp.Name, label, sp.Dur); err != nil {
			return err
		}
	}
	return nil
}
