package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFlags holds the shared -log-level / -log-format flag values every
// binary registers (RegisterLogFlags) and resolves into a slog.Logger
// after flag parsing.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLogFlags registers -log-level and -log-format on fs (pass
// flag.CommandLine in a main) and returns the destination struct.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "minimum log level: debug, info, warn, or error")
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text or json")
	return lf
}

// ParseLevel maps a level name onto its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger builds the structured logger the flags describe, writing to w.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(lf.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(lf.Format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", lf.Format)
}

// Discard returns a logger that drops everything — the nil-object for
// components that require a non-nil *slog.Logger.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
