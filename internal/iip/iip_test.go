package iip

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/offers"
)

var testWindow = dates.Range{Start: dates.StudyStart, End: dates.StudyStart.AddDays(30)}

func newFundedPlatform(t *testing.T, name string) *Platform {
	t.Helper()
	p := StandardPlatforms()[name]
	docs := Documentation{}
	if p.Vetted {
		docs = Documentation{TaxID: "US-123", BankAccount: "IBAN-1"}
	}
	if err := p.RegisterDeveloper("dev1", docs); err != nil {
		t.Fatal(err)
	}
	if err := p.Deposit("dev1", 5000); err != nil {
		t.Fatal(err)
	}
	return p
}

func launch(t *testing.T, p *Platform, spec CampaignSpec) *Campaign {
	t.Helper()
	c, err := p.LaunchCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func basicSpec() CampaignSpec {
	return CampaignSpec{
		Developer:     "dev1",
		AppPackage:    "com.acme.memo",
		Description:   "Install and Launch",
		Type:          offers.NoActivity,
		UserPayoutUSD: 0.06,
		Target:        500,
		Window:        testWindow,
	}
}

func TestStandardPlatformsMatchTable1(t *testing.T) {
	ps := StandardPlatforms()
	if len(ps) != 7 {
		t.Fatalf("expected 7 IIPs, got %d", len(ps))
	}
	wantVetted := map[string]bool{
		Fyber: true, OfferToro: true, AdscendMedia: true,
		HangMyAds: true, AdGem: true,
		AyetStudios: false, RankApp: false,
	}
	for name, vetted := range wantVetted {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing platform %s", name)
		}
		if p.Vetted != vetted {
			t.Errorf("%s vetted = %v, want %v", name, p.Vetted, vetted)
		}
	}
	// Unvetted platforms accept $20 campaigns; vetted demand much more.
	if ps[RankApp].MinDepositUSD > 20 {
		t.Error("RankApp should accept $20 deposits")
	}
	if ps[Fyber].MinDepositUSD < 1000 {
		t.Error("Fyber should require a four-figure deposit")
	}
}

func TestVettedRegistrationRequiresDocs(t *testing.T) {
	p := StandardPlatforms()[Fyber]
	err := p.RegisterDeveloper("dev1", Documentation{})
	if !errors.Is(err, ErrDocsRequired) {
		t.Errorf("want ErrDocsRequired, got %v", err)
	}
	if err := p.RegisterDeveloper("dev1", Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		t.Errorf("complete docs should register: %v", err)
	}
	// Unvetted platform takes anyone.
	u := StandardPlatforms()[RankApp]
	if err := u.RegisterDeveloper("dev2", Documentation{}); err != nil {
		t.Errorf("unvetted registration failed: %v", err)
	}
}

func TestDepositMinimum(t *testing.T) {
	p := StandardPlatforms()[Fyber]
	p.RegisterDeveloper("dev1", Documentation{TaxID: "T", BankAccount: "B"})
	if err := p.Deposit("dev1", 100); !errors.Is(err, ErrDepositTooSmall) {
		t.Errorf("want ErrDepositTooSmall, got %v", err)
	}
	if err := p.Deposit("dev1", 2000); err != nil {
		t.Fatal(err)
	}
	// Top-ups below the minimum are fine once funded.
	if err := p.Deposit("dev1", 5); err != nil {
		t.Errorf("top-up failed: %v", err)
	}
	if err := p.Deposit("ghost", 50); !errors.Is(err, ErrUnknownDeveloper) {
		t.Errorf("want ErrUnknownDeveloper, got %v", err)
	}
}

func TestLaunchCampaignBudgetCheck(t *testing.T) {
	p := newFundedPlatform(t, RankApp)
	spec := basicSpec()
	spec.UserPayoutUSD = 5.00
	spec.Target = 100000 // cost far exceeds the $5000 balance
	if _, err := p.LaunchCampaign(spec); !errors.Is(err, ErrInsufficientBalance) {
		t.Errorf("want ErrInsufficientBalance, got %v", err)
	}
	if _, err := p.LaunchCampaign(CampaignSpec{Developer: "ghost"}); !errors.Is(err, ErrUnknownDeveloper) {
		t.Errorf("want ErrUnknownDeveloper, got %v", err)
	}
}

func TestOfferAppearsOnWall(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	launch(t, p, basicSpec())
	active := p.ActiveOffers(dates.StudyStart, "USA")
	if len(active) != 1 {
		t.Fatalf("active offers = %d, want 1", len(active))
	}
	o := active[0]
	if o.AppPackage != "com.acme.memo" || o.IIP != Fyber {
		t.Errorf("offer fields wrong: %+v", o)
	}
	if o.StoreURL != "https://play.google.com/store/apps/details?id=com.acme.memo" {
		t.Errorf("store URL wrong: %s", o.StoreURL)
	}
	// Outside the window the wall is empty.
	if got := p.ActiveOffers(testWindow.End.AddDays(1), "USA"); len(got) != 0 {
		t.Errorf("offer visible outside window: %v", got)
	}
}

func TestCountryTargeting(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	spec := basicSpec()
	spec.Countries = []string{"Germany", "India"}
	launch(t, p, spec)
	if got := p.ActiveOffers(dates.StudyStart, "USA"); len(got) != 0 {
		t.Error("offer should be hidden from USA")
	}
	if got := p.ActiveOffers(dates.StudyStart, "India"); len(got) != 1 {
		t.Error("offer should be visible in India")
	}
}

func TestMoneyFlowFigure1(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	c := launch(t, p, basicSpec())
	before, _ := p.Balance("dev1")
	d, err := p.RecordCompletion(c.OfferID, dates.StudyStart)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := p.Balance("dev1")
	// Conservation: gross = IIP cut + affiliate cut + user payout.
	sum := d.IIPCut + d.AffiliateCut + d.UserPayout
	if math.Abs(sum-d.Gross) > 1e-9 {
		t.Errorf("split does not conserve money: %+v", d)
	}
	if math.Abs((before-after)-d.Gross) > 1e-9 {
		t.Errorf("developer debit %.4f != gross %.4f", before-after, d.Gross)
	}
	if math.Abs(d.UserPayout-0.06) > 1e-9 {
		t.Errorf("user payout = %.4f, want 0.06", d.UserPayout)
	}
	if d.IIPCut <= 0 || d.AffiliateCut <= 0 {
		t.Errorf("cuts must be positive: %+v", d)
	}
	snap, _ := p.Campaign(c.OfferID)
	if snap.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", snap.Delivered)
	}
}

func TestCampaignTargetEnforced(t *testing.T) {
	p := newFundedPlatform(t, RankApp)
	spec := basicSpec()
	spec.Target = 3
	c := launch(t, p, spec)
	for i := 0; i < 3; i++ {
		if _, err := p.RecordCompletion(c.OfferID, dates.StudyStart); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.RecordCompletion(c.OfferID, dates.StudyStart); !errors.Is(err, ErrCampaignComplete) {
		t.Errorf("want ErrCampaignComplete, got %v", err)
	}
	// A completed campaign disappears from the wall.
	if got := p.ActiveOffers(dates.StudyStart, "USA"); len(got) != 0 {
		t.Error("completed campaign still on wall")
	}
}

func TestCompletionOutsideWindow(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	c := launch(t, p, basicSpec())
	_, err := p.RecordCompletion(c.OfferID, testWindow.End.AddDays(5))
	if !errors.Is(err, ErrCampaignInactive) {
		t.Errorf("want ErrCampaignInactive, got %v", err)
	}
	if _, err := p.RecordCompletion("nope", dates.StudyStart); !errors.Is(err, ErrUnknownOffer) {
		t.Errorf("want ErrUnknownOffer, got %v", err)
	}
}

func TestGrossCostPerInstall(t *testing.T) {
	p := StandardPlatforms()[Fyber]
	gross := p.GrossCostPerInstall(0.06)
	// Inverting the cuts must give back the user payout.
	net := gross * (1 - p.FeeFraction) * (1 - p.AffiliateFraction)
	if math.Abs(net-0.06) > 1e-12 {
		t.Errorf("round trip = %.6f, want 0.06", net)
	}
	if gross <= 0.06 {
		t.Error("gross must exceed user payout")
	}
}

func TestRankAppClaimsManipulation(t *testing.T) {
	ps := StandardPlatforms()
	if !ps[RankApp].ClaimsManipulation() {
		t.Error("RankApp should advertise rank manipulation (Figure 2)")
	}
	for _, name := range []string{Fyber, OfferToro, AdscendMedia, HangMyAds, AdGem, AyetStudios} {
		if ps[name].ClaimsManipulation() {
			t.Errorf("%s should not advertise manipulation", name)
		}
	}
}

func TestCampaignsSnapshot(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	launch(t, p, basicSpec())
	spec2 := basicSpec()
	spec2.AppPackage = "com.other.app"
	launch(t, p, spec2)
	if got := len(p.Campaigns()); got != 2 {
		t.Errorf("campaigns = %d, want 2", got)
	}
}
