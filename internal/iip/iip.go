// Package iip models incentivized install platforms (IIPs): the vetted and
// unvetted services of the paper's Table 1, their developer review
// processes, campaign management, install pacing, the per-completion money
// split of Figure 1, and an HTTP offer-wall server that affiliate apps
// integrate (and that the monitoring pipeline's proxy intercepts).
package iip

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dates"
	"repro/internal/offers"
)

// Registration and campaign errors.
var (
	ErrDocsRequired        = errors.New("iip: vetted platform requires tax ID and bank account")
	ErrDepositTooSmall     = errors.New("iip: deposit below platform minimum")
	ErrUnknownDeveloper    = errors.New("iip: unknown developer account")
	ErrInsufficientBalance = errors.New("iip: insufficient balance for campaign")
	ErrUnknownOffer        = errors.New("iip: unknown offer")
	ErrCampaignComplete    = errors.New("iip: campaign already delivered its target")
	ErrCampaignInactive    = errors.New("iip: campaign not active on this day")
)

// Documentation is the paperwork a vetted IIP demands before activating a
// developer account.
type Documentation struct {
	TaxID       string
	BankAccount string
}

// Complete reports whether the documentation satisfies a vetted review.
func (d Documentation) Complete() bool {
	return d.TaxID != "" && d.BankAccount != ""
}

// Platform is one incentivized install platform.
type Platform struct {
	Name    string
	HomeURL string
	// Vetted platforms run a stringent developer review (documentation +
	// large upfront deposit); unvetted platforms take anyone with $20.
	Vetted bool
	// MinDepositUSD is the smallest accepted first deposit.
	MinDepositUSD float64
	// FeeFraction is the share of each developer payment the IIP keeps.
	FeeFraction float64
	// AffiliateFraction is the share of the remainder kept by the
	// affiliate app before the user payout.
	AffiliateFraction float64
	// PacePerHour is the install delivery rate for a running campaign
	// (Fyber delivers 500 installs within 2 hours; RankApp needs > 24h).
	PacePerHour float64
	// ServiceClaims is marketing copy from the platform's website; the
	// Figure 2 probe scans it for app-store-manipulation claims.
	ServiceClaims []string

	mu        sync.Mutex
	devs      map[string]*developerAccount
	campaigns map[string]*Campaign
	nextID    int
}

type developerAccount struct {
	id      string
	docs    Documentation
	balance float64
}

// Campaign is a purchased incentivized install campaign.
type Campaign struct {
	OfferID   string
	Spec      CampaignSpec
	Delivered int
	// Stopped is set when the developer halts the campaign early or the
	// balance runs out.
	Stopped bool
}

// CampaignSpec describes a campaign purchase.
type CampaignSpec struct {
	Developer   string
	AppPackage  string
	Description string
	// Type and Arbitrage are the ground-truth labels carried through to
	// the generated offers for classifier scoring.
	Type      offers.Type
	Arbitrage bool
	// UserPayoutUSD is the user-facing reward for completing the offer.
	UserPayoutUSD float64
	// Target is the number of completions purchased.
	Target int
	// Window is the period the offer stays on the wall.
	Window dates.Range
	// Countries the offer targets (empty = all).
	Countries []string
}

// GrossCostPerInstall is what the developer pays per completion so that,
// after the IIP and affiliate cuts, the user receives UserPayoutUSD.
func (p *Platform) GrossCostPerInstall(userPayout float64) float64 {
	return userPayout / ((1 - p.FeeFraction) * (1 - p.AffiliateFraction))
}

// DailyPace is the platform's delivery cap per campaign per day, derived
// from its hourly install pacing. The day engine hands it to each unit's
// adversary strategy as the hard ceiling on a day's quota: strategies may
// pace below it (slow-drip) or save demand up to it (burst), but the
// platform's infrastructure bounds what any single day can deliver.
func (p *Platform) DailyPace() int {
	return int(p.PacePerHour * 24)
}

// RegisterDeveloper opens a developer account, enforcing the platform's
// review process.
func (p *Platform) RegisterDeveloper(id string, docs Documentation) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Vetted && !docs.Complete() {
		return fmt.Errorf("%w (%s)", ErrDocsRequired, p.Name)
	}
	if p.devs == nil {
		p.devs = map[string]*developerAccount{}
	}
	p.devs[id] = &developerAccount{id: id, docs: docs}
	return nil
}

// Deposit adds campaign funds, enforcing the platform minimum on the first
// deposit.
func (p *Platform) Deposit(devID string, usd float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devs[devID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDeveloper, devID)
	}
	if d.balance == 0 && usd < p.MinDepositUSD {
		return fmt.Errorf("%w: %s requires >= $%.2f", ErrDepositTooSmall, p.Name, p.MinDepositUSD)
	}
	d.balance += usd
	return nil
}

// Balance returns a developer's remaining campaign funds.
func (p *Platform) Balance(devID string) (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devs[devID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDeveloper, devID)
	}
	return d.balance, nil
}

// LaunchCampaign validates funding and puts the offer on the wall.
func (p *Platform) LaunchCampaign(spec CampaignSpec) (*Campaign, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devs[spec.Developer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDeveloper, spec.Developer)
	}
	cost := p.GrossCostPerInstall(spec.UserPayoutUSD) * float64(spec.Target)
	if d.balance < cost {
		return nil, fmt.Errorf("%w: need $%.2f, have $%.2f", ErrInsufficientBalance, cost, d.balance)
	}
	p.nextID++
	c := &Campaign{
		OfferID: fmt.Sprintf("%s-%04d", p.Name, p.nextID),
		Spec:    spec,
	}
	if p.campaigns == nil {
		p.campaigns = map[string]*Campaign{}
	}
	p.campaigns[c.OfferID] = c
	return c, nil
}

// WallOffer is the offer-wall view of a campaign: what the affiliate app's
// users (and the monitoring proxy) see.
type WallOffer struct {
	OfferID     string  `json:"offer_id"`
	IIP         string  `json:"network"`
	AppPackage  string  `json:"app_package"`
	StoreURL    string  `json:"store_url"`
	Description string  `json:"description"`
	PayoutUSD   float64 `json:"payout_usd"`
	// Truth fields ride along for evaluation only; a real wall would not
	// carry them. They are stripped by the wire encoder in Server.
	Truth          offers.Type `json:"-"`
	TruthArbitrage bool        `json:"-"`
}

// ActiveOffers lists offers live on the wall for a day and country.
func (p *Platform) ActiveOffers(day dates.Date, country string) []WallOffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []WallOffer
	for _, c := range p.campaigns {
		if !p.liveLocked(c, day) {
			continue
		}
		if len(c.Spec.Countries) > 0 && !containsString(c.Spec.Countries, country) {
			continue
		}
		out = append(out, WallOffer{
			OfferID:        c.OfferID,
			IIP:            p.Name,
			AppPackage:     c.Spec.AppPackage,
			StoreURL:       "https://play.google.com/store/apps/details?id=" + c.Spec.AppPackage,
			Description:    c.Spec.Description,
			PayoutUSD:      c.Spec.UserPayoutUSD,
			Truth:          c.Spec.Type,
			TruthArbitrage: c.Spec.Arbitrage,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OfferID < out[j].OfferID })
	return out
}

func (p *Platform) liveLocked(c *Campaign, day dates.Date) bool {
	return !c.Stopped && c.Delivered < c.Spec.Target && c.Spec.Window.Contains(day)
}

// Disbursement is the per-completion money split of Figure 1.
type Disbursement struct {
	Gross        float64 // debited from the developer
	IIPCut       float64
	AffiliateCut float64
	UserPayout   float64
}

// RecordCompletion settles one certified offer completion: it debits the
// developer and returns the split. The affiliate and user legs are paid
// out by the mediator's ledger.
func (p *Platform) RecordCompletion(offerID string, day dates.Date) (Disbursement, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.campaigns[offerID]
	if !ok {
		return Disbursement{}, fmt.Errorf("%w: %s", ErrUnknownOffer, offerID)
	}
	return p.settleOne(c, p.devs[c.Spec.Developer], p.GrossCostPerInstall(c.Spec.UserPayoutUSD), day)
}

// settleOne applies one completion to a campaign and its developer
// account. The caller either holds p.mu or owns the campaign exclusively
// under the CampaignHandle contract; both entry points share this body so
// the money split and stop conditions cannot drift between them.
func (p *Platform) settleOne(c *Campaign, d *developerAccount, gross float64, day dates.Date) (Disbursement, error) {
	if c.Delivered >= c.Spec.Target {
		return Disbursement{}, fmt.Errorf("%w: %s", ErrCampaignComplete, c.OfferID)
	}
	if !p.liveLocked(c, day) {
		return Disbursement{}, fmt.Errorf("%w: %s on %s", ErrCampaignInactive, c.OfferID, day)
	}
	if d.balance < gross {
		c.Stopped = true
		return Disbursement{}, fmt.Errorf("%w: %s", ErrInsufficientBalance, c.Spec.Developer)
	}
	d.balance -= gross
	c.Delivered++
	iipCut := gross * p.FeeFraction
	affCut := (gross - iipCut) * p.AffiliateFraction
	return Disbursement{
		Gross:        gross,
		IIPCut:       iipCut,
		AffiliateCut: affCut,
		UserPayout:   gross - iipCut - affCut,
	}, nil
}

// RecordCompletions settles up to n completions at once, returning the
// aggregate disbursement and the number actually settled (less than n when
// the campaign's remaining target or the developer's balance runs out).
// The per-completion split is identical to RecordCompletion.
func (p *Platform) RecordCompletions(offerID string, day dates.Date, n int) (Disbursement, int, error) {
	if n <= 0 {
		return Disbursement{}, 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.campaigns[offerID]
	if !ok {
		return Disbursement{}, 0, fmt.Errorf("%w: %s", ErrUnknownOffer, offerID)
	}
	return p.settleBatch(c, p.devs[c.Spec.Developer], p.GrossCostPerInstall(c.Spec.UserPayoutUSD), day, n)
}

// settleBatch applies up to n completions; same sharing contract as
// settleOne. n must be positive.
func (p *Platform) settleBatch(c *Campaign, d *developerAccount, gross float64, day dates.Date, n int) (Disbursement, int, error) {
	if !p.liveLocked(c, day) {
		return Disbursement{}, 0, fmt.Errorf("%w: %s on %s", ErrCampaignInactive, c.OfferID, day)
	}
	if remaining := c.Spec.Target - c.Delivered; n > remaining {
		n = remaining
	}
	if affordable := int(d.balance / gross); n > affordable {
		n = affordable
		c.Stopped = true
	}
	if n <= 0 {
		return Disbursement{}, 0, nil
	}
	total := gross * float64(n)
	d.balance -= total
	c.Delivered += n
	iipCut := total * p.FeeFraction
	affCut := (total - iipCut) * p.AffiliateFraction
	return Disbursement{
		Gross:        total,
		IIPCut:       iipCut,
		AffiliateCut: affCut,
		UserPayout:   total - iipCut - affCut,
	}, n, nil
}

// Campaign returns a snapshot of a campaign's state.
func (p *Platform) Campaign(offerID string) (Campaign, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.campaigns[offerID]
	if !ok {
		return Campaign{}, fmt.Errorf("%w: %s", ErrUnknownOffer, offerID)
	}
	return *c, nil
}

// Campaigns returns snapshots of all campaigns.
func (p *Platform) Campaigns() []Campaign {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Campaign, 0, len(p.campaigns))
	for _, c := range p.campaigns {
		out = append(out, *c)
	}
	return out
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
