package iip

import "strings"

// Canonical platform names from the paper's Table 1.
const (
	Fyber        = "Fyber"
	OfferToro    = "OfferToro"
	AdscendMedia = "AdscendMedia"
	HangMyAds    = "HangMyAds"
	AdGem        = "AdGem"
	AyetStudios  = "ayeT-Studios"
	RankApp      = "RankApp"
)

// StandardNames lists the seven studied IIPs in Table 1 order.
var StandardNames = []string{
	Fyber, OfferToro, AdscendMedia, HangMyAds, AdGem, AyetStudios, RankApp,
}

// StandardPlatforms instantiates the seven IIPs of Table 1 with
// review-process, fee, and pacing parameters consistent with the paper's
// observations (vetted platforms demand documentation and four-figure
// deposits; unvetted ones take $20; Fyber and ayeT-Studios deliver 500
// installs within two hours while RankApp needs more than a day).
func StandardPlatforms() map[string]*Platform {
	ps := map[string]*Platform{
		Fyber: {
			Name: Fyber, HomeURL: "fyber.com", Vetted: true,
			MinDepositUSD: 2000, FeeFraction: 0.30, AffiliateFraction: 0.25,
			PacePerHour: 320,
		},
		OfferToro: {
			Name: OfferToro, HomeURL: "offertoro.com", Vetted: true,
			MinDepositUSD: 1000, FeeFraction: 0.30, AffiliateFraction: 0.25,
			PacePerHour: 200,
		},
		AdscendMedia: {
			Name: AdscendMedia, HomeURL: "adscendmedia.com", Vetted: true,
			MinDepositUSD: 1500, FeeFraction: 0.30, AffiliateFraction: 0.25,
			PacePerHour: 180,
		},
		HangMyAds: {
			Name: HangMyAds, HomeURL: "hangmyads.com", Vetted: true,
			MinDepositUSD: 1000, FeeFraction: 0.30, AffiliateFraction: 0.25,
			PacePerHour: 150,
		},
		AdGem: {
			Name: AdGem, HomeURL: "adgem.com", Vetted: true,
			MinDepositUSD: 1500, FeeFraction: 0.30, AffiliateFraction: 0.25,
			PacePerHour: 120,
		},
		AyetStudios: {
			Name: AyetStudios, HomeURL: "ayetstudios.com", Vetted: false,
			MinDepositUSD: 20, FeeFraction: 0.40, AffiliateFraction: 0.25,
			PacePerHour: 280,
		},
		RankApp: {
			Name: RankApp, HomeURL: "rankapp.org", Vetted: false,
			MinDepositUSD: 20, FeeFraction: 0.40, AffiliateFraction: 0.25,
			PacePerHour: 18,
			ServiceClaims: []string{
				"Improve your app's rank on Google Play Store",
				"Boost your app to the top charts with real installs",
			},
		},
	}
	return ps
}

// manipulationKeywords are the phrases the Figure 2 probe treats as
// advertising app-store-metric manipulation, which Google Play policy
// prohibits ("Developers must not attempt to manipulate the placement of
// any apps in Google Play").
var manipulationKeywords = []string{
	"rank", "top chart", "top charts", "placement", "boost",
}

// ClaimsManipulation reports whether the platform's public marketing
// claims to manipulate app store metrics (the behaviour Figure 2
// documents for RankApp).
func (p *Platform) ClaimsManipulation() bool {
	for _, claim := range p.ServiceClaims {
		l := strings.ToLower(claim)
		for _, k := range manipulationKeywords {
			if strings.Contains(l, k) {
				return true
			}
		}
	}
	return false
}
