package iip

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/offers"
)

func snapshotFixture(t *testing.T) (*Platform, *Campaign) {
	t.Helper()
	p := &Platform{Name: "snapiip", FeeFraction: 0.3, AffiliateFraction: 0.3, PacePerHour: 100}
	if err := p.RegisterDeveloper("dev", Documentation{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Deposit("dev", 1000); err != nil {
		t.Fatal(err)
	}
	c, err := p.LaunchCampaign(CampaignSpec{
		Developer: "dev", AppPackage: "com.x", Type: offers.NoActivity,
		UserPayoutUSD: 0.06, Target: 50,
		Window: dates.Range{Start: 0, End: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestPlatformSnapshotRoundTrip(t *testing.T) {
	p, c := snapshotFixture(t)
	for i := 0; i < 7; i++ {
		if _, err := p.RecordCompletion(c.OfferID, 5); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.EncodeSnapshot()

	// The "resumed" platform: same build, no deliveries yet.
	p2, _ := snapshotFixture(t)
	if err := p2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, err := p2.Campaign(c.OfferID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delivered != 7 || got.Stopped {
		t.Errorf("restored campaign = %+v, want Delivered=7", got)
	}
	b1, _ := p.Balance("dev")
	b2, _ := p2.Balance("dev")
	if b1 != b2 {
		t.Errorf("restored balance %v, want %v (bit-exact)", b2, b1)
	}
	// Further settlements on both must agree exactly.
	d1, err1 := p.RecordCompletion(c.OfferID, 6)
	d2, err2 := p2.RecordCompletion(c.OfferID, 6)
	if err1 != nil || err2 != nil || d1 != d2 {
		t.Errorf("post-restore settlement diverged: %+v/%v vs %+v/%v", d1, err1, d2, err2)
	}
}

// TestPlatformSnapshotRecreatesMissingState: campaigns and developer
// accounts created outside the deterministic world build (the honey-app
// experiment) must survive restore onto a platform that never saw them.
func TestPlatformSnapshotRecreatesMissingState(t *testing.T) {
	p, c := snapshotFixture(t)
	if _, err := p.RecordCompletion(c.OfferID, 5); err != nil {
		t.Fatal(err)
	}
	snap := p.EncodeSnapshot()
	fresh := &Platform{Name: "snapiip", FeeFraction: 0.3, AffiliateFraction: 0.3, PacePerHour: 100}
	if err := fresh.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Campaign(c.OfferID)
	if err != nil {
		t.Fatalf("restored campaign missing: %v", err)
	}
	if got.Delivered != 1 || got.Spec.AppPackage != "com.x" {
		t.Errorf("recreated campaign = %+v", got)
	}
	b1, _ := p.Balance("dev")
	b2, _ := fresh.Balance("dev")
	if b1 != b2 {
		t.Errorf("recreated balance %v, want %v", b2, b1)
	}
	// Further settlements agree exactly, and the ID counter continues.
	d1, err1 := p.RecordCompletion(c.OfferID, 6)
	d2, err2 := fresh.RecordCompletion(c.OfferID, 6)
	if err1 != nil || err2 != nil || d1 != d2 {
		t.Errorf("post-restore settlement diverged: %+v/%v vs %+v/%v", d1, err1, d2, err2)
	}
	if err := p.RestoreSnapshot(snap[:len(snap)-1]); err == nil {
		t.Error("truncated snapshot must be rejected")
	}
}
