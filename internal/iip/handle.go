package iip

import (
	"fmt"

	"repro/internal/dates"
)

// CampaignHandle pins one campaign, its developer's funding account, and
// the platform's per-completion money split, all resolved exactly once.
// Settlement through a handle performs no map lookup and takes no lock.
//
// Ownership contract: a handle's write methods mutate the campaign row and
// the developer balance without the platform lock, so a single goroutine
// must own every campaign of a developer while writes are in flight, and
// lock-taking Platform methods (ActiveOffers, Campaigns, Balance, ...)
// must not run concurrently with them. The day engine satisfies both: the
// campaign phase partitions work by developer group, and observers (the
// crawler/milker hook) only run at the day barrier.
type CampaignHandle struct {
	p *Platform
	c *Campaign
	d *developerAccount
	// gross is GrossCostPerInstall(spec.UserPayoutUSD), precomputed: the
	// same pure function of immutable fields the locked path evaluates per
	// completion, so every derived float is bit-identical.
	gross float64
}

// CampaignHandle resolves an offer ID to a settlement handle.
func (p *Platform) CampaignHandle(offerID string) (*CampaignHandle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.campaigns[offerID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOffer, offerID)
	}
	return &CampaignHandle{
		p:     p,
		c:     c,
		d:     p.devs[c.Spec.Developer],
		gross: p.GrossCostPerInstall(c.Spec.UserPayoutUSD),
	}, nil
}

// OfferID returns the handle's offer ID.
func (h *CampaignHandle) OfferID() string { return h.c.OfferID }

// Remaining returns how many purchased completions are still undelivered.
func (h *CampaignHandle) Remaining() int { return h.c.Spec.Target - h.c.Delivered }

// RecordCompletion settles one certified completion through the same
// settleOne body as Platform.RecordCompletion, minus the lock and lookup.
func (h *CampaignHandle) RecordCompletion(day dates.Date) (Disbursement, error) {
	return h.p.settleOne(h.c, h.d, h.gross, day)
}

// RecordCompletions settles up to n completions at once through the same
// settleBatch body as Platform.RecordCompletions, minus the lock and
// lookup.
func (h *CampaignHandle) RecordCompletions(day dates.Date, n int) (Disbursement, int, error) {
	if n <= 0 {
		return Disbursement{}, 0, nil
	}
	return h.p.settleBatch(h.c, h.d, h.gross, day, n)
}
