package iip

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dates"
)

func TestCampaignHandleResolution(t *testing.T) {
	p := newFundedPlatform(t, Fyber)
	c := launch(t, p, basicSpec())
	h, err := p.CampaignHandle(c.OfferID)
	if err != nil {
		t.Fatal(err)
	}
	if h.OfferID() != c.OfferID {
		t.Fatalf("handle offer = %s, want %s", h.OfferID(), c.OfferID)
	}
	if h.Remaining() != c.Spec.Target {
		t.Fatalf("remaining = %d, want %d", h.Remaining(), c.Spec.Target)
	}
	if _, err := p.CampaignHandle("nope"); !errors.Is(err, ErrUnknownOffer) {
		t.Fatalf("unknown offer err = %v, want ErrUnknownOffer", err)
	}
}

// TestCampaignHandleMatchesPlatformSettlement settles the same campaign
// shape through the locked platform path and through a handle, and
// requires bit-identical disbursements and balances: the handle is a
// lookup/lock hoist, not a second implementation allowed to drift.
func TestCampaignHandleMatchesPlatformSettlement(t *testing.T) {
	pA := newFundedPlatform(t, Fyber)
	cA := launch(t, pA, basicSpec())
	pB := newFundedPlatform(t, Fyber)
	cB := launch(t, pB, basicSpec())
	h, err := pB.CampaignHandle(cB.OfferID)
	if err != nil {
		t.Fatal(err)
	}

	dA1, err := pA.RecordCompletion(cA.OfferID, dates.StudyStart)
	if err != nil {
		t.Fatal(err)
	}
	dB1, err := h.RecordCompletion(dates.StudyStart)
	if err != nil {
		t.Fatal(err)
	}
	if dA1 != dB1 {
		t.Fatalf("single settlement diverges: %+v vs %+v", dA1, dB1)
	}

	dA2, nA, err := pA.RecordCompletions(cA.OfferID, dates.StudyStart, 40)
	if err != nil {
		t.Fatal(err)
	}
	dB2, nB, err := h.RecordCompletions(dates.StudyStart, 40)
	if err != nil {
		t.Fatal(err)
	}
	if nA != nB || dA2 != dB2 {
		t.Fatalf("batch settlement diverges: (%d, %+v) vs (%d, %+v)", nA, dA2, nB, dB2)
	}

	balA, _ := pA.Balance("dev1")
	balB, _ := pB.Balance("dev1")
	if math.Float64bits(balA) != math.Float64bits(balB) {
		t.Fatalf("balances diverge: %v vs %v (bit-exact required)", balA, balB)
	}
	snapA, _ := pA.Campaign(cA.OfferID)
	snapB, _ := pB.Campaign(cB.OfferID)
	if snapA.Delivered != snapB.Delivered || snapA.Stopped != snapB.Stopped {
		t.Fatalf("campaign state diverges: %+v vs %+v", snapA, snapB)
	}
}

func TestCampaignHandleTargetExhaustion(t *testing.T) {
	p := newFundedPlatform(t, RankApp)
	spec := basicSpec()
	spec.Target = 3
	c := launch(t, p, spec)
	h, err := p.CampaignHandle(c.OfferID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.RecordCompletion(dates.StudyStart); err != nil {
			t.Fatal(err)
		}
	}
	if h.Remaining() != 0 {
		t.Fatalf("remaining after exhaustion = %d, want 0", h.Remaining())
	}
	if _, err := h.RecordCompletion(dates.StudyStart); !errors.Is(err, ErrCampaignComplete) {
		t.Fatalf("exhausted handle err = %v, want ErrCampaignComplete", err)
	}
	// Batch settlement matches the locked path: a delivered-out campaign
	// is no longer live, so the batch is rejected as inactive.
	if _, n, err := h.RecordCompletions(dates.StudyStart, 5); !errors.Is(err, ErrCampaignInactive) || n != 0 {
		t.Fatalf("exhausted batch = (%d, %v), want (0, ErrCampaignInactive)", n, err)
	}
	// The exhausted campaign disappears from the (locked) wall view, so
	// handle writes and platform reads agree.
	if got := p.ActiveOffers(dates.StudyStart, "USA"); len(got) != 0 {
		t.Error("completed campaign still on wall")
	}
	// Settlement outside the window is rejected exactly like the locked
	// path.
	if _, err := h.RecordCompletion(testWindow.End.AddDays(5)); err == nil {
		t.Error("want error settling after exhaustion/window, got nil")
	}
}

// TestCampaignHandleBalanceExhaustion shares one funded balance between
// two campaigns, drains most of it through the locked path, and checks
// the handle settles only what remains and stops its campaign the way
// the locked path does. (A single campaign can never exhaust the balance:
// LaunchCampaign requires full funding up front.)
func TestCampaignHandleBalanceExhaustion(t *testing.T) {
	p := newFundedPlatform(t, Fyber) // $5000 funded
	gross := p.GrossCostPerInstall(0.06)
	target := int(3000.0 / gross) // each campaign costs ~$3000 of the $5000
	specA := basicSpec()
	specA.Target = target
	cA := launch(t, p, specA)
	specB := basicSpec()
	specB.Target = target
	cB := launch(t, p, specB)
	hB, err := p.CampaignHandle(cB.OfferID)
	if err != nil {
		t.Fatal(err)
	}
	if _, n, err := p.RecordCompletions(cA.OfferID, dates.StudyStart, target); err != nil || n != target {
		t.Fatalf("draining campaign A: n=%d err=%v", n, err)
	}
	// The handle batch settles only the affordable remainder and stops
	// the campaign.
	_, n, err := hB.RecordCompletions(dates.StudyStart, target)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= target {
		t.Fatalf("affordable batch = %d, want 0 < n < %d", n, target)
	}
	snap, _ := p.Campaign(cB.OfferID)
	if !snap.Stopped {
		t.Error("balance exhaustion must stop the campaign")
	}
	if _, err := hB.RecordCompletion(dates.StudyStart); err == nil {
		t.Error("want error settling on a stopped campaign, got nil")
	}
}
