package iip

import (
	"fmt"
	"sort"

	"repro/internal/binenc"
	"repro/internal/dates"
	"repro/internal/offers"
)

// platformSnapshotVersion guards the platform snapshot wire format.
const platformSnapshotVersion = 1

// EncodeSnapshot serializes the platform's run state: every developer
// account (documentation and bit-exact balance), every campaign (full
// spec plus delivery progress), and the campaign ID counter. The snapshot
// is self-contained — RestoreSnapshot updates accounts and campaigns the
// platform already has and recreates ones it does not, so state created
// outside the deterministic world build (e.g. the honey-app experiment's
// campaigns) survives a checkpoint/resume cycle.
func (p *Platform) EncodeSnapshot() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	enc := binenc.NewEnc(1 << 10)
	enc.U8(platformSnapshotVersion)
	enc.Varint(int64(p.nextID))

	devs := make([]string, 0, len(p.devs))
	for id := range p.devs {
		devs = append(devs, id)
	}
	sort.Strings(devs)
	enc.Uvarint(uint64(len(devs)))
	for _, id := range devs {
		d := p.devs[id]
		enc.Str(id)
		enc.Str(d.docs.TaxID)
		enc.Str(d.docs.BankAccount)
		enc.F64(d.balance)
	}

	ids := make([]string, 0, len(p.campaigns))
	for id := range p.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		c := p.campaigns[id]
		enc.Str(id)
		enc.Str(c.Spec.Developer)
		enc.Str(c.Spec.AppPackage)
		enc.Str(c.Spec.Description)
		enc.U8(uint8(c.Spec.Type))
		enc.Bool(c.Spec.Arbitrage)
		enc.F64(c.Spec.UserPayoutUSD)
		enc.Varint(int64(c.Spec.Target))
		enc.Varint(int64(c.Spec.Window.Start))
		enc.Varint(int64(c.Spec.Window.End))
		enc.Uvarint(uint64(len(c.Spec.Countries)))
		for _, country := range c.Spec.Countries {
			enc.Str(country)
		}
		enc.Varint(int64(c.Delivered))
		enc.Bool(c.Stopped)
	}
	return enc.Bytes()
}

// RestoreSnapshot applies EncodeSnapshot state: existing developer
// accounts and campaigns are overwritten with the snapshot's values, and
// missing ones are recreated from the embedded specs.
func (p *Platform) RestoreSnapshot(data []byte) error {
	dec := binenc.NewDec(data)
	if v := dec.U8(); dec.Err() == nil && v != platformSnapshotVersion {
		return fmt.Errorf("iip: unsupported snapshot version %d", v)
	}
	nextID := int(dec.Varint())

	type devState struct {
		id   string
		docs Documentation
		bal  float64
	}
	nDevs := dec.Uvarint()
	// Counts beyond what the remaining input could possibly hold are
	// corruption — reject them before allocating.
	if dec.Err() == nil && nDevs > uint64(dec.Remaining()) {
		return fmt.Errorf("iip: decoding %s snapshot: %w", p.Name, binenc.ErrTooLong)
	}
	devs := make([]devState, 0, nDevs)
	for i := uint64(0); i < nDevs && dec.Err() == nil; i++ {
		devs = append(devs, devState{
			id:   dec.Str(),
			docs: Documentation{TaxID: dec.Str(), BankAccount: dec.Str()},
			bal:  dec.F64(),
		})
	}

	nCamps := dec.Uvarint()
	if dec.Err() == nil && nCamps > uint64(dec.Remaining()) {
		return fmt.Errorf("iip: decoding %s snapshot: %w", p.Name, binenc.ErrTooLong)
	}
	camps := make([]*Campaign, 0, nCamps)
	for i := uint64(0); i < nCamps && dec.Err() == nil; i++ {
		c := &Campaign{OfferID: dec.Str()}
		c.Spec = CampaignSpec{
			Developer:     dec.Str(),
			AppPackage:    dec.Str(),
			Description:   dec.Str(),
			Type:          offers.Type(dec.U8()),
			Arbitrage:     dec.Bool(),
			UserPayoutUSD: dec.F64(),
			Target:        int(dec.Varint()),
			Window:        dates.Range{Start: dates.Date(dec.Varint()), End: dates.Date(dec.Varint())},
		}
		nCountries := dec.Uvarint()
		if dec.Err() == nil && nCountries > uint64(dec.Remaining()) {
			return fmt.Errorf("iip: decoding %s snapshot: %w", p.Name, binenc.ErrTooLong)
		}
		for j := uint64(0); j < nCountries && dec.Err() == nil; j++ {
			c.Spec.Countries = append(c.Spec.Countries, dec.Str())
		}
		c.Delivered = int(dec.Varint())
		c.Stopped = dec.Bool()
		camps = append(camps, c)
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("iip: decoding %s snapshot: %w", p.Name, err)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.devs == nil {
		p.devs = map[string]*developerAccount{}
	}
	for _, d := range devs {
		acct, ok := p.devs[d.id]
		if !ok {
			acct = &developerAccount{id: d.id}
			p.devs[d.id] = acct
		}
		acct.docs = d.docs
		acct.balance = d.bal
	}
	if p.campaigns == nil {
		p.campaigns = map[string]*Campaign{}
	}
	for _, c := range camps {
		if _, ok := p.devs[c.Spec.Developer]; !ok {
			return fmt.Errorf("iip: snapshot campaign %s references %w: %s", c.OfferID, ErrUnknownDeveloper, c.Spec.Developer)
		}
		if existing, ok := p.campaigns[c.OfferID]; ok {
			existing.Spec = c.Spec
			existing.Delivered = c.Delivered
			existing.Stopped = c.Stopped
		} else {
			p.campaigns[c.OfferID] = c
		}
	}
	p.nextID = nextID
	return nil
}
