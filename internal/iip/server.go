package iip

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"

	"repro/internal/dates"
)

// WireOffer is the on-the-wire JSON representation of a wall offer as an
// affiliate app receives it. Payouts are expressed in the affiliate app's
// reward points — different affiliate apps use different point systems,
// which is why the monitoring pipeline has to normalize (Section 4.1).
type WireOffer struct {
	OfferID     string `json:"offer_id"`
	AppPackage  string `json:"app_package"`
	StoreURL    string `json:"store_url"`
	Description string `json:"description"`
	Points      int64  `json:"points"`
}

// WallResponse is the offer-wall JSON document.
type WallResponse struct {
	Network   string      `json:"network"`
	Affiliate string      `json:"affiliate"`
	Country   string      `json:"country"`
	Offers    []WireOffer `json:"offers"`
}

// Server exposes a platform's offer wall over HTTP. Affiliate apps fetch
// GET /offerwall?affiliate=<pkg>&country=<cc>&day=<n>; the monitoring
// proxy intercepts exactly this traffic.
type Server struct {
	platform *Platform
	// pointRates maps an integrated affiliate app's package name to its
	// points-per-USD redemption rate, configured when the affiliate
	// signs up with the platform's SDK.
	pointRates map[string]float64
}

// NewServer wraps a platform with its affiliate point-rate table.
func NewServer(p *Platform, pointRates map[string]float64) *Server {
	rates := make(map[string]float64, len(pointRates))
	for k, v := range pointRates {
		rates[k] = v
	}
	return &Server{platform: p, pointRates: rates}
}

// Handler returns the HTTP handler for the offer wall.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /offerwall", s.handleWall)
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func (s *Server) handleWall(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	affiliate := q.Get("affiliate")
	rate, ok := s.pointRates[affiliate]
	if !ok {
		http.Error(w, "unknown affiliate", http.StatusForbidden)
		return
	}
	country := q.Get("country")
	if country == "" {
		country = "USA"
	}
	day := dates.StudyStart
	if v := q.Get("day"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad day", http.StatusBadRequest)
			return
		}
		day = dates.Date(n)
	}
	active := s.platform.ActiveOffers(day, country)
	// Walls paginate; the affiliate app UI loads more offers as the user
	// (or the fuzzer) scrolls. offset/limit expose that paging.
	offset, limit := 0, 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad offset", http.StatusBadRequest)
			return
		}
		offset = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	if offset > len(active) {
		offset = len(active)
	}
	active = active[offset:]
	if limit > 0 && len(active) > limit {
		active = active[:limit]
	}
	resp := WallResponse{
		Network:   s.platform.Name,
		Affiliate: affiliate,
		Country:   country,
		Offers:    make([]WireOffer, 0, len(active)),
	}
	for _, o := range active {
		resp.Offers = append(resp.Offers, WireOffer{
			OfferID:     o.OfferID,
			AppPackage:  o.AppPackage,
			StoreURL:    o.StoreURL,
			Description: o.Description,
			Points:      int64(math.Round(o.PayoutUSD * rate)),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}
