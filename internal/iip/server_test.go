package iip

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dates"
	"repro/internal/offers"
)

func newWallServer(t *testing.T) (*Platform, *httptest.Server) {
	t.Helper()
	p := newFundedPlatform(t, Fyber)
	launch(t, p, CampaignSpec{
		Developer:     "dev1",
		AppPackage:    "com.acme.memo",
		Description:   "Install and Register",
		Type:          offers.Registration,
		UserPayoutUSD: 0.34,
		Target:        100,
		Window:        testWindow,
	})
	srv := httptest.NewServer(NewServer(p, map[string]float64{
		"com.ayet.cashpirate": 1000, // 1000 points per USD
	}).Handler())
	t.Cleanup(srv.Close)
	return p, srv
}

func fetchWall(t *testing.T, url string) WallResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var wall WallResponse
	if err := json.NewDecoder(resp.Body).Decode(&wall); err != nil {
		t.Fatal(err)
	}
	return wall
}

func TestOfferWallHTTP(t *testing.T) {
	_, srv := newWallServer(t)
	url := fmt.Sprintf("%s/offerwall?affiliate=com.ayet.cashpirate&country=USA&day=%d", srv.URL, dates.StudyStart)
	wall := fetchWall(t, url)
	if wall.Network != Fyber {
		t.Errorf("network = %q", wall.Network)
	}
	if len(wall.Offers) != 1 {
		t.Fatalf("offers = %d, want 1", len(wall.Offers))
	}
	o := wall.Offers[0]
	if o.Description != "Install and Register" {
		t.Errorf("description = %q", o.Description)
	}
	// Points = payout USD x affiliate rate: 0.34 * 1000 = 340.
	if o.Points != 340 {
		t.Errorf("points = %d, want 340", o.Points)
	}
	// Normalization must invert the point system.
	if got := offers.NormalizePayout(float64(o.Points), 1000); got != 0.34 {
		t.Errorf("normalized payout = %g, want 0.34", got)
	}
}

func TestOfferWallUnknownAffiliate(t *testing.T) {
	_, srv := newWallServer(t)
	resp, err := http.Get(srv.URL + "/offerwall?affiliate=not.integrated")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

func TestOfferWallBadDay(t *testing.T) {
	_, srv := newWallServer(t)
	resp, err := http.Get(srv.URL + "/offerwall?affiliate=com.ayet.cashpirate&day=zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOfferWallDayFilter(t *testing.T) {
	_, srv := newWallServer(t)
	url := fmt.Sprintf("%s/offerwall?affiliate=com.ayet.cashpirate&day=%d", srv.URL, testWindow.End.AddDays(10))
	wall := fetchWall(t, url)
	if len(wall.Offers) != 0 {
		t.Errorf("expired campaign still served: %v", wall.Offers)
	}
}

func TestHealthEndpoint(t *testing.T) {
	_, srv := newWallServer(t)
	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health status = %d", resp.StatusCode)
	}
}
