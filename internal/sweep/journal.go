package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/binenc"
	"repro/internal/scenario"
)

// The coordinator journal makes the control plane as durable as the data
// plane. PR 7 made workers crash-resumable (spooled run logs + lease
// reissue), but the Queue lived only in memory: a coordinator crash lost
// the entire grid even though every cell was individually salvageable.
// The journal closes that gap with the same discipline the run log uses —
// an append-only, CRC-framed binary file (internal/binenc primitives,
// internal/stream framing idiom): a grid record at open, then one record
// per queue state transition (lease, heartbeat, complete-with-digest,
// transient fail, poison, drain). Every record is appended BEFORE the
// in-memory transition applies (write-ahead), so the journal is always at
// least as advanced as the state workers have observed.
//
// On restart, replay rebuilds the queue: done cells are re-adopted with
// their full results (re-verified against the journaled content digest),
// leased cells keep their lease tokens and deadlines — a live worker's
// heartbeats keep working across the restart; a dead worker's lease
// expires on the janitor's wall clock exactly as if the coordinator had
// never died — and a journaled poison stays poisoned. A torn tail (the
// record a crash interrupted mid-append) is detected by CRC and
// truncated, never applied: at worst the journal forgets a transition
// the determinism contract makes harmless to repeat (a re-leased cell is
// re-run to identical bytes; a forgotten completion is re-computed or
// salvaged from the late worker's report).
const (
	journalMagic   = "SWPJRNL1"
	journalVersion = 1
)

type journalKind uint8

const (
	jGrid      journalKind = 1 // grid digest + cell count; must open the journal
	jLease     journalKind = 2 // cell leased to a worker
	jHeartbeat journalKind = 3 // lease deadline extended
	jComplete  journalKind = 4 // cell done: digest + full result payload
	jFail      journalKind = 5 // transient failure: cell re-queued behind backoff
	jPoison    journalKind = 6 // grid failed permanently
	jDrain     journalKind = 7 // coordinator drained cleanly (informational)
)

func (k journalKind) String() string {
	switch k {
	case jGrid:
		return "grid"
	case jLease:
		return "lease"
	case jHeartbeat:
		return "heartbeat"
	case jComplete:
		return "complete"
	case jFail:
		return "fail"
	case jPoison:
		return "poison"
	case jDrain:
		return "drain"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrBadJournal rejects a journal whose readable prefix is structurally
// invalid — wrong magic, records for a different grid, a completion whose
// payload contradicts its digest. Unlike a torn tail (silently truncated,
// the crash left it there by construction), a bad prefix means the file
// is not a journal for this sweep, and serving from it would be wrong.
var ErrBadJournal = errors.New("sweep: bad coordinator journal")

// maxJournalPayload bounds a single record; completions carry a full cell
// JSON payload, which is well under this.
const maxJournalPayload = 16 << 20

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// journalRecord is one decoded state transition.
type journalRecord struct {
	kind journalKind

	// jGrid
	gridDigest string
	total      int

	// shared by lease/heartbeat/complete/fail
	index   int
	leaseID string

	// jLease
	seq        int
	attempt    int
	deadlineMS int64

	// jComplete
	cellDigest string
	cellJSON   []byte
	infoJSON   []byte

	// jFail
	notBeforeMS int64

	// jFail / jPoison
	msg string

	// jDrain
	leased int
}

// journalReplay is the decoded valid prefix of a journal file.
type journalReplay struct {
	GridDigest string
	Total      int
	Records    []journalRecord
	// ValidEnd is the byte offset just past the last intact record; a
	// torn or corrupt tail past it is truncated before appending resumes.
	ValidEnd int64
	// Size is the input length; Size - ValidEnd is what the tear dropped.
	Size int64
}

// replayJournal decodes the valid prefix of journal bytes. A torn tail —
// an incomplete or CRC-failing record where a crash landed mid-append —
// ends the replay silently at the last intact record. A structurally
// invalid prefix (bad magic/version, first record not jGrid, a record
// that cannot belong to any sane queue) returns ErrBadJournal: nothing
// before the damage can be trusted either.
func replayJournal(data []byte) (*journalReplay, error) {
	rep := &journalReplay{Size: int64(len(data))}
	pre := len(journalMagic) + 1
	if len(data) < pre || string(data[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadJournal)
	}
	if v := data[len(journalMagic)]; v != journalVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadJournal, v)
	}
	off := int64(pre)
	rep.ValidEnd = off
	for off < rep.Size {
		rec, next, ok, err := parseJournalFrame(data, off)
		if err != nil || !ok {
			// Torn tail: CRC mismatch or the frame runs past the input.
			// Stop here; the opener truncates.
			return rep, nil
		}
		if len(rep.Records) == 0 {
			if rec.kind != jGrid {
				return nil, fmt.Errorf("%w: first record is %s, want grid", ErrBadJournal, rec.kind)
			}
			rep.GridDigest, rep.Total = rec.gridDigest, rec.total
		} else if rec.kind == jGrid {
			return nil, fmt.Errorf("%w: duplicate grid record at byte %d", ErrBadJournal, off)
		}
		rep.Records = append(rep.Records, *rec)
		rep.ValidEnd = next
		off = next
	}
	if len(rep.Records) == 0 {
		// Magic but no grid record: a crash before the first append. The
		// opener rewrites the preamble + grid record on a fresh journal.
		rep.ValidEnd = 0
	}
	return rep, nil
}

// parseJournalFrame decodes one frame at off: kind u8, payload length
// u32, payload, CRC-32C(payload) u32. ok=false means the frame is
// incomplete or its CRC fails (torn tail); err means the payload decoded
// but is structurally impossible.
func parseJournalFrame(data []byte, off int64) (rec *journalRecord, next int64, ok bool, err error) {
	if off+5 > int64(len(data)) {
		return nil, 0, false, nil
	}
	kind := journalKind(data[off])
	plen := int64(uint32(data[off+1]) | uint32(data[off+2])<<8 | uint32(data[off+3])<<16 | uint32(data[off+4])<<24)
	if plen > maxJournalPayload {
		return nil, 0, false, nil // garbage length: treat as tear
	}
	body := off + 5
	end := body + plen + 4
	if end > int64(len(data)) {
		return nil, 0, false, nil
	}
	payload := data[body : body+plen]
	crc := uint32(data[body+plen]) | uint32(data[body+plen+1])<<8 | uint32(data[body+plen+2])<<16 | uint32(data[body+plen+3])<<24
	if crc32.Checksum(payload, journalCRC) != crc {
		return nil, 0, false, nil
	}
	rec, err = decodeJournalPayload(kind, payload)
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w: %s record at byte %d: %v", ErrBadJournal, kind, off, err)
	}
	return rec, end, true, nil
}

func decodeJournalPayload(kind journalKind, payload []byte) (*journalRecord, error) {
	d := binenc.NewDec(payload)
	rec := &journalRecord{kind: kind}
	switch kind {
	case jGrid:
		rec.gridDigest = d.Str()
		rec.total = int(d.Varint())
		if d.Err() == nil && (rec.total < 0 || rec.total > 1<<24) {
			return nil, fmt.Errorf("impossible cell count %d", rec.total)
		}
	case jLease:
		rec.index = int(d.Varint())
		rec.seq = int(d.Varint())
		rec.attempt = int(d.Varint())
		rec.leaseID = d.Str()
		rec.deadlineMS = d.Varint()
	case jHeartbeat:
		rec.index = int(d.Varint())
		rec.leaseID = d.Str()
		rec.deadlineMS = d.Varint()
	case jComplete:
		rec.index = int(d.Varint())
		rec.leaseID = d.Str()
		rec.cellDigest = d.Str()
		rec.cellJSON = d.Blob()
		rec.infoJSON = d.Blob()
	case jFail:
		rec.index = int(d.Varint())
		rec.leaseID = d.Str()
		rec.notBeforeMS = d.Varint()
		rec.msg = d.Str()
	case jPoison:
		rec.msg = d.Str()
	case jDrain:
		rec.leased = int(d.Varint())
	default:
		return nil, fmt.Errorf("unknown record kind %d", uint8(kind))
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Journal is the append side: one frame per queue transition, written
// with a single Write call (so a crash tears at most one record) and
// fsynced after the transitions that must not be forgotten (lease,
// complete, fail, poison, drain — heartbeats are cheap to lose). The
// error is sticky: after a failed append — torn write, full disk — the
// file's tail is suspect, and appending more records after the damage
// would corrupt the very prefix replay depends on, so every later append
// refuses with the same error and the queue poisons itself.
type Journal struct {
	f   *os.File
	w   io.Writer
	err error
	// m, when non-nil, times appends and fsyncs. Observation only: no
	// journal byte depends on it.
	m *JournalMetrics
}

// SetMetrics attaches append/fsync instrumentation (nil detaches;
// nil-receiver safe, matching the journal-less queue).
func (j *Journal) SetMetrics(m *JournalMetrics) {
	if j == nil {
		return
	}
	j.m = m
}

// openJournal opens the journal at path for a grid with the given digest
// and cell count: fresh (preamble + grid record written) or existing
// (valid prefix replayed, torn tail truncated, positioned for append).
// wrap, when non-nil, wraps the append writer with fault injection.
// A non-nil replay means the caller must restore the queue from it.
func openJournal(path, gridDigest string, total int, wrap func(io.Writer) io.Writer) (*Journal, *journalReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	var rep *journalReplay
	if len(data) > 0 {
		rep, err = replayJournal(data)
		if err != nil {
			return nil, nil, err
		}
		if rep.ValidEnd > 0 {
			if rep.GridDigest != gridDigest || rep.Total != total {
				return nil, nil, fmt.Errorf("%w: journal belongs to a different grid (digest %.12s/%d cells, want %.12s/%d)",
					ErrBadJournal, rep.GridDigest, rep.Total, gridDigest, total)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	j := &Journal{f: f, w: f}
	if wrap != nil {
		j.w = wrap(f)
	}
	if rep == nil || rep.ValidEnd == 0 {
		// Fresh journal (or one that died before its grid record): start
		// over from byte zero.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sweep: truncating journal: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		pre := append([]byte(journalMagic), journalVersion)
		if _, err := j.w.Write(pre); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sweep: writing journal preamble: %w", err)
		}
		body := binenc.NewEnc(64)
		body.Str(gridDigest)
		body.Varint(int64(total))
		if err := j.append(jGrid, body.Bytes(), true); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}
	// Existing journal: drop the torn tail, append after the valid prefix.
	if rep.ValidEnd < rep.Size {
		if err := f.Truncate(rep.ValidEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sweep: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(rep.ValidEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, rep, nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// append frames one record and writes it with a single Write call.
func (j *Journal) append(kind journalKind, payload []byte, sync bool) error {
	if j == nil {
		return nil
	}
	if j.err != nil {
		return j.err
	}
	frame := make([]byte, 0, 9+len(payload))
	frame = append(frame, uint8(kind))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, journalCRC))
	var t0 time.Time
	if j.m != nil {
		t0 = time.Now()
	}
	if _, err := j.w.Write(frame); err != nil {
		j.err = fmt.Errorf("sweep: appending %s journal record: %w", kind, err)
		return j.err
	}
	if j.m != nil {
		j.m.Appends.Inc()
		j.m.AppendSeconds.ObserveSince(t0)
	}
	if sync {
		var s0 time.Time
		if j.m != nil {
			s0 = time.Now()
		}
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("sweep: syncing journal: %w", err)
			return j.err
		}
		if j.m != nil {
			j.m.Syncs.Inc()
			j.m.SyncSeconds.ObserveSince(s0)
		}
	}
	return nil
}

func (j *Journal) lease(index, seq, attempt int, leaseID string, deadline time.Time) error {
	e := binenc.NewEnc(64)
	e.Varint(int64(index))
	e.Varint(int64(seq))
	e.Varint(int64(attempt))
	e.Str(leaseID)
	e.Varint(deadline.UnixMilli())
	return j.append(jLease, e.Bytes(), true)
}

func (j *Journal) heartbeat(index int, leaseID string, deadline time.Time) error {
	e := binenc.NewEnc(64)
	e.Varint(int64(index))
	e.Str(leaseID)
	e.Varint(deadline.UnixMilli())
	return j.append(jHeartbeat, e.Bytes(), false)
}

func (j *Journal) complete(index int, leaseID, digest string, cell *Cell, info *CellRunInfo) error {
	if j == nil {
		return nil
	}
	cellJSON, err := json.Marshal(cell)
	if err != nil {
		return fmt.Errorf("sweep: journaling completion: %w", err)
	}
	infoJSON, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("sweep: journaling completion: %w", err)
	}
	e := binenc.NewEnc(256 + len(cellJSON) + len(infoJSON))
	e.Varint(int64(index))
	e.Str(leaseID)
	e.Str(digest)
	e.Blob(cellJSON)
	e.Blob(infoJSON)
	return j.append(jComplete, e.Bytes(), true)
}

func (j *Journal) fail(index int, leaseID string, notBefore time.Time, msg string) error {
	e := binenc.NewEnc(128)
	e.Varint(int64(index))
	e.Str(leaseID)
	e.Varint(notBefore.UnixMilli())
	e.Str(msg)
	return j.append(jFail, e.Bytes(), true)
}

func (j *Journal) poison(msg string) error {
	e := binenc.NewEnc(len(msg) + 8)
	e.Str(msg)
	return j.append(jPoison, e.Bytes(), true)
}

func (j *Journal) drain(leased int) error {
	e := binenc.NewEnc(8)
	e.Varint(int64(leased))
	return j.append(jDrain, e.Bytes(), true)
}

// gridDigest canonically identifies an expanded grid: SHA-256 over the
// JSON of every job's (scenario spec, seed) in job order. A restarted
// coordinator must expand the identical grid from its flags before it
// may adopt a journal — cell indices are only meaningful against the
// same job list.
func gridDigest(jobs []gridJob) string {
	h := sha256.New()
	for _, job := range jobs {
		raw, err := json.Marshal(struct {
			Spec scenario.Spec `json:"spec"`
			Seed uint64        `json:"seed"`
		}{job.spec, job.seed})
		if err != nil {
			panic("sweep: grid digest: " + err.Error())
		}
		h.Write(raw)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
