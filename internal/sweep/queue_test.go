package sweep

import (
	"errors"
	"testing"
	"time"

	"repro/internal/scenario"
)

func testQueueJobs(n int) []gridJob {
	jobs := make([]gridJob, n)
	for i := range jobs {
		jobs[i] = gridJob{spec: scenario.Spec{Name: "s"}, seed: uint64(i + 1)}
	}
	return jobs
}

func testCell(seed uint64, recall float64) Cell {
	c := Cell{Scenario: "s", Seed: seed, Truth: 10, Groups: 2, Flagged: 8}
	c.Eval.Recall = recall
	return c
}

// TestQueueLeaseExpiryReissueDigest is the lease lifecycle table: a
// worker leases a cell, goes silent past the lease deadline, the cell is
// reissued, and then BOTH workers complete it — the late completion is
// salvaged when it matches the winner by digest, and poisons the grid
// when it does not.
func TestQueueLeaseExpiryReissueDigest(t *testing.T) {
	cases := []struct {
		name       string
		lateRecall float64 // late duplicate's recall (first completion used 0.5)
		wantErr    bool
	}{
		{"duplicate matches digest", 0.5, false},
		{"duplicate diverges", 0.75, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := QueueConfig{Lease: time.Second, MaxAttempts: 5}
			q := NewQueue(testQueueJobs(1), cfg)
			t0 := time.Unix(1_000_000, 0)

			claim1, _, done := q.Lease(t0)
			if done || claim1 == nil {
				t.Fatalf("first lease: claim=%v done=%v", claim1, done)
			}
			if claim1.Index != 0 || claim1.Attempt != 1 {
				t.Fatalf("first claim = %+v", claim1)
			}

			// Worker goes silent; the deadline passes; the janitor expires it.
			t1 := t0.Add(cfg.Lease + time.Millisecond)
			if n := q.ExpireLeases(t1); n != 1 {
				t.Fatalf("expired %d leases, want 1", n)
			}
			if err := q.Heartbeat(0, claim1.LeaseID, t1); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("stale heartbeat: %v, want ErrLeaseLost", err)
			}

			// Reissue: same cell, new lease, attempt count advanced.
			claim2, _, done := q.Lease(t1)
			if done || claim2 == nil || claim2.Index != 0 {
				t.Fatalf("reissue: claim=%+v done=%v", claim2, done)
			}
			if claim2.Attempt != 2 || claim2.LeaseID == claim1.LeaseID {
				t.Fatalf("reissue = %+v (old lease %s)", claim2, claim1.LeaseID)
			}
			if err := q.Heartbeat(0, claim2.LeaseID, t1); err != nil {
				t.Fatalf("live heartbeat: %v", err)
			}

			// The live holder completes first.
			if err := q.Complete(0, claim2.LeaseID, testCell(1, 0.5), CellRunInfo{}, t1); err != nil {
				t.Fatal(err)
			}
			select {
			case <-q.Finished():
			default:
				t.Fatal("queue not finished after sole cell completed")
			}

			// The presumed-dead worker finishes late and reports too.
			err := q.Complete(0, claim1.LeaseID, testCell(1, tc.lateRecall), CellRunInfo{}, t1.Add(time.Second))
			p := q.Progress()
			if p.Duplicates != 1 || p.Expiries != 1 || p.Attempts != 2 {
				t.Fatalf("counters = %+v", p)
			}
			if tc.wantErr {
				if !errors.Is(err, ErrDigestMismatch) {
					t.Fatalf("diverging duplicate: %v, want ErrDigestMismatch", err)
				}
				if qerr := q.Err(); !errors.Is(qerr, ErrDigestMismatch) {
					t.Fatalf("queue not poisoned: %v", qerr)
				}
				if _, err := q.Cells(); err == nil {
					t.Fatal("poisoned queue handed out cells")
				}
				if p.Mismatches != 1 {
					t.Fatalf("mismatches = %d, want 1", p.Mismatches)
				}
				return
			}
			if err != nil {
				t.Fatalf("matching duplicate rejected: %v", err)
			}
			if q.Err() != nil {
				t.Fatalf("queue poisoned by matching duplicate: %v", q.Err())
			}
			cells, err := q.Cells()
			if err != nil || len(cells) != 1 || cells[0].Eval.Recall != 0.5 {
				t.Fatalf("cells = %+v, %v", cells, err)
			}
		})
	}
}

// TestQueueSalvagedCompletion: a completion arriving after lease expiry
// but before the reissued lease finishes is accepted — determinism makes
// late work exactly as valid — and counted as salvage.
func TestQueueSalvagedCompletion(t *testing.T) {
	cfg := QueueConfig{Lease: time.Second}
	q := NewQueue(testQueueJobs(1), cfg)
	t0 := time.Unix(1_000_000, 0)
	claim, _, _ := q.Lease(t0)
	t1 := t0.Add(2 * time.Second)
	q.ExpireLeases(t1)
	if err := q.Complete(0, claim.LeaseID, testCell(1, 0.5), CellRunInfo{}, t1); err != nil {
		t.Fatalf("salvaged completion rejected: %v", err)
	}
	p := q.Progress()
	if p.Salvaged != 1 || p.Done != 1 {
		t.Fatalf("counters = %+v", p)
	}
	// The reissued holder never gets the cell back: lease says done.
	if _, _, done := q.Lease(t1); !done {
		t.Fatal("queue not done after salvaged completion")
	}
}

// TestQueueTransientBackoff: a transient failure re-queues the cell
// behind a jittered backoff gate, and the gate actually holds.
func TestQueueTransientBackoff(t *testing.T) {
	cfg := QueueConfig{Lease: time.Second, RetryBase: 100 * time.Millisecond, RetryCap: time.Second, MaxAttempts: 5}
	q := NewQueue(testQueueJobs(1), cfg)
	t0 := time.Unix(1_000_000, 0)
	claim, _, _ := q.Lease(t0)
	if err := q.Fail(0, claim.LeaseID, "disk on fire", true, t0); err != nil {
		t.Fatal(err)
	}
	// Immediately after: gated. The retry hint points at the gate.
	c2, retry, done := q.Lease(t0)
	if c2 != nil || done {
		t.Fatalf("leased through backoff gate: %+v done=%v", c2, done)
	}
	if retry <= 0 || retry > cfg.RetryBase {
		t.Fatalf("retry hint %v, want (0, %v]", retry, cfg.RetryBase)
	}
	// After the base interval the jittered gate ([base/2, base)) is open.
	c3, _, _ := q.Lease(t0.Add(cfg.RetryBase))
	if c3 == nil || c3.Attempt != 2 {
		t.Fatalf("post-backoff claim = %+v", c3)
	}
}

// TestQueueAttemptsExhausted: transient failures stop being retried at
// MaxAttempts and poison the grid instead.
func TestQueueAttemptsExhausted(t *testing.T) {
	cfg := QueueConfig{Lease: time.Second, RetryBase: time.Millisecond, MaxAttempts: 2}
	q := NewQueue(testQueueJobs(1), cfg)
	now := time.Unix(1_000_000, 0)
	grants := 0
	for {
		claim, retry, done := q.Lease(now)
		if done {
			break
		}
		if claim == nil {
			now = now.Add(retry)
			continue
		}
		if grants++; grants > cfg.MaxAttempts {
			t.Fatalf("lease granted beyond MaxAttempts: %+v", claim)
		}
		if err := q.Fail(claim.Index, claim.LeaseID, "still broken", true, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Err(); err == nil {
		t.Fatal("exhausted queue reports no error")
	}
}

// TestQueueZombieFencing: once a cell has been re-leased to a live
// successor, the previous incarnation's lease token is dead — heartbeats
// can no longer extend the cell and completions can no longer clobber
// it. Salvage (completing a cell whose lease expired but was NOT
// re-leased) stays accepted: there is no live owner to protect.
func TestQueueZombieFencing(t *testing.T) {
	cases := []struct {
		name     string
		release  bool // grant the cell to a successor before the zombie acts
		act      string
		wantErr  error
		wantDone int
	}{
		{"stale heartbeat after re-lease", true, "heartbeat", ErrLeaseLost, 0},
		{"stale completion after re-lease", true, "complete", ErrLeaseLost, 0},
		{"stale fail after re-lease", true, "fail", ErrLeaseLost, 0},
		{"expired completion without re-lease is salvage", false, "complete", nil, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := QueueConfig{Lease: time.Second, MaxAttempts: 5}
			q := NewQueue(testQueueJobs(1), cfg)
			t0 := time.Unix(1_000_000, 0)
			zombie, _, _ := q.Lease(t0)
			t1 := t0.Add(cfg.Lease + time.Millisecond)
			q.ExpireLeases(t1)
			var successor *CellClaim
			if tc.release {
				successor, _, _ = q.Lease(t1)
				if successor == nil || successor.LeaseID == zombie.LeaseID {
					t.Fatalf("re-lease = %+v (zombie held %s)", successor, zombie.LeaseID)
				}
			}
			var err error
			switch tc.act {
			case "heartbeat":
				err = q.Heartbeat(0, zombie.LeaseID, t1)
			case "complete":
				err = q.Complete(0, zombie.LeaseID, testCell(1, 0.5), CellRunInfo{}, t1)
			case "fail":
				err = q.Fail(0, zombie.LeaseID, "zombie report", true, t1)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("%s with stale token: err=%v, want %v", tc.act, err, tc.wantErr)
			}
			p := q.Progress()
			if p.Done != tc.wantDone {
				t.Fatalf("done = %d, want %d (progress %+v)", p.Done, tc.wantDone, p)
			}
			if tc.release {
				if p.Fenced == 0 && tc.act != "fail" {
					t.Fatalf("fencing not counted: %+v", p)
				}
				// The successor's lease must be untouched: its heartbeat
				// still lands and its completion still wins.
				if err := q.Heartbeat(0, successor.LeaseID, t1); err != nil {
					t.Fatalf("successor heartbeat broken after zombie: %v", err)
				}
				if err := q.Complete(0, successor.LeaseID, testCell(1, 0.5), CellRunInfo{}, t1); err != nil {
					t.Fatalf("successor completion broken after zombie: %v", err)
				}
			}
			if q.Err() != nil {
				t.Fatalf("zombie poisoned the queue: %v", q.Err())
			}
		})
	}
}

// TestQueueDrain: a draining queue tells idle workers the grid is done
// while in-flight leases keep working — heartbeat, completion — so a
// graceful coordinator shutdown never strands a worker mid-cell.
func TestQueueDrain(t *testing.T) {
	q := NewQueue(testQueueJobs(2), QueueConfig{Lease: time.Second})
	t0 := time.Unix(1_000_000, 0)
	claim, _, _ := q.Lease(t0)
	q.Drain()
	if c, _, done := q.Lease(t0); c != nil || !done {
		t.Fatalf("draining queue leased: claim=%+v done=%v", c, done)
	}
	if err := q.Heartbeat(0, claim.LeaseID, t0); err != nil {
		t.Fatalf("in-flight heartbeat during drain: %v", err)
	}
	if err := q.Complete(0, claim.LeaseID, testCell(1, 0.5), CellRunInfo{}, t0); err != nil {
		t.Fatalf("in-flight completion during drain: %v", err)
	}
	if p := q.Progress(); p.Done != 1 || p.Leased != 0 {
		t.Fatalf("progress after drained completion = %+v", p)
	}
}

// TestQueuePermanentFailure poisons immediately.
func TestQueuePermanentFailure(t *testing.T) {
	q := NewQueue(testQueueJobs(2), QueueConfig{})
	t0 := time.Unix(1_000_000, 0)
	claim, _, _ := q.Lease(t0)
	if err := q.Fail(claim.Index, claim.LeaseID, "unknown scenario", false, t0); err != nil {
		t.Fatal(err)
	}
	if q.Err() == nil {
		t.Fatal("permanent failure did not poison the queue")
	}
	if _, _, done := q.Lease(t0); !done {
		t.Fatal("poisoned queue still leasing")
	}
}
