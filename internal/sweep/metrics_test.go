package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDistributedWithMetricsMatchesInProcess extends the distributed
// sweep's determinism bar to the observability surface: a coordinator
// with its full metrics registry attached (journal timing included) and
// workers carrying their own registries must still assemble a Result
// byte-identical to the bare in-process run — and the scraped metrics
// must agree with the queue's own accounting.
func TestDistributedWithMetricsMatchesInProcess(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "jitter")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}

	ref, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	co, url, wait := startCoordinator(t, opts, QueueConfig{Lease: 30 * time.Second})
	reg := obs.NewRegistry()
	co.RegisterMetrics(reg)

	workerMetrics := make([]*WorkerMetrics, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wreg := obs.NewRegistry()
		wm := NewWorkerMetrics(wreg)
		workerMetrics[i] = wm
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wk := &Worker{
				Client:  &Client{BaseURL: url, RetryCounter: wm.Retries},
				Name:    fmt.Sprintf("w%d", i),
				Runner:  CellRunner{SpoolDir: t.TempDir()},
				PollMax: 20 * time.Millisecond,
				Metrics: wm,
			}
			if err := wk.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshalResult(t, res), marshalResult(t, ref); !bytes.Equal(got, want) {
		t.Errorf("instrumented distributed result diverges from in-process run:\n--- distributed ---\n%s\n--- in-process ---\n%s", got, want)
	}

	// The coordinator's scrape must agree with its queue.
	p := co.Progress()
	snap := reg.Snapshot()
	checks := []struct {
		name string
		want int
	}{
		{`sweep_cells{state="done"}`, p.Done},
		{`sweep_cells{state="leased"}`, 0},
		{`sweep_cells{state="pending"}`, 0},
		{"sweep_cells_total", p.Total},
		{"sweep_lease_grants_total", p.Attempts},
		{"sweep_heartbeats_total", p.Heartbeats},
		{"sweep_leases_expired_total", 0},
		{"sweep_cells_resumed_total", 0},
		{"sweep_failures_permanent_total", 0},
	}
	for _, c := range checks {
		if got := int(snap[c.name].(float64)); got != c.want {
			t.Errorf("%s = %d, want %d (progress %+v)", c.name, got, c.want, p)
		}
	}
	if p.Done != 4 || p.Heartbeats == 0 {
		t.Errorf("progress = %+v, want 4 done with heartbeats", p)
	}

	// The two workers together completed the whole grid, fresh.
	var completed, fresh, heartbeats int64
	for _, wm := range workerMetrics {
		completed += wm.CellsCompleted.Value()
		fresh += wm.CellsFresh.Value()
		heartbeats += wm.Heartbeats.Value()
	}
	if completed != 4 || fresh != 4 {
		t.Errorf("worker counters: completed=%d fresh=%d, want 4/4", completed, fresh)
	}
	if got := int(heartbeats); got != p.Heartbeats {
		t.Errorf("workers counted %d heartbeats, coordinator accepted %d", heartbeats, p.Heartbeats)
	}
}

// TestStatusEndpointEnriched pins the enriched GET /v1/status payload:
// per-state cell counts, the attempt histogram, the journal-adoption and
// failure totals, and coordinator uptime all ride the same JSON object.
func TestStatusEndpointEnriched(t *testing.T) {
	names := []string{microName(t, "paper-baseline")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}

	_, url, wait := startCoordinator(t, opts, QueueConfig{Lease: 30 * time.Second})

	status := func() statusResponse {
		t.Helper()
		resp, err := http.Get(url + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := status()
	if st.Total != 2 || st.Pending != 2 || st.Done != 0 {
		t.Errorf("pre-run status = %+v, want 2 pending", st.Progress)
	}
	if len(st.AttemptCounts) == 0 || st.AttemptCounts[0] != 2 {
		t.Errorf("pre-run attempt_counts = %v, want all cells at 0 attempts", st.AttemptCounts)
	}

	wk := &Worker{
		Client:  &Client{BaseURL: url},
		Name:    "w0",
		Runner:  CellRunner{SpoolDir: t.TempDir()},
		PollMax: 20 * time.Millisecond,
	}
	if err := wk.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}

	st = status()
	if st.Done != 2 || st.Pending != 0 || st.Leased != 0 {
		t.Errorf("post-run status = %+v, want 2 done", st.Progress)
	}
	// Every cell completed on its first lease: two cells at attempt 1.
	if len(st.AttemptCounts) < 2 || st.AttemptCounts[1] != 2 || st.AttemptCounts[0] != 0 {
		t.Errorf("post-run attempt_counts = %v, want two cells at 1 attempt", st.AttemptCounts)
	}
	if st.Heartbeats == 0 {
		t.Errorf("status reports no heartbeats after a full grid: %+v", st.Progress)
	}
	if st.UptimeMS < 0 {
		t.Errorf("uptime_ms = %d, want >= 0", st.UptimeMS)
	}

	// The JSON wire shape is part of the contract: the enrichment fields
	// must be present by name, not just as zero-valued Go fields.
	resp, err := http.Get(url + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"attempt_counts", "uptime_ms", "heartbeats", "resumed", "transient_failures", "permanent_failures", "adopted", "fenced", "salvaged"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("status JSON missing %q: %v", key, raw)
		}
	}
}
