package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// CellDigest is the canonical content digest of a cell result: SHA-256
// over its JSON encoding. Go's encoding/json emits struct fields in
// declaration order and renders float64 with the shortest representation
// that round-trips exactly, so the encoding — and therefore the digest —
// is a pure function of the cell's values, stable across processes and
// across an unmarshal/marshal cycle.
//
// The digest is what makes duplicate completions cheap to adjudicate in
// the distributed sweep: the simulation is deterministic in (scenario,
// seed), so two honest workers completing the same cell MUST digest
// identically, and a mismatch can only mean a corrupted result, divergent
// binaries, or a misbehaving worker — all conditions to fail loudly on,
// never to merge silently.
func CellDigest(c *Cell) string {
	raw, err := json.Marshal(c)
	if err != nil {
		// Cell is plain data (ints, floats, strings); Marshal cannot fail.
		panic("sweep: cell digest: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
