package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dates"
	"repro/internal/fault"
	"repro/internal/lockstep"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stream"
)

// CellRunInfo is the execution accounting of one cell run: how it got to
// the finish line, not what it computed. The chaos tests use it to prove
// a killed cell was resumed from its checkpoint rather than restarted —
// ResumedAfterDays + DaysExecuted always equals the window's day count.
type CellRunInfo struct {
	// Resumed reports that the run continued a predecessor's spooled
	// checkpoint instead of starting fresh.
	Resumed bool `json:"resumed,omitempty"`
	// ResumedAfterDays is the checkpointed day count the run started from.
	ResumedAfterDays int `json:"resumed_after_days,omitempty"`
	// DaysExecuted is how many days this run actually simulated.
	DaysExecuted int `json:"days_executed"`
	// RecoveredBytes is what stream.Recover truncated off the spooled
	// log's torn tail before resuming (0 = the tail was clean).
	RecoveredBytes int64 `json:"recovered_bytes,omitempty"`
}

// CellRunner executes grid cells. The zero value runs each cell entirely
// in memory — the fast path the in-process grid uses. With SpoolDir set,
// the run log and day-boundary checkpoints spool to disk so a killed
// run's successor resumes the cell from its last checkpoint; Fault, when
// set, injects write faults into the spooled log (chaos testing).
type CellRunner struct {
	// SpoolDir holds per-cell run logs and checkpoints ("" = in-memory,
	// no crash resume).
	SpoolDir string
	// CheckpointEvery is the day interval between spooled checkpoints
	// (<= 0 means every day). Only meaningful with SpoolDir.
	CheckpointEvery int
	// Fault, when non-nil, wraps the spooled log writer with injected
	// write failures and torn writes.
	Fault *fault.Injector
	// PerDay, when non-nil, runs after each simulated day (after the
	// detector drain): worker heartbeats and crash points hook in here.
	PerDay func(day dates.Date) error
	// Detector, when non-nil, receives every cell detector's retraction
	// and banding-funnel increments (aggregated across the cells this
	// runner executes — observation only, never consulted by detection).
	Detector *lockstep.Metrics
}

// Run executes one cell. The returned Cell is identical for any runner
// configuration — in-memory, spooled, killed-and-resumed — because the
// simulation is deterministic in (scenario, seed) and checkpoint resume
// is byte-exact. Cancelling ctx stops the run at the next day barrier
// with the spool checkpointed (errors.Is(err, ctx.Err())); a successor
// resumes the cell, it does not restart it.
func (cr *CellRunner) Run(ctx context.Context, sp scenario.Spec, seed uint64) (Cell, CellRunInfo, error) {
	cfg, err := sim.ConfigForSpec(sp)
	if err != nil {
		return Cell{}, CellRunInfo{}, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Workers = 1 // the grid parallelizes across cells
	cell := Cell{Scenario: sp.Name, Seed: cfg.Seed}
	if cr.SpoolDir == "" {
		info, err := cr.runMem(ctx, &cell, sp, cfg)
		return cell, info, err
	}
	info, err := cr.runSpooled(ctx, &cell, sp, cfg)
	return cell, info, err
}

// runMem is the in-memory path: the run log drains into a buffer a Tail
// follows at each day barrier — the same online wiring examples/
// monitoring uses against a file, minus the disk.
func (cr *CellRunner) runMem(ctx context.Context, cell *Cell, sp scenario.Spec, cfg sim.Config) (CellRunInfo, error) {
	var info CellRunInfo
	w, err := sim.NewWorld(cfg)
	if err != nil {
		return info, fmt.Errorf("sweep: building %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}
	var buf memLog
	runLog, err := w.NewRunLog(&buf)
	if err != nil {
		return info, err
	}
	tap := newDetectorTap(sp, &buf, cr.Detector)
	stats, err := w.RunOpts(sim.RunOptions{
		Context: ctx,
		Log:     runLog,
		Hook:    cr.dayHook(tap),
	})
	if err != nil {
		return info, fmt.Errorf("sweep: running %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}
	info.DaysExecuted = stats.Days
	cell.Stats = stats
	scoreCell(cell, w, tap.det)
	return info, nil
}

// runSpooled is the crash-resumable path: the run log and periodic
// checkpoints live under SpoolDir, so a successor of a killed run
// salvages the log's torn tail (stream.Recover), restores the last
// checkpoint, re-ingests the detector from the salvaged prefix, and
// continues the simulation — producing the same bytes the uninterrupted
// run would have.
func (cr *CellRunner) runSpooled(ctx context.Context, cell *Cell, sp scenario.Spec, cfg sim.Config) (CellRunInfo, error) {
	var info CellRunInfo
	logPath, ckptPath := cr.spoolPaths(sp.Name, cfg.Seed)
	w, err := sim.NewWorld(cfg)
	if err != nil {
		return info, fmt.Errorf("sweep: building %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}

	cp := cr.loadResume(w, logPath, ckptPath, &info)
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return info, fmt.Errorf("sweep: spooling %s: %w", logPath, err)
	}
	defer f.Close()

	var runLog *stream.Writer
	tap := newDetectorTap(sp, f, cr.Detector)
	if cp != nil {
		if err := f.Truncate(cp.LogOffset); err != nil {
			return info, fmt.Errorf("sweep: truncating spooled log: %w", err)
		}
		if _, err := f.Seek(cp.LogOffset, io.SeekStart); err != nil {
			return info, err
		}
		// Rebuild the detector from the already-simulated prefix: resume
		// continues the cell, it does not restart the analysis.
		if err := tap.drain(); err != nil {
			return info, fmt.Errorf("sweep: re-ingesting spooled log: %w", err)
		}
		runLog = w.ResumeRunLog(cr.Fault.Writer(f), cp)
	} else {
		if err := f.Truncate(0); err != nil {
			return info, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return info, err
		}
		runLog, err = w.NewRunLog(cr.Fault.Writer(f))
		if err != nil {
			return info, err
		}
	}

	opts := sim.RunOptions{
		Context:         ctx,
		Log:             runLog,
		Hook:            cr.dayHook(tap),
		Resume:          cp,
		CheckpointEvery: cr.CheckpointEvery,
		Checkpoint: func(cp *stream.Checkpoint) error {
			return stream.WriteCheckpointFile(ckptPath, cp)
		},
	}
	stats, err := w.RunOpts(opts)
	if err != nil {
		return info, fmt.Errorf("sweep: running %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}
	info.DaysExecuted = stats.Days - info.ResumedAfterDays
	cell.Stats = stats
	scoreCell(cell, w, tap.det)
	// The cell is done and its result content-verifiable; the spool is
	// scratch space, not an artifact.
	os.Remove(logPath)
	os.Remove(ckptPath)
	return info, nil
}

func (cr *CellRunner) spoolPaths(name string, seed uint64) (logPath, ckptPath string) {
	stem := filepath.Join(cr.SpoolDir, fmt.Sprintf("%s-seed%d", name, seed))
	return stem + ".log", stem + ".ckpt"
}

// loadResume decides whether a predecessor's spool is continuable: the
// checkpoint must read back, the salvaged log must reach the
// checkpoint's offset, and the checkpoint must validate against this
// world. Anything less falls back to a fresh run — which is always
// correct, just slower.
func (cr *CellRunner) loadResume(w *sim.World, logPath, ckptPath string, info *CellRunInfo) *stream.Checkpoint {
	cp, err := stream.ReadCheckpointFile(ckptPath)
	if err != nil {
		return nil
	}
	rinfo, err := stream.Recover(logPath)
	if err != nil || rinfo.ValidEnd < cp.LogOffset {
		return nil
	}
	// Validate only: the destructive overlay (World.Restore) happens
	// inside RunOpts, after the caller truncates the log — a checkpoint
	// from a different seed or config bails out here with the fresh-run
	// world untouched.
	if err := w.ValidateResume(cp); err != nil {
		return nil
	}
	info.Resumed = true
	info.ResumedAfterDays = int(cp.Days)
	info.RecoveredBytes = rinfo.Dropped()
	return cp
}

// dayHook chains the detector drain with the runner's PerDay hook.
func (cr *CellRunner) dayHook(tap *detectorTap) func(dates.Date) error {
	return func(day dates.Date) error {
		if err := tap.drain(); err != nil {
			return err
		}
		if cr.PerDay != nil {
			return cr.PerDay(day)
		}
		return nil
	}
}

// detectorTap feeds the incremental lockstep detector from a run log via
// stream.Tail: drained at each day barrier, it observes installs exactly
// as an out-of-process analytics job tailing the file would.
type detectorTap struct {
	det    *lockstep.Detector
	tail   *stream.Tail
	ev     stream.Event
	curDay dates.Date
}

func newDetectorTap(sp scenario.Spec, src io.ReaderAt, m *lockstep.Metrics) *detectorTap {
	det := lockstep.NewDetector(sp.Detector.Config())
	det.SetMetrics(m)
	return &detectorTap{
		det:  det,
		tail: stream.NewTail(src),
	}
}

func (tp *detectorTap) drain() error {
	for {
		ok, err := tp.tail.Next(&tp.ev)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch tp.ev.Kind {
		case stream.KindDayStart:
			tp.curDay = tp.ev.Day
		case stream.KindInstall:
			tp.det.Ingest(tp.ev.Device, tp.ev.Pkg, tp.curDay)
		case stream.KindInstallBatch:
			for _, dev := range tp.ev.Devices {
				tp.det.Ingest(dev, tp.ev.Pkg, tp.curDay)
			}
		}
	}
}

// scoreCell finishes a completed run: organic decoy background, then
// groups scored against the world's recorded ground truth.
func scoreCell(cell *Cell, w *sim.World, det *lockstep.Detector) {
	for _, dev := range w.DecoyEvents() {
		det.Ingest(dev.Device, dev.App, dev.Day)
	}
	truth := w.TruthLabels()
	groups := det.Groups()
	cell.Truth = len(truth)
	cell.Groups = len(groups)
	cell.Flagged = 0
	for _, g := range groups {
		cell.Flagged += len(g.Devices)
	}
	cell.Eval = lockstep.Evaluate(groups, truth)
	cell.Detector = det.Stats()
}

// IsInjected reports whether err stems from an injected fault — the
// signal a chaos-harness worker treats as its own simulated death.
func IsInjected(err error) bool { return errors.Is(err, fault.ErrInjected) }

// memLog is the in-memory run log a cell writes and tails: Write appends,
// ReadAt addresses absolute offsets. The writer (run loop) and reader
// (day-barrier hook) share one goroutine, so no locking is needed.
type memLog struct {
	buf []byte
}

func (m *memLog) Write(p []byte) (int, error) {
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memLog) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
