package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/randx"
)

// The coordinator/worker wire protocol: four JSON POSTs over plain HTTP.
// Deliberately minimal — the determinism contract carries the real
// correctness weight (any honest execution of a cell is valid, duplicate
// results are digest-checked), so the transport only needs at-least-once
// delivery, which retry-with-backoff over idempotent requests provides.
//
//	POST /v1/lease      {} → leaseResponse
//	POST /v1/heartbeat  heartbeatRequest → 204 | 410 lease lost
//	POST /v1/complete   completeRequest  → 204 | 409 digest mismatch
//	POST /v1/fail       failRequest      → 204 | 410 lease lost
//	GET  /v1/status     → Progress
//	GET  /v1/result     → Result (once finished)

type leaseResponse struct {
	// Exactly one of: Claim (work to do), Done (grid finished, shut
	// down), or RetryMS (nothing available; ask again after this delay).
	Claim   *CellClaim `json:"claim,omitempty"`
	RetryMS int64      `json:"retry_ms,omitempty"`
	Done    bool       `json:"done,omitempty"`
}

type heartbeatRequest struct {
	Index   int    `json:"index"`
	LeaseID string `json:"lease_id"`
}

type completeRequest struct {
	Index   int         `json:"index"`
	LeaseID string      `json:"lease_id"`
	Cell    Cell        `json:"cell"`
	Info    CellRunInfo `json:"info"`
}

type failRequest struct {
	Index     int    `json:"index"`
	LeaseID   string `json:"lease_id"`
	Error     string `json:"error"`
	Transient bool   `json:"transient"`
}

// Client is a worker's connection to the coordinator. Transport-level
// failures (connection refused, injected drops, 5xx) are retried with
// capped exponential backoff + jitter; protocol-level outcomes (410
// lease lost, 409 digest mismatch) surface as their sentinel errors.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTP is the underlying client (nil = http.DefaultClient). Chaos
	// tests install a fault-injecting RoundTripper here.
	HTTP *http.Client
	// Retries bounds transport-level retries per request (0 = 8).
	Retries int
	// RetryBase seeds the backoff schedule (0 = 50ms), capped at 2s.
	RetryBase time.Duration
	// Jitter, when non-nil, randomizes backoff delays.
	Jitter *randx.Rand
	// RetryCounter, when non-nil, counts transport-level retries
	// (nil-safe obs handle; wire a WorkerMetrics.Retries here).
	RetryCounter *obs.Counter
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 8
}

func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	const ceiling = 2 * time.Second
	d := base
	for i := 0; i < attempt && d < ceiling; i++ {
		d *= 2
	}
	if d > ceiling {
		d = ceiling
	}
	if c.Jitter != nil {
		d = d/2 + time.Duration(c.Jitter.Float64()*float64(d/2))
	}
	return d
}

// post sends one JSON request, retrying transport failures. A non-nil
// out receives the decoded 200 body. Cancelling ctx aborts the request
// in flight and the backoff waits between retries.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			c.RetryCounter.Inc()
			select {
			case <-ctx.Done():
				return fmt.Errorf("sweep: %s: %w (last transport error: %v)", path, ctx.Err(), lastErr)
			case <-time.After(c.backoff(attempt - 1)):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("sweep: %s: %w", path, ctx.Err())
			}
			lastErr = err // connection-level: retry
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		case resp.StatusCode == http.StatusNoContent:
			return nil
		case resp.StatusCode == http.StatusGone:
			return ErrLeaseLost
		case resp.StatusCode == http.StatusConflict:
			return ErrDigestMismatch
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("sweep: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
			continue
		default:
			return fmt.Errorf("sweep: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
		}
	}
	return fmt.Errorf("sweep: %s: retries exhausted: %w", path, lastErr)
}

// Lease asks for work: a claim, done=true (grid finished), or a retry
// delay when nothing is available yet.
func (c *Client) Lease(ctx context.Context) (claim *CellClaim, retry time.Duration, done bool, err error) {
	var resp leaseResponse
	if err := c.post(ctx, "/v1/lease", struct{}{}, &resp); err != nil {
		return nil, 0, false, err
	}
	return resp.Claim, time.Duration(resp.RetryMS) * time.Millisecond, resp.Done, nil
}

// Heartbeat renews the lease on a running cell.
func (c *Client) Heartbeat(ctx context.Context, index int, leaseID string) error {
	return c.post(ctx, "/v1/heartbeat", heartbeatRequest{Index: index, LeaseID: leaseID}, nil)
}

// Complete reports a finished cell.
func (c *Client) Complete(ctx context.Context, index int, leaseID string, cell Cell, info CellRunInfo) error {
	return c.post(ctx, "/v1/complete", completeRequest{Index: index, LeaseID: leaseID, Cell: cell, Info: info}, nil)
}

// Fail reports a cell failure (transient = retry elsewhere).
func (c *Client) Fail(ctx context.Context, index int, leaseID, msg string, transient bool) error {
	return c.post(ctx, "/v1/fail", failRequest{Index: index, LeaseID: leaseID, Error: msg, Transient: transient}, nil)
}
