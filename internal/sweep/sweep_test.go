package sweep

import (
	"testing"

	"repro/internal/scenario"
)

// registerMicro registers a shrunken-world variant of the named built-in
// so grid tests stay fast: a 20-day window over the tiny catalog.
func microName(t *testing.T, base string) string {
	t.Helper()
	name := "micro-" + base
	if _, ok := scenario.Lookup(name); ok {
		return name
	}
	sp, ok := scenario.Lookup(base)
	if !ok {
		t.Fatalf("built-in %s missing", base)
	}
	sp.Name = name
	sp.World.WindowDays = 20
	if err := scenario.Register(sp); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestSweepEvasionDegradesRecall is the acceptance check for the
// scenario layer: running the grid, at least one evasion scenario must
// measurably degrade detector recall against the recorded ground truth
// relative to paper-baseline — the empirical answer to the Section 5.2
// open question.
func TestSweepEvasionDegradesRecall(t *testing.T) {
	names := []string{
		microName(t, "paper-baseline"),
		microName(t, "sybil-split"),
		microName(t, "device-churn"),
	}
	res, err := Run(Options{Scenarios: names, Seeds: []uint64{20190301}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("grid returned %d scenarios, want 3", len(res.Scenarios))
	}
	baseline := res.Scenarios[0]
	if baseline.Recall <= 0 {
		t.Fatalf("baseline recall is %v; evaluation is vacuous", baseline.Recall)
	}
	degraded := false
	for _, s := range res.Scenarios[1:] {
		if s.Recall < baseline.Recall-0.05 {
			degraded = true
		}
		if len(s.Cells) != 1 || s.Cells[0].Stats.IncentivizedInstalls == 0 {
			t.Fatalf("scenario %s delivered nothing", s.Name)
		}
	}
	if !degraded {
		t.Fatalf("no evasion scenario degraded recall vs baseline %.3f: %+v",
			baseline.Recall, res.Scenarios[1:])
	}
}

// TestSweepDeterministicAcrossWorkers: the grid result must not depend on
// how many cells ran concurrently.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "jitter")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}
	opts.Workers = 1
	serial, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	pooled, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Scenarios) != len(pooled.Scenarios) {
		t.Fatal("scenario counts differ")
	}
	for i := range serial.Scenarios {
		a, b := serial.Scenarios[i], pooled.Scenarios[i]
		if a.Name != b.Name || a.Precision != b.Precision || a.Recall != b.Recall || a.F1 != b.F1 {
			t.Fatalf("grid diverges across workers: %+v vs %+v", a, b)
		}
		for j := range a.Cells {
			if a.Cells[j] != b.Cells[j] {
				t.Fatalf("cell %d diverges: %+v vs %+v", j, a.Cells[j], b.Cells[j])
			}
		}
	}
}

// TestSweepUnknownScenario surfaces bad grid requests.
func TestSweepUnknownScenario(t *testing.T) {
	if _, err := Run(Options{Scenarios: []string{"no-such"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestSweepDeduplicatesScenarios: a repeated name must not re-run cells
// or corrupt the mean aggregation (metrics can never exceed 1.0).
func TestSweepDeduplicatesScenarios(t *testing.T) {
	name := microName(t, "paper-baseline")
	res, err := Run(Options{Scenarios: []string{name, name}, Seeds: []uint64{20190301}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 {
		t.Fatalf("duplicate request produced %d summaries, want 1", len(res.Scenarios))
	}
	s := res.Scenarios[0]
	if len(s.Cells) != 1 {
		t.Fatalf("duplicate request produced %d cells, want 1", len(s.Cells))
	}
	if s.Precision > 1 || s.Recall > 1 || s.F1 > 1 {
		t.Fatalf("aggregation out of range: %+v", s)
	}
}
