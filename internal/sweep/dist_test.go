package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dates"
	"repro/internal/fault"
)

// startCoordinator serves a coordinator over real HTTP and drains it on a
// background goroutine; the returned wait collects the final result.
func startCoordinator(t *testing.T, opts Options, qc QueueConfig) (*Coordinator, string, func() (*Result, error)) {
	t.Helper()
	co, err := NewCoordinator(opts, qc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := co.Run(ctx)
		ch <- outcome{res, err}
	}()
	return co, srv.URL, func() (*Result, error) {
		o := <-ch
		return o.res, o.err
	}
}

func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDistributedMatchesInProcess is the distributed sweep's acceptance
// bar: two worker processes (in-process Worker loops over real HTTP,
// spooled cell runs) must produce a Result byte-identical to the plain
// in-process Run of the same grid — the determinism contract, end to end
// through the lease protocol, the spooled run log, and pure assembly.
func TestDistributedMatchesInProcess(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "jitter")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}

	ref, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	co, url, wait := startCoordinator(t, opts, QueueConfig{Lease: 30 * time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wk := &Worker{
				Client:  &Client{BaseURL: url},
				Name:    fmt.Sprintf("w%d", i),
				Runner:  CellRunner{SpoolDir: t.TempDir()},
				PollMax: 20 * time.Millisecond,
			}
			if err := wk.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshalResult(t, res), marshalResult(t, ref); !bytes.Equal(got, want) {
		t.Errorf("distributed result diverges from in-process run:\n--- distributed ---\n%s\n--- in-process ---\n%s", got, want)
	}
	p := co.Progress()
	if p.Done != 4 || p.Mismatches != 0 {
		t.Errorf("progress = %+v", p)
	}
}

// TestDistributedSweepChaos runs the full grid under injected failure —
// workers killed mid-cell at day barriers, torn run-log writes, dropped
// protocol requests — restarting a fresh worker incarnation over the same
// spool after each death, and asserts the recovery machinery restores the
// exact bytes: the aggregate equals the fault-free in-process run, and
// the per-cell day accounting proves killed cells were resumed from their
// checkpoints, not restarted.
func TestDistributedSweepChaos(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "sybil-split")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}
	const windowDays = 20 // micro scenarios simulate a 20-day window

	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The lease must comfortably exceed the gap between lease grant and
	// the first day-barrier heartbeat (world build + possible resume
	// re-ingest), or live workers expire and the grid livelocks.
	leaseFor := 3 * time.Second
	co, url, wait := startCoordinator(t, opts, QueueConfig{
		Lease:       leaseFor,
		MaxAttempts: 12,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
		Seed:        1,
	})

	// Every incarnation shares one spool: a successor finds its
	// predecessor's torn log and checkpoints exactly as a restarted
	// process on the same host would.
	spool := t.TempDir()
	kills := 4 // planned mid-cell deaths at day barriers
	torn := 3  // incarnations whose log writes may tear (each dies at most once either way)
	const maxIncarnations = 60
	incarnations := 0
	for i := 0; ; i++ {
		if i >= maxIncarnations {
			t.Fatalf("grid not drained after %d worker incarnations: %+v", i, co.Progress())
		}
		incarnations++

		// The first few incarnations may die of a torn log write before
		// their day-barrier kill fires; the probability is per Write call,
		// so it must stay tiny or nothing ever reaches a checkpoint. Later
		// incarnations run clean so the grid always drains.
		var injector *fault.Injector
		if torn > 0 {
			torn--
			injector = fault.New(fault.Config{Seed: uint64(i + 1), WriteErrorProb: 0.0005, TornWrites: true})
		}
		httpFaults := fault.New(fault.Config{Seed: uint64(100 + i), RequestErrorProb: 0.05})

		days := 0
		wk := &Worker{
			Client: &Client{
				BaseURL:   url,
				HTTP:      &http.Client{Transport: httpFaults.RoundTripper(nil)},
				RetryBase: 2 * time.Millisecond,
			},
			Name: fmt.Sprintf("inc%d", i),
			Runner: CellRunner{
				SpoolDir:        spool,
				CheckpointEvery: 1,
				Fault:           injector,
				PerDay: func(dates.Date) error {
					if days++; kills > 0 && days == 8 {
						kills--
						return fmt.Errorf("chaos: killed at day barrier %d: %w", days, fault.ErrInjected)
					}
					return nil
				},
			},
			PollMax: 25 * time.Millisecond,
		}

		err := wk.Run(context.Background())
		if err == nil {
			break // grid drained (or poisoned — wait() distinguishes)
		}
		if !IsInjected(err) {
			t.Fatalf("incarnation %d died of a non-injected error: %v", i, err)
		}
		// The dead incarnation's lease would take a full lease interval to
		// time out; fast-forward the clock for the expiry check only (no
		// other worker is alive, so no live lease can be swept up).
		co.Queue().ExpireLeases(time.Now().Add(leaseFor + time.Second))
	}

	res, err := wait()
	if err != nil {
		t.Fatalf("grid failed under chaos: %v", err)
	}
	if got, want := marshalResult(t, res), marshalResult(t, clean); !bytes.Equal(got, want) {
		t.Errorf("chaos result diverges from fault-free run:\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}

	// Day accounting: for every cell the checkpointed prefix plus the days
	// the finishing incarnation actually simulated must cover the window
	// exactly — a restarted (rather than resumed) cell would double-count.
	resumed := 0
	for i, info := range co.CellInfos() {
		if info.ResumedAfterDays+info.DaysExecuted != windowDays {
			t.Errorf("cell %d day accounting broken: resumed_after=%d + executed=%d != %d",
				i, info.ResumedAfterDays, info.DaysExecuted, windowDays)
		}
		if info.Resumed && info.ResumedAfterDays > 0 {
			resumed++
		}
	}
	if resumed == 0 {
		t.Errorf("no cell was checkpoint-resumed (infos=%+v, incarnations=%d)", co.CellInfos(), incarnations)
	}
	p := co.Progress()
	if p.Done != 4 || p.Mismatches != 0 {
		t.Errorf("progress = %+v", p)
	}
	if p.Expiries == 0 {
		t.Errorf("no lease ever expired under chaos: %+v", p)
	}
	t.Logf("chaos drained: %d incarnations, progress=%+v", incarnations, p)
}

// TestCoordinatorCrashRestartChaos is the tentpole's acceptance bar: the
// COORDINATOR dies mid-sweep — after one cell completed, with another
// in flight, and with its journal's final record torn by the crash — and
// a successor coordinator restores the grid from the journal and drains
// it with fresh workers to an aggregate byte-identical to the fault-free
// in-process run. The completed cell is adopted from the journal without
// re-execution, and the in-flight cell resumes from its spooled
// checkpoint once the dead worker's journaled lease expires.
func TestCoordinatorCrashRestartChaos(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "sybil-split")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301}}
	const windowDays = 20

	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "sweep.journal")
	spool := t.TempDir() // shared by every worker incarnation, like one host
	leaseFor := 3 * time.Second
	qc := QueueConfig{Lease: leaseFor, MaxAttempts: 12, RetryBase: 10 * time.Millisecond, Seed: 1}

	// Incarnation #1 of the coordinator. Its Run loop never starts — the
	// Handler alone serves the queue, which is exactly the state a crash
	// leaves: no janitor, no assembler, just whatever reached the journal.
	co1, err := NewCoordinator(opts, qc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co1.OpenJournal(journal, nil); err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())

	// One worker completes the first cell, then dies at day barrier 5 of
	// the second — leaving cell 0 journaled done and cell 1 leased with a
	// day-5 checkpoint in the spool.
	days := 0
	wk1 := &Worker{
		Client: &Client{BaseURL: srv1.URL},
		Name:   "pre-crash",
		Runner: CellRunner{
			SpoolDir:        spool,
			CheckpointEvery: 1,
			PerDay: func(dates.Date) error {
				if days++; days == windowDays+5 {
					return fmt.Errorf("chaos: killed at day barrier: %w", fault.ErrInjected)
				}
				return nil
			},
		},
		PollMax: 20 * time.Millisecond,
	}
	if err := wk1.Run(context.Background()); !IsInjected(err) {
		t.Fatalf("pre-crash worker: %v, want injected death", err)
	}
	if p := co1.Progress(); p.Done != 1 || p.Leased != 1 {
		t.Fatalf("pre-crash progress = %+v, want 1 done + 1 leased", p)
	}

	// Crash the coordinator: listener gone, journal file abandoned — and
	// tear the crash-interrupted tail off its final record (the in-flight
	// cell's last heartbeat), as a mid-append power cut would.
	srv1.Close()
	co1.Close()
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(journal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Incarnation #2 adopts the journal: the done cell comes back without
	// re-running, the dead worker's lease is honored until the janitor
	// expires it on the journaled deadline.
	co2, err := NewCoordinator(opts, qc)
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := co2.OpenJournal(journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if adopted != 1 {
		t.Fatalf("successor adopted %d cell(s), want 1", adopted)
	}
	if p := co2.Progress(); p.Done != 1 || p.Leased != 1 {
		t.Fatalf("restored progress = %+v, want 1 done + 1 leased", p)
	}
	// No live worker holds the restored lease; fast-forward its expiry so
	// the test doesn't idle out the wall-clock lease interval.
	co2.Queue().ExpireLeases(time.Now().Add(leaseFor + time.Second))

	srv2 := httptest.NewServer(co2.Handler())
	t.Cleanup(srv2.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = co2.Run(ctx)
	}()

	wk2 := &Worker{
		Client:  &Client{BaseURL: srv2.URL},
		Name:    "post-crash",
		Runner:  CellRunner{SpoolDir: spool, CheckpointEvery: 1},
		PollMax: 20 * time.Millisecond,
	}
	if err := wk2.Run(context.Background()); err != nil {
		t.Fatalf("post-crash worker: %v", err)
	}
	<-done
	if runErr != nil {
		t.Fatalf("successor coordinator: %v", runErr)
	}

	if got, want := marshalResult(t, res), marshalResult(t, clean); !bytes.Equal(got, want) {
		t.Errorf("post-restart result diverges from fault-free run:\n--- restarted ---\n%s\n--- clean ---\n%s", got, want)
	}
	// Day accounting across the coordinator crash: the adopted cell ran
	// once in full; the killed cell's successor resumed its checkpoint.
	infos := co2.CellInfos()
	resumed := 0
	for i, info := range infos {
		if info.ResumedAfterDays+info.DaysExecuted != windowDays {
			t.Errorf("cell %d day accounting broken: resumed_after=%d + executed=%d != %d",
				i, info.ResumedAfterDays, info.DaysExecuted, windowDays)
		}
		if info.Resumed && info.ResumedAfterDays > 0 {
			resumed++
		}
	}
	if resumed == 0 {
		t.Errorf("killed cell was restarted, not resumed (infos=%+v)", infos)
	}
	if p := co2.Progress(); p.Done != 2 || p.Mismatches != 0 {
		t.Errorf("final progress = %+v", p)
	}

	// The journal now records the drained grid: a THIRD incarnation
	// adopts everything and has nothing to run.
	co3, err := NewCoordinator(opts, qc)
	if err != nil {
		t.Fatal(err)
	}
	adopted3, err := co3.OpenJournal(journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co3.Close()
	if adopted3 != 2 {
		t.Errorf("third incarnation adopted %d cell(s), want 2", adopted3)
	}
	res3, err := co3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalResult(t, res3); !bytes.Equal(got, marshalResult(t, clean)) {
		t.Errorf("journal-only result diverges from fault-free run")
	}
}

// TestWorkerGracefulDrain: cancelling a worker's context mid-cell (the
// SIGTERM path) releases its lease with a transient failure after a
// forced day-barrier checkpoint, so a successor resumes the cell
// IMMEDIATELY — no lease expiry — and finishes it to the clean result.
// The day accounting is the proof of graceful handoff the issue demands:
// resumed_after_days + days_executed == window.
func TestWorkerGracefulDrain(t *testing.T) {
	names := []string{microName(t, "paper-baseline")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301}}
	const windowDays = 20
	const drainAt = 5

	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	co, url, wait := startCoordinator(t, opts, QueueConfig{
		Lease: 30 * time.Second, RetryBase: time.Millisecond, MaxAttempts: 5,
	})
	spool := t.TempDir()

	// Worker #1 receives its "SIGTERM" (context cancellation) at day
	// barrier 5. CheckpointEvery far beyond the window proves the
	// checkpoint the successor resumes from is the cancellation's forced
	// one, not a cadence write.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	days := 0
	wk1 := &Worker{
		Client: &Client{BaseURL: url},
		Name:   "draining",
		Runner: CellRunner{
			SpoolDir:        spool,
			CheckpointEvery: windowDays * 10,
			PerDay: func(dates.Date) error {
				if days++; days == drainAt {
					cancel()
				}
				return nil
			},
		},
		PollMax: 20 * time.Millisecond,
	}
	if err := wk1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drained worker returned %v, want context.Canceled", err)
	}

	// The graceful release already re-queued the cell: no lease is held
	// and no expiry was needed.
	if p := co.Progress(); p.Leased != 0 || p.Expiries != 0 || p.Done != 0 {
		t.Fatalf("post-drain progress = %+v, want released lease with no expiry", p)
	}

	wk2 := &Worker{
		Client:  &Client{BaseURL: url},
		Name:    "successor",
		Runner:  CellRunner{SpoolDir: spool, CheckpointEvery: windowDays * 10},
		PollMax: 20 * time.Millisecond,
	}
	if err := wk2.Run(context.Background()); err != nil {
		t.Fatalf("successor worker: %v", err)
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshalResult(t, res), marshalResult(t, clean); !bytes.Equal(got, want) {
		t.Errorf("drain+resume result diverges from clean run:\n--- drained ---\n%s\n--- clean ---\n%s", got, want)
	}
	info := co.CellInfos()[0]
	if !info.Resumed || info.ResumedAfterDays != drainAt || info.DaysExecuted != windowDays-drainAt {
		t.Errorf("successor info = %+v, want resume after day %d (resumed_after+executed must equal %d)",
			info, drainAt, windowDays)
	}
	if p := co.Progress(); p.Expiries != 0 {
		t.Errorf("graceful drain needed a lease expiry: %+v", p)
	}
}
