package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dates"
	"repro/internal/fault"
)

// startCoordinator serves a coordinator over real HTTP and drains it on a
// background goroutine; the returned wait collects the final result.
func startCoordinator(t *testing.T, opts Options, qc QueueConfig) (*Coordinator, string, func() (*Result, error)) {
	t.Helper()
	co, err := NewCoordinator(opts, qc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := co.Run(ctx)
		ch <- outcome{res, err}
	}()
	return co, srv.URL, func() (*Result, error) {
		o := <-ch
		return o.res, o.err
	}
}

func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDistributedMatchesInProcess is the distributed sweep's acceptance
// bar: two worker processes (in-process Worker loops over real HTTP,
// spooled cell runs) must produce a Result byte-identical to the plain
// in-process Run of the same grid — the determinism contract, end to end
// through the lease protocol, the spooled run log, and pure assembly.
func TestDistributedMatchesInProcess(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "jitter")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}

	ref, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	co, url, wait := startCoordinator(t, opts, QueueConfig{Lease: 30 * time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wk := &Worker{
				Client:  &Client{BaseURL: url},
				Name:    fmt.Sprintf("w%d", i),
				Runner:  CellRunner{SpoolDir: t.TempDir()},
				PollMax: 20 * time.Millisecond,
			}
			if err := wk.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshalResult(t, res), marshalResult(t, ref); !bytes.Equal(got, want) {
		t.Errorf("distributed result diverges from in-process run:\n--- distributed ---\n%s\n--- in-process ---\n%s", got, want)
	}
	p := co.Progress()
	if p.Done != 4 || p.Mismatches != 0 {
		t.Errorf("progress = %+v", p)
	}
}

// TestDistributedSweepChaos runs the full grid under injected failure —
// workers killed mid-cell at day barriers, torn run-log writes, dropped
// protocol requests — restarting a fresh worker incarnation over the same
// spool after each death, and asserts the recovery machinery restores the
// exact bytes: the aggregate equals the fault-free in-process run, and
// the per-cell day accounting proves killed cells were resumed from their
// checkpoints, not restarted.
func TestDistributedSweepChaos(t *testing.T) {
	names := []string{microName(t, "paper-baseline"), microName(t, "sybil-split")}
	opts := Options{Scenarios: names, Seeds: []uint64{20190301, 20190401}}
	const windowDays = 20 // micro scenarios simulate a 20-day window

	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The lease must comfortably exceed the gap between lease grant and
	// the first day-barrier heartbeat (world build + possible resume
	// re-ingest), or live workers expire and the grid livelocks.
	leaseFor := 3 * time.Second
	co, url, wait := startCoordinator(t, opts, QueueConfig{
		Lease:       leaseFor,
		MaxAttempts: 12,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
		Seed:        1,
	})

	// Every incarnation shares one spool: a successor finds its
	// predecessor's torn log and checkpoints exactly as a restarted
	// process on the same host would.
	spool := t.TempDir()
	kills := 4 // planned mid-cell deaths at day barriers
	torn := 3  // incarnations whose log writes may tear (each dies at most once either way)
	const maxIncarnations = 60
	incarnations := 0
	for i := 0; ; i++ {
		if i >= maxIncarnations {
			t.Fatalf("grid not drained after %d worker incarnations: %+v", i, co.Progress())
		}
		incarnations++

		// The first few incarnations may die of a torn log write before
		// their day-barrier kill fires; the probability is per Write call,
		// so it must stay tiny or nothing ever reaches a checkpoint. Later
		// incarnations run clean so the grid always drains.
		var injector *fault.Injector
		if torn > 0 {
			torn--
			injector = fault.New(fault.Config{Seed: uint64(i + 1), WriteErrorProb: 0.0005, TornWrites: true})
		}
		httpFaults := fault.New(fault.Config{Seed: uint64(100 + i), RequestErrorProb: 0.05})

		days := 0
		wk := &Worker{
			Client: &Client{
				BaseURL:   url,
				HTTP:      &http.Client{Transport: httpFaults.RoundTripper(nil)},
				RetryBase: 2 * time.Millisecond,
			},
			Name: fmt.Sprintf("inc%d", i),
			Runner: CellRunner{
				SpoolDir:        spool,
				CheckpointEvery: 1,
				Fault:           injector,
				PerDay: func(dates.Date) error {
					if days++; kills > 0 && days == 8 {
						kills--
						return fmt.Errorf("chaos: killed at day barrier %d: %w", days, fault.ErrInjected)
					}
					return nil
				},
			},
			PollMax: 25 * time.Millisecond,
		}

		err := wk.Run(context.Background())
		if err == nil {
			break // grid drained (or poisoned — wait() distinguishes)
		}
		if !IsInjected(err) {
			t.Fatalf("incarnation %d died of a non-injected error: %v", i, err)
		}
		// The dead incarnation's lease would take a full lease interval to
		// time out; fast-forward the clock for the expiry check only (no
		// other worker is alive, so no live lease can be swept up).
		co.Queue().ExpireLeases(time.Now().Add(leaseFor + time.Second))
	}

	res, err := wait()
	if err != nil {
		t.Fatalf("grid failed under chaos: %v", err)
	}
	if got, want := marshalResult(t, res), marshalResult(t, clean); !bytes.Equal(got, want) {
		t.Errorf("chaos result diverges from fault-free run:\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}

	// Day accounting: for every cell the checkpointed prefix plus the days
	// the finishing incarnation actually simulated must cover the window
	// exactly — a restarted (rather than resumed) cell would double-count.
	resumed := 0
	for i, info := range co.CellInfos() {
		if info.ResumedAfterDays+info.DaysExecuted != windowDays {
			t.Errorf("cell %d day accounting broken: resumed_after=%d + executed=%d != %d",
				i, info.ResumedAfterDays, info.DaysExecuted, windowDays)
		}
		if info.Resumed && info.ResumedAfterDays > 0 {
			resumed++
		}
	}
	if resumed == 0 {
		t.Errorf("no cell was checkpoint-resumed (infos=%+v, incarnations=%d)", co.CellInfos(), incarnations)
	}
	p := co.Progress()
	if p.Done != 4 || p.Mismatches != 0 {
		t.Errorf("progress = %+v", p)
	}
	if p.Expiries == 0 {
		t.Errorf("no lease ever expired under chaos: %+v", p)
	}
	t.Logf("chaos drained: %d incarnations, progress=%+v", incarnations, p)
}
