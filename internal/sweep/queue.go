package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/randx"
)

// Queue errors surfaced to workers (mapped to HTTP statuses by the
// transport).
var (
	// ErrLeaseLost means the lease being renewed or completed was
	// reissued to another worker (expiry) or never existed. The worker
	// abandons the cell; whoever holds the live lease finishes it.
	ErrLeaseLost = errors.New("sweep: lease lost")
	// ErrDigestMismatch means two completions of the same cell disagree —
	// impossible for honest deterministic workers, so the whole grid
	// fails loudly rather than pick a winner.
	ErrDigestMismatch = errors.New("sweep: duplicate completion digest mismatch")
)

// QueueConfig tunes the work queue's failure handling.
type QueueConfig struct {
	// Lease bounds how long a worker may hold a cell without renewing;
	// an expired lease is reissued (default 30s).
	Lease time.Duration
	// MaxAttempts bounds lease grants per cell before the grid fails
	// (default 5). Expiries and transient failures both consume attempts.
	MaxAttempts int
	// RetryBase/RetryCap shape the capped exponential backoff applied
	// after a transient cell failure (defaults 250ms / 10s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed drives the backoff jitter stream (deterministic for tests).
	Seed uint64
}

func (qc QueueConfig) withDefaults() QueueConfig {
	if qc.Lease <= 0 {
		qc.Lease = 30 * time.Second
	}
	if qc.MaxAttempts <= 0 {
		qc.MaxAttempts = 5
	}
	if qc.RetryBase <= 0 {
		qc.RetryBase = 250 * time.Millisecond
	}
	if qc.RetryCap <= 0 {
		qc.RetryCap = 10 * time.Second
	}
	return qc
}

// CellClaim is one leased work item: enough for a worker in another
// process to reconstruct the cell (registry lookup + base override) and
// to identify itself on every subsequent call.
type CellClaim struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Base     string `json:"base,omitempty"`
	LeaseID  string `json:"lease_id"`
	LeaseMS  int64  `json:"lease_ms"`
	Attempt  int    `json:"attempt"`
}

// Progress is a point-in-time queue snapshot.
type Progress struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	// Attempts counts lease grants; Expiries, reissues after lease
	// timeout; Duplicates, completions for already-done cells; Salvaged,
	// completions accepted from expired leases (the work was valid —
	// determinism — even though the lease was lost); Mismatches,
	// digest-diverging duplicates (fatal).
	Attempts   int `json:"attempts"`
	Expiries   int `json:"expiries"`
	Duplicates int `json:"duplicates"`
	Salvaged   int `json:"salvaged"`
	Mismatches int `json:"mismatches"`
	// Adopted counts done cells restored from a replayed journal rather
	// than completed by a worker this incarnation; Fenced, completions and
	// heartbeats rejected because their lease token was superseded by a
	// live re-lease (zombie workers).
	Adopted int `json:"adopted"`
	Fenced  int `json:"fenced"`
	// Heartbeats counts accepted lease renewals; Resumed, completions
	// whose worker resumed from a spooled checkpoint instead of
	// restarting; TransientFailures/PermanentFailures split reported cell
	// failures by whether the cell was re-queued (exhaustion counts as
	// permanent — it poisons the grid).
	Heartbeats        int `json:"heartbeats"`
	Resumed           int `json:"resumed"`
	TransientFailures int `json:"transient_failures"`
	PermanentFailures int `json:"permanent_failures"`
}

type cellState int

const (
	statePending cellState = iota
	stateLeased
	stateDone
)

// slot is one cell's queue entry.
type slot struct {
	job       gridJob
	state     cellState
	leaseID   string
	deadline  time.Time
	attempts  int
	notBefore time.Time // backoff gate for the next lease
	cell      Cell
	digest    string
	info      CellRunInfo
}

// Queue is the coordinator's work-queue state machine: cells move
// pending → leased → done, with expired leases reissued and transient
// failures retried under capped exponential backoff with jitter. All
// methods take the current time explicitly, so every transition —
// including expiry — is deterministic under test.
//
// Completions are accepted even from expired leases: the determinism
// contract makes any honest execution of a cell valid, so late work is
// salvage, not garbage. Duplicate completions must digest identically;
// a mismatch poisons the queue (Err) because it can only mean divergent
// or corrupted workers.
type Queue struct {
	mu       sync.Mutex
	cfg      QueueConfig
	slots    []slot
	r        *randx.Rand
	leaseSeq int
	done     int
	err      error
	finished chan struct{}
	closed   bool
	draining bool
	journal  *Journal
	prog     Progress
}

// NewQueue builds a queue over the grid's job list.
func NewQueue(jobs []gridJob, cfg QueueConfig) *Queue {
	q := &Queue{
		cfg:      cfg.withDefaults(),
		slots:    make([]slot, len(jobs)),
		r:        randx.New(cfg.Seed ^ 0x51eea5e5),
		finished: make(chan struct{}),
	}
	for i, j := range jobs {
		q.slots[i].job = j
	}
	q.prog.Total = len(jobs)
	if len(jobs) == 0 {
		q.closeLocked()
	}
	return q
}

// closeLocked closes the finished channel exactly once.
func (q *Queue) closeLocked() {
	if !q.closed {
		q.closed = true
		close(q.finished)
	}
}

// Lease hands out the lowest-indexed available cell. Exactly one of the
// return values is meaningful: a claim, done=true (all cells completed,
// shut down), or a retry hint (nothing available right now — backoff
// gates or outstanding leases).
func (q *Queue) Lease(now time.Time) (claim *CellClaim, retry time.Duration, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done == len(q.slots) || q.err != nil || q.draining {
		return nil, 0, true
	}
	q.expireLocked(now)
	var soonest time.Time
	for i := range q.slots {
		s := &q.slots[i]
		if s.state != statePending {
			continue
		}
		if s.notBefore.After(now) {
			if soonest.IsZero() || s.notBefore.Before(soonest) {
				soonest = s.notBefore
			}
			continue
		}
		// Write-ahead: the lease record hits the journal before the grant
		// takes effect in memory, so a restarted coordinator can never
		// know LESS than the worker it handed the lease to. A journal
		// failure poisons the grid — handing out leases the journal
		// cannot remember would make restart lie.
		attempt := s.attempts + 1
		seq := q.leaseSeq + 1
		leaseID := fmt.Sprintf("lease-%d-%d", i, seq)
		deadline := now.Add(q.cfg.Lease)
		if err := q.journal.lease(i, seq, attempt, leaseID, deadline); err != nil {
			q.failLocked(err)
			return nil, 0, true
		}
		s.state = stateLeased
		s.attempts = attempt
		q.leaseSeq = seq
		s.leaseID = leaseID
		s.deadline = deadline
		q.prog.Attempts++
		return &CellClaim{
			Index:    i,
			Scenario: s.job.spec.Name,
			Seed:     s.job.seed,
			Base:     s.job.spec.World.Base,
			LeaseID:  s.leaseID,
			LeaseMS:  q.cfg.Lease.Milliseconds(),
			Attempt:  s.attempts,
		}, 0, false
	}
	// Nothing leasable: either backoff gates (wake at the soonest) or
	// every remaining cell is out on lease (poll at a fraction of the
	// lease so an expiry is picked up promptly).
	retry = q.cfg.Lease / 4
	if !soonest.IsZero() {
		if d := soonest.Sub(now); d < retry {
			retry = d
		}
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return nil, retry, false
}

// Heartbeat renews a live lease; ErrLeaseLost tells the worker its cell
// has been reissued (or finished) and it should abandon the run.
func (q *Queue) Heartbeat(index int, leaseID string, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	q.expireLocked(now)
	s := &q.slots[index]
	if s.state != stateLeased || s.leaseID != leaseID {
		if s.state == stateLeased {
			q.prog.Fenced++ // a live successor holds the lease; zombie fenced off
		}
		return ErrLeaseLost
	}
	deadline := now.Add(q.cfg.Lease)
	// Journaled without fsync: a lost heartbeat record only makes a
	// replayed deadline conservative (earlier), which at worst reissues a
	// lease — harmless under the determinism contract.
	if err := q.journal.heartbeat(index, leaseID, deadline); err != nil {
		q.failLocked(err)
		return err
	}
	s.deadline = deadline
	q.prog.Heartbeats++
	return nil
}

// Complete records a finished cell. First completion wins; duplicates —
// from reissues racing a slow-but-alive worker — are cross-checked by
// digest and dropped when identical, fatal when not. A completion whose
// lease expired while the cell is still pending is accepted (salvage):
// determinism makes the result exactly as valid as any future holder's.
// But a completion whose lease was superseded by a LIVE re-lease is
// fenced off with ErrLeaseLost — the successor holds the authoritative
// lease, and letting the zombie clobber the slot would let a worker the
// coordinator declared dead keep mutating state it no longer owns.
func (q *Queue) Complete(index int, leaseID string, cell Cell, info CellRunInfo, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	s := &q.slots[index]
	digest := CellDigest(&cell)
	if s.state == stateDone {
		q.prog.Duplicates++
		if digest != s.digest {
			q.prog.Mismatches++
			q.failLocked(fmt.Errorf("%w: cell %d (%s/seed=%d): %s vs %s",
				ErrDigestMismatch, index, s.job.spec.Name, cell.Seed, s.digest, digest))
			return ErrDigestMismatch
		}
		return nil
	}
	if s.state == stateLeased && s.leaseID != leaseID {
		q.prog.Fenced++
		return ErrLeaseLost
	}
	if s.state != stateLeased {
		q.prog.Salvaged++
	}
	// Write-ahead with fsync: a completion acknowledged to the worker must
	// survive a coordinator crash, or restart would re-run a cell whose
	// worker already deleted its spool.
	if err := q.journal.complete(index, leaseID, digest, &cell, &info); err != nil {
		q.failLocked(err)
		return err
	}
	s.state = stateDone
	s.cell, s.digest, s.info = cell, digest, info
	s.leaseID = ""
	q.done++
	q.prog.Done = q.done
	if info.Resumed {
		q.prog.Resumed++
	}
	if q.done == len(q.slots) {
		q.closeLocked()
	}
	return nil
}

// Fail reports a cell failure. Transient failures re-queue the cell
// under capped exponential backoff with jitter until MaxAttempts lease
// grants are exhausted; permanent failures (and exhaustion) poison the
// whole grid — a deterministic cell that cannot run will not run better
// elsewhere.
func (q *Queue) Fail(index int, leaseID, msg string, transient bool, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	s := &q.slots[index]
	if s.state != stateLeased || s.leaseID != leaseID {
		return ErrLeaseLost
	}
	name := s.job.spec.Name
	if !transient {
		q.prog.PermanentFailures++
		q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) failed permanently: %s", index, name, s.job.seed, msg))
		return nil
	}
	if s.attempts >= q.cfg.MaxAttempts {
		q.prog.PermanentFailures++
		q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) failed after %d attempts: %s",
			index, name, s.job.seed, s.attempts, msg))
		return nil
	}
	// The jittered backoff gate is journaled as an absolute time, so
	// replay restores it without re-drawing the jitter stream.
	notBefore := now.Add(q.backoffLocked(s.attempts))
	if err := q.journal.fail(index, leaseID, notBefore, msg); err != nil {
		q.failLocked(err)
		return err
	}
	s.state = statePending
	s.leaseID = ""
	s.notBefore = notBefore
	q.prog.TransientFailures++
	return nil
}

// ExpireLeases reissues cells whose lease deadline has passed; the
// coordinator's janitor calls it on a timer. Returns how many expired.
func (q *Queue) ExpireLeases(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked(now)
}

func (q *Queue) expireLocked(now time.Time) int {
	n := 0
	for i := range q.slots {
		s := &q.slots[i]
		if s.state != stateLeased || s.deadline.After(now) {
			continue
		}
		q.prog.Expiries++
		n++
		if s.attempts >= q.cfg.MaxAttempts {
			q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) lease expired on final attempt %d",
				i, s.job.spec.Name, s.job.seed, s.attempts))
			return n
		}
		// Reissue immediately: the previous holder is presumed dead, and
		// its checkpointed spool lets the successor resume, not restart.
		s.state = statePending
		s.leaseID = ""
		s.notBefore = time.Time{}
	}
	return n
}

// backoffLocked returns the jittered capped-exponential delay after the
// given attempt count (1-based).
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := q.cfg.RetryBase
	for i := 1; i < attempt && d < q.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > q.cfg.RetryCap {
		d = q.cfg.RetryCap
	}
	// Full jitter on the upper half: [d/2, d).
	return d/2 + time.Duration(q.r.Float64()*float64(d/2))
}

func (q *Queue) failLocked(err error) {
	if q.err != nil {
		return
	}
	q.err = err
	// Best-effort: if the journal itself is what failed, its sticky error
	// makes this append a no-op — the torn tail is the poison marker then.
	_ = q.journal.poison(err.Error())
	q.closeLocked()
}

// Drain stops handing out new leases: Lease reports done to idle workers
// while in-flight leases keep heartbeating and completing. The
// coordinator's shutdown path drains, waits for Leased to reach zero,
// journals the drain, and exits; the journal lets a successor pick the
// sweep back up exactly where the drain left it.
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = true
}

// RecordDrain journals the drain marker with the current in-flight count
// (informational: a clean shutdown is distinguishable from a crash when
// reading the journal back).
func (q *Queue) RecordDrain() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	leased := 0
	for i := range q.slots {
		if q.slots[i].state == stateLeased {
			leased++
		}
	}
	return q.journal.drain(leased)
}

func (q *Queue) checkIndex(index int) error {
	if index < 0 || index >= len(q.slots) {
		return fmt.Errorf("sweep: cell index %d out of range (%d cells)", index, len(q.slots))
	}
	return nil
}

// attachJournal starts write-ahead journaling of every subsequent state
// transition. Called after restore, so replayed records are not
// re-appended.
func (q *Queue) attachJournal(j *Journal) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.journal = j
}

// restore applies a replayed journal to a freshly built queue, rebuilding
// the state machine a crashed coordinator held: done cells are re-adopted
// (their payloads re-verified against the journaled digest — the journal
// proves WHAT was computed, the digest proves it correctly), leased cells
// stay leased under their journaled tokens and absolute deadlines so live
// workers' heartbeats keep landing, backoff gates are reinstated, and a
// journaled poison poisons the restored queue too. Records that cannot
// apply to any honest history (out-of-range index, payload contradicting
// its digest) reject the journal with ErrBadJournal; records that are
// merely stale against the replayed state (a heartbeat for a superseded
// lease) are skipped, exactly as the live queue would have refused them.
func (q *Queue) restore(rep *journalReplay) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if rep.Total != len(q.slots) {
		return fmt.Errorf("%w: %d cells journaled, queue has %d", ErrBadJournal, rep.Total, len(q.slots))
	}
	for _, rec := range rep.Records {
		switch rec.kind {
		case jGrid, jDrain:
			// Identity is checked by the opener; drain is informational.
		case jLease:
			if err := q.checkIndex(rec.index); err != nil {
				return fmt.Errorf("%w: lease: %v", ErrBadJournal, err)
			}
			s := &q.slots[rec.index]
			if s.state == stateDone {
				continue
			}
			s.state = stateLeased
			s.leaseID = rec.leaseID
			s.deadline = time.UnixMilli(rec.deadlineMS)
			s.attempts = rec.attempt
			s.notBefore = time.Time{}
			if rec.seq > q.leaseSeq {
				q.leaseSeq = rec.seq
			}
			q.prog.Attempts++
		case jHeartbeat:
			if err := q.checkIndex(rec.index); err != nil {
				return fmt.Errorf("%w: heartbeat: %v", ErrBadJournal, err)
			}
			s := &q.slots[rec.index]
			if s.state == stateLeased && s.leaseID == rec.leaseID {
				s.deadline = time.UnixMilli(rec.deadlineMS)
			}
		case jComplete:
			if err := q.checkIndex(rec.index); err != nil {
				return fmt.Errorf("%w: complete: %v", ErrBadJournal, err)
			}
			s := &q.slots[rec.index]
			if s.state == stateDone {
				q.prog.Duplicates++
				if rec.cellDigest != s.digest {
					q.prog.Mismatches++
					q.failLocked(fmt.Errorf("%w: journaled duplicate for cell %d: %s vs %s",
						ErrDigestMismatch, rec.index, s.digest, rec.cellDigest))
				}
				continue
			}
			var cell Cell
			var info CellRunInfo
			if err := json.Unmarshal(rec.cellJSON, &cell); err != nil {
				return fmt.Errorf("%w: cell %d payload: %v", ErrBadJournal, rec.index, err)
			}
			if err := json.Unmarshal(rec.infoJSON, &info); err != nil {
				return fmt.Errorf("%w: cell %d run info: %v", ErrBadJournal, rec.index, err)
			}
			if got := CellDigest(&cell); got != rec.cellDigest {
				return fmt.Errorf("%w: cell %d payload digests %s, journal claims %s",
					ErrBadJournal, rec.index, got, rec.cellDigest)
			}
			s.state = stateDone
			s.cell, s.digest, s.info = cell, rec.cellDigest, info
			s.leaseID = ""
			q.done++
			q.prog.Done = q.done
			q.prog.Adopted++
			if info.Resumed {
				q.prog.Resumed++
			}
			if q.done == len(q.slots) {
				q.closeLocked()
			}
		case jFail:
			if err := q.checkIndex(rec.index); err != nil {
				return fmt.Errorf("%w: fail: %v", ErrBadJournal, err)
			}
			s := &q.slots[rec.index]
			if s.state == stateLeased && s.leaseID == rec.leaseID {
				s.state = statePending
				s.leaseID = ""
				s.notBefore = time.UnixMilli(rec.notBeforeMS)
			}
		case jPoison:
			q.failLocked(fmt.Errorf("sweep: grid poisoned (journaled): %s", rec.msg))
		default:
			return fmt.Errorf("%w: unknown record kind %d", ErrBadJournal, uint8(rec.kind))
		}
	}
	return nil
}

// Finished is closed when every cell is done or the queue is poisoned.
func (q *Queue) Finished() <-chan struct{} { return q.finished }

// Err returns the poisoning error, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Cells returns the completed results in job order; an error if the
// queue failed or is not finished.
func (q *Queue) Cells() ([]Cell, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	if q.done != len(q.slots) {
		return nil, fmt.Errorf("sweep: grid incomplete: %d of %d cells done", q.done, len(q.slots))
	}
	cells := make([]Cell, len(q.slots))
	for i := range q.slots {
		cells[i] = q.slots[i].cell
	}
	return cells, nil
}

// CellInfos returns the per-cell execution accounting (valid once
// finished; zero values for cells that never completed).
func (q *Queue) CellInfos() []CellRunInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	infos := make([]CellRunInfo, len(q.slots))
	for i := range q.slots {
		infos[i] = q.slots[i].info
	}
	return infos
}

// AttemptCounts histograms cells by lease-grant count: index = attempts
// so far, value = number of cells. Index 0 is cells never yet leased.
func (q *Queue) AttemptCounts() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make([]int, q.cfg.MaxAttempts+1)
	for i := range q.slots {
		a := q.slots[i].attempts
		if a >= len(counts) {
			a = len(counts) - 1
		}
		counts[a]++
	}
	return counts
}

// Progress returns a snapshot of queue counters.
func (q *Queue) Progress() Progress {
	q.mu.Lock()
	defer q.mu.Unlock()
	p := q.prog
	p.Leased, p.Pending = 0, 0
	for i := range q.slots {
		switch q.slots[i].state {
		case stateLeased:
			p.Leased++
		case statePending:
			p.Pending++
		}
	}
	return p
}
