package sweep

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/randx"
)

// Queue errors surfaced to workers (mapped to HTTP statuses by the
// transport).
var (
	// ErrLeaseLost means the lease being renewed or completed was
	// reissued to another worker (expiry) or never existed. The worker
	// abandons the cell; whoever holds the live lease finishes it.
	ErrLeaseLost = errors.New("sweep: lease lost")
	// ErrDigestMismatch means two completions of the same cell disagree —
	// impossible for honest deterministic workers, so the whole grid
	// fails loudly rather than pick a winner.
	ErrDigestMismatch = errors.New("sweep: duplicate completion digest mismatch")
)

// QueueConfig tunes the work queue's failure handling.
type QueueConfig struct {
	// Lease bounds how long a worker may hold a cell without renewing;
	// an expired lease is reissued (default 30s).
	Lease time.Duration
	// MaxAttempts bounds lease grants per cell before the grid fails
	// (default 5). Expiries and transient failures both consume attempts.
	MaxAttempts int
	// RetryBase/RetryCap shape the capped exponential backoff applied
	// after a transient cell failure (defaults 250ms / 10s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed drives the backoff jitter stream (deterministic for tests).
	Seed uint64
}

func (qc QueueConfig) withDefaults() QueueConfig {
	if qc.Lease <= 0 {
		qc.Lease = 30 * time.Second
	}
	if qc.MaxAttempts <= 0 {
		qc.MaxAttempts = 5
	}
	if qc.RetryBase <= 0 {
		qc.RetryBase = 250 * time.Millisecond
	}
	if qc.RetryCap <= 0 {
		qc.RetryCap = 10 * time.Second
	}
	return qc
}

// CellClaim is one leased work item: enough for a worker in another
// process to reconstruct the cell (registry lookup + base override) and
// to identify itself on every subsequent call.
type CellClaim struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Base     string `json:"base,omitempty"`
	LeaseID  string `json:"lease_id"`
	LeaseMS  int64  `json:"lease_ms"`
	Attempt  int    `json:"attempt"`
}

// Progress is a point-in-time queue snapshot.
type Progress struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	// Attempts counts lease grants; Expiries, reissues after lease
	// timeout; Duplicates, completions for already-done cells; Salvaged,
	// completions accepted from expired leases (the work was valid —
	// determinism — even though the lease was lost); Mismatches,
	// digest-diverging duplicates (fatal).
	Attempts   int `json:"attempts"`
	Expiries   int `json:"expiries"`
	Duplicates int `json:"duplicates"`
	Salvaged   int `json:"salvaged"`
	Mismatches int `json:"mismatches"`
}

type cellState int

const (
	statePending cellState = iota
	stateLeased
	stateDone
)

// slot is one cell's queue entry.
type slot struct {
	job       gridJob
	state     cellState
	leaseID   string
	deadline  time.Time
	attempts  int
	notBefore time.Time // backoff gate for the next lease
	cell      Cell
	digest    string
	info      CellRunInfo
}

// Queue is the coordinator's work-queue state machine: cells move
// pending → leased → done, with expired leases reissued and transient
// failures retried under capped exponential backoff with jitter. All
// methods take the current time explicitly, so every transition —
// including expiry — is deterministic under test.
//
// Completions are accepted even from expired leases: the determinism
// contract makes any honest execution of a cell valid, so late work is
// salvage, not garbage. Duplicate completions must digest identically;
// a mismatch poisons the queue (Err) because it can only mean divergent
// or corrupted workers.
type Queue struct {
	mu       sync.Mutex
	cfg      QueueConfig
	slots    []slot
	r        *randx.Rand
	leaseSeq int
	done     int
	err      error
	finished chan struct{}
	closed   bool
	prog     Progress
}

// NewQueue builds a queue over the grid's job list.
func NewQueue(jobs []gridJob, cfg QueueConfig) *Queue {
	q := &Queue{
		cfg:      cfg.withDefaults(),
		slots:    make([]slot, len(jobs)),
		r:        randx.New(cfg.Seed ^ 0x51eea5e5),
		finished: make(chan struct{}),
	}
	for i, j := range jobs {
		q.slots[i].job = j
	}
	q.prog.Total = len(jobs)
	if len(jobs) == 0 {
		q.closeLocked()
	}
	return q
}

// closeLocked closes the finished channel exactly once.
func (q *Queue) closeLocked() {
	if !q.closed {
		q.closed = true
		close(q.finished)
	}
}

// Lease hands out the lowest-indexed available cell. Exactly one of the
// return values is meaningful: a claim, done=true (all cells completed,
// shut down), or a retry hint (nothing available right now — backoff
// gates or outstanding leases).
func (q *Queue) Lease(now time.Time) (claim *CellClaim, retry time.Duration, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done == len(q.slots) || q.err != nil {
		return nil, 0, true
	}
	q.expireLocked(now)
	var soonest time.Time
	for i := range q.slots {
		s := &q.slots[i]
		if s.state != statePending {
			continue
		}
		if s.notBefore.After(now) {
			if soonest.IsZero() || s.notBefore.Before(soonest) {
				soonest = s.notBefore
			}
			continue
		}
		s.state = stateLeased
		s.attempts++
		q.leaseSeq++
		s.leaseID = fmt.Sprintf("lease-%d-%d", i, q.leaseSeq)
		s.deadline = now.Add(q.cfg.Lease)
		q.prog.Attempts++
		return &CellClaim{
			Index:    i,
			Scenario: s.job.spec.Name,
			Seed:     s.job.seed,
			Base:     s.job.spec.World.Base,
			LeaseID:  s.leaseID,
			LeaseMS:  q.cfg.Lease.Milliseconds(),
			Attempt:  s.attempts,
		}, 0, false
	}
	// Nothing leasable: either backoff gates (wake at the soonest) or
	// every remaining cell is out on lease (poll at a fraction of the
	// lease so an expiry is picked up promptly).
	retry = q.cfg.Lease / 4
	if !soonest.IsZero() {
		if d := soonest.Sub(now); d < retry {
			retry = d
		}
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return nil, retry, false
}

// Heartbeat renews a live lease; ErrLeaseLost tells the worker its cell
// has been reissued (or finished) and it should abandon the run.
func (q *Queue) Heartbeat(index int, leaseID string, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	q.expireLocked(now)
	s := &q.slots[index]
	if s.state != stateLeased || s.leaseID != leaseID {
		return ErrLeaseLost
	}
	s.deadline = now.Add(q.cfg.Lease)
	return nil
}

// Complete records a finished cell. First completion wins; duplicates —
// from reissues racing a slow-but-alive worker — are cross-checked by
// digest and dropped when identical, fatal when not. A completion whose
// lease expired is still accepted (salvage): determinism makes the
// result exactly as valid as the live lease holder's will be.
func (q *Queue) Complete(index int, leaseID string, cell Cell, info CellRunInfo, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	s := &q.slots[index]
	digest := CellDigest(&cell)
	if s.state == stateDone {
		q.prog.Duplicates++
		if digest != s.digest {
			q.prog.Mismatches++
			q.failLocked(fmt.Errorf("%w: cell %d (%s/seed=%d): %s vs %s",
				ErrDigestMismatch, index, s.job.spec.Name, cell.Seed, s.digest, digest))
			return ErrDigestMismatch
		}
		return nil
	}
	if s.state != stateLeased || s.leaseID != leaseID {
		q.prog.Salvaged++
	}
	s.state = stateDone
	s.cell, s.digest, s.info = cell, digest, info
	s.leaseID = ""
	q.done++
	q.prog.Done = q.done
	if q.done == len(q.slots) {
		q.closeLocked()
	}
	return nil
}

// Fail reports a cell failure. Transient failures re-queue the cell
// under capped exponential backoff with jitter until MaxAttempts lease
// grants are exhausted; permanent failures (and exhaustion) poison the
// whole grid — a deterministic cell that cannot run will not run better
// elsewhere.
func (q *Queue) Fail(index int, leaseID, msg string, transient bool, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.checkIndex(index); err != nil {
		return err
	}
	s := &q.slots[index]
	if s.state != stateLeased || s.leaseID != leaseID {
		return ErrLeaseLost
	}
	name := s.job.spec.Name
	if !transient {
		q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) failed permanently: %s", index, name, s.job.seed, msg))
		return nil
	}
	if s.attempts >= q.cfg.MaxAttempts {
		q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) failed after %d attempts: %s",
			index, name, s.job.seed, s.attempts, msg))
		return nil
	}
	s.state = statePending
	s.leaseID = ""
	s.notBefore = now.Add(q.backoffLocked(s.attempts))
	return nil
}

// ExpireLeases reissues cells whose lease deadline has passed; the
// coordinator's janitor calls it on a timer. Returns how many expired.
func (q *Queue) ExpireLeases(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked(now)
}

func (q *Queue) expireLocked(now time.Time) int {
	n := 0
	for i := range q.slots {
		s := &q.slots[i]
		if s.state != stateLeased || s.deadline.After(now) {
			continue
		}
		q.prog.Expiries++
		n++
		if s.attempts >= q.cfg.MaxAttempts {
			q.failLocked(fmt.Errorf("sweep: cell %d (%s/seed=%d) lease expired on final attempt %d",
				i, s.job.spec.Name, s.job.seed, s.attempts))
			return n
		}
		// Reissue immediately: the previous holder is presumed dead, and
		// its checkpointed spool lets the successor resume, not restart.
		s.state = statePending
		s.leaseID = ""
		s.notBefore = time.Time{}
	}
	return n
}

// backoffLocked returns the jittered capped-exponential delay after the
// given attempt count (1-based).
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := q.cfg.RetryBase
	for i := 1; i < attempt && d < q.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > q.cfg.RetryCap {
		d = q.cfg.RetryCap
	}
	// Full jitter on the upper half: [d/2, d).
	return d/2 + time.Duration(q.r.Float64()*float64(d/2))
}

func (q *Queue) failLocked(err error) {
	if q.err != nil {
		return
	}
	q.err = err
	q.closeLocked()
}

func (q *Queue) checkIndex(index int) error {
	if index < 0 || index >= len(q.slots) {
		return fmt.Errorf("sweep: cell index %d out of range (%d cells)", index, len(q.slots))
	}
	return nil
}

// Finished is closed when every cell is done or the queue is poisoned.
func (q *Queue) Finished() <-chan struct{} { return q.finished }

// Err returns the poisoning error, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Cells returns the completed results in job order; an error if the
// queue failed or is not finished.
func (q *Queue) Cells() ([]Cell, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	if q.done != len(q.slots) {
		return nil, fmt.Errorf("sweep: grid incomplete: %d of %d cells done", q.done, len(q.slots))
	}
	cells := make([]Cell, len(q.slots))
	for i := range q.slots {
		cells[i] = q.slots[i].cell
	}
	return cells, nil
}

// CellInfos returns the per-cell execution accounting (valid once
// finished; zero values for cells that never completed).
func (q *Queue) CellInfos() []CellRunInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	infos := make([]CellRunInfo, len(q.slots))
	for i := range q.slots {
		infos[i] = q.slots[i].info
	}
	return infos
}

// Progress returns a snapshot of queue counters.
func (q *Queue) Progress() Progress {
	q.mu.Lock()
	defer q.mu.Unlock()
	p := q.prog
	p.Leased, p.Pending = 0, 0
	for i := range q.slots {
		switch q.slots[i].state {
		case stateLeased:
			p.Leased++
		case statePending:
			p.Pending++
		}
	}
	return p
}
