package sweep

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"time"

	"repro/internal/dates"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// errAbandonCell aborts a running cell from its day hook when the lease
// is lost: the run stops, nothing is reported, and whoever holds the
// live lease finishes the cell (resuming from this worker's spooled
// checkpoint if they share the spool).
var errAbandonCell = errors.New("sweep: lease lost mid-cell, abandoning")

// Worker is one work-queue consumer: it leases cells, runs them through
// its CellRunner (spooled, so its own death is survivable), heartbeats
// at every day barrier, and reports completions. Crash points
// (fault.Crash) fire inside the loop at the same places a real kill
// would land.
type Worker struct {
	Client *Client
	// Name tags log lines (and nothing else: cell identity comes from
	// the claim, results are content-addressed).
	Name   string
	Runner CellRunner
	// PollMax caps the idle wait between lease attempts when the
	// coordinator has nothing available (0 = 500ms).
	PollMax time.Duration
	// Log receives structured progress records (cell, lease, attempt,
	// day fields); nil discards them.
	Log *slog.Logger
	// Metrics, when non-nil, counts this worker's cells, heartbeats, and
	// per-cell wall time.
	Metrics *WorkerMetrics
}

func (wk *Worker) log() *slog.Logger {
	if wk.Log != nil {
		return wk.Log
	}
	return obs.Discard()
}

// Run consumes cells until the grid is finished (nil), the context is
// cancelled, or a non-survivable error occurs. An injected fault
// (fault.ErrInjected) is returned as-is: it models this process dying
// mid-cell, and the chaos harness responds by starting a fresh worker —
// exactly what a supervisor would do with a crashed process.
//
// Cancellation is a graceful drain, not a kill: a cell in flight finishes
// its current day, checkpoints its spool, releases its lease with a
// transient failure (so a successor RESUMES the cell from that
// checkpoint), and Run returns ctx's error. A panic inside a cell is
// isolated the same way — reported to the coordinator as a transient
// failure and the worker moves on — because a deterministic panic would
// poison the grid via MaxAttempts anyway, while a flaky one (resource
// exhaustion) deserves its retry.
func (wk *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		claim, retry, done, err := wk.Client.Lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("sweep: leasing work: %w", err)
		}
		if done {
			wk.log().Info("grid finished")
			return nil
		}
		if claim == nil {
			if retry <= 0 {
				retry = 100 * time.Millisecond
			}
			if max := wk.pollMax(); retry > max {
				retry = max
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
			continue
		}
		fault.Crash.Hit("worker-lease")
		if err := wk.runClaim(ctx, claim); err != nil {
			return err
		}
	}
}

func (wk *Worker) pollMax() time.Duration {
	if wk.PollMax > 0 {
		return wk.PollMax
	}
	return 500 * time.Millisecond
}

// runClaim executes one leased cell end to end. Only non-survivable
// errors propagate; cell-level failures are reported to the coordinator
// and the loop continues.
func (wk *Worker) runClaim(ctx context.Context, claim *CellClaim) error {
	clog := wk.log().With("cell", claim.Index, "scenario", claim.Scenario,
		"seed", claim.Seed, "lease", claim.LeaseID, "attempt", claim.Attempt)
	clog.Info("cell leased")
	sp, ok := scenario.Lookup(claim.Scenario)
	if !ok {
		// Not transient: a registry miss means divergent binaries, and no
		// amount of retrying here or elsewhere fixes that.
		return wk.report(wk.Client.Fail(ctx, claim.Index, claim.LeaseID,
			fmt.Sprintf("unknown scenario %q (worker registry divergent?)", claim.Scenario), false))
	}
	if claim.Base != "" {
		sp.World.Base = claim.Base
	}

	// Lease traffic for a cell already in flight must survive the drain:
	// the final heartbeat and the lease-releasing Fail happen AFTER ctx is
	// cancelled (that is the whole point of a graceful stop), so they ride
	// a context that inherits ctx's values but not its cancellation.
	// Cancellation itself is observed by the simulation at its day
	// barrier, which checkpoints before unwinding.
	releaseCtx := context.WithoutCancel(ctx)

	runner := wk.Runner // copy: PerDay is per-claim
	base := runner.PerDay
	runner.PerDay = func(day dates.Date) error {
		fault.Crash.Hit("cell-day")
		if err := wk.Client.Heartbeat(releaseCtx, claim.Index, claim.LeaseID); err != nil {
			if errors.Is(err, ErrLeaseLost) {
				return errAbandonCell
			}
			return err
		}
		if wk.Metrics != nil {
			wk.Metrics.Heartbeats.Inc()
		}
		clog.Debug("heartbeat", "day", day.String())
		if base != nil {
			return base(day)
		}
		return nil
	}

	t0 := time.Now()
	cell, info, err := wk.runCell(ctx, &runner, sp, claim.Seed)
	switch {
	case err == nil:
		fault.Crash.Hit("cell-complete")
		if m := wk.Metrics; m != nil {
			m.CellsCompleted.Inc()
			if info.Resumed {
				m.CellsResumed.Inc()
			} else {
				m.CellsFresh.Inc()
			}
			m.SalvagedBytes.Add(info.RecoveredBytes)
			m.CellSeconds.ObserveSince(t0)
		}
		clog.Info("cell done", "resumed", info.Resumed, "days", info.DaysExecuted, "eval", cell.Eval.String())
		return wk.report(wk.Client.Complete(releaseCtx, claim.Index, claim.LeaseID, cell, info))
	case errors.Is(err, errAbandonCell):
		clog.Warn("lease lost mid-cell, abandoning")
		return nil
	case errors.Is(err, fault.ErrInjected):
		// Simulated crash: die like the process we are pretending to be.
		// The spooled checkpoint survives for our successor.
		return fmt.Errorf("sweep: cell %d: %w", claim.Index, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Graceful drain: the run stopped at a day barrier with the spool
		// checkpointed. Release the lease as a transient failure so the
		// coordinator re-queues the cell immediately — our successor
		// resumes from the checkpoint instead of waiting out the lease.
		clog.Info("draining: releasing lease", "days", info.DaysExecuted)
		if rerr := wk.report(wk.Client.Fail(releaseCtx, claim.Index, claim.LeaseID,
			fmt.Sprintf("worker draining: %v", err), true)); rerr != nil {
			clog.Warn("lease release failed", "error", rerr)
		}
		return err
	default:
		clog.Warn("cell failed", "error", err)
		return wk.report(wk.Client.Fail(releaseCtx, claim.Index, claim.LeaseID, err.Error(), true))
	}
}

// runCell runs one cell with panic isolation: a panic inside the
// simulation surfaces as an ordinary error (with the stack attached for
// the coordinator's log), which runClaim reports as a transient failure —
// one bad cell execution must not take down the worker, let alone lose
// the lease to a timeout.
func (wk *Worker) runCell(ctx context.Context, runner *CellRunner, sp scenario.Spec, seed uint64) (cell Cell, info CellRunInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: cell panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return runner.Run(ctx, sp, seed)
}

// report filters the coordinator's responses to cell reports: a lost
// lease is fine (someone else owns the cell now), anything else is
// fatal to this worker.
func (wk *Worker) report(err error) error {
	if err == nil || errors.Is(err, ErrLeaseLost) {
		return nil
	}
	return err
}
