package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Coordinator owns one distributed grid run: it expands the scenario×seed
// grid into idempotent cells, serves them to workers over the HTTP
// work-queue protocol, reissues expired leases, and assembles the
// completed cells into the same Result the in-process Run produces —
// byte-for-byte, because assembly is a pure function of the
// deterministic cell results.
type Coordinator struct {
	g    *grid
	q    *Queue
	logf func(format string, args ...any)
}

// NewCoordinator validates the grid and builds the work queue.
func NewCoordinator(o Options, qc QueueConfig) (*Coordinator, error) {
	g, err := expandGrid(o)
	if err != nil {
		return nil, err
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Coordinator{g: g, q: NewQueue(g.jobs, qc), logf: logf}, nil
}

// Queue exposes the underlying work queue (tests drive it directly).
func (co *Coordinator) Queue() *Queue { return co.q }

// Handler returns the coordinator's HTTP surface.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", co.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", co.handleComplete)
	mux.HandleFunc("POST /v1/fail", co.handleFail)
	mux.HandleFunc("GET /v1/status", co.handleStatus)
	mux.HandleFunc("GET /v1/result", co.handleResult)
	return mux
}

// Run waits for the grid to drain, expiring dead workers' leases on a
// janitor timer, and assembles the final result. Cancelling ctx aborts
// the wait.
func (co *Coordinator) Run(ctx context.Context) (*Result, error) {
	janitor := co.q.cfg.Lease / 4
	if janitor < 10*time.Millisecond {
		janitor = 10 * time.Millisecond
	}
	tick := time.NewTicker(janitor)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
			if n := co.q.ExpireLeases(time.Now()); n > 0 {
				co.logf("reissued %d expired lease(s)", n)
			}
		case <-co.q.Finished():
			cells, err := co.q.Cells()
			if err != nil {
				return nil, err
			}
			return co.g.assemble(cells), nil
		}
	}
}

// Progress snapshots the queue counters.
func (co *Coordinator) Progress() Progress { return co.q.Progress() }

// CellInfos exposes the per-cell execution accounting (chaos tests
// assert resume-not-restart through it).
func (co *Coordinator) CellInfos() []CellRunInfo { return co.q.CellInfos() }

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var in struct{}
	if !decode(w, r, &in) {
		return
	}
	claim, retry, done := co.q.Lease(time.Now())
	if claim != nil {
		co.logf("lease cell %d (%s/seed=%d) attempt %d", claim.Index, claim.Scenario, claim.Seed, claim.Attempt)
	}
	writeJSON(w, leaseResponse{Claim: claim, RetryMS: retry.Milliseconds(), Done: done})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var in heartbeatRequest
	if !decode(w, r, &in) {
		return
	}
	writeOutcome(w, co.q.Heartbeat(in.Index, in.LeaseID, time.Now()))
}

func (co *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var in completeRequest
	if !decode(w, r, &in) {
		return
	}
	err := co.q.Complete(in.Index, in.LeaseID, in.Cell, in.Info, time.Now())
	if err == nil {
		co.logf("cell %d (%s/seed=%d) complete: %s", in.Index, in.Cell.Scenario, in.Cell.Seed, in.Cell.Eval)
	}
	writeOutcome(w, err)
}

func (co *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var in failRequest
	if !decode(w, r, &in) {
		return
	}
	co.logf("cell %d failed (transient=%v): %s", in.Index, in.Transient, in.Error)
	writeOutcome(w, co.q.Fail(in.Index, in.LeaseID, in.Error, in.Transient, time.Now()))
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, co.q.Progress())
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	select {
	case <-co.q.Finished():
	default:
		http.Error(w, "grid not finished", http.StatusServiceUnavailable)
		return
	}
	cells, err := co.q.Cells()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, co.g.assemble(cells))
}

// decode reads a JSON request body; on failure it writes 400 and
// returns false.
func decode(w http.ResponseWriter, r *http.Request, in any) bool {
	if err := json.NewDecoder(r.Body).Decode(in); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeOutcome maps queue sentinels onto the protocol's status codes.
func writeOutcome(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrDigestMismatch):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
