package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// ErrDrained reports that Run stopped because its context was cancelled
// and every in-flight lease settled: the sweep is suspended, not failed.
// With a journal attached, a successor coordinator resumes it exactly
// where the drain left off.
var ErrDrained = errors.New("sweep: coordinator drained")

// Coordinator owns one distributed grid run: it expands the scenario×seed
// grid into idempotent cells, serves them to workers over the HTTP
// work-queue protocol, reissues expired leases, and assembles the
// completed cells into the same Result the in-process Run produces —
// byte-for-byte, because assembly is a pure function of the
// deterministic cell results.
type Coordinator struct {
	g       *grid
	q       *Queue
	journal *Journal
	log     *slog.Logger
	jm      *JournalMetrics
	start   time.Time
}

// NewCoordinator validates the grid and builds the work queue. Log
// lines go to o.Log (structured slog records with cell/lease/attempt
// fields); nil discards them.
func NewCoordinator(o Options, qc QueueConfig) (*Coordinator, error) {
	g, err := expandGrid(o)
	if err != nil {
		return nil, err
	}
	log := o.Log
	if log == nil {
		log = obs.Discard()
	}
	return &Coordinator{g: g, q: NewQueue(g.jobs, qc), log: log, start: time.Now()}, nil
}

// Queue exposes the underlying work queue (tests drive it directly).
func (co *Coordinator) Queue() *Queue { return co.q }

// OpenJournal makes the coordinator durable: queue transitions are
// write-ahead journaled to path, and if path already holds a journal for
// this grid (matched by content digest over the expanded job list), its
// valid prefix is replayed first — done cells re-adopted, live leases
// kept, torn tail truncated. Returns how many done cells were adopted.
// wrap, when non-nil, wraps the journal's writes (fault injection).
// Must be called before the coordinator starts serving.
func (co *Coordinator) OpenJournal(path string, wrap func(w io.Writer) io.Writer) (adopted int, err error) {
	j, rep, err := openJournal(path, gridDigest(co.g.jobs), len(co.g.jobs), wrap)
	if err != nil {
		return 0, err
	}
	if rep != nil {
		if err := co.q.restore(rep); err != nil {
			j.Close()
			return 0, err
		}
		if dropped := rep.Size - rep.ValidEnd; dropped > 0 {
			co.log.Warn("journal: truncated torn tail", "bytes", dropped)
		}
		p := co.q.Progress()
		adopted = p.Adopted
		co.log.Info("journal: replayed",
			"records", len(rep.Records), "adopted", p.Done, "total", p.Total,
			"leased", p.Leased, "pending", p.Pending)
	}
	co.journal = j
	j.SetMetrics(co.jm)
	co.q.attachJournal(j)
	return adopted, nil
}

// Handler returns the coordinator's HTTP surface.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", co.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", co.handleComplete)
	mux.HandleFunc("POST /v1/fail", co.handleFail)
	mux.HandleFunc("GET /v1/status", co.handleStatus)
	mux.HandleFunc("GET /v1/result", co.handleResult)
	return mux
}

// Run waits for the grid to finish, expiring dead workers' leases on a
// janitor timer, and assembles the final result. Cancelling ctx starts a
// graceful drain instead of aborting: no new leases go out, in-flight
// workers keep heartbeating and finish (or release) their cells, and once
// nothing is leased Run journals the drain marker and returns ErrDrained.
// If the grid completes while draining, the result is returned normally.
func (co *Coordinator) Run(ctx context.Context) (*Result, error) {
	janitor := co.q.cfg.Lease / 4
	if janitor < 10*time.Millisecond {
		janitor = 10 * time.Millisecond
	}
	tick := time.NewTicker(janitor)
	defer tick.Stop()
	cancel := ctx.Done()
	draining := false
	for {
		select {
		case <-cancel:
			cancel = nil // fire once; keep ticking while the drain settles
			draining = true
			co.q.Drain()
			co.log.Info("draining: no new leases", "in_flight", co.q.Progress().Leased)
		case <-tick.C:
			if n := co.q.ExpireLeases(time.Now()); n > 0 {
				co.log.Warn("reissued expired leases", "count", n)
			}
			if draining && co.q.Progress().Leased == 0 {
				if err := co.q.RecordDrain(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("%w: %v", ErrDrained, context.Cause(ctx))
			}
		case <-co.q.Finished():
			cells, err := co.q.Cells()
			if err != nil {
				return nil, err
			}
			return co.g.assemble(cells), nil
		}
	}
}

// Close releases the coordinator's journal file handle, if any.
func (co *Coordinator) Close() error { return co.journal.Close() }

// Progress snapshots the queue counters.
func (co *Coordinator) Progress() Progress { return co.q.Progress() }

// CellInfos exposes the per-cell execution accounting (chaos tests
// assert resume-not-restart through it).
func (co *Coordinator) CellInfos() []CellRunInfo { return co.q.CellInfos() }

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var in struct{}
	if !decode(w, r, &in) {
		return
	}
	claim, retry, done := co.q.Lease(time.Now())
	if claim != nil {
		co.log.Info("lease granted", "cell", claim.Index, "scenario", claim.Scenario,
			"seed", claim.Seed, "attempt", claim.Attempt, "lease", claim.LeaseID)
	}
	writeJSON(w, leaseResponse{Claim: claim, RetryMS: retry.Milliseconds(), Done: done})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var in heartbeatRequest
	if !decode(w, r, &in) {
		return
	}
	writeOutcome(w, co.q.Heartbeat(in.Index, in.LeaseID, time.Now()))
}

func (co *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var in completeRequest
	if !decode(w, r, &in) {
		return
	}
	err := co.q.Complete(in.Index, in.LeaseID, in.Cell, in.Info, time.Now())
	if err == nil {
		co.log.Info("cell complete", "cell", in.Index, "scenario", in.Cell.Scenario,
			"seed", in.Cell.Seed, "lease", in.LeaseID, "resumed", in.Info.Resumed,
			"days", in.Info.DaysExecuted, "eval", in.Cell.Eval.String())
	}
	writeOutcome(w, err)
}

func (co *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var in failRequest
	if !decode(w, r, &in) {
		return
	}
	co.log.Warn("cell failed", "cell", in.Index, "lease", in.LeaseID,
		"transient", in.Transient, "error", in.Error)
	writeOutcome(w, co.q.Fail(in.Index, in.LeaseID, in.Error, in.Transient, time.Now()))
}

// statusResponse enriches GET /v1/status with the per-attempt cell
// histogram and coordinator uptime. Progress stays embedded (and
// comparable) — the extras ride alongside, so existing clients that
// decode into Progress keep working.
type statusResponse struct {
	Progress
	// AttemptCounts[i] = cells that have consumed i lease grants.
	AttemptCounts []int `json:"attempt_counts"`
	UptimeMS      int64 `json:"uptime_ms"`
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statusResponse{
		Progress:      co.q.Progress(),
		AttemptCounts: co.q.AttemptCounts(),
		UptimeMS:      time.Since(co.start).Milliseconds(),
	})
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	select {
	case <-co.q.Finished():
	default:
		http.Error(w, "grid not finished", http.StatusServiceUnavailable)
		return
	}
	cells, err := co.q.Cells()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, co.g.assemble(cells))
}

// decode reads a JSON request body; on failure it writes 400 and
// returns false.
func decode(w http.ResponseWriter, r *http.Request, in any) bool {
	if err := json.NewDecoder(r.Body).Decode(in); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeOutcome maps queue sentinels onto the protocol's status codes.
func writeOutcome(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrDigestMismatch):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
