package sweep

import (
	"time"

	"repro/internal/obs"
)

// RegisterMetrics exposes the coordinator's control plane in reg. Every
// series is a func metric evaluated at scrape time over the queue's
// Progress snapshot, so the lease/heartbeat/complete hot path pays
// nothing — the cost of metrics is one mutex-guarded snapshot per
// scrape, not per transition. Also registers the journal durability
// metrics and attaches them to an already-open journal.
func (co *Coordinator) RegisterMetrics(reg *obs.Registry) {
	if co == nil || reg == nil {
		return
	}
	p := func(f func(Progress) int) func() float64 {
		return func() float64 { return float64(f(co.q.Progress())) }
	}
	reg.GaugeFunc(`sweep_cells{state="done"}`, "grid cells by state", p(func(p Progress) int { return p.Done }))
	reg.GaugeFunc(`sweep_cells{state="leased"}`, "grid cells by state", p(func(p Progress) int { return p.Leased }))
	reg.GaugeFunc(`sweep_cells{state="pending"}`, "grid cells by state", p(func(p Progress) int { return p.Pending }))
	reg.GaugeFunc("sweep_cells_total", "grid size", p(func(p Progress) int { return p.Total }))
	reg.CounterFunc("sweep_lease_grants_total", "lease grants (attempts)", p(func(p Progress) int { return p.Attempts }))
	reg.CounterFunc("sweep_leases_expired_total", "leases reissued after deadline", p(func(p Progress) int { return p.Expiries }))
	reg.CounterFunc("sweep_leases_fenced_total", "zombie completions/heartbeats fenced off", p(func(p Progress) int { return p.Fenced }))
	reg.CounterFunc("sweep_heartbeats_total", "accepted lease renewals", p(func(p Progress) int { return p.Heartbeats }))
	reg.CounterFunc("sweep_cells_salvaged_total", "completions accepted from expired leases", p(func(p Progress) int { return p.Salvaged }))
	reg.CounterFunc("sweep_cells_adopted_total", "done cells restored from the journal", p(func(p Progress) int { return p.Adopted }))
	reg.CounterFunc("sweep_cells_resumed_total", "completions that resumed from a spooled checkpoint", p(func(p Progress) int { return p.Resumed }))
	reg.CounterFunc("sweep_duplicate_completions_total", "duplicate completions dropped after digest check", p(func(p Progress) int { return p.Duplicates }))
	reg.CounterFunc("sweep_failures_transient_total", "cell failures re-queued under backoff", p(func(p Progress) int { return p.TransientFailures }))
	reg.CounterFunc("sweep_failures_permanent_total", "cell failures that poisoned the grid", p(func(p Progress) int { return p.PermanentFailures }))
	reg.GaugeFunc("sweep_uptime_seconds", "coordinator uptime", func() float64 {
		return time.Since(co.start).Seconds()
	})
	co.jm = NewJournalMetrics(reg)
	if co.journal != nil {
		co.journal.SetMetrics(co.jm)
	}
}

// JournalMetrics instruments the coordinator journal's append path:
// write and fsync latency, separately, because the fsync dominates and
// only some record kinds pay it.
type JournalMetrics struct {
	Appends       *obs.Counter
	AppendSeconds *obs.Histogram
	Syncs         *obs.Counter
	SyncSeconds   *obs.Histogram
}

// NewJournalMetrics registers the journal metrics in reg (nil reg
// returns nil, which the journal treats as "off").
func NewJournalMetrics(reg *obs.Registry) *JournalMetrics {
	if reg == nil {
		return nil
	}
	return &JournalMetrics{
		Appends:       reg.Counter("sweep_journal_appends_total", "journal records appended"),
		AppendSeconds: reg.Histogram("sweep_journal_append_seconds", "journal record write latency (excluding fsync)", nil),
		Syncs:         reg.Counter("sweep_journal_syncs_total", "journal fsyncs"),
		SyncSeconds:   reg.Histogram("sweep_journal_sync_seconds", "journal fsync latency", nil),
	}
}

// WorkerMetrics instruments one worker process: cells completed split
// by resumed-vs-fresh, bytes stream.Recover truncated off torn spooled
// logs, heartbeats sent, transport retries, and wall-clock per cell.
type WorkerMetrics struct {
	CellsCompleted *obs.Counter
	CellsResumed   *obs.Counter
	CellsFresh     *obs.Counter
	SalvagedBytes  *obs.Counter
	Heartbeats     *obs.Counter
	Retries        *obs.Counter
	CellSeconds    *obs.Histogram
}

// NewWorkerMetrics registers the worker metrics in reg (nil reg returns
// nil; every hook is nil-safe).
func NewWorkerMetrics(reg *obs.Registry) *WorkerMetrics {
	if reg == nil {
		return nil
	}
	return &WorkerMetrics{
		CellsCompleted: reg.Counter("worker_cells_completed_total", "cells this worker completed"),
		CellsResumed:   reg.Counter("worker_cells_resumed_total", "completed cells resumed from a spooled checkpoint"),
		CellsFresh:     reg.Counter("worker_cells_fresh_total", "completed cells run from scratch"),
		SalvagedBytes:  reg.Counter("worker_salvaged_bytes_total", "torn-tail bytes stream.Recover dropped from resumed spools"),
		Heartbeats:     reg.Counter("worker_heartbeats_total", "lease renewals sent"),
		Retries:        reg.Counter("worker_transport_retries_total", "transport-level request retries"),
		CellSeconds:    reg.Histogram("worker_cell_seconds", "wall time per completed cell", nil),
	}
}
