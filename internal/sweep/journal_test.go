package sweep

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dates"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/stream"
)

// journalFixture opens a journal for the standard 2-job test grid and
// attaches it to a fresh queue.
func journalFixture(t *testing.T, path string, cfg QueueConfig) (*Queue, *Journal, []gridJob) {
	t.Helper()
	jobs := testQueueJobs(2)
	j, rep, err := openJournal(path, gridDigest(jobs), len(jobs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("fresh journal replayed records: %+v", rep)
	}
	q := NewQueue(jobs, cfg)
	q.attachJournal(j)
	return q, j, jobs
}

// reopenRestore replays path into a fresh queue over the same grid — the
// restart a crashed coordinator performs.
func reopenRestore(t *testing.T, path string, jobs []gridJob, cfg QueueConfig) (*Queue, *Journal, *journalReplay) {
	t.Helper()
	j, rep, err := openJournal(path, gridDigest(jobs), len(jobs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("existing journal replayed nothing")
	}
	q := NewQueue(jobs, cfg)
	if err := q.restore(rep); err != nil {
		t.Fatal(err)
	}
	q.attachJournal(j)
	return q, j, rep
}

// TestJournalReplayThenContinue is the coordinator-durability core: a
// queue journals a mixed history (grants, a completion, a transient
// failure, a re-grant, a heartbeat), "crashes", and a successor restored
// from the journal carries on transparently — the completed cell is
// adopted, the in-flight lease still honors its token, the lease
// sequence never reuses an ID, and the finished grid's cells match.
func TestJournalReplayThenContinue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := QueueConfig{Lease: time.Minute, MaxAttempts: 5, RetryBase: 10 * time.Millisecond}
	q1, j1, jobs := journalFixture(t, path, cfg)
	t0 := time.Unix(1_000_000, 0)

	c0, _, _ := q1.Lease(t0)
	c1, _, _ := q1.Lease(t0)
	if c0 == nil || c1 == nil {
		t.Fatalf("leases: %+v %+v", c0, c1)
	}
	done0 := testCell(1, 0.5)
	if err := q1.Complete(c0.Index, c0.LeaseID, done0, CellRunInfo{DaysExecuted: 20}, t0); err != nil {
		t.Fatal(err)
	}
	if err := q1.Fail(c1.Index, c1.LeaseID, "transient wobble", true, t0); err != nil {
		t.Fatal(err)
	}
	c1b, _, _ := q1.Lease(t0.Add(time.Second)) // past the backoff gate
	if c1b == nil || c1b.Attempt != 2 {
		t.Fatalf("re-grant = %+v", c1b)
	}
	hbAt := t0.Add(2 * time.Second)
	if err := q1.Heartbeat(c1b.Index, c1b.LeaseID, hbAt); err != nil {
		t.Fatal(err)
	}
	j1.Close() // crash: in-memory queue q1 is gone

	q2, _, rep := reopenRestore(t, path, jobs, cfg)
	// grid + 2 leases + complete + fail + re-lease + heartbeat = 7
	if len(rep.Records) != 7 {
		t.Fatalf("replayed %d records, want 7", len(rep.Records))
	}
	p := q2.Progress()
	if p.Done != 1 || p.Adopted != 1 || p.Leased != 1 || p.Pending != 0 {
		t.Fatalf("restored progress = %+v", p)
	}

	// The live worker never noticed the restart: its token still works.
	if err := q2.Heartbeat(c1b.Index, c1b.LeaseID, hbAt.Add(time.Second)); err != nil {
		t.Fatalf("heartbeat across restart: %v", err)
	}
	// The zombie's dead token stays dead across the restart.
	if err := q2.Heartbeat(c1.Index, c1.LeaseID, hbAt); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale token after restart: %v, want ErrLeaseLost", err)
	}
	done1 := testCell(2, 0.7)
	if err := q2.Complete(c1b.Index, c1b.LeaseID, done1, CellRunInfo{DaysExecuted: 20}, hbAt.Add(time.Second)); err != nil {
		t.Fatalf("completion across restart: %v", err)
	}
	cells, err := q2.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Eval.Recall != 0.5 || cells[1].Eval.Recall != 0.7 {
		t.Fatalf("cells = %+v", cells)
	}
	// Fresh lease IDs continue the journaled sequence — no token reuse
	// that could collide with a zombie's.
	if q2.leaseSeq < 3 {
		t.Fatalf("restored leaseSeq = %d, want >= 3", q2.leaseSeq)
	}
}

// TestJournalTornTail: every truncation of a valid journal replays
// cleanly to some record prefix — a torn append never rejects the file,
// and the opener resumes appending after the tear.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := QueueConfig{Lease: time.Minute, MaxAttempts: 5}
	q1, j1, jobs := journalFixture(t, path, cfg)
	t0 := time.Unix(1_000_000, 0)
	c0, _, _ := q1.Lease(t0)
	if err := q1.Complete(c0.Index, c0.LeaseID, testCell(1, 0.5), CellRunInfo{}, t0); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := replayJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != 3 { // grid, lease, complete
		t.Fatalf("full journal has %d records, want 3", len(full.Records))
	}

	for cut := len(data) - 1; cut >= 0; cut-- {
		rep, err := replayJournal(data[:cut])
		if cut < len(journalMagic)+1 {
			if !errors.Is(err, ErrBadJournal) {
				t.Fatalf("cut=%d: headerless journal accepted (err=%v)", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: torn tail rejected: %v", cut, err)
		}
		if len(rep.Records) > len(full.Records) || rep.ValidEnd > int64(cut) {
			t.Fatalf("cut=%d: replay invented data: %d records, validEnd=%d", cut, len(rep.Records), rep.ValidEnd)
		}
		for i := range rep.Records {
			if rep.Records[i].kind != full.Records[i].kind {
				t.Fatalf("cut=%d: record %d kind %s, want %s", cut, i, rep.Records[i].kind, full.Records[i].kind)
			}
		}
	}

	// A torn tail on disk: openJournal truncates it and continues. The
	// lease record is cut mid-frame, so only the grant is forgotten — the
	// restored queue re-leases the cell from pending.
	tear := full.ValidEnd - 3
	if err := os.WriteFile(path, data[:tear], 0o644); err != nil {
		t.Fatal(err)
	}
	q2, j2, rep := reopenRestore(t, path, jobs, cfg)
	if rep.Size != tear || rep.ValidEnd >= tear {
		t.Fatalf("torn replay: size=%d validEnd=%d, tear=%d", rep.Size, rep.ValidEnd, tear)
	}
	// Tearing 3 bytes cuts the COMPLETE record mid-frame: the cell is back
	// to leased, and the worker's (re)completion or the janitor recovers it.
	if p := q2.Progress(); p.Done != 0 || p.Leased != 1 {
		t.Fatalf("torn-tail progress = %+v", p)
	}
	// The file was physically truncated to the valid prefix and appending
	// continues from there.
	if fi, err := os.Stat(path); err != nil || fi.Size() != rep.ValidEnd {
		t.Fatalf("file not truncated to valid prefix: size=%v err=%v (want %d)", fi.Size(), err, rep.ValidEnd)
	}
	if err := q2.Complete(0, "lease-0-1", testCell(1, 0.5), CellRunInfo{}, time.Unix(1_000_100, 0)); err != nil {
		t.Fatalf("re-completion after tear: %v", err)
	}
	j2.Close()
}

// TestJournalDuplicateTransitions: replay is idempotent against the
// duplicate records an at-least-once worker protocol can produce — a
// digest-identical duplicate completion is dropped, and a duplicate
// lease for a done cell is ignored.
func TestJournalDuplicateTransitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := QueueConfig{Lease: time.Minute, MaxAttempts: 5}
	_, j1, jobs := journalFixture(t, path, cfg)
	cell := testCell(1, 0.5)
	info := CellRunInfo{DaysExecuted: 20}
	digest := CellDigest(&cell)
	now := time.Unix(1_000_000, 0).Add(time.Minute)
	// Hand-append a history the live queue would have deduplicated:
	// lease, complete, the SAME complete again, then a lease for the
	// now-done cell (a salvage race the crash interleaved).
	if err := j1.lease(0, 1, 1, "lease-0-1", now); err != nil {
		t.Fatal(err)
	}
	if err := j1.complete(0, "lease-0-1", digest, &cell, &info); err != nil {
		t.Fatal(err)
	}
	if err := j1.complete(0, "lease-0-1", digest, &cell, &info); err != nil {
		t.Fatal(err)
	}
	if err := j1.lease(0, 2, 2, "lease-0-2", now); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	q2, j2, _ := reopenRestore(t, path, jobs, cfg)
	defer j2.Close()
	p := q2.Progress()
	if p.Done != 1 || p.Adopted != 1 || p.Duplicates != 1 || p.Leased != 0 {
		t.Fatalf("progress after duplicate replay = %+v", p)
	}
	if q2.Err() != nil {
		t.Fatalf("identical duplicates poisoned the queue: %v", q2.Err())
	}

	// Diverging duplicate: same cell journaled done with two digests —
	// only divergent workers produce that, so replay poisons exactly like
	// the live queue would have.
	path2 := filepath.Join(t.TempDir(), "diverge.journal")
	_, j3, _ := journalFixture(t, path2, cfg)
	other := testCell(1, 0.9)
	if err := j3.lease(0, 1, 1, "lease-0-1", now); err != nil {
		t.Fatal(err)
	}
	if err := j3.complete(0, "lease-0-1", digest, &cell, &info); err != nil {
		t.Fatal(err)
	}
	if err := j3.complete(0, "lease-0-1", CellDigest(&other), &other, &info); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	j4, rep, err := openJournal(path2, gridDigest(jobs), len(jobs), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	q4 := NewQueue(jobs, cfg)
	if err := q4.restore(rep); err != nil {
		t.Fatal(err)
	}
	if qerr := q4.Err(); !errors.Is(qerr, ErrDigestMismatch) {
		t.Fatalf("diverging journaled duplicates: queue err = %v, want ErrDigestMismatch", qerr)
	}
}

// TestJournalRejectsForeignGrid: a journal can only be adopted by a
// coordinator that expanded the identical grid — indices are meaningless
// against any other job list.
func TestJournalRejectsForeignGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	_, j1, _ := journalFixture(t, path, QueueConfig{})
	j1.Close()
	foreign := testQueueJobs(3)
	if _, _, err := openJournal(path, gridDigest(foreign), len(foreign), nil); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("foreign grid adopted the journal: %v", err)
	}
}

// TestJournalPoisonSurvivesRestart: a poisoned grid stays poisoned — a
// restart must not resurrect a sweep whose determinism contract was
// violated.
func TestJournalPoisonSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := QueueConfig{Lease: time.Minute}
	q1, j1, jobs := journalFixture(t, path, cfg)
	t0 := time.Unix(1_000_000, 0)
	claim, _, _ := q1.Lease(t0)
	if err := q1.Fail(claim.Index, claim.LeaseID, "divergent binaries", false, t0); err != nil {
		t.Fatal(err)
	}
	if q1.Err() == nil {
		t.Fatal("permanent failure did not poison")
	}
	j1.Close()

	q2, j2, _ := reopenRestore(t, path, jobs, cfg)
	defer j2.Close()
	if q2.Err() == nil {
		t.Fatal("restart resurrected a poisoned grid")
	}
	if _, _, done := q2.Lease(t0); !done {
		t.Fatal("poisoned restored queue handed out a lease")
	}
}

// TestJournalDiskFull: when the journal's disk fills, the queue poisons
// itself cleanly — the failed transition is refused (never half-applied),
// the error is a disk error and NOT an injected-crash signal, and the
// already-journaled prefix still replays.
func TestJournalDiskFull(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobs := testQueueJobs(2)
	inj := fault.New(fault.Config{DiskBudget: 256})
	j, rep, err := openJournal(path, gridDigest(jobs), len(jobs), func(w io.Writer) io.Writer { return inj.Writer(w) })
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("fresh journal replayed")
	}
	defer j.Close()
	cfg := QueueConfig{Lease: time.Minute, MaxAttempts: 5}
	q := NewQueue(jobs, cfg)
	q.attachJournal(j)

	t0 := time.Unix(1_000_000, 0)
	// Keep leasing until the budget runs out; the queue must fail closed.
	var sawDone bool
	for i := 0; i < 10; i++ {
		claim, _, done := q.Lease(t0)
		if done {
			sawDone = true
			break
		}
		if claim == nil {
			t.Fatalf("iteration %d: no claim, not done", i)
		}
		if err := q.Fail(claim.Index, claim.LeaseID, "retry", true, t0); err != nil {
			if !errors.Is(err, fault.ErrDiskFull) {
				t.Fatalf("fail path surfaced %v, want ErrDiskFull", err)
			}
			sawDone = true
			break
		}
		t0 = t0.Add(time.Minute) // clear any backoff gate before re-leasing
	}
	if !sawDone {
		t.Fatalf("256-byte disk budget never fired (injected=%d)", inj.Injected())
	}
	qerr := q.Err()
	if qerr == nil {
		t.Fatal("disk-full journal did not poison the queue")
	}
	if !errors.Is(qerr, fault.ErrDiskFull) {
		t.Fatalf("queue err = %v, want ErrDiskFull", qerr)
	}
	if errors.Is(qerr, fault.ErrInjected) {
		t.Fatal("ENOSPC must not masquerade as an injected crash")
	}

	// The prefix that made it to disk is still a valid journal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replayJournal(data); err != nil {
		t.Fatalf("disk-full journal prefix unreplayable: %v", err)
	}
}

// TestRunLogWriterDiskFull: the spooled run-log writer under an ENOSPC
// injector fails the cell cleanly — the error is a disk error (reported
// transient, not a simulated crash), and the spool's checkpoint remains
// valid, so a successor with space resumes and produces the exact bytes
// of a clean run.
func TestRunLogWriterDiskFull(t *testing.T) {
	sp, ok := scenario.Lookup(microName(t, "paper-baseline"))
	if !ok {
		t.Fatal("micro scenario missing")
	}
	const seed = 20190301

	clean := CellRunner{}
	want, _, err := clean.Run(context.Background(), sp, seed)
	if err != nil {
		t.Fatal(err)
	}

	spool := t.TempDir()
	full := CellRunner{
		SpoolDir:        spool,
		CheckpointEvery: 1,
		Fault:           fault.New(fault.Config{DiskBudget: 64 << 10}),
	}
	_, _, err = full.Run(context.Background(), sp, seed)
	if err == nil {
		t.Skip("64KiB budget fit the whole micro cell; nothing to test")
	}
	if !errors.Is(err, fault.ErrDiskFull) {
		t.Fatalf("disk-full run failed with %v, want ErrDiskFull in the chain", err)
	}
	if IsInjected(err) {
		t.Fatal("ENOSPC classified as injected crash: a worker would die instead of reporting transient failure")
	}

	// The checkpoint the run left is valid: a successor resumes the cell.
	ckpt := filepath.Join(spool, "micro-paper-baseline-seed20190301.ckpt")
	cp, cerr := stream.ReadCheckpointFile(ckpt)
	retry := CellRunner{SpoolDir: spool, CheckpointEvery: 1}
	got, info, err := retry.Run(context.Background(), sp, seed)
	if err != nil {
		t.Fatalf("successor failed: %v", err)
	}
	if CellDigest(&got) != CellDigest(&want) {
		t.Fatalf("post-ENOSPC resume diverged:\n got %+v\nwant %+v", got, want)
	}
	if cerr == nil && cp.Days > 0 {
		if !info.Resumed || info.ResumedAfterDays != int(cp.Days) {
			t.Errorf("successor did not resume from the surviving checkpoint (cp.Days=%d info=%+v)", cp.Days, info)
		}
	}
}

// TestCellRunnerCancelAtDayBarrier: cancelling a cell stops it at the
// next day barrier with a FORCED checkpoint (CheckpointEvery is set far
// beyond the window, so only the cancellation path can have written it),
// and the successor resumes from that exact day to the clean result.
func TestCellRunnerCancelAtDayBarrier(t *testing.T) {
	sp, ok := scenario.Lookup(microName(t, "paper-baseline"))
	if !ok {
		t.Fatal("micro scenario missing")
	}
	const seed = 20190301
	const windowDays = 20
	const cancelAt = 5

	clean := CellRunner{}
	want, _, err := clean.Run(context.Background(), sp, seed)
	if err != nil {
		t.Fatal(err)
	}

	spool := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	days := 0
	first := CellRunner{
		SpoolDir:        spool,
		CheckpointEvery: 1000, // cadence never fires inside the window
		PerDay: func(dates.Date) error {
			if days++; days == cancelAt {
				cancel()
			}
			return nil
		},
	}
	_, _, err = first.Run(ctx, sp, seed)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}
	if days != cancelAt {
		t.Fatalf("run continued %d days past the cancellation barrier", days-cancelAt)
	}

	cp, err := stream.ReadCheckpointFile(filepath.Join(spool, "micro-paper-baseline-seed20190301.ckpt"))
	if err != nil {
		t.Fatalf("cancellation left no checkpoint: %v", err)
	}
	if int(cp.Days) != cancelAt {
		t.Fatalf("forced checkpoint at day %d, want %d", cp.Days, cancelAt)
	}

	second := CellRunner{SpoolDir: spool, CheckpointEvery: 1000}
	got, info, err := second.Run(context.Background(), sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed || info.ResumedAfterDays != cancelAt || info.DaysExecuted != windowDays-cancelAt {
		t.Fatalf("successor info = %+v, want resume after day %d", info, cancelAt)
	}
	if CellDigest(&got) != CellDigest(&want) {
		t.Fatalf("cancel+resume diverged from clean run:\n got %+v\nwant %+v", got, want)
	}
}

// FuzzJournalReplay: replay must never panic on arbitrary bytes, never
// claim more input than it was given, and — when the replayed prefix
// applies to the test grid — never resurrect a grid whose journal
// records a poison.
func FuzzJournalReplay(f *testing.F) {
	jobs := testQueueJobs(2)
	cfg := QueueConfig{Lease: time.Minute, MaxAttempts: 5}
	seedDir := f.TempDir()

	// Seed 1: a healthy history.
	healthy := filepath.Join(seedDir, "healthy.journal")
	{
		j, _, err := openJournal(healthy, gridDigest(jobs), len(jobs), nil)
		if err != nil {
			f.Fatal(err)
		}
		q := NewQueue(jobs, cfg)
		q.attachJournal(j)
		t0 := time.Unix(1_000_000, 0)
		c0, _, _ := q.Lease(t0)
		c1, _, _ := q.Lease(t0)
		cell := testCell(1, 0.5)
		q.Complete(c0.Index, c0.LeaseID, cell, CellRunInfo{}, t0)
		q.Heartbeat(c1.Index, c1.LeaseID, t0.Add(time.Second))
		q.Fail(c1.Index, c1.LeaseID, "wobble", true, t0.Add(time.Second))
		j.Close()
	}
	// Seed 2: a poisoned history.
	poisoned := filepath.Join(seedDir, "poisoned.journal")
	{
		j, _, err := openJournal(poisoned, gridDigest(jobs), len(jobs), nil)
		if err != nil {
			f.Fatal(err)
		}
		q := NewQueue(jobs, cfg)
		q.attachJournal(j)
		t0 := time.Unix(1_000_000, 0)
		c0, _, _ := q.Lease(t0)
		q.Fail(c0.Index, c0.LeaseID, "permanent", false, t0)
		j.Close()
	}
	for _, p := range []string{healthy, poisoned} {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A torn variant of each.
		f.Add(data[:len(data)-4])
	}
	f.Add([]byte(journalMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := replayJournal(data)
		if err != nil {
			if !errors.Is(err, ErrBadJournal) {
				t.Fatalf("replay error outside ErrBadJournal: %v", err)
			}
			return
		}
		if rep.ValidEnd > rep.Size || rep.Size != int64(len(data)) {
			t.Fatalf("replay invented bytes: validEnd=%d size=%d len=%d", rep.ValidEnd, rep.Size, len(data))
		}
		if rep.Total != len(jobs) {
			return // belongs to some other (fuzzed) grid shape
		}
		q := NewQueue(jobs, cfg)
		if rerr := q.restore(rep); rerr != nil {
			return // structurally impossible record: rejected, not applied
		}
		for _, rec := range rep.Records {
			if rec.kind == jPoison && q.Err() == nil {
				t.Fatal("restore resurrected a poisoned grid")
			}
		}
	})
}
