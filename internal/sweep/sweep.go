// Package sweep runs a scenario×seed grid of full simulations and scores
// the Section 5.2 lockstep detector against each world's recorded ground
// truth. It is the measurement harness for the paper's open question —
// does install-time lockstep detection survive adversaries that adapt? —
// executed as: one isolated world per grid cell, the event-sourced run
// log tapped online (the detector ingests installs day by day through
// stream.Tail, exactly as an out-of-process analytics job would), and
// precision/recall/F1 per adversary at the end.
//
// The grid runs in two shapes with byte-identical results:
//
//   - In-process (Run): cells fan out across goroutines via conc.ForN.
//   - Distributed (Coordinator + Worker over the HTTP work-queue in
//     transport.go): cells are handed out under time-bounded leases,
//     crashed workers' cells are reissued and resumed from their spooled
//     checkpoints, and duplicate completions are cross-checked by content
//     digest. Every cell is deterministic in (scenario, seed), which is
//     what makes the distribution trivial to verify: any honest execution
//     of a cell yields the same bytes.
package sweep

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"

	"repro/internal/conc"
	"repro/internal/lockstep"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Options selects the grid.
type Options struct {
	// Base overrides every spec's base world ("" keeps each spec's own;
	// registered built-ins default to the tiny world).
	Base string
	// Scenarios are the registry names to run; empty = every registered
	// scenario.
	Scenarios []string
	// Seeds are the world seeds per scenario; empty = the base config's
	// calibrated seed.
	Seeds []uint64
	// Workers bounds how many grid cells run concurrently (0 =
	// GOMAXPROCS). Each cell runs its own world with Workers=1, so the
	// grid parallelizes across cells, not within them.
	Workers int
	// Logf, when set, receives per-cell progress lines (printf-style;
	// kept for embedders that predate structured logging).
	Logf func(format string, args ...any)
	// Log, when set, receives structured per-cell progress records and
	// the coordinator's control-plane log. Preferred over Logf when both
	// are set.
	Log *slog.Logger
}

// Cell is one (scenario, seed) grid result.
type Cell struct {
	Scenario string              `json:"scenario"`
	Seed     uint64              `json:"seed"`
	Stats    sim.RunStats        `json:"stats"`
	Truth    int                 `json:"truth_devices"`
	Groups   int                 `json:"groups"`
	Flagged  int                 `json:"flagged_devices"`
	Eval     lockstep.Evaluation `json:"eval"`
	// Detector is the cell detector's internal accounting: signal
	// retracted at the bucket-population cap and, under a sketch-tier
	// spec, the banding candidate/verified counts.
	Detector lockstep.Stats `json:"detector"`
}

// Summary aggregates one scenario's cells (means across seeds).
type Summary struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Cells       []Cell  `json:"cells"`
	Precision   float64 `json:"mean_precision"`
	Recall      float64 `json:"mean_recall"`
	F1          float64 `json:"mean_f1"`
}

// Result is the full grid outcome.
type Result struct {
	Base      string    `json:"base"`
	Seeds     []uint64  `json:"seeds"`
	Scenarios []Summary `json:"scenarios"`
}

// Baseline returns the paper-baseline summary when the grid includes it.
func (r *Result) Baseline() (Summary, bool) {
	for _, s := range r.Scenarios {
		if s.Name == "paper-baseline" {
			return s, true
		}
	}
	return Summary{}, false
}

// gridJob is one cell's work order: the resolved spec plus the requested
// seed (0 = the base config's calibrated seed).
type gridJob struct {
	spec scenario.Spec
	seed uint64
}

// grid is an expanded, validated work list: what both the in-process
// runner and the coordinator hand out, and what assembles cells back into
// a Result. Job order is (scenario request order) × (seed order), so a
// job index is a stable cell identity across processes.
type grid struct {
	base  string
	names []string
	descs map[string]string
	seeds []uint64
	jobs  []gridJob
}

// expandGrid resolves Options into the deduplicated scenario×seed job
// list.
func expandGrid(o Options) (*grid, error) {
	requested := o.Scenarios
	if len(requested) == 0 {
		requested = scenario.Names()
	}
	g := &grid{base: o.Base, descs: map[string]string{}}
	// Dedupe while keeping first-request order: a repeated name would
	// both re-run its cells and corrupt the mean aggregation.
	var specs []scenario.Spec
	seen := map[string]bool{}
	for _, name := range requested {
		if seen[name] {
			continue
		}
		seen[name] = true
		sp, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scenario %q", name)
		}
		if o.Base != "" {
			sp.World.Base = o.Base
		}
		g.names = append(g.names, name)
		g.descs[name] = sp.Description
		specs = append(specs, sp)
	}
	g.seeds = o.Seeds
	if len(g.seeds) == 0 {
		g.seeds = []uint64{0} // 0 = the base config's calibrated seed
	}
	for _, sp := range specs {
		for _, seed := range g.seeds {
			g.jobs = append(g.jobs, gridJob{sp, seed})
		}
	}
	return g, nil
}

// assemble folds completed cells (in job order) into the final Result:
// scenarios ordered as requested, cells ordered by seed, means across
// seeds. The output is a pure function of the cells, so any execution —
// in-process, distributed, resumed after crashes — assembles the same
// bytes.
func (g *grid) assemble(cells []Cell) *Result {
	res := &Result{Base: g.base}
	for _, c := range cells[:min(len(cells), len(g.seeds))] {
		res.Seeds = append(res.Seeds, c.Seed)
	}
	byName := map[string]*Summary{}
	for _, c := range cells {
		s := byName[c.Scenario]
		if s == nil {
			s = &Summary{Name: c.Scenario, Description: g.descs[c.Scenario]}
			byName[c.Scenario] = s
		}
		s.Cells = append(s.Cells, c)
	}
	for _, name := range g.names {
		s := byName[name]
		if s == nil {
			continue
		}
		sort.Slice(s.Cells, func(i, j int) bool { return s.Cells[i].Seed < s.Cells[j].Seed })
		for _, c := range s.Cells {
			s.Precision += c.Eval.Precision
			s.Recall += c.Eval.Recall
			s.F1 += c.Eval.F1
		}
		n := float64(len(s.Cells))
		s.Precision /= n
		s.Recall /= n
		s.F1 /= n
		res.Scenarios = append(res.Scenarios, *s)
	}
	return res
}

// Run executes the grid in-process. Every cell is deterministic in
// (scenario, seed); cells run concurrently via the same bounded fan-out
// primitive the day engine uses, and the assembled result orders
// scenarios as requested and cells by seed, so the report is identical
// for any Workers setting.
func Run(o Options) (*Result, error) {
	return RunCtx(context.Background(), o)
}

// RunCtx is Run with cancellation: a cancelled ctx stops every in-flight
// cell at its next day barrier and returns the cancellation error.
func RunCtx(ctx context.Context, o Options) (*Result, error) {
	g, err := expandGrid(o)
	if err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var runner CellRunner // zero value: in-memory, no spool
	cells := make([]Cell, len(g.jobs))
	errs := make([]error, len(g.jobs))
	var logMu sync.Mutex
	conc.ForN(workers, len(g.jobs), func(i int) {
		cell, _, err := runner.Run(ctx, g.jobs[i].spec, g.jobs[i].seed)
		cells[i], errs[i] = cell, err
		switch {
		case o.Log != nil:
			if err != nil {
				o.Log.Warn("cell failed", "scenario", g.jobs[i].spec.Name, "seed", cell.Seed, "error", err)
			} else {
				o.Log.Info("cell done", "scenario", cell.Scenario, "seed", cell.Seed, "eval", cell.Eval.String())
			}
		case o.Logf != nil:
			logMu.Lock()
			if err != nil {
				o.Logf("cell %s/seed=%d failed: %v", g.jobs[i].spec.Name, cell.Seed, err)
			} else {
				o.Logf("cell %s/seed=%d: %s", cell.Scenario, cell.Seed, cell.Eval)
			}
			logMu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g.assemble(cells), nil
}
