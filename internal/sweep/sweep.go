// Package sweep runs a scenario×seed grid of full simulations in
// parallel and scores the Section 5.2 lockstep detector against each
// world's recorded ground truth. It is the measurement harness for the
// paper's open question — does install-time lockstep detection survive
// adversaries that adapt? — executed as: one isolated world per grid
// cell, the event-sourced run log tapped online (the detector ingests
// installs day by day through stream.Tail, exactly as an out-of-process
// analytics job would), and precision/recall/F1 per adversary at the end.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/conc"
	"repro/internal/dates"
	"repro/internal/lockstep"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Options selects the grid.
type Options struct {
	// Base overrides every spec's base world ("" keeps each spec's own;
	// registered built-ins default to the tiny world).
	Base string
	// Scenarios are the registry names to run; empty = every registered
	// scenario.
	Scenarios []string
	// Seeds are the world seeds per scenario; empty = the base config's
	// calibrated seed.
	Seeds []uint64
	// Workers bounds how many grid cells run concurrently (0 =
	// GOMAXPROCS). Each cell runs its own world with Workers=1, so the
	// grid parallelizes across cells, not within them.
	Workers int
	// Logf, when set, receives per-cell progress lines.
	Logf func(format string, args ...any)
}

// Cell is one (scenario, seed) grid result.
type Cell struct {
	Scenario string              `json:"scenario"`
	Seed     uint64              `json:"seed"`
	Stats    sim.RunStats        `json:"stats"`
	Truth    int                 `json:"truth_devices"`
	Groups   int                 `json:"groups"`
	Flagged  int                 `json:"flagged_devices"`
	Eval     lockstep.Evaluation `json:"eval"`
}

// Summary aggregates one scenario's cells (means across seeds).
type Summary struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Cells       []Cell  `json:"cells"`
	Precision   float64 `json:"mean_precision"`
	Recall      float64 `json:"mean_recall"`
	F1          float64 `json:"mean_f1"`
}

// Result is the full grid outcome.
type Result struct {
	Base      string    `json:"base"`
	Seeds     []uint64  `json:"seeds"`
	Scenarios []Summary `json:"scenarios"`
}

// Baseline returns the paper-baseline summary when the grid includes it.
func (r *Result) Baseline() (Summary, bool) {
	for _, s := range r.Scenarios {
		if s.Name == "paper-baseline" {
			return s, true
		}
	}
	return Summary{}, false
}

// Run executes the grid. Every cell is deterministic in (scenario, seed);
// cells run concurrently via the same bounded fan-out primitive the day
// engine uses, and the assembled result orders scenarios as requested and
// cells by seed, so the report is identical for any Workers setting.
func Run(o Options) (*Result, error) {
	requested := o.Scenarios
	if len(requested) == 0 {
		requested = scenario.Names()
	}
	// Dedupe while keeping first-request order: a repeated name would
	// both re-run its cells and corrupt the mean aggregation below.
	var names []string
	var specs []scenario.Spec
	seen := map[string]bool{}
	for _, name := range requested {
		if seen[name] {
			continue
		}
		seen[name] = true
		sp, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scenario %q", name)
		}
		if o.Base != "" {
			sp.World.Base = o.Base
		}
		names = append(names, name)
		specs = append(specs, sp)
	}
	seeds := o.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0} // 0 = the base config's calibrated seed
	}

	type cellJob struct {
		spec scenario.Spec
		seed uint64
	}
	var jobs []cellJob
	for _, sp := range specs {
		for _, seed := range seeds {
			jobs = append(jobs, cellJob{sp, seed})
		}
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	var logMu sync.Mutex
	conc.ForN(workers, len(jobs), func(i int) {
		cell, err := runCell(jobs[i].spec, jobs[i].seed)
		cells[i], errs[i] = cell, err
		if o.Logf != nil {
			logMu.Lock()
			if err != nil {
				o.Logf("cell %s/seed=%d failed: %v", jobs[i].spec.Name, cell.Seed, err)
			} else {
				o.Logf("cell %s/seed=%d: %s", cell.Scenario, cell.Seed, cell.Eval)
			}
			logMu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Base: o.Base}
	for _, c := range cells[:min(len(cells), len(seeds))] {
		res.Seeds = append(res.Seeds, c.Seed)
	}
	byName := map[string]*Summary{}
	for i, c := range cells {
		s := byName[c.Scenario]
		if s == nil {
			s = &Summary{Name: c.Scenario, Description: jobs[i].spec.Description}
			byName[c.Scenario] = s
		}
		s.Cells = append(s.Cells, c)
	}
	for _, name := range names {
		s := byName[name]
		if s == nil {
			continue
		}
		sort.Slice(s.Cells, func(i, j int) bool { return s.Cells[i].Seed < s.Cells[j].Seed })
		for _, c := range s.Cells {
			s.Precision += c.Eval.Precision
			s.Recall += c.Eval.Recall
			s.F1 += c.Eval.F1
		}
		n := float64(len(s.Cells))
		s.Precision /= n
		s.Recall /= n
		s.F1 /= n
		res.Scenarios = append(res.Scenarios, *s)
	}
	return res, nil
}

// runCell builds one isolated world, runs it with the event log tapped
// online into an incremental detector, then scores groups against the
// world's ground truth plus organic decoys.
func runCell(sp scenario.Spec, seed uint64) (Cell, error) {
	cfg, err := sim.ConfigForSpec(sp)
	if err != nil {
		return Cell{}, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Workers = 1 // the grid parallelizes across cells
	cell := Cell{Scenario: sp.Name, Seed: cfg.Seed}

	w, err := sim.NewWorld(cfg)
	if err != nil {
		return cell, fmt.Errorf("sweep: building %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}
	// The run log drains into an in-memory buffer a Tail follows at each
	// day barrier — the same online wiring examples/monitoring uses
	// against a file, minus the disk.
	var buf memLog
	runLog, err := w.NewRunLog(&buf)
	if err != nil {
		return cell, err
	}
	det := lockstep.NewDetector(sp.Detector.Config())
	tail := stream.NewTail(&buf)
	var (
		ev     stream.Event
		curDay dates.Date
	)
	drain := func() error {
		for {
			ok, err := tail.Next(&ev)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			switch ev.Kind {
			case stream.KindDayStart:
				curDay = ev.Day
			case stream.KindInstall:
				det.Ingest(ev.Device, ev.Pkg, curDay)
			case stream.KindInstallBatch:
				for _, dev := range ev.Devices {
					det.Ingest(dev, ev.Pkg, curDay)
				}
			}
		}
	}
	stats, err := w.RunOpts(sim.RunOptions{
		Log:  runLog,
		Hook: func(dates.Date) error { return drain() },
	})
	if err != nil {
		return cell, fmt.Errorf("sweep: running %s/seed=%d: %w", sp.Name, cfg.Seed, err)
	}
	cell.Stats = stats

	// Organic decoy background, then score against ground truth.
	for _, dev := range w.DecoyEvents() {
		det.Ingest(dev.Device, dev.App, dev.Day)
	}
	truth := w.TruthLabels()
	groups := det.Groups()
	cell.Truth = len(truth)
	cell.Groups = len(groups)
	for _, g := range groups {
		cell.Flagged += len(g.Devices)
	}
	cell.Eval = lockstep.Evaluate(groups, truth)
	return cell, nil
}

// memLog is the in-memory run log a cell writes and tails: Write appends,
// ReadAt addresses absolute offsets. The writer (run loop) and reader
// (day-barrier hook) share one goroutine, so no locking is needed.
type memLog struct {
	buf []byte
}

func (m *memLog) Write(p []byte) (int, error) {
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memLog) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
