package apk

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestBuildAndDetectExact(t *testing.T) {
	r := randx.New(1)
	libs := []string{"Google AdMob", "AppLovin", "OkHttp"}
	a, err := Build(r, "com.example.game", libs, 0)
	if err != nil {
		t.Fatal(err)
	}
	detected := DetectLibraries(a)
	names := map[string]bool{}
	for _, l := range detected {
		names[l.Name] = true
	}
	for _, want := range libs {
		if !names[want] {
			t.Errorf("library %s not detected", want)
		}
	}
	if CountAdLibraries(a) != 2 {
		t.Errorf("ad libraries = %d, want 2 (AdMob + AppLovin)", CountAdLibraries(a))
	}
}

func TestBuildUnknownLibrary(t *testing.T) {
	if _, err := Build(randx.New(1), "p", []string{"NoSuchLib"}, 0); err == nil {
		t.Error("unknown library should error")
	}
}

func TestObfuscationHidesLibraries(t *testing.T) {
	r := randx.New(2)
	libs := []string{"Google AdMob", "AppLovin", "ChartBoost", "Vungle", "Tapjoy"}
	// Fully obfuscated: nothing detectable.
	a, err := Build(r, "com.example.app", libs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountAdLibraries(a); n != 0 {
		t.Errorf("fully obfuscated APK leaked %d libraries", n)
	}
	// Partially obfuscated: detection undercounts on average.
	total := 0
	for i := 0; i < 50; i++ {
		a, _ := Build(r, "com.example.app", libs, 0.5)
		total += CountAdLibraries(a)
	}
	avg := float64(total) / 50
	if avg < 1 || avg > 4 {
		t.Errorf("50%% obfuscation average detection = %g, want ~2.5", avg)
	}
}

func TestAdLibraryNames(t *testing.T) {
	names := AdLibraryNames()
	if len(names) < 15 {
		t.Errorf("ad catalog too small: %d", len(names))
	}
	for _, n := range names {
		lib, ok := LibraryByName(n)
		if !ok || !lib.Ad {
			t.Errorf("inconsistent catalog entry %q", n)
		}
	}
	// Mediator SDKs are not ad libraries.
	if lib, ok := LibraryByName("AppsFlyer"); !ok || lib.Ad {
		t.Error("AppsFlyer must be present and non-ad")
	}
}

func TestDetectNoFalsePositiveOnPrefixCollision(t *testing.T) {
	// A class under "com/applovinish/..." must not match AppLovin.
	a := APK{Package: "x", Classes: []string{"com/applovinish/Core"}}
	for _, l := range DetectLibraries(a) {
		if l.Name == "AppLovin" {
			t.Error("prefix match must be path-segment aware")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := randx.New(3)
	a, err := Build(r, "com.round.trip", []string{"Gson", "Fyber"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := Encode(a)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Package != a.Package || len(got.Classes) != len(a.Classes) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
	for i := range a.Classes {
		if got.Classes[i] != a.Classes[i] {
			t.Fatalf("class %d mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SAPK"),                   // truncated version
		[]byte("SAPK\x00\x63"),           // wrong version
		[]byte("SAPK\x00\x01\x00\x05ab"), // truncated package
	}
	for i, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: want ErrBadFormat, got %v", i, err)
		}
	}
}

func TestDecodeTruncatedClassTable(t *testing.T) {
	a := APK{Package: "p", Classes: []string{"a/b/C"}}
	b := Encode(a)
	if _, err := Decode(b[:len(b)-2]); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated blob should fail: %v", err)
	}
}

// Property: Decode(Encode(x)) == x for arbitrary printable content.
func TestRoundTripProperty(t *testing.T) {
	f := func(pkg string, classes []string) bool {
		if len(pkg) > 60000 {
			pkg = pkg[:60000]
		}
		for i, c := range classes {
			if len(c) > 60000 {
				classes[i] = c[:60000]
			}
		}
		a := APK{Package: pkg, Classes: classes}
		got, err := Decode(Encode(a))
		if err != nil {
			return false
		}
		if got.Package != a.Package || len(got.Classes) != len(a.Classes) {
			return false
		}
		for i := range a.Classes {
			if got.Classes[i] != a.Classes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBuildIncludesAppClasses(t *testing.T) {
	a, err := Build(randx.New(4), "com.my.app", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range a.Classes {
		if strings.HasPrefix(c, "com/my/app/") {
			found = true
		}
	}
	if !found {
		t.Error("APK must contain the app's own classes")
	}
	if CountAdLibraries(a) != 0 {
		t.Error("library-free app should detect zero ad libraries")
	}
}
