// Package apk is the static-analysis substrate standing in for LibRadar in
// the paper's Figure 6 experiment: it defines a compact binary APK
// container holding an app's class-path table, builders that embed
// third-party library class trees (optionally obfuscated), and a
// signature-based detector that recovers the embedded libraries and counts
// advertising SDKs.
package apk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/randx"
)

// APK is a parsed synthetic Android package.
type APK struct {
	Package string
	// Classes is the flattened class-path table ("com/google/ads/Ad").
	Classes []string
}

// Library is a third-party SDK with its characteristic class-path prefix.
type Library struct {
	Name   string
	Prefix string // e.g. "com/google/android/gms/ads"
	Ad     bool   // advertising SDK?
}

// Catalog is the signature database the detector matches against; it plays
// the role of LibRadar's pre-built library profiles. It includes the ad
// vendors the paper names (Google AdMob, AppLovin, ChartBoost) and IIP
// SDKs that double as advertisers (Fyber).
var Catalog = []Library{
	{Name: "Google AdMob", Prefix: "com/google/android/gms/ads", Ad: true},
	{Name: "AppLovin", Prefix: "com/applovin", Ad: true},
	{Name: "ChartBoost", Prefix: "com/chartboost/sdk", Ad: true},
	{Name: "Fyber", Prefix: "com/fyber/offerwall", Ad: true},
	{Name: "UnityAds", Prefix: "com/unity3d/ads", Ad: true},
	{Name: "Vungle", Prefix: "com/vungle/warren", Ad: true},
	{Name: "IronSource", Prefix: "com/ironsource/mediationsdk", Ad: true},
	{Name: "Tapjoy", Prefix: "com/tapjoy", Ad: true},
	{Name: "AdColony", Prefix: "com/adcolony/sdk", Ad: true},
	{Name: "StartApp", Prefix: "com/startapp/android", Ad: true},
	{Name: "InMobi", Prefix: "com/inmobi/ads", Ad: true},
	{Name: "Mintegral", Prefix: "com/mintegral/msdk", Ad: true},
	{Name: "Facebook Audience", Prefix: "com/facebook/ads", Ad: true},
	{Name: "MoPub", Prefix: "com/mopub/mobileads", Ad: true},
	{Name: "OfferToro SDK", Prefix: "com/offertoro/sdk", Ad: true},
	{Name: "ayeT SDK", Prefix: "com/ayetstudios/publishersdk", Ad: true},
	{Name: "AdscendMedia SDK", Prefix: "com/adscendmedia/sdk", Ad: true},
	{Name: "AdGem SDK", Prefix: "com/adgem/android", Ad: true},
	{Name: "Huawei Ads", Prefix: "com/huawei/hms/ads", Ad: true},
	{Name: "Yandex Ads", Prefix: "com/yandex/mobile/ads", Ad: true},

	{Name: "OkHttp", Prefix: "okhttp3", Ad: false},
	{Name: "Retrofit", Prefix: "retrofit2", Ad: false},
	{Name: "Gson", Prefix: "com/google/gson", Ad: false},
	{Name: "Glide", Prefix: "com/bumptech/glide", Ad: false},
	{Name: "Firebase", Prefix: "com/google/firebase", Ad: false},
	{Name: "AppsFlyer", Prefix: "com/appsflyer", Ad: false},
	{Name: "Kochava", Prefix: "com/kochava/base", Ad: false},
	{Name: "Adjust", Prefix: "com/adjust/sdk", Ad: false},
	{Name: "RootBeer", Prefix: "com/scottyab/rootbeer", Ad: false},
	{Name: "EventBus", Prefix: "org/greenrobot/eventbus", Ad: false},
}

// LibraryByName looks up a catalog entry.
func LibraryByName(name string) (Library, bool) {
	for _, l := range Catalog {
		if l.Name == name {
			return l, true
		}
	}
	return Library{}, false
}

// AdLibraryNames returns the names of all advertising SDKs in the catalog.
func AdLibraryNames() []string {
	var out []string
	for _, l := range Catalog {
		if l.Ad {
			out = append(out, l.Name)
		}
	}
	return out
}

// classStems generate plausible member classes under a library prefix.
var classStems = []string{
	"Core", "Manager", "Config", "Network", "Cache", "View", "Banner",
	"Interstitial", "Loader", "Tracker", "Session", "Util", "Api",
}

// Build assembles an APK embedding the named catalog libraries plus the
// app's own classes. obfuscation in [0,1] is the probability that a
// library's class tree is renamed by a code obfuscator, which hides it
// from signature matching — the mechanism behind the paper's caveat that
// "static analysis may miss some advertising libraries due to code
// obfuscation".
func Build(r *randx.Rand, pkg string, libNames []string, obfuscation float64) (APK, error) {
	a := APK{Package: pkg}
	appPrefix := strings.ReplaceAll(pkg, ".", "/")
	for i := 0; i < 6; i++ {
		a.Classes = append(a.Classes, fmt.Sprintf("%s/%s", appPrefix, classStems[i%len(classStems)]))
	}
	for _, name := range libNames {
		lib, ok := LibraryByName(name)
		if !ok {
			return APK{}, fmt.Errorf("apk: unknown library %q", name)
		}
		prefix := lib.Prefix
		if r.Bool(obfuscation) {
			// An obfuscator renames the tree to opaque single letters.
			prefix = fmt.Sprintf("%c/%c/%c", 'a'+r.IntN(26), 'a'+r.IntN(26), 'a'+r.IntN(26))
		}
		n := r.IntBetween(3, 8)
		for i := 0; i < n; i++ {
			a.Classes = append(a.Classes, fmt.Sprintf("%s/%s", prefix, classStems[r.IntN(len(classStems))]))
		}
	}
	sort.Strings(a.Classes)
	return a, nil
}

// DetectLibraries returns the catalog libraries whose class-path signature
// appears in the APK, sorted by name.
func DetectLibraries(a APK) []Library {
	var found []Library
	for _, lib := range Catalog {
		prefix := lib.Prefix + "/"
		for _, c := range a.Classes {
			if strings.HasPrefix(c, prefix) {
				found = append(found, lib)
				break
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].Name < found[j].Name })
	return found
}

// CountAdLibraries returns the number of unique advertising SDKs detected
// in the APK — the quantity on Figure 6's x-axis.
func CountAdLibraries(a APK) int {
	n := 0
	for _, lib := range DetectLibraries(a) {
		if lib.Ad {
			n++
		}
	}
	return n
}

// Binary container format:
//
//	magic "SAPK" | u16 version | u16 pkgLen | pkg |
//	u32 classCount | { u16 len | class }*
var (
	magic = []byte("SAPK")
	// ErrBadFormat is returned for malformed APK blobs.
	ErrBadFormat = errors.New("apk: malformed container")
)

const formatVersion = 1

// Encode serializes the APK to its binary container.
func Encode(a APK) []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	binary.Write(&buf, binary.BigEndian, uint16(formatVersion))
	binary.Write(&buf, binary.BigEndian, uint16(len(a.Package)))
	buf.WriteString(a.Package)
	binary.Write(&buf, binary.BigEndian, uint32(len(a.Classes)))
	for _, c := range a.Classes {
		binary.Write(&buf, binary.BigEndian, uint16(len(c)))
		buf.WriteString(c)
	}
	return buf.Bytes()
}

// Decode parses a binary APK container.
func Decode(b []byte) (APK, error) {
	r := bytes.NewReader(b)
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, magic) {
		return APK{}, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	var version uint16
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return APK{}, fmt.Errorf("%w: truncated version", ErrBadFormat)
	}
	if version != formatVersion {
		return APK{}, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	pkg, err := readString16(r)
	if err != nil {
		return APK{}, err
	}
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return APK{}, fmt.Errorf("%w: truncated class count", ErrBadFormat)
	}
	if count > 1<<20 {
		return APK{}, fmt.Errorf("%w: implausible class count %d", ErrBadFormat, count)
	}
	a := APK{Package: pkg, Classes: make([]string, 0, count)}
	for i := uint32(0); i < count; i++ {
		c, err := readString16(r)
		if err != nil {
			return APK{}, err
		}
		a.Classes = append(a.Classes, c)
	}
	return a, nil
}

func readString16(r *bytes.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", fmt.Errorf("%w: truncated string length", ErrBadFormat)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrBadFormat)
	}
	return string(b), nil
}
