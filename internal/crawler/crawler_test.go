package crawler

import (
	"net/http/httptest"
	"testing"

	"repro/internal/apk"
	"repro/internal/dates"
	"repro/internal/playapi"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// fixture: a store with two apps whose activity we script day by day.
type fixture struct {
	store *playstore.Store
	srv   *httptest.Server
	crawl *Crawler
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	store := playstore.New(dates.StudyStart)
	store.AddDeveloper(playstore.Developer{ID: "d", Name: "Dev Co", Country: "USA"})
	for _, pkg := range []string{"app.growing", "app.static"} {
		if err := store.Publish(playstore.Listing{
			Package: pkg, Title: pkg, Genre: "Puzzle", Developer: "d",
			Released: dates.StudyStart.AddDays(-100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	store.SeedInstalls("app.growing", 450) // bin 100, close to 500 boundary
	store.SeedInstalls("app.static", 2000) // bin 1,000

	a, err := apk.Build(randx.New(9), "app.growing", []string{"AppLovin", "Vungle"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(playapi.New(store, map[string]apk.APK{"app.growing": a}).Handler())
	t.Cleanup(srv.Close)
	return &fixture{
		store: store,
		srv:   srv,
		crawl: New(srv.URL, []string{"app.growing", "app.static"}),
	}
}

// runDays steps the store n days; installsPerDay installs land on
// app.growing each day.
func (f *fixture) runDays(t *testing.T, n int, installsPerDay int) {
	t.Helper()
	for i := 0; i < n; i++ {
		day := dates.StudyStart.AddDays(i)
		for j := 0; j < installsPerDay; j++ {
			if err := f.store.RecordInstall("app.growing", playstore.Install{Day: day, Source: playstore.SourceReferral}); err != nil {
				t.Fatal(err)
			}
		}
		f.store.StepDay(day)
		if err := f.crawl.MaybeCrawl(day); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrawlEveryOtherDay(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 10, 0)
	days := f.crawl.Dataset().Days()
	if len(days) != 5 {
		t.Fatalf("crawl days = %d, want 5 (every other day over 10)", len(days))
	}
	for i := 1; i < len(days); i++ {
		if days[i].DaysSince(days[i-1]) != 2 {
			t.Errorf("crawl gap = %d days, want 2", days[i].DaysSince(days[i-1]))
		}
	}
}

func TestBinIncreaseDetection(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 10, 20) // +200 installs over 10 days: 450 -> 650 crosses 500
	ds := f.crawl.Dataset()
	w := dates.Range{Start: dates.StudyStart, End: dates.StudyStart.AddDays(9)}
	if !ds.BinIncreased("app.growing", w) {
		t.Error("growing app's bin increase not detected")
	}
	if ds.BinIncreased("app.static", w) {
		t.Error("static app should not show an increase")
	}
}

func TestBinSeriesAndAround(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 6, 20)
	ds := f.crawl.Dataset()
	series := ds.BinSeries("app.growing")
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3", len(series))
	}
	bin, ok := ds.BinAround("app.growing", dates.StudyStart)
	if !ok || bin != 100 {
		t.Errorf("initial bin = %d (ok=%v), want 100", bin, ok)
	}
	// Day between crawls resolves to the previous crawl.
	bin, ok = ds.BinAround("app.growing", dates.StudyStart.AddDays(3))
	if !ok || bin != series[1].Bin {
		t.Errorf("interpolated bin = %d, want %d", bin, series[1].Bin)
	}
	if _, ok := ds.BinAround("never.crawled", dates.StudyStart); ok {
		t.Error("uncrawled app should miss")
	}
}

func TestBinEverDecreased(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 4, 0)
	// Simulate enforcement: drop the count below the current bin.
	f.store.SeedInstalls("app.growing", 90)
	f.runDays(t, 2, 0) // continues days 4-5; crawl happens on day 4
	ds := f.crawl.Dataset()
	if !ds.BinEverDecreased("app.growing") {
		t.Error("bin decrease not detected")
	}
	if ds.BinEverDecreased("app.static") {
		t.Error("static app should show no decrease")
	}
}

func TestChartPresence(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 4, 50) // growing app charts via install velocity
	ds := f.crawl.Dataset()
	day := ds.Days()[1]
	if !ds.InAnyChartOn(day, "app.growing") {
		t.Error("growing app should chart")
	}
	if rank := ds.RankOn(playstore.ChartTopGames, day, "app.growing"); rank == 0 {
		t.Error("growing puzzle app should be in top-games")
	}
	if ds.RankOn("no-chart", day, "app.growing") != 0 {
		t.Error("unknown chart should rank 0")
	}
	w := dates.Range{Start: dates.StudyStart, End: dates.StudyStart.AddDays(3)}
	if !ds.InAnyChartDuring(w, "app.growing") {
		t.Error("InAnyChartDuring should find the app")
	}
}

func TestRankSeriesShape(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 8, 30)
	ds := f.crawl.Dataset()
	series := ds.RankSeries(playstore.ChartTopGames, "app.growing")
	if len(series) != len(ds.Days()) {
		t.Fatalf("series length = %d, want %d", len(series), len(ds.Days()))
	}
	nonzero := 0
	for _, p := range series {
		if p.Rank > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("rank series has no presence")
	}
}

func TestProfileMetadata(t *testing.T) {
	f := newFixture(t)
	f.runDays(t, 2, 0)
	doc, ok := f.crawl.Dataset().Profile("app.growing")
	if !ok {
		t.Fatal("profile missing")
	}
	if doc.Genre != "Puzzle" || doc.DeveloperName != "Dev Co" {
		t.Errorf("profile = %+v", doc)
	}
}

func TestDownloadAPK(t *testing.T) {
	f := newFixture(t)
	a, err := f.crawl.DownloadAPK("app.growing")
	if err != nil {
		t.Fatal(err)
	}
	if got := apk.CountAdLibraries(a); got != 2 {
		t.Errorf("ad libs = %d, want 2", got)
	}
	if _, err := f.crawl.DownloadAPK("app.static"); err == nil {
		t.Error("missing APK should error")
	}
}

func TestCrawlErrorPropagates(t *testing.T) {
	c := New("http://127.0.0.1:1", []string{"x"})
	if err := c.CrawlNow(dates.StudyStart); err == nil {
		t.Error("unreachable store should error")
	}
}
