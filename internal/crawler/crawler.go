// Package crawler implements the paper's longitudinal Play Store crawl: it
// fetches app profiles and top charts over HTTP every other day from March
// to June, accumulating the install-bin time series and chart-presence
// history that the impact analyses (Tables 5-6, Figure 5) consume, and
// downloads APKs for static analysis (Figure 6).
package crawler

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/apk"
	"repro/internal/dates"
	"repro/internal/playapi"
	"repro/internal/playstore"
)

// BinSnapshot is one observation of an app's public install bin.
type BinSnapshot struct {
	Day dates.Date
	Bin int64
}

// Dataset is the accumulated crawl.
type Dataset struct {
	mu sync.RWMutex
	// Profiles holds the most recent profile document per package.
	profiles map[string]playapi.ProfileDoc
	// bins holds the install-bin time series per package, in crawl order.
	bins map[string][]BinSnapshot
	// charts: chart name -> day -> package -> rank.
	charts map[string]map[dates.Date]map[string]int
	// days crawled, in order.
	days []dates.Date
}

func newDataset() *Dataset {
	return &Dataset{
		profiles: map[string]playapi.ProfileDoc{},
		bins:     map[string][]BinSnapshot{},
		charts:   map[string]map[dates.Date]map[string]int{},
	}
}

// Crawler drives the periodic crawl.
type Crawler struct {
	// BaseURL of the store's HTTP surface.
	BaseURL string
	// Client issues requests; nil means http.DefaultClient.
	Client *http.Client
	// EveryDays is the crawl period (paper: every other day => 2).
	EveryDays int

	targets []string
	data    *Dataset
	started *dates.Date
}

// New returns a crawler for the given targets (advertised + baseline app
// packages).
func New(baseURL string, targets []string) *Crawler {
	return &Crawler{
		BaseURL:   baseURL,
		EveryDays: 2,
		targets:   append([]string(nil), targets...),
		data:      newDataset(),
	}
}

func (c *Crawler) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// MaybeCrawl runs a crawl if the day falls on the crawler's period; it is
// designed to be called from the simulation's per-day hook.
func (c *Crawler) MaybeCrawl(day dates.Date) error {
	if c.started == nil {
		d := day
		c.started = &d
	}
	if day.DaysSince(*c.started)%c.EveryDays != 0 {
		return nil
	}
	return c.CrawlNow(day)
}

// CrawlNow unconditionally crawls all targets and charts for the day.
func (c *Crawler) CrawlNow(day dates.Date) error {
	for _, pkg := range c.targets {
		doc, err := c.fetchProfile(pkg)
		if err != nil {
			return fmt.Errorf("crawler: profile %s: %w", pkg, err)
		}
		c.data.mu.Lock()
		c.data.profiles[pkg] = doc
		c.data.bins[pkg] = append(c.data.bins[pkg], BinSnapshot{Day: day, Bin: doc.InstallBin})
		c.data.mu.Unlock()
	}
	for _, chart := range playstore.ChartNames {
		doc, err := c.fetchChart(chart, day)
		if err != nil {
			return fmt.Errorf("crawler: chart %s: %w", chart, err)
		}
		ranks := make(map[string]int, len(doc.Entries))
		for _, e := range doc.Entries {
			ranks[e.Package] = e.Rank
		}
		c.data.mu.Lock()
		byDay, ok := c.data.charts[chart]
		if !ok {
			byDay = map[dates.Date]map[string]int{}
			c.data.charts[chart] = byDay
		}
		byDay[day] = ranks
		c.data.mu.Unlock()
	}
	c.data.mu.Lock()
	c.data.days = append(c.data.days, day)
	c.data.mu.Unlock()
	return nil
}

func (c *Crawler) fetchProfile(pkg string) (playapi.ProfileDoc, error) {
	var doc playapi.ProfileDoc
	err := c.getJSON(c.BaseURL+"/apps/"+pkg, &doc)
	return doc, err
}

func (c *Crawler) fetchChart(name string, day dates.Date) (playapi.ChartDoc, error) {
	var doc playapi.ChartDoc
	err := c.getJSON(fmt.Sprintf("%s/charts/%s?day=%d", c.BaseURL, name, int(day)), &doc)
	return doc, err
}

// DownloadAPK fetches and parses an app's APK for static analysis.
func (c *Crawler) DownloadAPK(pkg string) (apk.APK, error) {
	resp, err := c.client().Get(c.BaseURL + "/apks/" + pkg)
	if err != nil {
		return apk.APK{}, fmt.Errorf("crawler: apk %s: %w", pkg, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apk.APK{}, fmt.Errorf("crawler: apk %s: status %d", pkg, resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return apk.APK{}, fmt.Errorf("crawler: apk %s: %w", pkg, err)
	}
	return apk.Decode(blob)
}

func (c *Crawler) getJSON(url string, v any) error {
	resp, err := c.client().Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d for %s", resp.StatusCode, url)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Dataset returns the accumulated observations.
func (c *Crawler) Dataset() *Dataset { return c.data }

// Days returns the crawl days in order.
func (d *Dataset) Days() []dates.Date {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]dates.Date(nil), d.days...)
}

// Profile returns the latest profile for a package.
func (d *Dataset) Profile(pkg string) (playapi.ProfileDoc, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	doc, ok := d.profiles[pkg]
	return doc, ok
}

// BinSeries returns the install-bin observations for a package.
func (d *Dataset) BinSeries(pkg string) []BinSnapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]BinSnapshot(nil), d.bins[pkg]...)
}

// BinAround returns the observed bin at the crawl nearest to (at or
// before) the given day; ok is false when no observation precedes it.
func (d *Dataset) BinAround(pkg string, day dates.Date) (int64, bool) {
	series := d.BinSeries(pkg)
	if len(series) == 0 {
		return 0, false
	}
	i := sort.Search(len(series), func(i int) bool { return series[i].Day > day })
	if i == 0 {
		// No crawl at or before the day: fall back to the first
		// observation (the campaign may start before our first crawl).
		return series[0].Bin, true
	}
	return series[i-1].Bin, true
}

// BinIncreased reports whether the public install bin grew between the
// start and end of a window (Table 5's per-app outcome).
func (d *Dataset) BinIncreased(pkg string, w dates.Range) bool {
	start, ok1 := d.BinAround(pkg, w.Start)
	end, ok2 := d.BinAround(pkg, w.End)
	return ok1 && ok2 && end > start
}

// BinEverDecreased reports whether any consecutive pair of observations
// shows a drop — the enforcement signal of Section 5.2.
func (d *Dataset) BinEverDecreased(pkg string) bool {
	series := d.BinSeries(pkg)
	for i := 1; i < len(series); i++ {
		if series[i].Bin < series[i-1].Bin {
			return true
		}
	}
	return false
}

// RankOn returns an app's rank in a chart on a crawled day (0 = absent).
func (d *Dataset) RankOn(chart string, day dates.Date, pkg string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	byDay, ok := d.charts[chart]
	if !ok {
		return 0
	}
	return byDay[day][pkg]
}

// InAnyChartOn reports whether the app appears in any chart on the crawled
// day.
func (d *Dataset) InAnyChartOn(day dates.Date, pkg string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, byDay := range d.charts {
		if byDay[day][pkg] > 0 {
			return true
		}
	}
	return false
}

// InAnyChartDuring reports whether the app appears in any chart on any
// crawled day within the window.
func (d *Dataset) InAnyChartDuring(w dates.Range, pkg string) bool {
	for _, day := range d.Days() {
		if !w.Contains(day) {
			continue
		}
		if d.InAnyChartOn(day, pkg) {
			return true
		}
	}
	return false
}

// RankSeries returns (day, rank) points for an app in a chart across all
// crawled days; absent days carry rank 0. This is Figure 5's raw series.
func (d *Dataset) RankSeries(chart, pkg string) []RankPoint {
	var out []RankPoint
	for _, day := range d.Days() {
		out = append(out, RankPoint{Day: day, Rank: d.RankOn(chart, day, pkg)})
	}
	return out
}

// RankPoint is one Figure 5 sample.
type RankPoint struct {
	Day  dates.Date
	Rank int
}
