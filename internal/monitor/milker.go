package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/affiliate"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/textgen"
)

// ParseWall attempts to interpret an intercepted record as an offer-wall
// JSON response; ok is false for unrelated traffic.
func ParseWall(rec Record) (iip.WallResponse, bool) {
	if rec.Status != http.StatusOK || !strings.Contains(rec.ContentType, "application/json") {
		return iip.WallResponse{}, false
	}
	var wall iip.WallResponse
	if err := json.Unmarshal(rec.Body, &wall); err != nil {
		return iip.WallResponse{}, false
	}
	if wall.Network == "" || wall.Affiliate == "" {
		return iip.WallResponse{}, false
	}
	return wall, true
}

// Milker runs the full monitoring pipeline: it fuzzes the instrumented
// affiliate apps through the recording proxy from each vantage country,
// parses intercepted walls, normalizes point payouts to USD using the
// affiliate apps' redemption rates, and maintains the deduplicated offer
// dataset.
type Milker struct {
	// Affiliates are the instrumented apps (Table 2).
	Affiliates []*affiliate.App
	// Endpoints maps IIP names to their offer-wall base URLs.
	Endpoints map[string]string
	// Countries are the VPN exit countries (paper: 8).
	Countries []string

	proxy *Proxy
	// client routes through the proxy; one per milker, reused across
	// milking runs for connection pooling.
	client *http.Client

	mu      sync.Mutex
	dataset map[string]*offers.Offer // by offers.Offer.Key()
	// rates maps affiliate package -> points per USD (known from
	// "analyzing affiliate apps", Section 4.1).
	rates map[string]float64
	// milkDays records when milking ran.
	milkDays []dates.Date
}

// NewMilker assembles the infrastructure. Call Close when done.
func NewMilker(affiliates []*affiliate.App, endpoints map[string]string) (*Milker, error) {
	m := &Milker{
		Affiliates: affiliates,
		Endpoints:  endpoints,
		Countries:  append([]string(nil), textgen.MilkerCountries...),
		proxy:      NewProxy(),
		dataset:    map[string]*offers.Offer{},
		rates:      map[string]float64{},
	}
	for _, a := range affiliates {
		m.rates[a.Package] = a.PointsPerUSD
	}
	if _, err := m.proxy.Start(); err != nil {
		return nil, err
	}
	m.client = m.proxy.Client()
	return m, nil
}

// Close tears down the proxy.
func (m *Milker) Close() error { return m.proxy.Stop() }

// MilkDay performs one full milking pass for the given simulated day: the
// UI fuzzer opens every offer-wall tab of every instrumented affiliate app
// from every vantage country, and the proxy's interception records are
// folded into the dataset.
func (m *Milker) MilkDay(day dates.Date) error {
	for _, app := range m.Affiliates {
		for _, tab := range app.Tabs() {
			base, ok := m.Endpoints[tab.IIP]
			if !ok {
				return fmt.Errorf("monitor: no endpoint for IIP %s", tab.IIP)
			}
			for _, country := range m.Countries {
				// The fuzzer only generates stimuli; responses flow
				// back through the proxy where they are recorded.
				if _, err := tab.Load(affiliate.FetchOptions{
					BaseURL: base,
					Country: country,
					Day:     day,
					Client:  m.client,
				}); err != nil {
					return fmt.Errorf("monitor: fuzzing %s/%s (%s): %w", app.Package, tab.IIP, country, err)
				}
			}
		}
	}
	m.ingest(day)
	m.mu.Lock()
	m.milkDays = append(m.milkDays, day)
	m.mu.Unlock()
	return nil
}

// ingest folds the proxy's records into the offer dataset.
func (m *Milker) ingest(day dates.Date) {
	records := m.proxy.DrainRecords()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range records {
		wall, ok := ParseWall(rec)
		if !ok {
			continue
		}
		rate := m.rates[wall.Affiliate]
		for _, wo := range wall.Offers {
			o := offers.Offer{
				ID:          wo.OfferID,
				AppPackage:  wo.AppPackage,
				IIP:         wall.Network,
				Description: wo.Description,
				PayoutUSD:   offers.NormalizePayout(float64(wo.Points), rate),
				FirstSeen:   day,
				LastSeen:    day,
				Countries:   []string{wall.Country},
			}
			key := o.Key()
			existing, ok := m.dataset[key]
			if !ok {
				m.dataset[key] = &o
				continue
			}
			if day < existing.FirstSeen {
				existing.FirstSeen = day
			}
			if day > existing.LastSeen {
				existing.LastSeen = day
			}
			if !containsStr(existing.Countries, wall.Country) {
				existing.Countries = append(existing.Countries, wall.Country)
			}
		}
	}
}

// Offers returns the deduplicated dataset sorted by offer ID.
func (m *Milker) Offers() []offers.Offer {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]offers.Offer, 0, len(m.dataset))
	for _, o := range m.dataset {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MilkDays returns the days on which milking ran.
func (m *Milker) MilkDays() []dates.Date {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]dates.Date(nil), m.milkDays...)
}

// WallMatrix reports, for each instrumented affiliate app, which IIP offer
// walls it integrates — Table 2's checkmark matrix, derived from the
// instrumentation itself.
func (m *Milker) WallMatrix() map[string][]string {
	out := map[string][]string{}
	for _, a := range m.Affiliates {
		out[a.Package] = append([]string(nil), a.IIPs...)
	}
	return out
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
