package monitor

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/affiliate"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/offers"
)

// wallFixture stands up a funded Fyber + ayeT with live campaigns and
// offer-wall servers, plus a milker wired to them.
type wallFixture struct {
	fyber *iip.Platform
	ayet  *iip.Platform
	milk  *Milker
}

func newWallFixture(t *testing.T) *wallFixture {
	t.Helper()
	platforms := iip.StandardPlatforms()
	fyber, ayet := platforms[iip.Fyber], platforms[iip.AyetStudios]

	if err := fyber.RegisterDeveloper("dev", iip.Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := fyber.Deposit("dev", 1e5); err != nil {
		t.Fatal(err)
	}
	if err := ayet.RegisterDeveloper("dev", iip.Documentation{}); err != nil {
		t.Fatal(err)
	}
	if err := ayet.Deposit("dev", 1e5); err != nil {
		t.Fatal(err)
	}

	window := dates.Range{Start: dates.StudyStart, End: dates.StudyEnd}
	mustLaunch := func(p *iip.Platform, pkg, desc string, tp offers.Type, payout float64) {
		t.Helper()
		if _, err := p.LaunchCampaign(iip.CampaignSpec{
			Developer: "dev", AppPackage: pkg, Description: desc,
			Type: tp, UserPayoutUSD: payout, Target: 1000, Window: window,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustLaunch(fyber, "com.adv.one", "Install and Register", offers.Registration, 0.34)
	mustLaunch(fyber, "com.adv.two", "Install and Reach level 10", offers.Usage, 0.50)
	mustLaunch(ayet, "com.adv.three", "Install and Launch", offers.NoActivity, 0.05)

	apps := affiliate.StandardAffiliates()
	rates := map[string]float64{}
	for _, a := range apps {
		rates[a.Package] = a.PointsPerUSD
	}
	fyberSrv := httptest.NewServer(iip.NewServer(fyber, rates).Handler())
	ayetSrv := httptest.NewServer(iip.NewServer(ayet, rates).Handler())
	t.Cleanup(fyberSrv.Close)
	t.Cleanup(ayetSrv.Close)

	// Restrict the milker to apps integrating only these two IIPs so
	// every tab has an endpoint.
	var insts []*affiliate.App
	for _, a := range apps {
		ok := true
		for _, n := range a.IIPs {
			if n != iip.Fyber && n != iip.AyetStudios {
				ok = false
			}
		}
		if ok {
			insts = append(insts, a)
		}
	}
	if len(insts) == 0 {
		t.Fatal("no affiliates usable in fixture")
	}
	milk, err := NewMilker(insts, map[string]string{
		iip.Fyber:       fyberSrv.URL,
		iip.AyetStudios: ayetSrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { milk.Close() })
	return &wallFixture{fyber: fyber, ayet: ayet, milk: milk}
}

func TestProxyRecordsTraffic(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "hello")
	}))
	defer upstream.Close()

	p := NewProxy()
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	resp, err := p.Client().Get(upstream.URL + "/path?x=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Errorf("relayed body = %q", body)
	}
	recs := p.DrainRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if recs[0].Status != 200 || string(recs[0].Body) != "hello" {
		t.Errorf("record = %+v", recs[0])
	}
	if p.NumRecords() != 0 {
		t.Error("drain should clear the buffer")
	}
}

func TestProxyRejectsNonProxyRequests(t *testing.T) {
	p := NewProxy()
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	// Direct (non-proxied) request has a relative URL.
	resp, err := http.Get("http://" + addr + "/whatever")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestProxyUpstreamFailure(t *testing.T) {
	p := NewProxy()
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	resp, err := p.Client().Get("http://127.0.0.1:1/down")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestParseWall(t *testing.T) {
	good := Record{
		Status:      200,
		ContentType: "application/json",
		Body:        []byte(`{"network":"Fyber","affiliate":"a.b.c","country":"USA","offers":[]}`),
	}
	if _, ok := ParseWall(good); !ok {
		t.Error("valid wall not parsed")
	}
	cases := []Record{
		{Status: 403, ContentType: "application/json", Body: good.Body},
		{Status: 200, ContentType: "text/html", Body: good.Body},
		{Status: 200, ContentType: "application/json", Body: []byte("{bad")},
		{Status: 200, ContentType: "application/json", Body: []byte(`{"offers":[]}`)},
	}
	for i, rec := range cases {
		if _, ok := ParseWall(rec); ok {
			t.Errorf("case %d: non-wall record parsed as wall", i)
		}
	}
}

func TestMilkDayBuildsDataset(t *testing.T) {
	f := newWallFixture(t)
	if err := f.milk.MilkDay(dates.StudyStart); err != nil {
		t.Fatal(err)
	}
	got := f.milk.Offers()
	if len(got) != 3 {
		t.Fatalf("offers = %d, want 3 (dedup across apps/countries)", len(got))
	}
	byPkg := map[string]offers.Offer{}
	for _, o := range got {
		byPkg[o.AppPackage] = o
	}
	reg := byPkg["com.adv.one"]
	if reg.IIP != iip.Fyber || reg.Description != "Install and Register" {
		t.Errorf("offer = %+v", reg)
	}
	// Payout normalization: points back to USD regardless of affiliate.
	if diff := reg.PayoutUSD - 0.34; diff > 0.02 || diff < -0.02 {
		t.Errorf("normalized payout = %.4f, want ~0.34", reg.PayoutUSD)
	}
	// Countries accumulate across vantage points.
	if len(reg.Countries) != len(f.milk.Countries) {
		t.Errorf("countries = %v", reg.Countries)
	}
}

func TestMilkWindowTracking(t *testing.T) {
	f := newWallFixture(t)
	d0, d1 := dates.StudyStart, dates.StudyStart.AddDays(4)
	if err := f.milk.MilkDay(d0); err != nil {
		t.Fatal(err)
	}
	if err := f.milk.MilkDay(d1); err != nil {
		t.Fatal(err)
	}
	for _, o := range f.milk.Offers() {
		if o.FirstSeen != d0 || o.LastSeen != d1 {
			t.Errorf("window = %v..%v, want %v..%v", o.FirstSeen, o.LastSeen, d0, d1)
		}
	}
	if days := f.milk.MilkDays(); len(days) != 2 {
		t.Errorf("milk days = %v", days)
	}
}

func TestMilkerMissingEndpoint(t *testing.T) {
	apps := affiliate.StandardAffiliates()
	m, err := NewMilker(apps[:1], map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.MilkDay(dates.StudyStart); err == nil {
		t.Error("missing endpoint should error")
	}
}

func TestWallMatrix(t *testing.T) {
	f := newWallFixture(t)
	matrix := f.milk.WallMatrix()
	if len(matrix) != len(f.milk.Affiliates) {
		t.Errorf("matrix rows = %d", len(matrix))
	}
	for pkg, walls := range matrix {
		if len(walls) == 0 {
			t.Errorf("%s integrates no walls", pkg)
		}
	}
}
