// Package monitor implements the paper's IIP monitoring infrastructure
// (Figure 3): a UI fuzzer that drives affiliate apps' offer-wall tabs, a
// recording man-in-the-middle HTTP proxy that intercepts the resulting
// offer-wall traffic, and a milker that runs the fuzzer from multiple
// vantage countries and assembles the deduplicated offer dataset with
// payouts normalized to USD.
//
// The real study decrypted TLS with mitmproxy and a self-signed CA; the
// simulated walls speak plain HTTP, so the proxy here records forwarded
// requests directly — the architecture (stimulus generation decoupled from
// traffic interception) is identical.
package monitor

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Record is one intercepted request/response pair.
type Record struct {
	URL         string
	Status      int
	ContentType string
	Body        []byte
}

// Proxy is a recording forward HTTP proxy.
type Proxy struct {
	mu      sync.Mutex
	records []Record

	server   *http.Server
	listener net.Listener
	outbound *http.Transport
}

// NewProxy returns an unstarted proxy.
func NewProxy() *Proxy {
	return &Proxy{outbound: &http.Transport{MaxIdleConnsPerHost: 16}}
}

// Start binds the proxy to a loopback port. Call Stop when done.
func (p *Proxy) Start() (addr string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("monitor: starting proxy: %w", err)
	}
	p.listener = ln
	p.server = &http.Server{Handler: http.HandlerFunc(p.serve), ReadHeaderTimeout: 5 * time.Second}
	go p.server.Serve(ln) //nolint:errcheck // Serve returns on Stop
	return ln.Addr().String(), nil
}

// Stop shuts the proxy down.
func (p *Proxy) Stop() error {
	if p.server == nil {
		return nil
	}
	return p.server.Close()
}

// Client returns an HTTP client routing through the proxy — the Android
// phone's proxy-configured network stack in the paper's setup.
func (p *Proxy) Client() *http.Client {
	proxyURL := &url.URL{Scheme: "http", Host: p.listener.Addr().String()}
	return &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)},
		Timeout:   10 * time.Second,
	}
}

// serve handles one proxied request: forward upstream, record, relay back.
func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	if !r.URL.IsAbs() {
		http.Error(w, "proxy expects absolute-URI requests", http.StatusBadRequest)
		return
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, r.URL.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := p.outbound.RoundTrip(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	p.mu.Lock()
	p.records = append(p.records, Record{
		URL:         r.URL.String(),
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	})
	p.mu.Unlock()

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(bytes.NewBuffer(body).Bytes())
}

// DrainRecords returns all accumulated records and clears the buffer.
func (p *Proxy) DrainRecords() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.records
	p.records = nil
	return out
}

// NumRecords returns the number of buffered records.
func (p *Proxy) NumRecords() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.records)
}
