package stream

import (
	"repro/internal/obs"
)

// WriterMetrics instruments a run-log Writer: byte/frame throughput,
// batch coalescing, and day-barrier flush latency. All fields are
// nil-safe obs handles, and the hooks fire only on paths that already
// perform I/O — attaching metrics never changes the bytes written, and
// a Writer without metrics pays a single nil check per write.
type WriterMetrics struct {
	// Bytes counts every byte that reaches the underlying writer,
	// preamble included (mirrors Writer.Offset growth).
	Bytes *obs.Counter
	// FrameWrites counts frame-granularity writes: one per single-frame
	// record (day markers, charts, enforcement, day-end) plus the
	// preamble flush.
	FrameWrites *obs.Counter
	// BatchFrames counts event-batch frames; BatchBuffers counts the
	// per-unit encoder buffers coalesced into them. BatchBuffers over
	// BatchFrames is the day-barrier coalescing ratio.
	BatchFrames  *obs.Counter
	BatchBuffers *obs.Counter
	// BatchRecords counts the event records carried inside batch frames
	// (reported by the engine via AddBatchRecords; the writer itself
	// never parses its payloads).
	BatchRecords *obs.Counter
	// Flushes counts Flush calls (the day-barrier durability point);
	// FlushSeconds is their latency.
	Flushes      *obs.Counter
	FlushSeconds *obs.Histogram
}

// NewWriterMetrics registers the run-log writer metrics in reg (nil reg
// returns nil, which every hook treats as "off").
func NewWriterMetrics(reg *obs.Registry) *WriterMetrics {
	if reg == nil {
		return nil
	}
	return &WriterMetrics{
		Bytes:        reg.Counter("runlog_bytes_total", "run-log bytes written, preamble included"),
		FrameWrites:  reg.Counter("runlog_frame_writes_total", "single-frame run-log writes (markers, charts, day-end, preamble)"),
		BatchFrames:  reg.Counter("runlog_batch_frames_total", "event-batch frames written at day barriers"),
		BatchBuffers: reg.Counter("runlog_batch_buffers_total", "per-unit encoder buffers coalesced into batch frames"),
		BatchRecords: reg.Counter("runlog_batch_records_total", "event records carried inside batch frames"),
		Flushes:      reg.Counter("runlog_flushes_total", "run-log flushes (day-barrier durability points)"),
		FlushSeconds: reg.Histogram("runlog_flush_seconds", "run-log flush latency", nil),
	}
}

// AddBatchRecords accrues engine-reported event-record counts (nil-safe).
func (m *WriterMetrics) AddBatchRecords(n int64) {
	if m == nil {
		return
	}
	m.BatchRecords.Add(n)
}
