package stream

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/dates"
)

// FrameCorruption locates the first undecodable frame of a damaged run
// log: the byte offset of its header, the kind byte it claims, and what
// was wrong with it. A merely truncated log (clean kill mid-write) has no
// corruption — its tail is simply incomplete.
type FrameCorruption struct {
	Offset int64
	Kind   Kind
	Err    error
}

func (c *FrameCorruption) Error() string {
	return fmt.Sprintf("corrupt %s frame at byte %d: %v", c.Kind, c.Offset, c.Err)
}

func (c *FrameCorruption) Unwrap() error { return c.Err }

// RecoverInfo is the salvage report of a damaged log: how much of it is
// trustworthy and where a resumed consumer should pick up.
type RecoverInfo struct {
	// Days counts complete days in the salvaged prefix; LastDay is the
	// final one (valid when Days > 0) — the resume point.
	Days    int
	LastDay dates.Date
	// ValidEnd is the end of the salvaged prefix: the byte offset just
	// after the last complete day's final frame (its day-end frame, plus
	// a complete segment index frame when one follows immediately).
	// Truncating the log here leaves a prefix ScanIndex and Replay accept.
	ValidEnd int64
	// ScannedEnd is where the forward scan stopped: the input size for a
	// fully intact log, the torn frame's start for a truncated one, the
	// corruption offset otherwise.
	ScannedEnd int64
	// Size is the input size; Size - ValidEnd is what salvage drops.
	Size int64
	// Corruption describes the first undecodable frame, nil when the log
	// is intact or only truncated mid-frame.
	Corruption *FrameCorruption
}

// Dropped returns the bytes a salvage would discard.
func (ri RecoverInfo) Dropped() int64 { return ri.Size - ri.ValidEnd }

// ScanValid walks a run log front to back, CRC-verifying every frame in
// full, and reports the longest prefix ending at a day boundary. Unlike
// ScanIndex — which probes only frame headers and fails outright on a
// torn tail — ScanValid is built for damaged input: it never trusts
// bytes past the first corrupt or incomplete frame, so a salvage can
// never resurrect data written after a fault. The error is non-nil only
// when the preamble (magic, header, base snapshot) is unreadable, i.e.
// nothing is salvageable.
func ScanValid(r io.ReaderAt, size int64) (RecoverInfo, error) {
	info := RecoverInfo{Size: size}
	t := NewTail(r)
	if err := t.start(); err != nil {
		if c := asCorruption(int64(len(Magic)), 0, err); c != nil {
			info.Corruption = c
		}
		return info, fmt.Errorf("stream: unsalvageable log (bad preamble): %w", err)
	}
	if !t.started {
		return info, fmt.Errorf("%w: log preamble incomplete", ErrFrame)
	}
	// An intact preamble with no days yet salvages to the preamble end: a
	// fresh run restarts from day one on a truncated-but-valid file.
	info.ValidEnd, info.ScannedEnd = t.off, t.off
	off := t.off
	st := validScanState{info: &info, devices: t.base.Devices, strings: t.base.Strings}
	for off < size {
		k, payload, next, ok, err := t.peekFrame(off)
		info.ScannedEnd = off
		if err != nil {
			if c := asCorruption(off, k, err); c != nil {
				if c.Kind == 0 {
					// peekFrame zeroes the kind on error; report what the
					// frame header claims.
					var kb [1]byte
					if n, _ := r.ReadAt(kb[:], off); n == 1 {
						c.Kind = Kind(kb[0])
					}
				}
				info.Corruption = c
			}
			return info, nil
		}
		if !ok {
			// Torn tail: the frame's bytes run past the input.
			return info, nil
		}
		if c := st.frame(off, next, k, payload); c != nil {
			info.Corruption = c
			return info, nil
		}
		off = next
	}
	info.ScannedEnd = off
	return info, nil
}

// validScanState applies ScanValid's per-frame checks: every payload must
// decode against the log's own tables, and the day structure must hold
// (events only inside a day-start..day-end bracket, exactly as the
// engine emits and Replay requires) — a frame whose CRC happens to check
// but whose content could not have been written by a sane run is
// corruption, not salvage material.
type validScanState struct {
	info    *RecoverInfo
	devices []string
	strings []string
	ev      Event
	day     dates.Date
	inDay   bool
	// sawDayEnd marks that the frame being checked closed a day; the
	// valid prefix then extends to that frame's end.
	sawDayEnd bool
}

func (st *validScanState) frame(off, next int64, k Kind, payload []byte) *FrameCorruption {
	bad := func(err error) *FrameCorruption {
		if c := asCorruption(off, k, err); c != nil {
			return c
		}
		return &FrameCorruption{Offset: off, Kind: k, Err: err}
	}
	st.sawDayEnd = false
	switch k {
	case KindHeader, KindBase:
		return bad(fmt.Errorf("%w: duplicate %s frame", ErrFrame, k))
	case KindSegment:
		if _, err := decodeSegment(payload); err != nil {
			return bad(err)
		}
		// A segment index frame is written at the day barrier, right
		// after the day-end frame: when it directly extends the valid
		// prefix, keep it (a resumed writer with checkpointed
		// segmentation state continues right after it).
		if !st.inDay && off == st.info.ValidEnd {
			st.info.ValidEnd = next
		}
		return nil
	case KindEventBatch:
		// The batch CRC was verified whole; decode every sub-record so a
		// CRC-updated-but-garbage batch cannot be salvaged.
		for ro := 0; ro < len(payload); {
			rk, rp, rnext, err := parseRecord(payload, ro)
			if err != nil {
				return bad(err)
			}
			if c := st.record(off, rk, rp); c != nil {
				return c
			}
			ro = rnext
		}
	default:
		if c := st.record(off, k, payload); c != nil {
			return c
		}
	}
	if st.sawDayEnd && !st.inDay {
		st.info.ValidEnd = next
	}
	return nil
}

// record checks one event frame or batch sub-record.
func (st *validScanState) record(off int64, k Kind, payload []byte) *FrameCorruption {
	bad := func(err error) *FrameCorruption {
		if c := asCorruption(off, k, err); c != nil {
			return c
		}
		return &FrameCorruption{Offset: off, Kind: k, Err: err}
	}
	if err := decodePayload(k, payload, &st.ev, st.devices, st.strings); err != nil {
		return bad(err)
	}
	switch k {
	case KindDayStart:
		if st.inDay {
			return bad(fmt.Errorf("%w: day %s started before %s ended", ErrFrame, st.ev.Day, st.day))
		}
		st.day, st.inDay = st.ev.Day, true
	case KindDayEnd:
		if !st.inDay || st.ev.Day != st.day {
			return bad(fmt.Errorf("%w: day-end for %s outside day", ErrFrame, st.ev.Day))
		}
		st.inDay = false
		st.sawDayEnd = true
		st.info.Days++
		st.info.LastDay = st.ev.Day
	default:
		if !st.inDay {
			return bad(fmt.Errorf("%w: %s event outside a day", ErrFrame, k))
		}
	}
	return nil
}

// asCorruption wraps a scan error as a located corruption; pure
// truncation (io.EOF family) is not corruption.
func asCorruption(off int64, k Kind, err error) *FrameCorruption {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	return &FrameCorruption{Offset: off, Kind: k, Err: err}
}

// Recover salvages a run log with a torn tail — a partial frame or a
// bad CRC left by a crash mid-write — by truncating the file to the last
// valid day boundary and returning the resume point. The salvaged prefix
// passes ScanIndex, Replay, and Tail unchanged; a worker resuming the
// run pairs it with the matching checkpoint (whose LogOffset is at or
// before the salvaged end, since checkpoints are taken after the day's
// frames are flushed). A log whose preamble is unreadable is not
// salvageable and is left untouched.
func Recover(path string) (RecoverInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return RecoverInfo{}, fmt.Errorf("stream: recovering run log: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return RecoverInfo{}, fmt.Errorf("stream: recovering run log: %w", err)
	}
	info, err := ScanValid(f, fi.Size())
	if err != nil {
		return info, err
	}
	if info.ValidEnd < info.Size {
		if err := f.Truncate(info.ValidEnd); err != nil {
			return info, fmt.Errorf("stream: truncating salvaged log: %w", err)
		}
	}
	return info, nil
}
