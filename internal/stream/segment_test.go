package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/dates"
)

// testHeader/testBase build the minimal preamble the format-level tests
// need (the snapshot blobs are opaque at this layer).
func testHeader() Header {
	return Header{Version: Version, Seed: 7, WindowStart: 1, WindowEnd: 9, MediatorName: "med", FeePerUser: 0.03}
}

func testBase() Base {
	return Base{Store: []byte("s"), Ledger: []byte("l"), Mediator: []byte("m"),
		Devices: []string{"d1", "d2"}, Strings: []string{"com.x", "offer-1"}}
}

// drainReader collects every event kind from a Reader.
func drainReader(t *testing.T, data []byte) []Event {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	for {
		var ev Event
		err := r.Next(&ev)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		ev.Devices = append([]string(nil), ev.Devices...)
		ev.Entries = nil
		out = append(out, ev)
	}
}

// TestEventBatchRoundTrip writes a day through the batched fast path
// (record-mode encoders + Writer.EventBatch) and checks that Reader and
// Tail both deliver the same events, in order, as if each had been its
// own frame.
func TestEventBatchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), testBase())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DayStart(5); err != nil {
		t.Fatal(err)
	}
	var a, b Encoder
	for _, e := range []*Encoder{&a, &b} {
		e.SetDeviceTable(w.DeviceTable())
		e.SetStringTable(w.StringTable())
		e.SetRecordMode(true)
	}
	a.Install("com.x", "d1", 0.5)
	a.Session("com.x", 3, 60)
	b.Click("offer-1", "d2")
	b.Settle("offer-1", 2, true, 1.0, 0.3, 0.06, "dev:a", "iip:b", "aff:c", "user:d")
	if err := w.EventBatch(a.Bytes(), b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.DayEnd(5, 1, 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if w.Offset() != int64(buf.Len()) {
		t.Fatalf("writer offset %d, file has %d bytes", w.Offset(), buf.Len())
	}

	wantKinds := []Kind{KindDayStart, KindInstall, KindSession, KindClick, KindSettle, KindDayEnd}
	evs := drainReader(t, buf.Bytes())
	if len(evs) != len(wantKinds) {
		t.Fatalf("reader saw %d events, want %d", len(evs), len(wantKinds))
	}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d is %s, want %s", i, ev.Kind, wantKinds[i])
		}
	}
	if evs[1].Pkg != "com.x" || evs[1].Device != "d1" || evs[1].Fraud != 0.5 {
		t.Errorf("install decoded as %+v", evs[1])
	}
	if evs[4].Offer != "offer-1" || evs[4].N != 2 || !evs[4].Batch || evs[4].UserPayout != 0.06 {
		t.Errorf("settle decoded as %+v", evs[4])
	}

	tail := NewTail(bytes.NewReader(buf.Bytes()))
	var got []Kind
	var ev Event
	for {
		ok, err := tail.Next(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, ev.Kind)
	}
	if fmt.Sprint(got) != fmt.Sprint(wantKinds) {
		t.Fatalf("tail saw %v, want %v", got, wantKinds)
	}
	if tail.Offset() != int64(buf.Len()) {
		t.Errorf("tail offset %d, want %d", tail.Offset(), buf.Len())
	}
}

// TestBatchRecordLongPayload exercises the record-mode length backpatch
// for payloads at and beyond the 1-byte uvarint limit (the shift path):
// an install batch with enough inline devices crosses 128 bytes.
func TestBatchRecordLongPayload(t *testing.T) {
	var enc Encoder
	enc.SetRecordMode(true)
	devices := make([]string, 40)
	for i := range devices {
		devices[i] = fmt.Sprintf("inline-device-%03d", i)
	}
	enc.InstallBatch("com.big", 0.25, len(devices), func(i int) string { return devices[i] })
	enc.Install("com.big", "x", 1) // a short record right after the shifted one

	k, payload, next, err := parseRecord(enc.Bytes(), 0)
	if err != nil || k != KindInstallBatch {
		t.Fatalf("parseRecord = %s, %v", k, err)
	}
	if len(payload) < 0x80 {
		t.Fatalf("test payload only %d bytes; need >= 128 to cover the shift path", len(payload))
	}
	var ev Event
	if err := decodePayload(k, payload, &ev, nil, nil); err != nil {
		t.Fatal(err)
	}
	if int(ev.N) != len(devices) || ev.Devices[39] != devices[39] {
		t.Fatalf("install batch decoded as n=%d", ev.N)
	}
	if k, payload, _, err = parseRecord(enc.Bytes(), next); err != nil || k != KindInstall {
		t.Fatalf("record after shifted one: %s, %v", k, err)
	}
	if err := decodePayload(k, payload, &ev, nil, nil); err != nil {
		t.Fatal(err)
	}
	if ev.Device != "x" {
		t.Fatalf("short record after shift decoded as %+v", ev)
	}
}

// segmentedTestLog writes two days separated by a segment index frame
// carrying an encoded reduced checkpoint, returning the log bytes.
func segmentedTestLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), testBase())
	if err != nil {
		t.Fatal(err)
	}
	day := func(d dates.Date) {
		if err := w.DayStart(d); err != nil {
			t.Fatal(err)
		}
		var u Encoder
		u.SetDeviceTable(w.DeviceTable())
		u.SetStringTable(w.StringTable())
		u.SetRecordMode(true)
		u.Install("com.x", "d1", float64(d))
		u.Click("offer-1", "d2")
		if err := w.EventBatch(u.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := w.DayEnd(d, int64(d), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	day(1)
	cp := &Checkpoint{Day: 1, Days: 1, Store: []byte("s2"), Ledger: []byte("l2")}
	if err := w.StartSegment(2, cp.Encode()); err != nil {
		t.Fatal(err)
	}
	day(2)
	return buf.Bytes()
}

// TestSegmentFrameIndexedAndSkipped checks that segment index frames are
// invisible to Reader/Tail consumers, that ScanIndex recovers the
// segment directory and per-day offsets, and that SeekToDay lands a tail
// on the requested day across a segment boundary.
func TestSegmentFrameIndexedAndSkipped(t *testing.T) {
	data := segmentedTestLog(t)

	evs := drainReader(t, data)
	var kinds []Kind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindDayStart, KindInstall, KindClick, KindDayEnd,
		KindDayStart, KindInstall, KindClick, KindDayEnd}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("reader saw %v, want %v", kinds, want)
	}

	idx, err := ScanIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Segments) != 2 || idx.Segments[0].Ordinal != 0 || idx.Segments[1].Ordinal != 1 {
		t.Fatalf("segments = %+v", idx.Segments)
	}
	if idx.Segments[1].FirstDay != 2 || idx.Segments[1].Checkpoint == nil {
		t.Fatalf("segment 1 = %+v", idx.Segments[1])
	}
	cp, err := DecodeCheckpoint(idx.Segments[1].Checkpoint)
	if err != nil || cp.Day != 1 || string(cp.Store) != "s2" {
		t.Fatalf("embedded checkpoint = %+v, %v", cp, err)
	}
	if len(idx.Days) != 2 || idx.Days[0].Segment != 0 || idx.Days[1].Segment != 1 {
		t.Fatalf("days = %+v", idx.Days)
	}
	if idx.End != int64(len(data)) || idx.Torn {
		t.Fatalf("End=%d Torn=%v, want %d/false", idx.End, idx.Torn, len(data))
	}
	if got := idx.Segment(1); got != 0 {
		t.Errorf("Segment(1) = %d, want 0", got)
	}
	if got := idx.Segment(2); got != 1 {
		t.Errorf("Segment(2) = %d, want 1", got)
	}
	if last, ok := idx.LastDay(); !ok || last != 2 {
		t.Errorf("LastDay = %v, %v", last, ok)
	}

	tail := NewTail(bytes.NewReader(data))
	ok, err := tail.SeekToDay(2)
	if err != nil || !ok {
		t.Fatalf("SeekToDay(2) = %v, %v", ok, err)
	}
	var ev Event
	if ok, err := tail.Next(&ev); !ok || err != nil || ev.Kind != KindDayStart || ev.Day != 2 {
		t.Fatalf("first event after seek = %+v (%v, %v)", ev, ok, err)
	}
	if ok, err := tail.Next(&ev); !ok || err != nil || ev.Kind != KindInstall || ev.Fraud != 2 {
		t.Fatalf("second event after seek = %+v (%v, %v)", ev, ok, err)
	}
	if ok, err := tail.SeekToDay(7); ok || err != nil {
		t.Fatalf("SeekToDay(7) on 2-day log = %v, %v, want false", ok, err)
	}
}

// TestTailNeverDeliversTornBatch feeds the tail every possible prefix of
// a segmented, batched log: it must never error, never deliver a partial
// batch (the frame CRC gates the whole batch), and always deliver a
// prefix of the complete event sequence.
func TestTailNeverDeliversTornBatch(t *testing.T) {
	data := segmentedTestLog(t)
	full := drainReader(t, data)

	for cut := 0; cut <= len(data); cut++ {
		tail := NewTail(bytes.NewReader(data[:cut]))
		var got []Event
		for {
			var ev Event
			ok, err := tail.Next(&ev)
			if err != nil {
				t.Fatalf("cut=%d: tail error %v", cut, err)
			}
			if !ok {
				break
			}
			ev.Devices, ev.Entries = nil, nil
			got = append(got, ev)
		}
		if len(got) > len(full) {
			t.Fatalf("cut=%d: %d events from a %d-event log", cut, len(got), len(full))
		}
		for i := range got {
			if got[i].Kind != full[i].Kind || got[i].Day != full[i].Day || got[i].Fraud != full[i].Fraud {
				t.Fatalf("cut=%d: event %d = %+v, want %+v", cut, i, got[i], full[i])
			}
		}
		// A batch's records become visible all-or-nothing: the install and
		// click of a day share one batch frame, so a prefix may never end
		// between them.
		if len(got) > 0 && got[len(got)-1].Kind == KindInstall {
			t.Fatalf("cut=%d: prefix ends mid-batch (install without its click)", cut)
		}
	}
}

// TestCorruptBatchFrameRejected flips one byte inside a batch frame's
// payload: the whole batch must be rejected by Reader (CRC error) and
// withheld by Tail.
func TestCorruptBatchFrameRejected(t *testing.T) {
	data := segmentedTestLog(t)
	idx, err := ScanIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The batch frame follows the first day-start frame; its payload
	// starts 5 bytes past the frame header.
	dayOff := idx.Days[0].Offset
	tail := NewTail(bytes.NewReader(data))
	_, _, batchOff, ok, err := tail.peekFrame(dayOff)
	if !ok || err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[batchOff+5] ^= 0xFF

	r, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	for err == nil {
		err = r.Next(&ev)
	}
	if !errorsIsCRC(err) {
		t.Fatalf("reader on corrupt batch = %v, want CRC error", err)
	}

	tail = NewTail(bytes.NewReader(corrupt))
	for {
		ok, err := tail.Next(&ev)
		if err != nil {
			if !errorsIsCRC(err) {
				t.Fatalf("tail on corrupt batch = %v, want CRC error", err)
			}
			break
		}
		if !ok {
			t.Fatal("tail silently stopped on corrupt batch, want CRC error")
		}
		if ev.Kind == KindInstall {
			t.Fatal("tail delivered an event from a corrupt batch")
		}
	}
}

func errorsIsCRC(err error) bool { return errors.Is(err, ErrCRC) }

// TestScanIndexTornLog truncates the log mid-frame: the scan must stop at
// the last complete frame and mark the index torn, so seeks on a killed
// run's log work up to the kill point.
func TestScanIndexTornLog(t *testing.T) {
	data := segmentedTestLog(t)
	idx, err := ScanIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lastDayOff := idx.Days[1].Offset
	torn, err := ScanIndex(bytes.NewReader(data[:lastDayOff+3]))
	if err != nil {
		t.Fatal(err)
	}
	if !torn.Torn || torn.End != lastDayOff {
		t.Fatalf("torn scan End=%d Torn=%v, want %d/true", torn.End, torn.Torn, lastDayOff)
	}
	if len(torn.Days) != 1 {
		t.Fatalf("torn scan found %d days, want 1", len(torn.Days))
	}
}

// TestCheckpointSegmentStateRoundTrip covers the v2 checkpoint fields and
// their writer plumbing: RecordSegmentState → Encode → Decode →
// RestoreSegmentState must reproduce the rotation state exactly.
func TestCheckpointSegmentStateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), testBase())
	if err != nil {
		t.Fatal(err)
	}
	w.SetSegmentBytes(10)
	if err := w.DayStart(1); err != nil {
		t.Fatal(err)
	}
	if !w.ShouldRotate() {
		t.Fatal("10-byte threshold not reached after a day-start frame")
	}
	if err := w.StartSegment(2, nil); err != nil {
		t.Fatal(err)
	}
	if w.ShouldRotate() {
		t.Fatal("rotation still pending right after StartSegment")
	}

	cp := &Checkpoint{Day: 1, LogOffset: w.Offset()}
	w.RecordSegmentState(cp)
	decoded, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.SegBytes != 10 || decoded.SegStart != w.Offset() || decoded.SegOrdinal != 1 {
		t.Fatalf("decoded segment state = %d/%d/%d", decoded.SegBytes, decoded.SegStart, decoded.SegOrdinal)
	}

	resumed := ResumeWriter(&bytes.Buffer{}, decoded.LogOffset, nil, nil)
	resumed.RestoreSegmentState(decoded)
	if resumed.ShouldRotate() {
		t.Fatal("resumed writer wants immediate rotation; segment state not restored")
	}
	var probe Checkpoint
	resumed.RecordSegmentState(&probe)
	if probe.SegBytes != 10 || probe.SegStart != decoded.SegStart || probe.SegOrdinal != 1 {
		t.Fatalf("resumed segment state = %d/%d/%d", probe.SegBytes, probe.SegStart, probe.SegOrdinal)
	}
}

// TestReadVersionCompat pins the version window: v2 logs (frame-per-event,
// no batches or segments) still read, and versions outside
// [minReadVersion, Version] are rejected.
func TestReadVersionCompat(t *testing.T) {
	h := testHeader()
	h.Version = 2
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, testBase())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DayStart(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Event(&Event{Kind: KindInstall, Pkg: "com.x", Device: "d1", Fraud: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.DayEnd(3, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Version != 2 {
		t.Fatalf("header version 2 read back as %d", r.Header().Version)
	}
	var kinds []Kind
	for {
		var ev Event
		err := r.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindDayStart, KindInstall, KindDayEnd}
	if len(kinds) != len(want) {
		t.Fatalf("v2 log read %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("v2 log read %v, want %v", kinds, want)
		}
	}

	for _, v := range []uint32{0, 1, Version + 1} {
		h := testHeader()
		h.Version = v
		var buf bytes.Buffer
		if _, err := NewWriter(&buf, h, testBase()); err != nil {
			t.Fatal(err)
		}
		if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("version %d accepted, want rejection", v)
		}
	}
}
