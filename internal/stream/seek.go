package stream

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dates"
)

// SegmentInfo describes one segment discovered by ScanIndex. The implicit
// first segment (everything before the first index frame) has Ordinal 0
// and a nil Checkpoint: replaying it starts from the base snapshot.
type SegmentInfo struct {
	Ordinal    int64
	FirstDay   dates.Date
	FrameOff   int64  // offset of the segment index frame (preamble end for segment 0)
	DataOff    int64  // offset of the first frame after the index frame
	Checkpoint []byte // encoded reduced checkpoint; nil for segment 0
}

// DayInfo locates one day's frames: the offset of its day-start frame and
// the segment it falls in (an index into LogIndex.Segments).
type DayInfo struct {
	Day     dates.Date
	Offset  int64
	Segment int
}

// LogIndex is the seek directory of a run log, built by one forward
// header-hop scan: segment boundaries with their embedded checkpoints,
// plus the day-start offset of every day. Batching keeps the frame count
// near a dozen per day, so the scan reads a few hundred bytes per
// simulated day regardless of event volume.
type LogIndex struct {
	Header   Header
	Base     Base
	Segments []SegmentInfo
	Days     []DayInfo
	End      int64 // offset after the last complete frame
	Torn     bool  // the log ends mid-frame (killed run)
}

// Segment returns the index of the last segment whose FirstDay is at or
// before day — the segment a seek to that day restores from.
func (x *LogIndex) Segment(day dates.Date) int {
	seg := 0
	for i := 1; i < len(x.Segments); i++ {
		if x.Segments[i].FirstDay <= day {
			seg = i
		}
	}
	return seg
}

// Day returns the day entry for day, or false when the log has none.
func (x *LogIndex) Day(day dates.Date) (DayInfo, bool) {
	for _, d := range x.Days {
		if d.Day == day {
			return d, true
		}
	}
	return DayInfo{}, false
}

// LastDay returns the most recent day the log started, or false for a
// log with no days yet.
func (x *LogIndex) LastDay() (dates.Date, bool) {
	if len(x.Days) == 0 {
		return 0, false
	}
	return x.Days[len(x.Days)-1].Day, true
}

// ScanIndex builds the seek directory of a run log. Only frame headers
// are read for the bulk of the log; day-start and segment index frames
// (both tiny) are read in full, CRC-verified. The scan stops cleanly at
// a torn trailing frame (killed run), marking the index Torn.
func ScanIndex(r io.ReaderAt) (*LogIndex, error) {
	t := NewTail(r)
	if err := t.start(); err != nil {
		return nil, err
	}
	if !t.started {
		return nil, fmt.Errorf("%w: log preamble incomplete", ErrFrame)
	}
	idx := &LogIndex{
		Header:   t.hdr,
		Base:     t.base,
		Segments: []SegmentInfo{{FrameOff: t.off, DataOff: t.off, FirstDay: t.hdr.WindowStart}},
	}
	off := t.off
	var hdr [5]byte
	var crc [4]byte
	for {
		ok, err := t.readAt(hdr[:1], off)
		if err != nil {
			return nil, err
		}
		if !ok {
			idx.End = off
			return idx, nil
		}
		if ok, err = t.readAt(hdr[:], off); !ok || err != nil {
			idx.End, idx.Torn = off, true
			return idx, err
		}
		k := Kind(hdr[0])
		n := binary.LittleEndian.Uint32(hdr[1:])
		if n > maxFramePayload {
			return nil, fmt.Errorf("%w: payload of %d bytes", ErrFrame, n)
		}
		next := off + 5 + int64(n) + 4
		switch k {
		case KindDayStart, KindSegment:
			kk, payload, pnext, ok, err := t.peekFrame(off)
			if !ok || err != nil {
				idx.End, idx.Torn = off, true
				return idx, err
			}
			_ = pnext
			if kk == KindDayStart {
				var ev Event
				if err := decodePayload(kk, payload, &ev, nil, nil); err != nil {
					return nil, err
				}
				idx.Days = append(idx.Days, DayInfo{Day: ev.Day, Offset: off, Segment: len(idx.Segments) - 1})
			} else {
				seg, err := decodeSegment(payload)
				if err != nil {
					return nil, err
				}
				idx.Segments = append(idx.Segments, SegmentInfo{
					Ordinal: seg.Ordinal, FirstDay: seg.FirstDay,
					FrameOff: off, DataOff: next, Checkpoint: seg.Checkpoint,
				})
			}
		default:
			// Confirm the frame is complete by probing its CRC trailer; the
			// payload bytes before it are then necessarily present too.
			if ok, err = t.readAt(crc[:], next-4); !ok || err != nil {
				idx.End, idx.Torn = off, true
				return idx, err
			}
		}
		off = next
	}
}

// SeekToDay positions the tail at the day-start frame of day, so the
// next events delivered are that day's. It returns false when the log
// does not (yet) contain the day. The scan costs one header-hop pass; a
// long-lived tail that knows where it wants to resume should prefer this
// over re-reading history event by event.
func (t *Tail) SeekToDay(day dates.Date) (bool, error) {
	if err := t.start(); err != nil || !t.started {
		return false, err
	}
	idx, err := ScanIndex(t.r)
	if err != nil {
		return false, err
	}
	d, ok := idx.Day(day)
	if !ok {
		return false, nil
	}
	t.off = d.Offset
	t.inBatch = false
	t.batch, t.batchOff = nil, 0
	return true, nil
}

// KindStats aggregates the byte cost of one kind in a log: standalone
// frames and batch sub-records of that kind, with payload, framing
// (frame headers and record length prefixes), and CRC bytes separated —
// exactly the split the E8 overhead argument is about.
type KindStats struct {
	Kind         Kind
	Frames       int64
	Records      int64
	PayloadBytes int64
	FramingBytes int64
	CRCBytes     int64
}

// Histogram scans a complete log and returns per-kind byte/count rows in
// kind order, plus the total byte size scanned. Event-batch frames
// attribute their sub-records' payload and length-prefix bytes to the
// sub-record kinds; the batch frame's own header and CRC stay on the
// event-batch row.
func Histogram(r io.ReaderAt) ([]KindStats, int64, error) {
	t := NewTail(r)
	if err := t.start(); err != nil {
		return nil, 0, err
	}
	if !t.started {
		return nil, 0, fmt.Errorf("%w: log preamble incomplete", ErrFrame)
	}
	byKind := map[Kind]*KindStats{}
	row := func(k Kind) *KindStats {
		s := byKind[k]
		if s == nil {
			s = &KindStats{Kind: k}
			byKind[k] = s
		}
		return s
	}
	// The preamble frames (header, base) sit before t.off; re-walk them.
	off := int64(len(Magic))
	for off < t.off {
		k, payload, next, ok, err := t.peekFrame(off)
		if !ok || err != nil {
			return nil, 0, err
		}
		s := row(k)
		s.Frames++
		s.PayloadBytes += int64(len(payload))
		s.FramingBytes += 5
		s.CRCBytes += 4
		off = next
	}
	for {
		k, payload, next, ok, err := t.peekFrame(off)
		if err != nil || !ok {
			return sortedRows(byKind), off, err
		}
		s := row(k)
		s.Frames++
		s.FramingBytes += 5
		s.CRCBytes += 4
		if k == KindEventBatch {
			for ro := 0; ro < len(payload); {
				rk, rp, rnext, err := parseRecord(payload, ro)
				if err != nil {
					return nil, 0, err
				}
				rs := row(rk)
				rs.Records++
				rs.PayloadBytes += int64(len(rp))
				rs.FramingBytes += int64(rnext-ro) - int64(len(rp))
				ro = rnext
			}
		} else {
			s.PayloadBytes += int64(len(payload))
		}
		off = next
	}
}

func sortedRows(byKind map[Kind]*KindStats) []KindStats {
	out := make([]KindStats, 0, len(byKind))
	for k := Kind(0); k <= KindSegment; k++ {
		if s := byKind[k]; s != nil {
			out = append(out, *s)
		}
	}
	return out
}
