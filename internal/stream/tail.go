package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Tail is an online run-log consumer: it reads complete frames from an
// io.ReaderAt (typically the log file of a run still executing) and
// reports "no event yet" instead of failing when the next frame has not
// been fully written. Because it addresses the file by absolute offset and
// never buffers a partial frame, a Next that returns false is safely
// retried after the writer's next day-barrier flush.
type Tail struct {
	r       io.ReaderAt
	off     int64
	started bool
	hdr     Header
	base    Base
	devices []string
	strings []string
	scratch []byte

	// Cursor into the current event-batch frame's payload (aliasing
	// scratch). The whole batch frame is CRC-verified before the first
	// sub-record is delivered, so a tail never yields a torn record.
	batch    []byte
	batchOff int
	inBatch  bool
}

// NewTail opens a tail over r. The preamble (magic, header, base snapshot)
// is consumed lazily by the first Next/Header call, so a Tail can be
// opened before the writer has flushed anything.
func NewTail(r io.ReaderAt) *Tail {
	return &Tail{r: r}
}

// Offset returns the byte offset of the next unread frame. While an
// event-batch frame is being unpacked it points past that frame (the
// batch was verified whole); at day barriers — where online consumers
// read it — the batch is fully drained and the offset is exact.
func (t *Tail) Offset() int64 { return t.off }

// Header returns the run parameters once the preamble is readable.
func (t *Tail) Header() (Header, bool, error) {
	if err := t.start(); err != nil || !t.started {
		return Header{}, false, err
	}
	return t.hdr, true, nil
}

// Base returns the run-start snapshots once the preamble is readable.
func (t *Tail) Base() (Base, bool, error) {
	if err := t.start(); err != nil || !t.started {
		return Base{}, false, err
	}
	return t.base, true, nil
}

// readAt fills buf from the absolute offset, reporting false when the file
// does not (yet) hold that many bytes.
func (t *Tail) readAt(buf []byte, off int64) (bool, error) {
	n, err := t.r.ReadAt(buf, off)
	if n == len(buf) {
		return true, nil
	}
	if err == io.EOF || err == nil {
		return false, nil
	}
	return false, fmt.Errorf("stream: tailing run log: %w", err)
}

// peekFrame reads the complete frame at off, returning ok=false when it is
// not fully present yet. The payload slice is reused across calls.
func (t *Tail) peekFrame(off int64) (k Kind, payload []byte, next int64, ok bool, err error) {
	var hdr [5]byte
	if ok, err = t.readAt(hdr[:], off); !ok {
		return 0, nil, 0, false, err
	}
	k = Kind(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, 0, false, fmt.Errorf("%w: payload of %d bytes", ErrFrame, n)
	}
	if cap(t.scratch) < int(n)+4 {
		t.scratch = make([]byte, int(n)+4)
	}
	buf := t.scratch[:int(n)+4]
	if ok, err = t.readAt(buf, off+5); !ok {
		return 0, nil, 0, false, err
	}
	payload = buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, 0, false, fmt.Errorf("%w in %s frame", ErrCRC, k)
	}
	return k, payload, off + 5 + int64(n) + 4, true, nil
}

// start parses the preamble once enough of it is on disk.
func (t *Tail) start() error {
	if t.started {
		return nil
	}
	magic := make([]byte, len(Magic))
	ok, err := t.readAt(magic, 0)
	if !ok || err != nil {
		return err
	}
	if string(magic) != Magic {
		return ErrBadMagic
	}
	off := int64(len(Magic))
	k, payload, next, ok, err := t.peekFrame(off)
	if !ok || err != nil {
		return err
	}
	if k != KindHeader {
		return fmt.Errorf("%w: first frame is %s, want header", ErrFrame, k)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return err
	}
	off = next
	if k, payload, next, ok, err = t.peekFrame(off); !ok || err != nil {
		return err
	}
	if k != KindBase {
		return fmt.Errorf("%w: second frame is %s, want base", ErrFrame, k)
	}
	base, err := decodeBase(payload)
	if err != nil {
		return err
	}
	t.hdr, t.base = hdr, base
	t.devices = base.Devices
	t.strings = base.Strings
	t.off = next
	t.started = true
	return nil
}

// Next decodes the next complete event into ev, returning false when no
// complete frame is available yet (retry after the writer flushes more).
// Event-batch frames are verified whole before their first sub-record is
// delivered and then unpacked one event per call; segment index frames
// are skipped.
func (t *Tail) Next(ev *Event) (bool, error) {
	if err := t.start(); err != nil || !t.started {
		return false, err
	}
	for {
		if t.inBatch {
			if t.batchOff < len(t.batch) {
				k, payload, next, err := parseRecord(t.batch, t.batchOff)
				if err != nil {
					return false, err
				}
				t.batchOff = next
				if err := decodePayload(k, payload, ev, t.devices, t.strings); err != nil {
					return false, err
				}
				return true, nil
			}
			t.inBatch = false
		}
		k, payload, next, ok, err := t.peekFrame(t.off)
		if !ok || err != nil {
			return false, err
		}
		switch k {
		case KindHeader, KindBase:
			return false, fmt.Errorf("%w: duplicate %s frame", ErrFrame, k)
		case KindSegment:
			if _, err := decodeSegment(payload); err != nil {
				return false, err
			}
			t.off = next
		case KindEventBatch:
			t.batch, t.batchOff, t.inBatch = payload, 0, true
			t.off = next
		default:
			if err := decodePayload(k, payload, ev, t.devices, t.strings); err != nil {
				return false, err
			}
			t.off = next
			return true, nil
		}
	}
}
