package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/binenc"
	"repro/internal/dates"
)

// CheckpointMagic opens every checkpoint file.
const CheckpointMagic = "IIRCKPT1"

// checkpointVersion guards the checkpoint wire format. Version 2 added
// the run-log segmentation state (SegBytes/SegStart/SegOrdinal), which a
// resumed writer needs to re-trigger segment rotations at the exact
// offsets of the uninterrupted run.
const checkpointVersion = 2

// ErrBadCheckpoint rejects corrupt checkpoint bytes.
var ErrBadCheckpoint = errors.New("stream: bad checkpoint")

// NamedBlob is a labelled opaque snapshot section (a platform's state, an
// engine stream's RNG position).
type NamedBlob struct {
	Name string
	Data []byte
}

// Install is one device-resolved install observation, mirrored from the
// simulator's install log so the checkpoint (and replay) can rebuild it.
type Install struct {
	Device string
	App    string
	Day    dates.Date
}

// Checkpoint is everything a killed run needs to continue producing a
// byte-identical remaining event log: the last completed day, the
// cumulative run stats, the event-log offset to truncate/append at, the
// store/ledger/mediator snapshots, every platform's mutable state, the
// exact RNG position of every engine work-unit stream, and the install
// log accumulated so far.
type Checkpoint struct {
	Day                  dates.Date
	Days                 int64
	OrganicInstalls      int64
	IncentivizedInstalls int64
	CertifiedCompletions int64
	RevenueUSD           float64
	LogOffset            int64

	// Run-log segmentation state (see Writer.RecordSegmentState).
	SegBytes   int64
	SegStart   int64
	SegOrdinal int64

	Store    []byte
	Ledger   []byte
	Mediator []byte

	Platforms []NamedBlob // sorted by platform name
	Streams   []NamedBlob // engine streams in canonical unit order
	Installs  []Install
}

// Encode serializes the checkpoint with a trailing CRC over the payload.
func (c *Checkpoint) Encode() []byte {
	enc := binenc.NewEnc(1 << 16)
	for _, b := range []byte(CheckpointMagic) {
		enc.U8(b)
	}
	enc.U8(checkpointVersion)
	body := binenc.NewEnc(1 << 16)
	body.Varint(int64(c.Day))
	body.Varint(c.Days)
	body.Varint(c.OrganicInstalls)
	body.Varint(c.IncentivizedInstalls)
	body.Varint(c.CertifiedCompletions)
	body.F64(c.RevenueUSD)
	body.Varint(c.LogOffset)
	body.Varint(c.SegBytes)
	body.Varint(c.SegStart)
	body.Varint(c.SegOrdinal)
	body.Blob(c.Store)
	body.Blob(c.Ledger)
	body.Blob(c.Mediator)
	encodeBlobs(body, c.Platforms)
	encodeBlobs(body, c.Streams)
	body.Uvarint(uint64(len(c.Installs)))
	for _, in := range c.Installs {
		body.Str(in.Device)
		body.Str(in.App)
		body.Varint(int64(in.Day))
	}
	enc.Blob(body.Bytes())
	enc.U32(crc32.Checksum(body.Bytes(), castagnoli))
	return enc.Bytes()
}

func encodeBlobs(enc *binenc.Enc, blobs []NamedBlob) {
	enc.Uvarint(uint64(len(blobs)))
	for _, b := range blobs {
		enc.Str(b.Name)
		enc.Blob(b.Data)
	}
}

func decodeBlobs(dec *binenc.Dec) []NamedBlob {
	n := dec.Uvarint()
	if dec.Err() != nil {
		return nil
	}
	if n > uint64(dec.Remaining()) {
		dec.Fail(binenc.ErrTooLong)
		return nil
	}
	out := make([]NamedBlob, 0, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		out = append(out, NamedBlob{Name: dec.Str(), Data: dec.Blob()})
	}
	return out
}

// DecodeCheckpoint parses Encode output, verifying the CRC.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	dec := binenc.NewDec(data)
	magic := make([]byte, len(CheckpointMagic))
	for i := range magic {
		magic[i] = dec.U8()
	}
	if dec.Err() != nil || string(magic) != CheckpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := dec.U8(); dec.Err() == nil && v != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	body := dec.Blob()
	crc := dec.U32()
	if err := dec.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadCheckpoint)
	}
	bd := binenc.NewDec(body)
	c := &Checkpoint{
		Day:                  dates.Date(bd.Varint()),
		Days:                 bd.Varint(),
		OrganicInstalls:      bd.Varint(),
		IncentivizedInstalls: bd.Varint(),
		CertifiedCompletions: bd.Varint(),
		RevenueUSD:           bd.F64(),
		LogOffset:            bd.Varint(),
		SegBytes:             bd.Varint(),
		SegStart:             bd.Varint(),
		SegOrdinal:           bd.Varint(),
		Store:                bd.Blob(),
		Ledger:               bd.Blob(),
		Mediator:             bd.Blob(),
	}
	c.Platforms = decodeBlobs(bd)
	c.Streams = decodeBlobs(bd)
	nInstalls := bd.Uvarint()
	if bd.Err() == nil && nInstalls > uint64(bd.Remaining()) {
		return nil, fmt.Errorf("%w: install count %d", ErrBadCheckpoint, nInstalls)
	}
	c.Installs = make([]Install, 0, nInstalls)
	for i := uint64(0); i < nInstalls && bd.Err() == nil; i++ {
		c.Installs = append(c.Installs, Install{
			Device: bd.Str(),
			App:    bd.Str(),
			Day:    dates.Date(bd.Varint()),
		})
	}
	if err := bd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return c, nil
}

// Stream returns the RNG state blob recorded for an engine stream label.
func (c *Checkpoint) Stream(label string) ([]byte, bool) {
	for _, b := range c.Streams {
		if b.Name == label {
			return b.Data, true
		}
	}
	return nil, false
}

// Platform returns the snapshot blob recorded for a platform name.
func (c *Checkpoint) Platform(name string) ([]byte, bool) {
	for _, b := range c.Platforms {
		if b.Name == name {
			return b.Data, true
		}
	}
	return nil, false
}

// WriteCheckpointFile atomically writes the checkpoint to path (temp file
// plus rename), so a crash mid-write never leaves a truncated checkpoint
// behind.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(c.Encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stream: installing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile reads and decodes a checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("stream: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}
