package stream

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/playstore"
)

// FuzzEventCodecRoundTrip asserts the canonical-codec property on
// arbitrary field values: encode→decode→encode is byte-identical for
// every event kind, including NaN float payloads, empty strings,
// pathological counts, and both device encodings (interned table ref and
// inline fallback).
func FuzzEventCodecRoundTrip(f *testing.F) {
	f.Add(uint8(3), int64(41), "com.pkg", "dev-1", "offer-1", "worker-1", "chart", uint64(5), uint64(7), uint64(11), uint8(2), true, false, math.Pi, 4.99, 1.25, 0.25, 0.5, uint64(3), true)
	f.Add(uint8(12), int64(0), "", "", "", "", "", uint64(0), uint64(0), uint64(0), uint8(0), false, true, math.Inf(1), math.NaN(), -0.0, 1e-300, -1e300, uint64(0), false)
	f.Add(uint8(15), int64(-9), "p", "d", "o", "w", "c", uint64(1)<<40, uint64(1)<<50, uint64(9), uint8(255), true, true, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(2), true)
	f.Fuzz(func(t *testing.T, kind uint8, day int64, pkg, device, offer, worker, chart string,
		n, dau, seconds uint64, postEvent uint8, certified, batch bool,
		f1, f2, f3, f4, f5 float64, listLen uint64, useTable bool) {
		// Optionally intern the fuzzed device/worker strings and the
		// pkg/offer/account strings, exercising both table-ref paths;
		// otherwise everything goes inline.
		var table, strTable []string
		var tab, stab map[string]uint32
		if useTable {
			table = []string{device, worker, "other-device"}
			tab = Base{Devices: table}.DeviceTable()
			strTable = []string{pkg, offer, "other-string"}
			stab = Base{Strings: strTable}.StringTable()
		}
		kinds := []Kind{KindDayStart, KindOrganic, KindClick, KindInstall, KindInstallBatch,
			KindPostback, KindCertifyBatch, KindSession, KindPurchase, KindSettle,
			KindEnforce, KindChart, KindDayEnd}
		ev := Event{
			Kind:      kinds[int(kind)%len(kinds)],
			Day:       dates.Date(day),
			Pkg:       pkg,
			Device:    device,
			Offer:     offer,
			Worker:    worker,
			Chart:     chart,
			N:         int64(n),
			DAU:       int64(dau),
			Seconds:   int64(seconds),
			PostEvent: postEvent,
			Certified: certified,
			Batch:     batch,
			Fraud:     f1,
			USD:       f2,
			Gross:     f3,
			AffCut:    f4,
			UserPayout: math.Float64frombits(
				math.Float64bits(f5)), // arbitrary bits, kept verbatim
			DevAcct:      pkg,
			IIPAcct:      offer,
			AffAcct:      device,
			UserAcct:     worker,
			CumOrganic:   int64(n),
			CumIncent:    int64(dau),
			CumCertified: int64(seconds),
			CumRevenue:   f2,
		}
		for i := uint64(0); i < listLen%8; i++ {
			ev.Devices = append(ev.Devices, device)
			ev.Entries = append(ev.Entries, playstore.ChartEntry{Rank: int(i) + 1, Package: pkg, Score: f3})
		}
		if ev.Kind == KindInstallBatch {
			ev.N = int64(len(ev.Devices))
		}

		var enc Encoder
		enc.SetDeviceTable(tab)
		enc.SetStringTable(stab)
		if err := enc.Event(&ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
		first := append([]byte(nil), enc.Bytes()...)

		k, payload, next, ok, err := (&Tail{r: bytes.NewReader(first)}).peekFrame(0)
		if err != nil || !ok || next != int64(len(first)) {
			t.Fatalf("frame not self-delimiting: ok=%v next=%d len=%d err=%v", ok, next, len(first), err)
		}
		var got Event
		if err := decodePayload(k, payload, &got, table, strTable); err != nil {
			t.Fatalf("decode: %v", err)
		}
		var enc2 Encoder
		enc2.SetDeviceTable(tab)
		enc2.SetStringTable(stab)
		if err := enc2.Event(&got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc2.Bytes(), first) {
			t.Fatalf("encode→decode→encode not byte-identical for %s\n first: %x\nsecond: %x", ev.Kind, first, enc2.Bytes())
		}
	})
}

// FuzzFrameDecodeRobustness throws arbitrary bytes at the frame parser:
// it must never panic, and whatever it accepts must satisfy the CRC.
func FuzzFrameDecodeRobustness(f *testing.F) {
	var enc Encoder
	enc.Install("com.x", "d", 0.5)
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte{6, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		tail := &Tail{r: bytes.NewReader(data)}
		k, payload, _, ok, err := tail.peekFrame(0)
		if err != nil || !ok {
			return
		}
		var ev Event
		_ = k
		_ = decodePayload(k, payload, &ev, nil, nil)
	})
}
