package stream

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/playstore"
)

// FuzzEventCodecRoundTrip asserts the canonical-codec property on
// arbitrary field values: encode→decode→encode is byte-identical for
// every event kind, including NaN float payloads, empty strings,
// pathological counts, and both device encodings (interned table ref and
// inline fallback).
func FuzzEventCodecRoundTrip(f *testing.F) {
	f.Add(uint8(3), int64(41), "com.pkg", "dev-1", "offer-1", "worker-1", "chart", uint64(5), uint64(7), uint64(11), uint8(2), true, false, math.Pi, 4.99, 1.25, 0.25, 0.5, uint64(3), true)
	f.Add(uint8(12), int64(0), "", "", "", "", "", uint64(0), uint64(0), uint64(0), uint8(0), false, true, math.Inf(1), math.NaN(), -0.0, 1e-300, -1e300, uint64(0), false)
	f.Add(uint8(15), int64(-9), "p", "d", "o", "w", "c", uint64(1)<<40, uint64(1)<<50, uint64(9), uint8(255), true, true, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(2), true)
	f.Fuzz(func(t *testing.T, kind uint8, day int64, pkg, device, offer, worker, chart string,
		n, dau, seconds uint64, postEvent uint8, certified, batch bool,
		f1, f2, f3, f4, f5 float64, listLen uint64, useTable bool) {
		// Optionally intern the fuzzed device/worker strings and the
		// pkg/offer/account strings, exercising both table-ref paths;
		// otherwise everything goes inline.
		var table, strTable []string
		var tab, stab map[string]uint32
		if useTable {
			table = []string{device, worker, "other-device"}
			tab = Base{Devices: table}.DeviceTable()
			strTable = []string{pkg, offer, "other-string"}
			stab = Base{Strings: strTable}.StringTable()
		}
		kinds := []Kind{KindDayStart, KindOrganic, KindClick, KindInstall, KindInstallBatch,
			KindPostback, KindCertifyBatch, KindSession, KindPurchase, KindSettle,
			KindEnforce, KindChart, KindDayEnd}
		ev := Event{
			Kind:      kinds[int(kind)%len(kinds)],
			Day:       dates.Date(day),
			Pkg:       pkg,
			Device:    device,
			Offer:     offer,
			Worker:    worker,
			Chart:     chart,
			N:         int64(n),
			DAU:       int64(dau),
			Seconds:   int64(seconds),
			PostEvent: postEvent,
			Certified: certified,
			Batch:     batch,
			Fraud:     f1,
			USD:       f2,
			Gross:     f3,
			AffCut:    f4,
			UserPayout: math.Float64frombits(
				math.Float64bits(f5)), // arbitrary bits, kept verbatim
			DevAcct:      pkg,
			IIPAcct:      offer,
			AffAcct:      device,
			UserAcct:     worker,
			CumOrganic:   int64(n),
			CumIncent:    int64(dau),
			CumCertified: int64(seconds),
			CumRevenue:   f2,
		}
		for i := uint64(0); i < listLen%8; i++ {
			ev.Devices = append(ev.Devices, device)
			ev.Entries = append(ev.Entries, playstore.ChartEntry{Rank: int(i) + 1, Package: pkg, Score: f3})
		}
		if ev.Kind == KindInstallBatch {
			ev.N = int64(len(ev.Devices))
		}

		var enc Encoder
		enc.SetDeviceTable(tab)
		enc.SetStringTable(stab)
		if err := enc.Event(&ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
		first := append([]byte(nil), enc.Bytes()...)

		k, payload, next, ok, err := (&Tail{r: bytes.NewReader(first)}).peekFrame(0)
		if err != nil || !ok || next != int64(len(first)) {
			t.Fatalf("frame not self-delimiting: ok=%v next=%d len=%d err=%v", ok, next, len(first), err)
		}
		var got Event
		if err := decodePayload(k, payload, &got, table, strTable); err != nil {
			t.Fatalf("decode: %v", err)
		}
		var enc2 Encoder
		enc2.SetDeviceTable(tab)
		enc2.SetStringTable(stab)
		if err := enc2.Event(&got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc2.Bytes(), first) {
			t.Fatalf("encode→decode→encode not byte-identical for %s\n first: %x\nsecond: %x", ev.Kind, first, enc2.Bytes())
		}
	})
}

// FuzzFrameDecodeRobustness throws arbitrary bytes at the frame parser:
// it must never panic, and whatever it accepts must satisfy the CRC.
func FuzzFrameDecodeRobustness(f *testing.F) {
	var enc Encoder
	enc.Install("com.x", "d", 0.5)
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte{6, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		tail := &Tail{r: bytes.NewReader(data)}
		k, payload, _, ok, err := tail.peekFrame(0)
		if err != nil || !ok {
			return
		}
		var ev Event
		_ = k
		_ = decodePayload(k, payload, &ev, nil, nil)
	})
}

// FuzzBatchRecordRoundTrip asserts the canonical-codec property on the v3
// record encoding: record-mode encode → parseRecord → decodePayload →
// record-mode re-encode is byte-identical, for short records and for
// payloads past the 128-byte uvarint-length boundary (which exercises the
// payload-shift path in Encoder.end).
func FuzzBatchRecordRoundTrip(f *testing.F) {
	f.Add(int64(3), "com.pkg", "dev-1", 0.25, uint64(2))
	f.Add(int64(0), "", "", math.NaN(), uint64(0))
	f.Add(int64(-5), "com.very.long.package.name.for.padding", "device-with-a-long-name", 1e300, uint64(40))
	f.Fuzz(func(t *testing.T, day int64, pkg, device string, fraud float64, listLen uint64) {
		ev := Event{Kind: KindInstallBatch, Day: dates.Date(day), Pkg: pkg, Fraud: fraud}
		for i := uint64(0); i < listLen%64; i++ {
			ev.Devices = append(ev.Devices, device)
		}
		ev.N = int64(len(ev.Devices))

		var enc Encoder
		enc.SetRecordMode(true)
		if err := enc.Event(&ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
		// A short record after a potentially long one checks that the
		// shift in Encoder.end did not corrupt the running buffer.
		enc.Install(pkg, device, fraud)
		first := append([]byte(nil), enc.Bytes()...)

		var off int
		var evs []Event
		for off < len(first) {
			k, payload, next, err := parseRecord(first, off)
			if err != nil {
				t.Fatalf("parseRecord at %d: %v", off, err)
			}
			var got Event
			if err := decodePayload(k, payload, &got, nil, nil); err != nil {
				t.Fatalf("decode %s: %v", k, err)
			}
			evs = append(evs, got)
			off = next
		}
		if len(evs) != 2 {
			t.Fatalf("parsed %d records, want 2", len(evs))
		}
		var enc2 Encoder
		enc2.SetRecordMode(true)
		for i := range evs {
			if err := enc2.Event(&evs[i]); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if !bytes.Equal(enc2.Bytes(), first) {
			t.Fatalf("record encode→decode→encode not byte-identical\n first: %x\nsecond: %x", first, enc2.Bytes())
		}
	})
}

// FuzzSegmentCodecRoundTrip asserts the canonical-codec property on v3
// segment index frames, and that truncated or corrupted segment frames
// are rejected rather than misread.
func FuzzSegmentCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(12), []byte("checkpoint-blob"))
	f.Add(uint64(0), int64(0), []byte{})
	f.Add(uint64(1)<<40, int64(-3), bytes.Repeat([]byte{0xAB}, 300))
	f.Fuzz(func(t *testing.T, ordinal uint64, firstDay int64, cp []byte) {
		seg := Segment{Ordinal: int64(ordinal), FirstDay: dates.Date(firstDay), Checkpoint: cp}
		var enc Encoder
		enc.Segment(seg)
		first := append([]byte(nil), enc.Bytes()...)

		k, payload, next, ok, err := (&Tail{r: bytes.NewReader(first)}).peekFrame(0)
		if err != nil || !ok || k != KindSegment || next != int64(len(first)) {
			t.Fatalf("segment frame not self-delimiting: k=%s ok=%v next=%d len=%d err=%v", k, ok, next, len(first), err)
		}
		got, err := decodeSegment(payload)
		if err != nil {
			t.Fatalf("decodeSegment: %v", err)
		}
		var enc2 Encoder
		enc2.Segment(got)
		if !bytes.Equal(enc2.Bytes(), first) {
			t.Fatalf("segment encode→decode→encode not byte-identical\n first: %x\nsecond: %x", first, enc2.Bytes())
		}

		// Every truncation must read as incomplete, never as a frame.
		for _, cut := range []int{1, len(first) / 2, len(first) - 1} {
			if cut >= len(first) {
				continue
			}
			_, _, _, ok, err := (&Tail{r: bytes.NewReader(first[:cut])}).peekFrame(0)
			if ok && err == nil {
				t.Fatalf("truncated segment frame (cut=%d) parsed as complete", cut)
			}
		}
		// A corrupted payload byte must fail the CRC.
		if len(payload) > 0 {
			bad := append([]byte(nil), first...)
			bad[5] ^= 0x40 // first payload byte (after kind + u32 length)
			if _, _, _, _, err := (&Tail{r: bytes.NewReader(bad)}).peekFrame(0); err == nil {
				t.Fatal("corrupted segment frame passed CRC")
			}
		}
	})
}

// FuzzLogStreamRobustness appends arbitrary bytes after a valid preamble
// and drives every consumer — Reader, Tail, ScanIndex — to exhaustion.
// None may panic; errors and clean stops are both acceptable.
func FuzzLogStreamRobustness(f *testing.F) {
	var pre bytes.Buffer
	if _, err := NewWriter(&pre, testHeader(), testBase()); err != nil {
		f.Fatal(err)
	}
	var enc Encoder
	enc.SetRecordMode(true)
	enc.DayStart(2)
	enc.Install("com.x", "d1", 0.5)
	f.Add(pre.Bytes(), []byte{})
	f.Add(pre.Bytes(), enc.Bytes())
	f.Add(pre.Bytes(), []byte{byte(KindEventBatch), 4, 0, 0, 0, 1, 2, 3, 4})
	f.Add(pre.Bytes(), []byte{byte(KindSegment), 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, preamble, rest []byte) {
		data := append(append([]byte(nil), preamble...), rest...)
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			var ev Event
			for r.Next(&ev) == nil {
			}
		}
		tail := NewTail(bytes.NewReader(data))
		var ev Event
		for {
			ok, err := tail.Next(&ev)
			if err != nil || !ok {
				break
			}
		}
		if idx, err := ScanIndex(bytes.NewReader(data)); err == nil {
			for _, d := range idx.Days {
				_ = idx.Segment(d.Day)
			}
			_, _ = idx.LastDay()
		}
		_, _, _ = Histogram(bytes.NewReader(data))
	})
}
