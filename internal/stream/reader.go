package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Reader iterates a complete run log from an io.Reader, verifying every
// frame's CRC. Event-batch frames are unpacked transparently (each Next
// yields one sub-record) and segment index frames are skipped, so
// consumers see the same event sequence for v2 and v3 logs. Use Tail for
// logs still being written.
type Reader struct {
	br      *bufio.Reader
	hdr     Header
	base    Base
	devices []string
	strings []string
	scratch []byte

	// Cursor into the current event-batch frame's payload (aliasing
	// scratch; fully consumed before the next readFrame overwrites it).
	batch    []byte
	batchOff int
	inBatch  bool
}

// NewReader opens a run log: it consumes the magic, the header frame, and
// the base frame, leaving the reader positioned at the first event.
func NewReader(r io.Reader) (*Reader, error) {
	lr := &Reader{br: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(lr.br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	k, payload, err := lr.readFrame()
	if err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", err)
	}
	if k != KindHeader {
		return nil, fmt.Errorf("%w: first frame is %s, want header", ErrFrame, k)
	}
	if lr.hdr, err = decodeHeader(payload); err != nil {
		return nil, err
	}
	if k, payload, err = lr.readFrame(); err != nil {
		return nil, fmt.Errorf("stream: reading base snapshot: %w", err)
	}
	if k != KindBase {
		return nil, fmt.Errorf("%w: second frame is %s, want base", ErrFrame, k)
	}
	if lr.base, err = decodeBase(payload); err != nil {
		return nil, err
	}
	lr.devices = lr.base.Devices
	lr.strings = lr.base.Strings
	return lr, nil
}

// newSectionReader wraps a reader positioned at a frame boundary mid-log
// (no preamble expected) with the log's already-decoded header and
// tables; seeking replays use it to consume a single segment.
func newSectionReader(r io.Reader, hdr Header, base Base) *Reader {
	return &Reader{
		br: bufio.NewReaderSize(r, 1<<16), hdr: hdr, base: base,
		devices: base.Devices, strings: base.Strings,
	}
}

// Header returns the run parameters.
func (r *Reader) Header() Header { return r.hdr }

// Base returns the run-start snapshots.
func (r *Reader) Base() Base { return r.base }

// readFrame reads one full frame, verifying its CRC. The payload slice is
// reused across calls.
func (r *Reader) readFrame() (Kind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.br, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here is a clean end of log
	}
	if _, err := io.ReadFull(r.br, hdr[1:]); err != nil {
		return 0, nil, unexpectedEOF(err)
	}
	k := Kind(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload of %d bytes", ErrFrame, n)
	}
	if cap(r.scratch) < int(n)+4 {
		r.scratch = make([]byte, int(n)+4)
	}
	buf := r.scratch[:int(n)+4]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return 0, nil, unexpectedEOF(err)
	}
	payload := buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, fmt.Errorf("%w in %s frame", ErrCRC, k)
	}
	return k, payload, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next decodes the next event into ev. It returns io.EOF at a clean end of
// log and io.ErrUnexpectedEOF when the log stops mid-frame (a killed run).
func (r *Reader) Next(ev *Event) error {
	for {
		if r.inBatch {
			if r.batchOff < len(r.batch) {
				k, payload, next, err := parseRecord(r.batch, r.batchOff)
				if err != nil {
					return err
				}
				r.batchOff = next
				return decodePayload(k, payload, ev, r.devices, r.strings)
			}
			r.inBatch = false
		}
		k, payload, err := r.readFrame()
		if err != nil {
			return err
		}
		switch k {
		case KindHeader, KindBase:
			return fmt.Errorf("%w: duplicate %s frame", ErrFrame, k)
		case KindSegment:
			if _, err := decodeSegment(payload); err != nil {
				return err
			}
		case KindEventBatch:
			r.batch, r.batchOff, r.inBatch = payload, 0, true
		default:
			return decodePayload(k, payload, ev, r.devices, r.strings)
		}
	}
}
