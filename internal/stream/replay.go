package stream

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/dates"
	"repro/internal/mediator"
	"repro/internal/playstore"
)

// ErrReplayDiverged reports that replayed state disagreed with a
// verification record in the log (chart snapshot, enforcement action, or
// day-end stat line) — either the log is corrupt or determinism broke.
var ErrReplayDiverged = errors.New("stream: replay diverged from logged run")

// ReplayStats mirrors the simulator's RunStats, accumulated from events.
type ReplayStats struct {
	Days                 int
	OrganicInstalls      int64
	IncentivizedInstalls int64
	CertifiedCompletions int64
	RevenueUSD           float64
}

// ReplayResult is the world state rebuilt from a run log: the store (with
// charts and enforcement recomputed through the live code paths), the
// ledger (every balance bit-exact), the device-resolved install log, and
// the run stats.
type ReplayResult struct {
	Header   Header
	Stats    ReplayStats
	Store    *playstore.Store
	Ledger   *mediator.Ledger
	Installs []Install
}

// Replay rebuilds the run's state from the log alone. The base snapshot
// seeds the store/ledger; every event is applied through the same
// playstore/mediator record methods the live engine used, in the same
// canonical order, and each day boundary recomputes charts and
// enforcement via Store.StepDay — so every float bit matches the live
// run. Logged chart snapshots, enforcement actions, and day-end stat
// lines are verified against the recomputation as it goes; any
// disagreement fails with ErrReplayDiverged.
//
// A log that ends mid-day (a killed run) replays up to the last complete
// frame and then returns io.ErrUnexpectedEOF wrapped in the error; state
// up to the last completed day is valid.
func Replay(r io.Reader) (*ReplayResult, error) {
	lr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return replayFrames(lr)
}

func replayFrames(lr *Reader) (*ReplayResult, error) {
	st, err := baseReplayState(lr.Header(), lr.Base())
	if err != nil {
		return nil, err
	}
	return replayLoop(lr, st, 0, false)
}

// baseReplayState builds the replay starting point from the run-start
// base snapshot.
func baseReplayState(hdr Header, base Base) (*replayState, error) {
	store, err := playstore.DecodeSnapshot(base.Store)
	if err != nil {
		return nil, fmt.Errorf("stream: replay base store: %w", err)
	}
	ledger := mediator.NewLedger()
	if err := ledger.RestoreSnapshot(base.Ledger); err != nil {
		return nil, fmt.Errorf("stream: replay base ledger: %w", err)
	}
	// The mediator snapshot contributes the pre-run certified count (the
	// day-end stat lines report the mediator's absolute total).
	med := mediator.New(hdr.MediatorName)
	if err := med.RestoreSnapshot(base.Mediator); err != nil {
		return nil, fmt.Errorf("stream: replay base mediator: %w", err)
	}
	res := &ReplayResult{Header: hdr, Store: store, Ledger: ledger}
	return &replayState{
		hdr:       hdr,
		res:       res,
		certified: int64(med.Certified()),
		medAcct:   mediator.MediatorAccount(hdr.MediatorName),
	}, nil
}

// segmentReplayState builds the replay starting point from a segment's
// embedded reduced checkpoint: store and ledger snapshots plus the
// cumulative stats at the end of the previous segment. The mediator's
// absolute certified count rides the checkpoint as a scalar, so the full
// mediator snapshot is not needed.
func segmentReplayState(hdr Header, cpBytes []byte) (*replayState, error) {
	cp, err := DecodeCheckpoint(cpBytes)
	if err != nil {
		return nil, fmt.Errorf("stream: segment checkpoint: %w", err)
	}
	store, err := playstore.DecodeSnapshot(cp.Store)
	if err != nil {
		return nil, fmt.Errorf("stream: segment checkpoint store: %w", err)
	}
	ledger := mediator.NewLedger()
	if err := ledger.RestoreSnapshot(cp.Ledger); err != nil {
		return nil, fmt.Errorf("stream: segment checkpoint ledger: %w", err)
	}
	res := &ReplayResult{Header: hdr, Store: store, Ledger: ledger}
	res.Stats = ReplayStats{
		Days:                 int(cp.Days),
		OrganicInstalls:      cp.OrganicInstalls,
		IncentivizedInstalls: cp.IncentivizedInstalls,
		CertifiedCompletions: cp.CertifiedCompletions,
		RevenueUSD:           cp.RevenueUSD,
	}
	return &replayState{
		hdr:       hdr,
		res:       res,
		certified: cp.CertifiedCompletions,
		medAcct:   mediator.MediatorAccount(hdr.MediatorName),
	}, nil
}

// replayLoop applies events from lr until the log ends or, with haveUntil,
// until the day-end frame of until has been applied and verified.
func replayLoop(lr *Reader, st *replayState, until dates.Date, haveUntil bool) (*ReplayResult, error) {
	res := st.res
	var ev Event
	for {
		if err := lr.Next(&ev); err != nil {
			if err == io.EOF {
				if haveUntil {
					return res, fmt.Errorf("stream: day %s not in log", until)
				}
				return res, nil
			}
			if err == io.ErrUnexpectedEOF {
				return res, fmt.Errorf("stream: run log ends mid-frame (killed run): %w", err)
			}
			return nil, err
		}
		if err := st.apply(&ev); err != nil {
			return nil, err
		}
		if haveUntil && ev.Kind == KindDayEnd && ev.Day == until {
			return res, nil
		}
	}
}

// ReplayDay rebuilds the run's state through the end of day without
// replaying the whole log: it scans the seek directory (ScanIndex),
// restores from the latest segment checkpoint at or before the day, and
// applies — with full verification — only that segment's events. The
// result's Installs list covers only the replayed tail (the embedded
// checkpoints deliberately omit the device-resolved install log; use
// Replay when the complete list matters); Stats and every store/ledger
// float are bit-exact.
func ReplayDay(r io.ReaderAt, day dates.Date) (*ReplayResult, error) {
	idx, err := ScanIndex(r)
	if err != nil {
		return nil, err
	}
	return replayDayIndexed(r, idx, day)
}

func replayDayIndexed(r io.ReaderAt, idx *LogIndex, day dates.Date) (*ReplayResult, error) {
	seg := idx.Segments[idx.Segment(day)]
	var st *replayState
	var err error
	if seg.Checkpoint == nil {
		st, err = baseReplayState(idx.Header, idx.Base)
	} else {
		st, err = segmentReplayState(idx.Header, seg.Checkpoint)
	}
	if err != nil {
		return nil, err
	}
	sec := io.NewSectionReader(r, seg.DataOff, idx.End-seg.DataOff)
	lr := newSectionReader(sec, idx.Header, idx.Base)
	return replayLoop(lr, st, day, true)
}

// replayState tracks the in-flight day while frames are applied.
type replayState struct {
	hdr       Header
	res       *ReplayResult
	certified int64  // absolute mediator count, matching the day-end lines
	medAcct   string // interned mediator ledger account for fee legs

	day       dates.Date // current day; valid once inDay
	inDay     bool
	stepped   bool // Store.StepDay(day) already ran for this day
	enforced  []playstore.EnforceAction
	enforceAt int
	txs       [4]mediator.Tx
}

func (st *replayState) apply(ev *Event) error {
	res := st.res
	day := st.day
	switch ev.Kind {
	case KindDayStart:
		if st.inDay {
			return fmt.Errorf("%w: day %s started before %s ended", ErrFrame, ev.Day, day)
		}
		st.day = ev.Day
		st.inDay = true
		st.stepped = false
		st.enforceAt = 0

	case KindOrganic:
		if err := st.requireInDay(ev); err != nil {
			return err
		}
		if ev.N > 0 {
			if err := res.Store.RecordInstallBatch(ev.Pkg, day, ev.N, playstore.SourceOrganic, ev.Fraud); err != nil {
				return replayErr(ev, err)
			}
		}
		if ev.DAU > 0 {
			if err := res.Store.RecordSessionBatch(ev.Pkg, day, ev.DAU, ev.Seconds); err != nil {
				return replayErr(ev, err)
			}
		}
		if ev.USD > 0 {
			if err := res.Store.RecordPurchase(ev.Pkg, playstore.Purchase{Day: day, USD: ev.USD}); err != nil {
				return replayErr(ev, err)
			}
		}
		res.Stats.OrganicInstalls += ev.N
		res.Stats.RevenueUSD += ev.USD

	case KindClick:
		// Clicks carry no store/ledger state; online consumers read them.

	case KindInstall:
		if err := st.requireInDay(ev); err != nil {
			return err
		}
		if err := res.Store.RecordInstall(ev.Pkg, playstore.Install{
			Day: day, Source: playstore.SourceReferral, FraudScore: ev.Fraud,
		}); err != nil {
			return replayErr(ev, err)
		}
		res.Installs = append(res.Installs, Install{Device: ev.Device, App: ev.Pkg, Day: day})

	case KindInstallBatch:
		if err := st.requireInDay(ev); err != nil {
			return err
		}
		if err := res.Store.RecordInstallBatch(ev.Pkg, day, ev.N, playstore.SourceReferral, ev.Fraud); err != nil {
			return replayErr(ev, err)
		}
		for _, dev := range ev.Devices {
			res.Installs = append(res.Installs, Install{Device: dev, App: ev.Pkg, Day: day})
		}

	case KindPostback:
		if ev.Certified {
			st.certified++
		}

	case KindCertifyBatch:
		st.certified += ev.N

	case KindSession:
		if err := st.requireInDay(ev); err != nil {
			return err
		}
		if err := res.Store.RecordSessionBatch(ev.Pkg, day, ev.N, ev.Seconds); err != nil {
			return replayErr(ev, err)
		}

	case KindPurchase:
		if err := st.requireInDay(ev); err != nil {
			return err
		}
		if err := res.Store.RecordPurchase(ev.Pkg, playstore.Purchase{Day: day, USD: ev.USD}); err != nil {
			return replayErr(ev, err)
		}

	case KindSettle:
		// Reconstruct the four ledger legs exactly as the live path posted
		// them (amount expressions included, so the float bits match).
		memo := [4]string{"offer completion", "affiliate share", "reward redemption", "attribution fee"}
		fee := st.hdr.FeePerUser
		if ev.Batch {
			memo = [4]string{"offer completions (batch)", "affiliate share (batch)", "reward redemptions (batch)", "attribution fees (batch)"}
			fee = st.hdr.FeePerUser * float64(ev.N)
		}
		st.txs[0] = mediator.Tx{From: ev.DevAcct, To: ev.IIPAcct, Amount: ev.Gross, Memo: memo[0]}
		st.txs[1] = mediator.Tx{From: ev.IIPAcct, To: ev.AffAcct, Amount: ev.AffCut + ev.UserPayout, Memo: memo[1]}
		st.txs[2] = mediator.Tx{From: ev.AffAcct, To: ev.UserAcct, Amount: ev.UserPayout, Memo: memo[2]}
		st.txs[3] = mediator.Tx{From: ev.DevAcct, To: st.medAcct, Amount: fee, Memo: memo[3]}
		if err := res.Ledger.PostAll(st.txs[:]); err != nil {
			return replayErr(ev, err)
		}
		res.Stats.IncentivizedInstalls += ev.N

	case KindEnforce:
		if err := st.step(ev); err != nil {
			return err
		}
		if st.enforceAt >= len(st.enforced) {
			return fmt.Errorf("%w: logged enforcement on %s not reproduced (day %s)", ErrReplayDiverged, ev.Pkg, day)
		}
		got := st.enforced[st.enforceAt]
		st.enforceAt++
		if got.Package != ev.Pkg || got.Removed != ev.N {
			return fmt.Errorf("%w: enforcement %s/-%d, log says %s/-%d (day %s)",
				ErrReplayDiverged, got.Package, got.Removed, ev.Pkg, ev.N, day)
		}

	case KindChart:
		if err := st.step(ev); err != nil {
			return err
		}
		got := res.Store.Chart(ev.Chart)
		if len(got) != len(ev.Entries) {
			return fmt.Errorf("%w: chart %s has %d entries, log says %d (day %s)",
				ErrReplayDiverged, ev.Chart, len(got), len(ev.Entries), day)
		}
		for i := range got {
			if got[i] != ev.Entries[i] {
				return fmt.Errorf("%w: chart %s rank %d is %+v, log says %+v (day %s)",
					ErrReplayDiverged, ev.Chart, i+1, got[i], ev.Entries[i], day)
			}
		}

	case KindDayEnd:
		if err := st.step(ev); err != nil {
			return err
		}
		if st.enforceAt != len(st.enforced) {
			return fmt.Errorf("%w: %d enforcement actions recomputed, %d logged (day %s)",
				ErrReplayDiverged, len(st.enforced), st.enforceAt, day)
		}
		res.Stats.Days++
		res.Stats.CertifiedCompletions = st.certified
		if ev.Day != day {
			return fmt.Errorf("%w: day-end for %s inside day %s", ErrFrame, ev.Day, day)
		}
		if ev.CumOrganic != res.Stats.OrganicInstalls ||
			ev.CumIncent != res.Stats.IncentivizedInstalls ||
			ev.CumCertified != res.Stats.CertifiedCompletions ||
			math.Float64bits(ev.CumRevenue) != math.Float64bits(res.Stats.RevenueUSD) {
			return fmt.Errorf("%w: day %s stats organic=%d incent=%d certified=%d revenue=%x, log says organic=%d incent=%d certified=%d revenue=%x",
				ErrReplayDiverged, day,
				res.Stats.OrganicInstalls, res.Stats.IncentivizedInstalls, res.Stats.CertifiedCompletions, math.Float64bits(res.Stats.RevenueUSD),
				ev.CumOrganic, ev.CumIncent, ev.CumCertified, math.Float64bits(ev.CumRevenue))
		}
		st.inDay = false

	default:
		return fmt.Errorf("%w: unexpected %s frame in event stream", ErrFrame, ev.Kind)
	}
	return nil
}

// requireInDay rejects activity events outside a day.
func (st *replayState) requireInDay(ev *Event) error {
	if !st.inDay {
		return fmt.Errorf("%w: %s event outside a day", ErrFrame, ev.Kind)
	}
	return nil
}

// step runs the store's day step (charts + enforcement) exactly once per
// day, triggered by the first barrier-side event.
func (st *replayState) step(ev *Event) error {
	if err := st.requireInDay(ev); err != nil {
		return err
	}
	if st.stepped {
		return nil
	}
	st.res.Store.StepDay(st.day)
	st.enforced = st.res.Store.LastEnforcementActions()
	st.stepped = true
	return nil
}

func replayErr(ev *Event, err error) error {
	return fmt.Errorf("stream: replaying %s: %w", ev.Kind, err)
}
