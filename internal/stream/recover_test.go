package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dates"
)

// recoverLog is a synthetic multi-day log plus the offsets ScanValid
// should treat as salvage boundaries.
type recoverLog struct {
	data []byte
	// boundaries are all valid truncation points in ascending order: the
	// preamble end, each day-end frame end, and each segment frame end.
	boundaries []int64
	// dayEnds are the subset of boundaries that close a day, in day order
	// (dayEnds[i] = end of day i+1's day-end frame).
	dayEnds []int64
}

// buildRecoverLog writes days complete days through the real Writer,
// with an event batch and standalone frames per day, rotating a segment
// after every segEvery days (0 = never).
func buildRecoverLog(t *testing.T, days, segEvery int) recoverLog {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), testBase())
	if err != nil {
		t.Fatal(err)
	}
	rl := recoverLog{boundaries: []int64{w.Offset()}}
	for d := 1; d <= days; d++ {
		day := dates.Date(d)
		if err := w.DayStart(day); err != nil {
			t.Fatal(err)
		}
		var e Encoder
		e.SetDeviceTable(w.DeviceTable())
		e.SetStringTable(w.StringTable())
		e.SetRecordMode(true)
		e.Install("com.x", "d1", 0.5)
		e.Click("offer-1", "d2")
		e.Session("com.x", int64(d), 60)
		if err := w.EventBatch(e.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := w.Enforce("com.x", int64(d)); err != nil {
			t.Fatal(err)
		}
		if err := w.DayEnd(day, int64(d), 2, 0, 0.25); err != nil {
			t.Fatal(err)
		}
		rl.boundaries = append(rl.boundaries, w.Offset())
		rl.dayEnds = append(rl.dayEnds, w.Offset())
		if segEvery > 0 && d%segEvery == 0 && d < days {
			if err := w.StartSegment(day+1, []byte("ckpt")); err != nil {
				t.Fatal(err)
			}
			rl.boundaries = append(rl.boundaries, w.Offset())
		}
	}
	rl.data = buf.Bytes()
	return rl
}

// want returns the expected salvage point and day count for a log
// truncated at cut.
func (rl recoverLog) want(cut int64) (validEnd int64, days int) {
	validEnd = rl.boundaries[0]
	for _, b := range rl.boundaries {
		if b <= cut && b > validEnd {
			validEnd = b
		}
	}
	for _, b := range rl.dayEnds {
		if b <= cut {
			days++
		}
	}
	return validEnd, days
}

func TestScanValidClean(t *testing.T) {
	rl := buildRecoverLog(t, 4, 2)
	info, err := ScanValid(bytes.NewReader(rl.data), int64(len(rl.data)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Corruption != nil {
		t.Fatalf("clean log flagged corrupt: %v", info.Corruption)
	}
	if info.ValidEnd != int64(len(rl.data)) || info.ScannedEnd != int64(len(rl.data)) {
		t.Fatalf("clean log: ValidEnd=%d ScannedEnd=%d, want %d", info.ValidEnd, info.ScannedEnd, len(rl.data))
	}
	if info.Days != 4 || info.LastDay != 4 {
		t.Fatalf("clean log: Days=%d LastDay=%v, want 4/4", info.Days, info.LastDay)
	}
	if info.Dropped() != 0 {
		t.Fatalf("clean log drops %d bytes", info.Dropped())
	}
}

// TestScanValidTornTail truncates the log at every byte position past the
// preamble: each cut must salvage exactly to the last boundary at or
// before it, report the matching day count, and never flag corruption —
// a torn tail is incomplete, not corrupt.
func TestScanValidTornTail(t *testing.T) {
	rl := buildRecoverLog(t, 3, 2)
	for cut := rl.boundaries[0]; cut <= int64(len(rl.data)); cut++ {
		info, err := ScanValid(bytes.NewReader(rl.data[:cut]), cut)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if info.Corruption != nil {
			t.Fatalf("cut %d: truncation flagged corrupt: %v", cut, info.Corruption)
		}
		wantEnd, wantDays := rl.want(cut)
		if info.ValidEnd != wantEnd || info.Days != wantDays {
			t.Fatalf("cut %d: ValidEnd=%d Days=%d, want %d/%d", cut, info.ValidEnd, info.Days, wantEnd, wantDays)
		}
	}
}

// TestScanValidBitFlip corrupts the first payload byte of day 3's
// day-start frame: salvage must stop at day 2's boundary and locate the
// corrupt frame exactly.
func TestScanValidBitFlip(t *testing.T) {
	rl := buildRecoverLog(t, 3, 0)
	data := append([]byte(nil), rl.data...)
	frameStart := rl.dayEnds[1] // day 3's day-start frame begins here
	data[frameStart+5] ^= 0xff  // first payload byte: CRC now fails
	info, err := ScanValid(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Corruption == nil {
		t.Fatal("bit flip not flagged")
	}
	if info.Corruption.Offset != frameStart {
		t.Fatalf("corruption at %d, want %d", info.Corruption.Offset, frameStart)
	}
	if !errors.Is(info.Corruption, ErrCRC) {
		t.Fatalf("corruption error %v, want ErrCRC", info.Corruption.Err)
	}
	if info.ValidEnd != rl.dayEnds[1] || info.Days != 2 {
		t.Fatalf("ValidEnd=%d Days=%d, want %d/2", info.ValidEnd, info.Days, rl.dayEnds[1])
	}
	if info.ScannedEnd != frameStart {
		t.Fatalf("ScannedEnd=%d, want %d", info.ScannedEnd, frameStart)
	}
}

// TestScanValidStructure: frames that decode but violate the day bracket
// (events outside a day, nested day-starts, mismatched day-end) are
// corruption, so a salvaged prefix is always Replay-shaped.
func TestScanValidStructure(t *testing.T) {
	build := func(f func(w *Writer)) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testHeader(), testBase())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DayStart(1); err != nil {
			t.Fatal(err)
		}
		if err := w.DayEnd(1, 1, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		f(w)
		return buf.Bytes()
	}
	cases := []struct {
		name string
		f    func(w *Writer)
	}{
		{"event outside day", func(w *Writer) {
			if err := w.Enforce("com.x", 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"nested day start", func(w *Writer) {
			if err := w.DayStart(2); err != nil {
				t.Fatal(err)
			}
			if err := w.DayStart(3); err != nil {
				t.Fatal(err)
			}
		}},
		{"mismatched day end", func(w *Writer) {
			if err := w.DayStart(2); err != nil {
				t.Fatal(err)
			}
			if err := w.DayEnd(9, 1, 0, 0, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"day end without start", func(w *Writer) {
			if err := w.DayEnd(2, 1, 0, 0, 0); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := build(tc.f)
			info, err := ScanValid(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if info.Corruption == nil {
				t.Fatal("structural violation not flagged")
			}
			if info.Days != 1 {
				t.Fatalf("Days=%d, want 1 (the intact day)", info.Days)
			}
		})
	}
}

// TestRecoverFile: Recover truncates the file to the salvage point, the
// salvaged log passes ScanIndex and Replay machinery (via a full Reader
// drain), and a second Recover is a no-op.
func TestRecoverFile(t *testing.T) {
	rl := buildRecoverLog(t, 3, 2)
	cut := rl.dayEnds[1] + 7 // mid-frame inside day 3
	path := filepath.Join(t.TempDir(), "torn.log")
	if err := os.WriteFile(path, rl.data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	wantEnd, _ := rl.want(cut)
	if info.ValidEnd != wantEnd || info.Days != 2 || info.Dropped() != cut-wantEnd {
		t.Fatalf("recover: ValidEnd=%d Days=%d Dropped=%d, want %d/2/%d",
			info.ValidEnd, info.Days, info.Dropped(), wantEnd, cut-wantEnd)
	}
	salvaged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(salvaged)) != wantEnd {
		t.Fatalf("file is %d bytes after recover, want %d", len(salvaged), wantEnd)
	}
	if !bytes.Equal(salvaged, rl.data[:wantEnd]) {
		t.Fatal("salvaged prefix differs from the original bytes")
	}
	// The salvaged log is fully consumable.
	evs := drainReader(t, salvaged)
	var daysSeen int
	for _, ev := range evs {
		if ev.Kind == KindDayEnd {
			daysSeen++
		}
	}
	if daysSeen != 2 {
		t.Fatalf("salvaged log replays %d days, want 2", daysSeen)
	}
	if _, err := ScanIndex(bytes.NewReader(salvaged)); err != nil {
		t.Fatalf("salvaged log fails ScanIndex: %v", err)
	}
	// Idempotent: recovering an intact log drops nothing.
	info2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Dropped() != 0 || info2.ValidEnd != wantEnd || info2.Days != 2 {
		t.Fatalf("second recover not a no-op: %+v", info2)
	}
}

// TestRecoverBadPreamble: a log whose preamble is unreadable is not
// salvageable; the file must be left untouched.
func TestRecoverBadPreamble(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.log")
	junk := []byte("not a run log at all, definitely long enough to scan")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("garbage preamble recovered without error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, junk) {
		t.Fatal("unsalvageable file was modified")
	}
}

// FuzzRecover feeds ScanValid arbitrarily mangled logs: it must never
// panic, never salvage past a corrupt frame, and always produce a prefix
// that re-scans clean with the same day count.
func FuzzRecover(f *testing.F) {
	var seedBuf bytes.Buffer
	w, err := NewWriter(&seedBuf, testHeader(), testBase())
	if err != nil {
		f.Fatal(err)
	}
	for d := dates.Date(1); d <= 3; d++ {
		var e Encoder
		e.SetDeviceTable(w.DeviceTable())
		e.SetStringTable(w.StringTable())
		e.SetRecordMode(true)
		e.Install("com.x", "d1", 0.5)
		e.Click("offer-1", "d2")
		if err := w.DayStart(d); err != nil {
			f.Fatal(err)
		}
		if err := w.EventBatch(e.Bytes()); err != nil {
			f.Fatal(err)
		}
		if err := w.DayEnd(d, 1, 1, 0, 0); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.StartSegment(4, []byte("ckpt")); err != nil {
		f.Fatal(err)
	}
	clean := seedBuf.Bytes()
	f.Add(clean, uint16(0), byte(0))
	f.Add(clean, uint16(len(clean)/2), byte(0xff))
	f.Add(clean[:len(clean)-3], uint16(0), byte(0))
	f.Add([]byte(Magic), uint16(0), byte(0))

	f.Fuzz(func(t *testing.T, data []byte, pos uint16, flip byte) {
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[int(pos)%len(data)] ^= flip
		}
		info, err := ScanValid(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // unsalvageable preamble: nothing else to check
		}
		if info.ValidEnd > int64(len(data)) || info.ValidEnd < 0 {
			t.Fatalf("ValidEnd=%d outside input of %d bytes", info.ValidEnd, len(data))
		}
		if info.Corruption != nil && info.ValidEnd > info.Corruption.Offset {
			t.Fatalf("salvaged to %d, past corruption at %d", info.ValidEnd, info.Corruption.Offset)
		}
		// The salvaged prefix must itself be a clean, fully-valid log with
		// the same day count.
		prefix := data[:info.ValidEnd]
		again, err := ScanValid(bytes.NewReader(prefix), int64(len(prefix)))
		if err != nil {
			t.Fatalf("salvaged prefix unreadable: %v", err)
		}
		if again.Corruption != nil {
			t.Fatalf("salvaged prefix still corrupt: %v", again.Corruption)
		}
		if again.ValidEnd != info.ValidEnd || again.Days != info.Days {
			t.Fatalf("re-scan of salvaged prefix: ValidEnd=%d Days=%d, want %d/%d",
				again.ValidEnd, again.Days, info.ValidEnd, info.Days)
		}
	})
}
