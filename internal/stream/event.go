// Package stream implements the event-sourced run log: a typed,
// append-only, binary stream of everything the day engine does — installs,
// organic activity, clicks, postbacks, settlements, enforcement actions,
// chart snapshots — plus day-boundary checkpoints, full-state replay, and
// an online tail consumer.
//
// The log is framed: every record is [kind, u32 payload length, payload,
// u32 CRC-32C]. A file starts with an 8-byte magic, a header frame (run
// parameters), and a base frame (store/ledger/mediator snapshots at run
// start); event frames follow. All payload encodings are canonical (one
// byte form per value), so encode→decode→encode round-trips byte-exactly.
//
// Determinism: the engine buffers each work unit's events in a per-unit
// encoder during the parallel phases and concatenates the buffers at the
// day barrier in canonical unit order — the same order its ledger and
// install-log flushes already use — so the log bytes are bit-identical
// for any worker count. Replay applies the frames in order onto the base
// snapshot and recomputes charts and enforcement through the very same
// store code, reproducing the live run's state bit-for-bit (and verifying
// itself against the logged chart snapshots, enforcement actions, and
// day-end stat lines as it goes).
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/binenc"
	"repro/internal/dates"
	"repro/internal/playstore"
)

// Magic opens every run-log file.
const Magic = "IIRLOG1\n"

// Version is the current run-log format version, written into the header.
// Version 2 added the interned string table (offer IDs, ledger account
// names, and catalog packages ride the base frame once and appear in
// event frames as 1-3 byte references). Version 3 added event-batch
// frames (a whole day's unit events length-prefixed inside one CRC'd
// frame) and segment index frames (periodic embedded checkpoints that
// make seeking O(segment)); readers accept both 2 and 3.
const Version = 3

// minReadVersion is the oldest header version readers still accept.
// Version-2 logs simply contain no batch or segment frames.
const minReadVersion = 2

// maxFramePayload bounds a single frame (the base snapshot of a large
// world is the biggest frame written in practice).
const maxFramePayload = 1 << 30

// Codec errors.
var (
	ErrBadMagic = errors.New("stream: bad run-log magic")
	ErrCRC      = errors.New("stream: frame CRC mismatch")
	ErrFrame    = errors.New("stream: malformed frame")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies a frame type.
type Kind uint8

// Frame kinds. KindHeader and KindBase appear exactly once, at the start
// of a log; everything else is an event frame.
const (
	KindHeader       Kind = 1  // run parameters
	KindBase         Kind = 2  // store/ledger/mediator snapshots at run start
	KindDayStart     Kind = 3  // a simulated day begins
	KindOrganic      Kind = 4  // one app's organic installs/sessions/revenue for the day
	KindClick        Kind = 5  // offer-wall click tracked by the mediator
	KindInstall      Kind = 6  // one incentivized install (full-fidelity path)
	KindInstallBatch Kind = 7  // bulk incentivized installs (batch path)
	KindPostback     Kind = 8  // SDK event postback (certifying or not)
	KindCertifyBatch Kind = 9  // bulk certification without individual clicks
	KindSession      Kind = 10 // app-usage sessions recorded by the store
	KindPurchase     Kind = 11 // in-app purchase revenue
	KindSettle       Kind = 12 // settlement: money split + the four ledger legs
	KindEnforce      Kind = 13 // store enforcement action during StepDay
	KindChart        Kind = 14 // one chart's entries as computed for the day
	KindDayEnd       Kind = 15 // day barrier: cumulative run stats
	KindEventBatch   Kind = 16 // v3: a day's unit events as length-prefixed records, one CRC
	KindSegment      Kind = 17 // v3: segment index frame with an embedded checkpoint
)

func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindBase:
		return "base"
	case KindDayStart:
		return "day-start"
	case KindOrganic:
		return "organic"
	case KindClick:
		return "click"
	case KindInstall:
		return "install"
	case KindInstallBatch:
		return "install-batch"
	case KindPostback:
		return "postback"
	case KindCertifyBatch:
		return "certify-batch"
	case KindSession:
		return "session"
	case KindPurchase:
		return "purchase"
	case KindSettle:
		return "settle"
	case KindEnforce:
		return "enforce"
	case KindChart:
		return "chart"
	case KindDayEnd:
		return "day-end"
	case KindEventBatch:
		return "event-batch"
	case KindSegment:
		return "segment"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Header carries the run parameters replay needs beyond the base
// snapshot: the seed (informational), the monitored window, and the
// mediator identity/fee that reconstruct attribution-fee postings.
type Header struct {
	Version      uint32
	Seed         uint64
	WindowStart  dates.Date
	WindowEnd    dates.Date
	MediatorName string
	FeePerUser   float64
}

// Base is the run-start state: the snapshots replay rebuilds its world
// from. Store and Ledger use the playstore/mediator snapshot codecs; the
// mediator blob contributes the pre-run certified count (a honey-app
// experiment may have certified completions before the window opened).
//
// Devices is the interned device table: the run's known device IDs (the
// crowd-worker pools) in a deterministic order. Install/click events
// reference these by index — one or two bytes instead of a copied string
// for the millions of repeated references a large run produces — with an
// inline-string fallback for devices outside the table.
//
// Strings is the general interned string table, carrying the run's
// repeated non-device strings: catalog packages, offer IDs, and ledger
// account names. Every pkg/offer/account field of an event frame is a
// reference into it, with the same inline fallback as devices.
type Base struct {
	Store    []byte
	Ledger   []byte
	Mediator []byte
	Devices  []string
	Strings  []string
}

// DeviceTable builds the string→ref lookup for Devices. Encoders writing
// into the same log share one table.
func (b Base) DeviceTable() map[string]uint32 {
	return refTable(b.Devices)
}

// StringTable builds the string→ref lookup for Strings.
func (b Base) StringTable() map[string]uint32 {
	return refTable(b.Strings)
}

func refTable(list []string) map[string]uint32 {
	tab := make(map[string]uint32, len(list))
	for i, s := range list {
		if _, ok := tab[s]; !ok {
			tab[s] = uint32(i)
		}
	}
	return tab
}

// Event is one decoded frame. It is a sum type flattened into a struct:
// Kind selects which fields are meaningful (see the per-kind encoders for
// the exact field sets). Decoders reuse one Event across calls, so slices
// (Devices, Entries) are only valid until the next Next call.
type Event struct {
	Kind Kind

	Day dates.Date // DayStart, DayEnd

	Pkg    string // Organic, Install, InstallBatch, Session, Purchase, Enforce
	Device string // Install
	Offer  string // Click, Postback, CertifyBatch, Settle
	Worker string // Click
	Chart  string // Chart

	N       int64 // Organic installs, CertifyBatch/Session/Settle counts, Enforce removals
	DAU     int64 // Organic
	Seconds int64 // Organic and Session per-unit seconds

	PostEvent uint8 // Postback: the mediator.EventType reported
	Certified bool  // Postback: whether this postback certified the completion
	Batch     bool  // Settle: batch settlement (affects memos)

	Fraud      float64 // Organic, Install, InstallBatch
	USD        float64 // Organic (0 = no purchase), Purchase
	Gross      float64 // Settle
	AffCut     float64 // Settle
	UserPayout float64 // Settle

	DevAcct  string // Settle
	IIPAcct  string // Settle
	AffAcct  string // Settle
	UserAcct string // Settle

	Devices []string               // InstallBatch
	Entries []playstore.ChartEntry // Chart

	CumOrganic   int64   // DayEnd: cumulative organic installs
	CumIncent    int64   // DayEnd: cumulative incentivized installs
	CumCertified int64   // DayEnd: cumulative certified completions
	CumRevenue   float64 // DayEnd: cumulative organic revenue (bit-exact)
}

// Encoder appends complete frames to an in-memory buffer. Each engine work
// unit owns one, so frames can be produced concurrently and concatenated
// in canonical order at the day barrier. The zero value is ready to use
// (devices and strings are then always written inline; SetDeviceTable /
// SetStringTable enable the interned references).
//
// In record mode (SetRecordMode) the encoder emits batch sub-records —
// [kind, uvarint length, payload] with no per-record CRC — instead of
// full frames; the buffers then go through Writer.EventBatch, which
// frames and checksums a whole day's records at once.
type Encoder struct {
	enc     binenc.Enc
	tab     map[string]uint32
	stab    map[string]uint32
	records bool
	nrec    int
}

// SetRecordMode switches the encoder between frame output (false, the
// default) and batch sub-record output (true). Switch only while empty.
func (e *Encoder) SetRecordMode(on bool) { e.records = on }

// SetDeviceTable installs the shared device-ref table (Base.DeviceTable).
// The table must match the Devices list in the log's base frame.
func (e *Encoder) SetDeviceTable(tab map[string]uint32) { e.tab = tab }

// SetStringTable installs the shared string-ref table (Base.StringTable).
// The table must match the Strings list in the log's base frame.
func (e *Encoder) SetStringTable(tab map[string]uint32) { e.stab = tab }

// dev writes a device reference: table index + 1, or 0 followed by the
// inline string for devices outside the table.
func (e *Encoder) dev(s string) {
	if id, ok := e.tab[s]; ok {
		e.enc.Uvarint(uint64(id) + 1)
		return
	}
	e.enc.Uvarint(0)
	e.enc.Str(s)
}

// istr writes an interned-string reference (same wire scheme as dev, but
// against the general string table).
func (e *Encoder) istr(s string) {
	if id, ok := e.stab[s]; ok {
		e.enc.Uvarint(uint64(id) + 1)
		return
	}
	e.enc.Uvarint(0)
	e.enc.Str(s)
}

// StringRef pre-resolves a string to its wire reference (table index + 1,
// or 0 = encode inline). Hot callers resolve once at construction and use
// the *Ref encoder variants, skipping the map lookup per event.
func (e *Encoder) StringRef(s string) uint32 {
	if id, ok := e.stab[s]; ok {
		return id + 1
	}
	return 0
}

// istrPre writes a pre-resolved string reference (ref 0 falls back to the
// inline string). Byte-identical to istr(s) under the same table.
func (e *Encoder) istrPre(ref uint32, s string) {
	if ref != 0 {
		e.enc.Uvarint(uint64(ref))
		return
	}
	e.enc.Uvarint(0)
	e.enc.Str(s)
}

// DeviceRef pre-resolves a device to its wire reference (table index + 1,
// or 0 = encode inline). Hot callers resolve each device once and pass
// the ref to the *Ref encoder variants, avoiding a map lookup per event.
func (e *Encoder) DeviceRef(device string) uint32 {
	if id, ok := e.tab[device]; ok {
		return id + 1
	}
	return 0
}

// devPre writes a pre-resolved reference (ref 0 falls back to the inline
// string). Byte-identical to dev(s) under the same table.
func (e *Encoder) devPre(ref uint32, s string) {
	if ref != 0 {
		e.enc.Uvarint(uint64(ref))
		return
	}
	e.enc.Uvarint(0)
	e.enc.Str(s)
}

// Bytes returns every frame appended so far.
func (e *Encoder) Bytes() []byte { return e.enc.Bytes() }

// Len returns the buffered byte count.
func (e *Encoder) Len() int { return e.enc.Len() }

// Records returns how many frames or sub-records were begun since the
// last Reset — the engine's per-day "events emitted" count, maintained
// as one integer increment inside the encoding path that already runs.
func (e *Encoder) Records() int { return e.nrec }

// Reset empties the encoder, keeping its capacity.
func (e *Encoder) Reset() {
	e.enc.Reset()
	e.nrec = 0
}

// Grow reserves capacity for at least n more bytes, so hot-path appends
// never reallocate mid-day.
func (e *Encoder) Grow(n int) { e.enc.Grow(n) }

// begin opens a frame (kind byte plus a u32 length placeholder) or, in
// record mode, a sub-record (kind byte plus a 1-byte length slot for the
// common short payload). It returns the payload start offset for end.
func (e *Encoder) begin(k Kind) int {
	e.nrec++
	e.enc.U8(uint8(k))
	if e.records {
		e.enc.U8(0)
	} else {
		e.enc.U32(0)
	}
	return e.enc.Len()
}

// end backpatches the payload length and, in frame mode, appends the
// payload CRC. Record mode writes a canonical uvarint length instead: the
// reserved byte covers payloads under 128 bytes; longer payloads (rare —
// big install batches) shift right to make room for the multi-byte form.
func (e *Encoder) end(start int) {
	buf := e.enc.Bytes()
	n := len(buf) - start
	if e.records {
		if n < 0x80 {
			buf[start-1] = byte(n)
			return
		}
		var v [binary.MaxVarintLen64]byte
		ln := binary.PutUvarint(v[:], uint64(n))
		e.enc.Pad(ln - 1)
		buf = e.enc.Bytes()
		copy(buf[start-1+ln:], buf[start:start+n])
		copy(buf[start-1:], v[:ln])
		return
	}
	binenc.PutU32(buf[start-4:start], uint32(n))
	e.enc.U32(crc32.Checksum(buf[start:], castagnoli))
}

// Header appends the header frame.
func (e *Encoder) Header(h Header) {
	s := e.begin(KindHeader)
	e.enc.Uvarint(uint64(h.Version))
	e.enc.U64(h.Seed)
	e.enc.Varint(int64(h.WindowStart))
	e.enc.Varint(int64(h.WindowEnd))
	e.enc.Str(h.MediatorName)
	e.enc.F64(h.FeePerUser)
	e.end(s)
}

// Base appends the base-snapshot frame.
func (e *Encoder) Base(b Base) {
	s := e.begin(KindBase)
	e.enc.Blob(b.Store)
	e.enc.Blob(b.Ledger)
	e.enc.Blob(b.Mediator)
	e.enc.Uvarint(uint64(len(b.Devices)))
	for _, d := range b.Devices {
		e.enc.Str(d)
	}
	e.enc.Uvarint(uint64(len(b.Strings)))
	for _, v := range b.Strings {
		e.enc.Str(v)
	}
	e.end(s)
}

// DayStart appends a day-start marker.
func (e *Encoder) DayStart(day dates.Date) {
	s := e.begin(KindDayStart)
	e.enc.Varint(int64(day))
	e.end(s)
}

// Organic appends one app's organic activity for the current day:
// installs (at meanFraud), dau sessions of secPer seconds, and usd of
// purchase revenue (0 = none recorded).
func (e *Encoder) Organic(pkg string, installs int64, meanFraud float64, dau, secPer int64, usd float64) {
	e.OrganicRef(e.StringRef(pkg), pkg, installs, meanFraud, dau, secPer, usd)
}

// OrganicRef is Organic with a pre-resolved package reference.
func (e *Encoder) OrganicRef(pkgRef uint32, pkg string, installs int64, meanFraud float64, dau, secPer int64, usd float64) {
	s := e.begin(KindOrganic)
	e.istrPre(pkgRef, pkg)
	e.enc.Uvarint(uint64(installs))
	e.enc.F64(meanFraud)
	e.enc.Uvarint(uint64(dau))
	e.enc.Uvarint(uint64(secPer))
	e.enc.F64(usd)
	e.end(s)
}

// Click appends a tracked offer-wall click.
func (e *Encoder) Click(offer, worker string) {
	e.ClickRef(e.StringRef(offer), offer, e.DeviceRef(worker), worker)
}

// ClickRef is Click with pre-resolved offer and device references.
func (e *Encoder) ClickRef(offerRef uint32, offer string, devRef uint32, worker string) {
	s := e.begin(KindClick)
	e.istrPre(offerRef, offer)
	e.devPre(devRef, worker)
	e.end(s)
}

// Install appends one full-fidelity incentivized install.
func (e *Encoder) Install(pkg, device string, fraud float64) {
	e.InstallRef(e.StringRef(pkg), pkg, e.DeviceRef(device), device, fraud)
}

// InstallRef is Install with pre-resolved package and device references.
func (e *Encoder) InstallRef(pkgRef uint32, pkg string, devRef uint32, device string, fraud float64) {
	s := e.begin(KindInstall)
	e.istrPre(pkgRef, pkg)
	e.devPre(devRef, device)
	e.enc.F64(fraud)
	e.end(s)
}

// InstallBatch appends a bulk install event; device(i) supplies the i-th
// fulfilling device ID (a callback so callers with the IDs already in a
// larger structure need not build a throwaway slice).
func (e *Encoder) InstallBatch(pkg string, meanFraud float64, n int, device func(i int) string) {
	s := e.begin(KindInstallBatch)
	e.istr(pkg)
	e.enc.F64(meanFraud)
	e.enc.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		e.dev(device(i))
	}
	e.end(s)
}

// InstallBatchRef is InstallBatch with pre-resolved references; device(i)
// returns the i-th device ref plus the fallback string for ref 0.
func (e *Encoder) InstallBatchRef(pkgRef uint32, pkg string, meanFraud float64, n int, device func(i int) (uint32, string)) {
	s := e.begin(KindInstallBatch)
	e.istrPre(pkgRef, pkg)
	e.enc.F64(meanFraud)
	e.enc.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		ref, name := device(i)
		e.devPre(ref, name)
	}
	e.end(s)
}

// Postback appends an SDK event postback.
func (e *Encoder) Postback(offer string, event uint8, certified bool) {
	e.PostbackRef(e.StringRef(offer), offer, event, certified)
}

// PostbackRef is Postback with a pre-resolved offer reference.
func (e *Encoder) PostbackRef(offerRef uint32, offer string, event uint8, certified bool) {
	s := e.begin(KindPostback)
	e.istrPre(offerRef, offer)
	e.enc.U8(event)
	e.enc.Bool(certified)
	e.end(s)
}

// CertifyBatch appends a bulk certification.
func (e *Encoder) CertifyBatch(offer string, n int64) {
	e.CertifyBatchRef(e.StringRef(offer), offer, n)
}

// CertifyBatchRef is CertifyBatch with a pre-resolved offer reference.
func (e *Encoder) CertifyBatchRef(offerRef uint32, offer string, n int64) {
	s := e.begin(KindCertifyBatch)
	e.istrPre(offerRef, offer)
	e.enc.Uvarint(uint64(n))
	e.end(s)
}

// Session appends n recorded sessions of secPer seconds each.
func (e *Encoder) Session(pkg string, n, secPer int64) {
	e.SessionRef(e.StringRef(pkg), pkg, n, secPer)
}

// SessionRef is Session with a pre-resolved package reference.
func (e *Encoder) SessionRef(pkgRef uint32, pkg string, n, secPer int64) {
	s := e.begin(KindSession)
	e.istrPre(pkgRef, pkg)
	e.enc.Uvarint(uint64(n))
	e.enc.Uvarint(uint64(secPer))
	e.end(s)
}

// Purchase appends in-app purchase revenue.
func (e *Encoder) Purchase(pkg string, usd float64) {
	e.PurchaseRef(e.StringRef(pkg), pkg, usd)
}

// PurchaseRef is Purchase with a pre-resolved package reference.
func (e *Encoder) PurchaseRef(pkgRef uint32, pkg string, usd float64) {
	s := e.begin(KindPurchase)
	e.istrPre(pkgRef, pkg)
	e.enc.F64(usd)
	e.end(s)
}

// Settle appends one settlement: n completions of an offer, the money
// split, and the four ledger accounts the split moves through. Replay
// reconstructs the exact transfer sequence from these fields plus the
// header's mediator identity.
func (e *Encoder) Settle(offer string, n int64, batch bool, gross, affCut, userPayout float64, devAcct, iipAcct, affAcct, userAcct string) {
	e.SettleRef(SettleRefs{
		Offer: e.StringRef(offer), Dev: e.StringRef(devAcct),
		IIP: e.StringRef(iipAcct), Aff: e.StringRef(affAcct), User: e.StringRef(userAcct),
	}, offer, n, batch, gross, affCut, userPayout, devAcct, iipAcct, affAcct, userAcct)
}

// SettleRefs carries the pre-resolved string references of a settlement's
// offer and four ledger accounts.
type SettleRefs struct {
	Offer, Dev, IIP, Aff, User uint32
}

// SettleRef is Settle with pre-resolved references.
func (e *Encoder) SettleRef(refs SettleRefs, offer string, n int64, batch bool, gross, affCut, userPayout float64, devAcct, iipAcct, affAcct, userAcct string) {
	s := e.begin(KindSettle)
	e.istrPre(refs.Offer, offer)
	e.enc.Uvarint(uint64(n))
	e.enc.Bool(batch)
	e.enc.F64(gross)
	e.enc.F64(affCut)
	e.enc.F64(userPayout)
	e.istrPre(refs.Dev, devAcct)
	e.istrPre(refs.IIP, iipAcct)
	e.istrPre(refs.Aff, affAcct)
	e.istrPre(refs.User, userAcct)
	e.end(s)
}

// Enforce appends a store enforcement action.
func (e *Encoder) Enforce(pkg string, removed int64) {
	s := e.begin(KindEnforce)
	e.istr(pkg)
	e.enc.Uvarint(uint64(removed))
	e.end(s)
}

// Chart appends one chart's computed entries for the current day. The
// chart name stays inline (three short constants); entry packages are
// interned.
func (e *Encoder) Chart(name string, entries []playstore.ChartEntry) {
	s := e.begin(KindChart)
	e.enc.Str(name)
	e.enc.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		e.enc.Varint(int64(en.Rank))
		e.istr(en.Package)
		e.enc.F64(en.Score)
	}
	e.end(s)
}

// DayEnd appends the day barrier with cumulative run stats.
func (e *Encoder) DayEnd(day dates.Date, cumOrganic, cumIncent, cumCertified int64, cumRevenue float64) {
	s := e.begin(KindDayEnd)
	e.enc.Varint(int64(day))
	e.enc.Uvarint(uint64(cumOrganic))
	e.enc.Uvarint(uint64(cumIncent))
	e.enc.Uvarint(uint64(cumCertified))
	e.enc.F64(cumRevenue)
	e.end(s)
}

// Event appends ev as a frame, dispatching to the canonical per-kind
// encoder; the codec round-trip tests and the runlog tooling use it.
// Header/Base frames are not events and are rejected.
func (e *Encoder) Event(ev *Event) error {
	switch ev.Kind {
	case KindDayStart:
		e.DayStart(ev.Day)
	case KindOrganic:
		e.Organic(ev.Pkg, ev.N, ev.Fraud, ev.DAU, ev.Seconds, ev.USD)
	case KindClick:
		e.Click(ev.Offer, ev.Worker)
	case KindInstall:
		e.Install(ev.Pkg, ev.Device, ev.Fraud)
	case KindInstallBatch:
		e.InstallBatch(ev.Pkg, ev.Fraud, len(ev.Devices), func(i int) string { return ev.Devices[i] })
	case KindPostback:
		e.Postback(ev.Offer, ev.PostEvent, ev.Certified)
	case KindCertifyBatch:
		e.CertifyBatch(ev.Offer, ev.N)
	case KindSession:
		e.Session(ev.Pkg, ev.N, ev.Seconds)
	case KindPurchase:
		e.Purchase(ev.Pkg, ev.USD)
	case KindSettle:
		e.Settle(ev.Offer, ev.N, ev.Batch, ev.Gross, ev.AffCut, ev.UserPayout,
			ev.DevAcct, ev.IIPAcct, ev.AffAcct, ev.UserAcct)
	case KindEnforce:
		e.Enforce(ev.Pkg, ev.N)
	case KindChart:
		e.Chart(ev.Chart, ev.Entries)
	case KindDayEnd:
		e.DayEnd(ev.Day, ev.CumOrganic, ev.CumIncent, ev.CumCertified, ev.CumRevenue)
	default:
		return fmt.Errorf("%w: cannot encode kind %s", ErrFrame, ev.Kind)
	}
	return nil
}

// Segment is a v3 segment index frame: it opens a bounded region of the
// log at a day boundary. Ordinal counts segments from 1 (the region
// before the first index frame is the implicit segment 0), FirstDay is
// the first day whose frames follow, and Checkpoint is an encoded
// reduced checkpoint (store + ledger snapshots and cumulative stats at
// the end of FirstDay-1) that seeds a seeking replay — so rebuilding
// state at any day costs one segment of events, not the whole log.
type Segment struct {
	Ordinal    int64
	FirstDay   dates.Date
	Checkpoint []byte
}

// Segment appends a segment index frame (frame mode only).
func (e *Encoder) Segment(s Segment) {
	st := e.begin(KindSegment)
	e.enc.Uvarint(uint64(s.Ordinal))
	e.enc.Varint(int64(s.FirstDay))
	e.enc.Blob(s.Checkpoint)
	e.end(st)
}

// decodeSegment parses a KindSegment payload.
func decodeSegment(payload []byte) (Segment, error) {
	dec := binenc.NewDec(payload)
	s := Segment{
		Ordinal:  int64(dec.Uvarint()),
		FirstDay: dates.Date(dec.Varint()),
	}
	s.Checkpoint = dec.Blob()
	if err := dec.Done(); err != nil {
		return Segment{}, fmt.Errorf("%w: decoding segment frame: %v", ErrFrame, err)
	}
	return s, nil
}

// isBatchableKind reports whether k may appear as a sub-record inside an
// event-batch frame (any event kind; structural frames may not nest).
func isBatchableKind(k Kind) bool {
	return k >= KindDayStart && k <= KindDayEnd
}

// parseRecord reads the batch sub-record starting at buf[off]:
// [kind, uvarint payload length, payload]. The containing frame's CRC
// already vouches for the bytes; this only validates structure.
func parseRecord(buf []byte, off int) (k Kind, payload []byte, next int, err error) {
	k = Kind(buf[off])
	n, ln := binary.Uvarint(buf[off+1:])
	if ln <= 0 || n > maxFramePayload {
		return 0, nil, 0, fmt.Errorf("%w: bad batch record length", ErrFrame)
	}
	p0 := off + 1 + ln
	if uint64(len(buf)-p0) < n {
		return 0, nil, 0, fmt.Errorf("%w: batch record of %d bytes overruns frame", ErrFrame, n)
	}
	if !isBatchableKind(k) {
		return 0, nil, 0, fmt.Errorf("%w: %s record inside event batch", ErrFrame, k)
	}
	return k, buf[p0 : p0+int(n)], p0 + int(n), nil
}

// decodeDev reads a device reference written by Encoder.dev.
func decodeDev(dec *binenc.Dec, table []string) string {
	return decodeRef(dec, table, "device")
}

// decodeIstr reads an interned-string reference written by Encoder.istr.
func decodeIstr(dec *binenc.Dec, table []string) string {
	return decodeRef(dec, table, "string")
}

func decodeRef(dec *binenc.Dec, table []string, what string) string {
	n := dec.Uvarint()
	if n == 0 {
		return dec.Str()
	}
	idx := n - 1
	if idx >= uint64(len(table)) {
		dec.Fail(fmt.Errorf("%w: %s ref %d beyond table of %d", ErrFrame, what, idx, len(table)))
		return ""
	}
	return table[idx]
}

// decodePayload fills ev from a frame payload, resolving device refs
// through table (the log's Base.Devices) and interned strings through
// strings (Base.Strings). The Devices and Entries slices on ev are reused
// across calls.
func decodePayload(k Kind, payload []byte, ev *Event, table, strings []string) error {
	dec := binenc.NewDec(payload)
	*ev = Event{Kind: k, Devices: ev.Devices[:0], Entries: ev.Entries[:0]}
	switch k {
	case KindDayStart:
		ev.Day = dates.Date(dec.Varint())
	case KindOrganic:
		ev.Pkg = decodeIstr(dec, strings)
		ev.N = int64(dec.Uvarint())
		ev.Fraud = dec.F64()
		ev.DAU = int64(dec.Uvarint())
		ev.Seconds = int64(dec.Uvarint())
		ev.USD = dec.F64()
	case KindClick:
		ev.Offer = decodeIstr(dec, strings)
		ev.Worker = decodeDev(dec, table)
	case KindInstall:
		ev.Pkg = decodeIstr(dec, strings)
		ev.Device = decodeDev(dec, table)
		ev.Fraud = dec.F64()
	case KindInstallBatch:
		ev.Pkg = decodeIstr(dec, strings)
		ev.Fraud = dec.F64()
		n := dec.Uvarint()
		if dec.Err() == nil && n > uint64(dec.Remaining()) {
			return fmt.Errorf("%w: install batch count %d", ErrFrame, n)
		}
		for i := uint64(0); i < n && dec.Err() == nil; i++ {
			ev.Devices = append(ev.Devices, decodeDev(dec, table))
		}
		ev.N = int64(len(ev.Devices))
	case KindPostback:
		ev.Offer = decodeIstr(dec, strings)
		ev.PostEvent = dec.U8()
		ev.Certified = dec.Bool()
	case KindCertifyBatch:
		ev.Offer = decodeIstr(dec, strings)
		ev.N = int64(dec.Uvarint())
	case KindSession:
		ev.Pkg = decodeIstr(dec, strings)
		ev.N = int64(dec.Uvarint())
		ev.Seconds = int64(dec.Uvarint())
	case KindPurchase:
		ev.Pkg = decodeIstr(dec, strings)
		ev.USD = dec.F64()
	case KindSettle:
		ev.Offer = decodeIstr(dec, strings)
		ev.N = int64(dec.Uvarint())
		ev.Batch = dec.Bool()
		ev.Gross = dec.F64()
		ev.AffCut = dec.F64()
		ev.UserPayout = dec.F64()
		ev.DevAcct = decodeIstr(dec, strings)
		ev.IIPAcct = decodeIstr(dec, strings)
		ev.AffAcct = decodeIstr(dec, strings)
		ev.UserAcct = decodeIstr(dec, strings)
	case KindEnforce:
		ev.Pkg = decodeIstr(dec, strings)
		ev.N = int64(dec.Uvarint())
	case KindChart:
		ev.Chart = dec.Str()
		n := dec.Uvarint()
		if dec.Err() == nil && n > uint64(dec.Remaining()) {
			return fmt.Errorf("%w: chart entry count %d", ErrFrame, n)
		}
		for i := uint64(0); i < n && dec.Err() == nil; i++ {
			ev.Entries = append(ev.Entries, playstore.ChartEntry{
				Rank:    int(dec.Varint()),
				Package: decodeIstr(dec, strings),
				Score:   dec.F64(),
			})
		}
	case KindDayEnd:
		ev.Day = dates.Date(dec.Varint())
		ev.CumOrganic = int64(dec.Uvarint())
		ev.CumIncent = int64(dec.Uvarint())
		ev.CumCertified = int64(dec.Uvarint())
		ev.CumRevenue = dec.F64()
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrFrame, uint8(k))
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("%w: decoding %s: %v", ErrFrame, k, err)
	}
	return nil
}

// decodeHeader parses a KindHeader payload.
func decodeHeader(payload []byte) (Header, error) {
	dec := binenc.NewDec(payload)
	h := Header{
		Version:      uint32(dec.Uvarint()),
		Seed:         dec.U64(),
		WindowStart:  dates.Date(dec.Varint()),
		WindowEnd:    dates.Date(dec.Varint()),
		MediatorName: dec.Str(),
		FeePerUser:   dec.F64(),
	}
	if err := dec.Done(); err != nil {
		return Header{}, fmt.Errorf("%w: decoding header: %v", ErrFrame, err)
	}
	if h.Version < minReadVersion || h.Version > Version {
		return Header{}, fmt.Errorf("stream: unsupported run-log version %d", h.Version)
	}
	return h, nil
}

// decodeBase parses a KindBase payload.
func decodeBase(payload []byte) (Base, error) {
	dec := binenc.NewDec(payload)
	b := Base{Store: dec.Blob(), Ledger: dec.Blob(), Mediator: dec.Blob()}
	n := dec.Uvarint()
	if dec.Err() == nil && n > uint64(dec.Remaining()) {
		return Base{}, fmt.Errorf("%w: device table of %d entries", ErrFrame, n)
	}
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		b.Devices = append(b.Devices, dec.Str())
	}
	n = dec.Uvarint()
	if dec.Err() == nil && n > uint64(dec.Remaining()) {
		return Base{}, fmt.Errorf("%w: string table of %d entries", ErrFrame, n)
	}
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		b.Strings = append(b.Strings, dec.Str())
	}
	if err := dec.Done(); err != nil {
		return Base{}, fmt.Errorf("%w: decoding base snapshot: %v", ErrFrame, err)
	}
	return b, nil
}
