package stream

import (
	"fmt"
	"io"

	"repro/internal/dates"
	"repro/internal/playstore"
)

// Writer appends a run log to an io.Writer. It is not safe for concurrent
// use: the engine writes only at day barriers, on one goroutine.
//
// Offset tracks the total bytes written (including the preamble), which is
// what checkpoints record so a resumed run knows where to truncate and
// continue the file.
type Writer struct {
	w    io.Writer
	off  int64
	enc  Encoder // scratch for single-event writes
	tab  map[string]uint32
	stab map[string]uint32
}

// NewWriter opens a fresh run log on w: magic, header frame, base frame.
func NewWriter(w io.Writer, h Header, base Base) (*Writer, error) {
	lw := &Writer{w: w, tab: base.DeviceTable(), stab: base.StringTable()}
	lw.enc.SetDeviceTable(lw.tab)
	lw.enc.SetStringTable(lw.stab)
	if err := lw.writeRaw([]byte(Magic)); err != nil {
		return nil, err
	}
	lw.enc.Header(h)
	lw.enc.Base(base)
	if err := lw.flushScratch(); err != nil {
		return nil, err
	}
	return lw, nil
}

// ResumeWriter continues an existing run log whose first offset bytes are
// already on disk (the caller truncates the file to the checkpoint's
// LogOffset and seeks to the end). No preamble is written; subsequent
// frames continue the byte stream exactly where the checkpointed run
// stopped. devices and strings must be the same tables the original log's
// base frame carries, or refs in the appended frames would not resolve.
func ResumeWriter(w io.Writer, offset int64, devices, strings []string) *Writer {
	base := Base{Devices: devices, Strings: strings}
	lw := &Writer{w: w, off: offset, tab: base.DeviceTable(), stab: base.StringTable()}
	lw.enc.SetDeviceTable(lw.tab)
	lw.enc.SetStringTable(lw.stab)
	return lw
}

// DeviceTable returns the writer's device-ref table; engine encoders
// feeding AppendFrames share it via Encoder.SetDeviceTable.
func (w *Writer) DeviceTable() map[string]uint32 { return w.tab }

// StringTable returns the writer's string-ref table; engine encoders
// feeding AppendFrames share it via Encoder.SetStringTable.
func (w *Writer) StringTable() map[string]uint32 { return w.stab }

// Offset returns the total log bytes written so far.
func (w *Writer) Offset() int64 { return w.off }

func (w *Writer) writeRaw(b []byte) error {
	n, err := w.w.Write(b)
	w.off += int64(n)
	if err != nil {
		return fmt.Errorf("stream: writing run log: %w", err)
	}
	return nil
}

func (w *Writer) flushScratch() error {
	err := w.writeRaw(w.enc.Bytes())
	w.enc.Reset()
	return err
}

// AppendFrames writes pre-encoded frames (a per-unit encoder's buffer)
// verbatim.
func (w *Writer) AppendFrames(frames []byte) error {
	return w.writeRaw(frames)
}

// DayStart writes a day-start marker.
func (w *Writer) DayStart(day dates.Date) error {
	w.enc.DayStart(day)
	return w.flushScratch()
}

// Enforce writes an enforcement action.
func (w *Writer) Enforce(pkg string, removed int64) error {
	w.enc.Enforce(pkg, removed)
	return w.flushScratch()
}

// Chart writes one chart snapshot.
func (w *Writer) Chart(name string, entries []playstore.ChartEntry) error {
	w.enc.Chart(name, entries)
	return w.flushScratch()
}

// DayEnd writes the day barrier with cumulative stats.
func (w *Writer) DayEnd(day dates.Date, cumOrganic, cumIncent, cumCertified int64, cumRevenue float64) error {
	w.enc.DayEnd(day, cumOrganic, cumIncent, cumCertified, cumRevenue)
	return w.flushScratch()
}

// Event writes one event frame (runlog tooling; the engine uses the
// specialized paths).
func (w *Writer) Event(ev *Event) error {
	if err := w.enc.Event(ev); err != nil {
		w.enc.Reset()
		return err
	}
	return w.flushScratch()
}

// Flush forwards to the underlying writer's Flush when it has one (e.g. a
// bufio.Writer); the run loop calls it at each day barrier so tail
// consumers observe whole days.
func (w *Writer) Flush() error {
	if f, ok := w.w.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			return fmt.Errorf("stream: flushing run log: %w", err)
		}
	}
	return nil
}
