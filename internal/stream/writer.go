package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/dates"
	"repro/internal/playstore"
)

// DefaultSegmentBytes is the segment-rotation threshold a fresh writer
// starts with: once a segment's frames exceed it, the run loop opens a
// new segment (index frame + embedded checkpoint) at the next day
// boundary. Small logs never reach it and stay single-segment.
const DefaultSegmentBytes = 64 << 20

// Writer appends a run log to an io.Writer. It is not safe for concurrent
// use: the engine writes only at day barriers, on one goroutine.
//
// Offset tracks the total bytes written (including the preamble), which is
// what checkpoints record so a resumed run knows where to truncate and
// continue the file.
type Writer struct {
	w    io.Writer
	off  int64
	err  error   // sticky: first write failure; all later writes refuse
	enc  Encoder // scratch for single-event writes
	tab  map[string]uint32
	stab map[string]uint32

	// Segmentation state. Rotation decisions depend only on these byte
	// offsets, which are deterministic, so segment frames land at the
	// same offsets for any worker count and across kill/resume.
	segBytes   int64 // rotation threshold; <= 0 disables rotation
	segStart   int64 // offset where the current segment's frames begin
	segOrdinal int64 // 0 = implicit first segment (replay from base)

	// metrics, when non-nil, counts bytes/frames/flushes. Pure
	// observation: no field of the write path reads it, so attaching
	// metrics cannot change the log bytes.
	metrics *WriterMetrics
}

// SetMetrics attaches throughput/latency instrumentation (nil detaches).
func (w *Writer) SetMetrics(m *WriterMetrics) { w.metrics = m }

// AddBatchRecords forwards engine-reported event-record counts to the
// attached metrics (no-op without metrics): the writer never parses its
// batch payloads, so the record count must come from the encoder side.
func (w *Writer) AddBatchRecords(n int64) { w.metrics.AddBatchRecords(n) }

// NewWriter opens a fresh run log on w: magic, header frame, base frame.
func NewWriter(w io.Writer, h Header, base Base) (*Writer, error) {
	lw := &Writer{w: w, tab: base.DeviceTable(), stab: base.StringTable(), segBytes: DefaultSegmentBytes}
	lw.enc.SetDeviceTable(lw.tab)
	lw.enc.SetStringTable(lw.stab)
	if err := lw.writeRaw([]byte(Magic)); err != nil {
		return nil, err
	}
	lw.enc.Header(h)
	lw.enc.Base(base)
	if err := lw.flushScratch(); err != nil {
		return nil, err
	}
	lw.segStart = lw.off
	return lw, nil
}

// ResumeWriter continues an existing run log whose first offset bytes are
// already on disk (the caller truncates the file to the checkpoint's
// LogOffset and seeks to the end). No preamble is written; subsequent
// frames continue the byte stream exactly where the checkpointed run
// stopped. devices and strings must be the same tables the original log's
// base frame carries, or refs in the appended frames would not resolve.
func ResumeWriter(w io.Writer, offset int64, devices, strings []string) *Writer {
	base := Base{Devices: devices, Strings: strings}
	lw := &Writer{w: w, off: offset, tab: base.DeviceTable(), stab: base.StringTable(), segBytes: DefaultSegmentBytes}
	lw.enc.SetDeviceTable(lw.tab)
	lw.enc.SetStringTable(lw.stab)
	return lw
}

// SetSegmentBytes overrides the segment-rotation threshold (<= 0 disables
// rotation). A resumed run must use the original run's value — restored
// via RestoreSegmentState — or rotation offsets, and therefore log bytes,
// would differ from the uninterrupted run.
func (w *Writer) SetSegmentBytes(n int64) { w.segBytes = n }

// RecordSegmentState copies the writer's segmentation state into a
// checkpoint, so a resumed writer re-triggers rotations at the exact
// offsets the uninterrupted run would have used.
func (w *Writer) RecordSegmentState(cp *Checkpoint) {
	cp.SegBytes, cp.SegStart, cp.SegOrdinal = w.segBytes, w.segStart, w.segOrdinal
}

// RestoreSegmentState reinstates checkpointed segmentation state on a
// resumed writer (the counterpart of RecordSegmentState).
func (w *Writer) RestoreSegmentState(cp *Checkpoint) {
	w.segBytes, w.segStart, w.segOrdinal = cp.SegBytes, cp.SegStart, cp.SegOrdinal
}

// ShouldRotate reports whether the current segment has exceeded the
// rotation threshold; the run loop checks it at each day barrier and
// calls StartSegment for the following day when it fires.
func (w *Writer) ShouldRotate() bool {
	return w.segBytes > 0 && w.off-w.segStart >= w.segBytes
}

// StartSegment writes a segment index frame: the next segment's first
// day plus an encoded reduced checkpoint (store/ledger snapshots and
// cumulative stats as of the end of the previous day) that lets a
// seeking replay start here instead of at the base snapshot.
func (w *Writer) StartSegment(firstDay dates.Date, checkpoint []byte) error {
	w.enc.Segment(Segment{Ordinal: w.segOrdinal + 1, FirstDay: firstDay, Checkpoint: checkpoint})
	if err := w.flushScratch(); err != nil {
		return err
	}
	w.segOrdinal++
	w.segStart = w.off
	return nil
}

// DeviceTable returns the writer's device-ref table; engine encoders
// feeding AppendFrames share it via Encoder.SetDeviceTable.
func (w *Writer) DeviceTable() map[string]uint32 { return w.tab }

// StringTable returns the writer's string-ref table; engine encoders
// feeding AppendFrames share it via Encoder.SetStringTable.
func (w *Writer) StringTable() map[string]uint32 { return w.stab }

// Offset returns the total log bytes written so far.
func (w *Writer) Offset() int64 { return w.off }

// Err returns the writer's sticky failure, if any. After the first
// failed write — a torn write, a full disk — the log's tail is suspect,
// so the writer refuses every subsequent write with the same error
// rather than appending more frames after the damage. The on-disk
// prefix up to the last flushed day barrier stays exactly as valid as
// it was; Recover salvages the tail.
func (w *Writer) Err() error { return w.err }

func (w *Writer) writeRaw(b []byte) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	if w.metrics != nil {
		w.metrics.Bytes.Add(int64(n))
	}
	if err != nil {
		w.err = fmt.Errorf("stream: writing run log: %w", err)
		return w.err
	}
	return nil
}

func (w *Writer) flushScratch() error {
	err := w.writeRaw(w.enc.Bytes())
	if w.metrics != nil {
		w.metrics.FrameWrites.Add(int64(w.enc.Records()))
	}
	w.enc.Reset()
	return err
}

// AppendFrames writes pre-encoded frames (a per-unit encoder's buffer)
// verbatim.
func (w *Writer) AppendFrames(frames []byte) error {
	return w.writeRaw(frames)
}

// EventBatch frames a day's worth of record-mode encoder buffers (see
// Encoder.SetRecordMode) as one event-batch frame: the records stream
// out in the given order and the CRC is computed incrementally over the
// concatenation, so hashing and framing are paid once per day instead of
// once per event. Empty buffers are skipped; a call with no bytes writes
// nothing. Batches beyond the frame-size bound split at buffer
// boundaries (a single buffer must fit one frame).
func (w *Writer) EventBatch(bufs ...[]byte) error {
	for start := 0; start < len(bufs); {
		end := start
		var n int64
		for end < len(bufs) {
			bl := int64(len(bufs[end]))
			if bl > maxFramePayload {
				return fmt.Errorf("%w: single unit buffer of %d bytes", ErrFrame, bl)
			}
			if n+bl > maxFramePayload {
				break
			}
			n += bl
			end++
		}
		if err := w.writeBatchFrame(bufs[start:end], n); err != nil {
			return err
		}
		start = end
	}
	return nil
}

func (w *Writer) writeBatchFrame(bufs [][]byte, total int64) error {
	if total == 0 {
		return nil
	}
	var hdr [5]byte
	hdr[0] = byte(KindEventBatch)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(total))
	if err := w.writeRaw(hdr[:]); err != nil {
		return err
	}
	var crc uint32
	var coalesced int64
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		coalesced++
		crc = crc32.Update(crc, castagnoli, b)
		if err := w.writeRaw(b); err != nil {
			return err
		}
	}
	if w.metrics != nil {
		w.metrics.BatchFrames.Inc()
		w.metrics.BatchBuffers.Add(coalesced)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return w.writeRaw(tail[:])
}

// DayStart writes a day-start marker.
func (w *Writer) DayStart(day dates.Date) error {
	w.enc.DayStart(day)
	return w.flushScratch()
}

// Enforce writes an enforcement action.
func (w *Writer) Enforce(pkg string, removed int64) error {
	w.enc.Enforce(pkg, removed)
	return w.flushScratch()
}

// Chart writes one chart snapshot.
func (w *Writer) Chart(name string, entries []playstore.ChartEntry) error {
	w.enc.Chart(name, entries)
	return w.flushScratch()
}

// DayEnd writes the day barrier with cumulative stats.
func (w *Writer) DayEnd(day dates.Date, cumOrganic, cumIncent, cumCertified int64, cumRevenue float64) error {
	w.enc.DayEnd(day, cumOrganic, cumIncent, cumCertified, cumRevenue)
	return w.flushScratch()
}

// Event writes one event frame (runlog tooling; the engine uses the
// specialized paths).
func (w *Writer) Event(ev *Event) error {
	if err := w.enc.Event(ev); err != nil {
		w.enc.Reset()
		return err
	}
	return w.flushScratch()
}

// Flush forwards to the underlying writer's Flush when it has one (e.g. a
// bufio.Writer); the run loop calls it at each day barrier so tail
// consumers observe whole days.
func (w *Writer) Flush() error {
	if f, ok := w.w.(interface{ Flush() error }); ok {
		var t0 time.Time
		if w.metrics != nil {
			t0 = time.Now()
		}
		if err := f.Flush(); err != nil {
			return fmt.Errorf("stream: flushing run log: %w", err)
		}
		if w.metrics != nil {
			w.metrics.Flushes.Inc()
			w.metrics.FlushSeconds.ObserveSince(t0)
		}
	}
	return nil
}
