package stream

import (
	"fmt"
	"io"

	"repro/internal/dates"
)

// CompactStats reports what a compaction wrote.
type CompactStats struct {
	Days     int   // complete days carried over
	Segments int   // segment index frames written (0 = single implicit segment)
	OutBytes int64 // size of the compacted log
}

// Compact rewrites a run log in the current (v3) format: each day's unit
// events are coalesced into one event-batch frame (one CRC per batch
// instead of one per frame), and segment index frames with embedded
// checkpoints are inserted at day boundaries every segmentBytes bytes
// (0 uses DefaultSegmentBytes), making the output seekable with ReplayDay.
// The input may be any readable version — a v2 frame-per-event log is
// upgraded, a v3 log is re-segmented.
//
// The full replay verification machinery drives the rewrite: every event
// is applied to a live replay state as it is copied, so the embedded
// checkpoints are bit-exact and a corrupt or diverged input fails instead
// of producing a plausible-looking output. A torn input (killed run) is
// rejected; resume the run or verify the prefix first.
func Compact(r io.Reader, out io.Writer, segmentBytes int64) (*CompactStats, error) {
	lr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	hdr := lr.Header()
	hdr.Version = Version
	base := lr.Base()
	w, err := NewWriter(out, hdr, base)
	if err != nil {
		return nil, err
	}
	if segmentBytes > 0 {
		w.SetSegmentBytes(segmentBytes)
	}
	st, err := baseReplayState(hdr, base)
	if err != nil {
		return nil, err
	}

	var batch Encoder
	batch.SetRecordMode(true)
	batch.SetDeviceTable(w.DeviceTable())
	batch.SetStringTable(w.StringTable())
	flush := func() error {
		if len(batch.Bytes()) == 0 {
			return nil
		}
		err := w.EventBatch(batch.Bytes())
		batch.Reset()
		return err
	}

	stats := &CompactStats{}
	var prevDay dates.Date
	var ev Event
	for {
		err := lr.Next(&ev)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("stream: compacting a log that ends mid-frame (killed run): %w", err)
		}
		if err != nil {
			return nil, err
		}
		switch {
		case ev.Kind == KindDayStart:
			if stats.Days > 0 && w.ShouldRotate() {
				cp := &Checkpoint{
					Day:                  prevDay,
					Days:                 int64(st.res.Stats.Days),
					OrganicInstalls:      st.res.Stats.OrganicInstalls,
					IncentivizedInstalls: st.res.Stats.IncentivizedInstalls,
					CertifiedCompletions: st.res.Stats.CertifiedCompletions,
					RevenueUSD:           st.res.Stats.RevenueUSD,
					Store:                st.res.Store.EncodeSnapshot(),
					Ledger:               st.res.Ledger.EncodeSnapshot(),
				}
				if err := w.StartSegment(ev.Day, cp.Encode()); err != nil {
					return nil, err
				}
				stats.Segments++
			}
			if err := w.DayStart(ev.Day); err != nil {
				return nil, err
			}
		case ev.Kind >= KindOrganic && ev.Kind <= KindSettle:
			if err := batch.Event(&ev); err != nil {
				return nil, err
			}
		default:
			// Barrier-side frames (enforce, chart, day-end) stay standalone;
			// the day's unit batch must land before them.
			if err := flush(); err != nil {
				return nil, err
			}
			if err := w.Event(&ev); err != nil {
				return nil, err
			}
			if ev.Kind == KindDayEnd {
				stats.Days++
				prevDay = ev.Day
			}
		}
		if err := st.apply(&ev); err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	stats.OutBytes = w.Offset()
	return stats, nil
}
