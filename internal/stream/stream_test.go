package stream

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/mediator"
	"repro/internal/playstore"
	"repro/internal/randx"
)

// sampleEvents covers every event kind with representative field values.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindDayStart, Day: 59},
		{Kind: KindOrganic, Pkg: "com.app.one", N: 17, Fraud: 0.05, DAU: 40, Seconds: 120, USD: 3.25},
		{Kind: KindOrganic, Pkg: "com.idle", N: 0, Fraud: 0.05, DAU: 0, Seconds: 0, USD: 0},
		{Kind: KindClick, Offer: "fyber-0001", Worker: "w-17"},
		{Kind: KindInstall, Pkg: "com.app.one", Device: "dev-9", Fraud: 0.81},
		{Kind: KindInstallBatch, Pkg: "com.app.two", Fraud: 0.66, N: 3, Devices: []string{"a", "b", "c"}},
		{Kind: KindPostback, Offer: "fyber-0001", PostEvent: 2, Certified: true},
		{Kind: KindCertifyBatch, Offer: "ayet-0002", N: 55},
		{Kind: KindSession, Pkg: "com.app.one", N: 12, Seconds: 300},
		{Kind: KindPurchase, Pkg: "com.app.one", USD: 4.99},
		{Kind: KindSettle, Offer: "fyber-0001", N: 1, Batch: false,
			Gross: 1.23, AffCut: 0.25, UserPayout: 0.5,
			DevAcct: "dev:d", IIPAcct: "iip:f", AffAcct: "affiliate:x", UserAcct: "user:u"},
		{Kind: KindSettle, Offer: "ayet-0002", N: 40, Batch: true,
			Gross: 88, AffCut: 17, UserPayout: 33,
			DevAcct: "dev:d2", IIPAcct: "iip:a", AffAcct: "affiliate:y", UserAcct: "user:pool-a"},
		{Kind: KindEnforce, Pkg: "com.app.two", N: 420},
		{Kind: KindChart, Chart: playstore.ChartTopFree, Entries: []playstore.ChartEntry{
			{Rank: 1, Package: "com.app.one", Score: 12.5},
			{Rank: 2, Package: "com.app.two", Score: math.Float64frombits(0x3ff123456789abcd)},
		}},
		{Kind: KindDayEnd, Day: 59, CumOrganic: 1000, CumIncent: 50, CumCertified: 48, CumRevenue: 123.456},
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for _, want := range sampleEvents() {
		var enc Encoder
		if err := enc.Event(&want); err != nil {
			t.Fatalf("%s: %v", want.Kind, err)
		}
		first := append([]byte(nil), enc.Bytes()...)

		// Decode through the reader machinery (with CRC verification).
		k, payload, next, ok, err := (&Tail{r: bytes.NewReader(first)}).peekFrame(0)
		if err != nil || !ok {
			t.Fatalf("%s: peekFrame = (%v, %v)", want.Kind, ok, err)
		}
		if next != int64(len(first)) {
			t.Fatalf("%s: frame length %d, want %d", want.Kind, next, len(first))
		}
		var got Event
		if err := decodePayload(k, payload, &got, nil, nil); err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}

		// Re-encode: byte-identical (canonical codec).
		var enc2 Encoder
		if err := enc2.Event(&got); err != nil {
			t.Fatalf("%s: re-encode: %v", want.Kind, err)
		}
		if !bytes.Equal(enc2.Bytes(), first) {
			t.Errorf("%s: encode→decode→encode not byte-identical\n  first:  %x\n  second: %x",
				want.Kind, first, enc2.Bytes())
		}
	}
}

func TestReaderRejectsCorruptFrames(t *testing.T) {
	var enc Encoder
	enc.Header(Header{Version: Version, MediatorName: "m"})
	enc.Base(Base{Store: []byte{1}, Ledger: []byte{2}, Mediator: []byte{3}})
	enc.DayStart(10)
	log := append([]byte(Magic), enc.Bytes()...)

	if _, err := NewReader(bytes.NewReader(log[:4])); err == nil {
		t.Error("truncated magic must fail")
	}
	bad := append([]byte(nil), log...)
	bad[len(bad)-6] ^= 0xff // flip a payload byte of the last frame
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := r.Next(&ev); err == nil {
		t.Error("CRC corruption must fail Next")
	}

	// A clean log reads through to io.EOF.
	r, err = NewReader(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Next(&ev); err != nil || ev.Kind != KindDayStart || ev.Day != 10 {
		t.Fatalf("Next = %+v, %v", ev, err)
	}
	if err := r.Next(&ev); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestReaderReportsKilledRun(t *testing.T) {
	var enc Encoder
	enc.Header(Header{Version: Version, MediatorName: "m"})
	enc.Base(Base{})
	enc.DayStart(3)
	log := append([]byte(Magic), enc.Bytes()...)
	r, err := NewReader(bytes.NewReader(log[:len(log)-2])) // mid-frame kill
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := r.Next(&ev); err != io.ErrUnexpectedEOF {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriterTailRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Version: Version, Seed: 7, WindowStart: 1, WindowEnd: 2, MediatorName: "med", FeePerUser: 0.03},
		Base{Store: []byte("s"), Ledger: []byte("l"), Mediator: []byte("m")})
	if err != nil {
		t.Fatal(err)
	}

	// Tail over the growing buffer: before any event, no Next.
	tail := NewTail(bytes.NewReader(buf.Bytes()))
	var ev Event
	if ok, err := tail.Next(&ev); ok || err != nil {
		t.Fatalf("tail on preamble-only log = (%v, %v), want (false, nil)", ok, err)
	}

	if err := w.DayStart(5); err != nil {
		t.Fatal(err)
	}
	var unit Encoder
	unit.Install("com.x", "d1", 0.5)
	unit.Session("com.x", 1, 60)
	if err := w.AppendFrames(unit.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.DayEnd(5, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if w.Offset() != int64(buf.Len()) {
		t.Fatalf("writer offset %d, file has %d bytes", w.Offset(), buf.Len())
	}

	// The same tail instance picks up the new bytes (fresh ReaderAt over
	// the grown buffer, same offsets).
	tail.r = bytes.NewReader(buf.Bytes())
	hdr, ok, err := tail.Header()
	if err != nil || !ok || hdr.MediatorName != "med" {
		t.Fatalf("tail header = (%+v, %v, %v)", hdr, ok, err)
	}
	var kinds []Kind
	for {
		ok, err := tail.Next(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindDayStart, KindInstall, KindSession, KindDayEnd}
	if len(kinds) != len(want) {
		t.Fatalf("tail saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("tail saw %v, want %v", kinds, want)
		}
	}
	if tail.Offset() != int64(buf.Len()) {
		t.Errorf("tail offset %d, want %d", tail.Offset(), buf.Len())
	}
}

func TestResumeWriterContinuesByteStream(t *testing.T) {
	var full bytes.Buffer
	w, err := NewWriter(&full, Header{Version: Version}, Base{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DayStart(1); err != nil {
		t.Fatal(err)
	}
	mid := w.Offset()
	if err := w.DayEnd(1, 10, 2, 1, 0.5); err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	rw := ResumeWriter(&rest, mid, nil, nil)
	if rw.Offset() != mid {
		t.Fatalf("resume offset %d, want %d", rw.Offset(), mid)
	}
	if err := rw.DayEnd(1, 10, 2, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest.Bytes(), full.Bytes()[mid:]) {
		t.Error("resumed writer bytes differ from the live suffix")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := &Checkpoint{
		Day: 42, Days: 12, OrganicInstalls: 100, IncentivizedInstalls: 50,
		CertifiedCompletions: 48, RevenueUSD: 1.5, LogOffset: 9999,
		Store: []byte("store"), Ledger: []byte("ledger"), Mediator: []byte("med"),
		Platforms: []NamedBlob{{Name: "fyber", Data: []byte{1}}, {Name: "rankapp", Data: []byte{2}}},
		Streams:   []NamedBlob{{Name: "engine/com.x", Data: []byte{3, 4}}},
		Installs:  []Install{{Device: "d", App: "a", Day: 41}},
	}
	enc := c.Encode()
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("checkpoint encode→decode→encode not byte-identical")
	}
	if s, ok := got.Stream("engine/com.x"); !ok || !bytes.Equal(s, []byte{3, 4}) {
		t.Errorf("Stream lookup = (%v, %v)", s, ok)
	}
	if p, ok := got.Platform("rankapp"); !ok || !bytes.Equal(p, []byte{2}) {
		t.Errorf("Platform lookup = (%v, %v)", p, ok)
	}
	if _, ok := got.Stream("missing"); ok {
		t.Error("missing stream lookup must report false")
	}
	// Corruption must be rejected.
	if _, err := DecodeCheckpoint(enc[:len(enc)-3]); err == nil {
		t.Error("truncated checkpoint must fail")
	}
	bad := append([]byte(nil), enc...)
	bad[20] ^= 0x01
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Error("bit-flipped checkpoint must fail CRC")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.ckpt"
	c := &Checkpoint{Day: 3, LogOffset: 17, Store: []byte("x")}
	if err := WriteCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != 3 || got.LogOffset != 17 || !bytes.Equal(got.Store, []byte("x")) {
		t.Errorf("checkpoint file round-trip = %+v", got)
	}
}

// TestReplayAppliesEvents drives a hand-built log through Replay and
// checks the rebuilt store, ledger, and stats (the full-engine replay
// equivalence lives in internal/sim's TestReplayMatchesLive).
func TestReplayAppliesEvents(t *testing.T) {
	day0 := dates.Date(100)

	// Base world: one developer, two apps, an empty ledger, a mediator.
	store := playstore.New(day0)
	store.SetChartSize(4)
	store.AddDeveloper(playstore.Developer{ID: "d"})
	for _, pkg := range []string{"com.a", "com.b"} {
		if err := store.Publish(playstore.Listing{Package: pkg, Title: pkg, Genre: "Casual", Developer: "d", Released: day0.AddDays(-30)}); err != nil {
			t.Fatal(err)
		}
	}
	ledger := mediator.NewLedger()
	med := mediator.New("med")

	live := func() (*playstore.Store, *mediator.Ledger) {
		s, err := playstore.DecodeSnapshot(store.EncodeSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		l := mediator.NewLedger()
		if err := l.RestoreSnapshot(ledger.EncodeSnapshot()); err != nil {
			t.Fatal(err)
		}
		return s, l
	}
	liveStore, liveLedger := live()

	var buf bytes.Buffer
	w, err := NewWriter(&buf,
		Header{Version: Version, Seed: 1, WindowStart: day0, WindowEnd: day0 + 1, MediatorName: "med", FeePerUser: 0.03},
		Base{Store: store.EncodeSnapshot(), Ledger: ledger.EncodeSnapshot(), Mediator: med.EncodeSnapshot()})
	if err != nil {
		t.Fatal(err)
	}

	r := randx.Derive(5, "replay-test")
	var cumOrganic, cumIncent, cumCertified int64
	var cumRevenue float64
	for day := day0; day <= day0+1; day++ {
		if err := w.DayStart(day); err != nil {
			t.Fatal(err)
		}
		var unit Encoder
		// Organic on com.a.
		n, dau, sec := int64(r.IntN(50)+1), int64(r.IntN(30)+1), int64(90)
		usd := r.LogNormal(0, 1)
		unit.Organic("com.a", n, 0.05, dau, sec, usd)
		if err := liveStore.RecordInstallBatch("com.a", day, n, playstore.SourceOrganic, 0.05); err != nil {
			t.Fatal(err)
		}
		if err := liveStore.RecordSessionBatch("com.a", day, dau, sec); err != nil {
			t.Fatal(err)
		}
		if err := liveStore.RecordPurchase("com.a", playstore.Purchase{Day: day, USD: usd}); err != nil {
			t.Fatal(err)
		}
		cumOrganic += n
		cumRevenue += usd
		// One full-fidelity incentivized delivery on com.b.
		unit.Click("offer-1", "w1")
		unit.Install("com.b", "w1", 0.9)
		if err := liveStore.RecordInstall("com.b", playstore.Install{Day: day, Source: playstore.SourceReferral, FraudScore: 0.9}); err != nil {
			t.Fatal(err)
		}
		unit.Postback("offer-1", 0, true)
		cumCertified++
		// The live engine adds affCut+userPayout at runtime from float64
		// values; mirror that exactly (an untyped constant sum would fold
		// with a single rounding and can differ in the last bit).
		affCut, userPayout := 0.025, 0.06
		unit.Settle("offer-1", 1, false, 0.12, affCut, userPayout, "dev:d", "iip:x", "affiliate:z", "user:w1")
		if err := liveLedger.PostAll([]mediator.Tx{
			{From: "dev:d", To: "iip:x", Amount: 0.12, Memo: "offer completion"},
			{From: "iip:x", To: "affiliate:z", Amount: affCut + userPayout, Memo: "affiliate share"},
			{From: "affiliate:z", To: "user:w1", Amount: userPayout, Memo: "reward redemption"},
			{From: "dev:d", To: "mediator:med", Amount: 0.03, Memo: "attribution fee"},
		}); err != nil {
			t.Fatal(err)
		}
		cumIncent++
		if err := w.AppendFrames(unit.Bytes()); err != nil {
			t.Fatal(err)
		}
		liveStore.StepDay(day)
		for _, act := range liveStore.LastEnforcementActions() {
			if err := w.Enforce(act.Package, act.Removed); err != nil {
				t.Fatal(err)
			}
		}
		for _, name := range playstore.ChartNames {
			if err := w.Chart(name, liveStore.Chart(name)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.DayEnd(day, cumOrganic, cumIncent, cumCertified, cumRevenue); err != nil {
			t.Fatal(err)
		}
	}

	res, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Days != 2 || res.Stats.OrganicInstalls != cumOrganic ||
		res.Stats.IncentivizedInstalls != cumIncent || res.Stats.CertifiedCompletions != cumCertified ||
		math.Float64bits(res.Stats.RevenueUSD) != math.Float64bits(cumRevenue) {
		t.Errorf("replay stats = %+v", res.Stats)
	}
	if !bytes.Equal(res.Store.EncodeSnapshot(), liveStore.EncodeSnapshot()) {
		t.Error("replayed store differs from live store")
	}
	if !bytes.Equal(res.Ledger.EncodeSnapshot(), liveLedger.EncodeSnapshot()) {
		t.Error("replayed ledger differs from live ledger")
	}
	if len(res.Installs) != 2 || res.Installs[0].Device != "w1" || res.Installs[0].App != "com.b" {
		t.Errorf("replayed install log = %+v", res.Installs)
	}

	// A tampered day-end stat line must be caught by the verification.
	tampered := append([]byte(nil), buf.Bytes()...)
	var enc2 Encoder
	enc2.DayEnd(day0+1, cumOrganic+1, cumIncent, cumCertified, cumRevenue)
	frame := enc2.Bytes()
	copy(tampered[len(tampered)-len(frame):], frame)
	if _, err := Replay(bytes.NewReader(tampered)); err == nil {
		t.Error("tampered day-end stats must fail replay verification")
	}
}
