// Package crunchbase is the funding-database substrate for the paper's
// Section 4.3.3 analysis: organizations, funding rounds with investor
// types, and the fuzzy matching from Play Store developer metadata
// (company name, website) to database organizations.
package crunchbase

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dates"
)

// RoundType classifies a funding round.
type RoundType string

// Round types observed in the paper's analysis.
const (
	Seed    RoundType = "seed"
	Angel   RoundType = "angel"
	SeriesA RoundType = "series-a"
	SeriesB RoundType = "series-b"
	SeriesC RoundType = "series-c"
	SeriesD RoundType = "series-d"
	SeriesF RoundType = "series-f"
)

// Organization is one company in the database snapshot.
type Organization struct {
	ID      string
	Name    string
	Website string
	Country string
	// Public marks publicly traded companies.
	Public bool
}

// Round is one funding round.
type Round struct {
	OrgID     string
	Date      dates.Date
	Type      RoundType
	AmountUSD float64
	Investor  string
}

// DB is an in-memory Crunchbase snapshot.
type DB struct {
	mu     sync.RWMutex
	orgs   map[string]Organization
	rounds map[string][]Round // orgID -> rounds sorted by date
	byName map[string]string  // normalized name -> orgID
	byHost map[string]string  // website host -> orgID
	// Snapshot is when the database was downloaded; rounds after it are
	// invisible (the paper used an October 2019 snapshot).
	Snapshot dates.Date
}

// New returns an empty snapshot taken at the given date.
func New(snapshot dates.Date) *DB {
	return &DB{
		orgs:     map[string]Organization{},
		rounds:   map[string][]Round{},
		byName:   map[string]string{},
		byHost:   map[string]string{},
		Snapshot: snapshot,
	}
}

// AddOrganization inserts a company and indexes it for matching.
func (db *DB) AddOrganization(o Organization) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.orgs[o.ID] = o
	if n := NormalizeName(o.Name); n != "" {
		db.byName[n] = o.ID
	}
	if h := hostOf(o.Website); h != "" {
		db.byHost[h] = o.ID
	}
}

// AddRound inserts a funding round; rounds dated after the snapshot are
// retained but never returned by queries.
func (db *DB) AddRound(r Round) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rounds := append(db.rounds[r.OrgID], r)
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].Date < rounds[j].Date })
	db.rounds[r.OrgID] = rounds
}

// NumOrganizations returns the company count.
func (db *DB) NumOrganizations() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.orgs)
}

// Organization fetches a company by ID.
func (db *DB) Organization(id string) (Organization, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.orgs[id]
	return o, ok
}

// Match finds the organization for a Play Store developer using its
// company name and website, mirroring the paper's "searching for developer
// information from Google Play Store" matching (23% of apps matched).
// Missing metadata (empty name and website) never matches.
func (db *DB) Match(devName, website string) (Organization, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if h := hostOf(website); h != "" {
		if id, ok := db.byHost[h]; ok {
			return db.orgs[id], true
		}
	}
	if n := NormalizeName(devName); n != "" {
		if id, ok := db.byName[n]; ok {
			return db.orgs[id], true
		}
	}
	return Organization{}, false
}

// Rounds returns all rounds for an organization visible in the snapshot.
func (db *DB) Rounds(orgID string) []Round {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Round
	for _, r := range db.rounds[orgID] {
		if r.Date <= db.Snapshot {
			out = append(out, r)
		}
	}
	return out
}

// RoundsAfter returns snapshot-visible rounds strictly after a date — the
// "raised funding after running the incentivized install campaign" query.
func (db *DB) RoundsAfter(orgID string, after dates.Date) []Round {
	var out []Round
	for _, r := range db.Rounds(orgID) {
		if r.Date > after {
			out = append(out, r)
		}
	}
	return out
}

// corporate suffixes stripped during name normalization.
var corpSuffixes = []string{
	"inc", "llc", "ltd", "limited", "corp", "corporation", "gmbh", "co",
	"sas", "sarl", "bv", "oy", "ab", "plc",
}

// NormalizeName lowercases a company name, strips punctuation and
// corporate suffixes, and collapses whitespace so "Acme Labs, Inc." and
// "acme labs" match.
func NormalizeName(name string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(name) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteRune(' ')
		}
	}
	fields := strings.Fields(b.String())
	for len(fields) > 1 {
		last := fields[len(fields)-1]
		stripped := false
		for _, suf := range corpSuffixes {
			if last == suf {
				fields = fields[:len(fields)-1]
				stripped = true
				break
			}
		}
		if !stripped {
			break
		}
	}
	return strings.Join(fields, " ")
}

// hostOf extracts a lowercase host from a URL-ish string.
func hostOf(website string) string {
	w := strings.ToLower(strings.TrimSpace(website))
	if w == "" {
		return ""
	}
	w = strings.TrimPrefix(w, "https://")
	w = strings.TrimPrefix(w, "http://")
	w = strings.TrimPrefix(w, "www.")
	if i := strings.IndexAny(w, "/?#"); i >= 0 {
		w = w[:i]
	}
	return w
}
