package crunchbase

import (
	"testing"

	"repro/internal/dates"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	db := New(dates.CrunchbaseSnapshot)
	db.AddOrganization(Organization{
		ID: "org1", Name: "Dashlane, Inc.", Website: "https://www.dashlane.com/about",
		Country: "USA",
	})
	db.AddOrganization(Organization{
		ID: "org2", Name: "Droom Technology Ltd", Website: "https://droom.in",
		Country: "India",
	})
	db.AddOrganization(Organization{
		ID: "org3", Name: "Redfin Corp", Website: "https://redfin.com", Public: true,
	})
	return db
}

func TestMatchByWebsite(t *testing.T) {
	db := newDB(t)
	org, ok := db.Match("Totally Different Name", "http://dashlane.com")
	if !ok || org.ID != "org1" {
		t.Errorf("website match failed: %v %v", org, ok)
	}
}

func TestMatchByNormalizedName(t *testing.T) {
	db := newDB(t)
	org, ok := db.Match("dashlane", "")
	if !ok || org.ID != "org1" {
		t.Errorf("name match failed: %v %v", org, ok)
	}
	org, ok = db.Match("DROOM TECHNOLOGY", "")
	if !ok || org.ID != "org2" {
		t.Errorf("suffix-stripped name match failed: %v %v", org, ok)
	}
}

func TestMatchMissingMetadata(t *testing.T) {
	db := newDB(t)
	if _, ok := db.Match("", ""); ok {
		t.Error("empty metadata must not match")
	}
	if _, ok := db.Match("Unknown Studio", "https://unknown.example"); ok {
		t.Error("unmatched developer should miss")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Dashlane, Inc.", "dashlane"},
		{"Acme Labs LLC", "acme labs"},
		{"ACME-LABS", "acme labs"},
		{"Redfin Corp", "redfin"},
		{"Co", "co"}, // a lone suffix word is kept (it is the whole name)
		{"Droom Technology Ltd", "droom technology"},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHostOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"https://www.dashlane.com/about", "dashlane.com"},
		{"http://droom.in", "droom.in"},
		{"redfin.com/path?q=1", "redfin.com"},
		{"", ""},
	}
	for _, c := range cases {
		if got := hostOf(c.in); got != c.want {
			t.Errorf("hostOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRoundsSortedAndSnapshotFiltered(t *testing.T) {
	db := newDB(t)
	apr12 := dates.FromTime(dates.Epoch.AddDate(0, 3, 11)) // 2019-04-12
	may30 := dates.FromTime(dates.Epoch.AddDate(0, 4, 29)) // 2019-05-30
	db.AddRound(Round{OrgID: "org1", Date: may30, Type: SeriesD, AmountUSD: 110e6})
	db.AddRound(Round{OrgID: "org1", Date: apr12, Type: SeriesC, AmountUSD: 30e6})
	// A round after the snapshot is invisible.
	db.AddRound(Round{OrgID: "org1", Date: dates.CrunchbaseSnapshot.AddDays(30), Type: SeriesF, AmountUSD: 1})

	rounds := db.Rounds("org1")
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	if rounds[0].Date != apr12 || rounds[1].Date != may30 {
		t.Error("rounds must be date-sorted")
	}
}

func TestRoundsAfterCampaign(t *testing.T) {
	// Dashlane case study: campaign Mar 12-27, funding Apr 12 and May 30.
	db := newDB(t)
	campaignEnd := dates.StudyStart.AddDays(26) // ~Mar 27
	apr12 := campaignEnd.AddDays(16)
	db.AddRound(Round{OrgID: "org1", Date: apr12, Type: SeriesC, AmountUSD: 30e6})
	db.AddRound(Round{OrgID: "org1", Date: campaignEnd.AddDays(-40), Type: Seed, AmountUSD: 2e6})

	after := db.RoundsAfter("org1", campaignEnd)
	if len(after) != 1 || after[0].Type != SeriesC {
		t.Errorf("RoundsAfter = %v, want the series C round", after)
	}
	if got := db.RoundsAfter("org1", apr12.AddDays(1)); len(got) != 0 {
		t.Errorf("no rounds expected, got %v", got)
	}
}

func TestOrganizationLookup(t *testing.T) {
	db := newDB(t)
	if db.NumOrganizations() != 3 {
		t.Errorf("orgs = %d", db.NumOrganizations())
	}
	o, ok := db.Organization("org3")
	if !ok || !o.Public {
		t.Error("org3 should be a public company")
	}
	if _, ok := db.Organization("missing"); ok {
		t.Error("missing org should not resolve")
	}
}
