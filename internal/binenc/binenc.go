// Package binenc provides the little-endian binary encoding primitives
// shared by the run-log event codec (internal/stream) and the state
// snapshot codecs (internal/playstore, internal/mediator, internal/iip).
// Encodings are canonical — a given value has exactly one byte form — so
// encode→decode→encode round-trips are byte-identical, which is what the
// run log's determinism and resume guarantees are asserted against.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Decode errors.
var (
	ErrShort    = errors.New("binenc: buffer too short")
	ErrOverflow = errors.New("binenc: varint overflows")
	ErrTooLong  = errors.New("binenc: declared length exceeds remaining input")
)

// Enc is an append-only encoder. The zero value is ready to use; Bytes
// returns everything appended so far. Enc never fails: every Go value the
// writers hand it has exactly one encoding.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with capacity preallocated.
func NewEnc(capacity int) *Enc {
	return &Enc{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer (not a copy).
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns how many bytes have been appended.
func (e *Enc) Len() int { return len(e.buf) }

// Reset empties the encoder, keeping its capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Grow reserves capacity for at least n more bytes without changing the
// length, so a known-size burst of appends never reallocates.
func (e *Enc) Grow(n int) {
	if cap(e.buf)-len(e.buf) >= n {
		return
	}
	grown := make([]byte, len(e.buf), len(e.buf)+n)
	copy(grown, e.buf)
	e.buf = grown
}

// Pad appends n zero bytes; frame writers use it to open a gap that a
// backpatch (e.g. a shifted varint length) then fills.
func (e *Enc) Pad(n int) {
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, 0)
	}
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// PutU32 writes a fixed-width little-endian uint32 into b[0:4]; frame
// writers use it to backpatch length placeholders.
func PutU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zig-zag signed varint.
func (e *Enc) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends the IEEE-754 bit pattern of v (bit-exact round trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends 1 or 0.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Dec decodes a buffer produced by Enc. It is error-sticky: after the
// first failure every read returns the zero value and Err reports the
// failure, so decoders can run a straight-line field sequence and check
// once at the end.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns how many bytes have not been consumed.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Done returns an error unless the buffer was consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("binenc: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Fail marks the decoder as failed (if it is not already); callers use it
// when a decoded value is structurally invalid (e.g. an element count the
// remaining input cannot possibly hold).
func (d *Dec) Fail(err error) { d.fail(err) }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(ErrShort)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed-width little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShort)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShort)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// F64 reads an IEEE-754 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a byte and rejects anything but 0 or 1, keeping the encoding
// canonical.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(errors.New("binenc: non-canonical bool"))
		return false
	}
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTooLong)
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice (a copy).
func (d *Dec) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTooLong)
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}
