package binenc

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEnc(64)
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.Uvarint(300)
	e.Varint(-12345)
	e.F64(math.Pi)
	e.F64(math.Float64frombits(0x7ff8000000000001)) // NaN payload survives
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Str("")
	e.Blob([]byte{1, 2, 3})

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := math.Float64bits(d.F64()); got != 0x7ff8000000000001 {
		t.Errorf("NaN bits = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools did not round-trip")
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDecStickyErrors(t *testing.T) {
	d := NewDec([]byte{1})
	d.U64() // too short
	if d.Err() == nil {
		t.Fatal("short read not detected")
	}
	if d.U8() != 0 || d.Str() != "" || d.Uvarint() != 0 {
		t.Error("reads after failure must return zero values")
	}
	if d.Done() == nil {
		t.Error("Done must report the sticky error")
	}
}

func TestDecRejectsOversizedLength(t *testing.T) {
	e := NewEnc(8)
	e.Uvarint(1 << 40) // declared string length far beyond the buffer
	d := NewDec(e.Bytes())
	if d.Str() != "" || d.Err() == nil {
		t.Error("oversized length must fail, not allocate")
	}
}

func TestDecRejectsNonCanonicalBool(t *testing.T) {
	d := NewDec([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Error("bool byte 2 must be rejected")
	}
}

func TestDoneDetectsTrailingBytes(t *testing.T) {
	d := NewDec([]byte{0, 0})
	d.U8()
	if d.Done() == nil {
		t.Error("trailing byte not detected")
	}
}
