// Package conc provides the one concurrency primitive the simulation's
// hot paths share: a bounded fan-out over an index range. The engine's
// day phases and the store's StepDay shard scan both drain work through
// it, so pool mechanics live in exactly one place.
package conc

import (
	"sync"
	"sync/atomic"
)

// ForN runs fn(0), ..., fn(n-1), each exactly once, across at most
// workers goroutines, and returns when every call has completed.
// workers <= 1 (or n <= 1) runs inline on the caller's goroutine.
// Scheduling order is unspecified: callers must make fn order-free,
// which is precisely the determinism contract the simulation's work
// units are built around.
func ForN(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
