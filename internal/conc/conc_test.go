package conc

import (
	"sync/atomic"
	"testing"
)

func TestForNRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]atomic.Int32
		ForN(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForNZeroAndOne(t *testing.T) {
	ran := false
	ForN(4, 0, func(int) { ran = true })
	if ran {
		t.Error("n=0 must not call fn")
	}
	count := 0
	ForN(8, 1, func(int) { count++ }) // inline: no goroutine, no race
	if count != 1 {
		t.Errorf("n=1 ran %d times", count)
	}
}
