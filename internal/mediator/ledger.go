// Package mediator models the third-party attribution services
// (AppsFlyer, Kochava, Adjust in the paper) that certify offer completion,
// and the double-entry money ledger that executes Figure 1's payment flow:
// developer -> IIP -> affiliate app -> end user, with the mediator taking a
// per-tracked-user fee.
package mediator

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBadAmount rejects non-positive transfers.
var ErrBadAmount = errors.New("mediator: transfer amount must be positive")

// Tx is one ledger transaction.
type Tx struct {
	From, To string
	Amount   float64
	Memo     string
}

// Ledger is a double-entry account book. Accounts are created on first
// use; external parties (a developer's bank) naturally go negative as they
// fund the system, so the sum of all balances is always zero.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]float64
	txs      []Tx
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{balances: map[string]float64{}}
}

// Post transfers amount from one account to another.
func (l *Ledger) Post(from, to string, amount float64, memo string) error {
	if amount <= 0 {
		return fmt.Errorf("%w: %.4f (%s -> %s)", ErrBadAmount, amount, from, to)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances[from] -= amount
	l.balances[to] += amount
	l.txs = append(l.txs, Tx{From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// Balance returns an account's balance (0 for unknown accounts).
func (l *Ledger) Balance(account string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[account]
}

// Sum returns the sum over all balances; it is 0 unless the ledger is
// corrupted.
func (l *Ledger) Sum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, b := range l.balances {
		total += b
	}
	return total
}

// NumTransactions returns how many transfers have been posted.
func (l *Ledger) NumTransactions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.txs)
}

// Transactions returns a copy of the transaction log.
func (l *Ledger) Transactions() []Tx {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Tx(nil), l.txs...)
}

// Account name helpers keep the naming scheme in one place.
func DeveloperAccount(id string) string  { return "dev:" + id }
func IIPAccount(name string) string      { return "iip:" + name }
func AffiliateAccount(pkg string) string { return "affiliate:" + pkg }
func UserAccount(id string) string       { return "user:" + id }
func MediatorAccount(name string) string { return "mediator:" + name }

// ExternalWorld is the funding source account (developer banks, gift-card
// processors).
const ExternalWorld = "external"
