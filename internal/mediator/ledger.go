// Package mediator models the third-party attribution services
// (AppsFlyer, Kochava, Adjust in the paper) that certify offer completion,
// and the double-entry money ledger that executes Figure 1's payment flow:
// developer -> IIP -> affiliate app -> end user, with the mediator taking a
// per-tracked-user fee.
package mediator

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBadAmount rejects non-positive transfers.
var ErrBadAmount = errors.New("mediator: transfer amount must be positive")

// Tx is one ledger transaction.
type Tx struct {
	From, To string
	Amount   float64
	Memo     string
}

// Ledger is a double-entry account book. Accounts are created on first
// use; external parties (a developer's bank) naturally go negative as they
// fund the system, so the sum of all balances is always zero.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]float64
	txs      []Tx
	// balancesOnly drops the per-transfer log (and its memo strings),
	// bounding the ledger at O(accounts) instead of O(run) — the
	// massive-world configs switch it on (DESIGN.md E12). Balances,
	// conservation, and snapshots stay bit-identical; only the retained
	// Tx history (empty in snapshots too) differs.
	balancesOnly bool
}

// NewLedger returns an empty ledger that retains its full transaction
// log.
func NewLedger() *Ledger {
	return &Ledger{balances: map[string]float64{}}
}

// DisableTxLog switches the ledger to balances-only accounting: future
// postings update balances without appending to the transaction log, and
// any already-retained log is released. Call before the first posting
// when the whole run should be bounded.
func (l *Ledger) DisableTxLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balancesOnly = true
	l.txs = nil
}

// Post transfers amount from one account to another.
func (l *Ledger) Post(from, to string, amount float64, memo string) error {
	if err := validateTx(from, to, amount); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.applyLocked(Tx{From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// PostAll applies a batch of pre-validated transactions under one lock
// acquisition, in slice order. The parallel day engine flushes each work
// unit's TxBuffer through here in a fixed unit order, so the ledger's
// transaction log — and every floating-point balance — is bit-for-bit
// identical regardless of how many workers produced the buffers.
func (l *Ledger) PostAll(txs []Tx) error {
	for _, tx := range txs {
		if err := validateTx(tx.From, tx.To, tx.Amount); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, tx := range txs {
		l.applyLocked(tx)
	}
	return nil
}

func (l *Ledger) applyLocked(tx Tx) {
	l.balances[tx.From] -= tx.Amount
	l.balances[tx.To] += tx.Amount
	if !l.balancesOnly {
		l.txs = append(l.txs, tx)
	}
}

func validateTx(from, to string, amount float64) error {
	if amount <= 0 {
		return fmt.Errorf("%w: %.4f (%s -> %s)", ErrBadAmount, amount, from, to)
	}
	return nil
}

// TxBuffer accumulates postings without touching a ledger. It is not safe
// for concurrent use: each concurrent work unit owns its own buffer and
// the engine flushes them sequentially in canonical unit order.
type TxBuffer struct {
	txs []Tx
}

// Post validates and buffers one transfer.
func (b *TxBuffer) Post(from, to string, amount float64, memo string) error {
	if err := validateTx(from, to, amount); err != nil {
		return err
	}
	b.txs = append(b.txs, Tx{From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// Len returns how many transfers are buffered.
func (b *TxBuffer) Len() int { return len(b.txs) }

// FlushTo applies the buffered transfers to the ledger in posting order
// and empties the buffer. On a rejected batch the buffer is left intact
// so the caller can inspect what failed to post.
func (b *TxBuffer) FlushTo(l *Ledger) error {
	if len(b.txs) == 0 {
		return nil
	}
	if err := l.PostAll(b.txs); err != nil {
		return err
	}
	b.txs = b.txs[:0]
	return nil
}

// Balance returns an account's balance (0 for unknown accounts).
func (l *Ledger) Balance(account string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[account]
}

// Balances returns a copy of every account balance; the determinism tests
// compare whole-economy snapshots across engine worker counts.
func (l *Ledger) Balances() map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.balances))
	for k, v := range l.balances {
		out[k] = v
	}
	return out
}

// Sum returns the sum over all balances; it is 0 unless the ledger is
// corrupted.
func (l *Ledger) Sum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, b := range l.balances {
		total += b
	}
	return total
}

// NumTransactions returns how many transfers have been posted.
func (l *Ledger) NumTransactions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.txs)
}

// Transactions returns a copy of the transaction log.
func (l *Ledger) Transactions() []Tx {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Tx(nil), l.txs...)
}

// Account name helpers keep the naming scheme in one place.
func DeveloperAccount(id string) string  { return "dev:" + id }
func IIPAccount(name string) string      { return "iip:" + name }
func AffiliateAccount(pkg string) string { return "affiliate:" + pkg }
func UserAccount(id string) string       { return "user:" + id }
func MediatorAccount(name string) string { return "mediator:" + name }

// ExternalWorld is the funding source account (developer banks, gift-card
// processors).
const ExternalWorld = "external"
