package mediator

import (
	"bytes"
	"testing"

	"repro/internal/offers"
)

func TestMediatorSnapshotResumesClickNumbering(t *testing.T) {
	m := New("snaptest")
	m.RegisterOffer("offer-1", offers.NoActivity)
	m.RegisterOffer("offer-2", offers.Usage)
	s1, err := m.Session("offer-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s1.TrackClick("w", 10)
	}
	if ok, err := s1.Postback(s1.TrackClick("w", 10), EventOpen); err != nil || !ok {
		t.Fatalf("postback = (%v, %v)", ok, err)
	}
	s1.SyncTo(m)
	snap := m.EncodeSnapshot()

	// A fresh mediator (the resume world build re-registers offers) with
	// the snapshot restored continues the exact click ID sequence.
	m2 := New("snaptest")
	m2.RegisterOffer("offer-1", offers.NoActivity)
	m2.RegisterOffer("offer-2", offers.Usage)
	if err := m2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := m2.Certified(), m.Certified(); got != want {
		t.Errorf("certified = %d, want %d", got, want)
	}
	s1b, err := m2.Session("offer-1")
	if err != nil {
		t.Fatal(err)
	}
	wantClick, err := s1b.Click(s1b.TrackClick("w", 11))
	if err != nil {
		t.Fatal(err)
	}
	liveClick, err := s1.Click(s1.TrackClick("w", 11))
	if err != nil {
		t.Fatal(err)
	}
	if wantClick.ID != liveClick.ID {
		t.Errorf("post-restore click ID %q, want %q (numbering must continue)", wantClick.ID, liveClick.ID)
	}
	if _, err := m2.Session("offer-2"); err != nil {
		t.Errorf("untouched offer session: %v", err)
	}
}

func TestLedgerSnapshotRoundTrip(t *testing.T) {
	l := NewLedger()
	if err := l.Post("a", "b", 1.25, "first"); err != nil {
		t.Fatal(err)
	}
	if err := l.Post("b", "c", 0.3, "second"); err != nil {
		t.Fatal(err)
	}
	snap := l.EncodeSnapshot()
	l2 := NewLedger()
	if err := l2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l2.EncodeSnapshot(), snap) {
		t.Fatal("ledger encode→decode→encode is not byte-identical")
	}
	if got := l2.Balance("b"); got != l.Balance("b") {
		t.Errorf("balance b = %v, want %v", got, l.Balance("b"))
	}
	if got, want := l2.NumTransactions(), 2; got != want {
		t.Errorf("transactions = %d, want %d", got, want)
	}
	if err := l2.RestoreSnapshot(snap[:len(snap)-1]); err == nil {
		t.Error("truncated ledger snapshot must not decode")
	}
}
