package mediator

import (
	"fmt"
	"sort"

	"repro/internal/binenc"
)

// Snapshot wire-format versions.
const (
	mediatorSnapshotVersion = 1
	ledgerSnapshotVersion   = 1
)

// EncodeSnapshot serializes the mediator's mutable counters: the certified
// total and the per-offer click numbering. Offer requirements and click
// states are deliberately excluded — requirements are re-registered by the
// deterministic world build a resume runs first, and historical click
// states are only consulted by the same delivery that minted them, which a
// day-boundary checkpoint can never bisect. Call OfferSession.SyncTo for
// every live session first so session-minted clicks are counted.
func (m *Mediator) EncodeSnapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	enc := binenc.NewEnc(256)
	enc.U8(mediatorSnapshotVersion)
	enc.Varint(int64(m.certified))
	offers := make([]string, 0, len(m.nextClick))
	for offer := range m.nextClick {
		offers = append(offers, offer)
	}
	sort.Strings(offers)
	enc.Uvarint(uint64(len(offers)))
	for _, offer := range offers {
		enc.Str(offer)
		enc.Varint(int64(m.nextClick[offer]))
	}
	return enc.Bytes()
}

// RestoreSnapshot overlays EncodeSnapshot state onto the mediator: the
// certified total is replaced and click numbering resumes where the
// snapshot left it, so sessions resolved after the restore continue the
// exact ID sequence of the checkpointed run.
func (m *Mediator) RestoreSnapshot(data []byte) error {
	dec := binenc.NewDec(data)
	if v := dec.U8(); dec.Err() == nil && v != mediatorSnapshotVersion {
		return fmt.Errorf("mediator: unsupported snapshot version %d", v)
	}
	certified := dec.Varint()
	n := dec.Uvarint()
	// A count beyond the remaining input is corruption — reject it before
	// sizing the map.
	if dec.Err() == nil && n > uint64(dec.Remaining()) {
		return fmt.Errorf("mediator: decoding snapshot: %w", binenc.ErrTooLong)
	}
	next := make(map[string]int, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		offer := dec.Str()
		next[offer] = int(dec.Varint())
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("mediator: decoding snapshot: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.certified = int(certified)
	m.nextClick = next
	return nil
}

// SyncTo folds the session's click numbering back into the mediator so a
// snapshot taken afterwards counts session-minted clicks. The engine calls
// it for every campaign unit at each checkpoint barrier.
func (s *OfferSession) SyncTo(m *Mediator) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v := s.base + len(s.clicks); v > m.nextClick[s.offerID] {
		m.nextClick[s.offerID] = v
	}
}

// EncodeSnapshot serializes the ledger: every balance (sorted by account)
// and the full transaction log in posting order, floats bit-exact.
func (l *Ledger) EncodeSnapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	enc := binenc.NewEnc(1 << 12)
	enc.U8(ledgerSnapshotVersion)
	accounts := make([]string, 0, len(l.balances))
	for acct := range l.balances {
		accounts = append(accounts, acct)
	}
	sort.Strings(accounts)
	enc.Uvarint(uint64(len(accounts)))
	for _, acct := range accounts {
		enc.Str(acct)
		enc.F64(l.balances[acct])
	}
	enc.Uvarint(uint64(len(l.txs)))
	for _, tx := range l.txs {
		enc.Str(tx.From)
		enc.Str(tx.To)
		enc.F64(tx.Amount)
		enc.Str(tx.Memo)
	}
	return enc.Bytes()
}

// RestoreSnapshot replaces the ledger's contents with EncodeSnapshot
// state. Balances are restored bit-exact, so transfers posted after the
// restore accumulate onto the same float bit patterns the original run
// held.
func (l *Ledger) RestoreSnapshot(data []byte) error {
	dec := binenc.NewDec(data)
	if v := dec.U8(); dec.Err() == nil && v != ledgerSnapshotVersion {
		return fmt.Errorf("mediator: unsupported ledger snapshot version %d", v)
	}
	nBal := dec.Uvarint()
	if dec.Err() == nil && nBal > uint64(dec.Remaining()) {
		return fmt.Errorf("mediator: decoding ledger snapshot: %w", binenc.ErrTooLong)
	}
	balances := make(map[string]float64, nBal)
	for i := uint64(0); i < nBal && dec.Err() == nil; i++ {
		acct := dec.Str()
		balances[acct] = dec.F64()
	}
	nTxs := dec.Uvarint()
	if dec.Err() == nil && nTxs > uint64(dec.Remaining()) {
		return fmt.Errorf("mediator: decoding ledger snapshot: %w", binenc.ErrTooLong)
	}
	txs := make([]Tx, 0, nTxs)
	for i := uint64(0); i < nTxs && dec.Err() == nil; i++ {
		txs = append(txs, Tx{
			From:   dec.Str(),
			To:     dec.Str(),
			Amount: dec.F64(),
			Memo:   dec.Str(),
		})
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("mediator: decoding ledger snapshot: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances = balances
	if l.balancesOnly {
		// A balances-only ledger stays balances-only: a snapshot from a
		// full-log configuration restores its balances bit-exact but does
		// not resurrect the O(run) history.
		l.txs = nil
	} else {
		l.txs = txs
	}
	return nil
}
