package mediator

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dates"
	"repro/internal/offers"
)

// Attribution errors.
var (
	ErrUnknownClick     = errors.New("mediator: unknown click")
	ErrUnknownOfferReq  = errors.New("mediator: offer has no registered requirement")
	ErrAlreadyCertified = errors.New("mediator: click already certified")
)

// EventType is an in-app event reported by the advertised app's mediator
// SDK.
type EventType int

const (
	// EventOpen fires on first app open after install.
	EventOpen EventType = iota
	// EventRegister fires on account creation.
	EventRegister
	// EventUsage fires when the offer's usage task completes (level
	// reached, song downloaded, ...).
	EventUsage
	// EventPurchase fires on an in-app purchase.
	EventPurchase
)

func (e EventType) String() string {
	switch e {
	case EventOpen:
		return "open"
	case EventRegister:
		return "register"
	case EventUsage:
		return "usage"
	case EventPurchase:
		return "purchase"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// RequiredEvent maps an offer type to the event that completes it.
func RequiredEvent(t offers.Type) EventType {
	switch t {
	case offers.Registration:
		return EventRegister
	case offers.Purchase:
		return EventPurchase
	case offers.Usage:
		return EventUsage
	default:
		return EventOpen
	}
}

// Click is a tracked offer click: the user tapped the offer in the wall
// and was redirected through the mediator's tracking link.
type Click struct {
	ID      string
	OfferID string
	Worker  string
	Day     dates.Date
}

// Certification records a certified offer completion.
type Certification struct {
	Click     Click
	Completed dates.Date
	// FeeUSD is the mediator's per-user charge to the developer
	// (AppsFlyer charges $0.03/user).
	FeeUSD float64
}

// Mediator is one attribution service instance.
type Mediator struct {
	Name string
	// FeePerUser is charged to the developer per certified completion.
	FeePerUser float64

	mu       sync.Mutex
	required map[string]EventType // offerID -> completing event
	clicks   map[string]*clickState
	// nextClick numbers clicks per offer rather than globally: offers are
	// delivered concurrently by the day engine, and per-offer sequences
	// keep click IDs deterministic regardless of cross-offer interleaving.
	nextClick map[string]int
	certified int
}

type clickState struct {
	click     Click
	certified bool
}

// New returns a mediator service. The default per-user fee matches the
// paper's AppsFlyer example.
func New(name string) *Mediator {
	return &Mediator{
		Name:       name,
		FeePerUser: 0.03,
		required:   map[string]EventType{},
		clicks:     map[string]*clickState{},
		nextClick:  map[string]int{},
	}
}

// RegisterOffer tells the mediator what event certifies an offer; the
// developer configures this when integrating the SDK.
func (m *Mediator) RegisterOffer(offerID string, t offers.Type) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.required[offerID] = RequiredEvent(t)
}

// TrackClick mints a tracking click for a user starting an offer.
func (m *Mediator) TrackClick(offerID, worker string, day dates.Date) Click {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextClick[offerID]++
	c := Click{
		ID:      fmt.Sprintf("%s-%s-c%06d", m.Name, offerID, m.nextClick[offerID]),
		OfferID: offerID,
		Worker:  worker,
		Day:     day,
	}
	m.clicks[c.ID] = &clickState{click: c}
	return c
}

// Postback receives an SDK event for a click. When the event matches the
// offer's completing requirement, the completion is certified exactly
// once; non-completing events return (nil, nil).
func (m *Mediator) Postback(clickID string, event EventType, day dates.Date) (*Certification, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.clicks[clickID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClick, clickID)
	}
	req, ok := m.required[st.click.OfferID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOfferReq, st.click.OfferID)
	}
	if event != req {
		return nil, nil
	}
	if st.certified {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyCertified, clickID)
	}
	st.certified = true
	m.certified++
	return &Certification{Click: st.click, Completed: day, FeeUSD: m.FeePerUser}, nil
}

// CertifyBatch records n certified completions for an offer without
// minting individual clicks; the simulation engine uses it for bulk
// deliveries whose per-user detail is not needed. The offer must have a
// registered requirement.
func (m *Mediator) CertifyBatch(offerID string, n int) error {
	if n <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.required[offerID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownOfferReq, offerID)
	}
	m.certified += n
	return nil
}

// Certified returns the number of certified completions.
func (m *Mediator) Certified() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.certified
}
