package mediator

import (
	"testing"

	"repro/internal/offers"
)

// BenchmarkPostback compares the two click-tracking paths (DESIGN.md E5):
// "map" is the string-keyed mediator API — Sprintf click ID, global lock,
// map insert per click — and "session" is the per-offer OfferSession the
// day engine uses, where a click is a slice append addressed by ClickRef
// and the string ID is never materialized.
func BenchmarkPostback(b *testing.B) {
	b.Run("map", func(b *testing.B) {
		m := New("bench")
		m.RegisterOffer("offer-1", offers.Registration)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := m.TrackClick("offer-1", "w", 0)
			if _, err := m.Postback(c.ID, EventRegister, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		m := New("bench")
		m.RegisterOffer("offer-1", offers.Registration)
		s, err := m.Session("offer-1")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ref := s.TrackClick("w", 0)
			if ok, err := s.Postback(ref, EventRegister); err != nil || !ok {
				b.Fatalf("postback = (%v, %v)", ok, err)
			}
		}
	})
}

// BenchmarkLedgerPost measures one buffered posting plus its amortized
// flush, comparing per-post account-name concatenation ("concat", the
// pre-E5 delivery path) against account names interned once ("interned",
// what the engine now posts with).
func BenchmarkLedgerPost(b *testing.B) {
	const devID, iipName = "adv-dev-00042", "fyber"
	b.Run("concat", func(b *testing.B) {
		var buf TxBuffer
		l := NewLedger()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := buf.Post(DeveloperAccount(devID), IIPAccount(iipName), 0.17, "offer completion"); err != nil {
				b.Fatal(err)
			}
			if buf.Len() >= 4096 {
				if err := buf.FlushTo(l); err != nil {
					b.Fatal(err)
				}
				if l.NumTransactions() >= 1<<20 {
					l = NewLedger() // bound memory across long runs
				}
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		dev := DeveloperAccount(devID)
		iipAcct := IIPAccount(iipName)
		var buf TxBuffer
		l := NewLedger()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := buf.Post(dev, iipAcct, 0.17, "offer completion"); err != nil {
				b.Fatal(err)
			}
			if buf.Len() >= 4096 {
				if err := buf.FlushTo(l); err != nil {
					b.Fatal(err)
				}
				if l.NumTransactions() >= 1<<20 {
					l = NewLedger() // bound memory across long runs
				}
			}
		}
	})
}
