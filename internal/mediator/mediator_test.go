package mediator

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dates"
	"repro/internal/offers"
)

func TestLedgerPostAndBalances(t *testing.T) {
	l := NewLedger()
	if err := l.Post(ExternalWorld, DeveloperAccount("d1"), 100, "funding"); err != nil {
		t.Fatal(err)
	}
	if err := l.Post(DeveloperAccount("d1"), IIPAccount("Fyber"), 30, "campaign"); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(DeveloperAccount("d1")); got != 70 {
		t.Errorf("dev balance = %g, want 70", got)
	}
	if got := l.Balance(IIPAccount("Fyber")); got != 30 {
		t.Errorf("iip balance = %g, want 30", got)
	}
	if got := l.Balance(ExternalWorld); got != -100 {
		t.Errorf("external = %g, want -100", got)
	}
	if l.NumTransactions() != 2 {
		t.Errorf("txs = %d", l.NumTransactions())
	}
}

// TestLedgerBalancesOnly checks the bounded-memory mode: identical
// balances and conservation, no retained history — through postings,
// snapshot round-trips, and a restore from a full-log snapshot.
func TestLedgerBalancesOnly(t *testing.T) {
	full, lean := NewLedger(), NewLedger()
	lean.DisableTxLog()
	post := func(l *Ledger) {
		if err := l.Post(ExternalWorld, DeveloperAccount("d1"), 100, "fund"); err != nil {
			t.Fatal(err)
		}
		if err := l.Post(DeveloperAccount("d1"), IIPAccount("Fyber"), 30, "campaign"); err != nil {
			t.Fatal(err)
		}
	}
	post(full)
	post(lean)
	for acct, want := range full.Balances() {
		if got := lean.Balance(acct); got != want {
			t.Errorf("balance %s = %g, want %g", acct, got, want)
		}
	}
	if lean.Sum() != 0 {
		t.Errorf("conservation broken: sum = %g", lean.Sum())
	}
	if n := lean.NumTransactions(); n != 0 {
		t.Errorf("balances-only ledger retained %d transactions", n)
	}

	// Restoring a full-log snapshot into a balances-only ledger keeps the
	// balances bit-exact without resurrecting the history.
	restored := NewLedger()
	restored.DisableTxLog()
	if err := restored.RestoreSnapshot(full.EncodeSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Balance(DeveloperAccount("d1")), full.Balance(DeveloperAccount("d1")); got != want {
		t.Errorf("restored balance = %g, want %g", got, want)
	}
	if n := restored.NumTransactions(); n != 0 {
		t.Errorf("restore resurrected %d transactions", n)
	}

	// DisableTxLog after the fact releases what was already retained.
	full.DisableTxLog()
	if n := full.NumTransactions(); n != 0 {
		t.Errorf("DisableTxLog retained %d transactions", n)
	}
}

func TestLedgerRejectsBadAmounts(t *testing.T) {
	l := NewLedger()
	if err := l.Post("a", "b", 0, ""); !errors.Is(err, ErrBadAmount) {
		t.Error("zero transfer should fail")
	}
	if err := l.Post("a", "b", -5, ""); !errors.Is(err, ErrBadAmount) {
		t.Error("negative transfer should fail")
	}
}

// Property: any sequence of valid transfers conserves money (sum == 0).
func TestLedgerConservation(t *testing.T) {
	f := func(moves []struct {
		From, To uint8
		Cents    uint16
	}) bool {
		l := NewLedger()
		accounts := []string{"a", "b", "c", "d", ExternalWorld}
		for _, mv := range moves {
			amt := float64(mv.Cents) / 100
			if amt <= 0 {
				continue
			}
			from := accounts[int(mv.From)%len(accounts)]
			to := accounts[int(mv.To)%len(accounts)]
			if err := l.Post(from, to, amt, "fuzz"); err != nil {
				return false
			}
		}
		return math.Abs(l.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Post("a", "b", 1, "")
			}
		}()
	}
	wg.Wait()
	if got := l.Balance("b"); got != 1600 {
		t.Errorf("b = %g, want 1600", got)
	}
	if got := l.Sum(); math.Abs(got) > 1e-9 {
		t.Errorf("sum = %g", got)
	}
}

// TestTxBufferDeferredFlush covers the engine's buffered-settlement path:
// validation is eager, application is deferred, and FlushTo preserves
// posting order so replays are bit-identical.
func TestTxBufferDeferredFlush(t *testing.T) {
	l := NewLedger()
	var b TxBuffer
	if err := b.Post("a", "b", -1, "bad"); !errors.Is(err, ErrBadAmount) {
		t.Error("buffer must validate eagerly")
	}
	if err := b.Post(ExternalWorld, "a", 10, "fund"); err != nil {
		t.Fatal(err)
	}
	if err := b.Post("a", "b", 4, "pay"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("buffered = %d, want 2", b.Len())
	}
	if l.NumTransactions() != 0 {
		t.Error("buffered postings must not touch the ledger before flush")
	}
	if err := b.FlushTo(l); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Error("flush must empty the buffer")
	}
	txs := l.Transactions()
	if len(txs) != 2 || txs[0].Memo != "fund" || txs[1].Memo != "pay" {
		t.Errorf("flush must preserve posting order: %+v", txs)
	}
	if got := l.Balance("a"); got != 6 {
		t.Errorf("a = %g, want 6", got)
	}
	if bal := l.Balances(); bal["b"] != 4 || len(bal) != 3 {
		t.Errorf("Balances snapshot wrong: %v", bal)
	}
	if math.Abs(l.Sum()) > 1e-9 {
		t.Errorf("sum = %g", l.Sum())
	}
}

func TestPostAllRejectsInvalidBatchAtomically(t *testing.T) {
	l := NewLedger()
	err := l.PostAll([]Tx{
		{From: "a", To: "b", Amount: 5, Memo: "ok"},
		{From: "b", To: "c", Amount: -2, Memo: "bad"},
	})
	if !errors.Is(err, ErrBadAmount) {
		t.Fatalf("want ErrBadAmount, got %v", err)
	}
	if l.NumTransactions() != 0 {
		t.Error("an invalid batch must apply nothing")
	}
}

func TestClickIDsPerOfferDeterministic(t *testing.T) {
	// Interleaving clicks across offers must not change any offer's own
	// ID sequence — the property the parallel engine relies on.
	a := New("af")
	b := New("af")
	a.TrackClick("o1", "w", 0)
	c1 := a.TrackClick("o2", "w", 0)
	a.TrackClick("o1", "w", 0)
	c2 := a.TrackClick("o2", "w", 0)

	d1 := b.TrackClick("o2", "w", 0)
	b.TrackClick("o1", "w", 0)
	b.TrackClick("o1", "w", 0)
	d2 := b.TrackClick("o2", "w", 0)
	if c1.ID != d1.ID || c2.ID != d2.ID {
		t.Errorf("o2 click IDs depend on cross-offer interleaving: %s/%s vs %s/%s",
			c1.ID, c2.ID, d1.ID, d2.ID)
	}
}

func TestTransactionsCopy(t *testing.T) {
	l := NewLedger()
	l.Post("a", "b", 5, "x")
	txs := l.Transactions()
	txs[0].Amount = 999
	if l.Transactions()[0].Amount != 5 {
		t.Error("Transactions must return a copy")
	}
}

func TestRequiredEvent(t *testing.T) {
	cases := []struct {
		tp   offers.Type
		want EventType
	}{
		{offers.NoActivity, EventOpen},
		{offers.Registration, EventRegister},
		{offers.Usage, EventUsage},
		{offers.Purchase, EventPurchase},
	}
	for _, c := range cases {
		if got := RequiredEvent(c.tp); got != c.want {
			t.Errorf("RequiredEvent(%v) = %v, want %v", c.tp, got, c.want)
		}
	}
}

func TestAttributionLifecycle(t *testing.T) {
	m := New("appsflyer")
	m.RegisterOffer("offer-1", offers.Registration)
	click := m.TrackClick("offer-1", "worker-9", dates.StudyStart)

	// Opening the app is not enough for a registration offer.
	cert, err := m.Postback(click.ID, EventOpen, dates.StudyStart)
	if err != nil || cert != nil {
		t.Fatalf("open should not certify: cert=%v err=%v", cert, err)
	}
	// Registering completes it.
	cert, err = m.Postback(click.ID, EventRegister, dates.StudyStart.AddDays(1))
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("registration should certify")
	}
	if cert.Click.Worker != "worker-9" || cert.FeeUSD != 0.03 {
		t.Errorf("certification wrong: %+v", cert)
	}
	if m.Certified() != 1 {
		t.Errorf("certified = %d", m.Certified())
	}
	// Double certification is rejected (anti-fraud).
	_, err = m.Postback(click.ID, EventRegister, dates.StudyStart.AddDays(2))
	if !errors.Is(err, ErrAlreadyCertified) {
		t.Errorf("want ErrAlreadyCertified, got %v", err)
	}
}

func TestAttributionErrors(t *testing.T) {
	m := New("kochava")
	if _, err := m.Postback("ghost", EventOpen, 0); !errors.Is(err, ErrUnknownClick) {
		t.Errorf("want ErrUnknownClick, got %v", err)
	}
	c := m.TrackClick("unregistered-offer", "w", 0)
	if _, err := m.Postback(c.ID, EventOpen, 0); !errors.Is(err, ErrUnknownOfferReq) {
		t.Errorf("want ErrUnknownOfferReq, got %v", err)
	}
}

func TestNoActivityCertifiesOnOpen(t *testing.T) {
	m := New("adjust")
	m.RegisterOffer("o", offers.NoActivity)
	c := m.TrackClick("o", "w", dates.StudyStart)
	cert, err := m.Postback(c.ID, EventOpen, dates.StudyStart)
	if err != nil || cert == nil {
		t.Fatalf("open should certify a no-activity offer: %v %v", cert, err)
	}
}

func TestEventTypeString(t *testing.T) {
	if EventOpen.String() != "open" || EventPurchase.String() != "purchase" {
		t.Error("event strings wrong")
	}
	if EventType(42).String() != "event(42)" {
		t.Error("unknown event string wrong")
	}
}

func TestClickIDsUnique(t *testing.T) {
	m := New("af")
	m.RegisterOffer("o", offers.NoActivity)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		c := m.TrackClick("o", "w", 0)
		if seen[c.ID] {
			t.Fatal("duplicate click ID")
		}
		seen[c.ID] = true
	}
}
