package mediator

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dates"
	"repro/internal/offers"
)

func TestLedgerPostAndBalances(t *testing.T) {
	l := NewLedger()
	if err := l.Post(ExternalWorld, DeveloperAccount("d1"), 100, "funding"); err != nil {
		t.Fatal(err)
	}
	if err := l.Post(DeveloperAccount("d1"), IIPAccount("Fyber"), 30, "campaign"); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(DeveloperAccount("d1")); got != 70 {
		t.Errorf("dev balance = %g, want 70", got)
	}
	if got := l.Balance(IIPAccount("Fyber")); got != 30 {
		t.Errorf("iip balance = %g, want 30", got)
	}
	if got := l.Balance(ExternalWorld); got != -100 {
		t.Errorf("external = %g, want -100", got)
	}
	if l.NumTransactions() != 2 {
		t.Errorf("txs = %d", l.NumTransactions())
	}
}

func TestLedgerRejectsBadAmounts(t *testing.T) {
	l := NewLedger()
	if err := l.Post("a", "b", 0, ""); !errors.Is(err, ErrBadAmount) {
		t.Error("zero transfer should fail")
	}
	if err := l.Post("a", "b", -5, ""); !errors.Is(err, ErrBadAmount) {
		t.Error("negative transfer should fail")
	}
}

// Property: any sequence of valid transfers conserves money (sum == 0).
func TestLedgerConservation(t *testing.T) {
	f := func(moves []struct {
		From, To uint8
		Cents    uint16
	}) bool {
		l := NewLedger()
		accounts := []string{"a", "b", "c", "d", ExternalWorld}
		for _, mv := range moves {
			amt := float64(mv.Cents) / 100
			if amt <= 0 {
				continue
			}
			from := accounts[int(mv.From)%len(accounts)]
			to := accounts[int(mv.To)%len(accounts)]
			if err := l.Post(from, to, amt, "fuzz"); err != nil {
				return false
			}
		}
		return math.Abs(l.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Post("a", "b", 1, "")
			}
		}()
	}
	wg.Wait()
	if got := l.Balance("b"); got != 1600 {
		t.Errorf("b = %g, want 1600", got)
	}
	if got := l.Sum(); math.Abs(got) > 1e-9 {
		t.Errorf("sum = %g", got)
	}
}

func TestTransactionsCopy(t *testing.T) {
	l := NewLedger()
	l.Post("a", "b", 5, "x")
	txs := l.Transactions()
	txs[0].Amount = 999
	if l.Transactions()[0].Amount != 5 {
		t.Error("Transactions must return a copy")
	}
}

func TestRequiredEvent(t *testing.T) {
	cases := []struct {
		tp   offers.Type
		want EventType
	}{
		{offers.NoActivity, EventOpen},
		{offers.Registration, EventRegister},
		{offers.Usage, EventUsage},
		{offers.Purchase, EventPurchase},
	}
	for _, c := range cases {
		if got := RequiredEvent(c.tp); got != c.want {
			t.Errorf("RequiredEvent(%v) = %v, want %v", c.tp, got, c.want)
		}
	}
}

func TestAttributionLifecycle(t *testing.T) {
	m := New("appsflyer")
	m.RegisterOffer("offer-1", offers.Registration)
	click := m.TrackClick("offer-1", "worker-9", dates.StudyStart)

	// Opening the app is not enough for a registration offer.
	cert, err := m.Postback(click.ID, EventOpen, dates.StudyStart)
	if err != nil || cert != nil {
		t.Fatalf("open should not certify: cert=%v err=%v", cert, err)
	}
	// Registering completes it.
	cert, err = m.Postback(click.ID, EventRegister, dates.StudyStart.AddDays(1))
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("registration should certify")
	}
	if cert.Click.Worker != "worker-9" || cert.FeeUSD != 0.03 {
		t.Errorf("certification wrong: %+v", cert)
	}
	if m.Certified() != 1 {
		t.Errorf("certified = %d", m.Certified())
	}
	// Double certification is rejected (anti-fraud).
	_, err = m.Postback(click.ID, EventRegister, dates.StudyStart.AddDays(2))
	if !errors.Is(err, ErrAlreadyCertified) {
		t.Errorf("want ErrAlreadyCertified, got %v", err)
	}
}

func TestAttributionErrors(t *testing.T) {
	m := New("kochava")
	if _, err := m.Postback("ghost", EventOpen, 0); !errors.Is(err, ErrUnknownClick) {
		t.Errorf("want ErrUnknownClick, got %v", err)
	}
	c := m.TrackClick("unregistered-offer", "w", 0)
	if _, err := m.Postback(c.ID, EventOpen, 0); !errors.Is(err, ErrUnknownOfferReq) {
		t.Errorf("want ErrUnknownOfferReq, got %v", err)
	}
}

func TestNoActivityCertifiesOnOpen(t *testing.T) {
	m := New("adjust")
	m.RegisterOffer("o", offers.NoActivity)
	c := m.TrackClick("o", "w", dates.StudyStart)
	cert, err := m.Postback(c.ID, EventOpen, dates.StudyStart)
	if err != nil || cert == nil {
		t.Fatalf("open should certify a no-activity offer: %v %v", cert, err)
	}
}

func TestEventTypeString(t *testing.T) {
	if EventOpen.String() != "open" || EventPurchase.String() != "purchase" {
		t.Error("event strings wrong")
	}
	if EventType(42).String() != "event(42)" {
		t.Error("unknown event string wrong")
	}
}

func TestClickIDsUnique(t *testing.T) {
	m := New("af")
	m.RegisterOffer("o", offers.NoActivity)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		c := m.TrackClick("o", "w", 0)
		if seen[c.ID] {
			t.Fatal("duplicate click ID")
		}
		seen[c.ID] = true
	}
}
