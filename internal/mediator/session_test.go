package mediator

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dates"
	"repro/internal/offers"
)

func sessionFixture(t *testing.T) (*Mediator, *OfferSession) {
	t.Helper()
	m := New("appsflyer")
	m.RegisterOffer("offer-1", offers.Registration)
	s, err := m.Session("offer-1")
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestSessionRequiresRegisteredOffer(t *testing.T) {
	m := New("appsflyer")
	if _, err := m.Session("ghost"); !errors.Is(err, ErrUnknownOfferReq) {
		t.Fatalf("session for unregistered offer: err = %v, want ErrUnknownOfferReq", err)
	}
}

// TestSessionClickNumberingMatchesMediator pins the lazy click-ID format
// to the string-keyed TrackClick numbering: same format, same per-offer
// sequence starting at 1.
func TestSessionClickNumberingMatchesMediator(t *testing.T) {
	legacy := New("appsflyer")
	legacy.RegisterOffer("offer-1", offers.Registration)
	_, s := sessionFixture(t)
	for i := 0; i < 3; i++ {
		worker := fmt.Sprintf("w%d", i)
		want := legacy.TrackClick("offer-1", worker, dates.StudyStart).ID
		ref := s.TrackClick(worker, dates.StudyStart)
		click, err := s.Click(ref)
		if err != nil {
			t.Fatal(err)
		}
		if click.ID != want {
			t.Fatalf("click %d: session ID %q, mediator ID %q", i, click.ID, want)
		}
		if click.Worker != worker || click.Day != dates.StudyStart || click.OfferID != "offer-1" {
			t.Fatalf("materialized click fields wrong: %+v", click)
		}
	}
	if s.NumClicks() != 3 {
		t.Fatalf("NumClicks = %d, want 3", s.NumClicks())
	}
}

// TestSessionNumberingContinuesAfterMediatorClicks pins the collision
// guard: a session resolved for an offer that already has map-tracked
// clicks continues that numbering instead of restarting at 1.
func TestSessionNumberingContinuesAfterMediatorClicks(t *testing.T) {
	m, _ := sessionFixture(t)
	pre := m.TrackClick("offer-1", "w", dates.StudyStart)
	s, err := m.Session("offer-1")
	if err != nil {
		t.Fatal(err)
	}
	click, err := s.Click(s.TrackClick("w2", dates.StudyStart))
	if err != nil {
		t.Fatal(err)
	}
	if click.ID == pre.ID {
		t.Fatalf("session click ID %q collides with earlier mediator click", click.ID)
	}
	if want := "appsflyer-offer-1-c000002"; click.ID != want {
		t.Fatalf("session click ID = %q, want %q", click.ID, want)
	}
}

func TestSessionPostbackCertifiesOnce(t *testing.T) {
	m, s := sessionFixture(t)
	ref := s.TrackClick("w", dates.StudyStart)

	// Non-completing event: no certification, no error.
	ok, err := s.Postback(ref, EventOpen)
	if err != nil || ok {
		t.Fatalf("open postback = (%v, %v), want (false, nil)", ok, err)
	}
	// Completing event certifies exactly once.
	ok, err = s.Postback(ref, EventRegister)
	if err != nil || !ok {
		t.Fatalf("register postback = (%v, %v), want (true, nil)", ok, err)
	}
	if _, err := s.Postback(ref, EventRegister); !errors.Is(err, ErrAlreadyCertified) {
		t.Fatalf("double certify err = %v, want ErrAlreadyCertified", err)
	}
	// Session counts merge into the global total only via AddCertified.
	if m.Certified() != 0 {
		t.Fatalf("certified before merge = %d, want 0", m.Certified())
	}
	m.AddCertified(1)
	m.AddCertified(0)
	m.AddCertified(-5)
	if m.Certified() != 1 {
		t.Fatalf("certified after merge = %d, want 1", m.Certified())
	}
}

func TestSessionPostbackRejectsForeignAndUnknownRefs(t *testing.T) {
	m, s := sessionFixture(t)
	m.RegisterOffer("offer-2", offers.Registration)
	other, err := m.Session("offer-2")
	if err != nil {
		t.Fatal(err)
	}
	foreign := other.TrackClick("w", dates.StudyStart)
	if _, err := s.Postback(foreign, EventRegister); !errors.Is(err, ErrForeignClick) {
		t.Fatalf("foreign ref err = %v, want ErrForeignClick", err)
	}
	if _, err := s.Click(foreign); !errors.Is(err, ErrForeignClick) {
		t.Fatalf("foreign ref Click err = %v, want ErrForeignClick", err)
	}
	if _, err := s.Postback(ClickRef{Offer: "offer-1", Index: 99}, EventRegister); !errors.Is(err, ErrUnknownClick) {
		t.Fatalf("out-of-range ref err = %v, want ErrUnknownClick", err)
	}
	if _, err := s.Postback(ClickRef{Offer: "offer-1", Index: -1}, EventRegister); !errors.Is(err, ErrUnknownClick) {
		t.Fatalf("negative ref err = %v, want ErrUnknownClick", err)
	}
}

// TestSessionTrackClickZeroAllocSteadyState pins the hot-path contract:
// minting a click through a warmed session performs at most the amortized
// slice growth — no ID formatting, no map insertion, no per-click boxing.
func TestSessionTrackClickZeroAllocSteadyState(t *testing.T) {
	_, s := sessionFixture(t)
	// Pre-size the click slice so measured runs never hit slice growth
	// (growth is real but amortized; it would only add noise here).
	s.clicks = make([]sessionClick, 0, 8192)
	base := s.NumClicks()
	allocs := testing.AllocsPerRun(1000, func() {
		ref := s.TrackClick("w", dates.StudyStart)
		if ok, err := s.Postback(ref, EventRegister); err != nil || !ok {
			t.Fatalf("postback = (%v, %v)", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state track+postback allocates %.1f/op, want 0", allocs)
	}
	if s.NumClicks() <= base {
		t.Fatal("clicks did not accumulate")
	}
}
