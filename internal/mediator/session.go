package mediator

import (
	"errors"
	"fmt"

	"repro/internal/dates"
)

// ErrForeignClick rejects a ClickRef presented to a session of a different
// offer.
var ErrForeignClick = errors.New("mediator: click ref belongs to a different offer")

// ClickRef addresses a tracked click without materializing its string ID:
// the offer it belongs to and its 0-based position in that offer's click
// sequence. The string Click.ID ("<mediator>-<offer>-c%06d", numbered from
// 1) is only built on demand by OfferSession.Click, so the delivery hot
// path never runs fmt.Sprintf.
type ClickRef struct {
	Offer string
	Index int
}

// sessionClick is the slice-backed click state addressed by a ClickRef.
type sessionClick struct {
	worker    string
	day       dates.Date
	certified bool
}

// OfferSession is a per-offer click session: the offer's completion
// requirement and click-ID numbering resolved once, with clicks stored as
// slice-backed states instead of entries in a mediator-wide map.
//
// A session is NOT safe for concurrent use and deliberately takes no lock:
// the day engine owns each offer's deliveries on exactly one goroutine per
// phase (campaigns are partitioned by developer group), so per-event
// locking would buy nothing. Certified counts accumulated through a
// session reach the mediator's global total via AddCertified at the
// engine's day barrier. The string-keyed Mediator API remains available
// for callers that want internal locking; the session's numbering starts
// after any clicks the offer already has, so IDs never collide with
// clicks minted through the map before the session was resolved. Once a
// session exists, it must be the offer's only click source.
type OfferSession struct {
	name     string // mediator name, for lazy click-ID materialization
	offerID  string
	required EventType
	base     int // clicks the offer had when the session was resolved
	clicks   []sessionClick
}

// Session resolves a per-offer click session. The offer must have a
// registered completion requirement.
func (m *Mediator) Session(offerID string) (*OfferSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	req, ok := m.required[offerID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOfferReq, offerID)
	}
	return &OfferSession{
		name:     m.Name,
		offerID:  offerID,
		required: req,
		base:     m.nextClick[offerID],
	}, nil
}

// OfferID returns the offer the session tracks.
func (s *OfferSession) OfferID() string { return s.offerID }

// NumClicks returns how many clicks the session has minted.
func (s *OfferSession) NumClicks() int { return len(s.clicks) }

// TrackClick mints a tracking click for a user starting the offer. The
// returned ref uses the same per-offer numbering TrackClick on the
// mediator would have assigned (Index n corresponds to click ID suffix
// c%06d with base+n+1).
func (s *OfferSession) TrackClick(worker string, day dates.Date) ClickRef {
	s.clicks = append(s.clicks, sessionClick{worker: worker, day: day})
	return ClickRef{Offer: s.offerID, Index: len(s.clicks) - 1}
}

// Postback receives an SDK event for a click. It reports whether this
// event certified the completion: true exactly once per click, when the
// event matches the offer's completing requirement. Non-completing events
// return (false, nil). Unlike the mediator's Postback it builds no
// Certification — callers that need one materialize the Click lazily.
func (s *OfferSession) Postback(ref ClickRef, event EventType) (bool, error) {
	st, err := s.state(ref)
	if err != nil {
		return false, err
	}
	if event != s.required {
		return false, nil
	}
	if st.certified {
		return false, fmt.Errorf("%w: %s", ErrAlreadyCertified, s.clickID(ref.Index))
	}
	st.certified = true
	return true, nil
}

// Click materializes the full Click — including its string ID — for a ref;
// only logging and reporting paths pay the Sprintf.
func (s *OfferSession) Click(ref ClickRef) (Click, error) {
	st, err := s.state(ref)
	if err != nil {
		return Click{}, err
	}
	return Click{
		ID:      s.clickID(ref.Index),
		OfferID: s.offerID,
		Worker:  st.worker,
		Day:     st.day,
	}, nil
}

// state validates a ref and returns its mutable click state.
func (s *OfferSession) state(ref ClickRef) (*sessionClick, error) {
	if ref.Offer != s.offerID {
		return nil, fmt.Errorf("%w: %s vs session %s", ErrForeignClick, ref.Offer, s.offerID)
	}
	if ref.Index < 0 || ref.Index >= len(s.clicks) {
		return nil, fmt.Errorf("%w: %s index %d", ErrUnknownClick, s.offerID, ref.Index)
	}
	return &s.clicks[ref.Index], nil
}

// clickID builds the string ID for the click at idx, matching the format
// and numbering of Mediator.TrackClick (continuing after any clicks the
// offer had when the session was resolved).
func (s *OfferSession) clickID(idx int) string {
	return fmt.Sprintf("%s-%s-c%06d", s.name, s.offerID, s.base+idx+1)
}

// AddCertified merges externally accumulated certified completions into
// the mediator's total. The day engine counts session certifications in
// per-unit sinks and folds them in here at each day barrier, keeping
// Certified consistent with the string-keyed Postback/CertifyBatch paths.
func (m *Mediator) AddCertified(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.certified += n
}
