package core

import (
	"math"
	"testing"

	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/sim"
)

// tinyStudy runs the full pipeline on the small world once per test
// binary.
var tinyStudyCache *Study

func tinyStudy(t *testing.T) *Study {
	t.Helper()
	if tinyStudyCache != nil {
		return tinyStudyCache
	}
	s, err := Run(sim.TinyConfig(), Options{MilkEveryDays: 4})
	if err != nil {
		t.Fatal(err)
	}
	tinyStudyCache = s
	return s
}

func TestStudyDatasetSummary(t *testing.T) {
	s := tinyStudy(t)
	ds := s.Results.Dataset
	cfg := s.World.Cfg
	// The milker must recover every planned campaign whose window
	// overlaps a milking day; with 4-day milking and >= 3-day campaigns
	// the overwhelming majority is caught.
	if ds.Offers < cfg.OffersTarget*8/10 {
		t.Errorf("dataset offers = %d, want close to %d", ds.Offers, cfg.OffersTarget)
	}
	if ds.UniqueApps == 0 || ds.UniqueApps > cfg.TotalAdvertised {
		t.Errorf("unique apps = %d", ds.UniqueApps)
	}
	if ds.UniqueDescriptions == 0 || ds.UniqueDescriptions > ds.Offers {
		t.Errorf("unique descriptions = %d", ds.UniqueDescriptions)
	}
	if ds.CrawlDays == 0 || ds.MilkDays == 0 {
		t.Errorf("infrastructure did not run: %+v", ds)
	}
}

func TestStudyTable1(t *testing.T) {
	s := tinyStudy(t)
	rows := s.Results.Table1
	if len(rows) != 7 {
		t.Fatalf("table 1 rows = %d, want 7", len(rows))
	}
	want := map[string]bool{
		iip.Fyber: true, iip.OfferToro: true, iip.AdscendMedia: true,
		iip.HangMyAds: true, iip.AdGem: true,
		iip.AyetStudios: false, iip.RankApp: false,
	}
	for _, r := range rows {
		if r.Vetted != want[r.Name] {
			t.Errorf("%s probed vetted=%v, want %v", r.Name, r.Vetted, want[r.Name])
		}
	}
}

func TestStudyTable2(t *testing.T) {
	s := tinyStudy(t)
	rows := s.Results.Table2
	if len(rows) != 8 {
		t.Fatalf("table 2 rows = %d, want 8", len(rows))
	}
	// Sorted by popularity: CashForApps (10M+) first with 4 walls.
	if rows[0].Package != "com.mobvantage.cashforapps" {
		t.Errorf("first row = %s", rows[0].Package)
	}
	n := 0
	for _, on := range rows[0].Integrations {
		if on {
			n++
		}
	}
	if n != 4 {
		t.Errorf("CashForApps integrations = %d, want 4", n)
	}
}

func TestStudyTable3Shares(t *testing.T) {
	s := tinyStudy(t)
	rows := s.Results.Table3
	if len(rows) != 4 {
		t.Fatalf("table 3 rows = %d", len(rows))
	}
	shareSum := 0.0
	for _, r := range rows {
		shareSum += r.Share
		if r.Share > 0 && r.AveragePayout <= 0 {
			t.Errorf("%v: share %.2f but zero payout", r.Type, r.Share)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("type shares sum to %g", shareSum)
	}
	// Activity offers pay more than no-activity on average (9x in the
	// paper).
	agg := ActivityAggregate(classifyOffers(s.Milker.Offers()))
	var noAct Table3Row
	for _, r := range rows {
		if r.Type == offers.NoActivity {
			noAct = r
		}
	}
	if agg.AveragePayout <= noAct.AveragePayout*2 {
		t.Errorf("activity payout %.3f not clearly above no-activity %.3f",
			agg.AveragePayout, noAct.AveragePayout)
	}
}

func TestStudyTable4Shape(t *testing.T) {
	s := tinyStudy(t)
	rows := s.Results.Table4
	if len(rows) != 7 {
		t.Fatalf("table 4 rows = %d, want 7", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.IIP] = r
		if r.NumApps == 0 || r.NumDevelopers == 0 {
			t.Errorf("%s: empty app/dev counts", r.IIP)
		}
		if r.NumDevelopers > r.NumApps {
			t.Errorf("%s: more developers than apps", r.IIP)
		}
	}
	// RankApp: 100% no-activity, cheapest offers, youngest apps.
	rank := byName[iip.RankApp]
	if rank.NoActivityShare < 0.999 {
		t.Errorf("RankApp no-activity share = %.2f, want 1.0", rank.NoActivityShare)
	}
	fyber := byName[iip.Fyber]
	if !(rank.MedianPayout < fyber.MedianPayout) {
		t.Errorf("RankApp median payout %.3f should be below Fyber %.3f",
			rank.MedianPayout, fyber.MedianPayout)
	}
	if !(rank.MedianInstallBin < fyber.MedianInstallBin) {
		t.Errorf("RankApp median installs %.0f should be below Fyber %.0f",
			rank.MedianInstallBin, fyber.MedianInstallBin)
	}
	if !(rank.MedianAgeDays < fyber.MedianAgeDays) {
		t.Errorf("RankApp median age %.0f should be below Fyber %.0f",
			rank.MedianAgeDays, fyber.MedianAgeDays)
	}
}

func TestStudyTable5Direction(t *testing.T) {
	s := tinyStudy(t)
	o := s.Results.Table5
	if o.Baseline.N == 0 || o.Vetted.N == 0 || o.Unvetted.N == 0 {
		t.Fatalf("empty groups: %+v", o)
	}
	// Advertised apps increase install counts more often than baseline.
	if !(o.Vetted.Frac() > o.Baseline.Frac()) {
		t.Errorf("vetted %.3f should exceed baseline %.3f", o.Vetted.Frac(), o.Baseline.Frac())
	}
	if !(o.Unvetted.Frac() > o.Baseline.Frac()) {
		t.Errorf("unvetted %.3f should exceed baseline %.3f", o.Unvetted.Frac(), o.Baseline.Frac())
	}
}

func TestStudyTable6And7Populated(t *testing.T) {
	s := tinyStudy(t)
	if s.Results.Table6.Baseline.N == 0 {
		t.Error("table 6 baseline empty")
	}
	if s.Results.Table7.Vetted.N == 0 {
		t.Error("table 7 vetted empty (no Crunchbase matches)")
	}
}

func TestStudyFigure2(t *testing.T) {
	s := tinyStudy(t)
	found := false
	for _, r := range s.Results.Figure2 {
		if r.IIP == iip.RankApp && r.AdvertisesRankBoost {
			found = true
		}
		if r.Vetted && r.AdvertisesRankBoost {
			t.Errorf("vetted IIP %s advertises manipulation", r.IIP)
		}
	}
	if !found {
		t.Error("RankApp manipulation claim not detected")
	}
}

func TestStudyFigure4(t *testing.T) {
	s := tinyStudy(t)
	bins := s.Results.Figure4
	if len(bins) != 8 {
		t.Fatalf("figure 4 bins = %d, want 8", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(s.World.Baseline) {
		t.Errorf("figure 4 total = %d, want %d", total, len(s.World.Baseline))
	}
}

func TestStudyFigure6Ordering(t *testing.T) {
	s := tinyStudy(t)
	f := s.Results.Figure6
	if len(f.Baseline) == 0 || len(f.Activity) == 0 || len(f.NoActivity) == 0 {
		t.Fatalf("figure 6 sample sets empty: %d/%d/%d",
			len(f.Baseline), len(f.Activity), len(f.NoActivity))
	}
	// Paper: activity apps integrate more ad libraries than no-activity;
	// vetted more than unvetted.
	if !(f.AtLeast5["activity"] > f.AtLeast5["noactivity"]) {
		t.Errorf("activity %.2f should exceed noactivity %.2f",
			f.AtLeast5["activity"], f.AtLeast5["noactivity"])
	}
	if !(f.AtLeast5["vetted"] > f.AtLeast5["unvetted"]) {
		t.Errorf("vetted %.2f should exceed unvetted %.2f",
			f.AtLeast5["vetted"], f.AtLeast5["unvetted"])
	}
	cdf := f.CDF("baseline", 30)
	if len(cdf) != 31 || cdf[30] < 0.999 {
		t.Errorf("baseline CDF malformed: %v", cdf[len(cdf)-1])
	}
}

func TestStudySection3(t *testing.T) {
	s := tinyStudy(t)
	h := s.Results.Section3
	if h == nil {
		t.Fatal("section 3 missing")
	}
	if len(h.Campaigns) != 3 {
		t.Fatalf("campaigns = %d, want 3", len(h.Campaigns))
	}
	if h.TotalInstalls != 626+550+503 {
		t.Errorf("total installs = %d, want 1679", h.TotalInstalls)
	}
	if h.PublicInstallBin != 1000 {
		t.Errorf("public bin = %d, want 1000 (0 -> 1,000+)", h.PublicInstallBin)
	}
	if h.OrganicDuringCampaigns != 0 {
		t.Errorf("organic installs during campaigns = %d, want 0", h.OrganicDuringCampaigns)
	}
	byIIP := map[string]HoneyCampaign{}
	for _, c := range h.Campaigns {
		byIIP[c.IIP] = c
	}
	fyber, ayet, rank := byIIP[iip.Fyber], byIIP[iip.AyetStudios], byIIP[iip.RankApp]
	// Delivery speed: Fyber and ayeT within 2 hours; RankApp > 24h.
	if fyber.CompletionHours > 2.5 || ayet.CompletionHours > 2.5 {
		t.Errorf("vetted-ish delivery too slow: %.1f / %.1f h", fyber.CompletionHours, ayet.CompletionHours)
	}
	if rank.CompletionHours < 24 {
		t.Errorf("RankApp delivery too fast: %.1f h", rank.CompletionHours)
	}
	// Missing telemetry: ~45% of RankApp installs never open.
	missing := 1 - float64(rank.TelemetryInstalls)/float64(rank.ConsoleInstalls)
	if math.Abs(missing-0.45) > 0.10 {
		t.Errorf("RankApp missing telemetry = %.2f, want ~0.45", missing)
	}
	if fyber.TelemetryInstalls != fyber.ConsoleInstalls {
		t.Errorf("Fyber telemetry %d != console %d", fyber.TelemetryInstalls, fyber.ConsoleInstalls)
	}
	// Engagement: ~44% Fyber/ayeT vs ~6% RankApp.
	fyberEng := float64(fyber.Engaged) / float64(fyber.TelemetryInstalls)
	rankEng := float64(rank.Engaged) / float64(rank.ConsoleInstalls)
	if math.Abs(fyberEng-0.44) > 0.08 {
		t.Errorf("Fyber engagement = %.2f, want ~0.44", fyberEng)
	}
	if rankEng > 0.12 {
		t.Errorf("RankApp engagement = %.2f, want ~0.06", rankEng)
	}
	// Automation: emulators and cloud ASNs present.
	if fyber.EmulatorInstalls == 0 || rank.EmulatorInstalls == 0 {
		t.Error("expected emulator installs on Fyber and RankApp")
	}
	if ayet.CloudASNInstalls == 0 {
		t.Error("expected cloud-ASN installs on ayeT")
	}
	// Device farm on RankApp: >= 10 installs behind one /24, mostly
	// rooted on one SSID.
	if rank.FarmInstalls < 10 {
		t.Errorf("RankApp farm installs = %d, want >= 10", rank.FarmInstalls)
	}
	if rank.FarmRootedSameSSID < rank.FarmInstalls/2 {
		t.Errorf("farm rooted = %d of %d", rank.FarmRootedSameSSID, rank.FarmInstalls)
	}
	// Affiliate-app fingerprints.
	if rank.MoneyKeywordShare < 0.9 {
		t.Errorf("RankApp money-app share = %.2f, want ~0.98", rank.MoneyKeywordShare)
	}
	if rank.TopAffiliate != "eu.gcashapp" {
		t.Errorf("RankApp top affiliate = %s, want eu.gcashapp", rank.TopAffiliate)
	}
	if ayet.TopAffiliate != "com.ayet.cashpirate" {
		t.Errorf("ayeT top affiliate = %s, want cashpirate", ayet.TopAffiliate)
	}
	if h.UniqueInstalledApps < 1000 {
		t.Errorf("unique installed apps = %d, want thousands", h.UniqueInstalledApps)
	}
}

func TestStudyEnforcementWeak(t *testing.T) {
	s := tinyStudy(t)
	e := s.Results.Enforcement
	if e.BaselineDecreased.Positive != 0 {
		t.Errorf("baseline apps lost installs: %d", e.BaselineDecreased.Positive)
	}
	if e.HoneyInstallsFiltered != 0 {
		t.Errorf("honey installs filtered = %d, want 0", e.HoneyInstallsFiltered)
	}
	// Unvetted enforcement is rare but possible; it must stay far below
	// half the apps.
	if e.UnvettedDecreased.Frac() > 0.2 {
		t.Errorf("unvetted decrease fraction = %.2f, too aggressive", e.UnvettedDecreased.Frac())
	}
}

func TestStudyArbitrageShape(t *testing.T) {
	s := tinyStudy(t)
	a := s.Results.Arbitrage
	if a.Total.N == 0 {
		t.Fatal("arbitrage analysis empty")
	}
	if a.Total.Frac() > 0.15 {
		t.Errorf("arbitrage share = %.2f, want a few percent", a.Total.Frac())
	}
}

func TestStudyLockstepDefense(t *testing.T) {
	s := tinyStudy(t)
	l := s.Results.Lockstep
	if l.Groups == 0 || l.FlaggedDevices == 0 {
		t.Fatalf("lockstep detector found nothing: %+v", l)
	}
	// The detector must be near-silent on organic decoys and catch most
	// of the worker population active in the install stream.
	if l.Eval.Precision < 0.9 {
		t.Errorf("precision = %.3f, want >= 0.9", l.Eval.Precision)
	}
	if l.Eval.Recall < 0.6 {
		t.Errorf("recall = %.3f, want >= 0.6", l.Eval.Recall)
	}
}

func TestStudyDisclosureList(t *testing.T) {
	s := tinyStudy(t)
	for _, row := range s.Results.Disclosure {
		if row.InstallBin < 5_000_000 {
			t.Errorf("disclosure row below 5M: %+v", row)
		}
		if row.ContactMail == "" {
			t.Errorf("disclosure row without contact: %+v", row)
		}
	}
	// Sorted by popularity.
	for i := 1; i < len(s.Results.Disclosure); i++ {
		if s.Results.Disclosure[i].InstallBin > s.Results.Disclosure[i-1].InstallBin {
			t.Error("disclosure list not sorted by installs")
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	cfg := sim.TinyConfig()
	cfg.BaselineApps = 20
	cfg.BackgroundApps = 30
	cfg.TotalAdvertised = 40
	cfg.AppsPerIIP = map[string]int{
		iip.RankApp: 8, iip.AyetStudios: 12, iip.Fyber: 12,
		iip.AdscendMedia: 5, iip.AdGem: 2, iip.HangMyAds: 2, iip.OfferToro: 5,
	}
	cfg.OffersTarget = 80
	cfg.Window.End = cfg.Window.Start.AddDays(24)
	run := func() Results {
		s, err := Run(cfg, Options{MilkEveryDays: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s.Results
	}
	r1, r2 := run(), run()
	if r1.Dataset != r2.Dataset {
		t.Errorf("dataset summaries differ: %+v vs %+v", r1.Dataset, r2.Dataset)
	}
	if r1.Table5 != r2.Table5 {
		t.Errorf("table 5 differs")
	}
	if r1.Section3.TotalInstalls != r2.Section3.TotalInstalls {
		t.Errorf("section 3 differs")
	}
}
