package core

import (
	"repro/internal/offers"
	"repro/internal/stats"
)

// Analysis is a reusable view over a completed study's raw measurements
// (classified offers, per-app aggregations) that can recompute each table
// and figure independently. The benchmark harness uses it to time every
// artifact's analysis in isolation; callers can also use it to re-derive
// artifacts with different parameters.
type Analysis struct {
	study    *Study
	cos      []ClassifiedOffer
	views    []*appView
	vetted   []*appView
	unvetted []*appView
}

// NewAnalysis classifies the milked offers and groups them by app.
func (s *Study) NewAnalysis() *Analysis {
	cos := classifyOffers(s.Milker.Offers())
	views := buildAppViews(cos)
	vetted, unvetted := groupViews(views)
	return &Analysis{study: s, cos: cos, views: views, vetted: vetted, unvetted: unvetted}
}

// Offers returns the classified offer dataset.
func (a *Analysis) Offers() []ClassifiedOffer { return a.cos }

// RawOffers returns the unclassified milked offers.
func (a *Analysis) RawOffers() []offers.Offer { return a.study.Milker.Offers() }

// Table1 recomputes the IIP characterization probe.
func (a *Analysis) Table1() []Table1Row { return a.study.probeTable1() }

// Table2 recomputes the affiliate integration matrix.
func (a *Analysis) Table2() []Table2Row { return a.study.buildTable2() }

// Table3 recomputes offer-type prevalence and payouts.
func (a *Analysis) Table3() []Table3Row { return buildTable3(a.cos) }

// Table4 recomputes the per-IIP summary.
func (a *Analysis) Table4() []Table4Row { return a.study.buildTable4(a.cos) }

// Table5 recomputes the install-count-increase comparison.
func (a *Analysis) Table5() (GroupOutcome, error) {
	return a.study.buildTable5(a.vetted, a.unvetted)
}

// Table6 recomputes the top-chart-appearance comparison.
func (a *Analysis) Table6() (GroupOutcome, error) {
	return a.study.buildTable6(a.vetted, a.unvetted)
}

// Table7 recomputes the funding comparison.
func (a *Analysis) Table7() (GroupOutcome, error) {
	return a.study.buildTable7(a.vetted, a.unvetted)
}

// Table8 recomputes the funded-app offer breakdown.
func (a *Analysis) Table8() Table8 { return a.study.buildTable8(a.vetted) }

// Figure2 recomputes the manipulation-claims probe.
func (a *Analysis) Figure2() []Figure2Row { return a.study.buildFigure2() }

// Figure4 recomputes the baseline install histogram.
func (a *Analysis) Figure4() []stats.HistogramBin { return a.study.buildFigure4() }

// Figure5 recomputes the chart-rank case studies.
func (a *Analysis) Figure5() []CaseStudy { return a.study.buildFigure5(a.views) }

// Figure6 recomputes the ad-library CDFs (downloads APKs over HTTP).
func (a *Analysis) Figure6() (Figure6, error) { return a.study.buildFigure6(a.views) }

// Enforcement recomputes the Section 5.2 scan.
func (a *Analysis) Enforcement() EnforcementResult {
	return a.study.buildEnforcement(a.vetted, a.unvetted)
}

// Arbitrage recomputes the arbitrage shares.
func (a *Analysis) Arbitrage() ArbitrageResult {
	return buildArbitrage(a.views, a.vetted, a.unvetted)
}

// Lockstep recomputes the Section 5.2 defense evaluation.
func (a *Analysis) Lockstep() LockstepResult { return a.study.buildLockstep() }

// Disclosure recomputes the Section 5.1 contact list.
func (a *Analysis) Disclosure() []DisclosureRow { return a.study.buildDisclosure(a.views) }
