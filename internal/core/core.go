package core
