// Package core implements the paper's measurement methodology end to end:
// the Section 3 honey-app experiment (purchasing incentivized installs and
// measuring delivery, engagement, and automation), the Section 4 in-the-
// wild monitoring pipeline (UI fuzzer + recording proxy + Play Store
// crawler), and the analyses that regenerate every table and figure of the
// evaluation. The package consumes the synthetic world through exactly the
// interfaces the authors had against the live ecosystem: offer-wall HTTP
// traffic, the store's public crawl surface, the developer console of apps
// the researchers own, and a Crunchbase snapshot.
package core

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/crawler"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/monitor"
	"repro/internal/playapi"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options tune the study run.
type Options struct {
	// MilkEveryDays is the offer-wall milking period (the crawler itself
	// always runs every other day, as in the paper).
	MilkEveryDays int
	// SkipHoney disables the Section 3 experiment.
	SkipHoney bool
	// Verbose emits progress via the Logf callback.
	Logf func(format string, args ...any)
}

func (o *Options) log(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Study couples a world with its measurement infrastructure and results.
type Study struct {
	World   *sim.World
	Opts    Options
	Milker  *monitor.Milker
	Crawler *crawler.Crawler

	Results Results

	servers []*http.Server
}

// Results aggregates every reproduced artifact.
type Results struct {
	RunStats sim.RunStats

	Dataset DatasetSummary

	Table1 []Table1Row
	Table2 []Table2Row
	Table3 []Table3Row
	Table4 []Table4Row
	Table5 GroupOutcome
	Table6 GroupOutcome
	Table7 GroupOutcome
	Table8 Table8

	Figure2 []Figure2Row
	Figure4 []stats.HistogramBin
	Figure5 []CaseStudy
	Figure6 Figure6

	Section3    *HoneyResults
	Enforcement EnforcementResult
	Arbitrage   ArbitrageResult

	// Lockstep is the Section 5.2 proposed-defense evaluation.
	Lockstep LockstepResult
	// Disclosure is the Section 5.1 responsible-disclosure contact list
	// (advertised apps with 5M+ installs).
	Disclosure []DisclosureRow
}

// DatasetSummary captures the headline dataset sizes (922 apps, 2,126
// offers, 1,128 unique descriptions in the paper).
type DatasetSummary struct {
	Offers             int
	UniqueApps         int
	UniqueDescriptions int
	MilkDays           int
	CrawlDays          int
}

// Run executes the full study against a fresh world built from cfg.
func Run(cfg sim.Config, opts Options) (*Study, error) {
	if opts.MilkEveryDays <= 0 {
		opts.MilkEveryDays = 4
	}
	opts.log("building world (seed %d)", cfg.Seed)
	world, err := sim.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	s := &Study{World: world, Opts: opts}

	if err := s.startInfrastructure(); err != nil {
		s.Close()
		return nil, err
	}

	if !opts.SkipHoney {
		opts.log("running honey-app experiment (Section 3)")
		honey, err := s.runHoneyExperiment()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: honey experiment: %w", err)
		}
		s.Results.Section3 = honey
	}

	opts.log("running %d-day study window", world.Cfg.Window.Days())
	start := world.Cfg.Window.Start
	runStats, err := world.RunWithHook(func(day dates.Date) error {
		if err := s.Crawler.MaybeCrawl(day); err != nil {
			return err
		}
		if day.DaysSince(start)%opts.MilkEveryDays == 0 {
			if err := s.Milker.MilkDay(day); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("core: running world: %w", err)
	}
	s.Results.RunStats = runStats

	opts.log("analyzing")
	if err := s.analyze(); err != nil {
		s.Close()
		return nil, fmt.Errorf("core: analysis: %w", err)
	}
	return s, nil
}

// RunHoneyOnly builds a world and runs just the Section 3 honey-app
// experiment (no monitoring, crawling, or impact analyses).
func RunHoneyOnly(cfg sim.Config) (*Study, error) {
	world, err := sim.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	s := &Study{World: world}
	defer s.Close()
	honey, err := s.runHoneyExperiment()
	if err != nil {
		return nil, fmt.Errorf("core: honey experiment: %w", err)
	}
	s.Results.Section3 = honey
	return s, nil
}

// startInfrastructure brings up the store facade, the per-IIP offer-wall
// servers, the milker, and the crawler.
func (s *Study) startInfrastructure() error {
	// Play Store HTTP surface.
	playURL, err := s.serve(playapi.New(s.World.Store, s.World.APKs).Handler())
	if err != nil {
		return fmt.Errorf("core: starting store API: %w", err)
	}

	// One offer-wall server per platform, all sharing the affiliate
	// point-rate table.
	rates := map[string]float64{}
	for _, a := range s.World.Affiliates {
		rates[a.Package] = a.PointsPerUSD
	}
	endpoints := map[string]string{}
	for _, p := range s.World.PlatformsSorted() {
		u, err := s.serve(iip.NewServer(p, rates).Handler())
		if err != nil {
			return fmt.Errorf("core: starting %s wall: %w", p.Name, err)
		}
		endpoints[p.Name] = u
	}

	s.Milker, err = monitor.NewMilker(s.World.Affiliates, endpoints)
	if err != nil {
		return fmt.Errorf("core: starting milker: %w", err)
	}

	targets := make([]string, 0, len(s.World.Advertised)+len(s.World.Baseline))
	for _, a := range s.World.Advertised {
		targets = append(targets, a.Package)
	}
	targets = append(targets, s.World.Baseline...)
	s.Crawler = crawler.New(playURL, targets)
	return nil
}

// serve starts an HTTP server on a loopback port and tracks it for
// shutdown.
func (s *Study) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	s.servers = append(s.servers, srv)
	return "http://" + ln.Addr().String(), nil
}

// Close tears down the study's HTTP infrastructure. Run leaves the
// servers up so callers can keep re-deriving artifacts (NewAnalysis,
// Figure 6 APK downloads) against the live surfaces; call Close when done.
func (s *Study) Close() {
	if s.Milker != nil {
		s.Milker.Close()
	}
	for _, srv := range s.servers {
		srv.Close()
	}
}
