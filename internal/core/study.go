// Package core implements the paper's measurement methodology end to end:
// the Section 3 honey-app experiment (purchasing incentivized installs and
// measuring delivery, engagement, and automation), the Section 4 in-the-
// wild monitoring pipeline (UI fuzzer + recording proxy + Play Store
// crawler), and the analyses that regenerate every table and figure of the
// evaluation. The package consumes the synthetic world through exactly the
// interfaces the authors had against the live ecosystem: offer-wall HTTP
// traffic, the store's public crawl surface, the developer console of apps
// the researchers own, and a Crunchbase snapshot.
package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/crawler"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/playapi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Options tune the study run.
type Options struct {
	// MilkEveryDays is the offer-wall milking period (the crawler itself
	// always runs every other day, as in the paper).
	MilkEveryDays int
	// SkipHoney disables the Section 3 experiment.
	SkipHoney bool
	// Verbose emits progress via the Logf callback.
	Logf func(format string, args ...any)

	// EventLogPath, when set, streams the run's event-sourced log to this
	// file (DESIGN.md E6). On resume the file is truncated to the
	// checkpoint's offset and appended, leaving bytes identical to an
	// uninterrupted run.
	EventLogPath string
	// SegmentBytes, when > 0, sets the event log's segment-rotation
	// threshold (stream.Writer.SetSegmentBytes): a segment index frame
	// with an embedded checkpoint is written at the first day boundary
	// after each SegmentBytes bytes, making the log seekable with
	// `runlog seek` / stream.ReplayDay at O(segment) cost. Ignored on
	// resume — the checkpoint carries the original run's segmentation
	// state, which must govern for the appended bytes to stay identical.
	SegmentBytes int64
	// CheckpointPath, when set, atomically (re)writes a day-boundary
	// checkpoint there every CheckpointEvery days (<= 0: every day).
	CheckpointPath  string
	CheckpointEvery int
	// ResumePath continues a killed run from the named checkpoint. The
	// config must match the original run. The Section 3 honey experiment
	// is skipped (its effects are already inside the checkpointed state;
	// its report exists only in the original run's output). The world
	// state and the event log continue exactly; the crawler/milker
	// observation datasets, however, are rebuilt fresh and cover only the
	// remaining days (plus a final-day pass when nothing remains), so the
	// Section 4/5 report tables of a resumed run are computed from that
	// shorter observation window — replay the event log when the full
	// stream is needed.
	ResumePath string
	// WrapEventLog, when non-nil, wraps the event log's file writer below
	// the buffering layer — the hook the chaos harness uses to inject
	// torn writes (fault.Injector.Writer) at the same depth a real crash
	// mid-write would tear the file.
	WrapEventLog func(io.Writer) io.Writer

	// Obs, when non-nil, receives the run's metrics: day-engine phase
	// timings and event counts (sim_*) plus run-log writer throughput
	// (runlog_*). Trace, when non-nil, records per-day phase spans.
	// Both are pure observation — results, log bytes, and checkpoints are
	// bit-identical with or without them (DESIGN.md E11).
	Obs   *obs.Registry
	Trace *obs.Tracer
}

func (o *Options) log(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Study couples a world with its measurement infrastructure and results.
type Study struct {
	World   *sim.World
	Opts    Options
	Milker  *monitor.Milker
	Crawler *crawler.Crawler

	Results Results

	servers []*http.Server
}

// Results aggregates every reproduced artifact.
type Results struct {
	RunStats sim.RunStats

	Dataset DatasetSummary

	Table1 []Table1Row
	Table2 []Table2Row
	Table3 []Table3Row
	Table4 []Table4Row
	Table5 GroupOutcome
	Table6 GroupOutcome
	Table7 GroupOutcome
	Table8 Table8

	Figure2 []Figure2Row
	Figure4 []stats.HistogramBin
	Figure5 []CaseStudy
	Figure6 Figure6

	Section3    *HoneyResults
	Enforcement EnforcementResult
	Arbitrage   ArbitrageResult

	// Lockstep is the Section 5.2 proposed-defense evaluation.
	Lockstep LockstepResult
	// Disclosure is the Section 5.1 responsible-disclosure contact list
	// (advertised apps with 5M+ installs).
	Disclosure []DisclosureRow
}

// DatasetSummary captures the headline dataset sizes (922 apps, 2,126
// offers, 1,128 unique descriptions in the paper).
type DatasetSummary struct {
	Offers             int
	UniqueApps         int
	UniqueDescriptions int
	MilkDays           int
	CrawlDays          int
}

// Run executes the full study against a fresh world built from cfg.
func Run(cfg sim.Config, opts Options) (*Study, error) {
	return RunCtx(context.Background(), cfg, opts)
}

// RunCtx is Run with cancellation: cancelling ctx stops the day loop at
// the next day barrier — after the day's log frames are flushed and,
// when checkpointing is configured, with a final checkpoint written — so
// an interrupted study is resumable via ResumePath exactly like a
// crashed one, minus the salvage. The returned error wraps ctx's error.
func RunCtx(ctx context.Context, cfg sim.Config, opts Options) (*Study, error) {
	if opts.MilkEveryDays <= 0 {
		opts.MilkEveryDays = 4
	}
	opts.log("building world (seed %d)", cfg.Seed)
	world, err := sim.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	s := &Study{World: world, Opts: opts}

	runOpts := sim.RunOptions{Context: ctx, Metrics: sim.NewMetrics(opts.Obs, opts.Trace)}
	if opts.ResumePath != "" {
		cp, err := stream.ReadCheckpointFile(opts.ResumePath)
		if err != nil {
			return nil, fmt.Errorf("core: reading resume checkpoint: %w", err)
		}
		// Restore before wiring the HTTP facade: the store pointer the
		// facade serves must be the restored one — and validate the
		// checkpoint against the rebuilt world before anything
		// destructive (the event-log truncation below) can happen.
		if err := world.Restore(cp); err != nil {
			return nil, fmt.Errorf("core: restoring checkpoint: %w", err)
		}
		if err := world.ValidateResume(cp); err != nil {
			return nil, fmt.Errorf("core: refusing to resume: %w", err)
		}
		opts.log("resuming after %s (day %d of the window, log offset %d)",
			cp.Day, cp.Days, cp.LogOffset)
		runOpts.Resume = cp
		opts.SkipHoney = true
		s.Opts = opts
	}

	if err := s.startInfrastructure(); err != nil {
		s.Close()
		return nil, err
	}

	if !opts.SkipHoney {
		opts.log("running honey-app experiment (Section 3)")
		honey, err := s.runHoneyExperiment()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: honey experiment: %w", err)
		}
		s.Results.Section3 = honey
	}

	// The run log opens after any pre-run activity (honey campaigns) so
	// the base snapshot matches the state the day loop starts from.
	var flushLog func() error
	if opts.EventLogPath != "" {
		log, flush, closeLog, err := s.openRunLog(runOpts.Resume)
		if err != nil {
			s.Close()
			return nil, err
		}
		defer closeLog()
		runOpts.Log = log
		flushLog = flush
	}
	if opts.CheckpointPath != "" {
		runOpts.CheckpointEvery = opts.CheckpointEvery
		runOpts.Checkpoint = func(cp *stream.Checkpoint) error {
			// Durability order: the log bytes the checkpoint's offset
			// points at must be on disk before the checkpoint exists, or a
			// hard crash between buffer flushes leaves a checkpoint no
			// successor can resume from.
			if flushLog != nil {
				if err := flushLog(); err != nil {
					return err
				}
			}
			return stream.WriteCheckpointFile(opts.CheckpointPath, cp)
		}
	}

	opts.log("running %d-day study window", world.Cfg.Window.Days())
	start := world.Cfg.Window.Start
	runOpts.Hook = func(day dates.Date) error {
		if err := s.Crawler.MaybeCrawl(day); err != nil {
			return err
		}
		if day.DaysSince(start)%opts.MilkEveryDays == 0 {
			if err := s.Milker.MilkDay(day); err != nil {
				return err
			}
		}
		return nil
	}
	runStats, err := world.RunOpts(runOpts)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("core: running world: %w", err)
	}
	s.Results.RunStats = runStats

	// A resumed study rebuilds its crawler/milker fresh, so their datasets
	// cover only the post-resume days (documented on ResumePath). When the
	// checkpoint sat at (or near) the window end either pipeline may have
	// observed nothing — the crawler crawls the first post-resume day but
	// the milking cadence can miss every remaining day — so each empty
	// dataset independently gets one final-day pass, keeping the analyses
	// running against the restored world instead of failing.
	if runOpts.Resume != nil {
		end := world.Cfg.Window.End
		if len(s.Crawler.Dataset().Days()) == 0 {
			if err := s.Crawler.CrawlNow(end); err != nil {
				s.Close()
				return nil, fmt.Errorf("core: post-resume crawl: %w", err)
			}
		}
		if len(s.Milker.Offers()) == 0 {
			if err := s.Milker.MilkDay(end); err != nil {
				s.Close()
				return nil, fmt.Errorf("core: post-resume milking: %w", err)
			}
		}
	}

	opts.log("analyzing")
	if err := s.analyze(); err != nil {
		s.Close()
		return nil, fmt.Errorf("core: analysis: %w", err)
	}
	return s, nil
}

// RunHoneyOnly builds a world and runs just the Section 3 honey-app
// experiment (no monitoring, crawling, or impact analyses).
func RunHoneyOnly(cfg sim.Config) (*Study, error) {
	world, err := sim.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	s := &Study{World: world}
	defer s.Close()
	honey, err := s.runHoneyExperiment()
	if err != nil {
		return nil, fmt.Errorf("core: honey experiment: %w", err)
	}
	s.Results.Section3 = honey
	return s, nil
}

// openRunLog opens the event log file: created fresh for a new run, or —
// when resuming — truncated to the checkpoint's offset and appended so
// the resulting bytes are identical to an uninterrupted run's log. The
// returned flush pushes the buffered bytes to disk (the checkpoint
// callback calls it so checkpoints never reference unwritten bytes).
func (s *Study) openRunLog(resume *stream.Checkpoint) (log *stream.Writer, flush func() error, closeLog func(), err error) {
	path := s.Opts.EventLogPath
	if resume == nil {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: creating event log: %w", err)
		}
		bw := bufio.NewWriterSize(s.wrapEventLog(f), 1<<20)
		log, err := s.World.NewRunLog(bw)
		if err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("core: opening event log: %w", err)
		}
		if s.Opts.SegmentBytes > 0 {
			log.SetSegmentBytes(s.Opts.SegmentBytes)
		}
		log.SetMetrics(stream.NewWriterMetrics(s.Opts.Obs))
		return log, bw.Flush, func() { bw.Flush(); f.Close() }, nil
	}
	if resume.LogOffset == 0 {
		return nil, nil, nil, fmt.Errorf("core: checkpoint was taken without an event log; start a fresh log instead of resuming %s", path)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: opening event log for resume: %w", err)
	}
	if fi, err := f.Stat(); err != nil || fi.Size() < resume.LogOffset {
		f.Close()
		return nil, nil, nil, fmt.Errorf("core: event log shorter than checkpoint offset %d (err=%v)", resume.LogOffset, err)
	}
	// Refuse to truncate a file that is not this run's log: the prefix
	// must carry a readable header whose seed and window match the world.
	hdr, ok, err := stream.NewTail(f).Header()
	if err != nil || !ok {
		f.Close()
		return nil, nil, nil, fmt.Errorf("core: %s is not a run log for this world (header unreadable: %v)", path, err)
	}
	if hdr.Seed != s.World.Cfg.Seed || hdr.WindowStart != s.World.Cfg.Window.Start || hdr.WindowEnd != s.World.Cfg.Window.End {
		f.Close()
		return nil, nil, nil, fmt.Errorf("core: %s belongs to a different run (seed %d window %s..%s, want seed %d window %s..%s)",
			path, hdr.Seed, hdr.WindowStart, hdr.WindowEnd,
			s.World.Cfg.Seed, s.World.Cfg.Window.Start, s.World.Cfg.Window.End)
	}
	if err := f.Truncate(resume.LogOffset); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("core: truncating event log at checkpoint: %w", err)
	}
	if _, err := f.Seek(resume.LogOffset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("core: seeking event log: %w", err)
	}
	bw := bufio.NewWriterSize(s.wrapEventLog(f), 1<<20)
	log = s.World.ResumeRunLog(bw, resume)
	log.SetMetrics(stream.NewWriterMetrics(s.Opts.Obs))
	return log, bw.Flush, func() { bw.Flush(); f.Close() }, nil
}

func (s *Study) wrapEventLog(w io.Writer) io.Writer {
	if s.Opts.WrapEventLog == nil {
		return w
	}
	return s.Opts.WrapEventLog(w)
}

// startInfrastructure brings up the store facade, the per-IIP offer-wall
// servers, the milker, and the crawler.
func (s *Study) startInfrastructure() error {
	// Play Store HTTP surface.
	playURL, err := s.serve(playapi.New(s.World.Store, s.World.APKs).Handler())
	if err != nil {
		return fmt.Errorf("core: starting store API: %w", err)
	}

	// One offer-wall server per platform, all sharing the affiliate
	// point-rate table.
	rates := map[string]float64{}
	for _, a := range s.World.Affiliates {
		rates[a.Package] = a.PointsPerUSD
	}
	endpoints := map[string]string{}
	for _, p := range s.World.PlatformsSorted() {
		u, err := s.serve(iip.NewServer(p, rates).Handler())
		if err != nil {
			return fmt.Errorf("core: starting %s wall: %w", p.Name, err)
		}
		endpoints[p.Name] = u
	}

	s.Milker, err = monitor.NewMilker(s.World.Affiliates, endpoints)
	if err != nil {
		return fmt.Errorf("core: starting milker: %w", err)
	}

	targets := make([]string, 0, len(s.World.Advertised)+len(s.World.Baseline))
	for _, a := range s.World.Advertised {
		targets = append(targets, a.Package)
	}
	targets = append(targets, s.World.Baseline...)
	s.Crawler = crawler.New(playURL, targets)
	return nil
}

// serve starts an HTTP server on a loopback port and tracks it for
// shutdown.
func (s *Study) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	s.servers = append(s.servers, srv)
	return "http://" + ln.Addr().String(), nil
}

// Close tears down the study's HTTP infrastructure. Run leaves the
// servers up so callers can keep re-deriving artifacts (NewAnalysis,
// Figure 6 APK downloads) against the live surfaces; call Close when done.
func (s *Study) Close() {
	if s.Milker != nil {
		s.Milker.Close()
	}
	for _, srv := range s.servers {
		srv.Close()
	}
	if s.World != nil {
		s.World.Close()
	}
}

// Shutdown is the graceful counterpart of Close: in-flight requests
// against the study's HTTP surfaces finish (bounded by ctx) before the
// listeners close. Use it when a milker or crawler pass may still be
// mid-request — a hard Close there surfaces spurious connection errors
// for work that was about to succeed.
func (s *Study) Shutdown(ctx context.Context) error {
	if s.Milker != nil {
		s.Milker.Close()
	}
	var first error
	for _, srv := range s.servers {
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	if s.World != nil {
		if err := s.World.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
