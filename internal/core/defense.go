package core

import (
	"fmt"
	"sort"

	"repro/internal/lockstep"
	"repro/internal/randx"
)

// LockstepResult is the Section 5.2 defense evaluation: the paper proposes
// that its measurements provide ground truth for training lockstep-
// behaviour detectors; here the detector runs over the store-side
// device-resolved install stream and is scored against the simulator's
// known worker population.
type LockstepResult struct {
	Groups         int
	FlaggedDevices int
	Eval           lockstep.Evaluation
}

// buildLockstep mixes the incentivized install log with organic decoy
// traffic and runs the lockstep detector.
func (s *Study) buildLockstep() LockstepResult {
	events := make([]lockstep.Event, 0, len(s.World.InstallLog))
	truth := map[string]bool{}
	for _, rec := range s.World.InstallLog {
		events = append(events, lockstep.Event{Device: rec.Device, App: rec.App, Day: rec.Day})
	}
	for _, pool := range s.World.Pools {
		for _, w := range pool {
			truth[w.ID] = true
		}
	}
	// Organic decoys: independent devices installing catalog apps on
	// random days — the background the detector must not flag. (Google
	// would have the full organic stream; a deterministic sample
	// suffices to measure precision.)
	r := randx.Derive(s.World.Cfg.Seed, "lockstep-decoys")
	catalog := append(append([]string(nil), s.World.Baseline...), s.World.Background...)
	window := s.World.Cfg.Window
	nDecoys := len(truth)
	for i := 0; i < nDecoys; i++ {
		dev := fmt.Sprintf("organic-%05d", i)
		n := r.IntBetween(3, 12)
		for j := 0; j < n; j++ {
			events = append(events, lockstep.Event{
				Device: dev,
				App:    catalog[r.IntN(len(catalog))],
				Day:    window.Start.AddDays(r.IntN(window.Days())),
			})
		}
	}

	groups := lockstep.Detect(events, lockstep.DefaultConfig())
	flagged := 0
	for _, g := range groups {
		flagged += len(g.Devices)
	}
	// Only workers that actually appear in the log can be recalled.
	active := map[string]bool{}
	for _, rec := range s.World.InstallLog {
		if truth[rec.Device] {
			active[rec.Device] = true
		}
	}
	return LockstepResult{
		Groups:         len(groups),
		FlaggedDevices: flagged,
		Eval:           lockstep.Evaluate(groups, active),
	}
}

// DisclosureRow is one entry of the Section 5.1 responsible-disclosure
// list: a popular advertised app (5M+ installs) and the contact address
// scraped from its store profile.
type DisclosureRow struct {
	Package     string
	InstallBin  int64
	Developer   string
	ContactMail string
}

// buildDisclosure reproduces the paper's disclosure selection: of the
// advertised apps, contact those with 5M+ public installs (136 of 922 in
// the paper).
func (s *Study) buildDisclosure(views []*appView) []DisclosureRow {
	ds := s.Crawler.Dataset()
	var rows []DisclosureRow
	for _, v := range views {
		profile, ok := ds.Profile(v.pkg)
		if !ok || profile.InstallBin < 5_000_000 {
			continue
		}
		rows = append(rows, DisclosureRow{
			Package:     v.pkg,
			InstallBin:  profile.InstallBin,
			Developer:   profile.DeveloperName,
			ContactMail: profile.Email,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].InstallBin != rows[j].InstallBin {
			return rows[i].InstallBin > rows[j].InstallBin
		}
		return rows[i].Package < rows[j].Package
	})
	return rows
}
